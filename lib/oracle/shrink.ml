(** QCheck-style shrinking of diverging oracle cases.

    Given a failing case and a predicate (re-running the differential
    harness), greedily apply three families of reductions to a
    fixpoint under a bounded budget:

    - structural: delta-debug the body by deleting windows of items
      (halving window sizes down to single instructions), refusing any
      candidate that would orphan a [Jcc] label;
    - constants: pull immediates, shift counts, displacements and
      [movabs] payloads toward 0/1;
    - state: zero the integer/float arguments and the initial scratch
      bytes.

    Every predicate evaluation is counted into the
    [oracle.shrink_steps] telemetry counter. *)

open Obrew_x86
module O = Oracle
module Tel = Obrew_telemetry.Telemetry

let c_shrink_steps = Tel.counter "oracle.shrink_steps"

(* a body is well-formed when every Lbl target still has its L *)
let labels_ok (body : Insn.item list) : bool =
  let defined =
    List.filter_map (function Insn.L l -> Some l | _ -> None) body
  in
  List.for_all
    (function
      | Insn.I (Insn.Jcc (_, Insn.Lbl l)) | Insn.I (Insn.Jmp (Insn.Lbl l))
      | Insn.I (Insn.Call (Insn.Lbl l)) | Insn.Q (Insn.Lbl l)
      | Insn.MovLbl (_, l) ->
        List.mem l defined
      | _ -> true)
    body

let drop_window (l : 'a list) (at : int) (len : int) : 'a list =
  List.filteri (fun i _ -> i < at || i >= at + len) l

(* ---------- constant shrinking ---------- *)

let smaller_int64 (v : int64) : int64 list =
  if v = 0L then []
  else
    [ 0L; 1L; Int64.div v 2L ]
    |> List.filter (fun x -> x <> v)
    |> List.sort_uniq compare

let smaller_int (v : int) : int list =
  if v = 0 then [] else List.sort_uniq compare
      (List.filter (fun x -> x <> v) [ 0; 1; v / 2 ])

let shrink_mem (m : Insn.mem_addr) : Insn.mem_addr list =
  List.map (fun d -> { m with Insn.disp = d }) (smaller_int m.Insn.disp)

let shrink_operand (o : Insn.operand) : Insn.operand list =
  match o with
  | Insn.OImm v -> List.map (fun x -> Insn.OImm x) (smaller_int64 v)
  | Insn.OMem m -> List.map (fun m -> Insn.OMem m) (shrink_mem m)
  | Insn.OReg _ | Insn.OReg8H _ -> []

(* candidate simplifications of one instruction, most aggressive first *)
let shrink_insn (i : Insn.insn) : Insn.insn list =
  match i with
  | Insn.Mov (w, d, s) ->
    List.map (fun s -> Insn.Mov (w, d, s)) (shrink_operand s)
  | Insn.Movabs (r, v) ->
    List.map (fun v -> Insn.Movabs (r, v)) (smaller_int64 v)
  | Insn.Alu (op, w, d, s) ->
    List.map (fun s -> Insn.Alu (op, w, d, s)) (shrink_operand s)
    @ List.map (fun d -> Insn.Alu (op, w, d, s)) (shrink_operand d)
  | Insn.Shift (op, w, d, Insn.ShImm n) ->
    List.map (fun n -> Insn.Shift (op, w, d, Insn.ShImm n)) (smaller_int n)
    @ List.map (fun d -> Insn.Shift (op, w, d, Insn.ShImm n)) (shrink_operand d)
  | Insn.Shift (op, w, d, Insn.ShCl) ->
    List.map (fun d -> Insn.Shift (op, w, d, Insn.ShCl)) (shrink_operand d)
  | Insn.Imul3 (w, d, s, v) ->
    List.map (fun v -> Insn.Imul3 (w, d, s, v)) (smaller_int64 v)
  | Insn.Lea (r, m) -> List.map (fun m -> Insn.Lea (r, m)) (shrink_mem m)
  | Insn.Test (w, a, b) ->
    List.map (fun b -> Insn.Test (w, a, b)) (shrink_operand b)
  | _ -> []

(* ---------- driver ---------- *)

type stats = { mutable checks : int; mutable accepted : int }

let check_case ~(check : O.case -> bool) (st : stats) ~(budget : int)
    (c : O.case) : bool =
  if st.checks >= budget then false
  else begin
    st.checks <- st.checks + 1;
    Tel.incr_c c_shrink_steps;
    check c
  end

(* one pass of window deletion; returns the reduced case *)
let pass_delete ~check st ~budget (c : O.case) : O.case =
  let cur = ref c in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    let n = List.length (!cur).O.body in
    let win = ref (max 1 (n / 2)) in
    while !win >= 1 do
      let at = ref 0 in
      while !at + !win <= List.length (!cur).O.body do
        let cand_body = drop_window (!cur).O.body !at !win in
        if
          labels_ok cand_body
          && cand_body <> (!cur).O.body
          && check_case ~check st ~budget { !cur with O.body = cand_body }
        then begin
          cur := { !cur with O.body = cand_body };
          st.accepted <- st.accepted + 1;
          continue_ := true
          (* stay at the same [at]: the next window slid into place *)
        end
        else at := !at + 1
      done;
      win := !win / 2
    done
  done;
  !cur

let pass_consts ~check st ~budget (c : O.case) : O.case =
  let cur = ref c in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iteri
      (fun idx item ->
        match item with
        | Insn.L _ | Insn.Q _ | Insn.MovLbl _ -> ()
        | Insn.I i ->
          List.iter
            (fun i' ->
              if not !changed then begin
                let body =
                  List.mapi
                    (fun k it -> if k = idx then Insn.I i' else it)
                    (!cur).O.body
                in
                if check_case ~check st ~budget { !cur with O.body = body }
                then begin
                  cur := { !cur with O.body = body };
                  st.accepted <- st.accepted + 1;
                  changed := true
                end
              end)
            (shrink_insn i))
      (!cur).O.body
  done;
  !cur

let pass_state ~check st ~budget (c : O.case) : O.case =
  let cur = ref c in
  let try_ cand =
    if cand <> !cur
       && check_case ~check st ~budget cand then begin
      cur := cand;
      st.accepted <- st.accepted + 1
    end
  in
  let a1, a2 = (!cur).O.args in
  List.iter (fun v -> try_ { !cur with O.args = (v, snd (!cur).O.args) })
    (smaller_int64 a1);
  List.iter (fun v -> try_ { !cur with O.args = (fst (!cur).O.args, v) })
    (smaller_int64 a2);
  let f1, f2 = (!cur).O.fargs in
  if f1 <> 0.0 then try_ { !cur with O.fargs = (0.0, snd (!cur).O.fargs) };
  if f2 <> 0.0 then try_ { !cur with O.fargs = (fst (!cur).O.fargs, 0.0) };
  if (!cur).O.mem <> String.make O.data_size '\000' then
    try_ { !cur with O.mem = String.make O.data_size '\000' };
  !cur

(** Windowed delta-debugging over a bare item list — the structural
    pass of {!minimize} for inputs with no [O.case] wrapping, used by
    the sentinel to shrink a diverging kernel before persisting it.
    [check] must hold of [items] itself; label well-formedness is
    preserved.  Returns the reduced list and the predicate evaluations
    spent. *)
let minimize_items ?(budget = 200) ~(check : Insn.item list -> bool)
    (items : Insn.item list) : Insn.item list * int =
  let st = { checks = 0; accepted = 0 } in
  let check_items its =
    if st.checks >= budget then false
    else begin
      st.checks <- st.checks + 1;
      Tel.incr_c c_shrink_steps;
      check its
    end
  in
  let cur = ref items in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    let n = List.length !cur in
    let win = ref (max 1 (n / 2)) in
    while !win >= 1 do
      let at = ref 0 in
      while !at + !win <= List.length !cur do
        let cand = drop_window !cur !at !win in
        if labels_ok cand && cand <> !cur && check_items cand then begin
          cur := cand;
          st.accepted <- st.accepted + 1;
          continue_ := true
        end
        else at := !at + 1
      done;
      win := !win / 2
    done
  done;
  (!cur, st.checks)

(** Minimize [c] while [check] keeps holding.  [check] must be true of
    [c] itself.  Returns the reduced case and the number of predicate
    evaluations spent. *)
let minimize ?(budget = 600) ~(check : O.case -> bool) (c : O.case) :
    O.case * int =
  let st = { checks = 0; accepted = 0 } in
  let cur = ref c in
  let rounds = ref 0 in
  let improved = ref true in
  while !improved && !rounds < 8 && st.checks < budget do
    incr rounds;
    let before = !cur in
    cur := pass_delete ~check st ~budget !cur;
    cur := pass_consts ~check st ~budget !cur;
    cur := pass_state ~check st ~budget !cur;
    improved := !cur <> before
  done;
  (!cur, st.checks)
