(** Translation-validation oracle: an N-way differential harness that
    runs one randomized instruction sequence + machine state through
    every semantic tier of the stack — the single-step emulator, the
    superblock engine, the lifted IR under the reference interpreter,
    the post-O3 IR, and JIT-emitted code back on the engine — and
    reports the first register/xmm/flag/memory mismatch together with
    the pair of tiers that disagree and the guest instruction that
    last wrote the diverging location (attributed through the
    provenance ids of PR 4).

    A case is a straight-line body (forward [Jcc] allowed) wrapped by
    a fixed prelude/epilogue into a SysV function

      i64 case(u8 *scratch, i64 a1, i64 a2, f64 f1, f64 f2)

    The prelude defines every observed register from the arguments so
    no tier ever reads an undefined value; the epilogue spills flags,
    GPRs and XMMs into the scratch buffer, making the observation a
    plain byte string that compares uniformly across CPU- and
    IR-based tiers. *)

open Obrew_x86
module Ins = Obrew_ir.Ins
module Interp = Obrew_ir.Interp
module Verify = Obrew_ir.Verify
module Pipeline = Obrew_opt.Pipeline
module Lift = Obrew_lifter.Lift
module Jit = Obrew_backend.Jit
module Err = Obrew_fault.Err
module Tel = Obrew_telemetry.Telemetry
module Prov = Obrew_provenance.Provenance

(* ---------- tiers ---------- *)

type tier = CpuStep | CpuSB | IrLift | IrOpt | JitCode

let all_tiers = [ CpuStep; CpuSB; IrLift; IrOpt; JitCode ]

let tier_name = function
  | CpuStep -> "cpu-step"
  | CpuSB -> "cpu-sb"
  | IrLift -> "ir-lift"
  | IrOpt -> "ir-o3"
  | JitCode -> "jit"

let tier_of_name = function
  | "cpu-step" -> Some CpuStep
  | "cpu-sb" -> Some CpuSB
  | "ir-lift" -> Some IrLift
  | "ir-o3" -> Some IrOpt
  | "jit" -> Some JitCode
  | _ -> None

(* ---------- telemetry ---------- *)

let c_cases = Tel.counter "oracle.cases"
let c_divergences = Tel.counter "oracle.divergences"
let c_skipped = Tel.counter "oracle.cases_skipped"

let c_tier_runs =
  List.map (fun t -> (t, Tel.counter ("oracle.runs." ^ tier_name t))) all_tiers

let c_tier_skips =
  List.map (fun t -> (t, Tel.counter ("oracle.skips." ^ tier_name t))) all_tiers

(* ---------- case layout ---------- *)

(* scratch buffer: 128 bytes of data the body may address through rdi,
   then the spill area written by the epilogue *)
let data_size = 128
let gpr_off = 128
let xmm_off = 192
let flag_off = 256
let scratch_size = 320

let gpr_pool =
  [| Reg.RAX; Reg.RCX; Reg.RDX; Reg.RSI; Reg.R8; Reg.R9; Reg.R10; Reg.R11 |]

let xmm_pool = [| 0; 1; 2; 3 |]

(* flags observable through setcc; AF has no setcc and is excluded *)
let flags_obs = [| (Insn.O, "of"); (Insn.S, "sf"); (Insn.E, "zf");
                   (Insn.B, "cf"); (Insn.P, "pf") |]

type case = {
  body : Insn.item list;     (* randomized middle, no Ret *)
  args : int64 * int64;      (* rsi, rdx seeds *)
  fargs : float * float;     (* xmm0, xmm1 seeds *)
  mem : string;              (* initial scratch data, [data_size] bytes *)
}

(* the SysV signature every case is lifted under *)
let case_sig : Ins.signature =
  { Ins.args = [ Ins.Ptr 0; Ins.I64; Ins.I64; Ins.F64; Ins.F64 ];
    ret = Some Ins.I64 }

let fn_name = "oracle_case"

(* every observed register is defined here so that no tier — in
   particular the lifter, which models unwritten state as undef —
   ever depends on an uninitialized value; the trailing [test]
   defines the flags *)
let prelude =
  [ Insn.I (Insn.Mov (Insn.W64, Insn.OReg Reg.RAX, Insn.OReg Reg.RSI));
    Insn.I (Insn.Mov (Insn.W64, Insn.OReg Reg.RCX, Insn.OReg Reg.RDX));
    Insn.I (Insn.Lea (Reg.R8, Insn.mem_bi ~disp:7 Reg.RSI Reg.RDX Insn.S2));
    Insn.I (Insn.Lea (Reg.R9, Insn.mem_bi ~disp:(-13) Reg.RDX Reg.RSI Insn.S4));
    Insn.I (Insn.Lea (Reg.R10, Insn.mem_base ~disp:1 Reg.RSI));
    Insn.I (Insn.Lea (Reg.R11, Insn.mem_base ~disp:17 Reg.RDX));
    Insn.I (Insn.SseMov (Insn.Movsd, Insn.Xr 2, Insn.Xr 0));
    Insn.I (Insn.SseMov (Insn.Movsd, Insn.Xr 3, Insn.Xr 1));
    Insn.I (Insn.Unpcklpd (0, Insn.Xr 0));
    Insn.I (Insn.Unpcklpd (1, Insn.Xr 1));
    Insn.I (Insn.Unpcklpd (2, Insn.Xr 2));
    Insn.I (Insn.Unpcklpd (3, Insn.Xr 3));
    Insn.I (Insn.Test (Insn.W64, Insn.OReg Reg.RSI, Insn.OReg Reg.RSI)) ]

(* spill flags first (setcc reads them, stores don't clobber them),
   then GPRs, then full 128-bit XMMs *)
let epilogue =
  Array.to_list
    (Array.mapi
       (fun k (cc, _) ->
         Insn.I (Insn.Setcc (cc, Insn.OMem (Insn.mem_base ~disp:(flag_off + k)
                                              Reg.RDI))))
       flags_obs)
  @ Array.to_list
      (Array.mapi
         (fun k r ->
           Insn.I (Insn.Mov (Insn.W64,
                             Insn.OMem (Insn.mem_base ~disp:(gpr_off + (8 * k))
                                          Reg.RDI),
                             Insn.OReg r)))
         gpr_pool)
  @ Array.to_list
      (Array.mapi
         (fun k x ->
           Insn.I (Insn.SseMov (Insn.Movups,
                                Insn.Xm (Insn.mem_base
                                           ~disp:(xmm_off + (16 * k)) Reg.RDI),
                                Insn.Xr x)))
         xmm_pool)
  @ [ Insn.I Insn.Ret ]

let case_items (c : case) : Insn.item list = prelude @ c.body @ epilogue

(* ---------- compiled form ---------- *)

(** A case assembled to machine code at [Image.code_base]; this is
    what tiers execute and what reproducers persist, so a committed
    corpus stays replayable even if the prelude/epilogue evolve. *)
type compiled = {
  c_code : string;
  c_args : int64 * int64;
  c_fargs : float * float;
  c_mem : string;
}

let compile (c : case) : compiled =
  let bytes, _, _ = Encode.assemble ~base:Image.code_base (case_items c) in
  { c_code = bytes; c_args = c.args; c_fargs = c.fargs; c_mem = c.mem }

(* ---------- observations ---------- *)

(** What a tier run observes: the function's return value and the
    scratch buffer afterwards (data area + epilogue spills, i.e.
    memory, GPRs, XMMs and flags in one byte string). *)
type obs = { o_ret : int64; o_bytes : string }

type outcome = Ran of obs | Skip of string

let slot_name (i : int) : string =
  if i < gpr_off then Printf.sprintf "mem[+0x%02x]" i
  else if i < xmm_off then Reg.name64 gpr_pool.((i - gpr_off) / 8)
  else if i < flag_off then
    let k = (i - xmm_off) / 16 in
    Printf.sprintf "xmm%d.%s" xmm_pool.(k)
      (if (i - xmm_off) mod 16 < 8 then "lo" else "hi")
  else if i - flag_off < Array.length flags_obs then
    snd flags_obs.(i - flag_off)
  else Printf.sprintf "scratch[+0x%02x]" i

(* the 8-byte-aligned window around a mismatching byte, for display *)
let slot_value (bytes : string) (i : int) : string =
  let base = i land lnot 7 in
  let v = ref 0L in
  for k = 7 downto 0 do
    let idx = base + k in
    let b = if idx < String.length bytes then Char.code bytes.[idx] else 0 in
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int b)
  done;
  Printf.sprintf "0x%016Lx" !v

(* ---------- tier runners ---------- *)

let setup (cc : compiled) =
  let img = Image.create () in
  let scratch = Image.alloc_data ~align:16 img scratch_size in
  Mem.write_bytes img.Image.cpu.Cpu.mem scratch cc.c_mem;
  let fn = Image.install_bytes ~name:fn_name img cc.c_code in
  (img, scratch, fn)

let int_args scratch cc =
  let a1, a2 = cc.c_args in
  [ Int64.of_int scratch; a1; a2 ]

let float_args cc =
  let f1, f2 = cc.c_fargs in
  [ f1; f2 ]

let insn_budget = 200_000

let read_obs img scratch ret =
  { o_ret = ret;
    o_bytes = Mem.read_bytes img.Image.cpu.Cpu.mem scratch scratch_size }

let run_cpu engine (cc : compiled) : obs =
  let img, scratch, fn = setup cc in
  let ret, _ =
    Image.call ~engine ~args:(int_args scratch cc) ~fargs:(float_args cc)
      ~max_insns:insn_budget img ~fn
  in
  read_obs img scratch ret

let lift_case img fn =
  let read = Mem.read_u8 img.Image.cpu.Cpu.mem in
  Lift.lift ~read ~entry:fn ~name:fn_name case_sig

let optimize_case (m : Ins.modul) (f : Ins.func) =
  Pipeline.run m;
  Verify.assert_ok ~ctx:"oracle" f

let run_ir ~(optimize : bool) (cc : compiled) : obs =
  let img, scratch, fn = setup cc in
  let f = lift_case img fn in
  let m = { Ins.funcs = [ f ]; globals = [] } in
  if optimize then optimize_case m f;
  let ctx = Interp.create ~mem:img.Image.cpu.Cpu.mem m in
  let a1, a2 = cc.c_args and f1, f2 = cc.c_fargs in
  let rv =
    Interp.run ctx fn_name
      [ Interp.P scratch; Interp.I a1; Interp.I a2; Interp.F f1; Interp.F f2 ]
  in
  let ret =
    match rv with
    | Some (Interp.I v) -> v
    | Some (Interp.P a) -> Int64.of_int a
    | _ -> Err.fail Err.Emulate "oracle: non-integer return value"
  in
  read_obs img scratch ret

let run_jit (cc : compiled) : obs =
  let img, scratch, fn = setup cc in
  let f = lift_case img fn in
  let m = { Ins.funcs = [ f ]; globals = [] } in
  optimize_case m f;
  let jfn = Jit.install_func img f in
  let ret, _ =
    Image.call ~engine:Cpu.Superblocks ~args:(int_args scratch cc)
      ~fargs:(float_args cc) ~max_insns:insn_budget img ~fn:jfn
  in
  read_obs img scratch ret

let run_tier (t : tier) (cc : compiled) : obs =
  match t with
  | CpuStep -> run_cpu Cpu.SingleStep cc
  | CpuSB -> run_cpu Cpu.Superblocks cc
  | IrLift -> run_ir ~optimize:false cc
  | IrOpt -> run_ir ~optimize:true cc
  | JitCode -> run_jit cc

(** A typed error ([Obrew_fault.Err]), an [Insn.Unsupported] or an
    [Interp_error] raised mid-sequence means the tier cannot express
    the case — a *skip*, never a divergence.  Anything untyped still
    escapes: those are harness bugs we want loud. *)
let guarded_run (t : tier) (cc : compiled) : outcome =
  Tel.incr_c (List.assoc t c_tier_runs);
  match run_tier t cc with
  | o -> Ran o
  | exception Err.Error e ->
    Tel.incr_c (List.assoc t c_tier_skips);
    Skip (Err.to_string e)
  | exception Insn.Unsupported msg ->
    Tel.incr_c (List.assoc t c_tier_skips);
    Skip ("unsupported insn: " ^ msg)
  | exception Interp.Interp_error msg ->
    Tel.incr_c (List.assoc t c_tier_skips);
    Skip ("interp: " ^ msg)

(* ---------- divergence attribution ---------- *)

type attribution = {
  at_addr : int;      (* guest address of the last writer *)
  at_ord : int;       (* its ordinal within the case *)
  at_prov : int;      (* provenance id, Prov.make ~addr ~ord *)
  at_insn : string;   (* disassembly *)
}

(* Synthesize the observation byte string directly from CPU state, in
   the same slot layout the epilogue spills to.  Stepping the
   single-step engine and diffing consecutive synthesized observations
   yields, for every slot, the guest instruction that last changed
   it — without relying on the epilogue stores themselves. *)
let synth_obs (cpu : Cpu.t) (scratch : int) : Bytes.t =
  let b = Bytes.create scratch_size in
  for i = 0 to data_size - 1 do
    Bytes.set_uint8 b i (Mem.read_u8 cpu.Cpu.mem (scratch + i))
  done;
  Array.iteri
    (fun k r ->
      Bytes.set_int64_le b (gpr_off + (8 * k)) cpu.Cpu.regs.{Reg.index r})
    gpr_pool;
  Array.iteri
    (fun k x ->
      Bytes.set_int64_le b (xmm_off + (16 * k)) cpu.Cpu.xlo.{x};
      Bytes.set_int64_le b (xmm_off + (16 * k) + 8) cpu.Cpu.xhi.{x})
    xmm_pool;
  let flag cc =
    match (cc : Insn.cc) with
    | Insn.O -> cpu.Cpu.o_f
    | Insn.S -> cpu.Cpu.sf
    | Insn.E -> cpu.Cpu.zf
    | Insn.B -> cpu.Cpu.cf
    | Insn.P -> cpu.Cpu.pf
    | _ -> false
  in
  Array.iteri
    (fun k (cc, _) ->
      Bytes.set_uint8 b (flag_off + k) (if flag cc then 1 else 0))
    flags_obs;
  (* zero the spill area below the flags so indexes stay in range *)
  for i = flag_off + Array.length flags_obs to scratch_size - 1 do
    Bytes.set_uint8 b i 0
  done;
  b

(** Single-step the reference emulator over the case, recording for
    every observation slot the guest instruction that last changed it;
    then report the writer of [slot].  Returns [None] when the
    reference itself cannot run the case. *)
let attribute (cc : compiled) (slot : int) : attribution option =
  match
    let img, scratch, fn = setup cc in
    let cpu = img.Image.cpu in
    List.iteri
      (fun i v ->
        match List.nth_opt Reg.arg_regs i with
        | Some r -> cpu.Cpu.regs.{Reg.index r} <- v
        | None -> ())
      (int_args scratch cc);
    List.iteri
      (fun i v ->
        cpu.Cpu.xlo.{i} <- Int64.bits_of_float v;
        cpu.Cpu.xhi.{i} <- 0L)
      (float_args cc);
    let sp = Int64.to_int cpu.Cpu.regs.{Reg.index Reg.RSP} land lnot 15 in
    cpu.Cpu.regs.{Reg.index Reg.RSP} <- Int64.of_int (sp - 8);
    Mem.write_u64 cpu.Cpu.mem (sp - 8) (Int64.of_int Cpu.stop_addr);
    cpu.Cpu.rip <- fn;
    let writers = Array.make scratch_size (-1, -1) in
    let prev = ref (synth_obs cpu scratch) in
    let ord = ref 0 in
    let budget = ref 100_000 in
    while cpu.Cpu.rip <> Cpu.stop_addr && !budget > 0 do
      let addr = cpu.Cpu.rip in
      Cpu.step cpu;
      decr budget;
      let now = synth_obs cpu scratch in
      for i = 0 to scratch_size - 1 do
        if Bytes.get now i <> Bytes.get !prev i then
          writers.(i) <- (addr, !ord)
      done;
      prev := now;
      incr ord
    done;
    (img, writers)
  with
  | exception Err.Error _ -> None
  | exception Insn.Unsupported _ -> None
  | img, writers ->
    let addr, ord = writers.(slot) in
    if addr < 0 then None
    else
      let insn =
        match Image.disassemble img addr 1 with
        | (_, i) :: _ -> Pp.insn i
        | [] -> "?"
        | exception _ -> "?"
      in
      Some { at_addr = addr; at_ord = ord;
             at_prov = Prov.make ~addr ~ord; at_insn = insn }

(* ---------- comparison ---------- *)

type divergence = {
  d_ref : tier;
  d_tier : tier;
  d_slot : string;            (* decoded slot name *)
  d_slot_index : int option;  (* byte index, None for the return value *)
  d_ref_val : string;
  d_tier_val : string;
  d_attr : attribution option;
}

type verdict = {
  v_ran : tier list;
  v_skips : (tier * string) list;
  v_div : divergence option;
}

let first_diff (a : string) (b : string) : int option =
  let n = min (String.length a) (String.length b) in
  let rec go i =
    if i >= n then None else if a.[i] <> b.[i] then Some i else go (i + 1)
  in
  go 0

let compare_pair (cc : compiled) (rt : tier) (ro : obs) (t : tier) (o : obs) :
    divergence option =
  match first_diff ro.o_bytes o.o_bytes with
  | Some i ->
    Some
      { d_ref = rt; d_tier = t; d_slot = slot_name i; d_slot_index = Some i;
        d_ref_val = slot_value ro.o_bytes i; d_tier_val = slot_value o.o_bytes i;
        d_attr = attribute cc i }
  | None ->
    if ro.o_ret <> o.o_ret then
      Some
        { d_ref = rt; d_tier = t; d_slot = "ret (rax)"; d_slot_index = None;
          d_ref_val = Printf.sprintf "0x%016Lx" ro.o_ret;
          d_tier_val = Printf.sprintf "0x%016Lx" o.o_ret;
          (* rax is also a spilled slot; attribute through it *)
          d_attr = attribute cc gpr_off }
    else None

(** Run [tiers] over a compiled case and compare every tier that ran
    against the first one that did (tier order puts the single-step
    emulator — the semantic ground truth — first). *)
let run_compiled ?(tiers = all_tiers) (cc : compiled) : verdict =
  Tel.incr_c c_cases;
  let outcomes = List.map (fun t -> (t, guarded_run t cc)) tiers in
  let ran =
    List.filter_map
      (function t, Ran o -> Some (t, o) | _, Skip _ -> None)
      outcomes
  in
  let skips =
    List.filter_map
      (function t, Skip m -> Some (t, m) | _, Ran _ -> None)
      outcomes
  in
  let div =
    match ran with
    | [] | [ _ ] -> None
    | (rt, ro) :: rest ->
      List.fold_left
        (fun acc (t, o) ->
          match acc with
          | Some _ -> acc
          | None -> compare_pair cc rt ro t o)
        None rest
  in
  (match div with
   | Some _ -> Tel.incr_c c_divergences
   | None -> if List.length ran < 2 then Tel.incr_c c_skipped);
  { v_ran = List.map fst ran; v_skips = skips; v_div = div }

let run ?tiers (c : case) : verdict =
  match compile c with
  | cc -> run_compiled ?tiers cc
  | exception Insn.Unsupported msg ->
    (* an unencodable generated case is a whole-case skip *)
    Tel.incr_c c_cases;
    Tel.incr_c c_skipped;
    { v_ran = []; v_skips = [ (CpuStep, "unencodable: " ^ msg) ]; v_div = None }
  | exception Err.Error e ->
    (* typed failures during case setup (e.g. a quarantined install on
       the shared path) are whole-case skips too: in-process sentinel
       checks must never crash the host *)
    Tel.incr_c c_cases;
    Tel.incr_c c_skipped;
    { v_ran = []; v_skips = [ (CpuStep, Err.to_string e) ]; v_div = None }

let diverged (v : verdict) : bool = v.v_div <> None

(* ---------- reporting ---------- *)

let pp_divergence (buf : Buffer.t) (d : divergence) =
  Buffer.add_string buf
    (Printf.sprintf "%s vs %s disagree on %s: %s vs %s\n" (tier_name d.d_ref)
       (tier_name d.d_tier) d.d_slot d.d_ref_val d.d_tier_val);
  match d.d_attr with
  | Some a ->
    Buffer.add_string buf
      (Printf.sprintf "  last written at guest 0x%x (insn #%d, prov 0x%x): %s\n"
         a.at_addr a.at_ord a.at_prov a.at_insn)
  | None -> ()

let divergence_to_string (d : divergence) : string =
  let buf = Buffer.create 128 in
  pp_divergence buf d;
  Buffer.contents buf

let body_listing (c : case) : string =
  Pp.items c.body
