(** Deterministic random-case generation for the oracle.

    A hand-rolled splitmix64 stream (never [Random]) keeps campaigns
    bit-reproducible from a single integer seed: the same seed always
    yields the same case, on any host, which is what lets CI pin a
    seed and lets a failing case number be re-generated locally.

    Generated bodies draw from the full instruction subset the stack
    claims to support — ALU/shift/unop in all widths, high-byte
    registers, loads/stores through the scratch pointer, cmov/setcc,
    forward [Jcc] chunks, balanced push/pop, imul, and the scalar and
    packed SSE operations — while honouring the harness invariants:
    never touch rdi/rsp/rbp, keep memory accesses inside the scratch
    data area, terminate (forward branches only). *)

open Obrew_x86
module O = Oracle

(* ---------- splitmix64 ---------- *)

type rng = { mutable s : int64 }

let make (seed : int) : rng =
  { s = Int64.logxor (Int64.of_int seed) 0x5DEECE66DL }

let next64 (r : rng) : int64 =
  r.s <- Int64.add r.s 0x9E3779B97F4A7C15L;
  let z = r.s in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int (r : rng) (n : int) : int =
  if n <= 0 then 0
  else Int64.to_int (Int64.unsigned_rem (next64 r) (Int64.of_int n))

let pick (r : rng) (a : 'a array) : 'a = a.(int r (Array.length a))
let chance (r : rng) (pct : int) : bool = int r 100 < pct

(* ---------- operand material ---------- *)

let widths = [| Insn.W8; Insn.W16; Insn.W32; Insn.W64 |]
let wide_widths = [| Insn.W16; Insn.W32; Insn.W64 |]
let gprs = O.gpr_pool
let xmms = O.xmm_pool

(* high-byte forms exist only for rax/rcx/rdx/rbx and cannot be
   encoded alongside REX-requiring registers; keep pairings inside
   the legacy set *)
let hb_regs = [| Reg.RAX; Reg.RCX; Reg.RDX |]

let alu_ops =
  [| Insn.Add; Insn.Sub; Insn.And; Insn.Or; Insn.Xor; Insn.Cmp;
     Insn.Adc; Insn.Sbb |]

let shift_ops = [| Insn.Shl; Insn.Shr; Insn.Sar |]
let unops = [| Insn.Neg; Insn.Not; Insn.Inc; Insn.Dec |]

(* counts around the width/mask boundaries where the shift-semantics
   bugs live *)
let shift_counts =
  [| 0; 1; 3; 4; 7; 8; 9; 12; 15; 16; 17; 24; 31; 32; 33; 47; 63; 64; 65;
     127; 255 |]

let ccs =
  [| Insn.O; Insn.NO; Insn.B; Insn.AE; Insn.E; Insn.NE; Insn.BE; Insn.A;
     Insn.S; Insn.NS; Insn.P; Insn.NP; Insn.L; Insn.GE; Insn.LE; Insn.G |]

let cmov_widths = [| Insn.W16; Insn.W32; Insn.W64 |]

(* immediates stay within imm32 (sign-extended encodings) *)
let imm (r : rng) : int64 =
  match int r 7 with
  | 0 -> 0L
  | 1 -> 1L
  | 2 -> -1L
  | 3 -> Int64.of_int (int r 256)
  | 4 -> Int64.neg (Int64.of_int (int r 256))
  | 5 -> Int64.of_int32 (Int64.to_int32 (next64 r))
  | _ -> Int64.of_int (int r 65536)

let full_imm (r : rng) : int64 =
  match int r 4 with
  | 0 -> next64 r
  | 1 -> Int64.of_int (int r 256)
  | 2 -> -1L
  | _ -> Int64.of_int32 (Int64.to_int32 (next64 r))

(* a scratch-data memory operand aligned for width [w] *)
let mem_int (r : rng) (w : Insn.width) : Insn.mem_addr =
  let sz = Insn.width_bytes w in
  let slots = (O.data_size - sz) / sz in
  Insn.mem_base ~disp:(sz * int r (slots + 1)) Reg.RDI

(* 16-byte aligned, for SSE operands *)
let mem_sse (r : rng) : Insn.mem_addr =
  Insn.mem_base ~disp:(16 * int r (O.data_size / 16)) Reg.RDI

let reg_or_imm_src (r : rng) (_w : Insn.width) : Insn.operand =
  if chance r 40 then Insn.OImm (imm r) else Insn.OReg (pick r gprs)

(* ---------- instruction generators ---------- *)

(* each generator returns a chunk of items; labels are allocated from
   [lbl], shared across the body *)

let gen_alu r _lbl =
  let w = pick r widths in
  let op = pick r alu_ops in
  match int r 4 with
  | 0 -> [ Insn.I (Insn.Alu (op, w, Insn.OReg (pick r gprs),
                             reg_or_imm_src r w)) ]
  | 1 -> [ Insn.I (Insn.Alu (op, w, Insn.OReg (pick r gprs),
                             Insn.OMem (mem_int r w))) ]
  | 2 -> [ Insn.I (Insn.Alu (op, w, Insn.OMem (mem_int r w),
                             Insn.OReg (pick r gprs))) ]
  | _ ->
    (* legacy high-byte flavour *)
    [ Insn.I (Insn.Alu (op, Insn.W8, Insn.OReg8H (pick r hb_regs),
                        (if chance r 50 then Insn.OImm (Int64.of_int (int r 256))
                         else Insn.OReg (pick r hb_regs)))) ]

let gen_mov r _lbl =
  let w = pick r widths in
  match int r 6 with
  | 0 -> [ Insn.I (Insn.Mov (w, Insn.OReg (pick r gprs),
                             Insn.OReg (pick r gprs))) ]
  | 1 -> [ Insn.I (Insn.Mov (w, Insn.OReg (pick r gprs),
                             Insn.OImm (imm r))) ]
  | 2 -> [ Insn.I (Insn.Mov (w, Insn.OReg (pick r gprs),
                             Insn.OMem (mem_int r w))) ]
  | 3 -> [ Insn.I (Insn.Mov (w, Insn.OMem (mem_int r w),
                             Insn.OReg (pick r gprs))) ]
  | 4 -> [ Insn.I (Insn.Movabs (pick r gprs, full_imm r)) ]
  | _ ->
    let dw = pick r wide_widths in
    let sw = if dw = Insn.W16 then Insn.W8
             else if chance r 50 then Insn.W8 else Insn.W16 in
    let src = if chance r 50 then Insn.OReg (pick r gprs)
              else Insn.OMem (mem_int r sw) in
    if chance r 50 then [ Insn.I (Insn.Movzx (dw, pick r gprs, sw, src)) ]
    else [ Insn.I (Insn.Movsx (dw, pick r gprs, sw, src)) ]

let gen_lea r _lbl =
  let base = pick r gprs in
  let m =
    if chance r 50 then Insn.mem_base ~disp:(int r 64 - 32) base
    else
      Insn.mem_bi ~disp:(int r 64 - 32) base (pick r gprs)
        (pick r [| Insn.S1; Insn.S2; Insn.S4; Insn.S8 |])
  in
  [ Insn.I (Insn.Lea (pick r gprs, m)) ]

let gen_shift r _lbl =
  let w = pick r widths in
  let op = pick r shift_ops in
  let dst =
    if chance r 25 then Insn.OMem (mem_int r w) else Insn.OReg (pick r gprs)
  in
  if chance r 35 then
    (* CL count: sometimes force an interesting count into cl first *)
    let setup =
      if chance r 60 then
        [ Insn.I (Insn.Mov (Insn.W8, Insn.OReg Reg.RCX,
                            Insn.OImm (Int64.of_int (pick r shift_counts)))) ]
      else []
    in
    setup @ [ Insn.I (Insn.Shift (op, w, dst, Insn.ShCl)) ]
  else [ Insn.I (Insn.Shift (op, w, dst, Insn.ShImm (pick r shift_counts))) ]

let gen_unop r _lbl =
  let w = pick r widths in
  let dst =
    if chance r 25 then Insn.OMem (mem_int r w) else Insn.OReg (pick r gprs)
  in
  [ Insn.I (Insn.Unop (pick r unops, w, dst)) ]

let gen_test_cmp r _lbl =
  let w = pick r widths in
  if chance r 50 then
    [ Insn.I (Insn.Test (w, Insn.OReg (pick r gprs), reg_or_imm_src r w)) ]
  else
    [ Insn.I (Insn.Alu (Insn.Cmp, w, Insn.OReg (pick r gprs),
                        reg_or_imm_src r w)) ]

let gen_imul r _lbl =
  let w = pick r wide_widths in
  if chance r 50 then
    [ Insn.I (Insn.Imul2 (w, pick r gprs,
                          (if chance r 60 then Insn.OReg (pick r gprs)
                           else Insn.OMem (mem_int r w)))) ]
  else
    [ Insn.I (Insn.Imul3 (w, pick r gprs, Insn.OReg (pick r gprs), imm r)) ]

let gen_cmov_setcc r _lbl =
  if chance r 50 then
    [ Insn.I (Insn.Cmov (pick r ccs, pick r cmov_widths, pick r gprs,
                         (if chance r 60 then Insn.OReg (pick r gprs)
                          else Insn.OMem (mem_int r (pick r cmov_widths))))) ]
  else
    [ Insn.I (Insn.Setcc (pick r ccs,
                          (if chance r 50 then Insn.OReg (pick r gprs)
                           else Insn.OMem (mem_int r Insn.W8)))) ]

let gen_push_pop r _lbl =
  [ Insn.I (Insn.Push (Insn.OReg (pick r gprs)));
    Insn.I (Insn.Pop (Insn.OReg (pick r gprs))) ]

let gen_cqo_cdq r _lbl =
  [ Insn.I (if chance r 50 then Insn.Cqo else Insn.Cdq) ]

let gen_sse_mov r _lbl =
  match int r 6 with
  | 0 -> [ Insn.I (Insn.SseMov (pick r [| Insn.Movsd; Insn.Movss; Insn.Movq;
                                          Insn.Movups; Insn.Movaps;
                                          Insn.Movdqu |],
                                Insn.Xr (pick r xmms), Insn.Xr (pick r xmms))) ]
  | 1 -> [ Insn.I (Insn.SseMov (pick r [| Insn.Movsd; Insn.Movss; Insn.Movq;
                                          Insn.Movups; Insn.Movdqu |],
                                Insn.Xr (pick r xmms), Insn.Xm (mem_sse r))) ]
  | 2 -> [ Insn.I (Insn.SseMov (pick r [| Insn.Movsd; Insn.Movss;
                                          Insn.Movups; Insn.Movdqu |],
                                Insn.Xm (mem_sse r), Insn.Xr (pick r xmms))) ]
  | 3 -> [ Insn.I (Insn.MovqXR (pick r xmms, pick r gprs)) ]
  | 4 -> [ Insn.I (Insn.MovqRX (pick r gprs, pick r xmms)) ]
  | _ -> [ Insn.I (Insn.Unpcklpd (pick r xmms, Insn.Xr (pick r xmms))) ]

let gen_sse_arith r _lbl =
  let op = pick r [| Insn.FAdd; Insn.FSub; Insn.FMul; Insn.FDiv; Insn.FMin;
                     Insn.FMax; Insn.FSqrt |] in
  let p = pick r [| Insn.Sd; Insn.Ss; Insn.Pd; Insn.Ps |] in
  let src = if chance r 30 then Insn.Xm (mem_sse r)
            else Insn.Xr (pick r xmms) in
  [ Insn.I (Insn.SseArith (op, p, pick r xmms, src)) ]

let gen_sse_logic r _lbl =
  let op = pick r [| Insn.Pxor; Insn.Pand; Insn.Por; Insn.Xorps; Insn.Xorpd;
                     Insn.Andps; Insn.Andpd |] in
  let src = if chance r 30 then Insn.Xm (mem_sse r)
            else Insn.Xr (pick r xmms) in
  [ Insn.I (Insn.SseLogic (op, pick r xmms, src)) ]

let gen_sse_misc r _lbl =
  match int r 5 with
  | 0 -> [ Insn.I (Insn.Ucomis ((if chance r 50 then Insn.Sd else Insn.Ss),
                                pick r xmms,
                                (if chance r 40 then Insn.Xm (mem_sse r)
                                 else Insn.Xr (pick r xmms)))) ]
  | 1 -> [ Insn.I (Insn.Cvtsi2sd (pick r xmms,
                                  (if chance r 50 then Insn.W32 else Insn.W64),
                                  Insn.OReg (pick r gprs))) ]
  | 2 ->
    [ Insn.I (Insn.Cvtsd2ss (pick r xmms, Insn.Xr (pick r xmms)));
      Insn.I (Insn.Cvtss2sd (pick r xmms, Insn.Xr (pick r xmms))) ]
  | 3 -> [ Insn.I (Insn.Shufpd (pick r xmms, Insn.Xr (pick r xmms), int r 4)) ]
  | _ -> [ Insn.I (Insn.Padd ((if chance r 50 then Insn.W32 else Insn.W64),
                              pick r xmms,
                              (if chance r 30 then Insn.Xm (mem_sse r)
                               else Insn.Xr (pick r xmms)))) ]

(* simple register-to-register fillers safe inside a Jcc arm *)
let gen_filler r _lbl =
  match int r 3 with
  | 0 -> [ Insn.I (Insn.Mov (Insn.W64, Insn.OReg (pick r gprs),
                             Insn.OReg (pick r gprs))) ]
  | 1 -> [ Insn.I (Insn.Alu (pick r [| Insn.Add; Insn.Xor; Insn.And |],
                             pick r widths, Insn.OReg (pick r gprs),
                             Insn.OReg (pick r gprs))) ]
  | _ -> [ Insn.I (Insn.Unop (pick r unops, pick r widths,
                              Insn.OReg (pick r gprs))) ]

(* a forward conditional branch: flags are always defined (prelude
   tests, bodies only add flag writers), the target is strictly ahead *)
let gen_jcc r lbl =
  let l = !lbl in
  incr lbl;
  let cmp = gen_test_cmp r lbl in
  let arm = List.concat (List.init (1 + int r 2) (fun _ -> gen_filler r lbl)) in
  cmp @ [ Insn.I (Insn.Jcc (pick r ccs, Insn.Lbl l)) ] @ arm @ [ Insn.L l ]

(* ---------- fusion-profile generators ---------- *)

(* adjacent pairs the superblock engine's mega-op fuser recognizes:
   mov-imm feeding an ALU op, lea feeding a memory access, cmp/test
   immediately followed by jcc, and push/pop spill pairs.  Emitting
   them back to back makes the runs that [build_slots] folds. *)
let gen_fused_pair r _lbl =
  let w = pick r [| Insn.W32; Insn.W64 |] in
  match int r 4 with
  | 0 ->
    let d = pick r gprs in
    [ Insn.I (Insn.Mov (w, Insn.OReg d, Insn.OImm (imm r)));
      Insn.I (Insn.Alu (pick r [| Insn.Add; Insn.Sub; Insn.And; Insn.Or;
                                  Insn.Xor |],
                        w, Insn.OReg d, Insn.OReg (pick r gprs))) ]
  | 1 ->
    let d = pick r gprs in
    [ Insn.I (Insn.Lea (d, Insn.mem_base ~disp:(8 * int r 8) Reg.RDI));
      Insn.I (Insn.Mov (Insn.W64, Insn.OReg (pick r gprs),
                        Insn.OMem (Insn.mem_base d))) ]
  | 2 ->
    [ Insn.I (Insn.Push (Insn.OReg (pick r gprs)));
      Insn.I (Insn.Pop (Insn.OReg (pick r gprs)));
      Insn.I (Insn.Push (Insn.OReg (pick r gprs)));
      Insn.I (Insn.Pop (Insn.OReg (pick r gprs))) ]
  | _ ->
    List.concat
      (List.init (2 + int r 3) (fun _ ->
           [ Insn.I (Insn.Alu (pick r [| Insn.Add; Insn.Sub; Insn.Xor |],
                               w, Insn.OReg (pick r gprs),
                               reg_or_imm_src r w)) ]))

(* a register from the pool other than [avoid] *)
let pick_other r avoid =
  let g = ref (pick r gprs) in
  while Reg.equal !g avoid do
    g := pick r gprs
  done;
  !g

(* a tight counted loop over a backedge: iteration counts sit above
   the trace-promotion threshold so the superblock tier extends the
   loop body across the backedge, unrolls it into a trace and takes
   the side exit on the final iteration.  The body never writes the
   counter, so termination is structural. *)
let gen_loop r lbl =
  let l = !lbl in
  incr lbl;
  let cnt = pick r gprs in
  let iters = 6 + int r 20 in
  let body =
    List.concat
      (List.init (1 + int r 3) (fun _ ->
           let d = pick_other r cnt in
           match int r 3 with
           | 0 ->
             [ Insn.I (Insn.Alu (pick r [| Insn.Add; Insn.Sub; Insn.Xor |],
                                 Insn.W64, Insn.OReg d,
                                 Insn.OReg (pick_other r cnt))) ]
           | 1 ->
             [ Insn.I (Insn.Mov (Insn.W64, Insn.OReg d,
                                 Insn.OMem (mem_int r Insn.W64))) ]
           | _ ->
             [ Insn.I (Insn.Lea (d, Insn.mem_base ~disp:(int r 32) cnt)) ]))
  in
  [ Insn.I (Insn.Mov (Insn.W64, Insn.OReg cnt,
                      Insn.OImm (Int64.of_int iters)));
    Insn.L l ]
  @ body
  @ [ Insn.I (Insn.Unop (Insn.Dec, Insn.W64, Insn.OReg cnt));
      Insn.I (Insn.Jcc (Insn.NE, Insn.Lbl l)) ]

(* ---------- indirect-profile generators ---------- *)

(* The indirect profile stresses the paths PR 10 opened: jump tables
   (a bounded Q-entry table the lifter enumerates and the rewriter
   folds), computed gotos (movabs-pinned register targets), and
   call/ret chains (in-region calls the lifter turns into guarded
   push/branch pairs, and the superblock engine dispatches through
   inline caches).  Every construct is shaped so the loaded target is
   always one of the enumerable entries — divergence-free by design;
   a tier that cannot express a form must skip with a typed error. *)

(* jump-table dispatch: mask an index register, load the arm address
   from an in-code table of Q entries, jump through it.  The masked
   index always lands inside the table, the table is jumped over (it
   is data, never executed), and every arm rejoins so the body falls
   through to the epilogue. *)
let gen_jump_table r lbl =
  let n = 1 lsl (1 + int r 2) in
  (* 2, 4 or 8 arms *)
  let l_tbl = !lbl in
  let l_join = !lbl + 1 in
  let arm_lbls = List.init n (fun k -> !lbl + 2 + k) in
  lbl := !lbl + 2 + n;
  let idx = pick r gprs in
  let base = pick_other r idx in
  let dispatch =
    [ Insn.I (Insn.Alu (Insn.And, Insn.W64, Insn.OReg idx,
                        Insn.OImm (Int64.of_int (n - 1))));
      Insn.MovLbl (base, l_tbl);
      Insn.I (Insn.JmpInd
                (Insn.OMem (Insn.mk_mem ~base ~index:(idx, Insn.S8) ()))) ]
  in
  let table =
    Insn.L l_tbl :: List.map (fun l -> Insn.Q (Insn.Lbl l)) arm_lbls
  in
  let arms =
    List.concat_map
      (fun l ->
        (Insn.L l :: gen_filler r lbl)
        @ [ Insn.I (Insn.Jmp (Insn.Lbl l_join)) ])
      arm_lbls
  in
  dispatch @ table @ arms @ [ Insn.L l_join ]

(* computed goto: pin the target register with a movabs immediately
   before the indirect jump (the lifter's per-run constant tracking
   only survives adjacency), skipping a couple of dead filler
   instructions no tier may execute *)
let gen_computed_goto r lbl =
  let l = !lbl in
  incr lbl;
  let t = pick r gprs in
  [ Insn.MovLbl (t, l); Insn.I (Insn.JmpInd (Insn.OReg t)) ]
  @ gen_filler r lbl
  @ [ Insn.L l ]

(* in-region call/ret chain: call a local subroutine placed after the
   continuation, sometimes two levels deep.  The lifter has no
   signature for the target, so it must lower the call as a guarded
   push/branch and route the rets through its return-address guard
   chain; the superblock engine dispatches both rets through inline
   caches. *)
let gen_call_chain r lbl =
  let deep = chance r 35 in
  let l_sub = !lbl in
  let l_sub2 = !lbl + 1 in
  let l_over = !lbl + 2 in
  lbl := !lbl + 3;
  let sub2 =
    if deep then
      (Insn.L l_sub2 :: gen_filler r lbl) @ [ Insn.I Insn.Ret ]
    else []
  in
  let sub_tail =
    if deep then
      [ Insn.I (Insn.Call (Insn.Lbl l_sub2)); Insn.I Insn.Ret ]
    else [ Insn.I Insn.Ret ]
  in
  [ Insn.I (Insn.Call (Insn.Lbl l_sub)); Insn.I (Insn.Jmp (Insn.Lbl l_over));
    Insn.L l_sub ]
  @ gen_filler r lbl @ sub_tail @ sub2
  @ [ Insn.L l_over ]

(* indirect call through a movabs-pinned register: the callee is a
   local subroutine, so this composes the devirtualization path with
   the return-address guard chain *)
let gen_indirect_call r lbl =
  let l_sub = !lbl in
  let l_over = !lbl + 1 in
  lbl := !lbl + 2;
  let t = pick r gprs in
  [ Insn.MovLbl (t, l_sub); Insn.I (Insn.CallInd (Insn.OReg t));
    Insn.I (Insn.Jmp (Insn.Lbl l_over)); Insn.L l_sub ]
  @ gen_filler r lbl
  @ [ Insn.I Insn.Ret; Insn.L l_over ]

(** Generation profiles.  [Uniform] draws from the full ISA subset with
    the historical weights; [Fusion] skews heavily toward adjacent
    fusible pairs and tight backedge loops to stress the superblock
    engine's mega-op fusion, trace extension and lazy-flag machinery;
    [Indirect] skews toward jump tables, computed gotos and in-region
    call/ret chains to stress indirect control flow end to end (lifter
    target enumeration, inline-cache dispatch, DBrew
    devirtualization). *)
type profile = Uniform | Fusion | Indirect

let uniform_generators =
  [| (gen_alu, 16); (gen_mov, 14); (gen_lea, 6); (gen_shift, 14);
     (gen_unop, 6); (gen_test_cmp, 6); (gen_imul, 5); (gen_cmov_setcc, 8);
     (gen_push_pop, 3); (gen_cqo_cdq, 2); (gen_jcc, 6); (gen_sse_mov, 6);
     (gen_sse_arith, 8); (gen_sse_logic, 3); (gen_sse_misc, 5) |]

let fusion_generators =
  [| (gen_fused_pair, 30); (gen_loop, 20); (gen_jcc, 12); (gen_alu, 8);
     (gen_mov, 8); (gen_lea, 6); (gen_imul, 4); (gen_test_cmp, 4);
     (gen_push_pop, 4); (gen_shift, 2); (gen_unop, 2) |]

let indirect_generators =
  [| (gen_jump_table, 18); (gen_computed_goto, 12); (gen_call_chain, 16);
     (gen_indirect_call, 10); (gen_alu, 10); (gen_mov, 8); (gen_jcc, 8);
     (gen_shift, 6); (gen_lea, 5); (gen_test_cmp, 4); (gen_push_pop, 3) |]

let generators_of = function
  | Uniform -> uniform_generators
  | Fusion -> fusion_generators
  | Indirect -> indirect_generators

let gen_chunk generators r lbl =
  let total_weight = Array.fold_left (fun a (_, w) -> a + w) 0 generators in
  let k = ref (int r total_weight) in
  let res = ref [] in
  (try
     Array.iter
       (fun (g, w) ->
         if !k < w then begin
           res := g r lbl;
           raise Exit
         end
         else k := !k - w)
       generators
   with Exit -> ());
  !res

(* ---------- cases ---------- *)

let gen_float (r : rng) : float =
  match int r 6 with
  | 0 -> 0.0
  | 1 -> 1.0
  | 2 -> -1.5
  | 3 -> float_of_int (int r 1000) /. 8.0
  | 4 -> -.float_of_int (int r 1_000_000)
  | _ -> Int64.to_float (next64 r) /. 65536.0

let gen_case ?(profile = Uniform) (r : rng) ~(max_len : int) : Oracle.case =
  let generators = generators_of profile in
  let lbl = ref 0 in
  let target = 3 + int r (max 1 (max_len - 3)) in
  let body = ref [] in
  let n = ref 0 in
  while !n < target do
    let chunk = gen_chunk generators r lbl in
    body := !body @ chunk;
    n := !n + List.length chunk
  done;
  let mem =
    String.init O.data_size (fun _ -> Char.chr (int r 256))
  in
  { O.body = !body;
    args = (next64 r, next64 r);
    fargs = (gen_float r, gen_float r);
    mem }

(** The case for campaign index [i] under base seed [seed] — each case
    gets an independent stream, so corpus replay and shrinking never
    perturb later cases. *)
let case_of_seed ?(profile = Uniform) ~(seed : int) ~(max_len : int) (i : int)
    : Oracle.case =
  gen_case ~profile (make ((seed * 1_000_003) + i)) ~max_len
