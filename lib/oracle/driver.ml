(** Campaign driver: generate N seeded cases, run each through the
    tier matrix, shrink any divergence to a minimal reproducer and
    persist it.  Used by [obrew_cli fuzz], [make fuzz] and the CI
    fuzz-smoke job. *)

module O = Oracle
module Tel = Obrew_telemetry.Telemetry

type failure = {
  f_index : int;              (* campaign case number *)
  f_div : O.divergence;       (* divergence of the original case *)
  f_case : O.case;            (* minimized case *)
  f_shrink_checks : int;      (* predicate evaluations spent shrinking *)
  f_path : string option;     (* where the reproducer was saved *)
}

type summary = {
  s_total : int;
  s_agreed : int;
  s_skipped : int;            (* cases where < 2 tiers could run *)
  s_tier_skips : (string * int) list;  (* per-tier skip counts *)
  s_failures : failure list;
}

type config = {
  seeds : int;                (* number of cases *)
  seed : int;                 (* base PRNG seed *)
  tiers : O.tier list;
  max_len : int;              (* max body instructions *)
  profile : Gen.profile;      (* body-shape bias *)
  out_dir : string option;    (* where to persist reproducers *)
  max_failures : int;         (* stop after this many divergences *)
  log : string -> unit;       (* progress sink *)
}

let default_config =
  { seeds = 100; seed = 42; tiers = O.all_tiers; max_len = 24;
    profile = Gen.Uniform; out_dir = None; max_failures = 5; log = ignore }

let save_failure (cfg : config) (i : int) (c : O.case) (d : O.divergence) :
    string option =
  match cfg.out_dir with
  | None -> None
  | Some dir ->
    (try
       if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
       let name = Printf.sprintf "div-%06d" i in
       let note =
         Printf.sprintf "%s vs %s on %s; body:\n%s" (O.tier_name d.O.d_ref)
           (O.tier_name d.O.d_tier) d.O.d_slot (O.body_listing c)
       in
       let path = Filename.concat dir (name ^ ".repro") in
       Repro.save path (Repro.of_case ~name ~note c);
       Some path
     with Sys_error _ | Unix.Unix_error _ -> None)

let run_campaign (cfg : config) : summary =
  let agreed = ref 0 and skipped = ref 0 in
  let failures = ref [] in
  let tier_skips = Hashtbl.create 8 in
  let note_skips v =
    List.iter
      (fun (t, _) ->
        let k = O.tier_name t in
        Hashtbl.replace tier_skips k
          (1 + Option.value ~default:0 (Hashtbl.find_opt tier_skips k)))
      v.O.v_skips
  in
  let i = ref 0 in
  (try
     while !i < cfg.seeds do
       let c =
         Gen.case_of_seed ~profile:cfg.profile ~seed:cfg.seed
           ~max_len:cfg.max_len !i
       in
       let v = O.run ~tiers:cfg.tiers c in
       note_skips v;
       (match v.O.v_div with
        | None ->
          if List.length v.O.v_ran >= 2 then incr agreed else incr skipped
        | Some d ->
          cfg.log
            (Printf.sprintf "case %d diverged: %s" !i
               (O.divergence_to_string d));
          let check c' =
            match O.run ~tiers:cfg.tiers c' with
            | v' -> O.diverged v'
            | exception _ -> false
          in
          let small, checks = Shrink.minimize ~check c in
          (* re-derive the divergence of the minimized case for the
             report; fall back to the original *)
          let d' =
            match (O.run ~tiers:cfg.tiers small).O.v_div with
            | Some d' -> d'
            | None -> d
          in
          let path = save_failure cfg !i small d' in
          cfg.log
            (Printf.sprintf
               "shrunk to %d instruction(s) after %d checks:\n%s"
               (List.length
                  (List.filter
                     (function Obrew_x86.Insn.I _ -> true | _ -> false)
                     small.O.body))
               checks (O.body_listing small));
          failures :=
            { f_index = !i; f_div = d'; f_case = small;
              f_shrink_checks = checks; f_path = path }
            :: !failures;
          if List.length !failures >= cfg.max_failures then raise Exit);
       incr i
     done
   with Exit -> ());
  { s_total = !i + (if !failures <> [] && !i < cfg.seeds then 1 else 0);
    s_agreed = !agreed;
    s_skipped = !skipped;
    s_tier_skips =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) tier_skips []
      |> List.sort compare;
    s_failures = List.rev !failures }

let pp_summary (s : summary) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "oracle: %d case(s), %d agreed, %d skipped, %d divergence(s)\n"
       s.s_total s.s_agreed s.s_skipped (List.length s.s_failures));
  if s.s_tier_skips <> [] then
    Buffer.add_string b
      (Printf.sprintf "tier skips: %s\n"
         (String.concat ", "
            (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v)
               s.s_tier_skips)));
  List.iter
    (fun f ->
      Buffer.add_string b
        (Printf.sprintf "FAIL case %d (%d shrink checks%s):\n%s%s\n"
           f.f_index f.f_shrink_checks
           (match f.f_path with Some p -> ", saved " ^ p | None -> "")
           (O.divergence_to_string f.f_div)
           (O.body_listing f.f_case)))
    s.s_failures;
  Buffer.contents b
