(** Persistent reproducers: a tiny s-expression format for minimized
    diverging cases, committed under [test/corpus/*.repro] and
    replayed deterministically by [dune runtest].

    A reproducer stores the *assembled* function bytes (prelude + body
    + epilogue, based at [Image.code_base]) rather than the body item
    list, so corpus files stay replayable bit-for-bit even when the
    harness wrapping evolves.  Floats are stored as their IEEE bit
    patterns; code and memory as hex strings.

    Grammar:
    {v
    (repro
      (name shl-w8-mask)
      (args (0x... 0x...))          ; rsi, rdx
      (fargs (0x... 0x...))         ; xmm0, xmm1 bit patterns
      (mem "00ab...")               ; initial scratch data, hex
      (code "4889...")              ; machine code at code_base, hex
      (note "free text, ignored"))
    v} *)

type t = {
  r_name : string;
  r_args : int64 * int64;
  r_fargs : float * float;
  r_mem : string;   (* raw bytes *)
  r_code : string;  (* raw machine code bytes *)
  r_note : string;
}

let to_compiled (r : t) : Oracle.compiled =
  { Oracle.c_code = r.r_code; c_args = r.r_args; c_fargs = r.r_fargs;
    c_mem = r.r_mem }

let of_case ~(name : string) ?(note = "") (c : Oracle.case) : t =
  let cc = Oracle.compile c in
  { r_name = name; r_args = cc.Oracle.c_args; r_fargs = cc.Oracle.c_fargs;
    r_mem = cc.Oracle.c_mem; r_code = cc.Oracle.c_code; r_note = note }

(* ---------- s-expressions ---------- *)

type sexp = Atom of string | Str of string | List of sexp list

exception Parse_error of string

let tokenize (s : string) : string list =
  let toks = ref [] in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
     | ' ' | '\t' | '\n' | '\r' -> incr i
     | ';' -> while !i < n && s.[!i] <> '\n' do incr i done
     | '(' -> toks := "(" :: !toks; incr i
     | ')' -> toks := ")" :: !toks; incr i
     | '"' ->
       let b = Buffer.create 16 in
       incr i;
       while !i < n && s.[!i] <> '"' do
         if s.[!i] = '\\' && !i + 1 < n then begin
           Buffer.add_char b s.[!i + 1];
           i := !i + 2
         end
         else begin
           Buffer.add_char b s.[!i];
           incr i
         end
       done;
       if !i >= n then raise (Parse_error "unterminated string");
       incr i;
       toks := ("\"" ^ Buffer.contents b) :: !toks
     | _ ->
       let start = !i in
       while
         !i < n
         && not (List.mem s.[!i] [ ' '; '\t'; '\n'; '\r'; '('; ')'; '"' ])
       do
         incr i
       done;
       toks := String.sub s start (!i - start) :: !toks)
  done;
  List.rev !toks

let parse (s : string) : sexp =
  let rec one = function
    | [] -> raise (Parse_error "unexpected end of input")
    | "(" :: rest ->
      let items, rest = many rest in
      (List items, rest)
    | ")" :: _ -> raise (Parse_error "unexpected )")
    | tok :: rest ->
      if String.length tok > 0 && tok.[0] = '"' then
        (Str (String.sub tok 1 (String.length tok - 1)), rest)
      else (Atom tok, rest)
  and many = function
    | ")" :: rest -> ([], rest)
    | [] -> raise (Parse_error "missing )")
    | toks ->
      let x, rest = one toks in
      let xs, rest = many rest in
      (x :: xs, rest)
  in
  match one (tokenize s) with
  | x, [] -> x
  | _, _ :: _ -> raise (Parse_error "trailing tokens")

(* ---------- hex / int64 helpers ---------- *)

let hex_of_string (s : string) : string =
  String.concat ""
    (List.init (String.length s) (fun i ->
         Printf.sprintf "%02x" (Char.code s.[i])))

let string_of_hex (h : string) : string =
  if String.length h mod 2 <> 0 then raise (Parse_error "odd hex length");
  String.init (String.length h / 2) (fun i ->
      Char.chr (int_of_string ("0x" ^ String.sub h (2 * i) 2)))

let i64_atom (v : int64) : string = Printf.sprintf "0x%Lx" v

let i64_of_atom (a : string) : int64 =
  try Int64.of_string a
  with _ -> raise (Parse_error ("bad int64: " ^ a))

(* ---------- (de)serialization ---------- *)

let to_string (r : t) : string =
  let a1, a2 = r.r_args in
  let f1, f2 = r.r_fargs in
  let b = Buffer.create 512 in
  Buffer.add_string b "(repro\n";
  Buffer.add_string b (Printf.sprintf "  (name %s)\n" r.r_name);
  Buffer.add_string b
    (Printf.sprintf "  (args (%s %s))\n" (i64_atom a1) (i64_atom a2));
  Buffer.add_string b
    (Printf.sprintf "  (fargs (%s %s))  ; %h %h\n"
       (i64_atom (Int64.bits_of_float f1))
       (i64_atom (Int64.bits_of_float f2))
       f1 f2);
  Buffer.add_string b
    (Printf.sprintf "  (mem \"%s\")\n" (hex_of_string r.r_mem));
  Buffer.add_string b
    (Printf.sprintf "  (code \"%s\")\n" (hex_of_string r.r_code));
  if r.r_note <> "" then begin
    let esc = String.concat "\\\"" (String.split_on_char '"' r.r_note) in
    Buffer.add_string b (Printf.sprintf "  (note \"%s\")\n" esc)
  end;
  Buffer.add_string b ")\n";
  Buffer.contents b

let field (fields : sexp list) (key : string) : sexp option =
  List.find_map
    (function
      | List (Atom k :: rest) when k = key ->
        Some (match rest with [ x ] -> x | xs -> List xs)
      | _ -> None)
    fields

let of_string (s : string) : t =
  match parse s with
  | List (Atom "repro" :: fields) ->
    let str_field k ~default =
      match field fields k with
      | Some (Str v) -> v
      | Some (Atom v) -> v
      | _ -> default
    in
    let pair2 k =
      match field fields k with
      | Some (List [ a; b ]) ->
        let atom = function
          | Atom v | Str v -> v
          | List _ -> raise (Parse_error ("bad pair in " ^ k))
        in
        (i64_of_atom (atom a), i64_of_atom (atom b))
      | _ -> raise (Parse_error ("missing field " ^ k))
    in
    let a1, a2 = pair2 "args" in
    let fb1, fb2 = pair2 "fargs" in
    let mem = string_of_hex (str_field "mem" ~default:"") in
    let code = string_of_hex (str_field "code" ~default:"") in
    if code = "" then raise (Parse_error "empty code");
    { r_name = str_field "name" ~default:"unnamed";
      r_args = (a1, a2);
      r_fargs = (Int64.float_of_bits fb1, Int64.float_of_bits fb2);
      r_mem = mem;
      r_code = code;
      r_note = str_field "note" ~default:"" }
  | _ -> raise (Parse_error "expected (repro ...)")

let save (path : string) (r : t) : unit =
  let oc = open_out path in
  output_string oc (to_string r);
  close_out oc

let load (path : string) : t =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_string s

(** Exception-free loader for in-process replay ([fuzz --replay], the
    sentinel): I/O and syntax failures come back as typed errors
    instead of escaping into the host. *)
let load_result (path : string) : (t, Obrew_fault.Err.t) result =
  match load path with
  | r -> Ok r
  | exception Sys_error m ->
    Error (Obrew_fault.Err.make Obrew_fault.Err.Install ("repro load: " ^ m))
  | exception Parse_error m ->
    Error (Obrew_fault.Err.make Obrew_fault.Err.Decode ("repro parse: " ^ m))
  | exception exn ->
    Error (Obrew_fault.Err.of_exn ~stage:Obrew_fault.Err.Decode exn)

(** Replay a reproducer through [tiers]; the verdict's divergence is
    [None] when all tiers agree. *)
let replay ?tiers (r : t) : Oracle.verdict =
  Oracle.run_compiled ?tiers (to_compiled r)
