(** The five code-generation modes of the paper's evaluation (Sec. VI)
    behind one API, plus the cycle-accounted Jacobi driver.

    {[
      let env = Modes.build ~sz:65 () in
      let kernel, seconds = Modes.transform env Flat Element DBrewLlvm in
      let cycles, insns = Modes.run env Flat Element ~kernel ~iters:50 in
    ]} *)

open Obrew_x86

type kind = Direct | Flat | Sorted
(** Stencil representation: hard-coded, Fig. 7 flat struct, or the
    pointer-linked sorted struct. *)

type style = Element | Line
(** Kernel granularity (Sec. V): one matrix cell per call, or one
    matrix row per call. *)

type transform = Native | Llvm | LlvmFix | DBrew | DBrewLlvm
(** The five modes of Fig. 9. *)

val kind_name : kind -> string
val style_name : style -> string
val transform_name : transform -> string

type env = {
  img : Image.t;
  w : Obrew_stencil.Stencil.workload;
  modul : Obrew_ir.Ins.modul;
  memo : (string, int) Hashtbl.t;
  (** transform memo: request fingerprint -> installed kernel *)
  mutable memo_hits : int;
  mutable memo_misses : int;
  mutable last_dropped : (string * Obrew_fault.Err.t) list;
  (** optimizer passes dropped by the last [checked] transform *)
  mutable last_ir : Obrew_ir.Ins.modul option;
  (** optimized module produced by the last lifting transform (Llvm,
      LlvmFix, DBrewLlvm) — consumed by {!Annotate} *)
}

(** Compile the benchmark program with the "static compiler" (minic at
    -O3, direct line kernel auto-vectorized as GCC does) and install it
    into a fresh image with an [sz]×[sz] Jacobi workload. *)
val build :
  ?sz:int ->
  ?groups:(float * (int * int) list) list ->
  unit -> env

(** Kernel signature per style ([(stencil, m1, m2, index[, rowbase,
    n])], all void). *)
val kernel_sig : style -> Obrew_ir.Ins.signature

(** Address of the natively compiled kernel. *)
val native_addr : env -> kind -> style -> int

(** Stencil structure address / fixed-memory range for a kind. *)
val stencil_arg : env -> kind -> int
val stencil_range : env -> kind -> int * int

(** Default optimization options for the JIT modes (-O3, fast-math,
    no forced vectorization — Sec. VI). *)
val o3_opts : Obrew_opt.Pipeline.options

(** [transform env kind style t] produces a drop-in replacement kernel
    using mode [t]; returns its address and the transformation time in
    seconds (the Fig. 10 quantity).  [lift_config]/[opt] expose the
    ablation knobs.

    [guards] applies a {!Obrew_fault.Guards.t} resource bundle to every
    stage: lifter discovery budgets, optimizer fuel and the rewriter's
    emission/variant/wall-clock limits.  [checked] runs the optimizer
    verifier-gated ({!Obrew_opt.Pipeline.run_checked}): an IR-breaking
    pass is rolled back and dropped instead of failing the transform,
    and the drops land in [env.last_dropped].

    Repeated requests with identical mode, configuration and
    fixed-memory contents are served from a per-environment memo cache
    (see {!memo_stats}); pass [use_memo:false] to force the full
    rewrite/lift/optimize pipeline, e.g. when measuring compile time.
    The memo is bypassed entirely while a fault-injection plan is
    installed, and an entry whose installed content was quarantined by
    the sentinel ({!Obrew_fault.Quarantine}) is dropped and recompiled
    instead of served.
    @raise Obrew_fault.Err.Error when the mode cannot handle the
    kernel; the error carries the failing pipeline stage. *)
val transform :
  ?use_memo:bool ->
  ?lift_config:Obrew_lifter.Lift.config ->
  ?opt:Obrew_opt.Pipeline.options ->
  ?checked:bool ->
  ?guards:Obrew_fault.Guards.t ->
  env -> kind -> style -> transform -> int * float

type safe_result = {
  kernel : int;            (** always a runnable drop-in replacement *)
  used : transform;        (** the mode that finally succeeded *)
  seconds : float;         (** total time including failed attempts *)
  failures : (transform * Obrew_fault.Err.t) list;
  (** failed attempts along the chain, in order *)
  dropped : (string * Obrew_fault.Err.t) list;
  (** optimizer passes dropped by the winning attempt (checked mode) *)
}

(** The graceful-degradation order: [DBrewLlvm → DBrew → Llvm →
    Native].  {!transform_safe} walks the suffix starting at the
    requested mode ([LlvmFix] degrades to [Llvm] directly). *)
val fallback_chain : transform list

val chain_from : transform -> transform list

(** Fail-safe {!transform}: tries the requested mode, then each weaker
    mode in {!fallback_chain}, recording every typed failure in the
    result and in {!Robust.stats}.  Never raises; the result's [kernel]
    is always runnable (Native — the original binary — is the floor). *)
val transform_safe :
  ?use_memo:bool ->
  ?lift_config:Obrew_lifter.Lift.config ->
  ?opt:Obrew_opt.Pipeline.options ->
  ?checked:bool ->
  ?guards:Obrew_fault.Guards.t ->
  env -> kind -> style -> transform -> safe_result

(** (hits, misses) of the environment's transform memo cache. *)
val memo_stats : env -> int * int

(** Reset the matrices to the initial boundary-value state. *)
val reset : env -> unit

(** Run the Jacobi driver with kernel address [kernel]; returns
    (simulated cycles, executed instructions).  The driver-loop
    overhead is included in the measurement, as in Sec. VI.
    [max_insns] bounds the emulated instruction count (watchdog);
    exceeding it raises a typed [Emulate] error. *)
val run :
  ?max_insns:int ->
  env -> kind -> style -> kernel:int -> iters:int -> int * int

(** As {!run} but always passing the flat stencil pointer. *)
val run_jacobi :
  ?max_insns:int -> env -> style -> kernel:int -> iters:int -> int * int

(** The matrix holding the result after [iters] iterations. *)
val result_matrix : env -> iters:int -> float array
