(** Re-export of the typed pipeline error taxonomy.

    The taxonomy itself lives at the bottom of the dependency graph
    ({!Obrew_fault.Err}) so that every layer — decoder, lifter,
    optimizer, backend, rewriter, emulator — can raise it.  This alias
    makes it reachable under the conventional [Obrew_core.Err] name for
    API users who only link the top layer. *)

include Obrew_fault.Err
