(** The five code-generation modes of the evaluation (Sec. VI):

    - {b Native}: the mini-C compiler's -O3 output, as-is.
    - {b Llvm}: the identity transformation — lift the native binary to
      IR, run -O3, emit again (Fig. 1 without specialization).
    - {b LlvmFix}: parameter fixation at IR level (Sec. IV): a wrapper
      calls the lifted code with the stencil argument replaced by a
      module-global constant copy; always-inline + -O3 do the rest.
    - {b DBrew}: binary-level specialization with the stencil parameter
      and its memory fixed.
    - {b DBrewLlvm}: DBrew's output lifted, -O3'd and re-emitted
      (DBrew with the LLVM code generation back-end). *)

open Obrew_x86
open Obrew_ir
open Obrew_opt
open Obrew_lifter
open Obrew_backend
open Obrew_dbrew
open Obrew_stencil
open Obrew_fault
module Tel = Obrew_telemetry.Telemetry
module Flight = Obrew_observe.Flight

type kind = Direct | Flat | Sorted
type style = Element | Line
type transform = Native | Llvm | LlvmFix | DBrew | DBrewLlvm

let kind_name = function
  | Direct -> "direct" | Flat -> "flat" | Sorted -> "sorted"

let style_name = function Element -> "element" | Line -> "line"

let transform_name = function
  | Native -> "Native" | Llvm -> "LLVM" | LlvmFix -> "LLVM-fix"
  | DBrew -> "DBrew" | DBrewLlvm -> "DBrew+LLVM"

type env = {
  img : Image.t;
  w : Stencil.workload;
  modul : Ins.modul; (* the optimized native module *)
  memo : (string, int) Hashtbl.t;
  (* transform memo: request fingerprint -> installed kernel address *)
  mutable memo_hits : int;
  mutable memo_misses : int;
  mutable last_dropped : (string * Err.t) list;
  (* passes dropped by the last checked transform *)
  mutable last_ir : Ins.modul option;
  (* optimized module produced by the last lifting transform (Llvm,
     LlvmFix, DBrewLlvm) — the IR side of annotated disassembly *)
}

let kernel_name kind style =
  (match style with Element -> "apply_" | Line -> "line_") ^ kind_name kind

let kernel_sig (style : style) : Ins.signature =
  match style with
  | Element -> { args = [ Ptr 0; Ptr 0; Ptr 0; I64 ]; ret = None }
  | Line -> { args = [ Ptr 0; Ptr 0; Ptr 0; I64; I64 ]; ret = None }

(** Compile the benchmark program "statically" and install it.  The
    direct line kernel is auto-vectorized (as GCC does, Sec. VI-B);
    the generic kernels are not (their inner loops are data
    dependent). *)
let build ?(sz = 65) ?groups () : env =
  let img = Image.create () in
  let w = Stencil.setup ~sz ?groups img in
  let m = Obrew_minic.Lower.lower (Stencil.program ~sz) in
  List.iter
    (fun (f : Ins.func) ->
      let opts =
        if f.fname = "line_direct" then
          { Pipeline.o3 with force_vector_width = Some 2 }
        else Pipeline.o3
      in
      Pipeline.run_func ~opts m f;
      Verify.assert_ok ~ctx:("native compile of " ^ f.fname) f)
    m.funcs;
  ignore (Jit.install_module img m);
  { img; w; modul = m; memo = Hashtbl.create 32;
    memo_hits = 0; memo_misses = 0; last_dropped = []; last_ir = None }

let stencil_arg env = function
  | Direct | Flat -> env.w.s_flat
  | Sorted -> env.w.s_sorted

let stencil_range env = function
  | Direct | Flat -> (env.w.s_flat, env.w.s_flat + env.w.s_flat_len)
  | Sorted -> (env.w.s_sorted, env.w.s_sorted + env.w.s_sorted_len)

let native_addr env kind style = Image.lookup env.img (kernel_name kind style)

(* Watermark of the pipeline stage currently executing inside
   {!transform}: each stage wrapper below records itself before
   running, so when an *untyped* exception escapes all the way to
   {!transform_safe}'s last-resort handler it can be attributed to the
   stage it actually escaped from instead of a blanket Encode.
   (Typed [Err.Error]s carry their own stage and ignore this.) *)
let inflight_stage : Err.stage ref = ref Err.Encode

let staged (st : Err.stage) f =
  inflight_stage := st;
  f ()

(* lift the binary code at [entry] into a one-function module; failures
   propagate as typed [Err.Error]s (stage Lift or Decode) *)
let lift_entry env ~name ~config entry sg =
  staged Err.Lift (fun () ->
      Fault.point_untyped "untyped.lift";
      let read = Mem.read_u8 env.img.Image.cpu.Cpu.mem in
      Lift.lift ~config ~read ~entry ~name sg)

let o3_opts = { Pipeline.o3 with fast_math = true }

(* Fingerprint of a transformation request: everything the produced
   kernel depends on.  The fixed-memory contents are digested because
   LlvmFix/DBrew fold them into the code; the function-valued fields of
   {!Pipeline.options} (resolve_addr/const_load oracles) are
   intentionally not part of the key — callers that swap those must
   bypass the memo. *)
let transform_key env ~(lift_config : Lift.config)
    ~(opt : Pipeline.options) ~checked ~guards kind style t =
  let lo, hi = stencil_range env kind in
  let fixed = Mem.read_bytes env.img.Image.cpu.Cpu.mem lo (hi - lo) in
  Digest.string
    (Marshal.to_string
       ( kind, style, t, lift_config,
         ( opt.Pipeline.level, opt.Pipeline.fast_math,
           opt.Pipeline.force_vector_width, opt.Pipeline.vector_aligned,
           opt.Pipeline.inline_threshold, opt.Pipeline.verify_each,
           opt.Pipeline.fuel ),
         checked, (guards : Guards.t option),
         native_addr env kind style, Digest.string fixed )
       [])

let memo_stats env = (env.memo_hits, env.memo_misses)

let c_memo_hit = Tel.counter "transform.memo_hits"
let c_memo_miss = Tel.counter "transform.memo_misses"

(** Apply [t] to the kernel [(kind, style)].  Returns the address of
    the drop-in replacement and the transformation (compile) time in
    seconds — the quantity of Fig. 10.

    Requests are memoized per environment: a repeated transformation
    with identical mode, configuration and fixed-memory contents
    returns the already-installed kernel (the "millions of users"
    serving path).  [use_memo:false] forces the full pipeline, which
    Fig. 10 needs to measure real compile times. *)
let transform ?(use_memo = true) ?(lift_config = Lift.default_config)
    ?(opt = o3_opts) ?(checked = false) ?guards (env : env) (kind : kind)
    (style : style) (t : transform) : int * float =
  let sg = kernel_sig style in
  let orig = native_addr env kind style in
  let t0 = Tel.Clock.now () in
  (* apply the resource-guard bundle to every stage it covers *)
  let lift_config =
    match guards with
    | None -> lift_config
    | Some g ->
      { lift_config with
        Lift.max_insns = g.Guards.lift_max_insns;
        max_blocks = g.Guards.lift_max_blocks }
  in
  let opt =
    match guards with
    | None -> opt
    | Some g -> { opt with Pipeline.fuel = g.Guards.opt_fuel }
  in
  let configure_rewriter (r : Api.t) =
    match guards with
    | None -> ()
    | Some g ->
      r.Api.cfg.Rewriter.max_emit <- g.Guards.rewrite_max_emit;
      r.Api.cfg.Rewriter.max_variants <- g.Guards.rewrite_max_variants;
      r.Api.cfg.Rewriter.max_seconds <- g.Guards.rewrite_max_seconds
  in
  (* run the optimizer, verifier-gated when [checked]: each pass is
     verified, an IR-breaking pass is rolled back and dropped, and the
     drops are recorded (graceful degradation instead of failure) *)
  let optimize m =
    staged Err.Opt (fun () ->
        Fault.point_untyped "untyped.opt";
        if not checked then Pipeline.run ~opts:opt m
        else begin
          let dropped = Pipeline.run_checked ~opts:opt m in
          env.last_dropped <- dropped;
          Robust.record_dropped (List.length dropped)
        end)
  in
  env.last_dropped <- [];
  (* under fault injection the memo must neither serve stale successes
     nor remember degraded results *)
  let use_memo = use_memo && not (Fault.active ()) in
  let key =
    if use_memo then
      Some (transform_key env ~lift_config ~opt ~checked ~guards kind style t)
    else None
  in
  (* a memoized kernel whose installed content was quarantined by the
     sentinel must not be served again: drop the entry and recompile
     (the install path re-checks content against the blacklist) *)
  let served =
    match Option.bind key (Hashtbl.find_opt env.memo) with
    | Some addr as served -> (
      match Image.digest_of_addr env.img addr with
      | Some d when Obrew_fault.Quarantine.mem d ->
        (match key with Some k -> Hashtbl.remove env.memo k | None -> ());
        None
      | _ -> served)
    | None -> None
  in
  match served with
  | Some addr ->
    env.memo_hits <- env.memo_hits + 1;
    Tel.incr_c c_memo_hit;
    (addr, Tel.Clock.now () -. t0)
  | None ->
  if use_memo then begin
    env.memo_misses <- env.memo_misses + 1;
    Tel.incr_c c_memo_miss
  end;
  let addr =
    Tel.span
      ("transform." ^ transform_name t)
      ~args:(kernel_name kind style)
      (fun () ->
    match t with
    | Native -> orig
    | Llvm ->
      let f = lift_entry env ~name:"jit" ~config:lift_config orig sg in
      let m = { Ins.funcs = [ f ]; globals = [] } in
      optimize m;
      staged Err.Verify (fun () -> Verify.assert_ok ~ctx:"llvm identity" f);
      env.last_ir <- Some m;
      staged Err.Encode (fun () -> Jit.install_func env.img f)
    | LlvmFix ->
      (* Sec. IV: copy the fixed memory region into the module as a
         global constant; wrap the always-inline lifted function *)
      let f = lift_entry env ~name:"lifted" ~config:lift_config orig sg in
      f.always_inline <- true;
      let lo, hi = stencil_range env kind in
      let bytes = Mem.read_bytes env.img.Image.cpu.Cpu.mem lo (hi - lo) in
      let g =
        { Ins.gname = "fixmem"; bytes; galign = 16; constant = true }
      in
      let b = Builder.create ~name:"jit" ~sg in
      let params = (Builder.func b).params in
      let args =
        Ins.Global "fixmem"
        :: List.tl (List.map (fun id -> Ins.V id) params)
      in
      ignore (Builder.call b "lifted" sg args);
      Builder.ret b None;
      let wrapper = Builder.func b in
      let m = { Ins.funcs = [ f; wrapper ]; globals = [ g ] } in
      optimize m;
      staged Err.Verify (fun () ->
          Verify.assert_ok ~ctx:"llvm fixation" wrapper);
      env.last_ir <- Some m;
      staged Err.Encode (fun () ->
          ignore (Jit.install_global env.img g);
          (* the callee is normally fully inlined, but lower
             optimization levels may keep the call *)
          ignore (Jit.install_func env.img f);
          Jit.install_func env.img wrapper)
    | DBrew -> (
      staged Err.Encode (fun () ->
          let r = Api.dbrew_new env.img orig in
          configure_rewriter r;
          Api.dbrew_set_par r 0 (Int64.of_int (stencil_arg env kind));
          let lo, hi = stencil_range env kind in
          Api.dbrew_set_mem r lo hi;
          let a = Api.dbrew_rewrite ~memo:use_memo r in
          match r.Api.last_error with
          | Some e -> raise (Err.Error e)
          | None -> a))
    | DBrewLlvm -> (
      let a =
        staged Err.Encode (fun () ->
            let r = Api.dbrew_new env.img orig in
            configure_rewriter r;
            Api.dbrew_set_par r 0 (Int64.of_int (stencil_arg env kind));
            let lo, hi = stencil_range env kind in
            Api.dbrew_set_mem r lo hi;
            let a = Api.dbrew_rewrite ~memo:use_memo r in
            match r.Api.last_error with
            | Some e -> raise (Err.Error e)
            | None -> a)
      in
      let f = lift_entry env ~name:"jit" ~config:lift_config a sg in
      let m = { Ins.funcs = [ f ]; globals = [] } in
      optimize m;
      staged Err.Verify (fun () -> Verify.assert_ok ~ctx:"dbrew+llvm" f);
      env.last_ir <- Some m;
      staged Err.Encode (fun () -> Jit.install_func env.img f)))
  in
  (match key with Some k -> Hashtbl.replace env.memo k addr | None -> ());
  (addr, Tel.Clock.now () -. t0)

(* ------------------------------------------------------------------ *)
(* Graceful degradation                                                *)
(* ------------------------------------------------------------------ *)

type safe_result = {
  kernel : int;            (* always a runnable drop-in replacement *)
  used : transform;        (* the mode that finally succeeded *)
  seconds : float;         (* total time including failed attempts *)
  failures : (transform * Err.t) list; (* failed attempts, in order *)
  dropped : (string * Err.t) list;     (* passes dropped (checked mode) *)
}

(* The degradation order of the paper's modes: each step gives up one
   layer of sophistication but keeps correctness.  LlvmFix is not in
   the main chain (it changes the calling convention's data source), so
   a failed LlvmFix request degrades straight to plain Llvm. *)
let fallback_chain = [ DBrewLlvm; DBrew; Llvm; Native ]

let chain_from = function
  | LlvmFix -> [ LlvmFix; Llvm; Native ]
  | t -> (
    let rec suffix = function
      | [] -> [ Native ]
      | x :: _ as l when x = t -> l
      | _ :: tl -> suffix tl
    in
    (* a mode absent from [fallback_chain] must still be attempted
       first — degrading to Native without a single attempt at the
       requested mode would silently skip it (the LlvmFix bug class) *)
    match suffix fallback_chain with
    | x :: _ as chain when x = t -> chain
    | chain -> t :: chain)

(** Fail-safe {!transform}: walk the fallback chain from the requested
    mode down to Native, recording every typed failure, and return the
    first mode that produced a runnable kernel.  Never raises — Native
    is the original binary and cannot fail. *)
let transform_safe ?use_memo ?lift_config ?opt ?checked ?guards (env : env)
    (kind : kind) (style : style) (t : transform) : safe_result =
  let t0 = Tel.Clock.now () in
  Robust.stats.Robust.safe_runs <- Robust.stats.Robust.safe_runs + 1;
  let rec go failures = function
    | [] ->
      (* unreachable in practice (Native cannot fail), but stay total *)
      Robust.record_landing ~degraded:(t <> Native)
        (transform_name Native);
      if !Tel.enabled then
        Tel.instant "fallback.landed"
          ~args:(transform_name Native ^ " (degraded)");
      Flight.(
        emit Fallback_landed ~subject:(transform_name Native)
          ~detail:"degraded");
      { kernel = native_addr env kind style; used = Native;
        seconds = Tel.Clock.now () -. t0;
        failures = List.rev failures; dropped = [] }
    | m :: rest -> (
      Robust.record_attempt ();
      (* fresh watermark per attempt: a stale stage from the previous
         mode must not leak into this attempt's attribution *)
      inflight_stage := Err.Encode;
      if !Tel.enabled then
        Tel.instant "fallback.attempt" ~args:(transform_name m);
      Flight.(emit Fallback_attempt ~subject:(transform_name m));
      match transform ?use_memo ?lift_config ?opt ?checked ?guards
              env kind style m with
      | addr, _ ->
        Robust.record_landing ~degraded:(m <> t) (transform_name m);
        if !Tel.enabled then
          Tel.instant "fallback.landed"
            ~args:
              (transform_name m ^ if m <> t then " (degraded)" else "");
        Flight.(
          emit Fallback_landed ~a:addr ~subject:(transform_name m)
            ~detail:(if m <> t then "degraded" else ""));
        { kernel = addr; used = m;
          seconds = Tel.Clock.now () -. t0;
          failures = List.rev failures; dropped = env.last_dropped }
      | exception Err.Error e ->
        Robust.record_failure e;
        if !Tel.enabled then
          Tel.instant "fallback.failure"
            ~args:
              (Printf.sprintf "%s: %s" (transform_name m)
                 (Err.stage_name e.Err.stage));
        Flight.(
          emit Fallback_failure ~subject:(transform_name m)
            ~detail:(Err.stage_name e.Err.stage));
        go ((m, e) :: failures) rest
      | exception exn ->
        (* anything untyped that escapes is still a recorded failure,
           not a crash; the in-flight watermark names the pipeline
           stage it actually escaped from *)
        let e = Err.of_exn ~stage:!inflight_stage exn in
        Robust.record_failure e;
        if !Tel.enabled then
          Tel.instant "fallback.failure"
            ~args:
              (Printf.sprintf "%s: %s" (transform_name m)
                 (Err.stage_name e.Err.stage));
        Flight.(
          emit Fallback_failure ~subject:(transform_name m)
            ~detail:(Err.stage_name e.Err.stage));
        go ((m, e) :: failures) rest)
  in
  go [] (chain_from t)

(** Restore the matrices to the initial Jacobi state. *)
let reset env =
  let sz = env.w.sz in
  let mem = env.img.Image.cpu.Cpu.mem in
  for r = 0 to sz - 1 do
    for c = 0 to sz - 1 do
      let v =
        if r = 0 then float_of_int c /. float_of_int (sz - 1)
        else if c = 0 then float_of_int r /. float_of_int (sz - 1)
        else if r = sz - 1 then 1.0 -. (float_of_int c /. float_of_int (sz - 1))
        else if c = sz - 1 then 1.0 -. (float_of_int r /. float_of_int (sz - 1))
        else 0.0
      in
      Mem.write_f64 mem (env.w.m1 + (8 * ((r * sz) + c))) v;
      Mem.write_f64 mem (env.w.m2 + (8 * ((r * sz) + c))) v
    done
  done

(** Run the Jacobi driver with the given kernel; returns (cycles,
    instructions) consumed by the emulated computation. *)
let run_jacobi ?max_insns env (style : style) ~kernel ~iters : int * int =
  reset env;
  Image.reset_stack env.img;
  let driver =
    Image.lookup env.img
      (match style with
       | Element -> "jacobi_element"
       | Line -> "jacobi_line")
  in
  let stencil = Int64.of_int env.w.s_flat in
  (* the stencil argument is ignored by specialized kernels and direct
     kernels; generic kernels re-read it, so pass the matching one *)
  let (), cycles, insns =
    Image.measure env.img (fun () ->
        ignore
          (Image.call ?max_insns env.img ~fn:driver
             ~args:
               [ stencil; Int64.of_int env.w.m1; Int64.of_int env.w.m2;
                 Int64.of_int iters; Int64.of_int kernel ]))
  in
  (cycles, insns)

(** As {!run_jacobi} but with the correct stencil pointer per kind
    (generic unspecialized kernels dereference it). *)
let run ?max_insns env (kind : kind) (style : style) ~kernel ~iters :
    int * int =
  reset env;
  Image.reset_stack env.img;
  let driver =
    Image.lookup env.img
      (match style with
       | Element -> "jacobi_element"
       | Line -> "jacobi_line")
  in
  let (), cycles, insns =
    Image.measure env.img (fun () ->
        ignore
          (Image.call ?max_insns env.img ~fn:driver
             ~args:
               [ Int64.of_int (stencil_arg env kind);
                 Int64.of_int env.w.m1; Int64.of_int env.w.m2;
                 Int64.of_int iters; Int64.of_int kernel ]))
  in
  (cycles, insns)

(** The matrix holding the final result after [iters] iterations. *)
let result_matrix env ~iters =
  if iters mod 2 = 0 then Stencil.read_matrix env.w env.w.m1
  else Stencil.read_matrix env.w env.w.m2
