(** Counters for the fail-safe pipeline: how often {!Modes.transform_safe}
    ran, how often it degraded, which stages failed and where requests
    finally landed.  Global (per-process) on purpose — the CLI's
    [--stats] flag reports them after a run regardless of how many
    environments were built. *)

open Obrew_fault

type t = {
  mutable safe_runs : int;       (* transform_safe invocations *)
  mutable degraded : int;        (* runs that landed below the request *)
  mutable attempts : int;        (* individual mode attempts *)
  mutable failures : int;        (* attempts that failed with a typed error *)
  mutable dropped_passes : int;  (* optimizer passes dropped by run_checked *)
  by_stage : (Err.stage, int) Hashtbl.t; (* failures per pipeline stage *)
  by_mode : (string, int) Hashtbl.t;     (* landings per final mode *)
  (* sentinel: shadow-validation outcomes (see Obrew_sentinel) *)
  mutable sentinel_checks : int;       (* shadow validations performed *)
  mutable sentinel_divergences : int;  (* validations that caught a bug *)
  mutable sentinel_quarantined : int;  (* translations blacklisted *)
  mutable sentinel_demotions : int;    (* serves re-pointed down the chain *)
  mutable sentinel_healed : int;       (* requests restored to their tier *)
}

let stats =
  { safe_runs = 0; degraded = 0; attempts = 0; failures = 0;
    dropped_passes = 0; by_stage = Hashtbl.create 8;
    by_mode = Hashtbl.create 8;
    sentinel_checks = 0; sentinel_divergences = 0; sentinel_quarantined = 0;
    sentinel_demotions = 0; sentinel_healed = 0 }

let reset () =
  stats.safe_runs <- 0;
  stats.degraded <- 0;
  stats.attempts <- 0;
  stats.failures <- 0;
  stats.dropped_passes <- 0;
  Hashtbl.reset stats.by_stage;
  Hashtbl.reset stats.by_mode;
  stats.sentinel_checks <- 0;
  stats.sentinel_divergences <- 0;
  stats.sentinel_quarantined <- 0;
  stats.sentinel_demotions <- 0;
  stats.sentinel_healed <- 0

let bump tbl k =
  Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))

let record_attempt () = stats.attempts <- stats.attempts + 1

let record_failure (e : Err.t) =
  stats.failures <- stats.failures + 1;
  bump stats.by_stage e.Err.stage

let record_landing ~degraded mode =
  if degraded then stats.degraded <- stats.degraded + 1;
  bump stats.by_mode mode

let record_dropped n = stats.dropped_passes <- stats.dropped_passes + n

let record_sentinel_check () =
  stats.sentinel_checks <- stats.sentinel_checks + 1

let record_sentinel_divergence () =
  stats.sentinel_divergences <- stats.sentinel_divergences + 1

let record_sentinel_quarantine () =
  stats.sentinel_quarantined <- stats.sentinel_quarantined + 1

let record_sentinel_demotion () =
  stats.sentinel_demotions <- stats.sentinel_demotions + 1

let record_sentinel_heal () =
  stats.sentinel_healed <- stats.sentinel_healed + 1

let to_string () =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "robust: %d safe run(s), %d degraded, %d attempt(s), %d failure(s), \
        %d dropped pass(es)\n"
       stats.safe_runs stats.degraded stats.attempts stats.failures
       stats.dropped_passes);
  List.iter
    (fun st ->
      match Hashtbl.find_opt stats.by_stage st with
      | Some n when n > 0 ->
        Buffer.add_string b
          (Printf.sprintf "  failures at %-8s %d\n" (Err.stage_name st) n)
      | _ -> ())
    Err.all_stages;
  let modes = Hashtbl.fold (fun k v acc -> (k, v) :: acc) stats.by_mode [] in
  List.iter
    (fun (m, n) ->
      Buffer.add_string b (Printf.sprintf "  landed on %-10s %d\n" m n))
    (List.sort compare modes);
  if stats.sentinel_checks > 0 || stats.sentinel_quarantined > 0 then
    Buffer.add_string b
      (Printf.sprintf
         "sentinel: %d check(s), %d divergence(s), %d quarantined, \
          %d demotion(s), %d healed\n"
         stats.sentinel_checks stats.sentinel_divergences
         stats.sentinel_quarantined stats.sentinel_demotions
         stats.sentinel_healed);
  Buffer.contents b
