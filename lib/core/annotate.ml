(** Annotated disassembly — the paper's Fig. 5/6/8 presentation,
    mechanized: for one rewritten function, every guest instruction is
    printed together with the IR that survived optimization for it,
    the optimizer remarks recorded against it, and the host bytes that
    were finally emitted from it.  All three attributions come from
    the provenance ids stamped at lift time
    ({!Obrew_provenance.Provenance}). *)

open Obrew_x86
open Obrew_ir
module Prov = Obrew_provenance.Provenance

let hex_bytes read a len =
  String.concat " "
    (List.init (min len 16) (fun i -> Printf.sprintf "%02x" (read (a + i))))

(* The IR function the annotation is about: the one named [fn] if the
   module has it, otherwise the module's single function (the stencil
   modes name the lifted function "jit" but install under the kernel
   name). *)
let ir_func (modul : Ins.modul option) fn : Ins.func option =
  match modul with
  | None -> None
  | Some m -> (
    match List.find_opt (fun (f : Ins.func) -> f.fname = fn) m.funcs with
    | Some f -> Some f
    | None -> ( match m.funcs with [ f ] -> Some f | _ -> None))

(** Render the annotated disassembly of [fn]: one section per guest
    address that contributed surviving IR, a remark, or emitted host
    code, in ascending address order.  [modul] supplies the optimized
    IR (e.g. [Modes.env.last_ir]); the host byte ranges come from the
    provenance host map recorded at JIT installation. *)
let annotate ~(img : Image.t) ?modul ~fn () : string =
  let buf = Buffer.create 4096 in
  let read = Mem.read_u8 img.Image.cpu.Cpu.mem in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let f = ir_func modul fn in
  (* group surviving IR instructions by guest address *)
  let ir_at : (int, (int * Ins.instr) list) Hashtbl.t = Hashtbl.create 64 in
  (match f with
   | None -> ()
   | Some f ->
     List.iter
       (fun (b : Ins.block) ->
         List.iter
           (fun (i : Ins.instr) ->
             if Prov.is_some i.prov then begin
               let a = Prov.addr i.prov in
               let cur = Option.value ~default:[] (Hashtbl.find_opt ir_at a) in
               Hashtbl.replace ir_at a (cur @ [ (b.bid, i) ])
             end)
           b.instrs)
       f.blocks);
  (* group remarks by guest address *)
  let rmk_at : (int, Prov.remark list) Hashtbl.t = Hashtbl.create 64 in
  Prov.iter_remarks (fun r ->
      if Prov.is_some r.Prov.prov then begin
        let a = Prov.addr r.Prov.prov in
        let cur = Option.value ~default:[] (Hashtbl.find_opt rmk_at a) in
        Hashtbl.replace rmk_at a (cur @ [ r ])
      end);
  (* group emitted host ranges by guest address *)
  let host = Option.value ~default:[||] (Prov.host_map fn) in
  let host_at : (int, (int * int) list) Hashtbl.t = Hashtbl.create 64 in
  let glue_bytes = ref 0 in
  Array.iter
    (fun (lo, len, p) ->
      if Prov.is_some p then begin
        let a = Prov.addr p in
        let cur = Option.value ~default:[] (Hashtbl.find_opt host_at a) in
        Hashtbl.replace host_at a (cur @ [ (lo, len) ])
      end
      else glue_bytes := !glue_bytes + len)
    host;
  (* every guest address any of the three sides mention *)
  let addrs = Hashtbl.create 64 in
  Hashtbl.iter (fun a _ -> Hashtbl.replace addrs a ()) ir_at;
  Hashtbl.iter (fun a _ -> Hashtbl.replace addrs a ()) rmk_at;
  Hashtbl.iter (fun a _ -> Hashtbl.replace addrs a ()) host_at;
  let addrs =
    List.sort compare (Hashtbl.fold (fun a () acc -> a :: acc) addrs [])
  in
  add "== annotated disassembly: %s ==\n" fn;
  List.iter
    (fun a ->
      (match Decode.decode ~read a with
       | i, len ->
         add "\n0x%x: %-24s %s\n" a (hex_bytes read a len) (Pp.insn i)
       | exception _ -> add "\n0x%x: <not decodable>\n" a);
      (match Hashtbl.find_opt ir_at a with
       | None -> add "  ir   | (no surviving IR)\n"
       | Some is ->
         List.iter
           (fun (bid, i) -> add "  ir   | bb%d: %s\n" bid (Pp_ir.instr i))
           is);
      (match Hashtbl.find_opt rmk_at a with
       | None -> ()
       | Some rs ->
         (* collapse identical remarks (fixpoint passes re-record) *)
         let seen : (string, int ref) Hashtbl.t = Hashtbl.create 8 in
         let order = ref [] in
         List.iter
           (fun (r : Prov.remark) ->
             let line =
               Printf.sprintf "[%s/%s] %s" r.Prov.pass
                 (Prov.action_name r.Prov.action)
                 r.Prov.detail
             in
             match Hashtbl.find_opt seen line with
             | Some n -> incr n
             | None ->
               Hashtbl.add seen line (ref 1);
               order := line :: !order)
           rs;
         List.iter
           (fun line ->
             match !(Hashtbl.find seen line) with
             | 1 -> add "  rmk  | %s\n" line
             | n -> add "  rmk  | %s (x%d)\n" line n)
           (List.rev !order));
      match Hashtbl.find_opt host_at a with
      | None -> ()
      | Some hs ->
        List.iter
          (fun (lo, len) ->
            let txt =
              match Decode.decode ~read lo with
              | i, _ -> Pp.insn i
              | exception _ -> "?"
            in
            add "  host | 0x%x: %-24s %s\n" lo (hex_bytes read lo len) txt)
          hs)
    addrs;
  if !glue_bytes > 0 then
    add "\n(%d host bytes of prologue/epilogue/glue not attributed to \
         guest code)\n"
      !glue_bytes;
  if addrs = [] then
    Buffer.add_string buf
      "(nothing to annotate: enable provenance before transforming)\n";
  Buffer.contents buf
