(** Tiered adaptive compilation: profile-guided tier-up from the
    superblock engine to DBrew and DBrew+LLVM.

    The paper's Fig. 10 shows DBrew compiling ~15-70x cheaper than the
    full LLVM pipeline; this module closes the production-JIT trade-off
    that table motivates.  Cold code executes in the superblock engine
    behind a retargetable entry thunk ({!Image.install_thunk}); a
    cheap always-on hotness signal (the engine's per-block [sb_execs]
    counters weighted by static block cost, scanned with
    {!Cpu.fold_blocks}) detects hot kernels without [--profile]; hot
    sites are enqueued for recompilation and tiered up
    Native -> DBrew -> DBrew+LLVM, one compile per poll (modelling an
    asynchronous compile thread).

    Every tier-up is served through the sentinel ({!Sen.serve}), so the
    new kernel is shadow-validated before the call site is patched, and
    a quarantined digest demotes the attempt instead of hot-looping:
    the controller backs off under the same capped deterministic-jitter
    schedule the sentinel heals with ({!H.backoff_delay}) and pins the
    site after [heal_max] failed attempts.  Patching rewrites the
    site's thunk immediate in place and range-flushes only the thunk's
    own bytes — no global flush, every unrelated superblock and chain
    link survives ({!Image.patch_thunk}).

    Nothing here consults a clock or PRNG for *decisions*: hotness is
    simulated-cycle weighted execution counts, the controller tick is
    the poll (slice) count, and backoff jitter hashes the site key — a
    tiered run replays bit-for-bit.  Wall-clock is only *measured*
    (compile latency, time-to-peak) and never fed back. *)

open Obrew_x86
module Modes = Obrew_core.Modes
module Stencil = Obrew_stencil.Stencil
module Sen = Obrew_sentinel.Sentinel
module H = Obrew_sentinel.Health
module Tel = Obrew_telemetry.Telemetry
module Flight = Obrew_observe.Flight

let c_tierup = Tel.counter "tier.tierups"
let c_patch = Tel.counter "tier.patches"
let c_demote = Tel.counter "tier.demotions"
let c_enqueue = Tel.counter "tier.enqueues"
let c_compile = Tel.counter "tier.compiles"
let h_queue = Tel.histogram "tier.queue_depth"

(* ------------------------------------------------------------------ *)
(* Tiers                                                               *)
(* ------------------------------------------------------------------ *)

(** The three execution tiers, in ascending compile cost: superblock
    emulation of the native kernel, DBrew specialization, and DBrew
    re-optimized through the LLVM-style pipeline. *)
type level = Cold | Warm | Hot

let level_name = function Cold -> "cold" | Warm -> "warm" | Hot -> "hot"

let mode_of_level = function
  | Cold -> Modes.Native
  | Warm -> Modes.DBrew
  | Hot -> Modes.DBrewLlvm

let next_level = function Cold -> Some Warm | Warm -> Some Hot | Hot -> None

type config = {
  hot_threshold : int;
  (** weighted block executions (execs x static cost) accumulated
      since the last patch before a Cold site tiers up *)
  promote_mult : int;
  (** Warm -> Hot requires [hot_threshold * promote_mult] *)
  policy : H.policy;
  (** sentinel validation/backoff policy for tier-up serves; with
      [first_k >= 1] (the default) every freshly acquired kernel is
      shadow-validated before its call site is patched *)
  out_dir : string option;  (** sentinel reproducer directory *)
}

let default_config =
  { hot_threshold = 2_000; promote_mult = 4; policy = H.default_policy;
    out_dir = None }

(** A tiered call site: one per (kind, style) kernel, owning the entry
    thunk the Jacobi drivers call through. *)
type site = {
  s_kind : Modes.kind;
  s_style : Modes.style;
  s_thunk : int;              (* thunk address handed to the driver *)
  mutable s_target : int;     (* kernel the thunk currently jumps to *)
  mutable s_level : level;
  mutable s_range : int * int;(* host byte range of the target kernel *)
  mutable s_baseline : int;   (* raw hotness at the last retarget *)
  mutable s_attempts : int;   (* consecutive demoted tier-up attempts *)
  mutable s_not_before : int; (* backoff gate, in controller ticks *)
  mutable s_pinned : bool;    (* gave up after heal_max demotions *)
  mutable s_queued : bool;    (* sitting in the compile queue *)
  mutable s_slices : int;     (* workload slices executed at this site *)
  mutable s_compiles : int;   (* tier-up serves issued for this site *)
  mutable s_patches : int;    (* thunk retargets of this site *)
}

let site_key s = Modes.kind_name s.s_kind ^ "/" ^ Modes.style_name s.s_style

type t = {
  env : Modes.env;
  cfg : config;
  mutable sites : site list;  (* registration order: the scan order *)
  queue : site Queue.t;       (* pending recompiles, FIFO *)
  mutable tick : int;         (* polls so far — the logical clock *)
  mutable tierups : int;
  mutable patches : int;
  mutable demotions : int;
  mutable compiles : int;
  mutable compile_s : float;  (* wall seconds spent in tier-up serves *)
  mutable events : (int * string) list; (* (tick, what), newest first *)
}

let create ?(cfg = default_config) env =
  { env; cfg; sites = []; queue = Queue.create (); tick = 0; tierups = 0;
    patches = 0; demotions = 0; compiles = 0; compile_s = 0.0; events = [] }

let note ctl fmt =
  Printf.ksprintf (fun m -> ctl.events <- (ctl.tick, m) :: ctl.events) fmt

(** Per-site JSON rows (registration order) — the black-box report's
    "tier" section. *)
let sites_json sites =
  "["
  ^ String.concat ", "
      (List.map
         (fun s ->
           Printf.sprintf
             "{\"site\": \"%s\", \"level\": \"%s\", \"thunk\": %d, \
              \"target\": %d, \"pinned\": %b, \"queued\": %b, \
              \"slices\": %d, \"compiles\": %d, \"patches\": %d, \
              \"attempts\": %d}"
             (site_key s) (level_name s.s_level) s.s_thunk s.s_target
             s.s_pinned s.s_queued s.s_slices s.s_compiles s.s_patches
             s.s_attempts)
         sites)
  ^ "]"

let table_json ctl = sites_json ctl.sites

(* ------------------------------------------------------------------ *)
(* Hotness                                                             *)
(* ------------------------------------------------------------------ *)

(* Weighted execution count of every valid superblock whose entry lies
   in [lo, hi): the always-on hotness signal.  [sb_execs] is bumped
   unconditionally by the engine (one add per block execution), so this
   needs no --profile run — it is a scan of state the engine maintains
   anyway. *)
let raw_hotness ctl (lo, hi) =
  Cpu.fold_blocks ctl.env.Modes.img.Image.cpu
    (fun acc entry execs static ->
      if entry >= lo && entry < hi then acc + (execs * static) else acc)
    0

(* Hotness accumulated since the site's last retarget.  The baseline
   snapshot (instead of resetting engine counters) keeps the signal
   read-only; the clamp absorbs counter loss from flushes and trace
   promotion, which replace a block and restart its count. *)
let hotness ctl s = max 0 (raw_hotness ctl s.s_range - s.s_baseline)

let target_range env target =
  match Image.code_range env.Modes.img target with
  | Some r -> r
  | None -> (target, target + 1) (* untracked install: entry block only *)

let threshold_for ctl = function
  | Cold -> ctl.cfg.hot_threshold
  | Warm ->
    if ctl.cfg.hot_threshold >= max_int / ctl.cfg.promote_mult then max_int
    else ctl.cfg.hot_threshold * ctl.cfg.promote_mult
  | Hot -> max_int

(* ------------------------------------------------------------------ *)
(* Sites                                                               *)
(* ------------------------------------------------------------------ *)

(** The site for [(kind, style)], creating it (and its entry thunk,
    initially targeting the native kernel) on first use.  The thunk
    address is what callers must hand to the Jacobi driver. *)
let register ctl kind style =
  match
    List.find_opt
      (fun s -> s.s_kind = kind && s.s_style = style)
      ctl.sites
  with
  | Some s -> s
  | None ->
    let native = Modes.native_addr ctl.env kind style in
    let thunk = Image.install_thunk ctl.env.Modes.img ~target:native in
    let range = target_range ctl.env native in
    let s =
      { s_kind = kind; s_style = style; s_thunk = thunk; s_target = native;
        s_level = Cold; s_range = range;
        s_baseline = raw_hotness ctl range; s_attempts = 0;
        s_not_before = 0; s_pinned = false; s_queued = false; s_slices = 0;
        s_compiles = 0; s_patches = 0 }
    in
    ctl.sites <- ctl.sites @ [ s ];
    s

(* Patch the site's thunk to [kernel] (no-op when already there):
   rewrite the imm64 in place and flush only the thunk's bytes. *)
let retarget ctl s kernel =
  if kernel <> s.s_target then begin
    Image.patch_thunk ctl.env.Modes.img s.s_thunk ~target:kernel;
    s.s_target <- kernel;
    s.s_range <- target_range ctl.env kernel;
    s.s_baseline <- raw_hotness ctl s.s_range;
    s.s_patches <- s.s_patches + 1;
    ctl.patches <- ctl.patches + 1;
    Tel.incr_c c_patch;
    if !Tel.enabled then Tel.instant "tier.patch" ~args:(site_key s);
    Flight.(
      emit Tier_patch ~a:kernel ~b:ctl.tick ~subject:(site_key s))
  end

(* ------------------------------------------------------------------ *)
(* Tier-up                                                             *)
(* ------------------------------------------------------------------ *)

(* One recompilation attempt towards [lvl], served through the
   sentinel: acquisition shadow-validates the fresh kernel on a forked
   image, consults the quarantine blacklist, and walks the fallback
   chain on failure.  Only a full-rank (non-demoted) serve patches the
   call site; a demoted serve re-enters deterministic backoff and,
   after [heal_max] consecutive demotions, pins the site — a
   quarantined tier-up target must never hot-loop recompilation. *)
let tier_up ctl s lvl =
  let want = mode_of_level lvl in
  ctl.compiles <- ctl.compiles + 1;
  s.s_compiles <- s.s_compiles + 1;
  Tel.incr_c c_compile;
  Flight.(
    emit Tier_compile ~b:ctl.tick ~subject:(site_key s)
      ~detail:("want " ^ Modes.transform_name want));
  let t0 = Tel.Clock.now () in
  let sv =
    Tel.span "tier.compile" ~args:(site_key s) (fun () ->
        Sen.serve ~policy:ctl.cfg.policy ?out_dir:ctl.cfg.out_dir ctl.env
          s.s_kind s.s_style want)
  in
  ctl.compile_s <- ctl.compile_s +. (Tel.Clock.now () -. t0);
  if sv.Sen.sv_demoted then begin
    ctl.demotions <- ctl.demotions + 1;
    Tel.incr_c c_demote;
    s.s_attempts <- s.s_attempts + 1;
    Flight.(
      emit Tier_demote ~a:s.s_attempts ~b:ctl.tick ~subject:(site_key s)
        ~detail:("landed on " ^ Modes.transform_name sv.Sen.sv_mode));
    if s.s_attempts > ctl.cfg.policy.H.heal_max then begin
      s.s_pinned <- true;
      Flight.(
        emit Tier_pin ~a:s.s_attempts ~b:ctl.tick ~subject:(site_key s));
      note ctl "%s: pinned at %s after %d demoted tier-up attempts"
        (site_key s) (level_name s.s_level) s.s_attempts
    end
    else begin
      let delay =
        H.backoff_delay ctl.cfg.policy
          ~digest:(Digest.string (site_key s ^ Modes.transform_name want))
          ~attempt:s.s_attempts
      in
      s.s_not_before <- ctl.tick + delay;
      note ctl "%s: tier-up to %s demoted to %s; backing off %d tick(s)"
        (site_key s) (Modes.transform_name want)
        (Modes.transform_name sv.Sen.sv_mode)
        delay
    end
  end
  else begin
    s.s_attempts <- 0;
    retarget ctl s sv.Sen.sv_kernel;
    s.s_level <- lvl;
    ctl.tierups <- ctl.tierups + 1;
    Tel.incr_c c_tierup;
    Flight.(
      emit Tier_up ~a:sv.Sen.sv_kernel ~b:ctl.tick ~subject:(site_key s)
        ~detail:(level_name lvl ^ ", " ^ Modes.transform_name sv.Sen.sv_mode));
    note ctl "%s: tiered up to %s (%s, kernel 0x%x%s)" (site_key s)
      (level_name lvl)
      (Modes.transform_name sv.Sen.sv_mode)
      sv.Sen.sv_kernel
      (if sv.Sen.sv_checked then ", validated" else "")
  end

(** One controller step (call between workload slices): advance the
    logical clock, enqueue every site whose hotness since its last
    patch crossed its tier threshold, then drain at most one compile
    request — the compile queue models an asynchronous compiler that
    finishes one recompile per slice.  Returns [true] when a compile
    was issued. *)
let poll ctl =
  ctl.tick <- ctl.tick + 1;
  List.iter
    (fun s ->
      match next_level s.s_level with
      | Some _
        when (not s.s_pinned) && (not s.s_queued)
             && ctl.tick >= s.s_not_before
             && hotness ctl s >= threshold_for ctl s.s_level ->
        s.s_queued <- true;
        Queue.add s ctl.queue;
        Tel.incr_c c_enqueue;
        Flight.(
          emit Tier_enqueue ~a:(hotness ctl s) ~b:ctl.tick
            ~subject:(site_key s) ~detail:(level_name s.s_level));
        note ctl "%s: hot (%d >= %d at %s), enqueued" (site_key s)
          (hotness ctl s)
          (threshold_for ctl s.s_level)
          (level_name s.s_level)
      | _ -> ())
    ctl.sites;
  if !Tel.enabled then Tel.observe h_queue (Queue.length ctl.queue);
  match Queue.take_opt ctl.queue with
  | None -> false
  | Some s ->
    s.s_queued <- false;
    (match next_level s.s_level with
     | Some lvl -> tier_up ctl s lvl
     | None -> ());
    true

(* ------------------------------------------------------------------ *)
(* Sliced partially-hot workload                                       *)
(* ------------------------------------------------------------------ *)

(** Compilation strategies the bench figure compares. [Tiered] is the
    adaptive controller; [AlwaysTop] compiles every site to DBrew+LLVM
    up front (full compile cost before the first slice); [NeverTier]
    stays in the superblock engine forever (the tier-off control — its
    slices are bit-identical in simulated cycles to a [Tiered] run
    whose threshold never fires). *)
type strategy = Tiered | AlwaysTop | NeverTier

let strategy_name = function
  | Tiered -> "tiered"
  | AlwaysTop -> "always"
  | NeverTier -> "never"

(** A partially-hot multi-kernel schedule: [hot] takes three slices in
    every four, the [cold] sites round-robin the remainder. *)
let partially_hot ~slices ~hot ~cold : (Modes.kind * Modes.style) array =
  Array.init slices (fun i ->
      if cold = [] || i mod 4 < 3 then hot
      else List.nth cold (i / 4 mod List.length cold))

type run_result = {
  r_strategy : strategy;
  r_total_cycles : int;      (* simulated cycles over all slices *)
  r_total_insns : int;
  r_wall_s : float;          (* wall clock: compiles + emulation *)
  r_compile_s : float;       (* wall spent in tier-up serves *)
  r_cycles_to_peak : int;    (* cycles executed before the last patch *)
  r_time_to_peak_s : float;  (* wall until the code reached final form *)
  r_slices_to_peak : int;
  r_reached_peak : bool;     (* some site reached the Hot tier *)
  r_peak_slice_cycles : int; (* cheapest dominant-site slice *)
  r_patches : int;
  r_tierups : int;
  r_demotions : int;
  r_compiles : int;
  r_result : int64 array;    (* final matrix, bit pattern *)
  r_sites : site list;
  r_events : (int * string) list; (* oldest first *)
}

(* One Jacobi iteration through the site's thunk.  Slice [2k] reads m1
   and writes m2, slice [2k+1] the reverse — exactly the buffer swap
   the monolithic driver performs internally, so a sliced run computes
   bit-identical results to [Modes.run] with [iters = n]. *)
let run_slice ctl s ~slice =
  let env = ctl.env in
  let img = env.Modes.img in
  Image.reset_stack img;
  let driver =
    Image.lookup img
      (match s.s_style with
       | Modes.Element -> "jacobi_element"
       | Modes.Line -> "jacobi_line")
  in
  let m1 = Int64.of_int env.Modes.w.Stencil.m1 in
  let m2 = Int64.of_int env.Modes.w.Stencil.m2 in
  let a, b = if slice land 1 = 0 then (m1, m2) else (m2, m1) in
  let (), cy, ins =
    Image.measure img (fun () ->
        ignore
          (Image.call img ~fn:driver
             ~args:
               [ Int64.of_int (Modes.stencil_arg env s.s_kind); a; b; 1L;
                 Int64.of_int s.s_thunk ]))
  in
  s.s_slices <- s.s_slices + 1;
  (cy, ins)

(** Run [schedule] (one Jacobi iteration per slice, through per-site
    thunks) under [strategy] and report the tiering trajectory.  The
    result matrix is independent of the strategy: every tier is
    bit-exact, so only the cycle/compile trajectory differs. *)
let run ?(cfg = default_config) env
    ~(schedule : (Modes.kind * Modes.style) array) ~(strategy : strategy) :
    run_result =
  let cfg =
    match strategy with
    | NeverTier -> { cfg with hot_threshold = max_int }
    | Tiered | AlwaysTop -> cfg
  in
  let ctl = create ~cfg env in
  let t_start = Tel.Clock.now () in
  Array.iter (fun (k, st) -> ignore (register ctl k st)) schedule;
  (* the up-front strategy pays every compile before the first slice *)
  if strategy = AlwaysTop then
    List.iter (fun s -> tier_up ctl s Hot) ctl.sites;
  let dominant =
    let count s =
      Array.fold_left
        (fun acc (k, st) ->
          if k = s.s_kind && st = s.s_style then acc + 1 else acc)
        0 schedule
    in
    match ctl.sites with
    | [] -> None
    | s0 :: rest ->
      Some
        (List.fold_left
           (fun best s -> if count s > count best then s else best)
           s0 rest)
  in
  Modes.reset env;
  let n = Array.length schedule in
  let total_cycles = ref 0 and total_insns = ref 0 in
  let cycles_to_peak = ref 0 and slices_to_peak = ref 0 in
  let time_to_peak =
    ref (if strategy = AlwaysTop then Tel.Clock.now () -. t_start else 0.0)
  in
  let peak_slice = ref max_int in
  for i = 0 to n - 1 do
    let k, st = schedule.(i) in
    let s = register ctl k st in
    let cy, ins = run_slice ctl s ~slice:i in
    total_cycles := !total_cycles + cy;
    total_insns := !total_insns + ins;
    (match dominant with
     | Some d when d == s && cy < !peak_slice -> peak_slice := cy
     | _ -> ());
    if strategy <> AlwaysTop then begin
      let p0 = ctl.patches in
      ignore (poll ctl);
      if ctl.patches > p0 then begin
        cycles_to_peak := !total_cycles;
        time_to_peak := Tel.Clock.now () -. t_start;
        slices_to_peak := i + 1
      end
    end
  done;
  { r_strategy = strategy;
    r_total_cycles = !total_cycles;
    r_total_insns = !total_insns;
    r_wall_s = Tel.Clock.now () -. t_start;
    r_compile_s = ctl.compile_s;
    r_cycles_to_peak = !cycles_to_peak;
    r_time_to_peak_s = !time_to_peak;
    r_slices_to_peak = !slices_to_peak;
    r_reached_peak = List.exists (fun s -> s.s_level = Hot) ctl.sites;
    r_peak_slice_cycles = (if !peak_slice = max_int then 0 else !peak_slice);
    r_patches = ctl.patches;
    r_tierups = ctl.tierups;
    r_demotions = ctl.demotions;
    r_compiles = ctl.compiles;
    r_result =
      Array.map Int64.bits_of_float (Modes.result_matrix env ~iters:n);
    r_sites = ctl.sites;
    r_events = List.rev ctl.events }
