(** Imperative construction of IR functions. *)

open Ins

type t = {
  func : func;
  mutable cur : block option;
  mutable cur_prov : int;
  (* provenance id stamped on inserted instructions; the lifter points
     it at the guest instruction currently being lifted *)
}

(** Create a function with fresh parameter value ids 0..n-1 and an
    empty entry block (bid 0), positioned at the entry. *)
let create ~name ~(sg : signature) : t =
  let params = List.mapi (fun i _ -> i) sg.args in
  let entry = { bid = 0; instrs = []; term = Unreachable } in
  let f =
    { fname = name; sg; params; blocks = [ entry ];
      next_id = List.length sg.args; always_inline = false }
  in
  { func = f; cur = Some entry; cur_prov = 0 }

let func b = b.func

(** Provenance id attached to instructions inserted from now on. *)
let set_prov b p = b.cur_prov <- p

let cur_prov b = b.cur_prov

let fresh_id b =
  let id = b.func.next_id in
  b.func.next_id <- id + 1;
  id

(** Allocate a new empty block; does not change the insertion point. *)
let new_block b : int =
  let bid =
    1 + List.fold_left (fun m bl -> max m bl.bid) 0 b.func.blocks
  in
  b.func.blocks <- b.func.blocks @ [ { bid; instrs = []; term = Unreachable } ];
  bid

let position b bid = b.cur <- Some (find_block b.func bid)

let current_bid b =
  match b.cur with
  | Some bl -> bl.bid
  | None -> invalid_arg "Builder: no current block"

let insert b ~ty op : value =
  match b.cur with
  | None -> invalid_arg "Builder: no current block"
  | Some bl ->
    let id = fresh_id b in
    bl.instrs <- bl.instrs @ [ { id; ty; op; prov = b.cur_prov } ];
    V id

(** Insert a phi at the *front* of the given block (phis must precede
    ordinary instructions). *)
let insert_phi b bid ~ty incoming : value =
  let bl = find_block b.func bid in
  let id = fresh_id b in
  bl.instrs <-
    { id; ty = Some ty; op = Phi (ty, incoming); prov = b.cur_prov }
    :: bl.instrs;
  V id

let set_term b term =
  match b.cur with
  | None -> invalid_arg "Builder: no current block"
  | Some bl -> bl.term <- term

(* convenience wrappers *)

let bin b op ty x y = insert b ~ty:(Some ty) (Bin (op, ty, x, y))
let fbin b op ty x y = insert b ~ty:(Some ty) (FBin (op, ty, x, y))
let icmp b p ty x y = insert b ~ty:(Some I1) (Icmp (p, ty, x, y))
let fcmp b p ty x y = insert b ~ty:(Some I1) (Fcmp (p, ty, x, y))
let select b ty c x y = insert b ~ty:(Some ty) (Select (ty, c, x, y))
let cast b k ~src_ty v ~dst_ty =
  insert b ~ty:(Some dst_ty) (Cast (k, src_ty, v, dst_ty))
let load b ty ?(align = 1) p = insert b ~ty:(Some ty) (Load (ty, p, align))
let store b ty ?(align = 1) v p =
  ignore (insert b ~ty:None (Store (ty, v, p, align)))
let gep b base elts = insert b ~ty:(Some (Ptr 0)) (Gep (base, elts))
let call b name sg args =
  insert b ~ty:sg.ret (CallDirect (name, sg, args))
let call_ptr b f sg args = insert b ~ty:sg.ret (CallPtr (f, sg, args))
let alloca b size align = insert b ~ty:(Some (Ptr 0)) (Alloca (size, align))
let extractelt b vty v lane =
  let lane_ty = match vty with Vec (_, t) -> t | _ -> invalid_arg "extractelt" in
  insert b ~ty:(Some lane_ty) (ExtractElt (vty, v, lane))
let insertelt b vty v s lane =
  insert b ~ty:(Some vty) (InsertElt (vty, v, s, lane))
let shuffle b rty a bb mask = insert b ~ty:(Some rty) (Shuffle (rty, a, bb, mask))
let intr b i ~ty args = insert b ~ty:(Some ty) (Intr (i, args))

let ret b v = set_term b (Ret v)
let br b bid = set_term b (Br bid)
let condbr b c t e = set_term b (CondBr (c, t, e))
