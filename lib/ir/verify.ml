(** IR well-formedness checker: SSA single-definition, def-dominates-
    use, phi/CFG consistency and type correctness.  Run after every
    pass in tests to catch optimizer bugs. *)

open Ins

type def_site = DParam | DInstr of int * int (* block id, index *)

let type_of_value types = function
  | V id -> (
    match Hashtbl.find_opt types id with
    | Some t -> t
    | None -> invalid_arg (Printf.sprintf "no type for %%%d" id))
  | CInt (t, _) -> t
  | CF64 _ -> F64
  | CF32 _ -> F32
  | CPtr _ -> Ptr 0
  | CVec (t, _) -> t
  | Global _ -> Ptr 0
  | Undef t -> t

let check (f : func) : string list =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := (f.fname ^ ": " ^ s) :: !errs) fmt in
  (* def sites and types *)
  let defs : (int, def_site) Hashtbl.t = Hashtbl.create 64 in
  let types : (int, ty) Hashtbl.t = Hashtbl.create 64 in
  List.iter2
    (fun t id ->
      Hashtbl.replace defs id DParam;
      Hashtbl.replace types id t)
    f.sg.args f.params;
  List.iter
    (fun b ->
      List.iteri
        (fun i ins ->
          if Hashtbl.mem defs ins.id then err "duplicate definition %%%d" ins.id;
          Hashtbl.replace defs ins.id (DInstr (b.bid, i));
          match ins.ty with
          | Some t -> Hashtbl.replace types ins.id t
          | None -> ())
        b.instrs)
    f.blocks;
  let live = Cfg.reachable f in
  let block_ids = List.map (fun b -> b.bid) f.blocks in
  (* CFG targets exist *)
  List.iter
    (fun b ->
      List.iter
        (fun s ->
          if not (List.mem s block_ids) then
            err "bb%d branches to missing bb%d" b.bid s)
        (successors b.term))
    f.blocks;
  if !errs <> [] then List.rev !errs
  else begin
    let dom = Dom.compute f in
    let preds = Cfg.predecessors f in
    let tyv v =
      try type_of_value types v
      with Invalid_argument msg ->
        err "%s" msg;
        I64
    in
    (* does def of [v] dominate use at (bid, idx)?  [idx = max_int] for
       terminator uses *)
    let check_use ~where v (bid, idx) =
      match v with
      | V id -> (
        match Hashtbl.find_opt defs id with
        | None -> err "%s: use of undefined %%%d" where id
        | Some DParam -> ()
        | Some (DInstr (db, di)) ->
          if not (Hashtbl.mem live bid) then ()
          else if db = bid then begin
            if di >= idx then
              err "%s: %%%d used before its definition in bb%d" where id bid
          end
          else if not (Dom.dominates dom db bid) then
            err "%s: def of %%%d (bb%d) does not dominate use (bb%d)" where
              id db bid)
      | _ -> ()
    in
    let expect_ty ~where want v =
      match v with
      | Undef _ -> ()
      | _ ->
        let got = tyv v in
        if got <> want then
          err "%s: expected %s, got %s" where (ty_name want) (ty_name got)
    in
    let expect_int ~where t =
      if not (is_int t || (match t with Vec (_, e) -> is_int e | _ -> false))
      then err "%s: %s is not an integer type" where (ty_name t)
    in
    let expect_fp ~where t =
      if not (is_float t || (match t with Vec (_, e) -> is_float e | _ -> false))
      then err "%s: %s is not a float type" where (ty_name t)
    in
    List.iter
      (fun b ->
        if not (Hashtbl.mem live b.bid) then ()
        else begin
          let bp =
            List.filter
              (fun p -> Hashtbl.mem live p)
              (try Hashtbl.find preds b.bid with Not_found -> [])
          in
          let seen_nonphi = ref false in
          List.iteri
            (fun idx ins ->
              let where = Printf.sprintf "bb%d/%%%d" b.bid ins.id in
              (match ins.op with
               | Phi (t, incoming) ->
                 if !seen_nonphi then err "%s: phi after non-phi" where;
                 let inblocks = List.map fst incoming in
                 List.iter
                   (fun p ->
                     if not (List.mem p inblocks) then
                       err "%s: missing phi input for pred bb%d" where p)
                   bp;
                 List.iter
                   (fun (p, v) ->
                     if not (List.mem p bp) then
                       err "%s: phi input from non-pred bb%d" where p
                     else begin
                       expect_ty ~where t v;
                       check_use ~where v (p, max_int)
                     end)
                   incoming;
                 if ins.ty <> Some t then err "%s: phi type mismatch" where
               | op ->
                 seen_nonphi := true;
                 List.iter (fun v -> check_use ~where v (b.bid, idx))
                   (operands op);
                 (match op with
                  | Bin (_, t, a, bb) ->
                    expect_int ~where t;
                    expect_ty ~where t a;
                    expect_ty ~where t bb;
                    if ins.ty <> Some t then err "%s: result type" where
                  | FBin (_, t, a, bb) ->
                    expect_fp ~where t;
                    expect_ty ~where t a;
                    expect_ty ~where t bb;
                    if ins.ty <> Some t then err "%s: result type" where
                  | Icmp (_, t, a, bb) ->
                    expect_ty ~where t a;
                    expect_ty ~where t bb;
                    if ins.ty <> Some I1 then err "%s: icmp yields i1" where
                  | Fcmp (_, t, a, bb) ->
                    expect_fp ~where t;
                    expect_ty ~where t a;
                    expect_ty ~where t bb;
                    if ins.ty <> Some I1 then err "%s: fcmp yields i1" where
                  | Select (t, c, a, bb) ->
                    expect_ty ~where I1 c;
                    expect_ty ~where t a;
                    expect_ty ~where t bb;
                    if ins.ty <> Some t then err "%s: result type" where
                  | Cast (k, st, v, dt) ->
                    expect_ty ~where st v;
                    if ins.ty <> Some dt then err "%s: result type" where;
                    let sb = ty_bits st and db = ty_bits dt in
                    (match k with
                     | Trunc ->
                       if not (is_int st && is_int dt && sb > db) then
                         err "%s: bad trunc %s->%s" where (ty_name st)
                           (ty_name dt)
                     | Zext | Sext ->
                       if not (is_int st && is_int dt && sb < db) then
                         err "%s: bad ext" where
                     | Bitcast ->
                       if sb <> db then err "%s: bitcast width mismatch" where
                     | IntToPtr ->
                       if not (is_int st && is_ptr dt) then
                         err "%s: bad inttoptr" where
                     | PtrToInt ->
                       if not (is_ptr st && is_int dt) then
                         err "%s: bad ptrtoint" where
                     | FpToSi ->
                       if not (is_float st && is_int dt) then
                         err "%s: bad fptosi" where
                     | SiToFp ->
                       if not (is_int st && is_float dt) then
                         err "%s: bad sitofp" where
                     | FpExt ->
                       if not (st = F32 && dt = F64) then
                         err "%s: bad fpext" where
                     | FpTrunc ->
                       if not (st = F64 && dt = F32) then
                         err "%s: bad fptrunc" where)
                  | Load (t, p, _) ->
                    if not (is_ptr (tyv p)) then
                      err "%s: load from non-pointer" where;
                    if ins.ty <> Some t then err "%s: result type" where
                  | Store (t, v, p, _) ->
                    expect_ty ~where t v;
                    if not (is_ptr (tyv p)) then
                      err "%s: store to non-pointer" where;
                    if ins.ty <> None then err "%s: store has no result" where
                  | Gep (base, elts) ->
                    if not (is_ptr (tyv base)) then
                      err "%s: gep base not a pointer" where;
                    List.iter
                      (function
                        | GConst _ -> ()
                        | GScaled (v, _) -> expect_ty ~where I64 v)
                      elts
                  | Phi _ -> assert false
                  | CallDirect (_, sg, args) | CallPtr (_, sg, args) ->
                    (try List.iter2 (fun t v -> expect_ty ~where t v) sg.args args
                     with Invalid_argument _ -> err "%s: arity mismatch" where);
                    if ins.ty <> sg.ret then err "%s: call result type" where
                  | Alloca _ ->
                    if ins.ty <> Some (Ptr 0) then
                      err "%s: alloca yields ptr" where
                  | ExtractElt (t, v, l) ->
                    expect_ty ~where t v;
                    (match t with
                     | Vec (n, e) ->
                       if l < 0 || l >= n then err "%s: lane out of range" where;
                       if ins.ty <> Some e then err "%s: result type" where
                     | _ -> err "%s: extractelement needs vector" where)
                  | InsertElt (t, v, s, l) ->
                    expect_ty ~where t v;
                    (match t with
                     | Vec (n, e) ->
                       if l < 0 || l >= n then err "%s: lane out of range" where;
                       expect_ty ~where e s;
                       if ins.ty <> Some t then err "%s: result type" where
                     | _ -> err "%s: insertelement needs vector" where)
                  | Shuffle (rt, a, bb, mask) ->
                    let ta = tyv a in
                    (match ta, rt with
                     | Vec (n, e), Vec (rn, re) ->
                       expect_ty ~where ta bb;
                       if re <> e then err "%s: shuffle lane type" where;
                       if rn <> Array.length mask then
                         err "%s: mask length" where;
                       Array.iter
                         (fun i ->
                           if i >= 2 * n then err "%s: mask index" where)
                         mask
                     | _ -> err "%s: shuffle needs vectors" where)
                  | Intr _ -> ())))
            b.instrs;
          (* terminator *)
          let where = Printf.sprintf "bb%d/term" b.bid in
          List.iter (fun v -> check_use ~where v (b.bid, max_int))
            (term_operands b.term);
          (match b.term with
           | Ret v ->
             (match v, f.sg.ret with
              | None, None -> ()
              | Some v, Some t -> expect_ty ~where t v
              | None, Some _ -> err "%s: missing return value" where
              | Some _, None -> err "%s: unexpected return value" where)
           | CondBr (c, _, _) -> expect_ty ~where I1 c
           | Br _ | Unreachable -> ())
        end)
      f.blocks;
    List.rev !errs
  end

let check_module (m : modul) : string list =
  List.concat_map check m.funcs

(** Raise a typed [Verify] error with a readable report when a
    function is ill-formed. *)
let assert_ok ?(ctx = "") (f : func) =
  Obrew_fault.Fault.point "verify.func";
  match check f with
  | [] -> ()
  | errs ->
    Obrew_fault.Err.fail Obrew_fault.Err.Verify
      "IR verification failed%s:\n%s\n%s"
      (if ctx = "" then "" else " after " ^ ctx)
      (String.concat "\n" errs) (Pp_ir.func f)
