(** The SSA intermediate representation standing in for LLVM-IR.

    Exactly the constructs the paper's lifting relies on are covered:
    integer/float arithmetic, icmp/fcmp/select, phi nodes,
    load/store/getelementptr, the cast zoo (trunc/zext/sext/bitcast/
    inttoptr/ptrtoint/fp conversions), vector extract/insert/shuffle,
    alloca, direct and indirect calls and a handful of intrinsics. *)

type ty =
  | I1 | I8 | I16 | I32 | I64 | I128
  | F32 | F64
  | Vec of int * ty (* lane count, scalar lane type *)
  | Ptr of int      (* address space: 0 normal, 256 gs, 257 fs *)

let rec ty_bits = function
  | I1 -> 1 | I8 -> 8 | I16 -> 16 | I32 -> 32 | I64 -> 64 | I128 -> 128
  | F32 -> 32 | F64 -> 64
  | Vec (n, t) -> n * ty_bits t
  | Ptr _ -> 64

let ty_bytes t = (ty_bits t + 7) / 8

let is_int = function I1 | I8 | I16 | I32 | I64 | I128 -> true | _ -> false
let is_float = function F32 | F64 -> true | _ -> false
let is_vec = function Vec _ -> true | _ -> false
let is_ptr = function Ptr _ -> true | _ -> false

let rec ty_name = function
  | I1 -> "i1" | I8 -> "i8" | I16 -> "i16" | I32 -> "i32" | I64 -> "i64"
  | I128 -> "i128"
  | F32 -> "float" | F64 -> "double"
  | Vec (n, t) -> Printf.sprintf "<%d x %s>" n (ty_name t)
  | Ptr 0 -> "ptr"
  | Ptr a -> Printf.sprintf "ptr addrspace(%d)" a

(** SSA values.  [V id] references the instruction or parameter that
    defines value [id]. *)
type value =
  | V of int
  | CInt of ty * int64  (* bits truncated to the type's width; i128
                           constants are restricted to 64-bit payloads *)
  | CF64 of float
  | CF32 of float
  | CPtr of int         (* known absolute address in the image *)
  | CVec of ty * value list
  | Global of string    (* named module global; resolved at JIT time *)
  | Undef of ty

type icmp_pred = Eq | Ne | Slt | Sle | Sgt | Sge | Ult | Ule | Ugt | Uge
type fcmp_pred =
  | Oeq | One | Olt | Ole | Ogt | Oge | Ord | Uno
  | Ueq | Une | Ult | Ule

type binop =
  | Add | Sub | Mul | SDiv | SRem | UDiv | URem
  | Shl | LShr | AShr | And | Or | Xor

type fbinop = FAdd | FSub | FMul | FDiv

type cast =
  | Trunc | Zext | Sext | Bitcast | IntToPtr | PtrToInt
  | FpToSi | SiToFp | FpExt | FpTrunc

(** GEP addressing element: a constant byte offset or a value scaled by
    an element size in bytes. *)
type gep_elt = GConst of int | GScaled of value * int

type intrinsic =
  | Ctpop of ty       (* llvm.ctpop *)
  | Sqrt of ty
  | Fabs of ty
  | MinNum of ty      (* llvm.minnum: x86 minsd semantics approximated *)
  | MaxNum of ty

let intrinsic_name = function
  | Ctpop t -> "llvm.ctpop." ^ ty_name t
  | Sqrt t -> "llvm.sqrt." ^ ty_name t
  | Fabs t -> "llvm.fabs." ^ ty_name t
  | MinNum t -> "llvm.minnum." ^ ty_name t
  | MaxNum t -> "llvm.maxnum." ^ ty_name t

(** Function signature in terms of the System V lowering the lifter
    assumes: up to six integer/pointer parameters and eight float
    parameters, with one (optional) return value. *)
type signature = { args : ty list; ret : ty option }

type op =
  | Bin of binop * ty * value * value
  | FBin of fbinop * ty * value * value
  | Icmp of icmp_pred * ty * value * value
  | Fcmp of fcmp_pred * ty * value * value
  | Select of ty * value * value * value
  | Cast of cast * ty * value * ty (* kind, source ty, source, dest ty *)
  | Load of ty * value * int       (* ty, pointer, alignment *)
  | Store of ty * value * value * int (* ty, stored value, pointer, align *)
  | Gep of value * gep_elt list    (* result is Ptr *)
  | Phi of ty * (int * value) list (* (predecessor block, value) *)
  | CallDirect of string * signature * value list
  | CallPtr of value * signature * value list
  | Alloca of int * int            (* size bytes, alignment *)
  | ExtractElt of ty * value * int (* vector ty, vector, lane *)
  | InsertElt of ty * value * value * int (* vec ty, vector, scalar, lane *)
  | Shuffle of ty * value * value * int array
    (* result ty; lanes index the concatenation [v1 @ v2]; -1 = undef *)
  | Intr of intrinsic * value list

type instr = {
  id : int;            (* the SSA value this instruction defines *)
  ty : ty option;      (* result type; None for store / void call *)
  op : op;
  prov : int;          (* provenance id (guest addr + lift ordinal), see
                          Obrew_provenance.Provenance; 0 = none *)
}

type terminator =
  | Ret of value option
  | Br of int
  | CondBr of value * int * int (* cond, then-block, else-block *)
  | Unreachable

type block = {
  bid : int;
  mutable instrs : instr list; (* phis first *)
  mutable term : terminator;
}

type func = {
  fname : string;
  sg : signature;
  params : int list;        (* value ids of the parameters, in order *)
  mutable blocks : block list; (* entry first *)
  mutable next_id : int;
  mutable always_inline : bool;
}

(** A named global: raw initial bytes placed into the image at JIT
    install time.  [constant] marks read-only data (enables load
    folding during specialization). *)
type global = {
  gname : string;
  bytes : string;
  galign : int;
  constant : bool;
}

type modul = {
  mutable funcs : func list;
  mutable globals : global list;
}

let entry_block f =
  match f.blocks with
  | b :: _ -> b
  | [] -> invalid_arg ("function without blocks: " ^ f.fname)

let find_block f bid =
  match List.find_opt (fun b -> b.bid = bid) f.blocks with
  | Some b -> b
  | None ->
    invalid_arg (Printf.sprintf "%s: no block %d" f.fname bid)

let find_func m name =
  match List.find_opt (fun f -> f.fname = name) m.funcs with
  | Some f -> f
  | None -> invalid_arg ("no function " ^ name)

let find_global m name =
  match List.find_opt (fun g -> g.gname = name) m.globals with
  | Some g -> g
  | None -> invalid_arg ("no global " ^ name)

(** Successor block ids of a terminator. *)
let successors = function
  | Ret _ | Unreachable -> []
  | Br b -> [ b ]
  | CondBr (_, t, e) -> if t = e then [ t ] else [ t; e ]

(** Operand values of an op, in order. *)
let operands = function
  | Bin (_, _, a, b) | FBin (_, _, a, b) | Icmp (_, _, a, b)
  | Fcmp (_, _, a, b) -> [ a; b ]
  | Select (_, c, a, b) -> [ c; a; b ]
  | Cast (_, _, v, _) -> [ v ]
  | Load (_, p, _) -> [ p ]
  | Store (_, v, p, _) -> [ v; p ]
  | Gep (base, elts) ->
    base
    :: List.filter_map
         (function GConst _ -> None | GScaled (v, _) -> Some v)
         elts
  | Phi (_, ins) -> List.map snd ins
  | CallDirect (_, _, args) -> args
  | CallPtr (f, _, args) -> f :: args
  | Alloca _ -> []
  | ExtractElt (_, v, _) -> [ v ]
  | InsertElt (_, v, s, _) -> [ v; s ]
  | Shuffle (_, a, b, _) -> [ a; b ]
  | Intr (_, args) -> args

(** Rebuild an op with operands replaced through [f] (same order as
    {!operands}). *)
let map_operands f op =
  match op with
  | Bin (o, t, a, b) -> Bin (o, t, f a, f b)
  | FBin (o, t, a, b) -> FBin (o, t, f a, f b)
  | Icmp (p, t, a, b) -> Icmp (p, t, f a, f b)
  | Fcmp (p, t, a, b) -> Fcmp (p, t, f a, f b)
  | Select (t, c, a, b) -> Select (t, f c, f a, f b)
  | Cast (k, st, v, dt) -> Cast (k, st, f v, dt)
  | Load (t, p, al) -> Load (t, f p, al)
  | Store (t, v, p, al) -> Store (t, f v, f p, al)
  | Gep (base, elts) ->
    Gep
      ( f base,
        List.map
          (function
            | GConst c -> GConst c
            | GScaled (v, s) -> GScaled (f v, s))
          elts )
  | Phi (t, ins) -> Phi (t, List.map (fun (b, v) -> (b, f v)) ins)
  | CallDirect (n, sg, args) -> CallDirect (n, sg, List.map f args)
  | CallPtr (c, sg, args) -> CallPtr (f c, sg, List.map f args)
  | Alloca _ as a -> a
  | ExtractElt (t, v, i) -> ExtractElt (t, f v, i)
  | InsertElt (t, v, s, i) -> InsertElt (t, f v, f s, i)
  | Shuffle (t, a, b, m) -> Shuffle (t, f a, f b, m)
  | Intr (i, args) -> Intr (i, List.map f args)

let term_operands = function
  | Ret (Some v) -> [ v ]
  | Ret None | Unreachable | Br _ -> []
  | CondBr (c, _, _) -> [ c ]

let map_term_operands f = function
  | Ret (Some v) -> Ret (Some (f v))
  | CondBr (c, t, e) -> CondBr (f c, t, e)
  | t -> t

(** Does this instruction have an effect beyond its result value?  Such
    instructions must not be removed by DCE even when unused. *)
let has_side_effect = function
  | Store _ | CallDirect _ | CallPtr _ -> true
  | Alloca _ -> false (* dead allocas are removable *)
  | Load _ -> false   (* all our loads are non-volatile, as in the paper *)
  | _ -> false
