(** Provenance: guest-address attribution through the whole rewriting
    pipeline.

    The paper explains its results by reading the generated code
    (Fig. 5/6/8) — this module mechanizes that story.  A compact
    provenance id (guest address + lift ordinal) is stamped on every IR
    instruction at lift time and preserved (or accounted for) by every
    optimizer pass and by instruction selection, so that

    - every surviving IR instruction knows which guest instruction it
      came from,
    - every transformation that deletes/merges/hoists/unrolls/
      specializes an instruction leaves a {e remark}, and
    - every emitted host byte range maps back to a guest address.

    A cycle-attribution profiler rides on the same ids: both execution
    engines record per-address simulated cycles and execution counts,
    plus per-superblock counters.

    Everything is one-branch-when-disabled, mirroring the telemetry
    gate of {!Obrew_telemetry.Telemetry}: with [enabled = false] the
    only cost to the pipeline is stamping an integer field and testing
    one [bool ref] per potential record. *)

module Tel = Obrew_telemetry.Telemetry

(* ------------------------------------------------------------------ *)
(* Compact ids                                                         *)
(* ------------------------------------------------------------------ *)

(** A provenance id: guest address in the high bits, lift ordinal (the
    index of the guest instruction in lift order, disambiguating
    re-lifted or block-split addresses) in the low 16.  [0] is "no
    provenance" — guest code lives at {!Obrew_x86.Image.code_base} and
    above, so a real id is never 0. *)
type t = int

let none : t = 0
let make ~addr ~ord : t = (addr lsl 16) lor (ord land 0xffff)
let addr (p : t) = p lsr 16
let ord (p : t) = p land 0xffff
let is_some (p : t) = p <> 0

let to_string (p : t) =
  if p = none then "-" else Printf.sprintf "0x%x#%d" (addr p) (ord p)

(* ------------------------------------------------------------------ *)
(* The gate                                                            *)
(* ------------------------------------------------------------------ *)

(** Master switch for remark collection, the profiler and the host
    map.  Id stamping itself is unconditional (it is just an [int]
    field). *)
let enabled = ref false

(* ------------------------------------------------------------------ *)
(* Optimizer remarks                                                   *)
(* ------------------------------------------------------------------ *)

type action = Deleted | Merged | Hoisted | Unrolled | Specialized

let action_name = function
  | Deleted -> "deleted"
  | Merged -> "merged"
  | Hoisted -> "hoisted"
  | Unrolled -> "unrolled"
  | Specialized -> "specialized"

type remark = { pass : string; action : action; prov : t; detail : string }

let dummy_remark = { pass = ""; action = Deleted; prov = none; detail = "" }

let rbuf = ref (Array.make 256 dummy_remark)
let rcount = ref 0

let c_remarks = Tel.counter "prov.remarks"
let c_insns = Tel.counter "prov.profiled_insns"
let c_blocks = Tel.counter "prov.profiled_blocks"
let c_hosts = Tel.counter "prov.host_ranges"

let record ~pass ~action ~prov ~detail =
  if !enabled then begin
    if !rcount = Array.length !rbuf then begin
      let bigger = Array.make (2 * !rcount) dummy_remark in
      Array.blit !rbuf 0 bigger 0 !rcount;
      rbuf := bigger
    end;
    !rbuf.(!rcount) <- { pass; action; prov; detail };
    incr rcount;
    Tel.incr_c c_remarks
  end

(** Rollback support for the verifier-gated pipeline: {!mark} before a
    pass, {!truncate} back to it when the pass is dropped, so a rolled
    back pass leaves no remarks. *)
let mark () = !rcount
let truncate n = if n >= 0 && n < !rcount then rcount := n

let remarks_recorded () = !rcount

let iter_remarks f =
  for i = 0 to !rcount - 1 do
    f !rbuf.(i)
  done

(* ------------------------------------------------------------------ *)
(* Cycle-attribution profiler                                          *)
(* ------------------------------------------------------------------ *)

type pcell = { mutable p_cycles : int; mutable p_execs : int }

(* per executing address (guest code runs in place; emitted code is
   attributed back through the host map at export time) *)
let insn_prof : (int, pcell) Hashtbl.t = Hashtbl.create 1024

(* per superblock entry: one record per block execution *)
let block_prof : (int, pcell) Hashtbl.t = Hashtbl.create 128

let cell tbl k =
  match Hashtbl.find_opt tbl k with
  | Some c -> c
  | None ->
    let c = { p_cycles = 0; p_execs = 0 } in
    Hashtbl.replace tbl k c;
    c

(** Record one executed instruction at [addr] costing [cycles].
    Callers gate on {!enabled}. *)
let record_insn addr cycles =
  let c = cell insn_prof addr in
  c.p_cycles <- c.p_cycles + cycles;
  c.p_execs <- c.p_execs + 1;
  Tel.incr_c c_insns

(** Record one superblock execution. *)
let record_block entry ~cycles ~insns =
  let c = cell block_prof entry in
  c.p_cycles <- c.p_cycles + cycles;
  c.p_execs <- c.p_execs + 1;
  ignore insns;
  Tel.incr_c c_blocks

let iter_insn_profile f =
  Hashtbl.iter (fun a c -> f ~addr:a ~cycles:c.p_cycles ~execs:c.p_execs)
    insn_prof

let iter_block_profile f =
  Hashtbl.iter (fun a c -> f ~entry:a ~cycles:c.p_cycles ~execs:c.p_execs)
    block_prof

(** (total cycles, total executions) over all profiled addresses. *)
let profile_totals () =
  Hashtbl.fold
    (fun _ c (cy, ex) -> (cy + c.p_cycles, ex + c.p_execs))
    insn_prof (0, 0)

(* ------------------------------------------------------------------ *)
(* Host map                                                            *)
(* ------------------------------------------------------------------ *)

(** Per emitted function: the host byte ranges it occupies, each with
    the provenance id of the IR instruction it was selected from
    ([none] for prologue/epilogue/glue).  Re-installing a function
    replaces its map. *)
let host_maps : (string, (int * int * t) array) Hashtbl.t = Hashtbl.create 8

let set_host_map ~fn ranges =
  if !enabled then begin
    let a = Array.of_list ranges in
    Hashtbl.replace host_maps fn a;
    Tel.add_c c_hosts (Array.length a)
  end

let host_map fn = Hashtbl.find_opt host_maps fn

let iter_host_maps f = Hashtbl.iter f host_maps

(** Map a host address back to the provenance id of the instruction
    emitted there, searching all installed functions. *)
let guest_of_host a =
  let found = ref none in
  Hashtbl.iter
    (fun _ ranges ->
      if !found = none then
        Array.iter
          (fun (lo, len, p) ->
            if a >= lo && a < lo + len && p <> none then found := p)
          ranges)
    host_maps;
  if !found = none then None else Some !found

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let enable () = enabled := true
let disable () = enabled := false

let reset () =
  rcount := 0;
  Hashtbl.reset insn_prof;
  Hashtbl.reset block_prof;
  Hashtbl.reset host_maps

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let remarks_schema_version = 1
let profile_schema_version = 1

let esc = Tel.json_escape

(** Flat JSON of every optimizer remark, lift order preserved. *)
let export_remarks () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "{\"schema_version\":%d,\"remarks\":[" remarks_schema_version);
  let first = ref true in
  iter_remarks (fun r ->
      if !first then first := false else Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"pass\":\"%s\",\"action\":\"%s\",\"guest_addr\":%d,\"ord\":%d,\
            \"detail\":\"%s\"}"
           (esc r.pass) (action_name r.action) (addr r.prov) (ord r.prov)
           (esc r.detail)));
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

(** Profile JSON: top-[top] hot addresses by simulated cycles with
    their cycle share, plus the per-superblock counters.  Addresses
    inside an emitted function's host ranges also carry the guest
    address they originate from. *)
let export_profile ?(top = 20) () =
  let rows = ref [] in
  iter_insn_profile (fun ~addr ~cycles ~execs ->
      rows := (addr, cycles, execs) :: !rows);
  let rows =
    List.sort (fun (_, c1, _) (_, c2, _) -> compare c2 c1) !rows
  in
  let total_cycles, total_execs = profile_totals () in
  let shown = List.filteri (fun i _ -> i < top) rows in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"schema_version\":%d,\"total_cycles\":%d,\"total_execs\":%d,\
        \"rows\":["
       profile_schema_version total_cycles total_execs);
  let first = ref true in
  List.iter
    (fun (a, cy, ex) ->
      if !first then first := false else Buffer.add_char buf ',';
      let share =
        if total_cycles = 0 then 0.0
        else float_of_int cy /. float_of_int total_cycles
      in
      let guest =
        match guest_of_host a with
        | Some p -> Printf.sprintf ",\"guest_addr\":%d" (addr p)
        | None -> ""
      in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"addr\":%d,\"cycles\":%d,\"execs\":%d,\"share\":%.6f%s}" a cy ex
           share guest))
    shown;
  Buffer.add_string buf "],\"blocks\":[";
  let brows = ref [] in
  iter_block_profile (fun ~entry ~cycles ~execs ->
      brows := (entry, cycles, execs) :: !brows);
  let brows =
    List.sort (fun (_, c1, _) (_, c2, _) -> compare c2 c1) !brows
  in
  let first = ref true in
  List.iter
    (fun (a, cy, ex) ->
      if !first then first := false else Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"entry\":%d,\"cycles\":%d,\"execs\":%d}" a cy ex))
    (List.filteri (fun i _ -> i < top) brows);
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

(** Human-readable top-[top] table (the [--profile] output). *)
let format_profile ?(top = 20) () =
  let rows = ref [] in
  iter_insn_profile (fun ~addr ~cycles ~execs ->
      rows := (addr, cycles, execs) :: !rows);
  let rows =
    List.sort (fun (_, c1, _) (_, c2, _) -> compare c2 c1) !rows
  in
  let total, _ = profile_totals () in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "profile: %d simulated cycles over %d hot addresses\n"
       total (List.length rows));
  Buffer.add_string buf "    address       cycles      execs  share\n";
  List.iteri
    (fun i (a, cy, ex) ->
      if i < top then begin
        let share =
          if total = 0 then 0.0
          else 100.0 *. float_of_int cy /. float_of_int total
        in
        let origin =
          match guest_of_host a with
          | Some p -> Printf.sprintf "  <- guest 0x%x" (addr p)
          | None -> ""
        in
        Buffer.add_string buf
          (Printf.sprintf "  0x%08x %12d %10d %5.1f%%%s\n" a cy ex share
             origin)
      end)
    rows;
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc
