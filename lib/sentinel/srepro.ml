(** Persistent sentinel reproducers: a sibling of the oracle's
    [.repro] format for kernels caught diverging at runtime.  Where an
    oracle reproducer stores a self-contained generated case, a
    sentinel reproducer stores the *installed host bytes* of the broken
    kernel plus the request that produced it (kind/style/mode/matrix
    size), which is everything needed to rebuild the workload and probe
    the bytes against the native reference.

    Grammar (s-expressions, shared lexer with {!Obrew_oracle.Repro}):
    {v
    (srepro
      (name q-000001)
      (mode DBrew+LLVM)             ; transform that produced the code
      (kind flat) (style element)
      (sz 9)
      (digest "d41d8cd9...")        ; MD5 of the original install
      (code "4889...")              ; kernel host bytes, hex
      (note "free text, ignored"))
    v} *)

module R = Obrew_oracle.Repro

type t = {
  s_name : string;
  s_mode : string;   (* Modes.transform_name of the producing mode *)
  s_kind : string;   (* Modes.kind_name *)
  s_style : string;  (* Modes.style_name *)
  s_sz : int;        (* workload matrix side length *)
  s_digest : string; (* Digest.t (raw) of the originally installed bytes *)
  s_code : string;   (* kernel host bytes (possibly shrunk) *)
  s_note : string;
}

let to_string (r : t) : string =
  let b = Buffer.create 512 in
  Buffer.add_string b "(srepro\n";
  Buffer.add_string b (Printf.sprintf "  (name %s)\n" r.s_name);
  Buffer.add_string b (Printf.sprintf "  (mode %s)\n" r.s_mode);
  Buffer.add_string b
    (Printf.sprintf "  (kind %s) (style %s)\n" r.s_kind r.s_style);
  Buffer.add_string b (Printf.sprintf "  (sz %d)\n" r.s_sz);
  Buffer.add_string b
    (Printf.sprintf "  (digest \"%s\")\n" (Digest.to_hex r.s_digest));
  Buffer.add_string b
    (Printf.sprintf "  (code \"%s\")\n" (R.hex_of_string r.s_code));
  if r.s_note <> "" then begin
    (* the reader's lexer maps [\c] to [c], so both the quote and the
       backslash itself must be escaped on the way out *)
    let esc = Buffer.create (String.length r.s_note + 8) in
    String.iter
      (fun c ->
        (match c with '"' | '\\' -> Buffer.add_char esc '\\' | _ -> ());
        Buffer.add_char esc c)
      r.s_note;
    Buffer.add_string b
      (Printf.sprintf "  (note \"%s\")\n" (Buffer.contents esc))
  end;
  Buffer.add_string b ")\n";
  Buffer.contents b

let of_string (s : string) : t =
  match R.parse s with
  | R.List (R.Atom "srepro" :: fields) ->
    let str_field k ~default =
      match R.field fields k with
      | Some (R.Str v) -> v
      | Some (R.Atom v) -> v
      | _ -> default
    in
    let int_field k ~default =
      match int_of_string_opt (str_field k ~default:"") with
      | Some v -> v
      | None -> default
    in
    let code = R.string_of_hex (str_field "code" ~default:"") in
    if code = "" then raise (R.Parse_error "empty code");
    let digest_hex = str_field "digest" ~default:"" in
    let digest =
      try Digest.from_hex digest_hex
      with Invalid_argument _ ->
        raise (R.Parse_error ("bad digest: " ^ digest_hex))
    in
    { s_name = str_field "name" ~default:"unnamed";
      s_mode = str_field "mode" ~default:"?";
      s_kind = str_field "kind" ~default:"flat";
      s_style = str_field "style" ~default:"element";
      s_sz = int_field "sz" ~default:9;
      s_digest = digest;
      s_code = code;
      s_note = str_field "note" ~default:"" }
  | _ -> raise (R.Parse_error "expected (srepro ...)")

let save (path : string) (r : t) : unit =
  let oc = open_out path in
  output_string oc (to_string r);
  close_out oc

let load (path : string) : t =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_string s

(** Exception-free loader; mirrors {!Obrew_oracle.Repro.load_result}. *)
let load_result (path : string) : (t, Obrew_fault.Err.t) result =
  match load path with
  | r -> Ok r
  | exception Sys_error m ->
    Error (Obrew_fault.Err.make Obrew_fault.Err.Install ("srepro load: " ^ m))
  | exception R.Parse_error m ->
    Error (Obrew_fault.Err.make Obrew_fault.Err.Decode ("srepro parse: " ^ m))
  | exception exn ->
    Error (Obrew_fault.Err.of_exn ~stage:Obrew_fault.Err.Decode exn)

(** Cheap format sniff so [fuzz --replay] can dispatch a file to the
    right loader without parsing twice. *)
let looks_like_srepro (content_prefix : string) : bool =
  let rec first_nonspace i =
    if i >= String.length content_prefix then ""
    else
      match content_prefix.[i] with
      | ' ' | '\t' | '\n' | '\r' -> first_nonspace (i + 1)
      | _ ->
        String.sub content_prefix i
          (min 7 (String.length content_prefix - i))
  in
  first_nonspace 0 = "(srepro"
