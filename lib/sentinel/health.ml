(** Per-translation health: the sentinel's pure state machine.

    Every adopted translation carries an {!entry} that moves through

    {v
      Healthy --shadow fault--> Suspect --shadow fault--> Quarantined
         ^                        |
         '--- clean streak -------'          (bit divergence from any
                                              state -> Quarantined)
    v}

    A *bit divergence* (the shadow run disagrees with the reference on
    observable state) is proof of mistranslation and quarantines
    immediately.  A *typed fault* during the shadow run (watchdog trip,
    decode error) is suspicious but not proof — it demotes Healthy to
    Suspect, which densifies sampling; a second fault while Suspect
    quarantines.  A streak of [decay_streak] clean checks decays
    Suspect back to Healthy.

    Everything here is deterministic: sampling is driven by invocation
    counters, and retry backoff jitter is a hash of (digest, attempt) —
    no randomness, no wall clock — so a campaign replays bit-for-bit. *)

type state = Healthy | Suspect | Quarantined

let state_name = function
  | Healthy -> "healthy"
  | Suspect -> "suspect"
  | Quarantined -> "quarantined"

type policy = {
  first_k : int;      (** validate each of the first K invocations *)
  sample_n : int;     (** then 1-in-N while Healthy; [0] disables *)
  suspect_n : int;    (** 1-in-N while Suspect (denser than [sample_n]) *)
  decay_streak : int; (** clean checks to decay Suspect back to Healthy *)
  heal_max : int;     (** recompilation retries after a demotion *)
  heal_base : int;    (** backoff base, in sentinel ticks (serves) *)
  heal_cap : int;     (** ceiling of the exponential backoff, in ticks *)
}

let default_policy =
  { first_k = 4; sample_n = 64; suspect_n = 4; decay_streak = 16;
    heal_max = 3; heal_base = 8; heal_cap = 256 }

(** Overlay the {!Obrew_fault.Guards.t} heal knobs onto [base], so the
    retry loop shares the pipeline's fuel bundle. *)
let policy_of_guards ?(base = default_policy) (g : Obrew_fault.Guards.t) =
  { base with
    heal_max = g.Obrew_fault.Guards.heal_max_attempts;
    heal_base = g.Obrew_fault.Guards.heal_backoff_base;
    heal_cap = g.Obrew_fault.Guards.heal_backoff_cap }

type entry = {
  e_digest : string;            (** content digest of the translation *)
  e_mode : string;              (** transform mode that produced it *)
  mutable e_state : state;
  mutable e_invocations : int;  (** serves through this translation *)
  mutable e_checks : int;       (** shadow validations performed *)
  mutable e_streak : int;       (** consecutive clean checks *)
  mutable e_divergences : int;
  mutable e_faults : int;       (** typed faults during shadow runs *)
}

let entry ~digest ~mode =
  { e_digest = digest; e_mode = mode; e_state = Healthy; e_invocations = 0;
    e_checks = 0; e_streak = 0; e_divergences = 0; e_faults = 0 }

let record_invocation (e : entry) = e.e_invocations <- e.e_invocations + 1

(** Deterministic sampling decision for the current invocation: the
    first [first_k] invocations always validate, after which every
    [sample_n]-th ([suspect_n]-th while Suspect) does. *)
let due (p : policy) (e : entry) : bool =
  match e.e_state with
  | Quarantined -> false
  | Healthy ->
    e.e_invocations <= p.first_k
    || (p.sample_n > 0 && e.e_invocations mod p.sample_n = 0)
  | Suspect ->
    e.e_invocations <= p.first_k
    || (p.suspect_n > 0 && e.e_invocations mod p.suspect_n = 0)

let record_clean (p : policy) (e : entry) =
  e.e_checks <- e.e_checks + 1;
  e.e_streak <- e.e_streak + 1;
  if e.e_state = Suspect && e.e_streak >= p.decay_streak then
    e.e_state <- Healthy

let record_fault (e : entry) =
  e.e_checks <- e.e_checks + 1;
  e.e_streak <- 0;
  e.e_faults <- e.e_faults + 1;
  match e.e_state with
  | Healthy -> e.e_state <- Suspect
  | Suspect -> e.e_state <- Quarantined
  | Quarantined -> ()

let record_divergence (e : entry) =
  e.e_checks <- e.e_checks + 1;
  e.e_streak <- 0;
  e.e_divergences <- e.e_divergences + 1;
  e.e_state <- Quarantined

(* ---------- heal backoff ---------- *)

(** Base delay before retry [attempt] (0-based): [heal_base * 2^attempt],
    capped at [heal_cap].  Monotone nondecreasing in [attempt]. *)
let backoff_base_delay (p : policy) ~(attempt : int) : int =
  let base = max 1 p.heal_base in
  let cap = max base p.heal_cap in
  let rec go k acc = if k <= 0 || acc >= cap then acc else go (k - 1) (acc * 2) in
  min cap (go attempt base)

(** Deterministic jitter in [0, heal_base): a hash of the quarantined
    content and the attempt number, so concurrent victims of one bad
    translation don't retry in lockstep yet replays stay exact. *)
let jitter (p : policy) ~(digest : string) ~(attempt : int) : int =
  Hashtbl.hash (digest, attempt) mod max 1 p.heal_base

let backoff_delay (p : policy) ~digest ~attempt : int =
  backoff_base_delay p ~attempt + jitter p ~digest ~attempt
