(** Runtime translation sentinel: online shadow validation, quarantine
    and self-healing recompilation.

    Every kernel served through {!serve} is validated by *shadow
    probes*: the translated kernel and the native original each run on
    a deep fork of the image against a synthetic all-nonzero matrix
    state, and the observable results — the whole data region plus the
    callee-saved registers and the stack pointer — are compared
    bit-exactly.  The first [first_k] serves always probe; after that a
    deterministic 1-in-N sample does, driven by the per-translation
    {!Health} registry (Suspect translations sample densely, clean
    streaks decay back to Healthy).

    On a caught divergence the translation's content digest goes into
    {!Obrew_fault.Quarantine} (consulted by [Image.install_code] and
    the transform/rewrite memos), a shrunk reproducer is persisted, the
    request is demoted one tier down the {!Obrew_core.Modes.chain_from}
    order, and recompilation of the requested tier is retried with
    capped, deterministically-jittered exponential backoff.

    The probe state is chosen so corruption cannot hide: [m1] holds
    distinct values in [1, 1.76) (never zero, so dropped loads and
    flipped arithmetic change the sum) and [m2] holds 1000.0
    everywhere (far outside the reachable stencil range, so a dropped
    store is always visible).  Runaway corrupted kernels trip the
    probe's instruction watchdog, which counts as a detection.

    Nothing here consults a clock or PRNG: ticks are serve counts,
    sampling is counter-driven and backoff jitter hashes the
    quarantined digest — a sentinel campaign replays bit-for-bit. *)

open Obrew_x86
module Modes = Obrew_core.Modes
module Robust = Obrew_core.Robust
module Stencil = Obrew_stencil.Stencil
module Err = Obrew_fault.Err
module Guards = Obrew_fault.Guards
module Quarantine = Obrew_fault.Quarantine
module Tel = Obrew_telemetry.Telemetry
module Flight = Obrew_observe.Flight
module H = Health

let c_checks = Tel.counter "sentinel.checks"
let c_divergences = Tel.counter "sentinel.divergences"
let c_quarantined = Tel.counter "sentinel.quarantined"
let c_demotions = Tel.counter "sentinel.demotions"
let c_healed = Tel.counter "sentinel.healed"
let c_heal_retries = Tel.counter "sentinel.heal_retries"

(** Sink for the sentinel's quarantine/demotion/heal lines (the README
    troubleshooting table documents the formats).  Silent by default. *)
let log : (string -> unit) ref = ref ignore

let logf fmt = Printf.ksprintf (fun s -> !log ("sentinel: " ^ s)) fmt

(* ---------- logical clock ---------- *)

(* one tick per serve; heal backoff delays are measured in ticks *)
let tick = ref 0
let now () = !tick

(* ---------- shadow probes ---------- *)

(** Emulated-instruction watchdog for one probe run.  Kernels finish a
    probe in well under 100k instructions; a corrupted kernel that
    loops forever trips this and the typed [Emulate] error counts as a
    detection. *)
let probe_budget = 2_000_000

let callee_saved =
  [ (Reg.RBX, "rbx"); (Reg.RSP, "rsp"); (Reg.RBP, "rbp");
    (Reg.R12, "r12"); (Reg.R13, "r13"); (Reg.R14, "r14"); (Reg.R15, "r15") ]

type obs = { ob_data : string; ob_regs : int64 list }

type divergence = { dv_slot : string; dv_ref : string; dv_got : string }

(** Deterministic probe arguments: an interior cell (Element) or row
    (Line) derived from [salt], so repeated checks of a hot kernel walk
    different parts of the matrix without any randomness. *)
let probe_args env kind (style : Modes.style) ~(salt : int) : int64 list =
  let w = env.Modes.w in
  let sz = w.Stencil.sz in
  let interior k = 1 + (abs k mod max 1 (sz - 2)) in
  let s = Int64.of_int (Modes.stencil_arg env kind) in
  let m1 = Int64.of_int w.Stencil.m1 in
  let m2 = Int64.of_int w.Stencil.m2 in
  match style with
  | Modes.Element ->
    let idx = (interior salt * sz) + interior ((salt * 7) + 1) in
    [ s; m1; m2; Int64.of_int idx ]
  | Modes.Line ->
    [ s; m1; m2; Int64.of_int (interior salt * sz); Int64.of_int sz ]

(* all-nonzero, all-distinct m1 in [1, 1.76); m2 poisoned with a value
   no correct stencil application can produce *)
let fill_probe_state (img : Image.t) (w : Stencil.workload) =
  let mem = img.Image.cpu.Cpu.mem in
  let n = w.Stencil.sz * w.Stencil.sz in
  for i = 0 to n - 1 do
    Mem.write_f64 mem
      (w.Stencil.m1 + (8 * i))
      (1.0 +. (float_of_int ((i * 37) mod 97) /. 128.0));
    Mem.write_f64 mem (w.Stencil.m2 + (8 * i)) 1000.0
  done

(** Run one probe on a fork of [env]'s image: fill the synthetic state,
    call [fn_of fork] with [args], and collect the observable result.
    The fork is discarded afterwards — the real image never sees probe
    state. *)
let observe ?(max_insns = probe_budget) env ~(args : int64 list)
    ~(fn_of : Image.t -> int) : (obs, Err.t) result =
  let img = Image.fork env.Modes.img in
  fill_probe_state img env.Modes.w;
  Image.reset_stack img;
  match
    let fn = fn_of img in
    Image.call ~args ~max_insns img ~fn
  with
  | _ ->
    let len = img.Image.next_data - Image.data_base in
    let data = Mem.read_bytes img.Image.cpu.Cpu.mem Image.data_base len in
    let regs =
      List.map (fun (r, _) -> Cpu.get_reg64 img.Image.cpu r) callee_saved
    in
    Ok { ob_data = data; ob_regs = regs }
  | exception Err.Error e -> Error e

let first_byte_diff (a : string) (b : string) : int option =
  let n = min (String.length a) (String.length b) in
  let rec go i =
    if i >= n then
      if String.length a = String.length b then None else Some n
    else if a.[i] <> b.[i] then Some i
    else go (i + 1)
  in
  go 0

let compare_obs (ref_o : obs) (got : obs) : divergence option =
  match first_byte_diff ref_o.ob_data got.ob_data with
  | Some i ->
    let w = i / 8 * 8 in
    let word s =
      if w + 8 <= String.length s then
        Printf.sprintf "0x%Lx" (String.get_int64_le s w)
      else "<short>"
    in
    Some
      { dv_slot = Printf.sprintf "data[0x%x]" (Image.data_base + w);
        dv_ref = word ref_o.ob_data;
        dv_got = word got.ob_data }
  | None ->
    List.fold_left2
      (fun acc (_, name) (rv, gv) ->
        match acc with
        | Some _ -> acc
        | None ->
          if rv <> gv then
            Some
              { dv_slot = name;
                dv_ref = Printf.sprintf "0x%Lx" rv;
                dv_got = Printf.sprintf "0x%Lx" gv }
          else None)
      None callee_saved
      (List.combine ref_o.ob_regs got.ob_regs)

type outcome =
  | Clean
  | Diverged of divergence  (* bit-divergence: proof of mistranslation *)
  | Shadow_fault of Err.t   (* the translated probe faulted *)
  | Ref_skip of Err.t       (* the reference probe failed: inconclusive *)

let describe_outcome = function
  | Clean -> "clean"
  | Diverged dv ->
    Printf.sprintf "%s: %s (native) vs %s" dv.dv_slot dv.dv_ref dv.dv_got
  | Shadow_fault e -> "shadow fault: " ^ Err.to_string e
  | Ref_skip e -> "reference skip: " ^ Err.to_string e

(** One shadow validation of [kernel] against the native original. *)
let shadow_check ?(salt = 1) env kind style ~(kernel : int) : outcome =
  let native = Modes.native_addr env kind style in
  let args = probe_args env kind style ~salt in
  let oc =
    Tel.span "sentinel.check"
      ~args:(Modes.kind_name kind ^ "/" ^ Modes.style_name style)
      (fun () ->
        match observe env ~args ~fn_of:(fun _ -> native) with
        | Error e -> Ref_skip e
        | Ok ref_o -> (
          match observe env ~args ~fn_of:(fun _ -> kernel) with
          | Error e -> Shadow_fault e
          | Ok got -> (
            match compare_obs ref_o got with
            | Some dv -> Diverged dv
            | None -> Clean)))
  in
  Flight.(
    emit Sentinel_probe ~a:kernel ~b:(now ())
      ~subject:(Modes.kind_name kind ^ "/" ^ Modes.style_name style)
      ~detail:(describe_outcome oc));
  oc

(* ---------- reproducer persistence ---------- *)

let repro_seq = ref 0

(* Tighter watchdog for shrink probes: deletion candidates routinely
   run away into unmapped memory, and paying the full probe budget for
   each would make shrinking the dominant cost of a quarantine. *)
let shrink_probe_budget = 200_000

(* Delta-debug the kernel's disassembly with the oracle's shrinker,
   keeping only candidates that reproduce the *same category* of catch
   (bit divergence vs typed fault) when re-assembled at the fork's
   install address — a candidate that merely faults must not stand in
   for a divergence, or shrinking would converge on trivial garbage.
   Branchy kernels whose re-encoding is not base-independent fail the
   initial self-check and fall back to the original bytes. *)
let shrink_kernel_bytes env kind style ~kernel ~(bytes : string)
    ~(want_fault : bool) : string * int =
  let native = Modes.native_addr env kind style in
  let args = probe_args env kind style ~salt:1 in
  try
    match observe env ~args ~fn_of:(fun _ -> native) with
    | Error _ -> (bytes, 0)
    | Ok ref_o ->
      let reproduces bs =
        bs <> ""
        &&
        match
          observe ~max_insns:shrink_probe_budget env ~args
            ~fn_of:(fun img -> Image.install_bytes img bs)
        with
        | Error _ -> want_fault
        | Ok got -> (not want_fault) && compare_obs ref_o got <> None
      in
      let items =
        List.map
          (fun (_, i) -> Insn.I i)
          (Image.disassemble_fn env.Modes.img kernel)
      in
      (* install_bytes on a fork lands at this (deterministic) address *)
      let cand_base = (env.Modes.img.Image.next_code + 15) land lnot 15 in
      let check its =
        match Encode.assemble ~base:cand_base its with
        | bs, _, _ -> reproduces bs
        | exception _ -> false
      in
      if not (check items) then (bytes, 0)
      else begin
        let small, checks =
          Obrew_oracle.Shrink.minimize_items ~budget:120 ~check items
        in
        match Encode.assemble ~base:cand_base small with
        | "", _, _ -> (bytes, checks)
        | bs, _, _ -> (bs, checks)
      end
  with _ -> (bytes, 0)

let persist_repro ~(out_dir : string option) env kind style ~mode ~kernel
    ~(digest : string) ~(detail : string) ~(want_fault : bool) :
    string option =
  match out_dir with
  | None -> None
  | Some dir -> (
    match Image.installed_bytes env.Modes.img kernel with
    | None -> None
    | Some bytes -> (
      try
        if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
        incr repro_seq;
        let name = Printf.sprintf "quarantine-%06d" !repro_seq in
        let small, checks =
          shrink_kernel_bytes env kind style ~kernel ~bytes ~want_fault
        in
        let note =
          Printf.sprintf "%s; shrunk %d -> %d byte(s) in %d check(s)" detail
            (String.length bytes) (String.length small) checks
        in
        let r =
          { Srepro.s_name = name;
            s_mode = Modes.transform_name mode;
            s_kind = Modes.kind_name kind;
            s_style = Modes.style_name style;
            s_sz = env.Modes.w.Stencil.sz;
            s_digest = digest;
            s_code = small;
            s_note = note }
        in
        let path = Filename.concat dir (name ^ ".repro") in
        Srepro.save path r;
        Some path
      with Sys_error _ | Unix.Unix_error _ -> None))

(* ---------- request registry ---------- *)

type req = {
  rq_key : string;
  rq_kind : Modes.kind;
  rq_style : Modes.style;
  rq_want : Modes.transform;          (* requested tier *)
  mutable rq_mode : Modes.transform;  (* tier currently serving *)
  mutable rq_kernel : int;            (* 0 = not yet acquired *)
  mutable rq_health : H.entry option; (* None for Native (ground truth) *)
  mutable rq_serves : int;
  mutable rq_heal_attempts : int;     (* retries spent on this demotion *)
  mutable rq_next_heal : int;         (* tick at which the next is due *)
}

let requests : (string, req) Hashtbl.t = Hashtbl.create 16
let heal_retries_count = ref 0

let req_key env kind style want =
  Printf.sprintf "%d/%s/%s/%s" env.Modes.img.Image.uid (Modes.kind_name kind)
    (Modes.style_name style)
    (Modes.transform_name want)

(* LlvmFix ranks with Llvm: one lifting layer, no specialization *)
let rank = function
  | Modes.Native -> 0
  | Modes.Llvm | Modes.LlvmFix -> 1
  | Modes.DBrew -> 2
  | Modes.DBrewLlvm -> 3

let demoted (req : req) = rank req.rq_mode < rank req.rq_want

(** Reset the registry and the logical clock (not the quarantine
    blacklist — that is {!Obrew_fault.Quarantine.clear}). *)
let reset () =
  Hashtbl.reset requests;
  tick := 0;
  heal_retries_count := 0;
  repro_seq := 0

(* ---------- quarantine / demote / heal ---------- *)

let condemn ~out_dir env (req : req) (mode : Modes.transform) (kernel : int)
    (oc : outcome) : unit =
  let detail = describe_outcome oc in
  Robust.record_sentinel_divergence ();
  Tel.incr_c c_divergences;
  Flight.(
    emit Sentinel_divergence ~a:kernel ~b:(now ())
      ~subject:(Modes.transform_name mode) ~detail);
  logf "divergence in %s kernel for %s/%s (%s)" (Modes.transform_name mode)
    (Modes.kind_name req.rq_kind)
    (Modes.style_name req.rq_style)
    detail;
  match Image.digest_of_addr env.Modes.img kernel with
  | None -> ()
  | Some digest ->
    if not (Quarantine.mem digest) then begin
      Quarantine.add ~digest ~mode:(Modes.transform_name mode) ~detail
        ~tick:(now ());
      Robust.record_sentinel_quarantine ();
      Tel.incr_c c_quarantined;
      let want_fault =
        match oc with Shadow_fault _ -> true | _ -> false
      in
      let path =
        persist_repro ~out_dir env req.rq_kind req.rq_style ~mode ~kernel
          ~digest ~detail ~want_fault
      in
      logf "quarantined %s (%s)%s" (Digest.to_hex digest) detail
        (match path with Some p -> "; saved " ^ p | None -> "")
    end

let schedule_heal (policy : H.policy) (req : req) =
  req.rq_next_heal <-
    now () + H.backoff_delay policy ~digest:req.rq_key ~attempt:req.rq_heal_attempts

(** Walk the degradation chain from [from], adopting the first
    candidate that survives a shadow probe.  Divergent candidates are
    quarantined and the walk continues one tier down; Native — the
    original binary, the ground truth the probes compare against — is
    adopted unvalidated as the floor. *)
let rec acquire ~(policy : H.policy) ?guards ~out_dir env (req : req)
    (from : Modes.transform) : unit =
  let r = Modes.transform_safe ?guards env req.rq_kind req.rq_style from in
  let used = r.Modes.used in
  let kernel = r.Modes.kernel in
  let native = Modes.native_addr env req.rq_kind req.rq_style in
  if used = Modes.Native || kernel = native then begin
    req.rq_mode <- Modes.Native;
    req.rq_kernel <- kernel;
    req.rq_health <- None
  end
  else begin
    Robust.record_sentinel_check ();
    Tel.incr_c c_checks;
    match shadow_check ~salt:(now ()) env req.rq_kind req.rq_style ~kernel with
    | Clean | Ref_skip _ ->
      let digest =
        Option.value ~default:""
          (Image.digest_of_addr env.Modes.img kernel)
      in
      req.rq_mode <- used;
      req.rq_kernel <- kernel;
      req.rq_health <-
        Some (H.entry ~digest ~mode:(Modes.transform_name used))
    | (Diverged _ | Shadow_fault _) as oc -> (
      condemn ~out_dir env req used kernel oc;
      Robust.record_sentinel_demotion ();
      Tel.incr_c c_demotions;
      Flight.(
        emit Sentinel_demote ~b:(now ()) ~subject:req.rq_key
          ~detail:("from " ^ Modes.transform_name used));
      match Modes.chain_from used with
      | _ :: (next :: _) ->
        logf "demoted %s/%s %s -> %s" (Modes.kind_name req.rq_kind)
          (Modes.style_name req.rq_style)
          (Modes.transform_name used)
          (Modes.transform_name next);
        acquire ~policy ?guards ~out_dir env req next
      | _ ->
        logf "demoted %s/%s %s -> %s" (Modes.kind_name req.rq_kind)
          (Modes.style_name req.rq_style)
          (Modes.transform_name used)
          (Modes.transform_name Modes.Native);
        req.rq_mode <- Modes.Native;
        req.rq_kernel <- native;
        req.rq_health <- None)
  end

(* ---------- serving ---------- *)

type serve_result = {
  sv_kernel : int;            (* runnable drop-in replacement address *)
  sv_mode : Modes.transform;  (* tier actually serving *)
  sv_demoted : bool;          (* serving below the requested tier *)
  sv_checked : bool;          (* this serve ran a shadow validation *)
  sv_event : string option;   (* quarantine/demotion/heal on this serve *)
}

(** Serve a validated kernel for [(kind, style, want)].  The first
    serve acquires (and probe-validates) the translation; subsequent
    serves return the cached kernel under sampled re-validation, demote
    on a caught divergence and retry the requested tier once the
    backoff expires. *)
let serve ?(policy = H.default_policy) ?guards ?out_dir env kind style
    (want : Modes.transform) : serve_result =
  incr tick;
  let policy =
    match guards with
    | Some g -> H.policy_of_guards ~base:policy g
    | None -> policy
  in
  let key = req_key env kind style want in
  let req =
    match Hashtbl.find_opt requests key with
    | Some r -> r
    | None ->
      let r =
        { rq_key = key; rq_kind = kind; rq_style = style; rq_want = want;
          rq_mode = want; rq_kernel = 0; rq_health = None; rq_serves = 0;
          rq_heal_attempts = 0; rq_next_heal = 0 }
      in
      Hashtbl.replace requests key r;
      r
  in
  req.rq_serves <- req.rq_serves + 1;
  let checks0 = Robust.stats.Robust.sentinel_checks in
  let event = ref None in
  let note_event s = event := Some s in
  if req.rq_kernel = 0 then begin
    acquire ~policy ?guards ~out_dir env req want;
    if demoted req then begin
      note_event
        (Printf.sprintf "demoted to %s" (Modes.transform_name req.rq_mode));
      schedule_heal policy req
    end
  end
  else if
    demoted req
    && req.rq_heal_attempts < policy.H.heal_max
    && now () >= req.rq_next_heal
  then begin
    (* self-healing recompilation of the requested tier *)
    req.rq_heal_attempts <- req.rq_heal_attempts + 1;
    incr heal_retries_count;
    Tel.incr_c c_heal_retries;
    acquire ~policy ?guards ~out_dir env req want;
    if not (demoted req) then begin
      Robust.record_sentinel_heal ();
      Tel.incr_c c_healed;
      Flight.(
        emit Sentinel_heal ~a:req.rq_heal_attempts ~b:(now ())
          ~subject:req.rq_key
          ~detail:("back to " ^ Modes.transform_name req.rq_mode));
      logf "healed %s/%s back to %s after %d attempt(s)" (Modes.kind_name kind)
        (Modes.style_name style)
        (Modes.transform_name req.rq_mode)
        req.rq_heal_attempts;
      note_event "healed";
      req.rq_heal_attempts <- 0
    end
    else begin
      note_event
        (Printf.sprintf "heal retry %d landed on %s" req.rq_heal_attempts
           (Modes.transform_name req.rq_mode));
      if req.rq_heal_attempts < policy.H.heal_max then schedule_heal policy req
      else
        logf "gave up healing %s/%s after %d attempt(s); pinned to %s"
          (Modes.kind_name kind) (Modes.style_name style)
          req.rq_heal_attempts
          (Modes.transform_name req.rq_mode)
    end
  end
  else begin
    (* live path: cached kernel under sampled shadow validation *)
    match req.rq_health with
    | None -> ()
    | Some h ->
      H.record_invocation h;
      if H.due policy h then begin
        Robust.record_sentinel_check ();
        Tel.incr_c c_checks;
        let oc =
          shadow_check ~salt:h.H.e_invocations env kind style
            ~kernel:req.rq_kernel
        in
        let condemned =
          match oc with
          | Clean ->
            H.record_clean policy h;
            false
          | Ref_skip _ -> false
          | Diverged _ ->
            H.record_divergence h;
            true
          | Shadow_fault _ ->
            H.record_fault h;
            h.H.e_state = H.Quarantined
        in
        if condemned then begin
          condemn ~out_dir env req req.rq_mode req.rq_kernel oc;
          Robust.record_sentinel_demotion ();
          Tel.incr_c c_demotions;
          Flight.(
            emit Sentinel_demote ~b:(now ()) ~subject:req.rq_key
              ~detail:("from " ^ Modes.transform_name req.rq_mode));
          note_event (describe_outcome oc);
          let lower =
            match Modes.chain_from req.rq_mode with
            | _ :: (next :: _) -> next
            | _ -> Modes.Native
          in
          logf "demoted %s/%s %s -> %s" (Modes.kind_name kind)
            (Modes.style_name style)
            (Modes.transform_name req.rq_mode)
            (Modes.transform_name lower);
          acquire ~policy ?guards ~out_dir env req lower;
          req.rq_heal_attempts <- 0;
          schedule_heal policy req
        end
      end
  end;
  { sv_kernel = req.rq_kernel;
    sv_mode = req.rq_mode;
    sv_demoted = demoted req;
    sv_checked = Robust.stats.Robust.sentinel_checks > checks0;
    sv_event = !event }

(* ---------- stats ---------- *)

type stats = {
  st_checks : int;
  st_divergences : int;
  st_quarantined : int;
  st_demotions : int;
  st_healed : int;
  st_heal_retries : int;
  st_blocked_serves : int;
}

let stats () =
  { st_checks = Robust.stats.Robust.sentinel_checks;
    st_divergences = Robust.stats.Robust.sentinel_divergences;
    st_quarantined = Quarantine.count ();
    st_demotions = Robust.stats.Robust.sentinel_demotions;
    st_healed = Robust.stats.Robust.sentinel_healed;
    st_heal_retries = !heal_retries_count;
    st_blocked_serves = Quarantine.blocked () }

let stats_to_string () =
  let s = stats () in
  Printf.sprintf
    "sentinel: %d check(s), %d divergence(s), %d quarantined, %d \
     demotion(s), %d healed, %d heal retr%s, %d blocked serve(s)"
    s.st_checks s.st_divergences s.st_quarantined s.st_demotions s.st_healed
    s.st_heal_retries
    (if s.st_heal_retries = 1 then "y" else "ies")
    s.st_blocked_serves

(** Sentinel-stats export, schema checked by [validate_bench --sentinel]. *)
let stats_json () =
  let s = stats () in
  String.concat "\n"
    [ "{";
      "  \"schema_version\": 1,";
      Printf.sprintf "  \"checks\": %d," s.st_checks;
      Printf.sprintf "  \"divergences\": %d," s.st_divergences;
      Printf.sprintf "  \"quarantined\": %d," s.st_quarantined;
      Printf.sprintf "  \"demotions\": %d," s.st_demotions;
      Printf.sprintf "  \"healed\": %d," s.st_healed;
      Printf.sprintf "  \"heal_retries\": %d," s.st_heal_retries;
      Printf.sprintf "  \"blocked_serves\": %d" s.st_blocked_serves;
      "}"; "" ]

let write_stats_json (path : string) =
  let oc = open_out path in
  output_string oc (stats_json ());
  close_out oc

(** Per-request health view: one row per registry entry, sorted by
    request key — the black-box report's "health" section. *)
let health_json () =
  let rows =
    Hashtbl.fold (fun _ r acc -> r :: acc) requests []
    |> List.sort (fun a b -> compare a.rq_key b.rq_key)
  in
  "["
  ^ String.concat ", "
      (List.map
         (fun r ->
           let state, checks, streak, divergences, faults =
             match r.rq_health with
             | Some h ->
               ( H.state_name h.H.e_state, h.H.e_checks, h.H.e_streak,
                 h.H.e_divergences, h.H.e_faults )
             | None -> ("native", 0, 0, 0, 0)
           in
           Printf.sprintf
             "{\"request\": \"%s\", \"mode\": \"%s\", \"state\": \"%s\", \
              \"demoted\": %b, \"serves\": %d, \"checks\": %d, \
              \"streak\": %d, \"divergences\": %d, \"faults\": %d, \
              \"heal_attempts\": %d}"
             (Tel.json_escape r.rq_key)
             (Modes.transform_name r.rq_mode)
             state (demoted r) r.rq_serves checks streak divergences faults
             r.rq_heal_attempts)
         rows)
  ^ "]"

(** One human-readable line per registry entry, for [obrew_cli report]. *)
let health_lines () =
  Hashtbl.fold (fun _ r acc -> r :: acc) requests []
  |> List.sort (fun a b -> compare a.rq_key b.rq_key)
  |> List.map (fun r ->
         let state =
           match r.rq_health with
           | Some h -> H.state_name h.H.e_state
           | None -> "native"
         in
         Printf.sprintf "%-32s %-10s %-9s %s%d serve(s), %d heal attempt(s)"
           r.rq_key
           (Modes.transform_name r.rq_mode)
           state
           (if demoted r then "DEMOTED, " else "")
           r.rq_serves r.rq_heal_attempts)

(* ---------- reproducer replay ---------- *)

type replay_report = {
  rr_name : string;
  rr_mode : string;
  rr_kind : string;
  rr_style : string;
  rr_diverged : bool;  (* the persisted kernel still trips the probe *)
  rr_detail : string;
}

let kind_of_name = function
  | "direct" -> Some Modes.Direct
  | "flat" -> Some Modes.Flat
  | "sorted" -> Some Modes.Sorted
  | _ -> None

let style_of_name = function
  | "element" -> Some Modes.Element
  | "line" -> Some Modes.Line
  | _ -> None

(** Re-probe a persisted sentinel reproducer: rebuild the workload (or
    reuse [env], which must have the same matrix size), install the
    captured kernel bytes on a fork and compare against native.
    [rr_diverged = true] means the capture still reproduces. *)
let replay ?env (path : string) : (replay_report, Err.t) result =
  match Srepro.load_result path with
  | Error e -> Error e
  | Ok r -> (
    match (kind_of_name r.Srepro.s_kind, style_of_name r.Srepro.s_style) with
    | None, _ | _, None ->
      Error
        (Err.make Err.Decode
           (Printf.sprintf "srepro: unknown kind/style %s/%s" r.Srepro.s_kind
              r.Srepro.s_style))
    | Some kind, Some style ->
      let env =
        match env with
        | Some e -> e
        | None -> Modes.build ~sz:r.Srepro.s_sz ()
      in
      let native = Modes.native_addr env kind style in
      let args = probe_args env kind style ~salt:1 in
      let oc =
        match observe env ~args ~fn_of:(fun _ -> native) with
        | Error e -> Ref_skip e
        | Ok ref_o -> (
          match
            observe env ~args
              ~fn_of:(fun img -> Image.install_bytes img r.Srepro.s_code)
          with
          | Error e -> Shadow_fault e
          | Ok got -> (
            match compare_obs ref_o got with
            | Some dv -> Diverged dv
            | None -> Clean))
      in
      Ok
        { rr_name = r.Srepro.s_name;
          rr_mode = r.Srepro.s_mode;
          rr_kind = r.Srepro.s_kind;
          rr_style = r.Srepro.s_style;
          rr_diverged =
            (match oc with
             | Diverged _ | Shadow_fault _ -> true
             | Clean | Ref_skip _ -> false);
          rr_detail = describe_outcome oc })
