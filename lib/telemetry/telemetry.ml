(** Pipeline telemetry: spans, counters and histograms with a
    preallocated ring-buffer event sink and two exporters
    (chrome://tracing JSON and a flat metrics JSON).

    The module is deliberately zero-dependency (stdlib + unix only) so
    it can sit below every other library in the repo — the x86
    substrate, the lifter, the optimizer, the backend, the DBrew
    rewriter and the fault layer all emit through it.

    Cost discipline: telemetry is compiled in but must be cheap when
    off.  Every event-recording entry point starts with a single load
    and branch on [enabled]; when the sink is disabled no closure is
    allocated and no clock is read.  Counters are plain mutable ints
    that always count (an unconditional increment is cheaper than the
    branch would be); they are only *read* at export time.

    Clock: spans are stamped with [now_ns], backed by the injectable
    [Clock] below (default [Unix.gettimeofday]).  The container
    exposes no monotonic-clock binding without adding a dependency, so
    this is a documented substitution — gettimeofday is monotonic in
    practice for the millisecond-scale spans recorded here (same
    substitution DESIGN.md makes for wall-clock benches). *)

(* ------------------------------------------------------------------ *)
(* Global switch                                                       *)
(* ------------------------------------------------------------------ *)

let enabled = ref false

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

(** The single wall-clock source for the whole pipeline.  Every
    measurement site (telemetry spans, tier compile timing, the DBrew
    rewrite deadline, fallback-chain timing) reads [Clock.now] so a
    test or a forensics replay can substitute a deterministic clock
    and reproduce byte-identical reports. *)
module Clock = struct
  let wall () = Unix.gettimeofday ()

  let source : (unit -> float) ref = ref wall

  (** Seconds since epoch under the installed source. *)
  let now () = !source ()

  let set f = source := f
  let reset () = source := wall

  (** Install a deterministic clock that starts at [t0] and advances
      by [step] seconds per read.  Returns nothing; pair with
      [reset] (or [with_fixed]) in tests. *)
  let fix ?(step = 0.0) t0 =
    let t = ref t0 in
    set (fun () ->
        let v = !t in
        t := v +. step;
        v)

  (** [with_fixed ?step t0 f] runs [f] under a fixed clock and always
      restores the previous source. *)
  let with_fixed ?step t0 f =
    let prev = !source in
    fix ?step t0;
    Fun.protect ~finally:(fun () -> source := prev) f
end

let now_ns () : int = int_of_float (Clock.now () *. 1e9)

(* ------------------------------------------------------------------ *)
(* Ring-buffer event sink                                              *)
(* ------------------------------------------------------------------ *)

(* Events live in parallel preallocated arrays; recording an event is
   a few array stores, no allocation (the name and args strings are
   shared, not copied).  [next] counts events ever recorded; the slot
   for event [n] is [n mod cap], so once full the buffer keeps the
   most recent [cap] events and [dropped ()] reports the overwritten
   prefix. *)

let default_capacity = 65536

type sink = {
  mutable cap : int;
  mutable e_name : string array;
  mutable e_kind : int array;    (* 0 = span, 1 = instant *)
  mutable e_ts : int array;      (* ns *)
  mutable e_dur : int array;     (* ns; 0 for instants *)
  mutable e_args : string array; (* "" = none *)
  mutable next : int;
}

let mk_sink cap = {
  cap;
  e_name = Array.make cap "";
  e_kind = Array.make cap 0;
  e_ts = Array.make cap 0;
  e_dur = Array.make cap 0;
  e_args = Array.make cap "";
  next = 0;
}

let sink = mk_sink default_capacity

let record ~kind ~name ~ts ~dur ~args =
  let s = sink in
  let i = s.next mod s.cap in
  s.e_name.(i) <- name;
  s.e_kind.(i) <- kind;
  s.e_ts.(i) <- ts;
  s.e_dur.(i) <- dur;
  s.e_args.(i) <- args;
  s.next <- s.next + 1

let events_recorded () = sink.next
let dropped () = max 0 (sink.next - sink.cap)
let retained () = min sink.next sink.cap

(* ------------------------------------------------------------------ *)
(* Spans and instants                                                  *)
(* ------------------------------------------------------------------ *)

(* Stack of currently-open span names, innermost first.  Only
   maintained while enabled; read by the black-box forensics report to
   answer "where in the pipeline were we when it died".  Spans that
   unwind via an exception are deliberately left on the stack until
   [reset] — an uncaught exception's report should show the frames it
   tore through. *)
let span_stack : string list ref = ref []

let active_spans () = !span_stack

(** [span name f] times [f ()] and records a complete span.  One
    branch and nothing else when disabled.  The span is recorded even
    if [f] raises (args gains a [!raised] marker), so a trace shows
    where a failing pipeline spent its time. *)
let span ?(args = "") name f =
  if not !enabled then f ()
  else begin
    let t0 = now_ns () in
    span_stack := name :: !span_stack;
    match f () with
    | v ->
      (match !span_stack with _ :: tl -> span_stack := tl | [] -> ());
      record ~kind:0 ~name ~ts:t0 ~dur:(now_ns () - t0) ~args;
      v
    | exception e ->
      let args = if args = "" then "!raised" else args ^ " !raised" in
      record ~kind:0 ~name ~ts:t0 ~dur:(now_ns () - t0) ~args;
      raise e
  end

(** Point-in-time event (fallback decisions, fault firings, cache
    flushes). *)
let instant ?(args = "") name =
  if !enabled then record ~kind:1 ~name ~ts:(now_ns ()) ~dur:0 ~args

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

(* Counters are registered records so hot paths hold a direct pointer:
   incrementing is one load/add/store, no hashtable, no branch. *)

type counter = { cname : string; mutable n : int }

let counters : counter list ref = ref []

let counter cname =
  match List.find_opt (fun c -> c.cname = cname) !counters with
  | Some c -> c
  | None ->
    let c = { cname; n = 0 } in
    counters := c :: !counters;
    c

let incr_c (c : counter) = c.n <- c.n + 1
let add_c (c : counter) k = c.n <- c.n + k

(* ------------------------------------------------------------------ *)
(* Histograms (HDR-style log-linear buckets)                           *)
(* ------------------------------------------------------------------ *)

(* Layout: values below [sub_buckets] get one bucket each (exact);
   above that, each power-of-two octave is split into [sub_buckets]
   linear sub-buckets, so the relative width of any bucket is at most
   1/16 = 6.25%.  Plain log2 buckets (the PR 3 scheme) had 2x-wide
   buckets, which made percentile extraction useless for tail-latency
   work; the log-linear refinement keeps [bucket_of] allocation-free
   and branch-light while bounding quantile error.

   Indexing: v in [0, 16)                     -> bucket v
             v with msb position b (b >= 4)   -> bucket
               sub_buckets + (b - sub_shift) * sub_buckets + sub
               where sub = (v >> (b - sub_shift)) & (sub_buckets - 1)
   On a 63-bit OCaml int msb <= 61, so 960 buckets cover everything. *)

let sub_buckets = 16
let sub_shift = 4 (* log2 sub_buckets *)
let num_buckets = sub_buckets + (63 - sub_shift) * sub_buckets (* 960 *)

type histogram = {
  hname : string;
  buckets : int array; (* [num_buckets] log-linear counts *)
  mutable hcount : int;
  mutable hsum : int;
}

let histograms : histogram list ref = ref []

let histogram hname =
  match List.find_opt (fun h -> h.hname = hname) !histograms with
  | Some h -> h
  | None ->
    let h =
      { hname; buckets = Array.make num_buckets 0; hcount = 0; hsum = 0 }
    in
    histograms := h :: !histograms;
    h

let bucket_of v =
  if v < sub_buckets then max 0 v
  else begin
    let b = ref 0 and x = ref v in
    while !x > 1 do x := !x lsr 1; incr b done;
    let b = min !b 62 in
    let sub = (v lsr (b - sub_shift)) land (sub_buckets - 1) in
    ((b - sub_shift + 1) * sub_buckets) + sub
  end

(** Smallest value falling into bucket [idx] (inverse of [bucket_of]). *)
let bucket_low idx =
  if idx < sub_buckets then idx
  else
    let b = sub_shift + (idx / sub_buckets) - 1 in
    let sub = idx mod sub_buckets in
    (sub_buckets + sub) lsl (b - sub_shift)

(** Number of distinct values mapping to bucket [idx]. *)
let bucket_width idx =
  if idx < sub_buckets then 1 else 1 lsl ((idx / sub_buckets) - 1)

let observe (h : histogram) v =
  h.buckets.(bucket_of v) <- h.buckets.(bucket_of v) + 1;
  h.hcount <- h.hcount + 1;
  h.hsum <- h.hsum + v

(** Exact-rank percentile: returns the upper bound of the bucket
    holding the rank-ceil(p/100 * count) smallest observation, so for
    the true rank value [v] the estimate [e] satisfies
    [v <= e <= v + v/16] (exact below 16).  [p] in (0, 100]. *)
let percentile (h : histogram) p =
  if h.hcount = 0 then 0
  else begin
    let rank =
      let r = int_of_float (ceil (p /. 100. *. float_of_int h.hcount)) in
      max 1 (min h.hcount r)
    in
    let cum = ref 0 and i = ref 0 in
    while !cum < rank && !i < num_buckets do
      cum := !cum + h.buckets.(!i);
      if !cum < rank then incr i
    done;
    let i = min !i (num_buckets - 1) in
    (* the topmost sub-bucket's upper bound is 2^62, which overflows
       the OCaml int; saturate instead of returning a negative bound *)
    let hi = bucket_low i + (bucket_width i - 1) in
    if hi < 0 then max_int else hi
  end

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let reset () =
  sink.next <- 0;
  span_stack := [];
  List.iter (fun c -> c.n <- 0) !counters;
  List.iter
    (fun h ->
      Array.fill h.buckets 0 (Array.length h.buckets) 0;
      h.hcount <- 0;
      h.hsum <- 0)
    !histograms

let enable ?(capacity = default_capacity) () =
  if capacity <> sink.cap then begin
    let f = mk_sink capacity in
    sink.cap <- f.cap;
    sink.e_name <- f.e_name;
    sink.e_kind <- f.e_kind;
    sink.e_ts <- f.e_ts;
    sink.e_dur <- f.e_dur;
    sink.e_args <- f.e_args
  end;
  reset ();
  enabled := true

let disable () = enabled := false

(* ------------------------------------------------------------------ *)
(* JSON helpers                                                        *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* iterate retained events oldest-first *)
let iter_events f =
  let s = sink in
  let n = retained () in
  let start = s.next - n in
  for k = start to s.next - 1 do
    let i = k mod s.cap in
    f ~name:s.e_name.(i) ~kind:s.e_kind.(i) ~ts:s.e_ts.(i)
      ~dur:s.e_dur.(i) ~args:s.e_args.(i)
  done

(** Iterate retained events whose global index is >= [start]
    (oldest-first).  Lets a caller take a watermark with
    [events_recorded ()] and later aggregate only the events recorded
    since — bench uses this for per-stage latency percentiles. *)
let iter_events_from start f =
  let s = sink in
  let lo = max start (s.next - retained ()) in
  for k = lo to s.next - 1 do
    let i = k mod s.cap in
    f ~name:s.e_name.(i) ~kind:s.e_kind.(i) ~ts:s.e_ts.(i)
      ~dur:s.e_dur.(i) ~args:s.e_args.(i)
  done

(* ------------------------------------------------------------------ *)
(* Exporter 1: chrome://tracing                                        *)
(* ------------------------------------------------------------------ *)

(** Trace-event JSON loadable by chrome://tracing / Perfetto: complete
    spans as ph "X" (ts/dur in microseconds), instants as ph "i". *)
let export_chrome_trace () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  iter_events (fun ~name ~kind ~ts ~dur ~args ->
      if !first then first := false else Buffer.add_char buf ',';
      let common =
        Printf.sprintf "\"name\":\"%s\",\"pid\":1,\"tid\":1,\"ts\":%.3f"
          (json_escape name)
          (float_of_int ts /. 1e3)
      in
      let argfield =
        if args = "" then ""
        else Printf.sprintf ",\"args\":{\"detail\":\"%s\"}" (json_escape args)
      in
      if kind = 0 then
        Buffer.add_string buf
          (Printf.sprintf "{%s,\"ph\":\"X\",\"dur\":%.3f%s}" common
             (float_of_int dur /. 1e3)
             argfield)
      else
        Buffer.add_string buf
          (Printf.sprintf "{%s,\"ph\":\"i\",\"s\":\"g\"%s}" common argfield));
  Buffer.add_string buf "],";
  Buffer.add_string buf
    (Printf.sprintf "\"displayTimeUnit\":\"ms\",\"otherData\":{\
                     \"dropped_events\":%d}}"
       (dropped ()));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Exporter 2: flat metrics JSON                                       *)
(* ------------------------------------------------------------------ *)

(* v2: histogram buckets became log-linear ([low, count] pairs where
   low is the bucket's smallest value rather than a power of two) and
   histogram summaries gained exact-rank p50/p90/p99/p999 fields.
   Counters, spans and the envelope are unchanged. *)
let metrics_schema_version = 2

(** Flat metrics JSON: all counters, histogram summaries with
    percentiles, and per-name span aggregates (count / total / max
    ns) computed over the retained events. *)
let export_metrics () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"schema_version\": %d,\n" metrics_schema_version);
  Buffer.add_string buf
    (Printf.sprintf "  \"events_recorded\": %d,\n" (events_recorded ()));
  Buffer.add_string buf
    (Printf.sprintf "  \"events_dropped\": %d,\n" (dropped ()));
  (* counters *)
  Buffer.add_string buf "  \"counters\": {";
  let cs =
    List.sort compare (List.map (fun c -> (c.cname, c.n)) !counters)
  in
  Buffer.add_string buf
    (String.concat ", "
       (List.map
          (fun (k, v) -> Printf.sprintf "\"%s\": %d" (json_escape k) v)
          cs));
  Buffer.add_string buf "},\n";
  (* histograms *)
  Buffer.add_string buf "  \"histograms\": {";
  let hs = List.sort (fun a b -> compare a.hname b.hname) !histograms in
  Buffer.add_string buf
    (String.concat ", "
       (List.map
          (fun h ->
            let nz = ref [] in
            Array.iteri
              (fun b n -> if n > 0 then nz := (b, n) :: !nz)
              h.buckets;
            let bks =
              String.concat ", "
                (List.map
                   (fun (b, n) ->
                     Printf.sprintf "[%d, %d]" (bucket_low b) n)
                   (List.rev !nz))
            in
            Printf.sprintf
              "\"%s\": {\"count\": %d, \"sum\": %d, \"p50\": %d, \
               \"p90\": %d, \"p99\": %d, \"p999\": %d, \"buckets\": [%s]}"
              (json_escape h.hname) h.hcount h.hsum (percentile h 50.)
              (percentile h 90.) (percentile h 99.) (percentile h 99.9)
              bks)
          hs));
  Buffer.add_string buf "},\n";
  (* span aggregates from the retained ring *)
  let tbl : (string, int * int * int) Hashtbl.t = Hashtbl.create 64 in
  iter_events (fun ~name ~kind ~ts:_ ~dur ~args:_ ->
      if kind = 0 then
        let c, tot, mx =
          Option.value ~default:(0, 0, 0) (Hashtbl.find_opt tbl name)
        in
        Hashtbl.replace tbl name (c + 1, tot + dur, max mx dur));
  let spans =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  Buffer.add_string buf "  \"spans\": {";
  Buffer.add_string buf
    (String.concat ", "
       (List.map
          (fun (name, (c, tot, mx)) ->
            Printf.sprintf
              "\"%s\": {\"count\": %d, \"total_ns\": %d, \"max_ns\": %d}"
              (json_escape name) c tot mx)
          spans));
  Buffer.add_string buf "}\n}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* File output                                                         *)
(* ------------------------------------------------------------------ *)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc
