(** Pipeline telemetry: spans, counters and histograms with a
    preallocated ring-buffer event sink and two exporters
    (chrome://tracing JSON and a flat metrics JSON).

    The module is deliberately zero-dependency (stdlib + unix only) so
    it can sit below every other library in the repo — the x86
    substrate, the lifter, the optimizer, the backend, the DBrew
    rewriter and the fault layer all emit through it.

    Cost discipline: telemetry is compiled in but must be cheap when
    off.  Every event-recording entry point starts with a single load
    and branch on [enabled]; when the sink is disabled no closure is
    allocated and no clock is read.  Counters are plain mutable ints
    that always count (an unconditional increment is cheaper than the
    branch would be); they are only *read* at export time.

    Clock: spans are stamped with [now_ns], backed by
    [Unix.gettimeofday].  The container exposes no monotonic-clock
    binding without adding a dependency, so this is a documented
    substitution — gettimeofday is monotonic in practice for the
    millisecond-scale spans recorded here (same substitution DESIGN.md
    makes for wall-clock benches). *)

(* ------------------------------------------------------------------ *)
(* Global switch                                                       *)
(* ------------------------------------------------------------------ *)

let enabled = ref false

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

let now_ns () : int = int_of_float (Unix.gettimeofday () *. 1e9)

(* ------------------------------------------------------------------ *)
(* Ring-buffer event sink                                              *)
(* ------------------------------------------------------------------ *)

(* Events live in parallel preallocated arrays; recording an event is
   a few array stores, no allocation (the name and args strings are
   shared, not copied).  [next] counts events ever recorded; the slot
   for event [n] is [n mod cap], so once full the buffer keeps the
   most recent [cap] events and [dropped ()] reports the overwritten
   prefix. *)

let default_capacity = 65536

type sink = {
  mutable cap : int;
  mutable e_name : string array;
  mutable e_kind : int array;    (* 0 = span, 1 = instant *)
  mutable e_ts : int array;      (* ns *)
  mutable e_dur : int array;     (* ns; 0 for instants *)
  mutable e_args : string array; (* "" = none *)
  mutable next : int;
}

let mk_sink cap = {
  cap;
  e_name = Array.make cap "";
  e_kind = Array.make cap 0;
  e_ts = Array.make cap 0;
  e_dur = Array.make cap 0;
  e_args = Array.make cap "";
  next = 0;
}

let sink = mk_sink default_capacity

let record ~kind ~name ~ts ~dur ~args =
  let s = sink in
  let i = s.next mod s.cap in
  s.e_name.(i) <- name;
  s.e_kind.(i) <- kind;
  s.e_ts.(i) <- ts;
  s.e_dur.(i) <- dur;
  s.e_args.(i) <- args;
  s.next <- s.next + 1

let events_recorded () = sink.next
let dropped () = max 0 (sink.next - sink.cap)
let retained () = min sink.next sink.cap

(* ------------------------------------------------------------------ *)
(* Spans and instants                                                  *)
(* ------------------------------------------------------------------ *)

(** [span name f] times [f ()] and records a complete span.  One
    branch and nothing else when disabled.  The span is recorded even
    if [f] raises (args gains a [!raised] marker), so a trace shows
    where a failing pipeline spent its time. *)
let span ?(args = "") name f =
  if not !enabled then f ()
  else begin
    let t0 = now_ns () in
    match f () with
    | v ->
      record ~kind:0 ~name ~ts:t0 ~dur:(now_ns () - t0) ~args;
      v
    | exception e ->
      let args = if args = "" then "!raised" else args ^ " !raised" in
      record ~kind:0 ~name ~ts:t0 ~dur:(now_ns () - t0) ~args;
      raise e
  end

(** Point-in-time event (fallback decisions, fault firings, cache
    flushes). *)
let instant ?(args = "") name =
  if !enabled then record ~kind:1 ~name ~ts:(now_ns ()) ~dur:0 ~args

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

(* Counters are registered records so hot paths hold a direct pointer:
   incrementing is one load/add/store, no hashtable, no branch. *)

type counter = { cname : string; mutable n : int }

let counters : counter list ref = ref []

let counter cname =
  match List.find_opt (fun c -> c.cname = cname) !counters with
  | Some c -> c
  | None ->
    let c = { cname; n = 0 } in
    counters := c :: !counters;
    c

let incr_c (c : counter) = c.n <- c.n + 1
let add_c (c : counter) k = c.n <- c.n + k

(* ------------------------------------------------------------------ *)
(* Histograms (log2 buckets)                                           *)
(* ------------------------------------------------------------------ *)

type histogram = {
  hname : string;
  buckets : int array; (* bucket b counts values in [2^b, 2^(b+1)) *)
  mutable hcount : int;
  mutable hsum : int;
}

let histograms : histogram list ref = ref []

let histogram hname =
  match List.find_opt (fun h -> h.hname = hname) !histograms with
  | Some h -> h
  | None ->
    let h = { hname; buckets = Array.make 63 0; hcount = 0; hsum = 0 } in
    histograms := h :: !histograms;
    h

let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 and v = ref v in
    while !v > 1 do v := !v lsr 1; incr b done;
    min !b 62
  end

let observe (h : histogram) v =
  h.buckets.(bucket_of v) <- h.buckets.(bucket_of v) + 1;
  h.hcount <- h.hcount + 1;
  h.hsum <- h.hsum + v

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let reset () =
  sink.next <- 0;
  List.iter (fun c -> c.n <- 0) !counters;
  List.iter
    (fun h ->
      Array.fill h.buckets 0 (Array.length h.buckets) 0;
      h.hcount <- 0;
      h.hsum <- 0)
    !histograms

let enable ?(capacity = default_capacity) () =
  if capacity <> sink.cap then begin
    let f = mk_sink capacity in
    sink.cap <- f.cap;
    sink.e_name <- f.e_name;
    sink.e_kind <- f.e_kind;
    sink.e_ts <- f.e_ts;
    sink.e_dur <- f.e_dur;
    sink.e_args <- f.e_args
  end;
  reset ();
  enabled := true

let disable () = enabled := false

(* ------------------------------------------------------------------ *)
(* JSON helpers                                                        *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* iterate retained events oldest-first *)
let iter_events f =
  let s = sink in
  let n = retained () in
  let start = s.next - n in
  for k = start to s.next - 1 do
    let i = k mod s.cap in
    f ~name:s.e_name.(i) ~kind:s.e_kind.(i) ~ts:s.e_ts.(i)
      ~dur:s.e_dur.(i) ~args:s.e_args.(i)
  done

(* ------------------------------------------------------------------ *)
(* Exporter 1: chrome://tracing                                        *)
(* ------------------------------------------------------------------ *)

(** Trace-event JSON loadable by chrome://tracing / Perfetto: complete
    spans as ph "X" (ts/dur in microseconds), instants as ph "i". *)
let export_chrome_trace () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  iter_events (fun ~name ~kind ~ts ~dur ~args ->
      if !first then first := false else Buffer.add_char buf ',';
      let common =
        Printf.sprintf "\"name\":\"%s\",\"pid\":1,\"tid\":1,\"ts\":%.3f"
          (json_escape name)
          (float_of_int ts /. 1e3)
      in
      let argfield =
        if args = "" then ""
        else Printf.sprintf ",\"args\":{\"detail\":\"%s\"}" (json_escape args)
      in
      if kind = 0 then
        Buffer.add_string buf
          (Printf.sprintf "{%s,\"ph\":\"X\",\"dur\":%.3f%s}" common
             (float_of_int dur /. 1e3)
             argfield)
      else
        Buffer.add_string buf
          (Printf.sprintf "{%s,\"ph\":\"i\",\"s\":\"g\"%s}" common argfield));
  Buffer.add_string buf "],";
  Buffer.add_string buf
    (Printf.sprintf "\"displayTimeUnit\":\"ms\",\"otherData\":{\
                     \"dropped_events\":%d}}"
       (dropped ()));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Exporter 2: flat metrics JSON                                       *)
(* ------------------------------------------------------------------ *)

let metrics_schema_version = 1

(** Flat metrics JSON: all counters, histogram summaries, and
    per-name span aggregates (count / total / max ns) computed over
    the retained events. *)
let export_metrics () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"schema_version\": %d,\n" metrics_schema_version);
  Buffer.add_string buf
    (Printf.sprintf "  \"events_recorded\": %d,\n" (events_recorded ()));
  Buffer.add_string buf
    (Printf.sprintf "  \"events_dropped\": %d,\n" (dropped ()));
  (* counters *)
  Buffer.add_string buf "  \"counters\": {";
  let cs =
    List.sort compare (List.map (fun c -> (c.cname, c.n)) !counters)
  in
  Buffer.add_string buf
    (String.concat ", "
       (List.map
          (fun (k, v) -> Printf.sprintf "\"%s\": %d" (json_escape k) v)
          cs));
  Buffer.add_string buf "},\n";
  (* histograms *)
  Buffer.add_string buf "  \"histograms\": {";
  let hs = List.sort (fun a b -> compare a.hname b.hname) !histograms in
  Buffer.add_string buf
    (String.concat ", "
       (List.map
          (fun h ->
            let nz = ref [] in
            Array.iteri
              (fun b n -> if n > 0 then nz := (b, n) :: !nz)
              h.buckets;
            let bks =
              String.concat ", "
                (List.map
                   (fun (b, n) -> Printf.sprintf "[%d, %d]" (1 lsl b) n)
                   (List.rev !nz))
            in
            Printf.sprintf
              "\"%s\": {\"count\": %d, \"sum\": %d, \"buckets\": [%s]}"
              (json_escape h.hname) h.hcount h.hsum bks)
          hs));
  Buffer.add_string buf "},\n";
  (* span aggregates from the retained ring *)
  let tbl : (string, int * int * int) Hashtbl.t = Hashtbl.create 64 in
  iter_events (fun ~name ~kind ~ts:_ ~dur ~args:_ ->
      if kind = 0 then
        let c, tot, mx =
          Option.value ~default:(0, 0, 0) (Hashtbl.find_opt tbl name)
        in
        Hashtbl.replace tbl name (c + 1, tot + dur, max mx dur));
  let spans =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  Buffer.add_string buf "  \"spans\": {";
  Buffer.add_string buf
    (String.concat ", "
       (List.map
          (fun (name, (c, tot, mx)) ->
            Printf.sprintf
              "\"%s\": {\"count\": %d, \"total_ns\": %d, \"max_ns\": %d}"
              (json_escape name) c tot mx)
          spans));
  Buffer.add_string buf "}\n}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* File output                                                         *)
(* ------------------------------------------------------------------ *)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc
