(** Content-hash quarantine blacklist for mistranslated code.

    The sentinel adds the MD5 digest of a kernel's installed host bytes
    here when shadow validation catches a divergence.  Both serving
    layers consult the table before handing out cached code:
    [Image.install_code] refuses to (re)install blacklisted bytes with a
    typed [Install] error, and the transform/rewrite memos drop entries
    whose installed digest is listed.  Entries are keyed by content, not
    address, so a deterministic recompilation of the same broken bytes
    stays blocked while a genuinely different (healed) translation is
    admitted. *)

type entry = {
  q_digest : string;  (** [Digest.t] of the installed host bytes *)
  q_mode : string;    (** transform mode that produced the code *)
  q_detail : string;  (** first observed divergence, human readable *)
  q_tick : int;       (** sentinel logical tick of the quarantine *)
}

let table : (string, entry) Hashtbl.t = Hashtbl.create 16
let blocked_count = ref 0

(** Blacklist [digest]; the first quarantine of a digest wins. *)
let add ~digest ~mode ~detail ~tick =
  if not (Hashtbl.mem table digest) then begin
    Hashtbl.replace table digest
      { q_digest = digest; q_mode = mode; q_detail = detail; q_tick = tick };
    Obrew_observe.Flight.(
      emit Sentinel_quarantine ~a:tick ~subject:(Digest.to_hex digest)
        ~detail:(mode ^ ": " ^ detail))
  end

let mem digest = Hashtbl.mem table digest
let find digest = Hashtbl.find_opt table digest
let count () = Hashtbl.length table

let entries () =
  Hashtbl.fold (fun _ e acc -> e :: acc) table []
  |> List.sort (fun a b -> compare (a.q_tick, a.q_digest) (b.q_tick, b.q_digest))

(** Record (and count) a serve that was refused because its content is
    blacklisted. *)
let note_blocked () = incr blocked_count

(** Serves refused since the last {!clear}. *)
let blocked () = !blocked_count

let clear () =
  Hashtbl.reset table;
  blocked_count := 0

(** JSON array of the registry, oldest quarantine first — the
    black-box report's "quarantine" section. *)
let to_json () =
  let esc = Obrew_telemetry.Telemetry.json_escape in
  "["
  ^ String.concat ", "
      (List.map
         (fun e ->
           Printf.sprintf
             "{\"digest\": \"%s\", \"mode\": \"%s\", \"detail\": \"%s\", \
              \"tick\": %d}"
             (Digest.to_hex e.q_digest) (esc e.q_mode) (esc e.q_detail)
             e.q_tick)
         (entries ()))
  ^ "]"
