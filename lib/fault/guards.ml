(** Resource guards: one record bundling every fuel/deadline knob of
    the pipeline, threaded through {!Obrew_core.Modes.transform_safe}.

    Each stage enforces its own budget and reports violations as typed
    {!Err.Error}s, so a runaway input degrades into a recorded fallback
    instead of hanging or exhausting memory. *)

type t = {
  emu_max_insns : int;
  (** emulator watchdog: instruction budget for [Cpu.run] *)
  lift_max_insns : int;
  (** lifter instruction budget during block discovery *)
  lift_max_blocks : int;
  (** lifter basic-block budget during block discovery *)
  opt_fuel : int;
  (** optimizer fixpoint rounds per pass group *)
  rewrite_max_emit : int;
  (** DBrew emitted-instruction budget *)
  rewrite_max_variants : int;
  (** DBrew trace-point variant budget *)
  rewrite_max_seconds : float;
  (** DBrew wall-clock deadline for one rewrite *)
  heal_max_attempts : int;
  (** sentinel: recompilation retries after a quarantine *)
  heal_backoff_base : int;
  (** sentinel: first retry delay, in sentinel ticks (serves) *)
  heal_backoff_cap : int;
  (** sentinel: ceiling for the exponential retry delay, in ticks *)
}

let default =
  { emu_max_insns = 2_000_000_000;
    lift_max_insns = 20_000;
    lift_max_blocks = 2_000;
    opt_fuel = 12;
    rewrite_max_emit = 20_000;
    rewrite_max_variants = 256;
    rewrite_max_seconds = 10.0;
    heal_max_attempts = 3;
    heal_backoff_base = 8;
    heal_backoff_cap = 256 }

(** Tight budgets for tests and smoke runs. *)
let strict =
  { emu_max_insns = 50_000_000;
    lift_max_insns = 5_000;
    lift_max_blocks = 500;
    opt_fuel = 8;
    rewrite_max_emit = 5_000;
    rewrite_max_variants = 64;
    rewrite_max_seconds = 2.0;
    heal_max_attempts = 2;
    heal_backoff_base = 2;
    heal_backoff_cap = 16 }
