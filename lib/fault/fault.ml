(** Deterministic fault injection for the rewriting pipeline.

    Each pipeline stage is instrumented with named injection points
    ([Fault.point "opt.gvn"], ["decode.truncated"], ["backend.isel"],
    …).  With no plan installed a point is a cheap no-op; an installed
    {!plan} arms a subset of points, and an armed point raises the
    typed {!Err.Error} of its stage with an ["injected: …"] detail.
    Plans are plain data — a QCheck generator (or [--fault] on the
    CLI) produces them deterministically from a seed, which makes every
    failing run replayable. *)

type arm = {
  a_point : string;     (** injection point name, e.g. ["opt.gvn"] *)
  mutable a_skip : int; (** let this many hits pass unharmed first *)
  mutable a_fires : int;(** then fail this many hits; [-1] = forever *)
}

type plan = arm list

let arm ?(skip = 0) ?(fires = -1) point =
  { a_point = point; a_skip = skip; a_fires = fires }

(** Every injection point wired into the pipeline, with the stage its
    injected error carries. *)
let known_points : (string * Err.stage) list =
  [ ("decode.truncated", Err.Decode);
    ("encode.assemble", Err.Encode);
    ("install.code", Err.Install);
    ("lift.discover", Err.Lift);
    ("lift.block", Err.Lift);
    ("opt.simplifycfg", Err.Opt);
    ("opt.instcombine", Err.Opt);
    ("opt.mem2reg", Err.Opt);
    ("opt.gvn", Err.Opt);
    ("opt.dce", Err.Opt);
    ("opt.inline", Err.Opt);
    ("opt.licm", Err.Opt);
    ("opt.unroll", Err.Opt);
    ("opt.vectorize", Err.Opt);
    ("verify.func", Err.Verify);
    ("backend.isel", Err.Isel);
    ("rewrite.trace", Err.Encode);
    ("rewrite.emit", Err.Encode);
    ("emulate.scratch", Err.Emulate) ]

(** Saboteur points: instead of raising, an armed hit silently corrupts
    the stage's output (dropped store, inverted branch, flipped SSE op,
    stomped entry byte).  They exist to drill the sentinel — the
    corruption must be *caught* by shadow validation, not reported by
    the pipeline — so they are kept out of {!known_points}, which plain
    fallback-chain tests sweep expecting typed errors. *)
let saboteur_points : (string * Err.stage) list =
  [ ("sabotage.isel.item", Err.Isel);
    ("sabotage.rewrite.item", Err.Encode);
    ("sabotage.install.bytes", Err.Install) ]

(** Engine saboteur points: corrupt the execution engine's own
    dispatch rather than an emitted artifact.  [sabotage.isel.indirect]
    makes the superblock engine trust a stale inline-cache prediction
    on an indirect branch without revalidating it — silent wrong-block
    execution.  Unlike {!saboteur_points} the corruption is not
    confined to one translated kernel: it also poisons reference
    probes run through the same engine, so drills must arm these only
    against a throwaway image, never a shared environment. *)
let engine_saboteur_points : (string * Err.stage) list =
  [ ("sabotage.isel.indirect", Err.Isel) ]

(** Untyped points: an armed hit raises a bare [Failure] instead of a
    typed {!Err.Error} — they drill [Modes.transform_safe]'s
    last-resort handler, whose job is to attribute an arbitrary
    escaping exception to the pipeline stage it escaped from.  The
    stage listed here is where the raise happens (and therefore what
    correct attribution must report).  Kept out of {!known_points}:
    tests sweeping that list expect typed errors. *)
let untyped_points : (string * Err.stage) list =
  [ ("untyped.lift", Err.Lift); ("untyped.opt", Err.Opt) ]

let all_points =
  known_points @ saboteur_points @ engine_saboteur_points @ untyped_points
let point_names = List.map fst known_points
let all_point_names = List.map fst all_points

let stage_of_point name =
  match List.assoc_opt name all_points with
  | Some s -> s
  | None -> (
    (* unknown points are still classified by their prefix *)
    match String.index_opt name '.' with
    | Some i -> (
      match String.sub name 0 i with
      | "decode" -> Err.Decode | "lift" -> Err.Lift | "opt" -> Err.Opt
      | "verify" -> Err.Verify | "isel" | "backend" -> Err.Isel
      | "encode" | "rewrite" -> Err.Encode | "install" -> Err.Install
      | "emulate" | "emu" -> Err.Emulate | _ -> Err.Opt)
    | None -> Err.Opt)

(* ------------------------------------------------------------------ *)
(* Plan state                                                          *)
(* ------------------------------------------------------------------ *)

let current : plan ref = ref []
let hit_counts : (string, int) Hashtbl.t = Hashtbl.create 32
let fired_count = ref 0
let sabotaged_count = ref 0
let sabotage_landed_count = ref 0

(** Install [p], replacing any previous plan and resetting counters. *)
let install (p : plan) =
  current := p;
  Hashtbl.reset hit_counts;
  fired_count := 0;
  sabotaged_count := 0;
  sabotage_landed_count := 0

(** Remove the active plan; every point becomes a no-op again. *)
let clear () = install []

(** True while a plan with at least one arm is installed.  Memo caches
    use this to avoid recording (or serving) results produced under
    injection — even after every scheduled fault has fired, since a
    result computed mid-plan may mix clean and corrupted stages.  The
    sentinel heals under an exhausted plan by recomputing without the
    memos; the healed kernel is memoized on the first clean serve after
    {!clear}. *)
let active () = !current <> []

(** Faults injected since the last {!install}. *)
let fired () = !fired_count

(** Saboteur arms that fired since the last {!install}. *)
let sabotaged () = !sabotaged_count

(** Saboteur firings that actually corrupted output (a fired arm is a
    no-op when the stage had nothing corruptible); recorded by the
    corrupting site via {!note_sabotage_landed}. *)
let sabotage_landed () = !sabotage_landed_count

let note_sabotage_landed () = incr sabotage_landed_count

(** Times each point was reached since the last {!install} (armed or
    not — only recorded while a plan is active). *)
let hits () = Hashtbl.fold (fun k v acc -> (k, v) :: acc) hit_counts []

(** [point ?addr name]: no-op without a plan; under a plan, raise the
    typed error of [name]'s stage if the matching arm is due. *)
let point ?addr name =
  match !current with
  | [] -> ()
  | plan -> (
    Hashtbl.replace hit_counts name
      (1 + Option.value ~default:0 (Hashtbl.find_opt hit_counts name));
    match List.find_opt (fun a -> a.a_point = name) plan with
    | None -> ()
    | Some a ->
      if a.a_skip > 0 then a.a_skip <- a.a_skip - 1
      else if a.a_fires <> 0 then begin
        if a.a_fires > 0 then a.a_fires <- a.a_fires - 1;
        incr fired_count;
        if !Obrew_telemetry.Telemetry.enabled then
          Obrew_telemetry.Telemetry.instant "fault.injected" ~args:name;
        Obrew_observe.Flight.(
          emit Fault_injected ~a:(Option.value ~default:0 addr)
            ~subject:name);
        raise
          (Err.Error
             { stage = stage_of_point name; addr;
               detail = "injected: fault at " ^ name })
      end)

(** [point_untyped name]: like {!point} but an armed hit raises a bare
    [Failure] instead of the stage's typed error — exercising the
    pipeline's untyped-exception escape hatch.  A cheap no-op without
    a plan. *)
let point_untyped name =
  match !current with
  | [] -> ()
  | plan -> (
    Hashtbl.replace hit_counts name
      (1 + Option.value ~default:0 (Hashtbl.find_opt hit_counts name));
    match List.find_opt (fun a -> a.a_point = name) plan with
    | None -> ()
    | Some a ->
      if a.a_skip > 0 then a.a_skip <- a.a_skip - 1
      else if a.a_fires <> 0 then begin
        if a.a_fires > 0 then a.a_fires <- a.a_fires - 1;
        incr fired_count;
        if !Obrew_telemetry.Telemetry.enabled then
          Obrew_telemetry.Telemetry.instant "fault.injected" ~args:name;
        Obrew_observe.Flight.(emit Fault_injected ~subject:name);
        failwith ("injected: untyped fault at " ^ name)
      end)

(** [sabotage name]: like {!point} but for saboteur arms — returns
    [true] when the arm is due instead of raising, so the caller can
    corrupt its output in place.  A cheap no-op without a plan. *)
let sabotage name =
  match !current with
  | [] -> false
  | plan -> (
    Hashtbl.replace hit_counts name
      (1 + Option.value ~default:0 (Hashtbl.find_opt hit_counts name));
    match List.find_opt (fun a -> a.a_point = name) plan with
    | None -> false
    | Some a ->
      if a.a_skip > 0 then begin
        a.a_skip <- a.a_skip - 1;
        false
      end
      else if a.a_fires <> 0 then begin
        if a.a_fires > 0 then a.a_fires <- a.a_fires - 1;
        incr fired_count;
        incr sabotaged_count;
        if !Obrew_telemetry.Telemetry.enabled then
          Obrew_telemetry.Telemetry.instant "fault.sabotaged" ~args:name;
        Obrew_observe.Flight.(emit Fault_sabotaged ~subject:name);
        true
      end
      else false)

(* ------------------------------------------------------------------ *)
(* Plan syntax (CLI)                                                   *)
(* ------------------------------------------------------------------ *)

(** Parse ["point[:skip[:fires]],point..."], e.g.
    ["opt.gvn,rewrite.trace:0:1"].  Unknown point names are rejected. *)
let parse (s : string) : (plan, string) result =
  let parse_arm spec =
    match String.split_on_char ':' spec with
    | [ p ] -> Ok (arm p)
    | [ p; sk ] -> (
      match int_of_string_opt sk with
      | Some sk -> Ok (arm ~skip:sk p)
      | None -> Error (Printf.sprintf "bad skip count in %S" spec))
    | [ p; sk; fi ] -> (
      match (int_of_string_opt sk, int_of_string_opt fi) with
      | Some sk, Some fi -> Ok (arm ~skip:sk ~fires:fi p)
      | _ -> Error (Printf.sprintf "bad counts in %S" spec))
    | _ -> Error (Printf.sprintf "malformed arm %S" spec)
  in
  let specs =
    List.filter (fun s -> s <> "") (String.split_on_char ',' s)
  in
  List.fold_left
    (fun acc spec ->
      Result.bind acc (fun arms ->
          Result.bind (parse_arm spec) (fun a ->
              if List.mem_assoc a.a_point all_points then Ok (a :: arms)
              else
                Error
                  (Printf.sprintf "unknown injection point %S (known: %s)"
                     a.a_point (String.concat ", " all_point_names)))))
    (Ok []) specs
  |> Result.map List.rev

let pp_plan (p : plan) =
  String.concat ","
    (List.map
       (fun a -> Printf.sprintf "%s:%d:%d" a.a_point a.a_skip a.a_fires)
       p)
