(** The typed error taxonomy of the rewriting pipeline.

    Every failure a pipeline stage can produce is an {!Error} carrying
    the {!stage} it originated in, the faulting code address when one
    is known, and a human-readable detail string.  This module sits at
    the bottom of the library graph so that every layer — decoder,
    lifter, optimizer, backend, rewriter, emulator — can raise the
    same structured error, and {!Obrew_core.Modes.transform_safe} can
    catch and classify it without string matching. *)

type stage =
  | Decode   (** binary → {!Obrew_x86.Insn.insn} *)
  | Lift     (** binary → IR (Sec. III) *)
  | Opt      (** IR pass pipeline *)
  | Verify   (** IR well-formedness checking *)
  | Isel     (** IR → machine instructions *)
  | Encode   (** instruction assembling / DBrew code emission *)
  | Install  (** placing code into the image *)
  | Emulate  (** executing emitted code *)

type t = {
  stage : stage;
  addr : int option;  (** faulting code address, when known *)
  detail : string;
}

exception Error of t

let stage_name = function
  | Decode -> "decode" | Lift -> "lift" | Opt -> "opt"
  | Verify -> "verify" | Isel -> "isel" | Encode -> "encode"
  | Install -> "install" | Emulate -> "emulate"

let all_stages =
  [ Decode; Lift; Opt; Verify; Isel; Encode; Install; Emulate ]

let to_string e =
  match e.addr with
  | Some a -> Printf.sprintf "[%s @ 0x%x] %s" (stage_name e.stage) a e.detail
  | None -> Printf.sprintf "[%s] %s" (stage_name e.stage) e.detail

let make ?addr stage detail = { stage; addr; detail }

(** [fail ?addr stage fmt ...] raises {!Error} with a formatted
    detail. *)
let fail ?addr stage fmt =
  Printf.ksprintf (fun s -> raise (Error { stage; addr; detail = s })) fmt

(** True when the error was produced by an armed {!Fault} injection
    point rather than by real pipeline logic. *)
let injected e =
  String.length e.detail >= 9 && String.sub e.detail 0 9 = "injected:"

(** Wrap an arbitrary exception that escaped a pipeline stage.
    {!Error} values pass through unchanged. *)
let of_exn ~stage = function
  | Error e -> e
  | exn ->
    { stage; addr = None;
      detail = "unexpected exception: " ^ Printexc.to_string exn }
