(** The -O3-style pass pipeline (Sec. IV: "the standard optimization
    pipeline with level 3 ... is applied", optionally with
    floating-point optimizations as with -ffast-math). *)

open Obrew_ir
open Obrew_fault
open Ins

module Tel = Obrew_telemetry.Telemetry

type options = {
  level : int;                  (* 0..3 *)
  fast_math : bool;             (* -ffast-math analogue *)
  force_vector_width : int option; (* -force-vector-width=N analogue *)
  vector_aligned : bool;        (* emit aligned vector accesses (GCC-style
                                   alignment handling) vs unaligned (JIT) *)
  inline_threshold : int;
  resolve_addr : int -> string option; (* for inlining lifted call targets *)
  (* constant memory oracle for fixation/setmem-style specialization *)
  const_load : addr:int -> len:int -> string option;
  verify_each : bool;           (* run the verifier after each pass *)
  fuel : int;                   (* fixpoint rounds per pass group *)
}

let o3 =
  { level = 3; fast_math = true; force_vector_width = None;
    vector_aligned = false; inline_threshold = Inline.default_threshold;
    resolve_addr = (fun _ -> None);
    const_load = (fun ~addr:_ ~len:_ -> None); verify_each = false;
    fuel = 12 }

let o0 = { o3 with level = 0 }

(** Per-pass change statistics of the last {!run} (for the pass-
    ablation study the paper motivates in Sec. I/VIII). *)
type stats = { mutable pass_changes : (string * int) list }

let stats = { pass_changes = [] }

let bump name =
  stats.pass_changes <-
    (match List.assoc_opt name stats.pass_changes with
     | Some n -> (name, n + 1) :: List.remove_assoc name stats.pass_changes
     | None -> (name, 1) :: stats.pass_changes)

(* Core runner.  Every pass application is routed through [exec name
   thunk]: the default executor hits the stage's fault-injection point
   and runs the pass (typed [Opt] errors propagate); {!run_checked}
   substitutes an executor that snapshots, verifies and drops. *)
let run_func_with ~(exec : string -> (unit -> bool) -> bool)
    ~(opts : options) (m : modul) (f : func) : unit =
  (* every pass application — via {!run} or {!run_checked} — becomes a
     telemetry span named opt.<pass>, reproducing Fig. 10's per-stage
     time breakdown as trace data *)
  let exec name g = Tel.span ("opt." ^ name) ~args:f.fname (fun () -> exec name g) in
  if opts.level = 0 then ()
  else begin
    let glookup name = List.find_opt (fun g -> g.gname = name) m.globals in
    let check name = if opts.verify_each then Verify.assert_ok ~ctx:name f in
    let pass name p = if exec name p then begin bump name; check name end in
    let instcombine () =
      Instcombine.run ~fast_math:opts.fast_math ~const_load:opts.const_load
        ~global_lookup:glookup f
    in
    let inline_cfg =
      { Inline.threshold = opts.inline_threshold;
        resolve_addr = opts.resolve_addr }
    in
    let fuel = max 1 opts.fuel in
    (* main scalar pipeline to fixpoint *)
    let round () =
      let changed = ref false in
      let p name g =
        if exec name g then begin changed := true; bump name; check name end
      in
      p "simplifycfg" (fun () -> Simplify_cfg.run f);
      p "instcombine" instcombine;
      p "mem2reg" (fun () -> Mem2reg.run f);
      p "gvn" (fun () -> Gvn.run f);
      p "dce" (fun () -> Dce.run f);
      !changed
    in
    pass "inline" (fun () -> Inline.run ~config:inline_cfg m f);
    let budget = ref fuel in
    while round () && !budget > 0 do decr budget done;
    (* loop transforms, then re-run the scalar pipeline *)
    if opts.level >= 2 then begin
      pass "licm" (fun () -> Licm.run f);
      let budget = ref (max 1 (fuel / 2)) in
      while round () && !budget > 0 do decr budget done;
      pass "unroll" (fun () -> Unroll.run ~fast_math:opts.fast_math f);
      (* clean up after unrolling so remaining loops are canonical
         before vectorization *)
      let budget = ref fuel in
      while round () && !budget > 0 do decr budget done;
      (match opts.force_vector_width with
       | Some w when opts.level >= 2 ->
         pass "vectorize" (fun () ->
             Vectorize.run ~width:w ~aligned:opts.vector_aligned f)
       | _ -> ());
      let budget = ref fuel in
      while round () && !budget > 0 do decr budget done
    end
  end

let default_exec name g =
  Fault.point ("opt." ^ name);
  g ()

(** Optimize one function in place. *)
let run_func ?(opts = o3) (m : modul) (f : func) : unit =
  run_func_with ~exec:default_exec ~opts m f

(** Optimize every function of the module. *)
let run ?(opts = o3) (m : modul) : unit =
  stats.pass_changes <- [];
  List.iter (run_func ~opts m) m.funcs

(* ------------------------------------------------------------------ *)
(* Verifier-gated pipeline                                             *)
(* ------------------------------------------------------------------ *)

(* IR functions are pure data, so a Marshal round-trip is a faithful
   deep copy; restoring writes the copied state back into the same
   physical record the module references. *)
let snapshot (f : func) : string = Marshal.to_string f []

let restore (f : func) (s : string) =
  let g : func = Marshal.from_string s 0 in
  f.blocks <- g.blocks;
  f.next_id <- g.next_id;
  f.always_inline <- g.always_inline

(** Optimize one function with the verifier as a gate: after every
    pass that reports a change, {!Verify.check} runs; running it after
    each pass bisects a corrupted function to the offending pass
    directly.  That pass's effect is rolled back to the pre-pass
    snapshot, the pass is disabled for the rest of this function, and
    optimization continues degraded.  A pass that raises (a typed
    error, an injected fault, or any exception) is handled the same
    way.  Returns the dropped passes with their typed errors. *)
let run_func_checked ?(opts = o3) (m : modul) (f : func) :
    (string * Err.t) list =
  let dropped = ref [] in
  let disabled = ref [] in
  let exec name g =
    if List.mem name !disabled then false
    else begin
      let saved = snapshot f in
      (* remarks recorded by a pass that gets rolled back describe
         changes that never happened — discard them with the pass *)
      let saved_remarks = Obrew_provenance.Provenance.mark () in
      let drop e =
        restore f saved;
        Obrew_provenance.Provenance.truncate saved_remarks;
        disabled := name :: !disabled;
        dropped := (name, e) :: !dropped;
        false
      in
      match
        Fault.point ("opt." ^ name);
        g ()
      with
      | changed ->
        if not changed then false
        else begin
          match Verify.check f with
          | [] -> true
          | errs ->
            drop
              (Err.make Err.Verify
                 (Printf.sprintf "pass %s broke the IR: %s" name
                    (String.concat "; " errs)))
        end
      | exception Err.Error e -> drop e
      | exception exn -> drop (Err.of_exn ~stage:Err.Opt exn)
    end
  in
  run_func_with ~exec ~opts:{ opts with verify_each = false } m f;
  List.rev !dropped

(** {!run} with the verifier gate on every function of the module. *)
let run_checked ?(opts = o3) (m : modul) : (string * Err.t) list =
  stats.pass_changes <- [];
  List.concat_map (run_func_checked ~opts m) m.funcs
