(** The -O3-style pass pipeline (Sec. IV: "the standard optimization
    pipeline with level 3 ... is applied", optionally with
    floating-point optimizations as with -ffast-math). *)

open Obrew_ir

type options = {
  level : int;                       (** 0 disables everything; ≥2
                                         enables the loop transforms *)
  fast_math : bool;                  (** -ffast-math analogue *)
  force_vector_width : int option;   (** -force-vector-width=N; [None]
                                         reproduces "LLVM considers
                                         vectorization non-beneficial" *)
  vector_aligned : bool;             (** emit aligned vector accesses *)
  inline_threshold : int;            (** IR-size bound for inlining *)
  resolve_addr : int -> string option;
  (** map code addresses to module functions so the inliner can inline
      lifted call targets *)
  const_load : addr:int -> len:int -> string option;
  (** constant-memory oracle for setmem-style specialization *)
  verify_each : bool;                (** run the verifier after passes *)
  fuel : int;                        (** fixpoint rounds per pass group
                                         (resource guard) *)
}

(** -O3 with fast-math, no forced vectorization. *)
val o3 : options

(** No optimization at all. *)
val o0 : options

type stats = { mutable pass_changes : (string * int) list }

(** Per-pass change counts of the last {!run} (for the pass-relevance
    study the paper motivates in Sec. VIII). *)
val stats : stats

(** Optimize one function of [m] in place. *)
val run_func : ?opts:options -> Ins.modul -> Ins.func -> unit

(** Optimize every function of the module in place. *)
val run : ?opts:options -> Ins.modul -> unit

(** As {!run_func}, but verifier-gated: {!Verify.check} runs after
    every changing pass, which bisects IR corruption to the offending
    pass; that pass is rolled back (pre-pass snapshot), disabled for
    the function, and optimization continues degraded.  A pass that
    raises is dropped the same way.  Returns the dropped passes with
    their typed errors. *)
val run_func_checked :
  ?opts:options -> Ins.modul -> Ins.func ->
  (string * Obrew_fault.Err.t) list

(** {!run_func_checked} over every function of the module. *)
val run_checked :
  ?opts:options -> Ins.modul -> (string * Obrew_fault.Err.t) list
