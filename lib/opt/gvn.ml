(** Global value numbering: dominator-scoped CSE of pure operations,
    plus block-local redundant-load elimination (loads are reusable
    until the next store or call). *)

open Obrew_ir
open Ins
module Prov = Obrew_provenance.Provenance

(* normalize commutative operand order so syntactic equality finds
   more matches *)
let normalize (op : op) : op =
  let swap_if a b = if compare a b > 0 then (b, a) else (a, b) in
  match op with
  | Bin (((Add | Mul | And | Or | Xor) as o), t, a, b) ->
    let a, b = swap_if a b in
    Bin (o, t, a, b)
  | FBin (((FAdd | FMul) as o), t, a, b) ->
    let a, b = swap_if a b in
    FBin (o, t, a, b)
  | Icmp (((Eq | Ne) as p), t, a, b) ->
    let a, b = swap_if a b in
    Icmp (p, t, a, b)
  | op -> op

let pure_op = function
  | Bin _ | FBin _ | Icmp _ | Fcmp _ | Select _ | Cast _ | Gep _
  | ExtractElt _ | InsertElt _ | Shuffle _ | Intr _ -> true
  | Load _ | Store _ | Phi _ | CallDirect _ | CallPtr _ | Alloca _ -> false

let run (f : func) : bool =
  Cfg.prune_unreachable f;
  let dom = Dom.compute f in
  let live = Cfg.reachable f in
  let children = Hashtbl.create 16 in
  List.iter
    (fun b ->
      if Hashtbl.mem live b.bid then
        match Dom.idom dom b.bid with
        | Some p when p <> b.bid ->
          Hashtbl.replace children p
            (b.bid :: Option.value ~default:[] (Hashtbl.find_opt children p))
        | _ -> ())
    f.blocks;
  let table : (op, value) Hashtbl.t = Hashtbl.create 64 in
  let subst : (int, value) Hashtbl.t = Hashtbl.create 16 in
  let changed = ref false in
  let rec walk bid =
    let blk = find_block f bid in
    let undo = ref [] in
    (* block-local load table, invalidated by stores/calls *)
    let loads : (value * ty, value) Hashtbl.t = Hashtbl.create 8 in
    blk.instrs <-
      List.filter_map
        (fun i ->
          let i = { i with op = map_operands (Util.resolve subst) i.op } in
          match i.op with
          | Load (t, p, _) -> (
            match Hashtbl.find_opt loads (p, t) with
            | Some v ->
              Hashtbl.replace subst i.id v;
              changed := true;
              if !Prov.enabled then
                Prov.record ~pass:"gvn" ~action:Prov.Merged ~prov:i.prov
                  ~detail:"redundant load forwarded from earlier access";
              None
            | None ->
              Hashtbl.replace loads (p, t) (V i.id);
              Some i)
          | Store (t, v, p, _) ->
            (* conservative: a store invalidates all remembered loads,
               then the stored value is forwardable for that address *)
            Hashtbl.reset loads;
            Hashtbl.replace loads (p, t) v;
            Some i
          | CallDirect _ | CallPtr _ ->
            Hashtbl.reset loads;
            Some i
          | op when pure_op op -> (
            let key = normalize op in
            match Hashtbl.find_opt table key with
            | Some v ->
              Hashtbl.replace subst i.id v;
              changed := true;
              if !Prov.enabled then
                Prov.record ~pass:"gvn" ~action:Prov.Merged ~prov:i.prov
                  ~detail:"common subexpression merged with dominating value";
              None
            | None ->
              Hashtbl.replace table key (V i.id);
              undo := key :: !undo;
              Some i)
          | _ -> Some i)
        blk.instrs;
    blk.term <- map_term_operands (Util.resolve subst) blk.term;
    List.iter walk (Option.value ~default:[] (Hashtbl.find_opt children bid));
    List.iter (Hashtbl.remove table) !undo
  in
  walk (entry_block f).bid;
  Util.apply_subst f subst;
  !changed
