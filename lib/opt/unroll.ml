(** Full loop unrolling by iterated peeling.

    After parameter fixation the inner stencil-point loops have
    constant trip counts; LLVM's -O3 fully unrolls them (Sec. IV/VI).
    We find natural loops whose induction variable, step and bound are
    constants, simulate the exit condition to obtain the trip count,
    and peel the body that many times; constant folding and CFG
    simplification then dissolve the per-iteration branches.  Loops
    whose count times body size exceeds the threshold are left alone
    (LLVM behaves the same way, which is why the 649-element line loop
    is never unrolled). *)

open Obrew_ir
open Ins
module Prov = Obrew_provenance.Provenance

let size_threshold = 700
let max_count = 256

type loop_info = {
  header : int;
  latch : int;
  body : int list;       (* includes header and latch *)
  preheader : int;       (* unique predecessor of header outside loop *)
  exit_src : int;        (* loop block with the exit edge *)
  exit_blk : int;        (* target outside the loop; unique pred = exit_src *)
}

let find_loop (f : func) : loop_info option =
  Cfg.prune_unreachable f;
  let dom = Dom.compute f in
  let preds = Cfg.predecessors f in
  (* back edges *)
  let backs =
    List.concat_map
      (fun (b : block) ->
        List.filter_map
          (fun s -> if Dom.dominates dom s b.bid then Some (b.bid, s) else None)
          (successors b.term))
      f.blocks
  in
  let try_loop (latch, header) =
    (* body: blocks that reach latch without passing header *)
    let body = Hashtbl.create 8 in
    Hashtbl.replace body header ();
    let rec up b =
      if not (Hashtbl.mem body b) then begin
        Hashtbl.replace body b ();
        List.iter up (Option.value ~default:[] (Hashtbl.find_opt preds b))
      end
    in
    up latch;
    let in_body b = Hashtbl.mem body b in
    (* unique back edge to this header? *)
    let backs_to_h = List.filter (fun (_, h) -> h = header) backs in
    if List.length backs_to_h <> 1 then None
    else
      (* unique preheader *)
      let hpreds =
        List.filter
          (fun p -> not (in_body p))
          (Option.value ~default:[] (Hashtbl.find_opt preds header))
      in
      match hpreds with
      | [ preheader ] -> (
        (* single exit edge *)
        let exits =
          List.concat_map
            (fun (b : block) ->
              if in_body b.bid then
                List.filter_map
                  (fun s -> if in_body s then None else Some (b.bid, s))
                  (successors b.term)
              else [])
            f.blocks
        in
        match exits with
        | [ (exit_src, exit_blk) ] ->
          let epreds =
            Option.value ~default:[] (Hashtbl.find_opt preds exit_blk)
          in
          if epreds = [ exit_src ] then
            Some
              { header; latch;
                body = Hashtbl.fold (fun b () acc -> b :: acc) body [];
                preheader; exit_src; exit_blk }
          else None
        | _ -> None)
      | _ -> None
  in
  List.fold_left
    (fun acc be -> match acc with Some _ -> acc | None -> try_loop be)
    None backs

(* Trip count by concrete simulation of the induction variable. *)
let trip_count (f : func) (li : loop_info) : int option =
  let hb = find_block f li.header in
  let defs = Util.def_table f in
  (* find iv phi: phi in header with const init from preheader and
     incoming from latch defined as iv +/- const step *)
  let ivs =
    List.filter_map
      (fun i ->
        match i.op with
        | Phi (t, ins) when is_int t -> (
          match
            (List.assoc_opt li.preheader ins, List.assoc_opt li.latch ins)
          with
          | Some (CInt (_, init)), Some (V nid) -> (
            match Hashtbl.find_opt defs nid with
            | Some { op = Bin (Add, _, V pv, CInt (_, step)); _ }
              when pv = i.id ->
              Some (i.id, nid, init, step, t)
            | Some { op = Bin (Sub, _, V pv, CInt (_, step)); _ }
              when pv = i.id ->
              Some (i.id, nid, init, Int64.neg step, t)
            | _ -> None)
          | _ -> None)
        | _ -> None)
      hb.instrs
  in
  (* the exit branch *)
  let eb = find_block f li.exit_src in
  match eb.term with
  | CondBr (V cid, t, e) -> (
    let exit_on_true = t = li.exit_blk in
    ignore e;
    match Hashtbl.find_opt defs cid with
    | Some { op = Icmp (p, ct, V x, CInt (_, bound)); _ } -> (
      (* x must be the iv or its incremented value *)
      let iv =
        List.find_opt (fun (ivid, nid, _, _, _) -> x = ivid || x = nid) ivs
      in
      match iv with
      | Some (ivid, _, init, step, ity) when step <> 0L ->
        let test_on_next = x <> ivid in
        let bits = ty_bits ity in
        let cmp v =
          match
            Interp.eval_icmp p ct
              (Interp.I (Interp.trunc_bits bits v))
              (Interp.I (Interp.trunc_bits 64 bound))
          with
          | Interp.I 1L -> true
          | _ -> false
        in
        (* A non-rotated loop tests in a header distinct from the
           latch, before the body runs; a rotated (do-while) loop —
           including every single-block loop — tests after the body. *)
        let header_style =
          li.exit_src = li.header && li.header <> li.latch
        in
        let rec sim i count =
          if count > max_count then None
          else begin
            (* value tested this iteration *)
            let tested = if test_on_next then Int64.add i step else i in
            let exit_now = cmp tested = exit_on_true in
            if header_style then
              if exit_now then Some count
              else sim (Int64.add i step) (count + 1)
            else if exit_now then Some (count + 1)
            else sim (Int64.add i step) (count + 1)
          end
        in
        ignore ivid;
        sim init 0
      | _ -> None)
    | _ -> None)
  | _ -> None

(* Peel one iteration off the front of the loop. *)
let peel_once (f : func) (li : loop_info) : loop_info =
  let blk_map = Hashtbl.create 8 in
  let next_bid =
    ref (1 + List.fold_left (fun m (b : block) -> max m b.bid) 0 f.blocks)
  in
  List.iter
    (fun b ->
      Hashtbl.replace blk_map b !next_bid;
      incr next_bid)
    li.body;
  let id_map = Hashtbl.create 64 in
  let fid id =
    match Hashtbl.find_opt id_map id with
    | Some x -> x
    | None ->
      let x = f.next_id in
      f.next_id <- x + 1;
      Hashtbl.replace id_map id x;
      x
  in
  (* header phis are replaced by their preheader value in the clone *)
  let hb = find_block f li.header in
  let header_phi_subst = Hashtbl.create 8 in
  List.iter
    (fun i ->
      match i.op with
      | Phi (_, ins) -> (
        match List.assoc_opt li.preheader ins with
        | Some v -> Hashtbl.replace header_phi_subst i.id v
        | None -> ())
      | _ -> ())
    hb.instrs;
  (* collect defs inside the body so we know which values to remap *)
  let body_defs = Hashtbl.create 64 in
  List.iter
    (fun bid ->
      List.iter
        (fun i -> Hashtbl.replace body_defs i.id ())
        (find_block f bid).instrs)
    li.body;
  let rec rv2 v =
    match v with
    | V id ->
      if Hashtbl.mem header_phi_subst id then
        Hashtbl.find header_phi_subst id
      else if Hashtbl.mem body_defs id then V (fid id)
      else v
    | CVec (t, vs) -> CVec (t, List.map rv2 vs)
    | _ -> v
  in
  let in_body b = List.mem b li.body in
  let fblk b =
    if b = li.header then li.header (* backedge goes to the original *)
    else if in_body b then Hashtbl.find blk_map b
    else b
  in
  let cloned =
    List.map
      (fun bid ->
        let b = find_block f bid in
        let instrs =
          List.filter_map
            (fun i ->
              match i.op with
              | Phi (_, _) when bid = li.header ->
                None (* replaced by preheader values *)
              | Phi (t, ins) ->
                (* inner phi: predecessors are body blocks *)
                Some
                  { id = fid i.id; ty = i.ty; prov = i.prov;
                    op =
                      Phi
                        ( t,
                          List.map
                            (fun (p, v) ->
                              ((if in_body p then Hashtbl.find blk_map p else p),
                               rv2 v))
                            ins ) }
              | op ->
                Some
                  { id = fid i.id; ty = i.ty; op = map_operands rv2 op;
                    prov = i.prov })
            b.instrs
        in
        let term =
          match b.term with
          | Br t -> Br (fblk t)
          | CondBr (c, t, e) -> CondBr (rv2 c, fblk t, fblk e)
          | Ret v -> Ret (Option.map rv2 v)
          | Unreachable -> Unreachable
        in
        { bid = Hashtbl.find blk_map bid; instrs; term })
      li.body
  in
  f.blocks <- f.blocks @ cloned;
  let clone_of b = Hashtbl.find blk_map b in
  (* preheader now branches to the clone of the header *)
  let pb = find_block f li.preheader in
  let rt x = if x = li.header then clone_of li.header else x in
  pb.term <-
    (match pb.term with
     | Br t -> Br (rt t)
     | CondBr (c, t, e) -> CondBr (c, rt t, rt e)
     | t -> t);
  (* original header phis: the preheader edge is replaced by the edge
     from the cloned latch; the incoming value is the latch value
     remapped through the clone *)
  hb.instrs <-
    List.map
      (fun i ->
        match i.op with
        | Phi (t, ins) ->
          let latch_v =
            match List.assoc_opt li.latch ins with
            | Some v -> rv2 v
            | None -> Undef t
          in
          let ins' =
            List.map
              (fun (p, v) ->
                if p = li.preheader then (clone_of li.latch, latch_v)
                else (p, v))
              ins
          in
          { i with op = Phi (t, ins') }
        | _ -> i)
      hb.instrs;
  (* exit block: one more predecessor (the cloned exit source); its
     phis gain the remapped incoming *)
  let eb = find_block f li.exit_blk in
  eb.instrs <-
    List.map
      (fun i ->
        match i.op with
        | Phi (t, ins) -> (
          match List.assoc_opt li.exit_src ins with
          | Some v ->
            { i with op = Phi (t, (clone_of li.exit_src, rv2 v) :: ins) }
          | None -> { i with op = Phi (t, ins) })
        | _ -> i)
      eb.instrs;
  { li with preheader = clone_of li.latch }

(* Values defined in the loop and used outside must be funneled through
   phis in the exit block (LCSSA), otherwise peeling breaks SSA. *)
let make_lcssa (f : func) (li : loop_info) =
  let in_body b = List.mem b li.body in
  let body_defs = Hashtbl.create 64 in
  List.iter
    (fun bid ->
      List.iter
        (fun i -> if i.ty <> None then Hashtbl.replace body_defs i.id bid)
        (find_block f bid).instrs)
    li.body;
  (* find outside uses *)
  let tenv = Util.type_env f in
  let needed = Hashtbl.create 8 in
  let scan_use bid v =
    match v with
    | V id when Hashtbl.mem body_defs id && not (in_body bid) ->
      Hashtbl.replace needed id ()
    | _ -> ()
  in
  List.iter
    (fun (b : block) ->
      List.iter
        (fun i ->
          match i.op with
          | Phi (_, ins) ->
            List.iter (fun (p, v) -> if not (in_body p) then scan_use b.bid v
                        else scan_use p v) ins
          | op -> List.iter (scan_use b.bid) (operands op))
        b.instrs;
      List.iter (scan_use b.bid) (term_operands b.term))
    f.blocks;
  if Hashtbl.length needed > 0 then begin
    let eb = find_block f li.exit_blk in
    let subst = Hashtbl.create 8 in
    Hashtbl.iter
      (fun id () ->
        let t = Hashtbl.find tenv id in
        let pid = f.next_id in
        f.next_id <- pid + 1;
        eb.instrs <-
          { id = pid; ty = Some t; op = Phi (t, [ (li.exit_src, V id) ]);
            prov =
              (match Hashtbl.find_opt body_defs id with
               | Some bid -> (
                 match
                   List.find_opt (fun i -> i.id = id)
                     (find_block f bid).instrs
                 with
                 | Some i -> i.prov
                 | None -> Prov.none)
               | None -> Prov.none) }
          :: eb.instrs;
        Hashtbl.replace subst id (V pid))
      needed;
    (* replace uses outside the loop (except the LCSSA phis we just
       created, which must keep referring to the original value) *)
    let lcssa_ids =
      Hashtbl.fold
        (fun _ v acc ->
          match v with V id -> id :: acc | _ -> acc)
        subst []
    in
    List.iter
      (fun (b : block) ->
        if not (in_body b.bid) then begin
          b.instrs <-
            List.map
              (fun i ->
                if List.mem i.id lcssa_ids then i
                else
                  match i.op with
                  | Phi (t, ins) ->
                    { i with
                      op =
                        Phi
                          ( t,
                            List.map
                              (fun (p, v) ->
                                if in_body p then (p, v)
                                else (p, Util.resolve subst v))
                              ins ) }
                  | op ->
                    { i with op = map_operands (Util.resolve subst) op })
              b.instrs;
          b.term <- map_term_operands (Util.resolve subst) b.term
        end)
      f.blocks
  end

(** Peel one iteration off one constant-trip-count loop (the scalar
    pipeline in between folds the per-iteration branch; a zero-trip
    loop gets a final peel whose cloned header folds straight to the
    exit, making the original loop unreachable).  Returns true when
    something was peeled; call repeatedly until it returns false. *)
let run_once ?(fast_math = false) (f : func) : bool =
  match find_loop f with
  | None -> false
  | Some li -> (
    match trip_count f li with
    | None -> false
    | Some count ->
      let body_size =
        List.fold_left
          (fun acc b -> acc + List.length (find_block f b).instrs)
          0 li.body
      in
      if count * body_size > size_threshold then false
      else begin
        if !Prov.enabled then begin
          let hprov =
            match (find_block f li.header).instrs with
            | i :: _ -> i.prov
            | [] -> Prov.none
          in
          Prov.record ~pass:"unroll" ~action:Prov.Unrolled ~prov:hprov
            ~detail:
              (Printf.sprintf
                 "iteration peeled off loop at bb%d (trip count %d)"
                 li.header count)
        end;
        make_lcssa f li;
        ignore (peel_once f li);
        ignore (Instcombine.run ~fast_math f);
        ignore (Simplify_cfg.run f);
        ignore (Instcombine.run ~fast_math f);
        ignore (Simplify_cfg.run f);
        ignore (Dce.run f);
        true
      end)

(** Fully unroll all eligible loops. *)
let run ?fast_math (f : func) : bool =
  let changed = ref false in
  let budget = ref (max_count * 4) in
  while run_once ?fast_math f && !budget > 0 do
    decr budget;
    changed := true
  done;
  !changed
