(** Width-2 loop vectorization of single-block f64 loops.

    This models both sides of the paper's vectorization discussion
    (Sec. VI): the static compiler vectorizes the direct line kernel,
    and at JIT time vectorization only happens when forced
    ([-force-vector-width=2]).  The transform handles the shape the
    stencil kernels take after the scalar pipeline: a rotated
    do-while loop with a unit-stride induction variable, f64 loads and
    stores whose addresses are affine in the induction variable, and
    no loop-carried values except the induction variable.

    Like LLVM under -force-vector-width, no memory dependence checks
    are performed (the Jacobi kernels read and write disjoint
    matrices).  A scalar remainder loop handles odd trip counts. *)

open Obrew_ir
open Ins

type plan = {
  header : int;          (* the single loop block (header = latch) *)
  preheader : int;
  exit_blk : int;
  iv : int;              (* induction phi id *)
  next : int;            (* iv + 1 *)
  cmp : int;             (* icmp slt next bound *)
  bound : value;
  init : value;
}

let find_plan (f : func) : plan option =
  (* lenient single-block self-loop finder: unlike full unrolling, the
     vectorizer does not care whether the exit block is shared with the
     guard (no loop value escapes — checked separately) *)
  let preds = Cfg.predecessors f in
  let live = Cfg.reachable f in
  let candidate (hb : block) =
    if not (Hashtbl.mem live hb.bid) then None
    else
      match hb.term with
      | CondBr (V cid, t, e) when t = hb.bid && e <> hb.bid -> (
        let bp =
          List.filter
            (fun p -> Hashtbl.mem live p)
            (Option.value ~default:[] (Hashtbl.find_opt preds hb.bid))
        in
        match List.filter (fun p -> p <> hb.bid) bp with
        | [ preheader ] when List.mem hb.bid bp -> (
          let defs = Util.def_table f in
          match Hashtbl.find_opt defs cid with
          | Some { op = Icmp (Slt, I64, V nid, bound); _ } -> (
            match Hashtbl.find_opt defs nid with
            | Some { op = Bin (Add, I64, V ivid, CInt (_, 1L)); _ } -> (
              match Hashtbl.find_opt defs ivid with
              | Some { op = Phi (I64, ins); _ } when List.length ins = 2 -> (
                match
                  (List.assoc_opt preheader ins, List.assoc_opt hb.bid ins)
                with
                | Some init, Some (V n2) when n2 = nid ->
                  Some
                    { header = hb.bid; preheader; exit_blk = e; iv = ivid;
                      next = nid; cmp = cid; bound; init }
                | _ -> None)
              | _ -> None)
            | _ -> None)
          | _ -> None)
        | _ -> None)
      | _ -> None
  in
  List.find_map candidate f.blocks

(* A GEP is vectorizable when it uses the iv exactly once with scale 8
   (unit f64 stride) and everything else is loop-invariant. *)
let gep_ok ~iv ~is_inv elts =
  let iv_uses =
    List.filter
      (function GScaled (V v, s) -> v = iv && s = 8 | _ -> false)
      elts
  in
  List.length iv_uses = 1
  && List.for_all
       (function
         | GConst _ -> true
         | GScaled (V v, s) -> (v = iv && s = 8) || (is_inv (V v) && s >= 0)
         | GScaled (v, _) -> is_inv v)
       elts

let run ~width ?(aligned = false) (f : func) : bool =
  if width <> 2 then false
  else
    match find_plan f with
    | None -> false
    | Some p ->
      let hb = find_block f p.header in
      let body_ids = Hashtbl.create 32 in
      List.iter (fun i -> Hashtbl.replace body_ids i.id ()) hb.instrs;
      let is_inv = function
        | V id -> not (Hashtbl.mem body_ids id)
        | _ -> true
      in
      let defs = Util.def_table f in
      (* loop-defined values used outside the loop? *)
      let used_outside = ref false in
      List.iter
        (fun (b : block) ->
          if b.bid <> p.header then begin
            let chk = function
              | V id when Hashtbl.mem body_ids id -> used_outside := true
              | _ -> ()
            in
            List.iter (fun i -> List.iter chk (operands i.op)) b.instrs;
            List.iter chk (term_operands b.term)
          end)
        f.blocks;
      (* classify body: every instruction must be vectorizable *)
      let vf64 = Vec (2, F64) in
      let ok = ref (not !used_outside) in
      List.iter
        (fun i ->
          if i.id = p.iv || i.id = p.next || i.id = p.cmp then ()
          else
            match i.op with
            | Load (F64, addr, _) when is_inv addr -> ()
            | Load (F64, V g, _) -> (
              match Hashtbl.find_opt defs g with
              | Some { op = Gep (base, elts); _ }
                when is_inv base && gep_ok ~iv:p.iv ~is_inv elts -> ()
              | _ -> ok := false)
            | Store (F64, _, V g, _) -> (
              match Hashtbl.find_opt defs g with
              | Some { op = Gep (base, elts); _ }
                when is_inv base && gep_ok ~iv:p.iv ~is_inv elts -> ()
              | _ -> ok := false)
            | FBin (_, F64, _, _) -> ()
            | Gep (base, elts) ->
              if not (is_inv base && gep_ok ~iv:p.iv ~is_inv elts) then
                ok := false
            | _ -> ok := false)
        hb.instrs;
      if not !ok then false
      else begin
        let fresh () =
          let id = f.next_id in
          f.next_id <- id + 1;
          id
        in
        let new_bid () =
          1 + List.fold_left (fun m (b : block) -> max m b.bid) 0 f.blocks
        in
        let g_bid = new_bid () in
        let guard = { bid = g_bid; instrs = []; term = Unreachable } in
        f.blocks <- f.blocks @ [ guard ];
        let vb_bid = new_bid () in
        let vb = { bid = vb_bid; instrs = []; term = Unreachable } in
        f.blocks <- f.blocks @ [ vb ];
        let sg_bid = new_bid () in
        let sg = { bid = sg_bid; instrs = []; term = Unreachable } in
        f.blocks <- f.blocks @ [ sg ];
        let add ?(prov = 0) blk ~ty op =
          let id = fresh () in
          blk.instrs <- blk.instrs @ [ { id; ty; op; prov } ];
          V id
        in
        let iv_prov =
          match List.find_opt (fun i -> i.id = p.iv) hb.instrs with
          | Some i -> i.prov
          | None -> 0
        in
        (* guard: boundm1 = bound - 1; enter vb if init < boundm1 *)
        let boundm1 =
          add guard ~ty:(Some I64) (Bin (Add, I64, p.bound, CInt (I64, -1L)))
        in
        let enter_ok =
          add guard ~ty:(Some I1) (Icmp (Slt, I64, p.init, boundm1))
        in
        guard.term <- CondBr (enter_ok, vb_bid, sg_bid);
        (* splats of loop-invariant scalars are hoisted into the guard *)
        let splats : (value, value) Hashtbl.t = Hashtbl.create 8 in
        let splat v =
          match Hashtbl.find_opt splats v with
          | Some s -> s
          | None ->
            let s =
              match v with
              | CF64 _ -> CVec (vf64, [ v; v ])
              | _ ->
                let i0 =
                  add guard ~ty:(Some vf64)
                    (InsertElt (vf64, Undef vf64, v, 0))
                in
                add guard ~ty:(Some vf64)
                  (Shuffle (vf64, i0, Undef vf64, [| 0; 0 |]))
            in
            Hashtbl.replace splats v s;
            s
        in
        (* vector loop *)
        let iv_v = fresh () in
        let vmap : (int, value) Hashtbl.t = Hashtbl.create 16 in
        (* scalar->vector value mapping inside vb; geps map to lane-0
           addresses with iv replaced by iv_v *)
        let smap : (int, value) Hashtbl.t = Hashtbl.create 16 in
        let vec_operand v =
          match v with
          | V id when Hashtbl.mem vmap id -> Hashtbl.find vmap id
          | v when is_inv v -> splat v
          | CF64 _ -> splat v
          | _ ->
            Obrew_fault.Err.fail Obrew_fault.Err.Opt
              "vectorize: unexpected operand"
        in
        let align = if aligned then 16 else 8 in
        List.iter
          (fun i ->
            if i.id = p.iv || i.id = p.next || i.id = p.cmp then ()
            else
              match i.op with
              | Gep (base, elts) ->
                let elts' =
                  List.map
                    (function
                      | GScaled (V v, s) when v = p.iv ->
                        GScaled (V iv_v, s)
                      | e -> e)
                    elts
                in
                Hashtbl.replace smap i.id
                  (add ~prov:i.prov vb ~ty:(Some (Ptr 0)) (Gep (base, elts')))
              | Load (F64, addr, al) when is_inv addr ->
                (* loop-invariant scalar load: keep scalar, splat *)
                let s = add ~prov:i.prov vb ~ty:(Some F64) (Load (F64, addr, al)) in
                let i0 =
                  add ~prov:i.prov vb ~ty:(Some vf64)
                    (InsertElt (vf64, Undef vf64, s, 0))
                in
                Hashtbl.replace vmap i.id
                  (add ~prov:i.prov vb ~ty:(Some vf64)
                     (Shuffle (vf64, i0, Undef vf64, [| 0; 0 |])))
              | Load (F64, V g, _) ->
                let addr =
                  match Hashtbl.find_opt smap g with
                  | Some a -> a
                  | None -> V g
                in
                Hashtbl.replace vmap i.id
                  (add ~prov:i.prov vb ~ty:(Some vf64)
                     (Load (vf64, addr, align)))
              | Store (F64, v, V g, _) ->
                let addr =
                  match Hashtbl.find_opt smap g with
                  | Some a -> a
                  | None -> V g
                in
                ignore
                  (add ~prov:i.prov vb ~ty:None
                     (Store (vf64, vec_operand v, addr, align)))
              | FBin (op, F64, a, b) ->
                Hashtbl.replace vmap i.id
                  (add ~prov:i.prov vb ~ty:(Some vf64)
                     (FBin (op, vf64, vec_operand a, vec_operand b)))
              | _ ->
                Obrew_fault.Err.fail Obrew_fault.Err.Opt
                  "vectorize: non-vectorizable instruction slipped \
                   through the legality check")
          hb.instrs;
        let next_v = add vb ~ty:(Some I64) (Bin (Add, I64, V iv_v, CInt (I64, 2L))) in
        let cont = add vb ~ty:(Some I1) (Icmp (Slt, I64, next_v, boundm1)) in
        vb.term <- CondBr (cont, vb_bid, sg_bid);
        (* the iv phi goes first *)
        vb.instrs <-
          { id = iv_v; ty = Some I64; prov = iv_prov;
            op = Phi (I64, [ (g_bid, p.init); (vb_bid, next_v) ]) }
          :: vb.instrs;
        (* scalar guard: remaining iterations? *)
        let iv_rem = fresh () in
        sg.instrs <-
          [ { id = iv_rem; ty = Some I64; prov = iv_prov;
              op = Phi (I64, [ (g_bid, p.init); (vb_bid, next_v) ]) } ];
        let more =
          add sg ~ty:(Some I1) (Icmp (Slt, I64, V iv_rem, p.bound))
        in
        sg.term <- CondBr (more, p.header, p.exit_blk);
        (* original loop: entered from sg with iv starting at iv_rem *)
        hb.instrs <-
          List.map
            (fun i ->
              if i.id = p.iv then
                match i.op with
                | Phi (t, ins) ->
                  { i with
                    op =
                      Phi
                        ( t,
                          List.map
                            (fun (pr, v) ->
                              if pr = p.preheader then (sg_bid, V iv_rem)
                              else (pr, v))
                            ins ) }
                | _ -> i
              else
                match i.op with
                | Phi (t, ins) ->
                  { i with
                    op =
                      Phi
                        ( t,
                          List.map
                            (fun (pr, v) ->
                              if pr = p.preheader then (sg_bid, v)
                              else (pr, v))
                            ins ) }
                | _ -> i)
            hb.instrs;
        (* preheader branches to the guard instead of the loop *)
        let pb = find_block f p.preheader in
        let rt x = if x = p.header then g_bid else x in
        pb.term <-
          (match pb.term with
           | Br t -> Br (rt t)
           | CondBr (c, t, e) -> CondBr (c, rt t, rt e)
           | t -> t);
        (* exit block: new predecessor sg; it has no loop-value phis
           (checked above), but rename any incoming from header edge
           structure is unchanged — header still branches to exit *)
        let eb = find_block f p.exit_blk in
        eb.instrs <-
          List.map
            (fun i ->
              match i.op with
              | Phi (t, ins) -> (
                match List.assoc_opt p.header ins with
                | Some v -> { i with op = Phi (t, (sg_bid, v) :: ins) }
                | None -> i)
              | _ -> i)
            eb.instrs;
        true
      end
