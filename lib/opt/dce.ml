(** Dead code elimination: removes instructions whose results are
    unused and that have no side effects (mark & sweep from
    side-effecting roots and terminators). *)

open Obrew_ir
open Ins
module Prov = Obrew_provenance.Provenance

let run (f : func) : bool =
  let live : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let work = Queue.create () in
  let rec mark_value = function
    | V id ->
      if not (Hashtbl.mem live id) then begin
        Hashtbl.replace live id ();
        Queue.add id work
      end
    | CVec (_, vs) -> List.iter mark_value vs
    | _ -> ()
  in
  let defs = Util.def_table f in
  (* roots: side effects and terminators *)
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          if has_side_effect i.op then begin
            Hashtbl.replace live i.id ();
            List.iter mark_value (operands i.op)
          end)
        b.instrs;
      List.iter mark_value (term_operands b.term))
    f.blocks;
  (* transitive closure *)
  while not (Queue.is_empty work) do
    let id = Queue.pop work in
    match Hashtbl.find_opt defs id with
    | Some i -> List.iter mark_value (operands i.op)
    | None -> ()
  done;
  let changed = ref false in
  List.iter
    (fun b ->
      let n0 = List.length b.instrs in
      b.instrs <-
        List.filter
          (fun i ->
            let keep = has_side_effect i.op || Hashtbl.mem live i.id in
            if (not keep) && !Prov.enabled then
              Prov.record ~pass:"dce" ~action:Prov.Deleted ~prov:i.prov
                ~detail:(Printf.sprintf "dead value %%%d removed" i.id);
            keep)
          b.instrs;
      if List.length b.instrs <> n0 then changed := true)
    f.blocks;
  !changed
