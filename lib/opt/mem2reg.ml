(** Promotion of non-escaping allocas to SSA values (mem2reg + a
    slice of SROA).  The lifter models the native stack as one big
    [alloca] accessed at constant offsets (Sec. III-F of the paper);
    this pass turns those slots into SSA values so that the spill/
    reload and push/pop traffic of the original binary disappears,
    which is precisely what the paper observes LLVM's -O3 doing. *)

open Obrew_ir
open Ins
module Prov = Obrew_provenance.Provenance

type slot = { off : int; size : int; sty : ty }

type access =
  | ALoad of int * int * ty * int (* block, instr id, type, offset *)
  | AStore of int * int * ty * int * value

(* Dominance frontiers (Cooper–Harvey–Kennedy). *)
let dominance_frontiers (f : func) (dom : Dom.t) :
    (int, int list) Hashtbl.t =
  let df = Hashtbl.create 16 in
  let add b x =
    let cur = Option.value ~default:[] (Hashtbl.find_opt df b) in
    if not (List.mem x cur) then Hashtbl.replace df b (x :: cur)
  in
  let preds = Cfg.predecessors f in
  let live = Cfg.reachable f in
  List.iter
    (fun b ->
      if Hashtbl.mem live b.bid then begin
        let ps =
          List.filter (fun p -> Hashtbl.mem live p)
            (Option.value ~default:[] (Hashtbl.find_opt preds b.bid))
        in
        if List.length ps >= 2 then
          List.iter
            (fun p ->
              let runner = ref p in
              let stop = Option.value ~default:b.bid (Dom.idom dom b.bid) in
              while !runner <> stop do
                add !runner b.bid;
                runner := Option.value ~default:stop (Dom.idom dom !runner)
              done)
            ps
      end)
    f.blocks;
  df

(* Is every use of [aid] (and of const-gep pointers derived from it) a
   load or store address?  Returns the derived-pointer map on success. *)
let analyze_alloca (f : func) (aid : int) : (int, int) Hashtbl.t option =
  (* derived: value id -> constant byte offset from the alloca *)
  let derived = Hashtbl.create 8 in
  Hashtbl.replace derived aid 0;
  (* first collect const-gep derivations (iterate to chase chains) *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        List.iter
          (fun i ->
            match i.op with
            | Gep (V base, elts) when Hashtbl.mem derived base
                                      && not (Hashtbl.mem derived i.id) -> (
              let off =
                List.fold_left
                  (fun acc e ->
                    match acc, e with
                    | Some a, GConst c -> Some (a + c)
                    | Some a, GScaled (CInt (_, x), s) ->
                      Some (a + (Int64.to_int x * s))
                    | _ -> None)
                  (Some (Hashtbl.find derived base))
                  elts
              in
              match off with
              | Some o ->
                Hashtbl.replace derived i.id o;
                changed := true
              | None -> Hashtbl.replace derived i.id min_int)
            | _ -> ())
          b.instrs)
      f.blocks
  done;
  (* non-constant gep discovered? *)
  if Hashtbl.fold (fun _ o acc -> acc || o = min_int) derived false then None
  else begin
    (* check every use *)
    let ok = ref true in
    let is_derived = function V id -> Hashtbl.mem derived id | _ -> false in
    List.iter
      (fun b ->
        List.iter
          (fun i ->
            match i.op with
            | Load (_, p, _) when is_derived p -> ()
            | Store (_, v, p, _) ->
              if is_derived v then ok := false (* address escapes *)
              else if is_derived p then ()
            | Gep (base, elts) when is_derived base ->
              (* already analyzed; but scaled non-const handled above *)
              List.iter
                (function
                  | GScaled (v, _) when is_derived v -> ok := false
                  | _ -> ())
                elts
            | op ->
              if List.exists is_derived (operands op) then ok := false)
          b.instrs;
        if List.exists is_derived (term_operands b.term) then ok := false)
      f.blocks;
    if !ok then Some derived else None
  end

(* Slots: every (offset, size) must be either identical or disjoint. *)
let collect_slots (f : func) (derived : (int, int) Hashtbl.t) :
    (slot list * access list) option =
  let accesses = ref [] in
  let bad = ref false in
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          match i.op with
          | Load (t, V p, _) when Hashtbl.mem derived p ->
            accesses :=
              ALoad (b.bid, i.id, t, Hashtbl.find derived p) :: !accesses
          | Store (t, v, V p, _) when Hashtbl.mem derived p ->
            accesses :=
              AStore (b.bid, i.id, t, Hashtbl.find derived p, v) :: !accesses
          | _ -> ())
        b.instrs)
    f.blocks;
  let slot_tbl : (int, slot) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun a ->
      let t, off =
        match a with ALoad (_, _, t, o) -> (t, o) | AStore (_, _, t, o, _) -> (t, o)
      in
      let size = ty_bytes t in
      match Hashtbl.find_opt slot_tbl off with
      | Some s -> if s.size <> size then bad := true
      | None -> Hashtbl.replace slot_tbl off { off; size; sty = t })
    !accesses;
  (* overlap check between distinct slots *)
  let slots = Hashtbl.fold (fun _ s acc -> s :: acc) slot_tbl [] in
  List.iter
    (fun s1 ->
      List.iter
        (fun s2 ->
          if s1.off < s2.off && s1.off + s1.size > s2.off then bad := true)
        slots)
    slots;
  if !bad then None else Some (slots, !accesses)

(* Insert a cast sequence converting [v] of type [from_t] to [to_t];
   returns the new instrs (to splice) and the resulting value. *)
let coerce f ~prov ~from_t ~to_t v : instr list * value option =
  if from_t = to_t then ([], Some v)
  else if ty_bits from_t <> ty_bits to_t then ([], None)
  else begin
    let fresh () =
      let id = f.next_id in
      f.next_id <- id + 1;
      id
    in
    match from_t, to_t with
    | Ptr _, (I64 | I128) ->
      let id = fresh () in
      ([ { id; ty = Some to_t; op = Cast (PtrToInt, from_t, v, to_t); prov } ],
       Some (V id))
    | I64, Ptr _ ->
      let id = fresh () in
      ([ { id; ty = Some to_t; op = Cast (IntToPtr, from_t, v, to_t); prov } ],
       Some (V id))
    | _ ->
      let id = fresh () in
      ([ { id; ty = Some to_t; op = Cast (Bitcast, from_t, v, to_t); prov } ],
       Some (V id))
  end

let promote_alloca (f : func) (aid : int) : bool =
  match analyze_alloca f aid with
  | None -> false
  | Some derived -> (
    match collect_slots f derived with
    | None -> false
    | Some (slots, accesses) ->
      if accesses = [] then begin
        (* unused alloca: DCE will remove it *)
        false
      end
      else begin
        (* provenance inherited by the phis that replace the slots *)
        let aprov =
          let p = ref Prov.none in
          List.iter
            (fun b ->
              List.iter (fun i -> if i.id = aid then p := i.prov) b.instrs)
            f.blocks;
          !p
        in
        let dom = Dom.compute f in
        let df = dominance_frontiers f dom in
        let live = Cfg.reachable f in
        (* def blocks per slot *)
        let defs_of slot =
          List.filter_map
            (function
              | AStore (b, _, _, o, _) when o = slot.off -> Some b
              | _ -> None)
            accesses
        in
        (* iterated dominance frontier -> phi placement *)
        let phi_blocks slot =
          let result = Hashtbl.create 8 in
          let work = Queue.create () in
          List.iter (fun b -> Queue.add b work) (defs_of slot);
          let seen = Hashtbl.create 8 in
          while not (Queue.is_empty work) do
            let b = Queue.pop work in
            List.iter
              (fun d ->
                if Hashtbl.mem live d && not (Hashtbl.mem result d) then begin
                  Hashtbl.replace result d ();
                  if not (Hashtbl.mem seen d) then begin
                    Hashtbl.replace seen d ();
                    Queue.add d work
                  end
                end)
              (Option.value ~default:[] (Hashtbl.find_opt df b))
          done;
          result
        in
        (* create (still-empty) phi nodes *)
        let phi_of : (int * int, int) Hashtbl.t = Hashtbl.create 8 in
        (* (block, slot off) -> phi id *)
        let phi_incoming : (int, (int * value) list ref) Hashtbl.t =
          Hashtbl.create 8
        in
        List.iter
          (fun slot ->
            let pbs = phi_blocks slot in
            Hashtbl.iter
              (fun bid () ->
                let id = f.next_id in
                f.next_id <- id + 1;
                Hashtbl.replace phi_of (bid, slot.off) id;
                Hashtbl.replace phi_incoming id (ref []))
              pbs)
          slots;
        (* rename via dominator-tree walk *)
        let children = Hashtbl.create 16 in
        List.iter
          (fun b ->
            if Hashtbl.mem live b.bid then
              match Dom.idom dom b.bid with
              | Some p when p <> b.bid ->
                Hashtbl.replace children p
                  (b.bid :: Option.value ~default:[] (Hashtbl.find_opt children p))
              | _ -> ())
          f.blocks;
        let subst : (int, value) Hashtbl.t = Hashtbl.create 16 in
        let slot_at off = List.find (fun s -> s.off = off) slots in
        let rec walk bid (env : (int * value) list) =
          let blk = find_block f bid in
          (* phis defined here enter the environment *)
          let env = ref env in
          List.iter
            (fun slot ->
              match Hashtbl.find_opt phi_of (bid, slot.off) with
              | Some pid ->
                env := (slot.off, V pid) :: List.remove_assoc slot.off !env
              | None -> ())
            slots;
          (* rewrite the straight-line body *)
          let out = ref [] in
          List.iter
            (fun i ->
              match i.op with
              | Load (t, V p, _) when Hashtbl.mem derived p ->
                let off = Hashtbl.find derived p in
                let slot = slot_at off in
                let cur =
                  Option.value ~default:(Undef slot.sty)
                    (List.assoc_opt off !env)
                in
                let casts, cv =
                  coerce f ~prov:i.prov ~from_t:slot.sty ~to_t:t cur
                in
                (match cv with
                 | Some v ->
                   out := List.rev_append casts !out;
                   Hashtbl.replace subst i.id v;
                   if !Prov.enabled then
                     Prov.record ~pass:"mem2reg" ~action:Prov.Merged
                       ~prov:i.prov
                       ~detail:
                         (Printf.sprintf "stack load at offset %d promoted \
                                          to SSA value" off)
                 | None -> out := i :: !out)
              | Store (t, v, V p, _) when Hashtbl.mem derived p ->
                let off = Hashtbl.find derived p in
                let slot = slot_at off in
                let casts, cv =
                  coerce f ~prov:i.prov ~from_t:t ~to_t:slot.sty v
                in
                (match cv with
                 | Some v ->
                   out := List.rev_append casts !out;
                   env := (off, v) :: List.remove_assoc off !env;
                   if !Prov.enabled then
                     Prov.record ~pass:"mem2reg" ~action:Prov.Deleted
                       ~prov:i.prov
                       ~detail:
                         (Printf.sprintf "stack store at offset %d promoted \
                                          (value forwarded)" off)
                 | None -> out := i :: !out)
              | _ -> out := i :: !out)
            blk.instrs;
          blk.instrs <- List.rev !out;
          (* feed successors' phis *)
          List.iter
            (fun s ->
              List.iter
                (fun slot ->
                  match Hashtbl.find_opt phi_of (s, slot.off) with
                  | Some pid ->
                    let cur =
                      Option.value ~default:(Undef slot.sty)
                        (List.assoc_opt slot.off !env)
                    in
                    let r = Hashtbl.find phi_incoming pid in
                    r := (bid, cur) :: !r
                  | None -> ())
                slots)
            (successors blk.term);
          (* recurse into dominated blocks *)
          List.iter
            (fun c -> walk c !env)
            (Option.value ~default:[] (Hashtbl.find_opt children bid));
        in
        walk (entry_block f).bid [];
        (* materialize phi nodes *)
        Hashtbl.iter
          (fun (bid, off) pid ->
            let slot = slot_at off in
            let blk = find_block f bid in
            let incoming = !(Hashtbl.find phi_incoming pid) in
            blk.instrs <-
              { id = pid; ty = Some slot.sty; op = Phi (slot.sty, incoming);
                prov = aprov }
              :: blk.instrs)
          phi_of;
        (* remove the alloca and derived geps *)
        List.iter
          (fun b ->
            b.instrs <-
              List.filter
                (fun i ->
                  let drop =
                    Hashtbl.mem derived i.id
                    && (i.id = aid || match i.op with Gep _ -> true
                                                    | Alloca _ -> true
                                                    | _ -> false)
                  in
                  if drop && !Prov.enabled then
                    Prov.record ~pass:"mem2reg" ~action:Prov.Deleted
                      ~prov:i.prov
                      ~detail:
                        (if i.id = aid then "promoted alloca removed"
                         else "derived stack address removed");
                  not drop)
                b.instrs)
          f.blocks;
        Util.apply_subst f subst;
        true
      end)

let run (f : func) : bool =
  let allocas =
    List.concat_map
      (fun b ->
        List.filter_map
          (fun i -> match i.op with Alloca _ -> Some i.id | _ -> None)
          b.instrs)
      f.blocks
  in
  List.fold_left (fun acc aid -> promote_alloca f aid || acc) false allocas
