(** Loop-invariant code motion: hoist pure computations (and loads,
    when the loop is store/call free) out of natural loops into the
    preheader. *)

open Obrew_ir
open Ins
module Prov = Obrew_provenance.Provenance

(* natural loops: (header, body set, preheader) *)
let loops (f : func) : (int * (int, unit) Hashtbl.t * int) list =
  Cfg.prune_unreachable f;
  let dom = Dom.compute f in
  let preds = Cfg.predecessors f in
  let backs =
    List.concat_map
      (fun (b : block) ->
        List.filter_map
          (fun s -> if Dom.dominates dom s b.bid then Some (b.bid, s) else None)
          (successors b.term))
      f.blocks
  in
  (* merge loops sharing a header *)
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun (latch, header) ->
      let body =
        match Hashtbl.find_opt by_header header with
        | Some b -> b
        | None ->
          let b = Hashtbl.create 8 in
          Hashtbl.replace b header ();
          Hashtbl.replace by_header header b;
          b
      in
      let rec up x =
        if not (Hashtbl.mem body x) then begin
          Hashtbl.replace body x ();
          List.iter up (Option.value ~default:[] (Hashtbl.find_opt preds x))
        end
      in
      up latch)
    backs;
  Hashtbl.fold
    (fun header body acc ->
      let outside =
        List.filter
          (fun p -> not (Hashtbl.mem body p))
          (Option.value ~default:[] (Hashtbl.find_opt preds header))
      in
      match outside with
      | [ pre ] -> (header, body, pre) :: acc
      | _ -> acc)
    by_header []

(* pure and safe to execute speculatively (division can trap) *)
let hoistable = function
  | Bin ((SDiv | SRem | UDiv | URem), _, _, _) -> false
  | Bin _ | FBin _ | Icmp _ | Fcmp _ | Select _ | Cast _ | Gep _
  | ExtractElt _ | InsertElt _ | Shuffle _ | Intr _ -> true
  | Load _ | Store _ | Phi _ | CallDirect _ | CallPtr _ | Alloca _ -> false

let run (f : func) : bool =
  let changed = ref false in
  List.iter
    (fun (_, body, pre) ->
      let in_body b = Hashtbl.mem body b in
      (* ids defined inside the loop *)
      let body_defs = Hashtbl.create 32 in
      List.iter
        (fun (b : block) ->
          if in_body b.bid then
            List.iter (fun i -> Hashtbl.replace body_defs i.id ()) b.instrs)
        f.blocks;
      let has_side_effects =
        List.exists
          (fun (b : block) ->
            in_body b.bid
            && List.exists
                 (fun i ->
                   match i.op with
                   | Store _ | CallDirect _ | CallPtr _ -> true
                   | _ -> false)
                 b.instrs)
          f.blocks
      in
      let pre_blk = find_block f pre in
      let progress = ref true in
      while !progress do
        progress := false;
        List.iter
          (fun (b : block) ->
            if in_body b.bid then begin
              let hoisted, kept =
                List.partition
                  (fun i ->
                    let ok_op =
                      hoistable i.op
                      || (match i.op with
                          | Load _ -> not has_side_effects
                          | _ -> false)
                    in
                    ok_op
                    && List.for_all
                         (fun v ->
                           match v with
                           | V id -> not (Hashtbl.mem body_defs id)
                           | _ -> true)
                         (operands i.op))
                  b.instrs
              in
              if hoisted <> [] then begin
                List.iter (fun i -> Hashtbl.remove body_defs i.id) hoisted;
                if !Prov.enabled then
                  List.iter
                    (fun i ->
                      Prov.record ~pass:"licm" ~action:Prov.Hoisted
                        ~prov:i.prov
                        ~detail:
                          (Printf.sprintf
                             "loop-invariant %%%d hoisted to preheader bb%d"
                             i.id pre))
                    hoisted;
                pre_blk.instrs <- pre_blk.instrs @ hoisted;
                b.instrs <- kept;
                progress := true;
                changed := true
              end
            end)
          f.blocks
      done)
    (loops f);
  !changed
