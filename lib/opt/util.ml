(** Shared helpers for IR passes. *)

open Obrew_ir
open Ins

(** Map from value id to its defining instruction. *)
let def_table (f : func) : (int, instr) Hashtbl.t =
  let t = Hashtbl.create 64 in
  List.iter
    (fun b -> List.iter (fun i -> Hashtbl.replace t i.id i) b.instrs)
    f.blocks;
  t

(** Map from value id to the block defining it. *)
let def_block (f : func) : (int, int) Hashtbl.t =
  let t = Hashtbl.create 64 in
  List.iter
    (fun b -> List.iter (fun i -> Hashtbl.replace t i.id b.bid) b.instrs)
    f.blocks;
  t

(** Follow substitution chains to a fixpoint. *)
let rec resolve (map : (int, value) Hashtbl.t) (v : value) : value =
  match v with
  | V id -> (
    match Hashtbl.find_opt map id with
    | Some v' when v' <> v -> resolve map v'
    | _ -> v)
  | CVec (t, vs) -> CVec (t, List.map (resolve map) vs)
  | _ -> v

(** Apply a substitution map over every operand in the function. *)
let apply_subst (f : func) (map : (int, value) Hashtbl.t) =
  if Hashtbl.length map > 0 then
    List.iter
      (fun b ->
        b.instrs <-
          List.map
            (fun i -> { i with op = map_operands (resolve map) i.op })
            b.instrs;
        b.term <- map_term_operands (resolve map) b.term)
      f.blocks

(** Number of uses of each value id (operands + terminators). *)
let use_counts (f : func) : (int, int) Hashtbl.t =
  let t = Hashtbl.create 64 in
  let rec count = function
    | V id ->
      Hashtbl.replace t id (1 + Option.value ~default:0 (Hashtbl.find_opt t id))
    | CVec (_, vs) -> List.iter count vs
    | _ -> ()
  in
  List.iter
    (fun b ->
      List.iter (fun i -> List.iter count (operands i.op)) b.instrs;
      List.iter count (term_operands b.term))
    f.blocks;
  t

(** Type environment for {!Verify.type_of_value}. *)
let type_env (f : func) : (int, ty) Hashtbl.t =
  let t = Hashtbl.create 64 in
  List.iter2 (fun ty id -> Hashtbl.replace t id ty) f.sg.args f.params;
  List.iter
    (fun b ->
      List.iter
        (fun i -> match i.ty with Some ty -> Hashtbl.replace t i.id ty
                                | None -> ())
        b.instrs)
    f.blocks;
  t

let ty_of env v = Verify.type_of_value env v

(** Remap all value ids and block ids in a function by [fid]/[fblk]
    (used by inlining and unrolling when splicing blocks). *)
let remap_instr ~fid ~fblk (i : instr) : instr =
  let rec rv = function
    | V id -> V (fid id)
    | CVec (t, vs) -> CVec (t, List.map rv vs)
    | v -> v
  in
  let op =
    match i.op with
    | Phi (t, ins) -> Phi (t, List.map (fun (b, v) -> (fblk b, rv v)) ins)
    | op -> map_operands rv op
  in
  { id = fid i.id; ty = i.ty; op; prov = i.prov }

let remap_term ~fid ~fblk (t : terminator) : terminator =
  let rec rv = function
    | V id -> V (fid id)
    | CVec (ty, vs) -> CVec (ty, List.map rv vs)
    | v -> v
  in
  match t with
  | Ret v -> Ret (Option.map rv v)
  | Br b -> Br (fblk b)
  | CondBr (c, a, b) -> CondBr (rv c, fblk a, fblk b)
  | Unreachable -> Unreachable
