(** Peephole combining over the SSA graph — the stand-in for LLVM's
    instcombine.  Includes the cleanups the paper's lifting strategy
    relies on (Sec. III-C): facet bitcast/extract/insert/shuffle
    elimination, GEP canonicalization, cast chains, and constant-memory
    load folding used by parameter fixation (Sec. IV). *)

open Obrew_ir
open Ins
module Prov = Obrew_provenance.Provenance

type ctx = {
  dfn : int -> op option;        (* defining op of a value id *)
  tenv : (int, ty) Hashtbl.t;
  fast_math : bool;
  (* read [len] constant bytes at [addr], if that address range is
     known-constant (globals or fixed memory regions) *)
  const_load : addr:int -> len:int -> string option;
  global_lookup : string -> global option;
}

type outcome = Keep | Value of value | Op of op

let czero t = CInt (t, 0L)
let is_zero = function CInt (_, 0L) -> true | _ -> false
let is_one = function CInt (_, 1L) -> true | _ -> false
let is_allones t = function
  | CInt (_, v) ->
    Interp.trunc_bits (ty_bits t) v = Interp.trunc_bits (ty_bits t) (-1L)
  | _ -> false

let def ctx = function V id -> ctx.dfn id | _ -> None

(* Resolve a pointer value to (Global g, byte offset) or (absolute
   address) when statically known, looking through GEPs. *)
let rec ptr_root ctx (v : value) : [ `Global of string * int | `Abs of int ] option =
  match v with
  | Global g -> Some (`Global (g, 0))
  | CPtr a -> Some (`Abs a)
  | V _ -> (
    match def ctx v with
    | Some (Gep (base, elts)) ->
      let rec const_off acc = function
        | [] -> Some acc
        | GConst c :: tl -> const_off (acc + c) tl
        | GScaled (CInt (_, x), s) :: tl ->
          const_off (acc + (Int64.to_int x * s)) tl
        | GScaled _ :: _ -> None
      in
      (match const_off 0 elts, ptr_root ctx base with
       | Some off, Some (`Global (g, o)) -> Some (`Global (g, o + off))
       | Some off, Some (`Abs a) -> Some (`Abs (a + off))
       | _ -> None)
    | Some (Cast (IntToPtr, _, CInt (_, x), _)) ->
      Some (`Abs (Int64.to_int x))
    | _ -> None)
  | _ -> None

(* Read a constant of type [t] at a statically-known location. *)
let try_const_load ctx t (p : value) : value option =
  match ptr_root ctx p with
  | Some (`Global (g, off)) -> (
    match ctx.global_lookup g with
    | Some gl when gl.constant ->
      let len = ty_bytes t in
      if off >= 0 && off + len <= String.length gl.bytes then begin
        let buf = Bytes.create (max 16 len) in
        Bytes.blit_string gl.bytes off buf 0 len;
        Fold.const_of_cv t (Interp.read_cv buf 0 t)
      end
      else None
    | _ -> None)
  | Some (`Abs a) -> (
    let len = ty_bytes t in
    match ctx.const_load ~addr:a ~len with
    | Some bytes ->
      let buf = Bytes.create (max 16 len) in
      Bytes.blit_string bytes 0 buf 0 len;
      Fold.const_of_cv t (Interp.read_cv buf 0 t)
    | None -> None)
  | None -> None

(* --- GEP canonicalization ------------------------------------------- *)

let rec canon_elts ctx (elts : gep_elt list) : gep_elt list * bool =
  let changed = ref false in
  let out =
    List.concat_map
      (fun e ->
        match e with
        | GConst 0 -> changed := true; []
        | GConst _ -> [ e ]
        | GScaled (CInt (_, x), s) ->
          changed := true;
          let c = Int64.to_int x * s in
          if c = 0 then [] else [ GConst c ]
        | GScaled (v, s) -> (
          match def ctx v with
          | Some (Bin (Add, _, x, CInt (_, c))) ->
            changed := true;
            [ GScaled (x, s); GConst (Int64.to_int c * s) ]
          | Some (Bin (Sub, _, x, CInt (_, c))) ->
            changed := true;
            [ GScaled (x, s); GConst (-Int64.to_int c * s) ]
          | Some (Bin (Shl, _, x, CInt (_, c)))
            when Int64.to_int c >= 0 && Int64.to_int c < 32 ->
            changed := true;
            [ GScaled (x, s lsl Int64.to_int c) ]
          | Some (Bin (Mul, _, x, CInt (_, c))) ->
            changed := true;
            [ GScaled (x, s * Int64.to_int c) ]
          | Some (Bin (Add, _, x, y)) when s <= 8 ->
            changed := true;
            [ GScaled (x, s); GScaled (y, s) ]
          | _ -> [ e ]))
      elts
  in
  (* merge constants, merge same-value scales *)
  let consts, scaled =
    List.partition_map
      (function GConst c -> Left c | GScaled (v, s) -> Right (v, s))
      out
  in
  let const_sum = List.fold_left ( + ) 0 consts in
  let merged =
    List.fold_left
      (fun acc (v, s) ->
        match List.assoc_opt v acc with
        | Some s0 ->
          changed := true;
          (v, s0 + s) :: List.remove_assoc v acc
        | None -> (v, s) :: acc)
      [] scaled
    |> List.rev
  in
  let out =
    List.map (fun (v, s) -> GScaled (v, s)) merged
    @ (if const_sum <> 0 then [ GConst const_sum ] else [])
  in
  if List.length consts > 1 then changed := true;
  if !changed then
    (* re-canonicalize in case new opportunities appeared *)
    let out', _ = canon_elts ctx out in
    (out', true)
  else (out, false)

(* --- the rule set ---------------------------------------------------- *)

let simplify ctx (i : instr) : outcome =
  (* constant folding first *)
  match Fold.fold_op i.ty i.op with
  | Some v -> Value v
  | None -> (
    match i.op with
    | Bin (op, t, a, b) -> (
      (* canonicalize constants to the right for commutative ops *)
      let commutes = match op with
        | Add | Mul | And | Or | Xor -> true | _ -> false
      in
      if commutes && Fold.is_const a && not (Fold.is_const b) then
        Op (Bin (op, t, b, a))
      else
        match op, a, b with
        | Add, x, z when is_zero z -> Value x
        | Sub, x, z when is_zero z -> Value x
        | Sub, x, y when x = y && Fold.is_const x = false -> Value (czero t)
        | Mul, x, o when is_one o -> Value x
        | Mul, _, z when is_zero z -> Value (czero t)
        | (And | Or), x, y when x = y -> Value x
        | And, _, z when is_zero z -> Value (czero t)
        | And, x, m when is_allones t m -> Value x
        | Or, x, z when is_zero z -> Value x
        | Or, _, m when is_allones t m -> Value m
        | Xor, x, z when is_zero z -> Value x
        | Xor, x, y when x = y -> Value (czero t)
        | (Shl | LShr | AShr), x, z when is_zero z -> Value x
        | Sub, x, CInt (ct, c) when t <> I1 ->
          Op (Bin (Add, t, x, CInt (ct, Int64.neg c)))
        | Add, x, CInt (_, c2) -> (
          match def ctx x with
          | Some (Bin (Add, t', y, CInt (ct, c1))) when t' = t ->
            Op (Bin (Add, t, y, CInt (ct, Int64.add c1 c2)))
          | _ -> Keep)
        | _ -> Keep)
    | FBin (op, a0, b0, c0) -> (
      match op, b0, c0 with
      (* x*1.0 and x/1.0 are exact identities; x±0.0 needs fast-math
         because of signed zeros, exactly like LLVM's nsz flag *)
      | FAdd, x, CF64 0.0 when ctx.fast_math -> Value x
      | FAdd, CF64 0.0, x when ctx.fast_math -> Value x
      | FSub, x, CF64 0.0 when ctx.fast_math -> Value x
      | FMul, x, CF64 1.0 -> Value x
      | FMul, CF64 1.0, x -> Value x
      | FDiv, x, CF64 1.0 -> Value x
      | _ -> ignore a0; Keep)
    | Icmp (p, t, a, b) -> (
      match p, def ctx a, b with
      (* icmp eq/ne (sub x y), 0  -->  icmp eq/ne x y   (sub wraps) *)
      | (Eq | Ne), Some (Bin (Sub, t', x, y)), z
        when is_zero z && t' = t ->
        Op (Icmp (p, t, x, y))
      (* icmp eq/ne (xor x y), 0  -->  icmp eq/ne x y *)
      | (Eq | Ne), Some (Bin (Xor, t', x, y)), z
        when is_zero z && t' = t ->
        Op (Icmp (p, t, x, y))
      | (Eq | Ne), Some (Cast (Zext, st, x, _)), z when is_zero z ->
        Op (Icmp (p, st, x, czero st))
      (* boolean comparisons collapse to the boolean itself *)
      | Ne, _, z when t = I1 && is_zero z -> Value a
      | Eq, _, CInt (I1, 1L) when t = I1 -> Value a
      | Eq, _, z when t = I1 && is_zero z ->
        Op (Bin (Xor, I1, a, CInt (I1, 1L)))
      | _ -> Keep)
    | Select (_, c, a, b) -> (
      if a = b then Value a
      else
        match def ctx c with
        (* select (icmp ne x 0) a b with x itself i1-ish: keep *)
        | _ -> Keep)
    | Cast (k, st, v, dt) -> (
      match k, def ctx v with
      | _, _ when st = dt && (k = Bitcast) -> Value v
      | Bitcast, Some (Cast (Bitcast, st0, x, _)) ->
        if st0 = dt then Value x else Op (Cast (Bitcast, st0, x, dt))
      | Trunc, Some (Cast (Zext, st0, x, _)) ->
        let sb = ty_bits st0 and db = ty_bits dt in
        if sb = db then Value x
        else if sb > db then Op (Cast (Trunc, st0, x, dt))
        else Op (Cast (Zext, st0, x, dt))
      | Trunc, Some (Cast (Sext, st0, x, _)) ->
        let sb = ty_bits st0 and db = ty_bits dt in
        if sb = db then Value x
        else if sb > db then Op (Cast (Trunc, st0, x, dt))
        else Op (Cast (Sext, st0, x, dt))
      | Trunc, Some (Cast (Trunc, st0, x, _)) -> Op (Cast (Trunc, st0, x, dt))
      | Zext, Some (Cast (Zext, st0, x, _)) -> Op (Cast (Zext, st0, x, dt))
      | Sext, Some (Cast (Sext, st0, x, _)) -> Op (Cast (Sext, st0, x, dt))
      | IntToPtr, Some (Cast (PtrToInt, (Ptr a), x, _)) when dt = Ptr a ->
        Value x
      | PtrToInt, Some (Cast (IntToPtr, st0, x, _)) ->
        if st0 = dt then Value x else Op (Cast (Zext, st0, x, dt))
      | _ -> Keep)
    | Gep (base, elts) -> (
      let elts, changed = canon_elts ctx elts in
      match def ctx base with
      | Some (Gep (base0, elts0)) -> Op (Gep (base0, elts0 @ elts))
      | _ ->
        if elts = [] then Value base
        else if changed then Op (Gep (base, elts))
        else Keep)
    | Load (t, p, _) -> (
      match try_const_load ctx t p with
      | Some c -> Value c
      | None -> Keep)
    | Phi (_, []) -> Keep
    | Phi (_, ins) -> (
      (* all inputs equal (ignoring self-references) -> that value *)
      let self = V i.id in
      let non_self = List.filter (fun (_, v) -> v <> self) ins in
      match non_self with
      | [] -> Keep
      | (_, v0) :: rest ->
        if List.for_all (fun (_, v) -> v = v0) rest then Value v0 else Keep)
    | ExtractElt (vt, v, lane) -> (
      match def ctx v with
      | Some (InsertElt (_, v0, s, l0)) ->
        if l0 = lane then Value s else Op (ExtractElt (vt, v0, lane))
      | Some (Shuffle (_, a, b, mask)) when lane < Array.length mask -> (
        let src = mask.(lane) in
        if src < 0 then
          Value (Undef (match vt with Vec (_, e) -> e | _ -> vt))
        else
          let n =
            match Hashtbl.find_opt ctx.tenv
                    (match a with V id -> id | _ -> -1)
            with
            | Some (Vec (n, _)) -> n
            | _ -> (
              match a with
              | CVec (Vec (n, _), _) | Undef (Vec (n, _)) -> n
              | _ -> -1)
          in
          if n < 0 then Keep
          else if src < n then Op (ExtractElt (vt, a, src))
          else Op (ExtractElt (vt, b, src - n)))
      | Some (Cast (Bitcast, st0, x, _)) when st0 = vt ->
        Op (ExtractElt (vt, x, lane))
      | _ -> Keep)
    | InsertElt _ -> Keep
    | Shuffle (rt, a, b, mask) -> (
      let n_of v =
        match v with
        | V id -> (
          match Hashtbl.find_opt ctx.tenv id with
          | Some (Vec (n, _)) -> Some n
          | _ -> None)
        | CVec (Vec (n, _), _) | Undef (Vec (n, _)) -> Some n
        | _ -> None
      in
      match n_of a with
      | Some n when rt = Vec (n, (match rt with Vec (_, e) -> e | t -> t)) ->
        (* identity shuffle on a *)
        let id_a = Array.length mask = n
                   && Array.for_all2 (fun i j -> i = j)
                        mask (Array.init n (fun i -> i)) in
        let id_b = Array.length mask = n
                   && Array.for_all2 (fun i j -> i = j + n)
                        mask (Array.init n (fun i -> i)) in
        if id_a then Value a
        else if id_b then Value b
        else Keep
      | _ -> Keep)
    | _ -> Keep)

(** One instcombine sweep over a function; true when anything changed. *)
let run_once ?(fast_math = false)
    ?(const_load = fun ~addr:_ ~len:_ -> None)
    ?(global_lookup = fun _ -> None) (f : func) : bool =
  let defs = Util.def_table f in
  let tenv = Util.type_env f in
  let ctx =
    { dfn =
        (fun id ->
          match Hashtbl.find_opt defs id with
          | Some i -> Some i.op
          | None -> None);
      tenv; fast_math; const_load; global_lookup }
  in
  let changed = ref false in
  let subst : (int, value) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun b ->
      b.instrs <-
        List.filter_map
          (fun i ->
            let i = { i with op = map_operands (Util.resolve subst) i.op } in
            match simplify ctx i with
            | Keep -> Some i
            | Value v ->
              changed := true;
              Hashtbl.replace subst i.id (Util.resolve subst v);
              if !Prov.enabled then begin
                (* attribute constant folds to the fold pass, constant
                   memory reads to the specializer, the rest to plain
                   combining *)
                let pass, action, detail =
                  match i.op with
                  | Load _ ->
                    ("instcombine", Prov.Specialized,
                     "load from constant memory folded to its value")
                  | _ ->
                    if Fold.fold_op i.ty i.op <> None then
                      ("fold", Prov.Specialized,
                       "constant expression folded")
                    else
                      ("instcombine", Prov.Merged,
                       "replaced by an equivalent existing value")
                in
                Prov.record ~pass ~action ~prov:i.prov ~detail
              end;
              None
            | Op op ->
              changed := true;
              let i' = { i with op } in
              Hashtbl.replace defs i.id i';
              if !Prov.enabled then
                Prov.record ~pass:"instcombine" ~action:Prov.Specialized
                  ~prov:i.prov ~detail:"rewritten to a simpler form";
              Some i')
          b.instrs)
    f.blocks;
  Util.apply_subst f subst;
  !changed

let run ?fast_math ?const_load ?global_lookup (f : func) : bool =
  let changed = ref false in
  let continue_ = ref true in
  let budget = ref 20 in
  while !continue_ && !budget > 0 do
    decr budget;
    let c = run_once ?fast_math ?const_load ?global_lookup f in
    changed := !changed || c;
    continue_ := c
  done;
  !changed
