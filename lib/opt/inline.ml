(** Function inlining.  Mirrors the paper's use of LLVM inlining:
    always-inline functions (the fixation wrapper marks the lifted
    callee always-inline, Sec. IV) are inlined unconditionally; other
    module-resolved calls are inlined under a size threshold.  Calls
    through known addresses ([CallPtr (CPtr a)], the shape the lifter
    produces for x86 [call]) are resolved via [resolve_addr]. *)

open Obrew_ir
open Ins
module Prov = Obrew_provenance.Provenance

let default_threshold = 220

(* Clone [callee] into [caller], parameters bound to [args].  Returns
   the entry block id of the clone and the returning blocks with their
   (remapped) return values; their terminators are left [Unreachable]
   for the caller to patch. *)
let clone_into (caller : func) (callee : func) (args : value list) :
    int * (int * value option) list =
  let id_map : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let arg_map : (int, value) Hashtbl.t = Hashtbl.create 8 in
  List.iter2 (fun pid arg -> Hashtbl.replace arg_map pid arg) callee.params
    args;
  let blk_map : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let next_bid =
    ref (1 + List.fold_left (fun m b -> max m b.bid) 0 caller.blocks)
  in
  List.iter
    (fun (b : block) ->
      Hashtbl.replace blk_map b.bid !next_bid;
      incr next_bid)
    callee.blocks;
  let fid id =
    match Hashtbl.find_opt id_map id with
    | Some x -> x
    | None ->
      let x = caller.next_id in
      caller.next_id <- x + 1;
      Hashtbl.replace id_map id x;
      x
  in
  let fblk b = Hashtbl.find blk_map b in
  let rec rv v =
    match v with
    | V id -> (
      match Hashtbl.find_opt arg_map id with
      | Some a -> a
      | None -> V (fid id))
    | CVec (t, vs) -> CVec (t, List.map rv vs)
    | _ -> v
  in
  let rets = ref [] in
  let cloned =
    List.map
      (fun (b : block) ->
        let instrs =
          List.map
            (fun i ->
              let op =
                match i.op with
                | Phi (t, ins) ->
                  Phi (t, List.map (fun (p, v) -> (fblk p, rv v)) ins)
                | op -> map_operands rv op
              in
              { id = fid i.id; ty = i.ty; op; prov = i.prov })
            b.instrs
        in
        let term =
          match b.term with
          | Ret v ->
            rets := (fblk b.bid, Option.map rv v) :: !rets;
            Unreachable
          | Br t -> Br (fblk t)
          | CondBr (c, t, e) -> CondBr (rv c, fblk t, fblk e)
          | Unreachable -> Unreachable
        in
        { bid = fblk b.bid; instrs; term })
      callee.blocks
  in
  caller.blocks <- caller.blocks @ cloned;
  (fblk (entry_block callee).bid, List.rev !rets)

(* Inline the call instruction with id [call_id] in block [bid]. *)
let inline_site (caller : func) (bid : int) (call_id : int)
    (callee : func) (args : value list) : unit =
  let blk = find_block caller bid in
  let rec split acc = function
    | [] ->
      Obrew_fault.Err.fail Obrew_fault.Err.Opt "inline: call site not found"
    | i :: tl when i.id = call_id -> (List.rev acc, i, tl)
    | i :: tl -> split (i :: acc) tl
  in
  let head, call, tail = split [] blk.instrs in
  (* clone first so fresh block ids do not collide with the tail's *)
  let entry_clone, rets = clone_into caller callee args in
  let tail_bid =
    1 + List.fold_left (fun m (b : block) -> max m b.bid) 0 caller.blocks
  in
  let tail_blk = { bid = tail_bid; instrs = tail; term = blk.term } in
  caller.blocks <- caller.blocks @ [ tail_blk ];
  (* successors' phis now come from the tail block *)
  List.iter
    (fun s ->
      let sb = find_block caller s in
      sb.instrs <-
        List.map
          (fun i ->
            match i.op with
            | Phi (t, ins) ->
              { i with
                op =
                  Phi
                    ( t,
                      List.map
                        (fun (p, v) -> ((if p = bid then tail_bid else p), v))
                        ins ) }
            | _ -> i)
          sb.instrs)
    (successors blk.term);
  blk.instrs <- head;
  blk.term <- Br entry_clone;
  (* patch returning blocks to jump to the tail *)
  List.iter
    (fun (rb, _) -> (find_block caller rb).term <- Br tail_bid)
    rets;
  (* wire up the call's result value *)
  let subst = Hashtbl.create 4 in
  (match call.ty with
   | None -> ()
   | Some t -> (
     match rets with
     | [] -> Hashtbl.replace subst call.id (Undef t)
     | [ (_, Some v) ] -> Hashtbl.replace subst call.id v
     | [ (_, None) ] -> Hashtbl.replace subst call.id (Undef t)
     | many ->
       let pid = caller.next_id in
       caller.next_id <- pid + 1;
       let incoming =
         List.map
           (fun (rb, v) -> (rb, Option.value ~default:(Undef t) v))
           many
       in
       tail_blk.instrs <-
         { id = pid; ty = Some t; op = Phi (t, incoming); prov = call.prov }
         :: tail_blk.instrs;
       Hashtbl.replace subst call.id (V pid)));
  Util.apply_subst caller subst

type config = {
  threshold : int;
  resolve_addr : int -> string option; (* code address -> module function *)
}

let default_config = { threshold = default_threshold; resolve_addr = (fun _ -> None) }

(* Find the next inlinable call site. *)
let find_site (m : modul) (cfg : config) (caller : func) :
    (int * int * func * value list) option =
  let candidate name args =
    match List.find_opt (fun g -> g.fname = name) m.funcs with
    | Some callee
      when callee.fname <> caller.fname
           && (callee.always_inline || Pp_ir.size callee <= cfg.threshold) ->
      Some (callee, args)
    | _ -> None
  in
  List.fold_left
    (fun acc (b : block) ->
      match acc with
      | Some _ -> acc
      | None ->
        List.fold_left
          (fun acc i ->
            match acc with
            | Some _ -> acc
            | None -> (
              match i.op with
              | CallDirect (name, _, args) -> (
                match candidate name args with
                | Some (callee, args) -> Some (b.bid, i.id, callee, args)
                | None -> None)
              | CallPtr (CPtr a, _, args) -> (
                match cfg.resolve_addr a with
                | Some name -> (
                  match candidate name args with
                  | Some (callee, args) -> Some (b.bid, i.id, callee, args)
                  | None -> None)
                | None -> None)
              | _ -> None))
          None b.instrs)
    None caller.blocks

(** Inline eligible call sites in [f]; bounded to avoid explosion. *)
let run ?(config = default_config) (m : modul) (f : func) : bool =
  let changed = ref false in
  let budget = ref 40 in
  let continue_ = ref true in
  while !continue_ && !budget > 0 do
    decr budget;
    match find_site m config f with
    | Some (bid, call_id, callee, args) ->
      if !Prov.enabled then begin
        let call_prov =
          match
            List.find_opt (fun i -> i.id = call_id)
              (find_block f bid).instrs
          with
          | Some i -> i.prov
          | None -> Prov.none
        in
        Prov.record ~pass:"inline" ~action:Prov.Specialized ~prov:call_prov
          ~detail:(Printf.sprintf "call inlined: %s" callee.fname)
      end;
      inline_site f bid call_id callee args;
      changed := true
    | None -> continue_ := false
  done;
  !changed
