(** CFG simplification: fold constant branches, remove unreachable
    blocks, merge straight-line block chains, and skip empty
    forwarding blocks. *)

open Obrew_ir
open Ins
module Prov = Obrew_provenance.Provenance

(* Retarget phi inputs in [blk] when predecessor [from] is renamed to
   [to_]. *)
let rename_phi_pred (blk : block) ~from ~to_ =
  blk.instrs <-
    List.map
      (fun i ->
        match i.op with
        | Phi (t, ins) ->
          { i with
            op = Phi (t, List.map (fun (p, v) ->
                          ((if p = from then to_ else p), v)) ins) }
        | _ -> i)
      blk.instrs

let fold_constant_branches (f : func) : bool =
  let changed = ref false in
  List.iter
    (fun b ->
      match b.term with
      | CondBr (CInt (I1, c), t, e) ->
        let taken = if c <> 0L then t else e in
        let dead = if c <> 0L then e else t in
        if dead <> taken then begin
          (* remove this phi edge in the dead target *)
          let db = find_block f dead in
          db.instrs <-
            List.map
              (fun i ->
                match i.op with
                | Phi (ty, ins) ->
                  { i with
                    op = Phi (ty, List.filter (fun (p, _) -> p <> b.bid) ins)
                  }
                | _ -> i)
              db.instrs
        end;
        if !Prov.enabled then begin
          let bprov =
            match List.rev b.instrs with
            | i :: _ -> i.prov
            | [] -> Prov.none
          in
          Prov.record ~pass:"simplifycfg" ~action:Prov.Specialized
            ~prov:bprov
            ~detail:
              (Printf.sprintf
                 "constant branch folded: bb%d now falls through to bb%d"
                 b.bid taken)
        end;
        b.term <- Br taken;
        changed := true
      | CondBr (_, t, e) when t = e ->
        b.term <- Br t;
        changed := true
      | _ -> ())
    f.blocks;
  !changed

(* Merge [b] with its unique successor [c] when [c] has exactly one
   predecessor. *)
let merge_chains (f : func) : bool =
  let changed = ref false in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    let preds = Cfg.predecessors f in
    let entry_bid = (entry_block f).bid in
    let mergeable =
      List.find_opt
        (fun b ->
          match b.term with
          | Br c when c <> b.bid && c <> entry_bid ->
            (match Hashtbl.find_opt preds c with
             | Some [ p ] -> p = b.bid
             | _ -> false)
          | _ -> false)
        f.blocks
    in
    match mergeable with
    | None -> ()
    | Some b ->
      let c =
        match b.term with
        | Br c -> c
        | _ ->
          Obrew_fault.Err.fail Obrew_fault.Err.Opt
            "simplifycfg: mergeable block lost its Br terminator"
      in
      let cb = find_block f c in
      (* phis in c have a single incoming: replace by their value *)
      let subst = Hashtbl.create 4 in
      let body =
        List.filter_map
          (fun i ->
            let merged v =
              Hashtbl.replace subst i.id v;
              if !Prov.enabled then
                Prov.record ~pass:"simplifycfg" ~action:Prov.Merged
                  ~prov:i.prov
                  ~detail:
                    (Printf.sprintf
                       "single-input phi eliminated merging bb%d into bb%d"
                       c b.bid);
              None
            in
            match i.op with
            | Phi (_, [ (_, v) ]) -> merged v
            | Phi (_, ins) -> (
              (* sole pred: all inputs must come from b *)
              match List.assoc_opt b.bid ins with
              | Some v -> merged v
              | None -> Some i)
            | _ -> Some i)
          cb.instrs
      in
      b.instrs <- b.instrs @ body;
      b.term <- cb.term;
      f.blocks <- List.filter (fun x -> x.bid <> c) f.blocks;
      (* successors of c now have predecessor b instead of c *)
      List.iter
        (fun s -> rename_phi_pred (find_block f s) ~from:c ~to_:b.bid)
        (successors b.term);
      Util.apply_subst f subst;
      changed := true;
      continue_ := true
  done;
  !changed

(* Skip blocks that contain nothing but an unconditional branch, when
   the target's phis can be retargeted unambiguously. *)
let skip_empty_blocks (f : func) : bool =
  let changed = ref false in
  let entry_bid = (entry_block f).bid in
  let preds = Cfg.predecessors f in
  (* one block per invocation: the predecessor map goes stale once we
     retarget edges, and processing a second empty block against stale
     information can create duplicate phi inputs *)
  let empties =
    match
      List.find_opt
        (fun b ->
          b.bid <> entry_bid && b.instrs = []
          && (match b.term with Br t -> t <> b.bid | _ -> false))
        f.blocks
    with
    | Some b -> [ b ]
    | None -> []
  in
  List.iter
    (fun b ->
      let tgt =
        match b.term with
        | Br t -> t
        | _ ->
          Obrew_fault.Err.fail Obrew_fault.Err.Opt
            "simplifycfg: forwarding block lost its Br terminator"
      in
      let tb = find_block f tgt in
      let bpreds = try Hashtbl.find preds b.bid with Not_found -> [] in
      let tpreds = try Hashtbl.find preds tgt with Not_found -> [] in
      (* safe when no phi conflict: each pred of b must not already be
         a pred of tgt (else the phi would need merged values), and b
         must have at least one predecessor *)
      let conflict = List.exists (fun p -> List.mem p tpreds) bpreds in
      if bpreds <> [] && not conflict then begin
        (* retarget all branches to b directly to tgt *)
        List.iter
          (fun p ->
            let pb = find_block f p in
            let rt x = if x = b.bid then tgt else x in
            pb.term <-
              (match pb.term with
               | Br x -> Br (rt x)
               | CondBr (c, t, e) -> CondBr (c, rt t, rt e)
               | t -> t))
          bpreds;
        (* phis in tgt: duplicate the incoming from b for each pred *)
        tb.instrs <-
          List.map
            (fun i ->
              match i.op with
              | Phi (ty, ins) -> (
                match List.assoc_opt b.bid ins with
                | Some v ->
                  let ins' =
                    List.filter (fun (p, _) -> p <> b.bid) ins
                    @ List.map (fun p -> (p, v)) bpreds
                  in
                  { i with op = Phi (ty, ins') }
                | None -> i)
              | _ -> i)
            tb.instrs;
        b.term <- Unreachable;
        changed := true
      end)
    empties;
  if !changed then Cfg.prune_unreachable f;
  !changed

let run_once (f : func) : bool =
  let c1 = fold_constant_branches f in
  let reach0 = List.length f.blocks in
  Cfg.prune_unreachable f;
  let c2 = List.length f.blocks <> reach0 in
  let c3 = merge_chains f in
  let c4 = skip_empty_blocks f in
  c1 || c2 || c3 || c4

(* run to a fixpoint: skip_empty_blocks handles one block at a time *)
let run (f : func) : bool =
  let changed = ref false in
  let budget = ref 100 in
  while run_once f && !budget > 0 do
    decr budget;
    changed := true
  done;
  !changed
