(** Cycle cost model for the emulator (stands in for the Haswell
    testbed, see DESIGN.md Sec. 5).  A static throughput/latency blend:
    every effect the paper measures is an instruction count/kind
    difference, which this model preserves. *)

open Insn

type t = {
  alu : int;            (* simple integer op, mov, lea *)
  imul : int;
  idiv : int;
  load : int;           (* memory read *)
  store : int;          (* memory write *)
  fp_add : int;         (* scalar or packed add/sub/min/max *)
  fp_mul : int;
  fp_div : int;
  branch_taken : int;
  branch_not_taken : int;
  call : int;
  ret : int;
  push_pop : int;
  unaligned_vec : int;  (* penalty for a 16-byte access not 16-aligned *)
}

let default =
  { alu = 1; imul = 3; idiv = 24; load = 3; store = 2; fp_add = 3;
    fp_mul = 5; fp_div = 18; branch_taken = 2; branch_not_taken = 1;
    call = 4; ret = 4; push_pop = 2; unaligned_vec = 2 }

let has_mem_src = function OMem _ -> true | _ -> false
let xop_mem = function Xm _ -> true | Xr _ -> false

(* base cost excluding memory-access and branch-direction components,
   which the CPU adds when they are known *)
let base c (i : insn) =
  match i with
  | Mov _ | Movabs _ | Movzx _ | Movsx _ | Lea _ -> c.alu
  | Alu _ | Test _ | Shift _ | Unop _ | Cqo | Cdq -> c.alu
  | Imul2 _ | Imul3 _ -> c.imul
  | Idiv _ -> c.idiv
  | Push _ | Pop _ -> c.push_pop
  | Leave -> c.push_pop + c.alu
  | Call _ | CallInd _ -> c.call
  | Ret -> c.ret
  | Jmp _ | JmpInd _ -> c.branch_taken
  | Jcc _ -> 0 (* accounted by direction *)
  | Cmov _ | Setcc _ -> c.alu
  | SseMov _ | MovqXR _ | MovqRX _ -> c.alu
  | SseArith ((FAdd | FSub | FMin | FMax), _, _, _) -> c.fp_add
  | SseArith (FMul, _, _, _) -> c.fp_mul
  | SseArith ((FDiv | FSqrt), _, _, _) -> c.fp_div
  | SseLogic _ | Unpcklpd _ | Shufpd _ | Padd _ -> c.alu
  | Ucomis _ -> c.fp_add
  | Cvtsi2sd _ | Cvttsd2si _ | Cvtsd2ss _ | Cvtss2sd _ -> c.fp_add
  | Nop _ -> 1
  | Ud2 | Int3 -> 1

(* memory access cost: add load/store per memory operand *)
let mem_cost c (i : insn) =
  let ld b = if b then c.load else 0 in
  let st b = if b then c.store else 0 in
  match i with
  | Mov (_, d, s) -> ld (has_mem_src s) + st (has_mem_src d)
  | Movzx (_, _, _, s) | Movsx (_, _, _, s) -> ld (has_mem_src s)
  | Alu (Cmp, _, d, s) -> ld (has_mem_src s) + ld (has_mem_src d)
  | Alu (_, _, d, s) ->
    (* read-modify-write when destination is memory *)
    ld (has_mem_src s) + (if has_mem_src d then c.load + c.store else 0)
  | Test (_, d, s) -> ld (has_mem_src s) + ld (has_mem_src d)
  | Imul2 (_, _, s) | Imul3 (_, _, s, _) | Idiv (_, s) -> ld (has_mem_src s)
  | Shift (_, _, d, _) | Unop (_, _, d) ->
    if has_mem_src d then c.load + c.store else 0
  | Push s -> ld (has_mem_src s) + c.store
  | Pop d -> c.load + st (has_mem_src d)
  | Leave -> c.load
  | Call _ | CallInd _ -> c.store (* return address push *)
  | Ret -> c.load
  | Cmov (_, _, _, s) -> ld (has_mem_src s)
  | Setcc (_, d) -> st (has_mem_src d)
  | SseMov (_, d, s) -> ld (xop_mem s) + st (xop_mem d)
  | SseArith (_, _, _, s) | SseLogic (_, _, s) | Ucomis (_, _, s)
  | Cvttsd2si (_, _, s) | Cvtsd2ss (_, s) | Cvtss2sd (_, s)
  | Unpcklpd (_, s) | Shufpd (_, s, _) | Padd (_, _, s) -> ld (xop_mem s)
  | Cvtsi2sd (_, _, s) -> ld (has_mem_src s)
  | _ -> 0

let insn_cost c i = base c i + mem_cost c i

(** Static per-instruction costs for a pre-decoded block (the dynamic
    branch-direction and misalignment penalties are added by the CPU at
    execution time). *)
let insn_costs c (insns : insn array) : int array =
  Array.map (insn_cost c) insns
