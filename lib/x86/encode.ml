(** Binary encoder: {!Insn.insn} values to x86-64 machine code bytes.

    Control-flow targets are always encoded with rel32 displacements so
    that instruction lengths do not depend on final placement, which
    lets {!assemble} lay out code in two simple passes. *)

open Insn
open Obrew_fault

(* encoder failures are typed [Err.Encode] errors *)
let err fmt = Err.fail Err.Encode fmt

let fits_int8 v = v >= -128 && v <= 127
let fits_int32 (v : int64) =
  Int64.compare v (-2147483648L) >= 0 && Int64.compare v 2147483647L <= 0

type rm = RmReg of Reg.gpr | RmReg8H of Reg.gpr | RmMem of mem_addr

let rm_of_operand = function
  | OReg r -> RmReg r
  | OReg8H r -> RmReg8H r
  | OMem m -> RmMem m
  | OImm _ -> err "immediate cannot be a ModRM operand"

let buf_byte buf x = Buffer.add_char buf (Char.chr (x land 0xff))

let buf_i32 buf (v : int) =
  buf_byte buf v;
  buf_byte buf (v asr 8);
  buf_byte buf (v asr 16);
  buf_byte buf (v asr 24)

let buf_imm buf w (v : int64) =
  let x = Int64.to_int v in
  match w with
  | W8 -> buf_byte buf x
  | W16 -> buf_byte buf x; buf_byte buf (x asr 8)
  | W32 | W64 -> buf_i32 buf x

let buf_i64 buf (v : int64) =
  for i = 0 to 7 do
    buf_byte buf (Int64.to_int (Int64.shift_right_logical v (8 * i)))
  done

(* An 8-bit access to spl/bpl/sil/dil needs a REX prefix; ah/ch/dh/bh
   must not have one. *)
let byte_reg_needs_rex r = List.mem r [ Reg.RSP; Reg.RBP; Reg.RSI; Reg.RDI ]

(** Emit prefixes + opcode + ModRM (+SIB +disp) for one instruction.
    [reg] is the value of the ModRM reg field (register index or
    opcode digit); [rm] the r/m operand. *)
let enc_modrm buf ~rex_w ~opsize16 ~mandatory ~force_rex ~no_rex ~opcode
    ~reg rm =
  (* segment prefix *)
  (match rm with
   | RmMem { seg = Some FS; _ } -> buf_byte buf 0x64
   | RmMem { seg = Some GS; _ } -> buf_byte buf 0x65
   | _ -> ());
  if opsize16 then buf_byte buf 0x66;
  List.iter (buf_byte buf) mandatory;
  (* compute REX bits *)
  let rex_r = if reg >= 8 then 1 else 0 in
  let rex_x, rex_b =
    match rm with
    | RmReg r -> (0, if Reg.index r >= 8 then 1 else 0)
    | RmReg8H _ -> (0, 0)
    | RmMem m ->
      let x =
        match m.index with
        | Some (i, _) when Reg.index i >= 8 -> 1
        | _ -> 0
      in
      let b =
        match m.base with Some r when Reg.index r >= 8 -> 1 | _ -> 0
      in
      (x, b)
  in
  let rex =
    0x40 lor (if rex_w then 8 else 0) lor (rex_r lsl 2) lor (rex_x lsl 1)
    lor rex_b
  in
  let need_rex = force_rex || rex <> 0x40 in
  if need_rex && no_rex then err "high-byte register incompatible with REX";
  if need_rex then buf_byte buf rex;
  List.iter (buf_byte buf) opcode;
  let regf = reg land 7 in
  (match rm with
   | RmReg r -> buf_byte buf (0xc0 lor (regf lsl 3) lor (Reg.index r land 7))
   | RmReg8H r ->
     (* high-byte encoding: 4 + index of rax..rbx *)
     let i = Reg.index r in
     if i > 3 then err "invalid high-byte register";
     buf_byte buf (0xc0 lor (regf lsl 3) lor (4 + i))
   | RmMem m when m.rip ->
     (* RIP-relative: mod=00 rm=101, no SIB; the stored displacement
        is the raw disp32 (relative to end of instruction), re-emitted
        verbatim so decode/encode round-trips are byte-identical *)
     if m.base <> None || m.index <> None then
       err "RIP-relative operand cannot carry base or index";
     buf_byte buf (0x00 lor (regf lsl 3) lor 5);
     buf_i32 buf m.disp
   | RmMem m ->
     let disp = m.disp in
     (match m.base, m.index with
      | None, None ->
        (* absolute: SIB with no base/index + disp32 *)
        buf_byte buf (0x00 lor (regf lsl 3) lor 4);
        buf_byte buf 0x25;
        buf_i32 buf disp
      | None, Some (idx, sc) ->
        if Reg.equal idx Reg.RSP then err "rsp cannot be an index register";
        buf_byte buf (0x00 lor (regf lsl 3) lor 4);
        let sbits =
          match sc with S1 -> 0 | S2 -> 1 | S4 -> 2 | S8 -> 3
        in
        buf_byte buf ((sbits lsl 6) lor ((Reg.index idx land 7) lsl 3) lor 5);
        buf_i32 buf disp
      | Some base, index ->
        let bidx = Reg.index base land 7 in
        let need_sib = index <> None || bidx = 4 in
        (* mod=00 with base rbp/r13 means disp32-no-base; avoid it *)
        let m0_ok = disp = 0 && bidx <> 5 in
        let md = if m0_ok then 0 else if fits_int8 disp then 1 else 2 in
        let rm_field = if need_sib then 4 else bidx in
        buf_byte buf ((md lsl 6) lor (regf lsl 3) lor rm_field);
        if need_sib then begin
          let sbits, ibits =
            match index with
            | None -> (0, 4)
            | Some (idx, sc) ->
              if Reg.equal idx Reg.RSP then
                err "rsp cannot be an index register";
              let sbits =
                match sc with S1 -> 0 | S2 -> 1 | S4 -> 2 | S8 -> 3
              in
              (sbits, Reg.index idx land 7)
          in
          buf_byte buf ((sbits lsl 6) lor (ibits lsl 3) lor bidx)
        end;
        if md = 1 then buf_byte buf disp
        else if md = 2 then buf_i32 buf disp))

(* Integer operation helpers: pick REX.W / 0x66 / byte opcodes from the
   operand width. *)
let wbits w = (w = W64, w = W16)

let force_rex_for w ops =
  w = W8
  && List.exists
       (function OReg r -> byte_reg_needs_rex r | _ -> false)
       ops

let no_rex_for ops =
  List.exists (function OReg8H _ -> true | _ -> false) ops

(** Encode [insn] assuming it is placed at virtual address [addr].
    All [target]s must be [Abs]. *)
let encode_at ~addr (i : insn) : string =
  let buf = Buffer.create 8 in
  let emit_modrm ?(mandatory = []) ~w ~opcode ~reg ops rm =
    let rex_w, opsize16 = wbits w in
    enc_modrm buf ~rex_w ~opsize16 ~mandatory ~force_rex:(force_rex_for w ops)
      ~no_rex:(no_rex_for ops) ~opcode ~reg rm
  in
  (* SSE helper: xmm reg field + xop rm, with mandatory prefix *)
  let emit_sse ?(mandatory = []) ?(rex_w = false) ~opcode ~reg xo =
    let rm = match xo with Xr x -> RmReg (Reg.of_index x) | Xm m -> RmMem m in
    enc_modrm buf ~rex_w ~opsize16:false ~mandatory ~force_rex:false
      ~no_rex:false ~opcode ~reg rm
  in
  let rel32 target =
    match target with
    | Abs t ->
      (* rel is relative to the end of the instruction *)
      buf_i32 buf (t - (addr + Buffer.length buf + 4))
    | Lbl l -> err "unresolved label .L%d" l
  in
  let sse_mov_enc k =
    (* (mandatory prefix, load opcode xmm<-rm, store opcode rm<-xmm) *)
    match k with
    | Movss -> ([ 0xf3 ], [ 0x0f; 0x10 ], [ 0x0f; 0x11 ])
    | Movsd -> ([ 0xf2 ], [ 0x0f; 0x10 ], [ 0x0f; 0x11 ])
    | Movups -> ([], [ 0x0f; 0x10 ], [ 0x0f; 0x11 ])
    | Movaps -> ([], [ 0x0f; 0x28 ], [ 0x0f; 0x29 ])
    | Movupd -> ([ 0x66 ], [ 0x0f; 0x10 ], [ 0x0f; 0x11 ])
    | Movapd -> ([ 0x66 ], [ 0x0f; 0x28 ], [ 0x0f; 0x29 ])
    | Movdqa -> ([ 0x66 ], [ 0x0f; 0x6f ], [ 0x0f; 0x7f ])
    | Movdqu -> ([ 0xf3 ], [ 0x0f; 0x6f ], [ 0x0f; 0x7f ])
    | Movq -> ([ 0xf3 ], [ 0x0f; 0x7e ], [ 0x66; 0x0f; 0xd6 ])
    (* movq store uses 66 0F D6; handled specially below *)
  in
  (match i with
   | Mov (w, dst, (OImm v as src)) ->
     if w = W64 && not (fits_int32 v) then
       err "mov imm64 does not fit in 32 bits; use Movabs";
     let opcode = if w = W8 then [ 0xc6 ] else [ 0xc7 ] in
     emit_modrm ~w ~opcode ~reg:0 [ dst; src ] (rm_of_operand dst);
     buf_imm buf (if w = W64 then W32 else w) v
   | Mov (w, OReg dst, src) ->
     let opcode = if w = W8 then [ 0x8a ] else [ 0x8b ] in
     emit_modrm ~w ~opcode ~reg:(Reg.index dst) [ OReg dst; src ]
       (rm_of_operand src)
   | Mov (_, OReg8H dst, src) ->
     emit_modrm ~w:W8 ~opcode:[ 0x8a ] ~reg:(4 + Reg.index dst)
       [ OReg8H dst; src ] (rm_of_operand src)
   | Mov (w, dst, OReg src) ->
     let opcode = if w = W8 then [ 0x88 ] else [ 0x89 ] in
     emit_modrm ~w ~opcode ~reg:(Reg.index src) [ dst; OReg src ]
       (rm_of_operand dst)
   | Mov (_, dst, OReg8H src) ->
     emit_modrm ~w:W8 ~opcode:[ 0x88 ] ~reg:(4 + Reg.index src)
       [ dst; OReg8H src ] (rm_of_operand dst)
   | Mov (_, _, _) -> err "invalid mov operand combination"
   | Movabs (r, v) ->
     let rex = 0x48 lor (if Reg.index r >= 8 then 1 else 0) in
     buf_byte buf rex;
     buf_byte buf (0xb8 lor (Reg.index r land 7));
     buf_i64 buf v
   | Movzx (dw, dst, sw, src) ->
     let opcode =
       match sw with
       | W8 -> [ 0x0f; 0xb6 ]
       | W16 -> [ 0x0f; 0xb7 ]
       | _ -> err "movzx source must be 8 or 16 bits"
     in
     let rex_w, opsize16 = wbits dw in
     enc_modrm buf ~rex_w ~opsize16 ~mandatory:[]
       ~force_rex:(force_rex_for sw [ src ])
       ~no_rex:(no_rex_for [ src ]) ~opcode ~reg:(Reg.index dst)
       (rm_of_operand src)
   | Movsx (dw, dst, sw, src) ->
     let opcode =
       match sw with
       | W8 -> [ 0x0f; 0xbe ]
       | W16 -> [ 0x0f; 0xbf ]
       | W32 -> [ 0x63 ] (* movsxd *)
       | W64 -> err "movsx from 64 bits is meaningless"
     in
     let rex_w, opsize16 = wbits dw in
     enc_modrm buf ~rex_w ~opsize16 ~mandatory:[]
       ~force_rex:(force_rex_for sw [ src ])
       ~no_rex:(no_rex_for [ src ]) ~opcode ~reg:(Reg.index dst)
       (rm_of_operand src)
   | Lea (dst, m) ->
     emit_modrm ~w:W64 ~opcode:[ 0x8d ] ~reg:(Reg.index dst) [] (RmMem m)
   | Alu (op, w, dst, OImm v) ->
     if w <> W8 && fits_int8 (Int64.to_int v) && fits_int32 v then begin
       emit_modrm ~w ~opcode:[ 0x83 ] ~reg:(alu_digit op) [ dst ]
         (rm_of_operand dst);
       buf_byte buf (Int64.to_int v)
     end
     else begin
       if w = W64 && not (fits_int32 v) then err "alu imm64 does not fit";
       let opcode = if w = W8 then [ 0x80 ] else [ 0x81 ] in
       emit_modrm ~w ~opcode ~reg:(alu_digit op) [ dst ] (rm_of_operand dst);
       buf_imm buf (if w = W64 then W32 else w) v
     end
   | Alu (op, w, OReg dst, src) ->
     (* r, r/m form *)
     let base = 8 * alu_digit op in
     let opcode = if w = W8 then [ base + 2 ] else [ base + 3 ] in
     emit_modrm ~w ~opcode ~reg:(Reg.index dst) [ OReg dst; src ]
       (rm_of_operand src)
   | Alu (op, w, dst, OReg src) ->
     let base = 8 * alu_digit op in
     let opcode = if w = W8 then [ base ] else [ base + 1 ] in
     emit_modrm ~w ~opcode ~reg:(Reg.index src) [ dst; OReg src ]
       (rm_of_operand dst)
   | Alu (_, _, _, _) -> err "unsupported ALU operand combination"
   | Test (w, dst, OImm v) ->
     let opcode = if w = W8 then [ 0xf6 ] else [ 0xf7 ] in
     emit_modrm ~w ~opcode ~reg:0 [ dst ] (rm_of_operand dst);
     buf_imm buf (if w = W64 then W32 else w) v
   | Test (w, dst, OReg src) ->
     let opcode = if w = W8 then [ 0x84 ] else [ 0x85 ] in
     emit_modrm ~w ~opcode ~reg:(Reg.index src) [ dst; OReg src ]
       (rm_of_operand dst)
   | Test (_, _, _) -> err "unsupported test operands"
   | Imul2 (w, dst, src) ->
     if w = W8 then err "imul needs 16/32/64-bit operands";
     emit_modrm ~w ~opcode:[ 0x0f; 0xaf ] ~reg:(Reg.index dst) []
       (rm_of_operand src)
   | Imul3 (w, dst, src, imm) ->
     if w = W8 then err "imul needs 16/32/64-bit operands";
     if fits_int8 (Int64.to_int imm) then begin
       emit_modrm ~w ~opcode:[ 0x6b ] ~reg:(Reg.index dst) []
         (rm_of_operand src);
       buf_byte buf (Int64.to_int imm)
     end
     else begin
       if not (fits_int32 imm) then err "imul imm does not fit";
       emit_modrm ~w ~opcode:[ 0x69 ] ~reg:(Reg.index dst) []
         (rm_of_operand src);
       buf_imm buf (if w = W64 then W32 else w) imm
     end
   | Idiv (w, src) ->
     let opcode = if w = W8 then [ 0xf6 ] else [ 0xf7 ] in
     emit_modrm ~w ~opcode ~reg:7 [ src ] (rm_of_operand src)
   | Cqo -> buf_byte buf 0x48; buf_byte buf 0x99
   | Cdq -> buf_byte buf 0x99
   | Shift (op, w, dst, ShImm n) ->
     let opcode = if w = W8 then [ 0xc0 ] else [ 0xc1 ] in
     emit_modrm ~w ~opcode ~reg:(shift_digit op) [ dst ] (rm_of_operand dst);
     buf_byte buf n
   | Shift (op, w, dst, ShCl) ->
     let opcode = if w = W8 then [ 0xd2 ] else [ 0xd3 ] in
     emit_modrm ~w ~opcode ~reg:(shift_digit op) [ dst ] (rm_of_operand dst)
   | Unop (Neg, w, dst) ->
     emit_modrm ~w
       ~opcode:(if w = W8 then [ 0xf6 ] else [ 0xf7 ])
       ~reg:3 [ dst ] (rm_of_operand dst)
   | Unop (Not, w, dst) ->
     emit_modrm ~w
       ~opcode:(if w = W8 then [ 0xf6 ] else [ 0xf7 ])
       ~reg:2 [ dst ] (rm_of_operand dst)
   | Unop (Inc, w, dst) ->
     emit_modrm ~w
       ~opcode:(if w = W8 then [ 0xfe ] else [ 0xff ])
       ~reg:0 [ dst ] (rm_of_operand dst)
   | Unop (Dec, w, dst) ->
     emit_modrm ~w
       ~opcode:(if w = W8 then [ 0xfe ] else [ 0xff ])
       ~reg:1 [ dst ] (rm_of_operand dst)
   | Push (OReg r) ->
     if Reg.index r >= 8 then buf_byte buf 0x41;
     buf_byte buf (0x50 lor (Reg.index r land 7))
   | Push (OImm v) ->
     if fits_int8 (Int64.to_int v) then begin
       buf_byte buf 0x6a; buf_byte buf (Int64.to_int v)
     end
     else begin
       if not (fits_int32 v) then err "push imm64 does not fit";
       buf_byte buf 0x68; buf_imm buf W32 v
     end
   | Push (OMem m) ->
     enc_modrm buf ~rex_w:false ~opsize16:false ~mandatory:[]
       ~force_rex:false ~no_rex:false ~opcode:[ 0xff ] ~reg:6 (RmMem m)
   | Push (OReg8H _) -> err "cannot push a high-byte register"
   | Pop (OReg r) ->
     if Reg.index r >= 8 then buf_byte buf 0x41;
     buf_byte buf (0x58 lor (Reg.index r land 7))
   | Pop (OMem m) ->
     enc_modrm buf ~rex_w:false ~opsize16:false ~mandatory:[]
       ~force_rex:false ~no_rex:false ~opcode:[ 0x8f ] ~reg:0 (RmMem m)
   | Pop _ -> err "invalid pop operand"
   | Leave -> buf_byte buf 0xc9
   | Call t -> buf_byte buf 0xe8; rel32 t
   | CallInd op ->
     enc_modrm buf ~rex_w:false ~opsize16:false ~mandatory:[]
       ~force_rex:false ~no_rex:false ~opcode:[ 0xff ] ~reg:2
       (rm_of_operand op)
   | Ret -> buf_byte buf 0xc3
   | Jmp t -> buf_byte buf 0xe9; rel32 t
   | JmpInd op ->
     enc_modrm buf ~rex_w:false ~opsize16:false ~mandatory:[]
       ~force_rex:false ~no_rex:false ~opcode:[ 0xff ] ~reg:4
       (rm_of_operand op)
   | Jcc (c, t) ->
     buf_byte buf 0x0f;
     buf_byte buf (0x80 lor cc_index c);
     rel32 t
   | Cmov (c, w, dst, src) ->
     if w = W8 then err "cmov has no 8-bit form";
     emit_modrm ~w ~opcode:[ 0x0f; 0x40 lor cc_index c ] ~reg:(Reg.index dst)
       [] (rm_of_operand src)
   | Setcc (c, dst) ->
     emit_modrm ~w:W8 ~opcode:[ 0x0f; 0x90 lor cc_index c ] ~reg:0 [ dst ]
       (rm_of_operand dst)
   | SseMov (Movq, (Xm _ as dst), Xr src) ->
     (* movq m64, xmm: 66 0F D6 *)
     emit_sse ~mandatory:[ 0x66 ] ~opcode:[ 0x0f; 0xd6 ] ~reg:src dst
   | SseMov (k, Xr dst, src) ->
     let mand, load, _ = sse_mov_enc k in
     emit_sse ~mandatory:mand ~opcode:load ~reg:dst src
   | SseMov (k, (Xm _ as dst), Xr src) ->
     let mand, _, store = sse_mov_enc k in
     emit_sse ~mandatory:mand ~opcode:store ~reg:src dst; ignore mand
   | SseMov (_, Xm _, Xm _) -> err "SSE mem-to-mem move is invalid"
   | MovqXR (x, r) ->
     emit_sse ~mandatory:[ 0x66 ] ~rex_w:true ~opcode:[ 0x0f; 0x6e ] ~reg:x
       (Xr (Reg.index r))
   | MovqRX (r, x) ->
     emit_sse ~mandatory:[ 0x66 ] ~rex_w:true ~opcode:[ 0x0f; 0x7e ] ~reg:x
       (Xr (Reg.index r))
   | SseArith (op, p, dst, src) ->
     let mand =
       match p with Sd -> [ 0xf2 ] | Ss -> [ 0xf3 ] | Pd -> [ 0x66 ]
                  | Ps -> []
     in
     let opc =
       match op with
       | FAdd -> 0x58 | FMul -> 0x59 | FSub -> 0x5c | FMin -> 0x5d
       | FDiv -> 0x5e | FMax -> 0x5f | FSqrt -> 0x51
     in
     emit_sse ~mandatory:mand ~opcode:[ 0x0f; opc ] ~reg:dst src
   | SseLogic (op, dst, src) ->
     let mand, opc =
       match op with
       | Pxor -> ([ 0x66 ], 0xef)
       | Pand -> ([ 0x66 ], 0xdb)
       | Por -> ([ 0x66 ], 0xeb)
       | Xorps -> ([], 0x57)
       | Xorpd -> ([ 0x66 ], 0x57)
       | Andps -> ([], 0x54)
       | Andpd -> ([ 0x66 ], 0x54)
     in
     emit_sse ~mandatory:mand ~opcode:[ 0x0f; opc ] ~reg:dst src
   | Ucomis (p, dst, src) ->
     let mand =
       match p with
       | Sd -> [ 0x66 ] | Ss -> []
       | Pd | Ps -> err "ucomis is scalar only"
     in
     emit_sse ~mandatory:mand ~opcode:[ 0x0f; 0x2e ] ~reg:dst src
   | Cvtsi2sd (x, w, src) ->
     let rm = rm_of_operand src in
     enc_modrm buf ~rex_w:(w = W64) ~opsize16:false ~mandatory:[ 0xf2 ]
       ~force_rex:false ~no_rex:false ~opcode:[ 0x0f; 0x2a ] ~reg:x rm
   | Cvttsd2si (r, w, src) ->
     let rm = match src with Xr x -> RmReg (Reg.of_index x) | Xm m -> RmMem m in
     enc_modrm buf ~rex_w:(w = W64) ~opsize16:false ~mandatory:[ 0xf2 ]
       ~force_rex:false ~no_rex:false ~opcode:[ 0x0f; 0x2c ]
       ~reg:(Reg.index r) rm
   | Cvtsd2ss (x, src) ->
     emit_sse ~mandatory:[ 0xf2 ] ~opcode:[ 0x0f; 0x5a ] ~reg:x src
   | Cvtss2sd (x, src) ->
     emit_sse ~mandatory:[ 0xf3 ] ~opcode:[ 0x0f; 0x5a ] ~reg:x src
   | Unpcklpd (x, src) ->
     emit_sse ~mandatory:[ 0x66 ] ~opcode:[ 0x0f; 0x14 ] ~reg:x src
   | Shufpd (x, src, imm) ->
     emit_sse ~mandatory:[ 0x66 ] ~opcode:[ 0x0f; 0xc6 ] ~reg:x src;
     buf_byte buf imm
   | Padd (w, x, src) ->
     let opc = match w with W32 -> 0xfe | W64 -> 0xd4
                          | _ -> err "padd supports dword/qword lanes"
     in
     emit_sse ~mandatory:[ 0x66 ] ~opcode:[ 0x0f; opc ] ~reg:x src
   | Nop n ->
     if n < 1 then err "nop length must be positive";
     for _ = 1 to n do buf_byte buf 0x90 done
   | Ud2 -> buf_byte buf 0x0f; buf_byte buf 0x0b
   | Int3 -> buf_byte buf 0xcc);
  Buffer.contents buf

(* Instruction lengths are placement-independent (branches are always
   rel32), so measuring a dummy encoding is exact. *)
let with_dummy_targets = function
  | Call (Lbl _) -> Call (Abs 0)
  | Jmp (Lbl _) -> Jmp (Abs 0)
  | Jcc (c, Lbl _) -> Jcc (c, Abs 0)
  | i -> i

let length (i : insn) = String.length (encode_at ~addr:0 (with_dummy_targets i))

(** Two-pass assembly of an item list at [base]: returns the machine
    code bytes together with the per-instruction address map and the
    label table. *)
let assemble ~base (items : item list) :
    string * (int * insn) list * (int, int) Hashtbl.t =
  Fault.point ~addr:base "encode.assemble";
  let labels = Hashtbl.create 16 in
  let addr = ref base in
  (* placed payloads: instructions, data quads, label-address movabs *)
  let placed =
    List.filter_map
      (fun it ->
        match it with
        | L l -> Hashtbl.replace labels l !addr; None
        | I i ->
          let a = !addr in
          addr := a + length i;
          Some (a, `I i)
        | Q t ->
          let a = !addr in
          addr := a + 8;
          Some (a, `Q t)
        | MovLbl (r, l) ->
          let a = !addr in
          addr := a + length (Movabs (r, 0L));
          Some (a, `M (r, l)))
      items
  in
  let resolve t =
    match t with
    | Abs _ -> t
    | Lbl l -> (
      match Hashtbl.find_opt labels l with
      | Some a -> Abs a
      | None -> err "undefined label .L%d" l)
  in
  let label_addr l =
    match resolve (Lbl l) with Abs a -> a | Lbl _ -> assert false
  in
  let resolved =
    List.map
      (fun (a, p) ->
        match p with
        | `I i ->
          let i =
            match i with
            | Call t -> Call (resolve t)
            | Jmp t -> Jmp (resolve t)
            | Jcc (c, t) -> Jcc (c, resolve t)
            | i -> i
          in
          (a, `I i)
        | `Q t -> (
          match resolve t with Abs x -> (a, `Q (Abs x)) | t -> (a, `Q t))
        | `M (r, l) -> (a, `I (Movabs (r, Int64.of_int (label_addr l)))))
      placed
  in
  let buf = Buffer.create 256 in
  List.iter
    (fun (a, p) ->
      match p with
      | `I i -> Buffer.add_string buf (encode_at ~addr:a i)
      | `Q (Abs x) ->
        let v = Int64.of_int x in
        for k = 0 to 7 do
          buf_byte buf
            (Int64.to_int (Int64.shift_right_logical v (8 * k)) land 0xff)
        done
      | `Q (Lbl _) -> assert false)
    resolved;
  (* the per-instruction address map excludes raw data quads *)
  let insns =
    List.filter_map (function a, `I i -> Some (a, i) | _, `Q _ -> None)
      resolved
  in
  (Buffer.contents buf, insns, labels)
