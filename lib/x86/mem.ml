(** Sparse paged byte-addressable memory for the emulated address
    space.  Little-endian, 4 KiB pages, allocated on first touch. *)

let page_bits = 12
let page_size = 1 lsl page_bits
let page_mask = page_size - 1

(* Direct-mapped software TLB.  Hot loops alternate between code,
   data-matrix and stack pages; a single-entry cache thrashes, and every
   miss pays a Hashtbl lookup (hash + compare + [Some] allocation).  Eight
   slots keyed by the low page-index bits make the steady state
   allocation-free. *)
let tlb_slots = 8

type t = {
  pages : (int, Bytes.t) Hashtbl.t;
  tlb_idx : int array; (* slot = idx land (tlb_slots - 1); -1 = empty *)
  tlb_page : Bytes.t array;
}

let create () =
  let p0 = Bytes.make page_size '\000' in
  let pages = Hashtbl.create 64 in
  Hashtbl.replace pages 0 p0;
  let t =
    { pages;
      tlb_idx = Array.make tlb_slots (-1);
      tlb_page = Array.make tlb_slots p0 }
  in
  t.tlb_idx.(0) <- 0;
  t

(** Deep copy for shadow execution: every allocated page is duplicated
    and the clone starts with a cold TLB, so neither side can observe
    writes made through the other. *)
let clone t =
  let pages = Hashtbl.create (max 64 (Hashtbl.length t.pages)) in
  Hashtbl.iter (fun idx p -> Hashtbl.replace pages idx (Bytes.copy p)) t.pages;
  let p0 =
    match Hashtbl.find_opt pages 0 with
    | Some p -> p
    | None ->
      let p = Bytes.make page_size '\000' in
      Hashtbl.replace pages 0 p;
      p
  in
  let c =
    { pages;
      tlb_idx = Array.make tlb_slots (-1);
      tlb_page = Array.make tlb_slots p0 }
  in
  c.tlb_idx.(0) <- 0;
  c

let page t idx =
  let slot = idx land (tlb_slots - 1) in
  if Array.unsafe_get t.tlb_idx slot = idx then Array.unsafe_get t.tlb_page slot
  else begin
    let p =
      match Hashtbl.find_opt t.pages idx with
      | Some p -> p
      | None ->
        let p = Bytes.make page_size '\000' in
        Hashtbl.replace t.pages idx p;
        p
    in
    Array.unsafe_set t.tlb_idx slot idx;
    Array.unsafe_set t.tlb_page slot p;
    p
  end

let read_u8 t a = Char.code (Bytes.get (page t (a lsr page_bits)) (a land page_mask))
let write_u8 t a v =
  Bytes.set (page t (a lsr page_bits)) (a land page_mask)
    (Char.chr (v land 0xff))

let read_u64 t a =
  let off = a land page_mask in
  if off <= page_size - 8 then
    Bytes.get_int64_le (page t (a lsr page_bits)) off
  else begin
    let v = ref 0L in
    for i = 7 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (read_u8 t (a + i)))
    done;
    !v
  end

let write_u64 t a (v : int64) =
  let off = a land page_mask in
  if off <= page_size - 8 then
    Bytes.set_int64_le (page t (a lsr page_bits)) off v
  else
    for i = 0 to 7 do
      write_u8 t (a + i)
        (Int64.to_int (Int64.shift_right_logical v (8 * i)))
    done

let read_u32 t a =
  let off = a land page_mask in
  if off <= page_size - 4 then
    (* two 16-bit immediate reads: no Int32 boxing on the hot path *)
    let p = page t (a lsr page_bits) in
    Bytes.get_uint16_le p off lor (Bytes.get_uint16_le p (off + 2) lsl 16)
  else
    read_u8 t a lor (read_u8 t (a + 1) lsl 8) lor (read_u8 t (a + 2) lsl 16)
    lor (read_u8 t (a + 3) lsl 24)

let write_u32 t a v =
  let off = a land page_mask in
  if off <= page_size - 4 then begin
    let p = page t (a lsr page_bits) in
    Bytes.set_uint16_le p off (v land 0xFFFF);
    Bytes.set_uint16_le p (off + 2) ((v lsr 16) land 0xFFFF)
  end
  else
    for i = 0 to 3 do
      write_u8 t (a + i) ((v lsr (8 * i)) land 0xff)
    done

let read_u16 t a = read_u8 t a lor (read_u8 t (a + 1) lsl 8)
let write_u16 t a v =
  write_u8 t a (v land 0xff);
  write_u8 t (a + 1) ((v lsr 8) land 0xff)

let read_f64 t a = Int64.float_of_bits (read_u64 t a)
let write_f64 t a v = write_u64 t a (Int64.bits_of_float v)

let write_bytes t a (s : string) =
  String.iteri (fun i c -> write_u8 t (a + i) (Char.code c)) s

let read_bytes t a len = String.init len (fun i -> Char.chr (read_u8 t (a + i)))
