(** Binary decoder: x86-64 machine code bytes to {!Insn.insn}.

    Covers exactly the encodings produced by {!Encode} plus the common
    short forms (rel8 jumps, [b8+r] move-immediate, RIP-relative
    addressing) so that foreign code following the same conventions
    also decodes.  AVX is rejected, mirroring the paper's scope. *)

open Insn
open Obrew_fault

module Tel = Obrew_telemetry.Telemetry

(* All decoder failures are typed [Err.Decode] errors; {!decode}
   attaches the faulting instruction address. *)
let err ?addr fmt = Err.fail ?addr Err.Decode fmt

type state = {
  read : int -> int; (* byte fetch from the virtual address space *)
  start : int;
  mutable pos : int;
  mutable seg : segment option;
  mutable opsize16 : bool;
  mutable repf2 : bool;
  mutable repf3 : bool;
  mutable rex : int option; (* raw REX byte *)
}

let u8 st =
  let b = st.read st.pos land 0xff in
  st.pos <- st.pos + 1;
  b

let i8 st =
  let b = u8 st in
  if b >= 128 then b - 256 else b

let u16 st =
  let lo = u8 st in
  lo lor (u8 st lsl 8)

let i32 st =
  let b0 = u8 st in
  let b1 = u8 st in
  let b2 = u8 st in
  let b3 = u8 st in
  let v = b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24) in
  if v land 0x80000000 <> 0 then v - (1 lsl 32) else v

let i64 st =
  let lo = Int64.of_int (i32 st) in
  let lo = Int64.logand lo 0xFFFFFFFFL in
  let hi = Int64.of_int (i32 st) in
  Int64.logor lo (Int64.shift_left hi 32)

let rex_w st = match st.rex with Some r -> r land 8 <> 0 | None -> false
let rex_r st = match st.rex with Some r -> (r land 4) lsl 1 | None -> 0
let rex_x st = match st.rex with Some r -> (r land 2) lsl 2 | None -> 0
let rex_b st = match st.rex with Some r -> (r land 1) lsl 3 | None -> 0

(* integer operand width from prefixes for non-byte opcodes *)
let opwidth st =
  if rex_w st then W64 else if st.opsize16 then W16 else W32

(** Decoded r/m: register or memory. *)
type rm_res = RReg of int | RMem of mem_addr

let decode_modrm st : int * rm_res =
  let modrm = u8 st in
  let md = modrm lsr 6 in
  let reg = ((modrm lsr 3) land 7) lor rex_r st in
  let rm = modrm land 7 in
  if md = 3 then (reg, RReg (rm lor rex_b st))
  else if md = 0 && rm = 5 then begin
    (* mod=00 rm=101 (no SIB): RIP+disp32.  The raw displacement is
       kept as decoded — it is relative to the end of the whole
       instruction (see {!Insn.mem_addr}), which consumers resolve
       once the instruction extent is known. *)
    let disp = i32 st in
    (reg, RMem { base = None; index = None; disp; seg = st.seg; rip = true })
  end
  else begin
    let base, index, force_disp32_nobase =
      if rm = 4 then begin
        let sib = u8 st in
        let sc = sib lsr 6 in
        let idx = ((sib lsr 3) land 7) lor rex_x st in
        let bs = (sib land 7) lor rex_b st in
        let index =
          (* idx = 4 (rsp slot, REX.X clear) means "no index"; with
             REX.X set the slot addresses r12, a valid index *)
          if idx = 4 then None
          else
            Some
              ( Reg.of_index idx,
                match sc with 0 -> S1 | 1 -> S2 | 2 -> S4 | _ -> S8 )
        in
        if md = 0 && bs land 7 = 5 then (None, index, true)
        else (Some (Reg.of_index bs), index, false)
      end
      else (Some (Reg.of_index (rm lor rex_b st)), None, false)
    in
    let disp =
      if force_disp32_nobase then i32 st
      else
        match md with 0 -> 0 | 1 -> i8 st | 2 -> i32 st
                    | m -> err "impossible ModRM mod %d" m
    in
    (reg, RMem { base; index; disp; seg = st.seg; rip = false })
  end

let gpr_operand st idx_w rm =
  match rm with
  | RReg i ->
    if idx_w = W8 && st.rex = None && i >= 4 && i <= 7 then
      OReg8H (Reg.of_index (i - 4))
    else OReg (Reg.of_index i)
  | RMem m -> OMem m

let reg_field_operand st w reg =
  if w = W8 && st.rex = None && reg >= 4 && reg <= 7 then
    `H (Reg.of_index (reg - 4))
  else `R (Reg.of_index reg)

let xop_of_rm = function RReg i -> Xr i | RMem m -> Xm m

let imm_for st w =
  match w with
  | W8 -> Int64.of_int (i8 st)
  | W16 ->
    let v = u16 st in
    Int64.of_int (if v >= 32768 then v - 65536 else v)
  | W32 | W64 -> Int64.of_int (i32 st)

(* Build a Mov-like two-operand insn where the reg field may be a
   high-byte register. *)
let mk_rr mk st w reg rm ~reg_is_dst =
  let rop =
    match reg_field_operand st w reg with
    | `R r -> OReg r
    | `H r -> OReg8H r
  in
  let mop = gpr_operand st w rm in
  if reg_is_dst then mk w rop mop else mk w mop rop

let sse_prec st =
  if st.repf2 then Sd else if st.repf3 then Ss
  else if st.opsize16 then Pd else Ps

let decode_0f st =
  let op = u8 st in
  match op with
  | 0x0b -> Ud2
  | 0x10 | 0x11 ->
    let k =
      if st.repf2 then Movsd else if st.repf3 then Movss
      else if st.opsize16 then Movupd else Movups
    in
    let reg, rm = decode_modrm st in
    if op = 0x10 then SseMov (k, Xr reg, xop_of_rm rm)
    else SseMov (k, xop_of_rm rm, Xr reg)
  | 0x14 ->
    if not st.opsize16 then err "unpcklps unsupported";
    let reg, rm = decode_modrm st in
    Unpcklpd (reg, xop_of_rm rm)
  | 0x1f ->
    (* multi-byte NOP: consume ModRM and report total length later *)
    let _ = decode_modrm st in
    Nop 1
  | 0x28 | 0x29 ->
    let k = if st.opsize16 then Movapd else Movaps in
    let reg, rm = decode_modrm st in
    if op = 0x28 then SseMov (k, Xr reg, xop_of_rm rm)
    else SseMov (k, xop_of_rm rm, Xr reg)
  | 0x2a ->
    if not st.repf2 then err "cvtsi2ss unsupported";
    let w = if rex_w st then W64 else W32 in
    let reg, rm = decode_modrm st in
    Cvtsi2sd (reg, w, gpr_operand st w rm)
  | 0x2c ->
    if not st.repf2 then err "cvttss2si unsupported";
    let w = if rex_w st then W64 else W32 in
    let reg, rm = decode_modrm st in
    Cvttsd2si (Reg.of_index reg, w, xop_of_rm rm)
  | 0x2e | 0x2f ->
    let p = if st.opsize16 then Sd else Ss in
    let reg, rm = decode_modrm st in
    Ucomis (p, reg, xop_of_rm rm)
  | b when b >= 0x40 && b <= 0x4f ->
    let w = opwidth st in
    let reg, rm = decode_modrm st in
    Cmov (cc_of_index (b land 0xf), w, Reg.of_index reg, gpr_operand st w rm)
  | 0x51 | 0x54 | 0x57 | 0x58 | 0x59 | 0x5c | 0x5d | 0x5e | 0x5f ->
    let reg, rm = decode_modrm st in
    let xo = xop_of_rm rm in
    (match op with
     | 0x54 ->
       SseLogic ((if st.opsize16 then Andpd else Andps), reg, xo)
     | 0x57 ->
       SseLogic ((if st.opsize16 then Xorpd else Xorps), reg, xo)
     | _ ->
       let p = sse_prec st in
       let a =
         match op with
         | 0x51 -> FSqrt | 0x58 -> FAdd | 0x59 -> FMul | 0x5c -> FSub
         | 0x5d -> FMin | 0x5e -> FDiv | 0x5f -> FMax
         | b -> err "impossible SSE arith opcode 0x%02x" b
       in
       SseArith (a, p, reg, xo))
  | 0x5a ->
    let reg, rm = decode_modrm st in
    if st.repf2 then Cvtsd2ss (reg, xop_of_rm rm)
    else if st.repf3 then Cvtss2sd (reg, xop_of_rm rm)
    else err "cvtps2pd unsupported"
  | 0x6e ->
    if not (st.opsize16 && rex_w st) then err "movd unsupported";
    let reg, rm = decode_modrm st in
    (match rm with
     | RReg r -> MovqXR (reg, Reg.of_index r)
     | RMem _ -> err "movq from memory uses F3 0F 7E")
  | 0x6f | 0x7f ->
    let k =
      if st.opsize16 then Movdqa
      else if st.repf3 then Movdqu
      else err "mmx movq unsupported"
    in
    let reg, rm = decode_modrm st in
    if op = 0x6f then SseMov (k, Xr reg, xop_of_rm rm)
    else SseMov (k, xop_of_rm rm, Xr reg)
  | 0x7e ->
    let reg, rm = decode_modrm st in
    if st.repf3 then SseMov (Movq, Xr reg, xop_of_rm rm)
    else if st.opsize16 && rex_w st then
      (match rm with
       | RReg r -> MovqRX (Reg.of_index r, reg)
       | RMem _ -> err "movq store to memory uses 66 0F D6")
    else err "movd unsupported"
  | b when b >= 0x80 && b <= 0x8f ->
    let rel = i32 st in
    Jcc (cc_of_index (b land 0xf), Abs (st.pos + rel))
  | b when b >= 0x90 && b <= 0x9f ->
    let _, rm = decode_modrm st in
    Setcc (cc_of_index (b land 0xf), gpr_operand st W8 rm)
  | 0xaf ->
    let w = opwidth st in
    let reg, rm = decode_modrm st in
    Imul2 (w, Reg.of_index reg, gpr_operand st w rm)
  | 0xb6 | 0xb7 ->
    let dw = opwidth st in
    let sw = if op = 0xb6 then W8 else W16 in
    let reg, rm = decode_modrm st in
    Movzx (dw, Reg.of_index reg, sw, gpr_operand st sw rm)
  | 0xbe | 0xbf ->
    let dw = opwidth st in
    let sw = if op = 0xbe then W8 else W16 in
    let reg, rm = decode_modrm st in
    Movsx (dw, Reg.of_index reg, sw, gpr_operand st sw rm)
  | 0xc6 ->
    if not st.opsize16 then err "shufps unsupported";
    let reg, rm = decode_modrm st in
    let imm = u8 st in
    Shufpd (reg, xop_of_rm rm, imm)
  | 0xd4 ->
    if not st.opsize16 then err "paddq requires 66 prefix";
    let reg, rm = decode_modrm st in
    Padd (W64, reg, xop_of_rm rm)
  | 0xd6 ->
    if not st.opsize16 then err "movq store requires 66 prefix";
    let reg, rm = decode_modrm st in
    SseMov (Movq, xop_of_rm rm, Xr reg)
  | 0xdb ->
    let reg, rm = decode_modrm st in
    SseLogic (Pand, reg, xop_of_rm rm)
  | 0xeb ->
    let reg, rm = decode_modrm st in
    SseLogic (Por, reg, xop_of_rm rm)
  | 0xef ->
    let reg, rm = decode_modrm st in
    SseLogic (Pxor, reg, xop_of_rm rm)
  | 0xfe ->
    if not st.opsize16 then err "paddd requires 66 prefix";
    let reg, rm = decode_modrm st in
    Padd (W32, reg, xop_of_rm rm)
  | b -> err "unsupported 0F opcode 0x%02x" b

let decode_one st =
  let op = u8 st in
  match op with
  | b when b < 0x40 && b land 7 < 4 && b land 0xc0 = 0 ->
    (* ALU block 00-3B *)
    let aop = alu_of_digit (b lsr 3) in
    let form = b land 7 in
    let w = if form land 1 = 0 then W8 else opwidth st in
    let reg, rm = decode_modrm st in
    let mk w a bb = Alu (aop, w, a, bb) in
    mk_rr mk st w reg rm ~reg_is_dst:(form >= 2)
  | b when b >= 0x50 && b <= 0x57 ->
    Push (OReg (Reg.of_index ((b land 7) lor rex_b st)))
  | b when b >= 0x58 && b <= 0x5f ->
    Pop (OReg (Reg.of_index ((b land 7) lor rex_b st)))
  | 0x63 ->
    let reg, rm = decode_modrm st in
    Movsx (W64, Reg.of_index reg, W32, gpr_operand st W32 rm)
  | 0x68 -> Push (OImm (Int64.of_int (i32 st)))
  | 0x69 | 0x6b ->
    let w = opwidth st in
    let reg, rm = decode_modrm st in
    let imm =
      if op = 0x6b then Int64.of_int (i8 st)
      else imm_for st (if w = W64 then W32 else w)
    in
    Imul3 (w, Reg.of_index reg, gpr_operand st w rm, imm)
  | 0x6a -> Push (OImm (Int64.of_int (i8 st)))
  | b when b >= 0x70 && b <= 0x7f ->
    let rel = i8 st in
    Jcc (cc_of_index (b land 0xf), Abs (st.pos + rel))
  | 0x80 | 0x81 | 0x83 ->
    let w = if op = 0x80 then W8 else opwidth st in
    let reg, rm = decode_modrm st in
    let imm =
      if op = 0x83 then Int64.of_int (i8 st)
      else if op = 0x80 then Int64.of_int (i8 st)
      else imm_for st (if w = W64 then W32 else w)
    in
    (* mask REX.R out of the group digit: 0x81 with REX.R set would
       otherwise hand alu_of_digit an index > 7 *)
    Alu (alu_of_digit (reg land 7), w, gpr_operand st w rm, OImm imm)
  | 0x84 | 0x85 ->
    let w = if op = 0x84 then W8 else opwidth st in
    let reg, rm = decode_modrm st in
    let mk w a bb = Test (w, a, bb) in
    mk_rr mk st w reg rm ~reg_is_dst:false
  | 0x88 | 0x89 | 0x8a | 0x8b ->
    let w = if op land 1 = 0 then W8 else opwidth st in
    let reg, rm = decode_modrm st in
    let mk w a bb = Mov (w, a, bb) in
    mk_rr mk st w reg rm ~reg_is_dst:(op >= 0x8a)
  | 0x8d ->
    let reg, rm = decode_modrm st in
    (match rm with
     | RMem m -> Lea (Reg.of_index reg, m)
     | RReg _ -> err "lea requires a memory operand")
  | 0x8f ->
    let reg, rm = decode_modrm st in
    if reg land 7 <> 0 then err "invalid 8F group";
    Pop (gpr_operand st W64 rm)
  | 0x90 -> Nop 1
  | 0x99 -> if rex_w st then Cqo else Cdq
  | b when b >= 0xb8 && b <= 0xbf ->
    let r = Reg.of_index ((b land 7) lor rex_b st) in
    if rex_w st then Movabs (r, i64 st)
    else if st.opsize16 then Mov (W16, OReg r, OImm (imm_for st W16))
    else Mov (W32, OReg r, OImm (Int64.of_int (i32 st)))
  | 0xc0 | 0xc1 | 0xd2 | 0xd3 ->
    let w = if op = 0xc0 || op = 0xd2 then W8 else opwidth st in
    let reg, rm = decode_modrm st in
    let sop =
      match reg land 7 with
      | 4 -> Shl | 5 -> Shr | 7 -> Sar
      | d -> err "unsupported shift group digit %d" d
    in
    let count = if op <= 0xc1 then ShImm (u8 st) else ShCl in
    Shift (sop, w, gpr_operand st w rm, count)
  | 0xc2 ->
    let imm = u16 st in
    err "ret imm16 (0xc2, imm=%d) unsupported" imm
  | 0xc3 -> Ret
  | 0xca -> err "far return with imm16 (0xca) unsupported"
  | 0xcb -> err "far return (0xcb) unsupported"
  | 0xc6 | 0xc7 ->
    let w = if op = 0xc6 then W8 else opwidth st in
    let reg, rm = decode_modrm st in
    if reg land 7 <> 0 then err "invalid C7 group";
    let imm = imm_for st (if w = W64 then W32 else w) in
    Mov (w, gpr_operand st w rm, OImm imm)
  | 0xc9 -> Leave
  | 0xcc -> Int3
  | 0xe8 ->
    let rel = i32 st in
    Call (Abs (st.pos + rel))
  | 0xe9 ->
    let rel = i32 st in
    Jmp (Abs (st.pos + rel))
  | 0xeb ->
    let rel = i8 st in
    Jmp (Abs (st.pos + rel))
  | 0xf6 | 0xf7 ->
    let w = if op = 0xf6 then W8 else opwidth st in
    let reg, rm = decode_modrm st in
    let o = gpr_operand st w rm in
    (match reg land 7 with
     | 0 -> Test (w, o, OImm (imm_for st (if w = W64 then W32 else w)))
     | 2 -> Unop (Not, w, o)
     | 3 -> Unop (Neg, w, o)
     | 7 -> Idiv (w, o)
     | d -> err "unsupported F7 group digit %d" d)
  | 0xfe ->
    let reg, rm = decode_modrm st in
    let o = gpr_operand st W8 rm in
    (match reg land 7 with
     | 0 -> Unop (Inc, W8, o)
     | 1 -> Unop (Dec, W8, o)
     | d -> err "unsupported FE group digit %d" d)
  | 0xff ->
    let w = opwidth st in
    let reg, rm = decode_modrm st in
    let o64 = gpr_operand st W64 rm in
    (match reg land 7 with
     | 0 -> Unop (Inc, w, gpr_operand st w rm)
     | 1 -> Unop (Dec, w, gpr_operand st w rm)
     | 2 -> CallInd o64
     | 3 -> err "far call m16:64 (FF /3) unsupported"
     | 4 -> JmpInd o64
     | 5 -> err "far jmp m16:64 (FF /5) unsupported"
     | 6 -> Push o64
     | _ -> err "invalid FF group digit 7")
  | 0x0f -> decode_0f st
  | b -> err "unsupported opcode 0x%02x" b

(** [decode ~read addr] decodes the instruction at virtual address
    [addr], returning it together with its length in bytes.
    @raise Obrew_fault.Err.Error with stage [Decode] and the faulting
    address on truncated or unknown byte sequences. *)
let c_decoded = Tel.counter "decode.insns"

let decode ~read addr : insn * int =
  Fault.point ~addr "decode.truncated";
  Tel.incr_c c_decoded;
  let st =
    { read; start = addr; pos = addr; seg = None; opsize16 = false;
      repf2 = false; repf3 = false; rex = None }
  in
  let rec prefixes () =
    let b = st.read st.pos land 0xff in
    match b with
    | 0x66 -> st.opsize16 <- true; st.pos <- st.pos + 1; prefixes ()
    | 0xf2 -> st.repf2 <- true; st.pos <- st.pos + 1; prefixes ()
    | 0xf3 -> st.repf3 <- true; st.pos <- st.pos + 1; prefixes ()
    | 0x64 -> st.seg <- Some FS; st.pos <- st.pos + 1; prefixes ()
    | 0x65 -> st.seg <- Some GS; st.pos <- st.pos + 1; prefixes ()
    | b when b >= 0x40 && b <= 0x4f ->
      st.rex <- Some b; st.pos <- st.pos + 1
      (* REX must be the last prefix *)
    | _ -> ()
  in
  prefixes ();
  let i =
    (* tag errors raised anywhere below with the instruction start *)
    try decode_one st
    with Err.Error ({ stage = Decode; addr = None; _ } as e) ->
      raise (Err.Error { e with addr = Some st.start })
  in
  let len = st.pos - st.start in
  (* report the true byte length of multi-byte NOPs *)
  let i = match i with Nop _ -> Nop len | i -> i in
  (i, len)

(** Decode a string of bytes starting at virtual address [base] into an
    address-tagged instruction listing. *)
let decode_all ~base (code : string) : (int * insn) list =
  let read a =
    let off = a - base in
    if off < 0 || off >= String.length code then
      err ~addr:a "read out of bounds"
    else Char.code code.[off]
  in
  let rec go a acc =
    if a - base >= String.length code then List.rev acc
    else
      let i, len = decode ~read a in
      go (a + len) ((a, i) :: acc)
  in
  go base []

(** True for instructions that end a straight-line superblock: anything
    that writes [rip] non-sequentially, plus traps. *)
let is_terminator : insn -> bool = function
  | Call _ | CallInd _ | Ret | Jmp _ | JmpInd _ | Jcc _ | Ud2 | Int3 -> true
  | _ -> false

(** [decode_run ~read ~fetch addr ~max] decodes the straight-line run
    starting at [addr]: up to [max] instructions, stopping after the
    first terminator (see {!is_terminator}).  [fetch] may serve decoded
    instructions from a cache; it must agree with [read].  Returns the
    instructions paired with the address of the {e next} instruction. *)
let decode_run ~fetch addr ~max : (insn * int) list =
  let args = if !Tel.enabled then Printf.sprintf "0x%x" addr else "" in
  Tel.span "decode.run" ~args (fun () ->
      let rec go a n acc =
        let (i : insn), len = fetch a in
        let acc = (i, a + len) :: acc in
        if is_terminator i || n + 1 >= max then List.rev acc
        else go (a + len) (n + 1) acc
      in
      go addr 0 [])
