(** Abstract syntax for the x86-64 subset handled by the whole stack:
    encoder, decoder, emulator, DBrew rewriter and the IR lifter.

    The subset is what common C compilers emit for integer and SSE
    floating point code under the System V ABI: data movement, ALU and
    shift operations in 8/16/32/64-bit widths, lea, imul, idiv,
    push/pop, direct and indirect calls/jumps, conditional
    jumps/moves/sets, and scalar/packed SSE arithmetic.  AVX is
    deliberately out of scope, exactly as in the paper. *)

type width = W8 | W16 | W32 | W64

let width_bytes = function W8 -> 1 | W16 -> 2 | W32 -> 4 | W64 -> 8
let width_bits w = 8 * width_bytes w

type scale = S1 | S2 | S4 | S8

let scale_factor = function S1 -> 1 | S2 -> 2 | S4 -> 4 | S8 -> 8
let scale_of_int = function
  | 1 -> S1 | 2 -> S2 | 4 -> S4 | 8 -> S8
  | n -> invalid_arg (Printf.sprintf "scale_of_int %d" n)

type segment = FS | GS

(** [base + index*scale + disp], optionally segment-relative.

    When [rip] is set the operand is RIP-relative (mod=00 rm=101):
    [base] and [index] are [None] and [disp] holds the raw signed
    disp32 from the instruction encoding, relative to the address of
    the *next* instruction (end of the whole instruction, including
    any trailing immediate).  Keeping the raw displacement — instead
    of absolutizing at decode time — makes [encode (decode bytes)]
    byte-identical at any address; consumers that need the absolute
    address add the end-of-instruction rip (the emulator reads it from
    [Cpu.rip] at execution time, the lifter resolves it during block
    discovery where instruction lengths are known). *)
type mem_addr = {
  base : Reg.gpr option;
  index : (Reg.gpr * scale) option; (* index must not be RSP *)
  disp : int;                       (* signed, fits in 32 bits *)
  seg : segment option;
  rip : bool;                       (* RIP-relative: base/index empty *)
}

let mk_mem ?base ?index ?(disp = 0) ?seg ?(rip = false) () =
  { base; index; disp; seg; rip }
let mem_abs disp = mk_mem ~disp ()
let mem_base ?(disp = 0) base = mk_mem ~base ~disp ()
let mem_bi ?(disp = 0) base index scale =
  mk_mem ~base ~index:(index, scale) ~disp ()
let mem_rip disp = mk_mem ~disp ~rip:true ()

(** Operand of an instruction; the operand width is carried by the
    instruction itself.  [OReg8H] denotes the legacy high-byte
    registers ah/ch/dh/bh, only meaningful for 8-bit operations on
    rax/rcx/rdx/rbx. *)
type operand =
  | OReg of Reg.gpr
  | OReg8H of Reg.gpr
  | OMem of mem_addr
  | OImm of int64

(** Branch/call target: decoded instructions carry absolute virtual
    addresses; freshly generated code refers to labels resolved by
    {!Encode.assemble}. *)
type target = Abs of int | Lbl of int

type cc =
  | O | NO | B | AE | E | NE | BE | A
  | S | NS | P | NP | L | GE | LE | G

let cc_index = function
  | O -> 0 | NO -> 1 | B -> 2 | AE -> 3 | E -> 4 | NE -> 5 | BE -> 6 | A -> 7
  | S -> 8 | NS -> 9 | P -> 10 | NP -> 11 | L -> 12 | GE -> 13 | LE -> 14
  | G -> 15

let cc_of_index = function
  | 0 -> O | 1 -> NO | 2 -> B | 3 -> AE | 4 -> E | 5 -> NE | 6 -> BE | 7 -> A
  | 8 -> S | 9 -> NS | 10 -> P | 11 -> NP | 12 -> L | 13 -> GE | 14 -> LE
  | 15 -> G
  | n -> invalid_arg (Printf.sprintf "cc_of_index %d" n)

let cc_negate c = cc_of_index (cc_index c lxor 1)

let cc_name = function
  | O -> "o" | NO -> "no" | B -> "b" | AE -> "ae" | E -> "e" | NE -> "ne"
  | BE -> "be" | A -> "a" | S -> "s" | NS -> "ns" | P -> "p" | NP -> "np"
  | L -> "l" | GE -> "ge" | LE -> "le" | G -> "g"

type alu = Add | Sub | And | Or | Xor | Cmp | Adc | Sbb

let alu_name = function
  | Add -> "add" | Sub -> "sub" | And -> "and" | Or -> "or"
  | Xor -> "xor" | Cmp -> "cmp" | Adc -> "adc" | Sbb -> "sbb"

(* /digit used in the 0x81/0x83 opcode group *)
let alu_digit = function
  | Add -> 0 | Or -> 1 | Adc -> 2 | Sbb -> 3
  | And -> 4 | Sub -> 5 | Xor -> 6 | Cmp -> 7

let alu_of_digit = function
  | 0 -> Add | 1 -> Or | 2 -> Adc | 3 -> Sbb
  | 4 -> And | 5 -> Sub | 6 -> Xor | 7 -> Cmp
  | n -> invalid_arg (Printf.sprintf "alu_of_digit %d" n)

type shift = Shl | Shr | Sar

let shift_name = function Shl -> "shl" | Shr -> "shr" | Sar -> "sar"
let shift_digit = function Shl -> 4 | Shr -> 5 | Sar -> 7

type unop = Neg | Not | Inc | Dec

let unop_name = function
  | Neg -> "neg" | Not -> "not" | Inc -> "inc" | Dec -> "dec"

type shift_count = ShImm of int | ShCl

(** Floating point precision of an SSE operation. *)
type fp_prec = Sd | Ss | Pd | Ps

let prec_name = function Sd -> "sd" | Ss -> "ss" | Pd -> "pd" | Ps -> "ps"
let prec_scalar = function Sd | Ss -> true | Pd | Ps -> false
let prec_double = function Sd | Pd -> true | Ss | Ps -> false

type fp_arith = FAdd | FSub | FMul | FDiv | FMin | FMax | FSqrt

let fp_arith_name = function
  | FAdd -> "add" | FSub -> "sub" | FMul -> "mul" | FDiv -> "div"
  | FMin -> "min" | FMax -> "max" | FSqrt -> "sqrt"

(** Bitwise SSE operations (operate on the full 128 bits). *)
type sse_logic = Pxor | Pand | Por | Xorps | Xorpd | Andps | Andpd

let sse_logic_name = function
  | Pxor -> "pxor" | Pand -> "pand" | Por -> "por"
  | Xorps -> "xorps" | Xorpd -> "xorpd" | Andps -> "andps" | Andpd -> "andpd"

(** SSE register or memory operand. *)
type xop = Xr of Reg.xmm | Xm of mem_addr

(** SSE data movement flavours.  The semantic subtleties (upper-part
    preservation vs zeroing) that Sec. III-C of the paper discusses:
    - [Movsd]/[Movss] xmm,xmm preserve the untouched upper part;
      loading from memory zeroes it.
    - [Movq] (xmm,xmm or xmm,m64) zeroes the upper 64 bits.
    - full-width moves ([Movups]/[Movaps]/[Movupd]/[Movapd]/[Movdqa]/
      [Movdqu]) replace all 128 bits. *)
type sse_mov =
  | Movss | Movsd | Movups | Movaps | Movupd | Movapd | Movdqa | Movdqu
  | Movq

let sse_mov_name = function
  | Movss -> "movss" | Movsd -> "movsd" | Movups -> "movups"
  | Movaps -> "movaps" | Movupd -> "movupd" | Movapd -> "movapd"
  | Movdqa -> "movdqa" | Movdqu -> "movdqu" | Movq -> "movq"

type insn =
  (* data movement *)
  | Mov of width * operand * operand   (* dst, src; not both OMem *)
  | Movabs of Reg.gpr * int64          (* mov r64, imm64 *)
  | Movzx of width * Reg.gpr * width * operand (* dstw, dst, srcw, src *)
  | Movsx of width * Reg.gpr * width * operand
  | Lea of Reg.gpr * mem_addr
  (* integer arithmetic *)
  | Alu of alu * width * operand * operand (* dst, src *)
  | Test of width * operand * operand
  | Imul2 of width * Reg.gpr * operand
  | Imul3 of width * Reg.gpr * operand * int64
  | Idiv of width * operand            (* rdx:rax / src *)
  | Cqo                                 (* sign-extend rax into rdx *)
  | Cdq
  | Shift of shift * width * operand * shift_count
  | Unop of unop * width * operand
  (* stack *)
  | Push of operand
  | Pop of operand
  | Leave
  (* control flow *)
  | Call of target
  | CallInd of operand
  | Ret
  | Jmp of target
  | JmpInd of operand
  | Jcc of cc * target
  | Cmov of cc * width * Reg.gpr * operand (* width W16/W32/W64 *)
  | Setcc of cc * operand              (* 8-bit destination *)
  (* SSE data movement *)
  | SseMov of sse_mov * xop * xop      (* dst, src; not both Xm *)
  | MovqXR of Reg.xmm * Reg.gpr        (* movq xmm, r64 *)
  | MovqRX of Reg.gpr * Reg.xmm        (* movq r64, xmm *)
  (* SSE arithmetic *)
  | SseArith of fp_arith * fp_prec * Reg.xmm * xop
  | SseLogic of sse_logic * Reg.xmm * xop
  | Ucomis of fp_prec * Reg.xmm * xop  (* Sd or Ss only *)
  | Cvtsi2sd of Reg.xmm * width * operand (* W32/W64 integer source *)
  | Cvttsd2si of Reg.gpr * width * xop
  | Cvtsd2ss of Reg.xmm * xop
  | Cvtss2sd of Reg.xmm * xop
  | Unpcklpd of Reg.xmm * xop
  | Shufpd of Reg.xmm * xop * int
  | Padd of width * Reg.xmm * xop      (* paddd / paddq *)
  (* misc *)
  | Nop of int                          (* multi-byte nop, 1..9 *)
  | Ud2
  | Int3

(** Apply [g] to every memory operand of [i] — integer [OMem]
    operands, SSE [Xm] operands and [Lea] addresses; identity
    elsewhere.  Used by the lifter to resolve RIP-relative operands to
    absolute addresses once instruction extents are known. *)
let map_mem (g : mem_addr -> mem_addr) (i : insn) : insn =
  let op = function OMem m -> OMem (g m) | o -> o in
  let xo = function Xm m -> Xm (g m) | x -> x in
  match i with
  | Mov (w, d, s) -> Mov (w, op d, op s)
  | Movzx (dw, d, sw, s) -> Movzx (dw, d, sw, op s)
  | Movsx (dw, d, sw, s) -> Movsx (dw, d, sw, op s)
  | Lea (r, m) -> Lea (r, g m)
  | Alu (o2, w, d, s) -> Alu (o2, w, op d, op s)
  | Test (w, d, s) -> Test (w, op d, op s)
  | Imul2 (w, d, s) -> Imul2 (w, d, op s)
  | Imul3 (w, d, s, im) -> Imul3 (w, d, op s, im)
  | Idiv (w, s) -> Idiv (w, op s)
  | Shift (o2, w, d, c) -> Shift (o2, w, op d, c)
  | Unop (o2, w, d) -> Unop (o2, w, op d)
  | Push o -> Push (op o)
  | Pop o -> Pop (op o)
  | CallInd o -> CallInd (op o)
  | JmpInd o -> JmpInd (op o)
  | Cmov (c, w, d, s) -> Cmov (c, w, d, op s)
  | Setcc (c, d) -> Setcc (c, op d)
  | SseMov (k, d, s) -> SseMov (k, xo d, xo s)
  | SseArith (o2, p, d, s) -> SseArith (o2, p, d, xo s)
  | SseLogic (o2, d, s) -> SseLogic (o2, d, xo s)
  | Ucomis (p, d, s) -> Ucomis (p, d, xo s)
  | Cvtsi2sd (x, w, s) -> Cvtsi2sd (x, w, op s)
  | Cvttsd2si (r, w, s) -> Cvttsd2si (r, w, xo s)
  | Cvtsd2ss (x, s) -> Cvtsd2ss (x, xo s)
  | Cvtss2sd (x, s) -> Cvtss2sd (x, xo s)
  | Unpcklpd (x, s) -> Unpcklpd (x, xo s)
  | Shufpd (x, s, im) -> Shufpd (x, xo s, im)
  | Padd (w, x, s) -> Padd (w, x, xo s)
  | Movabs _ | Cqo | Cdq | Leave | Call _ | Ret | Jmp _ | Jcc _
  | MovqXR _ | MovqRX _ | Nop _ | Ud2 | Int3 -> i

(** Assembly item: generated code interleaves labels and instructions;
    [Encode.assemble] resolves [Lbl] targets against [L] positions.
    [Q t] lays down the absolute address of [t] as 8 little-endian data
    bytes (jump-table entries); [MovLbl (r, l)] assembles to a [Movabs]
    of label [l]'s absolute address — together they let generated code
    build indirect-dispatch constructs without knowing its own layout. *)
type item = L of int | I of insn | Q of target | MovLbl of Reg.gpr * int

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt
