(** x86-64 emulator: executes decoded instructions against a paged
    memory, tracking a cycle count through {!Cost}.  This is the
    "hardware" on which all five benchmark modes run.

    Two execution engines share the same instruction semantics
    ({!exec}) and therefore the same architectural state and cycle
    accounting:

    - the single-step interpreter ({!step}/{!run_interp}), which
      re-fetches through the per-address decode cache on every
      instruction, and
    - the translation-block engine ({!run}), which pre-decodes
      straight-line superblocks into flat arrays with precomputed
      per-instruction cycle costs and executes them with an inner loop
      that touches neither a hash table nor the decoder.  Blocks are
      chained: each block keeps a small inline cache of successor
      blocks, so steady-state loops run entirely inside the code
      cache. *)

open Insn
open Obrew_fault

module Tel = Obrew_telemetry.Telemetry
module Prov = Obrew_provenance.Provenance

(* emulator failures are typed [Err.Emulate] errors *)
let err fmt = Err.fail Err.Emulate fmt

(* engine telemetry: registered counters are direct pointers, so the
   hot loops pay one unconditional increment, never a lookup *)
let c_sb_exec = Tel.counter "sb.blocks_executed"
let c_sb_hit = Tel.counter "sb.cache_hits"
let c_sb_miss = Tel.counter "sb.cache_misses"
let c_sb_chain = Tel.counter "sb.chain_hits"
let c_sb_ic_hit = Tel.counter "sb.ic_hits"
let c_sb_ic_miss = Tel.counter "sb.ic_misses"
let c_sb_flush = Tel.counter "sb.flushes"
let c_sb_trace = Tel.counter "sb.traces_built"
let c_sb_sidexit = Tel.counter "sb.trace_side_exits"
let c_fuse_cmpjcc = Tel.counter "sb.fuse.cmp_jcc"
let c_fuse_mov_alu = Tel.counter "sb.fuse.mov_alu"
let c_fuse_lea_mem = Tel.counter "sb.fuse.lea_mem"
let c_fuse_spill = Tel.counter "sb.fuse.spill"
let c_fuse_other = Tel.counter "sb.fuse.other"
let c_fl_rec = Tel.counter "sb.flag_records"
let c_fl_mat = Tel.counter "sb.flag_materializations"
let c_fl_dead = Tel.counter "sb.flag_dead_writes"
let h_sb_len = Tel.histogram "sb.block_insns"

(** Block kinds: a plain straight-line block, a straight-line block
    whose terminator is a conditional backedge to its own entry (a
    trace candidate), or an already-promoted trace. *)
(* Unboxed 64-bit register files.  Plain [int64 array] cells hold
   pointers to boxed values, so every store pays the GC write barrier
   ([caml_modify]) — measurably the hottest function in the engine.
   Bigarray stores are raw 8-byte writes. *)
module A1 = Bigarray.Array1

type i64buf =
  (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

let i64buf n : i64buf =
  let b = Bigarray.Array1.create Bigarray.Int64 Bigarray.c_layout n in
  Bigarray.Array1.fill b 0L;
  b

type sb_kind = KStraight | KLoopHead | KTrace

(** A pre-decoded superblock: instructions up to and including the
    first control-flow instruction (or a size cap), starting at
    [sb_entry].  Unconditional direct jumps are followed during
    decoding, so a block may cover several disjoint byte ranges
    ([sb_ranges]); hot self-loop blocks are promoted to traces that
    unroll the loop body across the backedge with side-exits.

    Execution runs over the *fused* slot arrays ([sb_slots] etc.),
    where adjacent instruction pairs may have been combined into one
    closure; the per-instruction arrays ([sb_ops]/[sb_rips]/...) are
    kept for the profiled twin, which needs exact per-address
    attribution. *)
type sblock = {
  sb_entry : int;
  sb_insns : insn array;
  sb_ops : op_fn array;           (* translated, one per instruction *)
  sb_rips : int array;            (* rip after each instruction *)
  sb_addrs : int array;           (* guest address of each instruction *)
  sb_costs : int array;           (* static Cost.insn_cost per insn *)
  sb_static : int;                (* sum of sb_costs *)
  sb_slots : op_fn array;         (* fused execution slots *)
  sb_slot_rips : int array;       (* rip after a slot's first insn *)
  sb_slot_costs : int array;      (* static cost of the whole slot *)
  sb_slot_insns : int array;      (* instructions per slot (1 or 2) *)
  sb_ranges : (int * int) list;   (* covered byte ranges [lo, hi) *)
  sb_kind : sb_kind;
  mutable sb_execs : int;         (* executions (always counted): drives
                                     trace promotion and the tier
                                     controller's hotness scan *)
  mutable sb_valid : bool;        (* cleared by flush_code *)
  mutable sb_link1 : sblock option; (* chained successors *)
  mutable sb_link2 : sblock option;
  sb_ind : bool;                  (* terminator is an indirect branch
                                     (JmpInd/CallInd/Ret): successors go
                                     through the inline cache below, not
                                     the direct chain links *)
  mutable sb_ic1 : sblock option; (* 2-way inline cache of predicted
                                     targets, MRU first; entries are
                                     revalidated on every transition
                                     (entry match + validity bit) and
                                     replaced on divergent-target
                                     misses *)
  mutable sb_ic2 : sblock option;
}

(* a translated instruction: executes against the CPU state and
   returns the dynamic cycle penalty *)
and op_fn = t -> int

(* Deferred flag state: ALU closures record the operation instead of
   computing all six flags; [materialize] forces the record into the
   eager [zf..af] fields when a flag is actually read. *)
and flag_src = FlEager | FlAdd | FlSub | FlLogic | FlImul

and t = {
  mem : Mem.t;
  regs : i64buf;               (* 16 GPRs *)
  xlo : i64buf;                (* xmm low halves *)
  xhi : i64buf;                (* xmm high halves *)
  mutable rip : int;
  mutable zf : bool;
  mutable sf : bool;
  mutable cf : bool;
  mutable o_f : bool;          (* overflow flag; `of` is a keyword *)
  mutable pf : bool;
  mutable af : bool;
  mutable fs_base : int;
  mutable gs_base : int;
  mutable cycles : int;
  mutable icount : int;
  code : (int, insn * int) Hashtbl.t; (* decode cache *)
  blocks : (int, sblock) Hashtbl.t;   (* superblock cache, by entry *)
  bcache : sblock array; (* direct-mapped front cache over [blocks]:
                            slot = entry land (len-1); misses fall
                            back to the Hashtbl.  Catches indirect
                            dispatch sites whose many targets thrash
                            the 2-slot inline chain links. *)
  mutable sb_hits : int;
  mutable sb_misses : int;
  mutable sb_flushes : int;
  mutable sb_chained : int;    (* block transitions served by a chain link *)
  mutable sb_ic_hits : int;    (* indirect transitions predicted by an IC *)
  mutable sb_ic_misses : int;  (* indirect transitions that missed the IC *)
  mutable sb_traces : int;     (* blocks promoted to traces *)
  mutable sb_side_exits : int; (* early exits taken out of a trace *)
  mutable fu_cmpjcc : int;     (* fused pairs created, by pattern *)
  mutable fu_mov_alu : int;
  mutable fu_lea_mem : int;
  mutable fu_spill : int;
  mutable fu_other : int;
  mutable fl_op : flag_src;    (* pending lazy flag record *)
  mutable fl_w : width;
  flbuf : i64buf;              (* record operands: a, b, result *)
  mutable fl_records : int;    (* lazy flag records created *)
  mutable fl_mats : int;       (* records actually materialized *)
  mutable fl_dead : int;       (* flag writes elided by liveness *)
  mutable pen : int;           (* scratch penalty accumulator of exec *)
  cost : Cost.t;
}

(* never-valid sentinel filling empty [bcache] slots *)
let dummy_block =
  { sb_entry = -1; sb_insns = [||]; sb_ops = [||]; sb_rips = [||];
    sb_addrs = [||]; sb_costs = [||]; sb_static = 0; sb_slots = [||];
    sb_slot_rips = [||]; sb_slot_costs = [||]; sb_slot_insns = [||];
    sb_ranges = []; sb_kind = KStraight; sb_execs = 0; sb_valid = false;
    sb_link1 = None; sb_link2 = None; sb_ind = false; sb_ic1 = None;
    sb_ic2 = None }

let bcache_slots = 64

let create ?(cost = Cost.default) () =
  { mem = Mem.create (); regs = i64buf 16;
    xlo = i64buf 16; xhi = i64buf 16; rip = 0;
    zf = false; sf = false; cf = false; o_f = false; pf = false; af = false;
    fs_base = 0; gs_base = 0; cycles = 0; icount = 0;
    code = Hashtbl.create 512; blocks = Hashtbl.create 256;
    bcache = Array.make bcache_slots dummy_block;
    sb_hits = 0; sb_misses = 0; sb_flushes = 0; sb_chained = 0;
    sb_ic_hits = 0; sb_ic_misses = 0;
    sb_traces = 0; sb_side_exits = 0;
    fu_cmpjcc = 0; fu_mov_alu = 0; fu_lea_mem = 0; fu_spill = 0;
    fu_other = 0;
    fl_op = FlEager; fl_w = W64; flbuf = i64buf 3;
    fl_records = 0; fl_mats = 0; fl_dead = 0;
    pen = 0; cost }

(* -------- scalar helpers -------- *)

let addr_mask = (1 lsl 48) - 1

let trunc w (v : int64) =
  match w with
  | W8 -> Int64.logand v 0xFFL
  | W16 -> Int64.logand v 0xFFFFL
  | W32 -> Int64.logand v 0xFFFFFFFFL
  | W64 -> v

let sext w (v : int64) =
  match w with
  | W8 -> Int64.shift_right (Int64.shift_left v 56) 56
  | W16 -> Int64.shift_right (Int64.shift_left v 48) 48
  | W32 -> Int64.shift_right (Int64.shift_left v 32) 32
  | W64 -> v

let msb w v =
  Int64.logand (Int64.shift_right_logical v (width_bits w - 1)) 1L = 1L

let parity_even (v : int64) =
  let x = Int64.to_int (Int64.logand v 0xFFL) in
  let x = x lxor (x lsr 4) in
  let x = x lxor (x lsr 2) in
  let x = x lxor (x lsr 1) in
  x land 1 = 0

(* -------- register access -------- *)

let get_reg cpu w r = trunc w cpu.regs.{Reg.index r}
let get_reg64 cpu r = cpu.regs.{Reg.index r}

let get_reg8h cpu r =
  Int64.logand (Int64.shift_right_logical cpu.regs.{Reg.index r} 8) 0xFFL

let set_reg cpu w r v =
  let i = Reg.index r in
  match w with
  | W64 -> cpu.regs.{i} <- v
  | W32 -> cpu.regs.{i} <- trunc W32 v
  | W16 ->
    cpu.regs.{i} <-
      Int64.logor
        (Int64.logand cpu.regs.{i} 0xFFFFFFFFFFFF0000L)
        (trunc W16 v)
  | W8 ->
    cpu.regs.{i} <-
      Int64.logor
        (Int64.logand cpu.regs.{i} 0xFFFFFFFFFFFFFF00L)
        (trunc W8 v)

let set_reg8h cpu r v =
  let i = Reg.index r in
  cpu.regs.{i} <-
    Int64.logor
      (Int64.logand cpu.regs.{i} 0xFFFFFFFFFFFF00FFL)
      (Int64.shift_left (Int64.logand v 0xFFL) 8)

(* -------- memory access -------- *)

(* full 64-bit effective address (what lea computes).  RIP-relative
   operands resolve against [cpu.rip], which both engines advance to
   the end of the current instruction *before* executing it (see
   {!step} and {!exec_block}), matching hardware semantics where the
   disp32 is relative to the next instruction. *)
let effective cpu (m : mem_addr) : int64 =
  let b =
    match m.base with
    | Some r -> get_reg64 cpu r
    | None -> if m.rip then Int64.of_int cpu.rip else 0L
  in
  let i =
    match m.index with
    | Some (r, s) ->
      Int64.mul (get_reg64 cpu r) (Int64.of_int (scale_factor s))
    | None -> 0L
  in
  let s =
    match m.seg with
    | Some FS -> cpu.fs_base
    | Some GS -> cpu.gs_base
    | None -> 0
  in
  Int64.add (Int64.add b i) (Int64.of_int (m.disp + s))

let resolve cpu (m : mem_addr) = Int64.to_int (effective cpu m) land addr_mask

let load cpu w a =
  match w with
  | W8 -> Int64.of_int (Mem.read_u8 cpu.mem a)
  | W16 -> Int64.of_int (Mem.read_u16 cpu.mem a)
  | W32 -> Int64.of_int (Mem.read_u32 cpu.mem a)
  | W64 -> Mem.read_u64 cpu.mem a

let store cpu w a (v : int64) =
  match w with
  | W8 -> Mem.write_u8 cpu.mem a (Int64.to_int v)
  | W16 -> Mem.write_u16 cpu.mem a (Int64.to_int v)
  | W32 -> Mem.write_u32 cpu.mem a (Int64.to_int (trunc W32 v))
  | W64 -> Mem.write_u64 cpu.mem a v

(* -------- operand access -------- *)

let read_op cpu w = function
  | OReg r -> get_reg cpu w r
  | OReg8H r -> get_reg8h cpu r
  | OMem m -> load cpu w (resolve cpu m)
  | OImm v -> trunc w v

let write_op cpu w op v =
  match op with
  | OReg r -> set_reg cpu w r v
  | OReg8H r -> set_reg8h cpu r v
  | OMem m -> store cpu w (resolve cpu m) v
  | OImm _ -> err "cannot write to an immediate"

(* -------- flags -------- *)

let set_szp cpu w r =
  cpu.zf <- trunc w r = 0L;
  cpu.sf <- msb w r;
  cpu.pf <- parity_even r

let flags_logic cpu w r =
  set_szp cpu w r;
  cpu.cf <- false;
  cpu.o_f <- false;
  cpu.af <- false

let flags_add ?(cin = 0L) cpu w a b r =
  set_szp cpu w r;
  (if w = W64 then
     cpu.cf <- Int64.unsigned_compare r a < 0 || (cin = 1L && r = a)
   else cpu.cf <- Int64.add (Int64.add a b) cin <> r);
  cpu.o_f <- msb w (Int64.logand (Int64.logxor a r) (Int64.logxor b r));
  cpu.af <- Int64.logand (Int64.logxor (Int64.logxor a b) r) 0x10L <> 0L

let flags_sub ?(cin = 0L) cpu w a b r =
  set_szp cpu w r;
  (let a = trunc w a and b = trunc w b in
   if cin = 1L && b = trunc w (-1L) then cpu.cf <- true
   else cpu.cf <- Int64.unsigned_compare a (Int64.add b cin) < 0);
  cpu.o_f <- msb w (Int64.logand (Int64.logxor a b) (Int64.logxor a r));
  cpu.af <- Int64.logand (Int64.logxor (Int64.logxor a b) r) 0x10L <> 0L

(* Force a pending lazy flag record into the eager flag fields.  The
   invariant: whenever [fl_op <> FlEager], the six flag fields are stale
   and (fl_op, fl_w, flbuf=[a; b; r]) describe the instruction that
   last wrote flags; materializing computes exactly what the eager
   helper would have at execution time.  Every reader of the eager
   fields (cond, exec entry, run exit, fault unwinding) materializes
   first, so lazy evaluation is unobservable. *)
let materialize cpu =
  match cpu.fl_op with
  | FlEager -> ()
  | FlAdd ->
    cpu.fl_op <- FlEager;
    cpu.fl_mats <- cpu.fl_mats + 1;
    Tel.incr_c c_fl_mat;
    flags_add cpu cpu.fl_w (Bigarray.Array1.unsafe_get cpu.flbuf 0) (Bigarray.Array1.unsafe_get cpu.flbuf 1) (Bigarray.Array1.unsafe_get cpu.flbuf 2)
  | FlSub ->
    cpu.fl_op <- FlEager;
    cpu.fl_mats <- cpu.fl_mats + 1;
    Tel.incr_c c_fl_mat;
    flags_sub cpu cpu.fl_w (Bigarray.Array1.unsafe_get cpu.flbuf 0) (Bigarray.Array1.unsafe_get cpu.flbuf 1) (Bigarray.Array1.unsafe_get cpu.flbuf 2)
  | FlLogic ->
    cpu.fl_op <- FlEager;
    cpu.fl_mats <- cpu.fl_mats + 1;
    Tel.incr_c c_fl_mat;
    flags_logic cpu cpu.fl_w (Bigarray.Array1.unsafe_get cpu.flbuf 2)
  | FlImul ->
    cpu.fl_op <- FlEager;
    cpu.fl_mats <- cpu.fl_mats + 1;
    Tel.incr_c c_fl_mat;
    let a = Bigarray.Array1.unsafe_get cpu.flbuf 0 in
    let b = Bigarray.Array1.unsafe_get cpu.flbuf 1 in
    let w = cpu.fl_w in
    let p = Int64.mul a b in
    let r = trunc w p in
    let ovf = sext w r <> p || (w = W64 && a <> 0L && Int64.div p a <> b) in
    set_szp cpu w r;
    cpu.cf <- ovf; cpu.o_f <- ovf; cpu.af <- false

(** Deep-copy the architectural state (registers, flags, segment bases,
    memory) into a fresh CPU for shadow execution.  Pending lazy flags
    are materialized first so the copy needs no [flbuf] transfer.
    Translation caches and statistics start cold — the fork shares no
    mutable structure with the original, so either side can run and
    write freely without the other observing it. *)
let fork (cpu : t) : t =
  materialize cpu;
  let c = { (create ~cost:cpu.cost ()) with mem = Mem.clone cpu.mem } in
  A1.blit cpu.regs c.regs;
  A1.blit cpu.xlo c.xlo;
  A1.blit cpu.xhi c.xhi;
  c.rip <- cpu.rip;
  c.zf <- cpu.zf;
  c.sf <- cpu.sf;
  c.cf <- cpu.cf;
  c.o_f <- cpu.o_f;
  c.pf <- cpu.pf;
  c.af <- cpu.af;
  c.fs_base <- cpu.fs_base;
  c.gs_base <- cpu.gs_base;
  c

let cond cpu c =
  materialize cpu;
  match c with
  | O -> cpu.o_f
  | NO -> not cpu.o_f
  | B -> cpu.cf
  | AE -> not cpu.cf
  | E -> cpu.zf
  | NE -> not cpu.zf
  | BE -> cpu.cf || cpu.zf
  | A -> not (cpu.cf || cpu.zf)
  | S -> cpu.sf
  | NS -> not cpu.sf
  | P -> cpu.pf
  | NP -> not cpu.pf
  | L -> cpu.sf <> cpu.o_f
  | GE -> cpu.sf = cpu.o_f
  | LE -> cpu.zf || cpu.sf <> cpu.o_f
  | G -> (not cpu.zf) && cpu.sf = cpu.o_f

(* -------- stack -------- *)

(* Hot closures below open-code the aligned-page fast path of
   Mem.read_u64/write_u64: the page lookup stays a (pointer-returning)
   call but Bytes.get/set_int64_le are primitives that compile unboxed
   at the use site, where calling Mem.read_u64 would box its int64
   return on every load.  The literals 12/0xFFF/0xFF8 are tied to the
   page layout by this check. *)
let () = assert (Mem.page_bits = 12 && Mem.page_size = 4096)

let rsp_i = Reg.index Reg.RSP

let push64 cpu v =
  let sp = Int64.to_int cpu.regs.{rsp_i} - 8 in
  cpu.regs.{rsp_i} <- Int64.of_int sp;
  let a = sp land addr_mask in
  let off = a land 0xFFF in
  if off <= 0xFF8 then Bytes.set_int64_le (Mem.page cpu.mem (a lsr 12)) off v
  else Mem.write_u64 cpu.mem a v

let pop64 cpu =
  let sp = Int64.to_int cpu.regs.{rsp_i} in
  let a = sp land addr_mask in
  let off = a land 0xFFF in
  let v =
    if off <= 0xFF8 then Bytes.get_int64_le (Mem.page cpu.mem (a lsr 12)) off
    else Mem.read_u64 cpu.mem a
  in
  cpu.regs.{rsp_i} <- Int64.of_int (sp + 8);
  v

(* -------- SSE helpers -------- *)

let f64 (bits : int64) = Int64.float_of_bits bits
let b64 (f : float) = Int64.bits_of_float f

let f32 (bits : int64) =
  Int32.float_of_bits (Int64.to_int32 bits)

let b32 (f : float) =
  Int64.logand (Int64.of_int32 (Int32.bits_of_float f)) 0xFFFFFFFFL

let xop_load64 cpu = function
  | Xr x -> cpu.xlo.{x}
  | Xm m -> Mem.read_u64 cpu.mem (resolve cpu m)

let xop_load128 cpu = function
  | Xr x -> (cpu.xlo.{x}, cpu.xhi.{x})
  | Xm m ->
    let a = resolve cpu m in
    (Mem.read_u64 cpu.mem a, Mem.read_u64 cpu.mem (a + 8))

let xop_load32 cpu = function
  | Xr x -> Int64.logand cpu.xlo.{x} 0xFFFFFFFFL
  | Xm m -> Int64.of_int (Mem.read_u32 cpu.mem (resolve cpu m))

let fp_bin op a b =
  match op with
  | FAdd -> a +. b
  | FSub -> a -. b
  | FMul -> a *. b
  | FDiv -> a /. b
  (* x86 min/max semantics: source operand wins on NaN or equality *)
  | FMin -> if a < b then a else b
  | FMax -> if a > b then a else b
  | FSqrt -> sqrt b (* unary: operates on source *)

let lanes32 (lo, hi) = [| trunc W32 lo; Int64.shift_right_logical lo 32;
                          trunc W32 hi; Int64.shift_right_logical hi 32 |]

let pack32 l =
  ( Int64.logor (trunc W32 l.(0)) (Int64.shift_left (trunc W32 l.(1)) 32),
    Int64.logor (trunc W32 l.(2)) (Int64.shift_left (trunc W32 l.(3)) 32) )

let is_16aligned a = a land 15 = 0

(* -------- execution -------- *)

let fetch cpu addr =
  match Hashtbl.find_opt cpu.code addr with
  | Some r -> r
  | None ->
    let r = Decode.decode ~read:(Mem.read_u8 cpu.mem) addr in
    Hashtbl.replace cpu.code addr r;
    r

(* the longest x86-64 instruction: an insn starting up to this many
   bytes before an overwritten range may still cover it *)
let max_insn_len = 15

(** Invalidate the code caches after writing fresh code to memory.
    With [range = (lo, hi)] only decoded instructions and superblocks
    whose bytes overlap [lo, hi) are dropped (plus chain links into
    them, which die with the block's validity bit); without it both
    caches are cleared entirely. *)
let flush_code ?range cpu =
  cpu.sb_flushes <- cpu.sb_flushes + 1;
  Tel.incr_c c_sb_flush;
  if !Tel.enabled then
    Tel.instant "sb.flush"
      ~args:
        (match range with
         | Some (lo, hi) -> Printf.sprintf "0x%x-0x%x" lo hi
         | None -> "all");
  (match range with
   | Some (lo, hi) -> Obrew_observe.Flight.(emit Cache_flush ~a:lo ~b:hi)
   | None -> Obrew_observe.Flight.(emit Cache_flush ~subject:"all"));
  match range with
  | None ->
    Hashtbl.reset cpu.code;
    Hashtbl.iter (fun _ b -> b.sb_valid <- false) cpu.blocks;
    Hashtbl.reset cpu.blocks
  | Some (lo, hi) ->
    let doomed_insns =
      Hashtbl.fold
        (fun a _ acc -> if a > lo - max_insn_len && a < hi then a :: acc else acc)
        cpu.code []
    in
    List.iter (Hashtbl.remove cpu.code) doomed_insns;
    (* a block covers every byte range it decoded instructions from —
       jump-following and traces make these genuinely disjoint, so all
       ranges must be checked, not just the one around the entry *)
    let overlaps b =
      List.exists (fun (blo, bhi) -> bhi > lo && blo < hi) b.sb_ranges
    in
    let doomed_blocks =
      Hashtbl.fold
        (fun e b acc -> if overlaps b then (e, b) :: acc else acc)
        cpu.blocks []
    in
    List.iter
      (fun (e, b) ->
        b.sb_valid <- false;
        Hashtbl.remove cpu.blocks e)
      doomed_blocks

type cache_stats = {
  block_hits : int;      (* superblock served from the cache *)
  block_misses : int;    (* superblock built (pre-decoded) *)
  block_flushes : int;   (* flush_code invocations *)
  block_chained : int;   (* transitions resolved by a chain link *)
  ic_hits : int;         (* indirect transitions predicted by an inline cache *)
  ic_misses : int;       (* indirect transitions that missed the inline cache *)
  blocks_live : int;     (* blocks currently cached *)
  traces_built : int;    (* self-loop blocks promoted to traces *)
  trace_side_exits : int;(* early exits taken out of a trace *)
  fused_pairs : (string * int) list; (* fused pairs created, by pattern *)
  flag_records : int;    (* lazy flag records created *)
  flag_materialized : int; (* records forced by an actual flag read *)
  flag_dead_writes : int;  (* flag writes elided by block-local liveness *)
}

let cache_stats cpu =
  { block_hits = cpu.sb_hits; block_misses = cpu.sb_misses;
    block_flushes = cpu.sb_flushes; block_chained = cpu.sb_chained;
    ic_hits = cpu.sb_ic_hits; ic_misses = cpu.sb_ic_misses;
    blocks_live = Hashtbl.length cpu.blocks;
    traces_built = cpu.sb_traces; trace_side_exits = cpu.sb_side_exits;
    fused_pairs =
      [ ("cmp_jcc", cpu.fu_cmpjcc); ("mov_alu", cpu.fu_mov_alu);
        ("lea_mem", cpu.fu_lea_mem); ("spill", cpu.fu_spill);
        ("other", cpu.fu_other) ];
    flag_records = cpu.fl_records; flag_materialized = cpu.fl_mats;
    flag_dead_writes = cpu.fl_dead }

(** Fold [f acc entry execs static_cost] over every valid cached
    superblock — the tier controller's hotness scan.  [execs] counts
    executions since the block was translated (a re-translation or
    trace promotion restarts the count, so consumers must treat sums as
    a monotone-per-block but globally lossy signal), [static_cost] is
    the block's static cycle estimate; [execs * static_cost] weights
    hot loop bodies above straight-line glue. *)
let fold_blocks cpu f acc =
  Hashtbl.fold
    (fun e b acc -> if b.sb_valid then f acc e b.sb_execs b.sb_static else acc)
    cpu.blocks acc

let reset_cache_stats cpu =
  cpu.sb_hits <- 0; cpu.sb_misses <- 0;
  cpu.sb_flushes <- 0; cpu.sb_chained <- 0;
  cpu.sb_ic_hits <- 0; cpu.sb_ic_misses <- 0;
  cpu.sb_traces <- 0; cpu.sb_side_exits <- 0;
  cpu.fu_cmpjcc <- 0; cpu.fu_mov_alu <- 0; cpu.fu_lea_mem <- 0;
  cpu.fu_spill <- 0; cpu.fu_other <- 0;
  cpu.fl_records <- 0; cpu.fl_mats <- 0; cpu.fl_dead <- 0

let target_addr = function
  | Abs a -> a
  | Lbl l -> err "cannot execute unresolved label .L%d" l

(* The dynamic penalty (branch direction, vector misalignment) is
   accumulated in [cpu.pen] rather than a local [ref] so that the hot
   loop performs no per-instruction allocation. *)
let exec cpu (i : insn) =
  (* the eager interpreter reads and writes the flag fields directly,
     so any pending lazy record must be forced first *)
  materialize cpu;
  let c = cpu.cost in
  cpu.pen <- 0;
  let check_align16 m =
    let a = resolve cpu m in
    if not (is_16aligned a) then cpu.pen <- cpu.pen + c.unaligned_vec
  in
  (match i with
   | Mov (w, dst, src) -> write_op cpu w dst (read_op cpu w src)
   | Movabs (r, v) -> set_reg cpu W64 r v
   | Movzx (dw, dst, sw, src) -> set_reg cpu dw dst (read_op cpu sw src)
   | Movsx (dw, dst, sw, src) ->
     set_reg cpu dw dst (trunc dw (sext sw (read_op cpu sw src)))
   | Lea (dst, m) -> set_reg cpu W64 dst (effective cpu { m with seg = None })
   | Alu (op, w, dst, src) ->
     let a = read_op cpu w dst in
     let b = read_op cpu w src in
     (match op with
      | Add ->
        let r = trunc w (Int64.add a b) in
        flags_add cpu w a b r;
        write_op cpu w dst r
      | Adc ->
        let cin = if cpu.cf then 1L else 0L in
        let r = trunc w (Int64.add (Int64.add a b) cin) in
        flags_add ~cin cpu w a b r;
        write_op cpu w dst r
      | Sub ->
        let r = trunc w (Int64.sub a b) in
        flags_sub cpu w a b r;
        write_op cpu w dst r
      | Sbb ->
        let cin = if cpu.cf then 1L else 0L in
        let r = trunc w (Int64.sub (Int64.sub a b) cin) in
        flags_sub ~cin cpu w a b r;
        write_op cpu w dst r
      | Cmp ->
        let r = trunc w (Int64.sub a b) in
        flags_sub cpu w a b r
      | And ->
        let r = Int64.logand a b in
        flags_logic cpu w r;
        write_op cpu w dst r
      | Or ->
        let r = Int64.logor a b in
        flags_logic cpu w r;
        write_op cpu w dst r
      | Xor ->
        let r = Int64.logxor a b in
        flags_logic cpu w r;
        write_op cpu w dst r)
   | Test (w, a, b) ->
     flags_logic cpu w (Int64.logand (read_op cpu w a) (read_op cpu w b))
   | Imul2 (w, dst, src) ->
     let a = sext w (get_reg cpu w dst) in
     let b = sext w (read_op cpu w src) in
     let p = Int64.mul a b in
     let r = trunc w p in
     let ovf = sext w r <> p ||
               (w = W64 && a <> 0L && Int64.div p a <> b) in
     set_szp cpu w r;
     cpu.cf <- ovf; cpu.o_f <- ovf; cpu.af <- false;
     set_reg cpu w dst r
   | Imul3 (w, dst, src, imm) ->
     let a = sext w (read_op cpu w src) in
     let b = sext w (trunc w imm) in
     let p = Int64.mul a b in
     let r = trunc w p in
     let ovf = sext w r <> p ||
               (w = W64 && a <> 0L && Int64.div p a <> b) in
     set_szp cpu w r;
     cpu.cf <- ovf; cpu.o_f <- ovf; cpu.af <- false;
     set_reg cpu w dst r
   | Idiv (w, src) ->
     let d = sext w (read_op cpu w src) in
     if d = 0L then err "division by zero";
     let dividend =
       match w with
       | W64 ->
         let lo = cpu.regs.{0} and hi = cpu.regs.{2} in
         if hi <> Int64.shift_right lo 63 then
           err "128-bit idiv dividend unsupported";
         lo
       | W32 ->
         let lo = trunc W32 cpu.regs.{0} in
         let hi = trunc W32 cpu.regs.{2} in
         sext W64 (Int64.logor lo (Int64.shift_left hi 32))
       | _ -> err "8/16-bit idiv unsupported"
     in
     let q = Int64.div dividend d in
     let r = Int64.rem dividend d in
     if w = W32 && sext W32 (trunc W32 q) <> q then err "idiv overflow";
     set_reg cpu w Reg.RAX q;
     set_reg cpu w Reg.RDX r
   | Cqo ->
     cpu.regs.{2} <- Int64.shift_right cpu.regs.{0} 63
   | Cdq ->
     let v = Int64.shift_right (sext W32 (trunc W32 cpu.regs.{0})) 31 in
     set_reg cpu W32 Reg.RDX v
   | Shift (op, w, dst, cnt) ->
     let bits = width_bits w in
     let n =
       (match cnt with
        | ShImm n -> n
        | ShCl -> Int64.to_int (trunc W8 cpu.regs.{1}))
       land (if w = W64 then 63 else 31)
     in
     (* count 0 leaves flags alone but the destination write still
        happens architecturally: a W32 write zeroes bits 63:32 *)
     if n = 0 then begin
       let a = read_op cpu w dst in
       write_op cpu w dst a
     end
     else begin
       let a = read_op cpu w dst in
       let r =
         match op with
         | Shl -> trunc w (Int64.shift_left a n)
         | Shr -> if n >= bits then 0L else Int64.shift_right_logical a n
         | Sar ->
           let s = sext w a in
           trunc w (Int64.shift_right s (min n 63))
       in
       (match op with
        | Shl ->
          cpu.cf <-
            n <= bits
            && Int64.logand (Int64.shift_right_logical a (bits - n)) 1L = 1L;
          cpu.o_f <- msb w r <> cpu.cf
        | Shr ->
          cpu.cf <- n <= bits && Int64.logand (Int64.shift_right_logical a (n - 1)) 1L = 1L;
          cpu.o_f <- msb w a
        | Sar ->
          cpu.cf <-
            Int64.logand (Int64.shift_right (sext w a) (min (n - 1) 63)) 1L
            = 1L;
          cpu.o_f <- false);
       set_szp cpu w r;
       write_op cpu w dst r
     end
   | Unop (op, w, dst) ->
     let a = read_op cpu w dst in
     (match op with
      | Neg ->
        let r = trunc w (Int64.neg a) in
        set_szp cpu w r;
        cpu.cf <- a <> 0L;
        cpu.o_f <- msb w (Int64.logand a r);
        write_op cpu w dst r
      | Not -> write_op cpu w dst (trunc w (Int64.lognot a))
      | Inc ->
        let r = trunc w (Int64.add a 1L) in
        let cf = cpu.cf in
        flags_add cpu w a 1L r;
        cpu.cf <- cf;
        write_op cpu w dst r
      | Dec ->
        let r = trunc w (Int64.sub a 1L) in
        let cf = cpu.cf in
        flags_sub cpu w a 1L r;
        cpu.cf <- cf;
        write_op cpu w dst r)
   | Push src -> push64 cpu (read_op cpu W64 src)
   | Pop dst -> write_op cpu W64 dst (pop64 cpu)
   | Leave ->
     cpu.regs.{rsp_i} <- cpu.regs.{Reg.index Reg.RBP};
     cpu.regs.{Reg.index Reg.RBP} <- pop64 cpu
   | Call t ->
     push64 cpu (Int64.of_int cpu.rip);
     cpu.rip <- target_addr t
   | CallInd op ->
     let tgt = Int64.to_int (read_op cpu W64 op) land addr_mask in
     push64 cpu (Int64.of_int cpu.rip);
     cpu.rip <- tgt
   | Ret -> cpu.rip <- Int64.to_int (pop64 cpu) land addr_mask
   | Jmp t -> cpu.rip <- target_addr t
   | JmpInd op -> cpu.rip <- Int64.to_int (read_op cpu W64 op) land addr_mask
   | Jcc (cc, t) ->
     if cond cpu cc then begin
       cpu.rip <- target_addr t;
       cpu.pen <- cpu.pen + c.branch_taken
     end
     else cpu.pen <- cpu.pen + c.branch_not_taken
   | Cmov (cc, w, dst, src) ->
     (* the load happens regardless of the condition *)
     let v = read_op cpu w src in
     if cond cpu cc then set_reg cpu w dst v
     else if w = W32 then set_reg cpu w dst (get_reg cpu W32 dst)
   | Setcc (cc, dst) ->
     write_op cpu W8 dst (if cond cpu cc then 1L else 0L)
   | SseMov (k, dst, src) ->
     (match k, dst, src with
      | (Movsd | Movss), Xr d, Xr s ->
        if k = Movsd then cpu.xlo.{d} <- cpu.xlo.{s}
        else
          cpu.xlo.{d} <-
            Int64.logor
              (Int64.logand cpu.xlo.{d} 0xFFFFFFFF00000000L)
              (Int64.logand cpu.xlo.{s} 0xFFFFFFFFL)
      | Movsd, Xr d, (Xm _ as m) ->
        cpu.xlo.{d} <- xop_load64 cpu m;
        cpu.xhi.{d} <- 0L
      | Movss, Xr d, (Xm _ as m) ->
        cpu.xlo.{d} <- xop_load32 cpu m;
        cpu.xhi.{d} <- 0L
      | Movsd, Xm m, Xr s -> Mem.write_u64 cpu.mem (resolve cpu m) cpu.xlo.{s}
      | Movss, Xm m, Xr s ->
        Mem.write_u32 cpu.mem (resolve cpu m)
          (Int64.to_int (Int64.logand cpu.xlo.{s} 0xFFFFFFFFL))
      | Movq, Xr d, s ->
        cpu.xlo.{d} <- xop_load64 cpu s;
        cpu.xhi.{d} <- 0L
      | Movq, Xm m, Xr s -> Mem.write_u64 cpu.mem (resolve cpu m) cpu.xlo.{s}
      | (Movups | Movupd | Movdqu), Xr d, s ->
        (match s with Xm m -> check_align16 m | Xr _ -> ());
        let lo, hi = xop_load128 cpu s in
        cpu.xlo.{d} <- lo;
        cpu.xhi.{d} <- hi
      | (Movaps | Movapd | Movdqa), Xr d, s ->
        (match s with
         | Xm m ->
           if not (is_16aligned (resolve cpu m)) then
             err "misaligned movaps load"
         | Xr _ -> ());
        let lo, hi = xop_load128 cpu s in
        cpu.xlo.{d} <- lo;
        cpu.xhi.{d} <- hi
      | (Movups | Movupd | Movdqu), Xm m, Xr s ->
        check_align16 m;
        let a = resolve cpu m in
        Mem.write_u64 cpu.mem a cpu.xlo.{s};
        Mem.write_u64 cpu.mem (a + 8) cpu.xhi.{s}
      | (Movaps | Movapd | Movdqa), Xm m, Xr s ->
        let a = resolve cpu m in
        if not (is_16aligned a) then err "misaligned movaps store";
        Mem.write_u64 cpu.mem a cpu.xlo.{s};
        Mem.write_u64 cpu.mem (a + 8) cpu.xhi.{s}
      | _, Xm _, Xm _ -> err "SSE mem-to-mem move")
   | MovqXR (x, r) ->
     cpu.xlo.{x} <- get_reg64 cpu r;
     cpu.xhi.{x} <- 0L
   | MovqRX (r, x) -> set_reg cpu W64 r cpu.xlo.{x}
   | SseArith (op, p, dst, src) ->
     (match p with
      | Sd ->
        let a = f64 cpu.xlo.{dst} in
        let b = f64 (xop_load64 cpu src) in
        cpu.xlo.{dst} <- b64 (fp_bin op a b)
      | Ss ->
        let a = f32 cpu.xlo.{dst} in
        let b = f32 (xop_load32 cpu src) in
        cpu.xlo.{dst} <-
          Int64.logor
            (Int64.logand cpu.xlo.{dst} 0xFFFFFFFF00000000L)
            (b32 (fp_bin op a b))
      | Pd ->
        (match src with Xm m -> check_align16 m | Xr _ -> ());
        let slo, shi = xop_load128 cpu src in
        cpu.xlo.{dst} <- b64 (fp_bin op (f64 cpu.xlo.{dst}) (f64 slo));
        cpu.xhi.{dst} <- b64 (fp_bin op (f64 cpu.xhi.{dst}) (f64 shi))
      | Ps ->
        (match src with Xm m -> check_align16 m | Xr _ -> ());
        let s = lanes32 (xop_load128 cpu src) in
        let d = lanes32 (cpu.xlo.{dst}, cpu.xhi.{dst}) in
        let r =
          Array.init 4 (fun i -> b32 (fp_bin op (f32 d.(i)) (f32 s.(i))))
        in
        let lo, hi = pack32 r in
        cpu.xlo.{dst} <- lo;
        cpu.xhi.{dst} <- hi)
   | SseLogic (op, dst, src) ->
     let slo, shi = xop_load128 cpu src in
     let f =
       match op with
       | Pxor | Xorps | Xorpd -> Int64.logxor
       | Pand | Andps | Andpd -> Int64.logand
       | Por -> Int64.logor
     in
     cpu.xlo.{dst} <- f cpu.xlo.{dst} slo;
     cpu.xhi.{dst} <- f cpu.xhi.{dst} shi
   | Ucomis (p, dst, src) ->
     let a, b =
       if p = Sd then (f64 cpu.xlo.{dst}, f64 (xop_load64 cpu src))
       else (f32 cpu.xlo.{dst}, f32 (xop_load32 cpu src))
     in
     if Float.is_nan a || Float.is_nan b then begin
       cpu.zf <- true; cpu.pf <- true; cpu.cf <- true
     end
     else begin
       cpu.zf <- a = b;
       cpu.pf <- false;
       cpu.cf <- a < b
     end;
     cpu.o_f <- false; cpu.sf <- false; cpu.af <- false
   | Cvtsi2sd (x, w, src) ->
     let v = sext w (read_op cpu w src) in
     cpu.xlo.{x} <- b64 (Int64.to_float v)
   | Cvttsd2si (r, w, src) ->
     let f = f64 (xop_load64 cpu src) in
     let v = Int64.of_float f in (* truncates toward zero *)
     set_reg cpu w r (trunc w v)
   | Cvtsd2ss (x, src) ->
     let f = f64 (xop_load64 cpu src) in
     cpu.xlo.{x} <-
       Int64.logor (Int64.logand cpu.xlo.{x} 0xFFFFFFFF00000000L) (b32 f)
   | Cvtss2sd (x, src) ->
     let f = f32 (xop_load32 cpu src) in
     cpu.xlo.{x} <- b64 f
   | Unpcklpd (x, src) ->
     let slo, _ = xop_load128 cpu src in
     cpu.xhi.{x} <- slo
   | Shufpd (x, src, imm) ->
     let slo, shi = xop_load128 cpu src in
     let dlo, dhi = (cpu.xlo.{x}, cpu.xhi.{x}) in
     cpu.xlo.{x} <- (if imm land 1 = 0 then dlo else dhi);
     cpu.xhi.{x} <- (if imm land 2 = 0 then slo else shi)
   | Padd (w, x, src) ->
     let slo, shi = xop_load128 cpu src in
     (match w with
      | W64 ->
        cpu.xlo.{x} <- Int64.add cpu.xlo.{x} slo;
        cpu.xhi.{x} <- Int64.add cpu.xhi.{x} shi
      | W32 ->
        let s = lanes32 (slo, shi) in
        let d = lanes32 (cpu.xlo.{x}, cpu.xhi.{x}) in
        let r = Array.init 4 (fun i -> trunc W32 (Int64.add d.(i) s.(i))) in
        let lo, hi = pack32 r in
        cpu.xlo.{x} <- lo;
        cpu.xhi.{x} <- hi
      | _ -> err "unsupported padd lane width")
   | Nop _ -> ()
   | Ud2 -> err "ud2 executed"
   | Int3 -> err "int3 executed");
  cpu.pen

let step cpu =
  let a = cpu.rip in
  let i, len = fetch cpu cpu.rip in
  cpu.rip <- cpu.rip + len;
  let penalty = exec cpu i in
  cpu.icount <- cpu.icount + 1;
  let c = Cost.insn_cost cpu.cost i + penalty in
  cpu.cycles <- cpu.cycles + c;
  if !Prov.enabled then Prov.record_insn a c

(* -------- instruction translation -------- *)

(* [translate] pre-compiles one decoded instruction into a closure
   with operand kinds, register indices, widths and immediates
   resolved at translation time, so the block engine's inner loop pays
   neither the outer instruction dispatch nor the per-access operand
   matches.  Every closure returns the dynamic cycle penalty, exactly
   like {!exec}, and semantics are kept identical by reusing the same
   flag/memory helpers; infrequent forms simply fall back to [exec]. *)

(* Pre-resolve an addressing mode into a direct closure: the operand's
   base/index/displacement shape is dispatched once at translation
   time, so the per-execution path is plain native-int arithmetic.
   Native int sums agree with the Int64 path because the final mask to
   48 bits commutes with wrap-around at both 2^63 and 2^64. *)
let addr_of (m : mem_addr) : t -> int =
  if m.seg <> None || m.rip then fun cpu -> resolve cpu m
  else
    let disp = m.disp in
    match (m.base, m.index) with
    | Some b, None ->
      let b = Reg.index b in
      if disp = 0 then
        fun cpu -> Int64.to_int (A1.unsafe_get cpu.regs b) land addr_mask
      else
        fun cpu ->
          (Int64.to_int (A1.unsafe_get cpu.regs b) + disp) land addr_mask
    | Some b, Some (i, s) ->
      let b = Reg.index b and i = Reg.index i and f = scale_factor s in
      fun cpu ->
        (Int64.to_int (A1.unsafe_get cpu.regs b)
         + (Int64.to_int (A1.unsafe_get cpu.regs i) * f)
         + disp)
        land addr_mask
    | None, Some (i, s) ->
      let i = Reg.index i and f = scale_factor s in
      fun cpu ->
        ((Int64.to_int (A1.unsafe_get cpu.regs i) * f) + disp)
        land addr_mask
    | None, None -> fun _ -> disp land addr_mask

(* full 64-bit effective address for lea, same pre-resolution *)
let eff_of (m : mem_addr) : t -> int64 =
  if m.seg <> None || m.rip then fun cpu -> effective cpu m
  else
    let disp = Int64.of_int m.disp in
    match (m.base, m.index) with
    | Some b, None ->
      let b = Reg.index b in
      if m.disp = 0 then fun cpu -> A1.unsafe_get cpu.regs b
      else fun cpu -> Int64.add (A1.unsafe_get cpu.regs b) disp
    | Some b, Some (i, s) ->
      let b = Reg.index b and i = Reg.index i in
      let f = Int64.of_int (scale_factor s) in
      fun cpu ->
        Int64.add
          (Int64.add (A1.unsafe_get cpu.regs b)
             (Int64.mul (A1.unsafe_get cpu.regs i) f))
          disp
    | None, _ -> fun cpu -> effective cpu m

let rd_operand w (op : operand) : t -> int64 =
  match op with
  | OReg r ->
    let i = Reg.index r in
    (match w with
     | W64 -> fun cpu -> A1.unsafe_get cpu.regs i
     | W32 -> fun cpu -> Int64.logand (A1.unsafe_get cpu.regs i) 0xFFFFFFFFL
     | W16 -> fun cpu -> Int64.logand (A1.unsafe_get cpu.regs i) 0xFFFFL
     | W8 -> fun cpu -> Int64.logand (A1.unsafe_get cpu.regs i) 0xFFL)
  | OReg8H r -> fun cpu -> get_reg8h cpu r
  | OImm v -> let v = trunc w v in fun _ -> v
  | OMem m ->
    let af = addr_of m in
    (match w with
     | W8 -> fun cpu -> Int64.of_int (Mem.read_u8 cpu.mem (af cpu))
     | W16 -> fun cpu -> Int64.of_int (Mem.read_u16 cpu.mem (af cpu))
     | W32 -> fun cpu -> Int64.of_int (Mem.read_u32 cpu.mem (af cpu))
     | W64 ->
       fun cpu ->
         let a = af cpu in
         let off = a land 0xFFF in
         if off <= 0xFF8 then
           Bytes.get_int64_le (Mem.page cpu.mem (a lsr 12)) off
         else Mem.read_u64 cpu.mem a)

let wr_operand w (op : operand) : t -> int64 -> unit =
  match op with
  | OReg r ->
    let i = Reg.index r in
    (match w with
     | W64 -> fun cpu v -> A1.unsafe_set cpu.regs i v
     | W32 -> fun cpu v -> cpu.regs.{i} <- trunc W32 v
     | _ -> fun cpu v -> set_reg cpu w r v)
  | OReg8H r -> fun cpu v -> set_reg8h cpu r v
  | OMem m ->
    let af = addr_of m in
    (match w with
     | W8 -> fun cpu v -> Mem.write_u8 cpu.mem (af cpu) (Int64.to_int v)
     | W16 -> fun cpu v -> Mem.write_u16 cpu.mem (af cpu) (Int64.to_int v)
     | W32 ->
       fun cpu v ->
         Mem.write_u32 cpu.mem (af cpu) (Int64.to_int (trunc W32 v))
     | W64 -> fun cpu v -> Mem.write_u64 cpu.mem (af cpu) v)
  | OImm _ -> fun _ _ -> err "cannot write to an immediate"

let fp_fun = function
  | FAdd -> ( +. )
  | FSub -> ( -. )
  | FMul -> ( *. )
  | FDiv -> ( /. )
  | FMin -> fun a b -> if a < b then a else b
  | FMax -> fun a b -> if a > b then a else b
  | FSqrt -> fun _ b -> sqrt b

let translate ?(dead_flags = false) (c : Cost.t) (i : insn) : t -> int =
  match i with
  (* dead-flag variants: the block-local liveness scan proved this
     insn's flag write is overwritten before any reader/exit/fault, so
     skip the lazy-record bookkeeping entirely (a dead cmp/test is a
     complete no-op) *)
  | Alu ((Add | Sub | And | Or | Xor) as op, ((W64 | W32) as w), OReg d,
         src)
    when dead_flags ->
    let di = Reg.index d and rd_s = rd_operand w src in
    (match (op, w) with
     | Add, W64 ->
       fun cpu ->
         A1.unsafe_set cpu.regs di
           (Int64.add (A1.unsafe_get cpu.regs di) (rd_s cpu)); 0
     | Add, _ ->
       fun cpu ->
         A1.unsafe_set cpu.regs di
           (Int64.logand
              (Int64.add (A1.unsafe_get cpu.regs di) (rd_s cpu))
              0xFFFFFFFFL); 0
     | Sub, W64 ->
       fun cpu ->
         A1.unsafe_set cpu.regs di
           (Int64.sub (A1.unsafe_get cpu.regs di) (rd_s cpu)); 0
     | Sub, _ ->
       fun cpu ->
         A1.unsafe_set cpu.regs di
           (Int64.logand
              (Int64.sub (A1.unsafe_get cpu.regs di) (rd_s cpu))
              0xFFFFFFFFL); 0
     | And, _ ->
       (* source read is already masked to [w], so the AND masks the
          stale upper destination bits itself *)
       fun cpu ->
         A1.unsafe_set cpu.regs di
           (Int64.logand (A1.unsafe_get cpu.regs di) (rd_s cpu)); 0
     | Or, W64 ->
       fun cpu ->
         A1.unsafe_set cpu.regs di
           (Int64.logor (A1.unsafe_get cpu.regs di) (rd_s cpu)); 0
     | Or, _ ->
       fun cpu ->
         A1.unsafe_set cpu.regs di
           (Int64.logand
              (Int64.logor (A1.unsafe_get cpu.regs di) (rd_s cpu))
              0xFFFFFFFFL); 0
     | Xor, W64 ->
       fun cpu ->
         A1.unsafe_set cpu.regs di
           (Int64.logxor (A1.unsafe_get cpu.regs di) (rd_s cpu)); 0
     | Xor, _ ->
       fun cpu ->
         A1.unsafe_set cpu.regs di
           (Int64.logand
              (Int64.logxor (A1.unsafe_get cpu.regs di) (rd_s cpu))
              0xFFFFFFFFL); 0
     | (Cmp | Adc | Sbb), _ -> assert false)
  | Alu ((Add | Sub | And | Or | Xor) as op, w, dst, src) when dead_flags ->
    let rd_d = rd_operand w dst and rd_s = rd_operand w src in
    let wr_d = wr_operand w dst in
    (match op with
     | Add -> fun cpu -> wr_d cpu (trunc w (Int64.add (rd_d cpu) (rd_s cpu))); 0
     | Sub -> fun cpu -> wr_d cpu (trunc w (Int64.sub (rd_d cpu) (rd_s cpu))); 0
     | And -> fun cpu -> wr_d cpu (Int64.logand (rd_d cpu) (rd_s cpu)); 0
     | Or -> fun cpu -> wr_d cpu (Int64.logor (rd_d cpu) (rd_s cpu)); 0
     | Xor -> fun cpu -> wr_d cpu (Int64.logxor (rd_d cpu) (rd_s cpu)); 0
     | Cmp | Adc | Sbb -> assert false)
  | Alu (Cmp, _, _, _) when dead_flags -> (fun _ -> 0)
  | Test _ when dead_flags -> (fun _ -> 0)
  | Imul2 (w, dst, src) when dead_flags ->
    let rd = rd_operand w src in
    fun cpu ->
      set_reg cpu w dst
        (trunc w (Int64.mul (sext w (get_reg cpu w dst)) (sext w (rd cpu))));
      0
  | Imul3 (W64, dst, src, imm) when dead_flags ->
    let rd = rd_operand W64 src and di = Reg.index dst in
    fun cpu -> A1.unsafe_set cpu.regs di (Int64.mul (rd cpu) imm); 0
  | Imul3 (w, dst, src, imm) when dead_flags ->
    let rd = rd_operand w src in
    let b = sext w (trunc w imm) in
    fun cpu -> set_reg cpu w dst (trunc w (Int64.mul (sext w (rd cpu)) b)); 0
  | Mov (W64, OReg d, OReg s) ->
    let d = Reg.index d and s = Reg.index s in
    fun cpu -> cpu.regs.{d} <- cpu.regs.{s}; 0
  | Mov (W64, OReg d, OMem m) ->
    let d = Reg.index d and af = addr_of m in
    fun cpu ->
      let a = af cpu in
      let off = a land 0xFFF in
      A1.unsafe_set cpu.regs d
        (if off <= 0xFF8 then
           Bytes.get_int64_le (Mem.page cpu.mem (a lsr 12)) off
         else Mem.read_u64 cpu.mem a);
      0
  | Mov (W32, OReg d, OMem m) ->
    let d = Reg.index d and af = addr_of m in
    fun cpu -> cpu.regs.{d} <- Int64.of_int (Mem.read_u32 cpu.mem (af cpu)); 0
  | Mov (W64, OMem m, OReg s) ->
    let s = Reg.index s and af = addr_of m in
    fun cpu ->
      let a = af cpu in
      let off = a land 0xFFF in
      let v = A1.unsafe_get cpu.regs s in
      if off <= 0xFF8 then
        Bytes.set_int64_le (Mem.page cpu.mem (a lsr 12)) off v
      else Mem.write_u64 cpu.mem a v;
      0
  | Mov (W32, OMem m, OReg s) ->
    let s = Reg.index s and af = addr_of m in
    fun cpu ->
      Mem.write_u32 cpu.mem (af cpu) (Int64.to_int cpu.regs.{s}); 0
  | Mov (W64, OReg d, OImm v) ->
    let d = Reg.index d in
    fun cpu -> cpu.regs.{d} <- v; 0
  | Mov (W32, OReg d, OImm v) ->
    let d = Reg.index d and v = trunc W32 v in
    fun cpu -> cpu.regs.{d} <- v; 0
  | Mov (w, dst, src) ->
    let rd = rd_operand w src and wr = wr_operand w dst in
    fun cpu -> wr cpu (rd cpu); 0
  | Movabs (r, v) ->
    let d = Reg.index r in
    fun cpu -> cpu.regs.{d} <- v; 0
  | Movzx ((W64 | W32), d, sw, src) ->
    (* the source read is already zero-extended past [sw] *)
    let d = Reg.index d and rd = rd_operand sw src in
    fun cpu -> cpu.regs.{d} <- rd cpu; 0
  | Movzx (dw, dst, sw, src) ->
    let rd = rd_operand sw src in
    fun cpu -> set_reg cpu dw dst (rd cpu); 0
  | Movsx (W64, d, sw, src) ->
    let d = Reg.index d and rd = rd_operand sw src in
    fun cpu -> cpu.regs.{d} <- sext sw (rd cpu); 0
  | Movsx (dw, dst, sw, src) ->
    let rd = rd_operand sw src in
    fun cpu -> set_reg cpu dw dst (trunc dw (sext sw (rd cpu))); 0
  | Lea (dst, m) ->
    let d = Reg.index dst and eff = eff_of { m with seg = None } in
    fun cpu -> cpu.regs.{d} <- eff cpu; 0
  | Alu ((Add | Sub | Cmp | And | Or | Xor) as op, ((W64 | W32) as w),
         OReg d, src) ->
    (* register destination: read and write the GPR cell directly, so
       the common ALU forms cost one arity-1 closure call for the
       source operand and no generic write dispatch *)
    let di = Reg.index d and rd_s = rd_operand w src in
    let rec_add cpu a b r =
      cpu.fl_op <- FlAdd; cpu.fl_w <- w;
      Bigarray.Array1.unsafe_set cpu.flbuf 0 a;
      Bigarray.Array1.unsafe_set cpu.flbuf 1 b;
      Bigarray.Array1.unsafe_set cpu.flbuf 2 r;
      cpu.fl_records <- cpu.fl_records + 1
    in
    let rec_sub cpu a b r =
      cpu.fl_op <- FlSub; cpu.fl_w <- w;
      Bigarray.Array1.unsafe_set cpu.flbuf 0 a;
      Bigarray.Array1.unsafe_set cpu.flbuf 1 b;
      Bigarray.Array1.unsafe_set cpu.flbuf 2 r;
      cpu.fl_records <- cpu.fl_records + 1
    in
    let rec_logic cpu r =
      cpu.fl_op <- FlLogic; cpu.fl_w <- w;
      Bigarray.Array1.unsafe_set cpu.flbuf 2 r;
      cpu.fl_records <- cpu.fl_records + 1
    in
    (match (op, w) with
     | Add, W64 ->
       fun cpu ->
         let a = A1.unsafe_get cpu.regs di in
         let b = rd_s cpu in
         let r = Int64.add a b in
         rec_add cpu a b r;
         A1.unsafe_set cpu.regs di r; 0
     | Add, _ ->
       fun cpu ->
         let a = Int64.logand (A1.unsafe_get cpu.regs di) 0xFFFFFFFFL in
         let b = rd_s cpu in
         let r = Int64.logand (Int64.add a b) 0xFFFFFFFFL in
         rec_add cpu a b r;
         A1.unsafe_set cpu.regs di r; 0
     | Sub, W64 ->
       fun cpu ->
         let a = A1.unsafe_get cpu.regs di in
         let b = rd_s cpu in
         let r = Int64.sub a b in
         rec_sub cpu a b r;
         A1.unsafe_set cpu.regs di r; 0
     | Sub, _ ->
       fun cpu ->
         let a = Int64.logand (A1.unsafe_get cpu.regs di) 0xFFFFFFFFL in
         let b = rd_s cpu in
         let r = Int64.logand (Int64.sub a b) 0xFFFFFFFFL in
         rec_sub cpu a b r;
         A1.unsafe_set cpu.regs di r; 0
     | Cmp, W64 ->
       fun cpu ->
         let a = A1.unsafe_get cpu.regs di in
         let b = rd_s cpu in
         rec_sub cpu a b (Int64.sub a b); 0
     | Cmp, _ ->
       fun cpu ->
         let a = Int64.logand (A1.unsafe_get cpu.regs di) 0xFFFFFFFFL in
         let b = rd_s cpu in
         rec_sub cpu a b (Int64.logand (Int64.sub a b) 0xFFFFFFFFL); 0
     | And, _ ->
       fun cpu ->
         let a = trunc w (A1.unsafe_get cpu.regs di) in
         let r = Int64.logand a (rd_s cpu) in
         rec_logic cpu r;
         A1.unsafe_set cpu.regs di r; 0
     | Or, _ ->
       fun cpu ->
         let a = trunc w (A1.unsafe_get cpu.regs di) in
         let r = Int64.logor a (rd_s cpu) in
         rec_logic cpu r;
         A1.unsafe_set cpu.regs di r; 0
     | Xor, _ ->
       fun cpu ->
         let a = trunc w (A1.unsafe_get cpu.regs di) in
         let r = Int64.logxor a (rd_s cpu) in
         rec_logic cpu r;
         A1.unsafe_set cpu.regs di r; 0
     | (Adc | Sbb), _ -> assert false)
  | Alu (op, w, dst, src) ->
    let rd_d = rd_operand w dst and rd_s = rd_operand w src in
    let wr_d = wr_operand w dst in
    (match op with
     | Add ->
       fun cpu ->
         let a = rd_d cpu in
         let b = rd_s cpu in
         let r = trunc w (Int64.add a b) in
         cpu.fl_op <- FlAdd; cpu.fl_w <- w;
         Bigarray.Array1.unsafe_set cpu.flbuf 0 a; Bigarray.Array1.unsafe_set cpu.flbuf 1 b; Bigarray.Array1.unsafe_set cpu.flbuf 2 r;
         cpu.fl_records <- cpu.fl_records + 1;
         wr_d cpu r; 0
     | Sub ->
       fun cpu ->
         let a = rd_d cpu in
         let b = rd_s cpu in
         let r = trunc w (Int64.sub a b) in
         cpu.fl_op <- FlSub; cpu.fl_w <- w;
         Bigarray.Array1.unsafe_set cpu.flbuf 0 a; Bigarray.Array1.unsafe_set cpu.flbuf 1 b; Bigarray.Array1.unsafe_set cpu.flbuf 2 r;
         cpu.fl_records <- cpu.fl_records + 1;
         wr_d cpu r; 0
     | Cmp ->
       fun cpu ->
         let a = rd_d cpu in
         let b = rd_s cpu in
         cpu.fl_op <- FlSub; cpu.fl_w <- w;
         Bigarray.Array1.unsafe_set cpu.flbuf 0 a; Bigarray.Array1.unsafe_set cpu.flbuf 1 b;
         Bigarray.Array1.unsafe_set cpu.flbuf 2 (trunc w (Int64.sub a b));
         cpu.fl_records <- cpu.fl_records + 1;
         0
     | And ->
       fun cpu ->
         let r = Int64.logand (rd_d cpu) (rd_s cpu) in
         cpu.fl_op <- FlLogic; cpu.fl_w <- w; Bigarray.Array1.unsafe_set cpu.flbuf 2 (r);
         cpu.fl_records <- cpu.fl_records + 1;
         wr_d cpu r; 0
     | Or ->
       fun cpu ->
         let r = Int64.logor (rd_d cpu) (rd_s cpu) in
         cpu.fl_op <- FlLogic; cpu.fl_w <- w; Bigarray.Array1.unsafe_set cpu.flbuf 2 (r);
         cpu.fl_records <- cpu.fl_records + 1;
         wr_d cpu r; 0
     | Xor ->
       fun cpu ->
         let r = Int64.logxor (rd_d cpu) (rd_s cpu) in
         cpu.fl_op <- FlLogic; cpu.fl_w <- w; Bigarray.Array1.unsafe_set cpu.flbuf 2 (r);
         cpu.fl_records <- cpu.fl_records + 1;
         wr_d cpu r; 0
     | Adc | Sbb -> (fun cpu -> exec cpu i))
  | Test (w, a, b) ->
    let rd_a = rd_operand w a and rd_b = rd_operand w b in
    fun cpu ->
      cpu.fl_op <- FlLogic; cpu.fl_w <- w;
      Bigarray.Array1.unsafe_set cpu.flbuf 2 (Int64.logand (rd_a cpu) (rd_b cpu));
      cpu.fl_records <- cpu.fl_records + 1;
      0
  | Unop (op, w, dst) ->
    let rd = rd_operand w dst and wr = wr_operand w dst in
    (match op with
     | Inc ->
       fun cpu ->
         materialize cpu; (* inc preserves CF: need its live value *)
         let a = rd cpu in
         let r = trunc w (Int64.add a 1L) in
         let cf = cpu.cf in
         flags_add cpu w a 1L r;
         cpu.cf <- cf; wr cpu r; 0
     | Dec ->
       fun cpu ->
         materialize cpu;
         let a = rd cpu in
         let r = trunc w (Int64.sub a 1L) in
         let cf = cpu.cf in
         flags_sub cpu w a 1L r;
         cpu.cf <- cf; wr cpu r; 0
     | Not -> (fun cpu -> wr cpu (trunc w (Int64.lognot (rd cpu))); 0)
     | Neg -> (fun cpu -> exec cpu i))
  | Push src ->
    let rd = rd_operand W64 src in
    fun cpu -> push64 cpu (rd cpu); 0
  | Pop dst ->
    let wr = wr_operand W64 dst in
    fun cpu -> wr cpu (pop64 cpu); 0
  | Call (Abs a) ->
    fun cpu ->
      push64 cpu (Int64.of_int cpu.rip);
      cpu.rip <- a; 0
  | CallInd op ->
    let rd = rd_operand W64 op in
    fun cpu ->
      let tgt = Int64.to_int (rd cpu) land addr_mask in
      push64 cpu (Int64.of_int cpu.rip);
      cpu.rip <- tgt; 0
  | Ret -> (fun cpu -> cpu.rip <- Int64.to_int (pop64 cpu) land addr_mask; 0)
  | Jmp (Abs a) -> (fun cpu -> cpu.rip <- a; 0)
  | JmpInd op ->
    let rd = rd_operand W64 op in
    fun cpu -> cpu.rip <- Int64.to_int (rd cpu) land addr_mask; 0
  | Jcc (cc, Abs a) ->
    let taken = c.branch_taken and not_taken = c.branch_not_taken in
    fun cpu ->
      if cond cpu cc then begin cpu.rip <- a; taken end
      else not_taken
  | Cmov (cc, w, dst, src) ->
    let rd = rd_operand w src in
    (match w with
     | W32 ->
       fun cpu ->
         let v = rd cpu in
         if cond cpu cc then set_reg cpu W32 dst v
         else set_reg cpu W32 dst (get_reg cpu W32 dst);
         0
     | _ ->
       fun cpu ->
         let v = rd cpu in
         if cond cpu cc then set_reg cpu w dst v;
         0)
  | Setcc (cc, dst) ->
    let wr = wr_operand W8 dst in
    fun cpu -> wr cpu (if cond cpu cc then 1L else 0L); 0
  | Imul2 (w, dst, src) ->
    (* flags (SF/ZF/PF and the overflow-derived CF/OF) are recorded
       lazily: [FlImul] materialization recomputes the product from the
       sign-extended operands, so skipping set_szp + the overflow check
       here is unobservable *)
    let rd = rd_operand w src in
    fun cpu ->
      let a = sext w (get_reg cpu w dst) in
      let b = sext w (rd cpu) in
      let r = trunc w (Int64.mul a b) in
      Bigarray.Array1.unsafe_set cpu.flbuf 0 a;
      Bigarray.Array1.unsafe_set cpu.flbuf 1 b;
      cpu.fl_op <- FlImul; cpu.fl_w <- w;
      cpu.fl_records <- cpu.fl_records + 1;
      set_reg cpu w dst r; 0
  | Imul3 (W64, dst, src, imm) ->
    let rd = rd_operand W64 src in
    let di = Reg.index dst in
    fun cpu ->
      let a = rd cpu in
      Bigarray.Array1.unsafe_set cpu.flbuf 0 a;
      Bigarray.Array1.unsafe_set cpu.flbuf 1 imm;
      cpu.fl_op <- FlImul; cpu.fl_w <- W64;
      cpu.fl_records <- cpu.fl_records + 1;
      A1.unsafe_set cpu.regs di (Int64.mul a imm); 0
  | Imul3 (w, dst, src, imm) ->
    let rd = rd_operand w src in
    let b = sext w (trunc w imm) in
    fun cpu ->
      let a = sext w (rd cpu) in
      let r = trunc w (Int64.mul a b) in
      Bigarray.Array1.unsafe_set cpu.flbuf 0 a;
      Bigarray.Array1.unsafe_set cpu.flbuf 1 b;
      cpu.fl_op <- FlImul; cpu.fl_w <- w;
      cpu.fl_records <- cpu.fl_records + 1;
      set_reg cpu w dst r; 0
  | SseMov (Movsd, Xr d, Xr s) ->
    fun cpu -> cpu.xlo.{d} <- cpu.xlo.{s}; 0
  | SseMov (Movsd, Xr d, Xm m) ->
    let af = addr_of m in
    fun cpu ->
      let a = af cpu in
      let off = a land 0xFFF in
      A1.unsafe_set cpu.xlo d
        (if off <= 0xFF8 then
           Bytes.get_int64_le (Mem.page cpu.mem (a lsr 12)) off
         else Mem.read_u64 cpu.mem a);
      A1.unsafe_set cpu.xhi d 0L; 0
  | SseMov (Movsd, Xm m, Xr s) ->
    let af = addr_of m in
    fun cpu ->
      let a = af cpu in
      let off = a land 0xFFF in
      let v = A1.unsafe_get cpu.xlo s in
      if off <= 0xFF8 then
        Bytes.set_int64_le (Mem.page cpu.mem (a lsr 12)) off v
      else Mem.write_u64 cpu.mem a v;
      0
  | SseMov (Movq, Xr d, Xr s) ->
    fun cpu ->
      cpu.xlo.{d} <- cpu.xlo.{s};
      cpu.xhi.{d} <- 0L; 0
  | SseMov ((Movaps | Movapd | Movdqa), Xr d, Xr s) ->
    fun cpu ->
      cpu.xlo.{d} <- cpu.xlo.{s};
      cpu.xhi.{d} <- cpu.xhi.{s}; 0
  | SseMov ((Movaps | Movapd | Movdqa), Xr d, Xm m) ->
    let af = addr_of m in
    fun cpu ->
      let a = af cpu in
      if not (is_16aligned a) then err "misaligned movaps load";
      cpu.xlo.{d} <- Mem.read_u64 cpu.mem a;
      cpu.xhi.{d} <- Mem.read_u64 cpu.mem (a + 8); 0
  | SseMov ((Movaps | Movapd | Movdqa), Xm m, Xr s) ->
    let af = addr_of m in
    fun cpu ->
      let a = af cpu in
      if not (is_16aligned a) then err "misaligned movaps store";
      Mem.write_u64 cpu.mem a cpu.xlo.{s};
      Mem.write_u64 cpu.mem (a + 8) cpu.xhi.{s}; 0
  | SseMov ((Movups | Movupd | Movdqu), Xr d, Xm m) ->
    let up = c.unaligned_vec and af = addr_of m in
    fun cpu ->
      let a = af cpu in
      cpu.xlo.{d} <- Mem.read_u64 cpu.mem a;
      cpu.xhi.{d} <- Mem.read_u64 cpu.mem (a + 8);
      if is_16aligned a then 0 else up
  | SseMov ((Movups | Movupd | Movdqu), Xm m, Xr s) ->
    let up = c.unaligned_vec and af = addr_of m in
    fun cpu ->
      let a = af cpu in
      Mem.write_u64 cpu.mem a cpu.xlo.{s};
      Mem.write_u64 cpu.mem (a + 8) cpu.xhi.{s};
      if is_16aligned a then 0 else up
  | MovqXR (x, r) ->
    let r = Reg.index r in
    fun cpu ->
      cpu.xlo.{x} <- cpu.regs.{r};
      cpu.xhi.{x} <- 0L; 0
  | MovqRX (r, x) ->
    let r = Reg.index r in
    fun cpu -> cpu.regs.{r} <- cpu.xlo.{x}; 0
  | SseArith ((FAdd | FSub | FMul | FDiv) as op, Sd, dst, src) ->
    (* per-op closures with the float work written out inline: the whole
       bits->float->op->bits chain stays unboxed (calling through the
       [fp_fun] closure, or through the [f64]/[b64] wrappers, would box
       both operands and the result on every scalar FP instruction) *)
    (match src with
     | Xr s ->
       (match op with
        | FAdd ->
          fun cpu ->
            A1.unsafe_set cpu.xlo dst
              (Int64.bits_of_float
                 (Int64.float_of_bits (A1.unsafe_get cpu.xlo dst)
                  +. Int64.float_of_bits (A1.unsafe_get cpu.xlo s)));
            0
        | FSub ->
          fun cpu ->
            A1.unsafe_set cpu.xlo dst
              (Int64.bits_of_float
                 (Int64.float_of_bits (A1.unsafe_get cpu.xlo dst)
                  -. Int64.float_of_bits (A1.unsafe_get cpu.xlo s)));
            0
        | FMul ->
          fun cpu ->
            A1.unsafe_set cpu.xlo dst
              (Int64.bits_of_float
                 (Int64.float_of_bits (A1.unsafe_get cpu.xlo dst)
                  *. Int64.float_of_bits (A1.unsafe_get cpu.xlo s)));
            0
        | _ ->
          fun cpu ->
            A1.unsafe_set cpu.xlo dst
              (Int64.bits_of_float
                 (Int64.float_of_bits (A1.unsafe_get cpu.xlo dst)
                  /. Int64.float_of_bits (A1.unsafe_get cpu.xlo s)));
            0)
     | Xm m ->
       let af = addr_of m in
       (match op with
        | FAdd ->
          fun cpu ->
            A1.unsafe_set cpu.xlo dst
              (Int64.bits_of_float
                 (Int64.float_of_bits (A1.unsafe_get cpu.xlo dst)
                  +. Int64.float_of_bits (let a = af cpu in let off = a land 0xFFF in if off <= 0xFF8 then Bytes.get_int64_le (Mem.page cpu.mem (a lsr 12)) off else Mem.read_u64 cpu.mem a)));
            0
        | FSub ->
          fun cpu ->
            A1.unsafe_set cpu.xlo dst
              (Int64.bits_of_float
                 (Int64.float_of_bits (A1.unsafe_get cpu.xlo dst)
                  -. Int64.float_of_bits (let a = af cpu in let off = a land 0xFFF in if off <= 0xFF8 then Bytes.get_int64_le (Mem.page cpu.mem (a lsr 12)) off else Mem.read_u64 cpu.mem a)));
            0
        | FMul ->
          fun cpu ->
            A1.unsafe_set cpu.xlo dst
              (Int64.bits_of_float
                 (Int64.float_of_bits (A1.unsafe_get cpu.xlo dst)
                  *. Int64.float_of_bits (let a = af cpu in let off = a land 0xFFF in if off <= 0xFF8 then Bytes.get_int64_le (Mem.page cpu.mem (a lsr 12)) off else Mem.read_u64 cpu.mem a)));
            0
        | _ ->
          fun cpu ->
            A1.unsafe_set cpu.xlo dst
              (Int64.bits_of_float
                 (Int64.float_of_bits (A1.unsafe_get cpu.xlo dst)
                  /. Int64.float_of_bits (let a = af cpu in let off = a land 0xFFF in if off <= 0xFF8 then Bytes.get_int64_le (Mem.page cpu.mem (a lsr 12)) off else Mem.read_u64 cpu.mem a)));
            0))
  | SseArith (op, Sd, dst, src) ->
    let f = fp_fun op in
    (match src with
     | Xr s ->
       fun cpu ->
         cpu.xlo.{dst} <- b64 (f (f64 cpu.xlo.{dst}) (f64 cpu.xlo.{s})); 0
     | Xm m ->
       let af = addr_of m in
       fun cpu ->
         let b = f64 (Mem.read_u64 cpu.mem (af cpu)) in
         cpu.xlo.{dst} <- b64 (f (f64 cpu.xlo.{dst}) b); 0)
  | SseArith ((FAdd | FSub | FMul | FDiv) as op, Pd, dst, Xr s) ->
    (* register source: no alignment penalty possible; per-op closures
       keep both lanes' float chains unboxed (see the Sd arms) *)
    (match op with
     | FAdd ->
       fun cpu ->
         A1.unsafe_set cpu.xlo dst
           (Int64.bits_of_float
              (Int64.float_of_bits (A1.unsafe_get cpu.xlo dst)
               +. Int64.float_of_bits (A1.unsafe_get cpu.xlo s)));
         A1.unsafe_set cpu.xhi dst
           (Int64.bits_of_float
              (Int64.float_of_bits (A1.unsafe_get cpu.xhi dst)
               +. Int64.float_of_bits (A1.unsafe_get cpu.xhi s)));
         0
     | FSub ->
       fun cpu ->
         A1.unsafe_set cpu.xlo dst
           (Int64.bits_of_float
              (Int64.float_of_bits (A1.unsafe_get cpu.xlo dst)
               -. Int64.float_of_bits (A1.unsafe_get cpu.xlo s)));
         A1.unsafe_set cpu.xhi dst
           (Int64.bits_of_float
              (Int64.float_of_bits (A1.unsafe_get cpu.xhi dst)
               -. Int64.float_of_bits (A1.unsafe_get cpu.xhi s)));
         0
     | FMul ->
       fun cpu ->
         A1.unsafe_set cpu.xlo dst
           (Int64.bits_of_float
              (Int64.float_of_bits (A1.unsafe_get cpu.xlo dst)
               *. Int64.float_of_bits (A1.unsafe_get cpu.xlo s)));
         A1.unsafe_set cpu.xhi dst
           (Int64.bits_of_float
              (Int64.float_of_bits (A1.unsafe_get cpu.xhi dst)
               *. Int64.float_of_bits (A1.unsafe_get cpu.xhi s)));
         0
     | _ ->
       fun cpu ->
         A1.unsafe_set cpu.xlo dst
           (Int64.bits_of_float
              (Int64.float_of_bits (A1.unsafe_get cpu.xlo dst)
               /. Int64.float_of_bits (A1.unsafe_get cpu.xlo s)));
         A1.unsafe_set cpu.xhi dst
           (Int64.bits_of_float
              (Int64.float_of_bits (A1.unsafe_get cpu.xhi dst)
               /. Int64.float_of_bits (A1.unsafe_get cpu.xhi s)));
         0)
  | SseArith (op, Pd, dst, (Xr _ as src)) ->
    let f = fp_fun op in
    fun cpu ->
      let slo, shi = xop_load128 cpu src in
      cpu.xlo.{dst} <- b64 (f (f64 cpu.xlo.{dst}) (f64 slo));
      cpu.xhi.{dst} <- b64 (f (f64 cpu.xhi.{dst}) (f64 shi));
      0
  | SseLogic (op, dst, Xr s) ->
    (* per-op closures: calling through an Int64.logxor alias would go
       via caml_apply2 on every execution *)
    (match op with
     | Pxor | Xorps | Xorpd ->
       fun cpu ->
         A1.unsafe_set cpu.xlo dst
           (Int64.logxor (A1.unsafe_get cpu.xlo dst) (A1.unsafe_get cpu.xlo s));
         A1.unsafe_set cpu.xhi dst
           (Int64.logxor (A1.unsafe_get cpu.xhi dst) (A1.unsafe_get cpu.xhi s));
         0
     | Pand | Andps | Andpd ->
       fun cpu ->
         A1.unsafe_set cpu.xlo dst
           (Int64.logand (A1.unsafe_get cpu.xlo dst) (A1.unsafe_get cpu.xlo s));
         A1.unsafe_set cpu.xhi dst
           (Int64.logand (A1.unsafe_get cpu.xhi dst) (A1.unsafe_get cpu.xhi s));
         0
     | Por ->
       fun cpu ->
         A1.unsafe_set cpu.xlo dst
           (Int64.logor (A1.unsafe_get cpu.xlo dst) (A1.unsafe_get cpu.xlo s));
         A1.unsafe_set cpu.xhi dst
           (Int64.logor (A1.unsafe_get cpu.xhi dst) (A1.unsafe_get cpu.xhi s));
         0)
  | Nop _ -> (fun _ -> 0)
  | _ -> (fun cpu -> exec cpu i)

(* -------- translation-block engine -------- *)

(* cap on pre-decoded instructions per superblock; straight-line runs
   longer than this are split into consecutive (chained) blocks *)
let max_block_insns = 256

(** Magic return address that stops {!run}. *)
let stop_addr = 0xDEAD0000

(* unconditional direct jumps followed per block: each one opens a new
   (potentially disjoint) byte range in [sb_ranges] *)
let max_jmp_follow = 4

(* Decode the run at [entry], following unconditional direct jumps
   (bounded, never into already-covered bytes), and survive a decode
   failure in the middle: the decodable prefix still becomes a valid
   block (its last rip is the faulting address, so the next lookup
   re-raises the typed error exactly there — the same behaviour as the
   single-step engine, with nothing bogus left in the block cache).
   Only a failure on the very first instruction propagates.  Returns
   the decoded (addr, insn, rip-after) triples plus the covered byte
   ranges. *)
let decode_prefix cpu entry ~max =
  let rec go a n segs seg_lo jmps acc =
    match fetch cpu a with
    | exception Err.Error { stage = Err.Decode; _ } when acc <> [] ->
      (List.rev acc, List.rev ((seg_lo, a) :: segs))
    | i, len ->
      let acc = (a, i, a + len) :: acc in
      let segs_here = (seg_lo, a + len) :: segs in
      if n + 1 >= max then (List.rev acc, List.rev segs_here)
      else if Decode.is_terminator i then
        match i with
        | Jmp (Abs t)
          when jmps < max_jmp_follow && t <> stop_addr
               && t land addr_mask = t && t >= 0
               && not
                    (List.exists
                       (fun (lo, hi) -> t >= lo && t < hi)
                       segs_here) ->
          (* keep decoding at the jump target: the Jmp stays in the
             block (its closure redirects rip, its cost is charged) and
             execution simply continues into the next range *)
          go t (n + 1) segs_here t (jmps + 1) acc
        | _ -> (List.rev acc, List.rev segs_here)
      else go (a + len) (n + 1) segs seg_lo jmps acc
  in
  go entry 0 [] entry 0 []

(* -------- mega-op fusion -------- *)

(* Raised by a trace side-exit: the current slot ran to completion,
   set rip to the fall-through target and stashed its branch penalty
   in [cpu.pen]; the block loop converts this into an exact early
   block completion.  Constant exception: raising it allocates
   nothing. *)
exception Trace_exit

(* Fusible instructions: their translated closures can never raise, so
   a fused slot either runs completely or not at all and the engine's
   exact executed-prefix accounting survives.  (Memory never faults —
   {!Mem} is demand-paged — so the raising forms are only traps,
   division, aligned-move checks and unresolved labels.) *)
let fusible (i : insn) =
  match i with
  | Mov _ | Movabs _ | Movzx _ | Movsx _ | Lea _ -> true
  | Alu ((Add | Sub | Cmp | And | Or | Xor), _, _, _) -> true
  | Test _ | Shift _ -> true
  | Unop ((Inc | Dec | Not), _, _) -> true
  | Push _ | Pop _ -> true
  | Setcc _ | Cmov _ -> true
  | SseMov ((Movsd | Movss | Movq | Movups | Movupd | Movdqu), _, _) -> true
  | SseMov ((Movaps | Movapd | Movdqa), Xr _, Xr _) -> true
  | Imul2 _ | Imul3 _ -> true
  | MovqXR _ | MovqRX _ -> true
  | SseArith (_, (Sd | Ss), _, _) -> true
  | SseLogic _ -> true
  | Nop _ -> true
  | _ -> false

(* control flow allowed as the second element of a fused pair (the
   pair closure advances rip before running it, so a branch sees the
   same rip as its unfused translation) *)
let fusible_tail (i : insn) =
  match i with
  | Jcc (_, Abs _) | Jmp (Abs _) | Ret -> true
  | _ -> fusible i

(* -------- block-local flag liveness --------

   The lifter's flag-consumption analysis (lib/lifter/lift.ml flag
   cache) applied at execution time: scanning a block backward, a flag
   write is dead when a later insn overwrites all six flags before any
   possible reader, block exit, or faulting insn (a fault would expose
   the architectural flags mid-block).  Dead writers are translated
   with no lazy-record bookkeeping at all. *)

let flags_killed = function
  | Alu ((Add | Sub | Cmp | And | Or | Xor), _, _, _) | Test _
  | Imul2 _ | Imul3 _ -> true
  | _ -> false

let flags_read = function
  (* conservative: cc consumers and Adc/Sbb read; Inc/Dec preserve CF
     and a shift by zero preserves all flags, so partial/conditional
     writers are treated as readers to keep earlier flags live *)
  | Jcc _ | Setcc _ | Cmov _ -> true
  | Alu ((Adc | Sbb), _, _, _) -> true
  | Unop _ | Shift _ -> true
  | _ -> false

let never_raises i =
  match i with Jcc _ -> true | _ -> fusible i

let dead_flag_writes (insns : insn array) =
  let n = Array.length insns in
  let dead = Array.make n false in
  let live = ref true in (* flags are live out of the block *)
  for i = n - 1 downto 0 do
    let ins = insns.(i) in
    let kills = flags_killed ins and reads = flags_read ins in
    if kills && not reads && not !live then dead.(i) <- true;
    if kills && not reads then live := false;
    if reads then live := true;
    if not (never_raises ins) then live := true
  done;
  dead

let mentions_mem (i : insn) =
  let seen = ref false in
  ignore (map_mem (fun m -> seen := true; m) i);
  !seen

let is_store = function
  | Mov (_, OMem _, _) | SseMov (_, Xm _, Xr _) | Setcc (_, OMem _)
  | Push _ -> true
  | _ -> false

(* per-pattern fusion counters (pairs created at translation time) *)
let count_fusion cpu i1 i2 =
  match (i1, i2) with
  | (Alu (Cmp, _, _, _) | Test _), Jcc _ ->
    cpu.fu_cmpjcc <- cpu.fu_cmpjcc + 1;
    Tel.incr_c c_fuse_cmpjcc
  | (Mov _ | Movabs _), (Alu _ | Test _) ->
    cpu.fu_mov_alu <- cpu.fu_mov_alu + 1;
    Tel.incr_c c_fuse_mov_alu
  | Lea _, i2 when mentions_mem i2 ->
    cpu.fu_lea_mem <- cpu.fu_lea_mem + 1;
    Tel.incr_c c_fuse_lea_mem
  | (Setcc _, _ | _, Setcc _) ->
    cpu.fu_spill <- cpu.fu_spill + 1;
    Tel.incr_c c_fuse_spill
  | i1, i2 when is_store i1 && is_store i2 ->
    cpu.fu_spill <- cpu.fu_spill + 1;
    Tel.incr_c c_fuse_spill
  | _ ->
    cpu.fu_other <- cpu.fu_other + 1;
    Tel.incr_c c_fuse_other

(* Branch predicates evaluated directly on a comparison's operands:
   the textbook identities between cmp a,b / test a,b flags and the
   condition codes, specialized per width at translation time.  Used
   by fused cmp/test+jcc so the common path records the lazy flags but
   never materializes them. *)
let sub_pred w cc : int64 -> int64 -> int64 -> bool =
  match cc with
  | E -> fun _ _ r -> r = 0L
  | NE -> fun _ _ r -> r <> 0L
  | B -> fun a b _ -> Int64.unsigned_compare a b < 0
  | AE -> fun a b _ -> Int64.unsigned_compare a b >= 0
  | BE -> fun a b _ -> Int64.unsigned_compare a b <= 0
  | A -> fun a b _ -> Int64.unsigned_compare a b > 0
  | S -> fun _ _ r -> msb w r
  | NS -> fun _ _ r -> not (msb w r)
  | L -> fun a b _ -> sext w a < sext w b
  | GE -> fun a b _ -> sext w a >= sext w b
  | LE -> fun a b _ -> sext w a <= sext w b
  | G -> fun a b _ -> sext w a > sext w b
  | O ->
    fun a b r ->
      msb w (Int64.logand (Int64.logxor a b) (Int64.logxor a r))
  | NO ->
    fun a b r ->
      not (msb w (Int64.logand (Int64.logxor a b) (Int64.logxor a r)))
  | P -> fun _ _ r -> parity_even r
  | NP -> fun _ _ r -> not (parity_even r)

let logic_pred w cc : int64 -> bool =
  match cc with
  | E | BE -> fun r -> r = 0L
  | NE | A -> fun r -> r <> 0L
  | B | O -> fun _ -> false
  | AE | NO -> fun _ -> true
  | S | L -> fun r -> msb w r
  | NS | GE -> fun r -> not (msb w r)
  | LE -> fun r -> r = 0L || msb w r
  | G -> fun r -> r <> 0L && not (msb w r)
  | P -> parity_even
  | NP -> fun r -> not (parity_even r)

(* fused cmp+jcc / test+jcc: one closure computes the comparison,
   records the lazy flags and branches on the direct predicate.  The
   [side_exit] variant is the trace backedge form: staying in the
   trace is a plain return, leaving it raises {!Trace_exit}. *)
let fuse_cmp_jcc (c : Cost.t) w rd_a rd_b cc ~tgt ~ft ~side_exit : op_fn =
  let pred = sub_pred w cc in
  let taken = c.branch_taken and not_taken = c.branch_not_taken in
  if side_exit then
    fun cpu ->
      let a = rd_a cpu in
      let b = rd_b cpu in
      let r = trunc w (Int64.sub a b) in
      cpu.fl_op <- FlSub; cpu.fl_w <- w;
      Bigarray.Array1.unsafe_set cpu.flbuf 0 a; Bigarray.Array1.unsafe_set cpu.flbuf 1 b; Bigarray.Array1.unsafe_set cpu.flbuf 2 r;
      cpu.fl_records <- cpu.fl_records + 1;
      if pred a b r then taken
      else begin
        cpu.rip <- ft;
        cpu.pen <- not_taken;
        raise Trace_exit
      end
  else
    fun cpu ->
      let a = rd_a cpu in
      let b = rd_b cpu in
      let r = trunc w (Int64.sub a b) in
      cpu.fl_op <- FlSub; cpu.fl_w <- w;
      Bigarray.Array1.unsafe_set cpu.flbuf 0 a; Bigarray.Array1.unsafe_set cpu.flbuf 1 b; Bigarray.Array1.unsafe_set cpu.flbuf 2 r;
      cpu.fl_records <- cpu.fl_records + 1;
      if pred a b r then begin cpu.rip <- tgt; taken end
      else begin cpu.rip <- ft; not_taken end

let fuse_test_jcc (c : Cost.t) w rd_a rd_b cc ~tgt ~ft ~side_exit : op_fn =
  let pred = logic_pred w cc in
  let taken = c.branch_taken and not_taken = c.branch_not_taken in
  if side_exit then
    fun cpu ->
      let r = Int64.logand (rd_a cpu) (rd_b cpu) in
      cpu.fl_op <- FlLogic; cpu.fl_w <- w; Bigarray.Array1.unsafe_set cpu.flbuf 2 (r);
      cpu.fl_records <- cpu.fl_records + 1;
      if pred r then taken
      else begin
        cpu.rip <- ft;
        cpu.pen <- not_taken;
        raise Trace_exit
      end
  else
    fun cpu ->
      let r = Int64.logand (rd_a cpu) (rd_b cpu) in
      cpu.fl_op <- FlLogic; cpu.fl_w <- w; Bigarray.Array1.unsafe_set cpu.flbuf 2 (r);
      cpu.fl_records <- cpu.fl_records + 1;
      if pred r then begin cpu.rip <- tgt; taken end
      else begin cpu.rip <- ft; not_taken end

(* generic pair fusion: run the first closure, advance rip past the
   second instruction (what the per-slot loop would have done), run
   the second *)
let fuse_pair (f1 : op_fn) rip2 (f2 : op_fn) : op_fn =
 fun cpu ->
  let p = f1 cpu in
  cpu.rip <- rip2;
  p + f2 cpu

(* unfused trace backedge: evaluate the condition (materializing if
   needed) and side-exit on fall-through *)
let side_exit_jcc (c : Cost.t) cc ~ft : op_fn =
  let taken = c.branch_taken and not_taken = c.branch_not_taken in
  fun cpu ->
    if cond cpu cc then taken
    else begin
      cpu.rip <- ft;
      cpu.pen <- not_taken;
      raise Trace_exit
    end

(* Greedy left-to-right pairing of a block's instructions into fused
   execution slots.  [side_exit_at k] marks instruction indices whose
   (backedge Jcc) translation must be the side-exit variant — those
   are never swallowed by a generic pair, only by the specialized
   cmp/test+jcc fusion which has its own side-exit form. *)
(* cap on instructions folded into one fused mega-op closure *)
let max_fuse_run = 8

let build_slots cpu ~side_exit_at (insns : insn array) (rips : int array)
    (costs : int array) (ops : op_fn array) =
  let c = cpu.cost in
  let n = Array.length insns in
  (* a cmp/test immediately followed by a direct jcc is reserved for
     predicate fusion (which evaluates the condition straight off the
     lazy record); a generic run must not swallow the cmp/test *)
  let predpair_at i =
    i + 1 < n
    && (match (insns.(i), insns.(i + 1)) with
        | (Alu (Cmp, _, _, _) | Test _), Jcc (_, Abs _) -> true
        | _ -> false)
  in
  let slots = ref [] in
  let k = ref 0 in
  while !k < n do
    let j = !k + 1 in
    let fused =
      if j >= n then None
      else
        match (insns.(!k), insns.(j)) with
        | (Alu (Cmp, w, d, s) as i1), (Jcc (cc, Abs tgt) as i2) ->
          count_fusion cpu i1 i2;
          Some
            ( fuse_cmp_jcc c w (rd_operand w d) (rd_operand w s) cc ~tgt
                ~ft:rips.(j) ~side_exit:(side_exit_at j),
              2, costs.(!k) + costs.(j) )
        | (Test (w, d, s) as i1), (Jcc (cc, Abs tgt) as i2) ->
          count_fusion cpu i1 i2;
          Some
            ( fuse_test_jcc c w (rd_operand w d) (rd_operand w s) cc ~tgt
                ~ft:rips.(j) ~side_exit:(side_exit_at j),
              2, costs.(!k) + costs.(j) )
        | i1, _ when fusible i1 && not (side_exit_at j) ->
          (* maximal-run mega-op: fold consecutive provably non-raising
             insns (optionally ending in a direct branch) into one
             nested closure, eliminating per-slot dispatch for the
             interior *)
          let e = ref j in
          while
            !e < n && !e - !k < max_fuse_run
            && not (side_exit_at !e)
            && fusible insns.(!e)
            && not (predpair_at !e)
          do incr e done;
          if
            !e < n && !e - !k < max_fuse_run
            && not (side_exit_at !e)
            && fusible_tail insns.(!e)
            && not (fusible insns.(!e))
          then incr e;
          let len = !e - !k in
          if len < 2 then None
          else begin
            let op = ref ops.(!k) and cost = ref costs.(!k) in
            for i = !k + 1 to !e - 1 do
              count_fusion cpu insns.(i - 1) insns.(i);
              op := fuse_pair !op rips.(i) ops.(i);
              cost := !cost + costs.(i)
            done;
            Some (!op, len, !cost)
          end
        | _ -> None
    in
    (match fused with
     | Some (op, len, cost) ->
       slots := (op, rips.(!k), cost, len) :: !slots;
       k := !k + len
     | None ->
       slots := (ops.(!k), rips.(!k), costs.(!k), 1) :: !slots;
       incr k)
  done;
  let arr = Array.of_list (List.rev !slots) in
  ( Array.map (fun (o, _, _, _) -> o) arr,
    Array.map (fun (_, r, _, _) -> r) arr,
    Array.map (fun (_, _, c, _) -> c) arr,
    Array.map (fun (_, _, _, i) -> i) arr )

let build_block cpu entry : sblock =
  let args = if !Tel.enabled then Printf.sprintf "0x%x" entry else "" in
  Tel.span "sb.translate" ~args (fun () ->
  let run, ranges = decode_prefix cpu entry ~max:max_block_insns in
  let n = List.length run in
  Tel.observe h_sb_len n;
  let insns = Array.make n Ret in
  let rips = Array.make n 0 in
  let addrs = Array.make n 0 in
  List.iteri
    (fun k (a, i, next) ->
      insns.(k) <- i;
      rips.(k) <- next;
      addrs.(k) <- a)
    run;
  let costs = Cost.insn_costs cpu.cost insns in
  let dead = dead_flag_writes insns in
  let ops =
    Array.mapi (fun k ins -> translate ~dead_flags:dead.(k) cpu.cost ins) insns
  in
  Array.iter
    (fun d ->
      if d then begin
        cpu.fl_dead <- cpu.fl_dead + 1;
        Tel.incr_c c_fl_dead
      end)
    dead;
  let slots, slot_rips, slot_costs, slot_insns =
    build_slots cpu ~side_exit_at:(fun _ -> false) insns rips costs ops
  in
  let ranges = List.filter (fun (lo, hi) -> hi > lo) ranges in
  let kind =
    if
      n >= 2
      && (match insns.(n - 1) with
          | Jcc (_, Abs t) -> t = entry
          | _ -> false)
    then KLoopHead
    else KStraight
  in
  (* an indirect terminator (unpredictable successor) routes this
     block's transitions through the inline cache instead of the
     two-slot direct chain links; such a block is structurally never a
     KLoopHead (that requires a direct Jcc backedge) and therefore
     never promoted to a trace *)
  let ind =
    n >= 1
    && (match insns.(n - 1) with
        | JmpInd _ | CallInd _ | Ret -> true
        | _ -> false)
  in
  { sb_entry = entry; sb_insns = insns; sb_ops = ops; sb_rips = rips;
    sb_addrs = addrs; sb_costs = costs;
    sb_static = Array.fold_left ( + ) 0 costs;
    sb_slots = slots; sb_slot_rips = slot_rips; sb_slot_costs = slot_costs;
    sb_slot_insns = slot_insns; sb_ranges = ranges; sb_kind = kind;
    sb_execs = 0; sb_valid = true; sb_link1 = None; sb_link2 = None;
    sb_ind = ind; sb_ic1 = None; sb_ic2 = None })

(* -------- trace extension -------- *)

(* a self-loop block is promoted to a trace after this many executions *)
let trace_threshold = 4

(* iteration-unroll budget per trace *)
let max_unroll = 16

(* instruction budget for an unrolled trace body; traces may exceed
   [max_block_insns] since their slots are built once and reused *)
let max_trace_insns = 256

(* Promote a hot self-loop block (body + backedge Jcc to its own
   entry) into a trace: the body is unrolled [u] times across the
   backedge; every non-final backedge copy becomes a side-exit that
   leaves the trace with exact accounting when the loop ends, and the
   final copy keeps a normal Jcc whose taken edge chains straight back
   to the trace itself. *)
let build_trace cpu (b : sblock) : sblock =
  let n = Array.length b.sb_insns in
  let u = min max_unroll (max_trace_insns / n) in
  let total = u * n in
  let insns = Array.init total (fun k -> b.sb_insns.(k mod n)) in
  let rips = Array.init total (fun k -> b.sb_rips.(k mod n)) in
  let addrs = Array.init total (fun k -> b.sb_addrs.(k mod n)) in
  let costs = Array.init total (fun k -> b.sb_costs.(k mod n)) in
  let side_exit_at k = (k + 1) mod n = 0 && k < total - 1 in
  let ops =
    Array.init total (fun k ->
        if side_exit_at k then
          match insns.(k) with
          | Jcc (cc, Abs _) -> side_exit_jcc cpu.cost cc ~ft:rips.(k)
          | _ -> assert false
        else
          (* reuse the base block's already-translated closure: every
             non-side-exit position is the same insn at the same rip,
             so re-translating u*n copies is pure promotion-time waste *)
          b.sb_ops.(k mod n))
  in
  let slots, slot_rips, slot_costs, slot_insns =
    build_slots cpu ~side_exit_at insns rips costs ops
  in
  Tel.observe h_sb_len total;
  { sb_entry = b.sb_entry; sb_insns = insns; sb_ops = ops; sb_rips = rips;
    sb_addrs = addrs; sb_costs = costs;
    sb_static = Array.fold_left ( + ) 0 costs;
    sb_slots = slots; sb_slot_rips = slot_rips; sb_slot_costs = slot_costs;
    sb_slot_insns = slot_insns; sb_ranges = b.sb_ranges; sb_kind = KTrace;
    sb_execs = 0; sb_valid = true; sb_link1 = None; sb_link2 = None;
    (* a trace is only ever built from a KLoopHead, whose terminator is
       a direct Jcc backedge — it can never carry an indirect IC *)
    sb_ind = false; sb_ic1 = None; sb_ic2 = None }

let lookup_block cpu addr : sblock =
  let slot = addr land (bcache_slots - 1) in
  let c = Array.unsafe_get cpu.bcache slot in
  if c.sb_entry = addr && c.sb_valid then begin
    cpu.sb_hits <- cpu.sb_hits + 1;
    Tel.incr_c c_sb_hit;
    c
  end
  else
    match Hashtbl.find_opt cpu.blocks addr with
    | Some b when b.sb_valid ->
      cpu.sb_hits <- cpu.sb_hits + 1;
      Tel.incr_c c_sb_hit;
      Array.unsafe_set cpu.bcache slot b;
      b
    | _ ->
      cpu.sb_misses <- cpu.sb_misses + 1;
      Tel.incr_c c_sb_miss;
      let b = build_block cpu addr in
      Hashtbl.replace cpu.blocks addr b;
      Array.unsafe_set cpu.bcache slot b;
      b

(* Execute one superblock.  Observably equivalent to {!step}-ing
   through it — rip is advanced past the instruction before it
   executes (calls push it, non-taken Jcc falls through to it) — but
   fetch, decode and the static cost computation are all hoisted out
   of the loop, and cycles/icount are written back once per block
   (with the executed prefix accounted exactly if an instruction
   faults). *)
let exec_block_fast cpu (b : sblock) =
  Tel.incr_c c_sb_exec;
  let ops = b.sb_slots and rips = b.sb_slot_rips in
  let n = Array.length ops in
  let penalties = ref 0 in
  let k = ref 0 in
  try
    while !k < n do
      cpu.rip <- Array.unsafe_get rips !k;
      penalties := !penalties + (Array.unsafe_get ops !k) cpu;
      incr k
    done;
    cpu.icount <- cpu.icount + Array.length b.sb_insns;
    cpu.cycles <- cpu.cycles + b.sb_static + !penalties
  with
  | Trace_exit ->
    (* the side-exit slot ran to completion: account it fully, with
       its branch penalty stashed in [pen] by the raise *)
    let static = ref 0 and ic = ref 0 in
    for j = 0 to !k do
      static := !static + b.sb_slot_costs.(j);
      ic := !ic + b.sb_slot_insns.(j)
    done;
    cpu.icount <- cpu.icount + !ic;
    cpu.cycles <- cpu.cycles + !static + !penalties + cpu.pen;
    cpu.sb_side_exits <- cpu.sb_side_exits + 1;
    Tel.incr_c c_sb_sidexit
  | e ->
    (* per-slot accounting for the prefix before the fault, exactly
       as the single-step engine leaves it (a fused slot never
       raises, so the faulting slot is a single instruction) *)
    let static = ref 0 and ic = ref 0 in
    for j = 0 to !k - 1 do
      static := !static + b.sb_slot_costs.(j);
      ic := !ic + b.sb_slot_insns.(j)
    done;
    cpu.icount <- cpu.icount + !ic;
    cpu.cycles <- cpu.cycles + !static + !penalties;
    materialize cpu;
    raise e

(* Profiled twin of {!exec_block_fast}: attributes every simulated
   cycle (static cost + dynamic penalty) to the guest address of the
   instruction that spent it, and the block total to the superblock
   entry.  The per-insn sums equal the engine's cycle writeback
   exactly, including the executed prefix of a faulting block and the
   partial iterations of a side-exiting trace.  It runs over the
   unfused per-instruction arrays so attribution stays per-address
   even where the fast path executes fused slots. *)
let exec_block_profiled cpu (b : sblock) =
  Tel.incr_c c_sb_exec;
  let ops = b.sb_ops and rips = b.sb_rips and costs = b.sb_costs in
  let addrs = b.sb_addrs in
  let n = Array.length ops in
  let total = ref 0 in
  let k = ref 0 in
  try
    while !k < n do
      cpu.rip <- Array.unsafe_get rips !k;
      let c = costs.(!k) + (Array.unsafe_get ops !k) cpu in
      Prov.record_insn (Array.unsafe_get addrs !k) c;
      total := !total + c;
      incr k
    done;
    cpu.icount <- cpu.icount + n;
    cpu.cycles <- cpu.cycles + !total;
    Prov.record_block b.sb_entry ~cycles:!total ~insns:n
  with
  | Trace_exit ->
    (* the exiting backedge executed: attribute its static cost plus
       the stashed branch penalty to its own address *)
    let c = costs.(!k) + cpu.pen in
    Prov.record_insn addrs.(!k) c;
    total := !total + c;
    cpu.icount <- cpu.icount + !k + 1;
    cpu.cycles <- cpu.cycles + !total;
    Prov.record_block b.sb_entry ~cycles:!total ~insns:(!k + 1);
    cpu.sb_side_exits <- cpu.sb_side_exits + 1;
    Tel.incr_c c_sb_sidexit
  | e ->
    cpu.icount <- cpu.icount + !k;
    cpu.cycles <- cpu.cycles + !total;
    Prov.record_block b.sb_entry ~cycles:!total ~insns:!k;
    materialize cpu;
    raise e

(* the fast path pays exactly one branch when profiling is off *)
let exec_block cpu (b : sblock) =
  if !Prov.enabled then exec_block_profiled cpu b else exec_block_fast cpu b

(* Indirect-terminator successor lookup: a 2-way inline cache of
   predicted targets.  A cached prediction is trusted only after
   revalidation (entry match + validity bit), so IC entries survive
   neither a range-granular flush nor a divergent target.  Slot 1 is
   the MRU prediction; a hit in slot 2 swaps it forward, and a miss
   with both slots live (a megamorphic site) evicts the LRU entry. *)
let ic_next cpu (prev : sblock) addr : sblock =
  (* saboteur drill: a fired arm returns the stale predicted block
     without revalidating it against the live rip — exactly the silent
     wrong-code execution the sentinel must catch downstream *)
  let flipped =
    if Fault.sabotage "sabotage.isel.indirect" then
      match prev.sb_ic1 with
      | Some b when b.sb_entry <> addr && b.sb_valid ->
        Fault.note_sabotage_landed ();
        Some b
      | _ -> None
    else None
  in
  match flipped with
  | Some b -> b
  | None -> (
    match prev.sb_ic1 with
    | Some b when b.sb_entry = addr && b.sb_valid ->
      cpu.sb_ic_hits <- cpu.sb_ic_hits + 1;
      Tel.incr_c c_sb_ic_hit;
      b
    | _ -> (
      match prev.sb_ic2 with
      | Some b when b.sb_entry = addr && b.sb_valid ->
        cpu.sb_ic_hits <- cpu.sb_ic_hits + 1;
        Tel.incr_c c_sb_ic_hit;
        (* MRU promotion keeps the hot target in the first probe *)
        prev.sb_ic2 <- prev.sb_ic1;
        prev.sb_ic1 <- Some b;
        b
      | _ ->
        cpu.sb_ic_misses <- cpu.sb_ic_misses + 1;
        Tel.incr_c c_sb_ic_miss;
        let b = lookup_block cpu addr in
        (match prev.sb_ic1 with
         | None -> prev.sb_ic1 <- Some b
         | Some l1 when not l1.sb_valid -> prev.sb_ic1 <- Some b
         | Some _ ->
           (* divergent target: demote the current MRU prediction,
              evicting whatever held the second way *)
           prev.sb_ic2 <- prev.sb_ic1;
           prev.sb_ic1 <- Some b);
        b))

(* Successor lookup through the block's chain links: a link is used
   only if it is still valid and its entry matches the live rip, so
   links survive neither a flush nor a retargeted branch.  Blocks
   ending in an indirect branch dispatch through {!ic_next} instead. *)
let next_block cpu (prev : sblock) addr : sblock =
  if prev.sb_ind then ic_next cpu prev addr
  else
    match prev.sb_link1 with
    | Some b when b.sb_entry = addr && b.sb_valid ->
      cpu.sb_chained <- cpu.sb_chained + 1;
      Tel.incr_c c_sb_chain;
      b
    | _ ->
      (match prev.sb_link2 with
       | Some b when b.sb_entry = addr && b.sb_valid ->
         cpu.sb_chained <- cpu.sb_chained + 1;
         Tel.incr_c c_sb_chain;
         b
       | _ ->
         let b = lookup_block cpu addr in
         (* direct branches have at most two successors (taken /
            fall-through), so two slots capture them *)
         (match prev.sb_link1 with
          | None -> prev.sb_link1 <- Some b
          | Some l1 when not l1.sb_valid -> prev.sb_link1 <- Some b
          | Some _ -> prev.sb_link2 <- Some b);
         b)

(* watchdog: terminate runaway emulation with a typed [Emulate] error
   carrying the rip it was stopped at *)
let budget_exceeded cpu budget =
  Err.fail ~addr:cpu.rip Err.Emulate
    "watchdog: instruction budget of %d exceeded" budget

(** Run until control returns to {!stop_addr}, one superblock at a
    time.  [max_insns] is the watchdog budget on executed instructions
    (the overshoot before the check is at most one block); exceeding
    it raises a typed [Emulate] error instead of hanging on emitted
    infinite loops.  Hot self-loop blocks are promoted to traces here,
    and the watchdog runs on the icount delta because trace side-exits
    make per-block instruction counts dynamic. *)
let run ?(max_insns = 2_000_000_000) cpu =
  Tel.span "emulate.run" (fun () ->
      let limit = cpu.icount + max_insns in
      if cpu.rip <> stop_addr then begin
        let blk = ref (lookup_block cpu cpu.rip) in
        let continue = ref true in
        while !continue do
          let b = !blk in
          exec_block cpu b;
          (* always-on hotness counter: one add per block execution,
             read by the tier controller's hotness scan (fold_blocks).
             Trace promotion below still keys off loop heads only. *)
          b.sb_execs <- b.sb_execs + 1;
          (match b.sb_kind with KLoopHead -> begin
            if
              b.sb_execs = trace_threshold
              && 2 * Array.length b.sb_insns <= max_trace_insns
            then begin
              let tr = build_trace cpu b in
              b.sb_valid <- false;
              Hashtbl.replace cpu.blocks b.sb_entry tr;
              cpu.sb_traces <- cpu.sb_traces + 1;
              Tel.incr_c c_sb_trace
            end
          end
          | KStraight | KTrace -> ());
          if cpu.icount > limit then begin
            materialize cpu;
            budget_exceeded cpu max_insns
          end;
          if cpu.rip = stop_addr then continue := false
          else blk := next_block cpu b cpu.rip
        done
      end;
      (* external code reads the flag fields directly *)
      materialize cpu)

(** Run until {!stop_addr} strictly one instruction at a time through
    the decode cache — the reference engine the superblock engine is
    differentially tested against.  Same [max_insns] watchdog as
    {!run}. *)
let run_interp ?(max_insns = 2_000_000_000) cpu =
  Tel.span "emulate.interp" (fun () ->
      let steps = ref 0 in
      while cpu.rip <> stop_addr do
        step cpu;
        incr steps;
        if !steps > max_insns then budget_exceeded cpu max_insns
      done;
      materialize cpu)

(** Execution engine selector for {!call}: the superblock engine is
    the default; [SingleStep] forces the per-instruction interpreter
    (used by the differential tests). *)
type engine = Superblocks | SingleStep

(** Call the function at [fn] following the System V ABI: integer/
    pointer arguments in rdi..., floating point arguments in xmm0...;
    returns (rax, xmm0-as-float). *)
let call ?(engine = Superblocks) ?(args = []) ?(fargs = []) ?max_insns cpu ~fn =
  List.iteri
    (fun i v ->
      match List.nth_opt Reg.arg_regs i with
      | Some r -> set_reg cpu W64 r v
      | None -> err "too many integer arguments")
    args;
  List.iteri
    (fun i v ->
      if i > 7 then err "too many float arguments";
      cpu.xlo.{i} <- Int64.bits_of_float v;
      cpu.xhi.{i} <- 0L)
    fargs;
  (* align stack to 16 then push the stop sentinel: at function entry
     rsp ≡ 8 (mod 16), exactly as after a real call *)
  let sp = Int64.to_int cpu.regs.{rsp_i} land lnot 15 in
  cpu.regs.{rsp_i} <- Int64.of_int sp;
  push64 cpu (Int64.of_int stop_addr);
  cpu.rip <- fn;
  (match engine with
   | Superblocks -> run ?max_insns cpu
   | SingleStep -> run_interp ?max_insns cpu);
  (cpu.regs.{0}, Int64.float_of_bits cpu.xlo.{0})
