(** x86-64 emulator: executes decoded instructions against a paged
    memory, tracking a cycle count through {!Cost}.  This is the
    "hardware" on which all five benchmark modes run.

    Two execution engines share the same instruction semantics
    ({!exec}) and therefore the same architectural state and cycle
    accounting:

    - the single-step interpreter ({!step}/{!run_interp}), which
      re-fetches through the per-address decode cache on every
      instruction, and
    - the translation-block engine ({!run}), which pre-decodes
      straight-line superblocks into flat arrays with precomputed
      per-instruction cycle costs and executes them with an inner loop
      that touches neither a hash table nor the decoder.  Blocks are
      chained: each block keeps a small inline cache of successor
      blocks, so steady-state loops run entirely inside the code
      cache. *)

open Insn
open Obrew_fault

module Tel = Obrew_telemetry.Telemetry
module Prov = Obrew_provenance.Provenance

(* emulator failures are typed [Err.Emulate] errors *)
let err fmt = Err.fail Err.Emulate fmt

(* engine telemetry: registered counters are direct pointers, so the
   hot loops pay one unconditional increment, never a lookup *)
let c_sb_exec = Tel.counter "sb.blocks_executed"
let c_sb_hit = Tel.counter "sb.cache_hits"
let c_sb_miss = Tel.counter "sb.cache_misses"
let c_sb_chain = Tel.counter "sb.chain_hits"
let c_sb_flush = Tel.counter "sb.flushes"
let h_sb_len = Tel.histogram "sb.block_insns"

(** A pre-decoded straight-line superblock: all instructions up to and
    including the first control-flow instruction (or a size cap),
    starting at [sb_entry] and covering bytes [sb_entry, sb_end). *)
type sblock = {
  sb_entry : int;
  sb_insns : insn array;
  sb_ops : op_fn array;           (* translated instructions *)
  sb_rips : int array;            (* rip after each instruction *)
  sb_costs : int array;           (* static Cost.insn_cost per insn *)
  sb_static : int;                (* sum of sb_costs *)
  sb_end : int;                   (* first byte past the block *)
  mutable sb_valid : bool;        (* cleared by flush_code *)
  mutable sb_link1 : sblock option; (* chained successors *)
  mutable sb_link2 : sblock option;
}

(* a translated instruction: executes against the CPU state and
   returns the dynamic cycle penalty *)
and op_fn = t -> int

and t = {
  mem : Mem.t;
  regs : int64 array;          (* 16 GPRs *)
  xlo : int64 array;           (* xmm low halves *)
  xhi : int64 array;           (* xmm high halves *)
  mutable rip : int;
  mutable zf : bool;
  mutable sf : bool;
  mutable cf : bool;
  mutable o_f : bool;          (* overflow flag; `of` is a keyword *)
  mutable pf : bool;
  mutable af : bool;
  mutable fs_base : int;
  mutable gs_base : int;
  mutable cycles : int;
  mutable icount : int;
  code : (int, insn * int) Hashtbl.t; (* decode cache *)
  blocks : (int, sblock) Hashtbl.t;   (* superblock cache, by entry *)
  mutable sb_hits : int;
  mutable sb_misses : int;
  mutable sb_flushes : int;
  mutable sb_chained : int;    (* block transitions served by a chain link *)
  mutable pen : int;           (* scratch penalty accumulator of exec *)
  cost : Cost.t;
}

let create ?(cost = Cost.default) () =
  { mem = Mem.create (); regs = Array.make 16 0L;
    xlo = Array.make 16 0L; xhi = Array.make 16 0L; rip = 0;
    zf = false; sf = false; cf = false; o_f = false; pf = false; af = false;
    fs_base = 0; gs_base = 0; cycles = 0; icount = 0;
    code = Hashtbl.create 512; blocks = Hashtbl.create 256;
    sb_hits = 0; sb_misses = 0; sb_flushes = 0; sb_chained = 0;
    pen = 0; cost }

(* -------- scalar helpers -------- *)

let addr_mask = (1 lsl 48) - 1

let trunc w (v : int64) =
  match w with
  | W8 -> Int64.logand v 0xFFL
  | W16 -> Int64.logand v 0xFFFFL
  | W32 -> Int64.logand v 0xFFFFFFFFL
  | W64 -> v

let sext w (v : int64) =
  match w with
  | W8 -> Int64.shift_right (Int64.shift_left v 56) 56
  | W16 -> Int64.shift_right (Int64.shift_left v 48) 48
  | W32 -> Int64.shift_right (Int64.shift_left v 32) 32
  | W64 -> v

let msb w v =
  Int64.logand (Int64.shift_right_logical v (width_bits w - 1)) 1L = 1L

let parity_even (v : int64) =
  let x = Int64.to_int (Int64.logand v 0xFFL) in
  let x = x lxor (x lsr 4) in
  let x = x lxor (x lsr 2) in
  let x = x lxor (x lsr 1) in
  x land 1 = 0

(* -------- register access -------- *)

let get_reg cpu w r = trunc w cpu.regs.(Reg.index r)
let get_reg64 cpu r = cpu.regs.(Reg.index r)

let get_reg8h cpu r =
  Int64.logand (Int64.shift_right_logical cpu.regs.(Reg.index r) 8) 0xFFL

let set_reg cpu w r v =
  let i = Reg.index r in
  match w with
  | W64 -> cpu.regs.(i) <- v
  | W32 -> cpu.regs.(i) <- trunc W32 v
  | W16 ->
    cpu.regs.(i) <-
      Int64.logor
        (Int64.logand cpu.regs.(i) 0xFFFFFFFFFFFF0000L)
        (trunc W16 v)
  | W8 ->
    cpu.regs.(i) <-
      Int64.logor
        (Int64.logand cpu.regs.(i) 0xFFFFFFFFFFFFFF00L)
        (trunc W8 v)

let set_reg8h cpu r v =
  let i = Reg.index r in
  cpu.regs.(i) <-
    Int64.logor
      (Int64.logand cpu.regs.(i) 0xFFFFFFFFFFFF00FFL)
      (Int64.shift_left (Int64.logand v 0xFFL) 8)

(* -------- memory access -------- *)

(* full 64-bit effective address (what lea computes).  RIP-relative
   operands resolve against [cpu.rip], which both engines advance to
   the end of the current instruction *before* executing it (see
   {!step} and {!exec_block}), matching hardware semantics where the
   disp32 is relative to the next instruction. *)
let effective cpu (m : mem_addr) : int64 =
  let b =
    match m.base with
    | Some r -> get_reg64 cpu r
    | None -> if m.rip then Int64.of_int cpu.rip else 0L
  in
  let i =
    match m.index with
    | Some (r, s) ->
      Int64.mul (get_reg64 cpu r) (Int64.of_int (scale_factor s))
    | None -> 0L
  in
  let s =
    match m.seg with
    | Some FS -> cpu.fs_base
    | Some GS -> cpu.gs_base
    | None -> 0
  in
  Int64.add (Int64.add b i) (Int64.of_int (m.disp + s))

let resolve cpu (m : mem_addr) = Int64.to_int (effective cpu m) land addr_mask

let load cpu w a =
  match w with
  | W8 -> Int64.of_int (Mem.read_u8 cpu.mem a)
  | W16 -> Int64.of_int (Mem.read_u16 cpu.mem a)
  | W32 -> Int64.of_int (Mem.read_u32 cpu.mem a)
  | W64 -> Mem.read_u64 cpu.mem a

let store cpu w a (v : int64) =
  match w with
  | W8 -> Mem.write_u8 cpu.mem a (Int64.to_int v)
  | W16 -> Mem.write_u16 cpu.mem a (Int64.to_int v)
  | W32 -> Mem.write_u32 cpu.mem a (Int64.to_int (trunc W32 v))
  | W64 -> Mem.write_u64 cpu.mem a v

(* -------- operand access -------- *)

let read_op cpu w = function
  | OReg r -> get_reg cpu w r
  | OReg8H r -> get_reg8h cpu r
  | OMem m -> load cpu w (resolve cpu m)
  | OImm v -> trunc w v

let write_op cpu w op v =
  match op with
  | OReg r -> set_reg cpu w r v
  | OReg8H r -> set_reg8h cpu r v
  | OMem m -> store cpu w (resolve cpu m) v
  | OImm _ -> err "cannot write to an immediate"

(* -------- flags -------- *)

let set_szp cpu w r =
  cpu.zf <- trunc w r = 0L;
  cpu.sf <- msb w r;
  cpu.pf <- parity_even r

let flags_logic cpu w r =
  set_szp cpu w r;
  cpu.cf <- false;
  cpu.o_f <- false;
  cpu.af <- false

let flags_add ?(cin = 0L) cpu w a b r =
  set_szp cpu w r;
  (if w = W64 then
     cpu.cf <- Int64.unsigned_compare r a < 0 || (cin = 1L && r = a)
   else cpu.cf <- Int64.add (Int64.add a b) cin <> r);
  cpu.o_f <- msb w (Int64.logand (Int64.logxor a r) (Int64.logxor b r));
  cpu.af <- Int64.logand (Int64.logxor (Int64.logxor a b) r) 0x10L <> 0L

let flags_sub ?(cin = 0L) cpu w a b r =
  set_szp cpu w r;
  (let a = trunc w a and b = trunc w b in
   if cin = 1L && b = trunc w (-1L) then cpu.cf <- true
   else cpu.cf <- Int64.unsigned_compare a (Int64.add b cin) < 0);
  cpu.o_f <- msb w (Int64.logand (Int64.logxor a b) (Int64.logxor a r));
  cpu.af <- Int64.logand (Int64.logxor (Int64.logxor a b) r) 0x10L <> 0L

let cond cpu = function
  | O -> cpu.o_f
  | NO -> not cpu.o_f
  | B -> cpu.cf
  | AE -> not cpu.cf
  | E -> cpu.zf
  | NE -> not cpu.zf
  | BE -> cpu.cf || cpu.zf
  | A -> not (cpu.cf || cpu.zf)
  | S -> cpu.sf
  | NS -> not cpu.sf
  | P -> cpu.pf
  | NP -> not cpu.pf
  | L -> cpu.sf <> cpu.o_f
  | GE -> cpu.sf = cpu.o_f
  | LE -> cpu.zf || cpu.sf <> cpu.o_f
  | G -> (not cpu.zf) && cpu.sf = cpu.o_f

(* -------- stack -------- *)

let rsp_i = Reg.index Reg.RSP

let push64 cpu v =
  let sp = Int64.to_int cpu.regs.(rsp_i) - 8 in
  cpu.regs.(rsp_i) <- Int64.of_int sp;
  Mem.write_u64 cpu.mem (sp land addr_mask) v

let pop64 cpu =
  let sp = Int64.to_int cpu.regs.(rsp_i) in
  let v = Mem.read_u64 cpu.mem (sp land addr_mask) in
  cpu.regs.(rsp_i) <- Int64.of_int (sp + 8);
  v

(* -------- SSE helpers -------- *)

let f64 (bits : int64) = Int64.float_of_bits bits
let b64 (f : float) = Int64.bits_of_float f

let f32 (bits : int64) =
  Int32.float_of_bits (Int64.to_int32 bits)

let b32 (f : float) =
  Int64.logand (Int64.of_int32 (Int32.bits_of_float f)) 0xFFFFFFFFL

let xop_load64 cpu = function
  | Xr x -> cpu.xlo.(x)
  | Xm m -> Mem.read_u64 cpu.mem (resolve cpu m)

let xop_load128 cpu = function
  | Xr x -> (cpu.xlo.(x), cpu.xhi.(x))
  | Xm m ->
    let a = resolve cpu m in
    (Mem.read_u64 cpu.mem a, Mem.read_u64 cpu.mem (a + 8))

let xop_load32 cpu = function
  | Xr x -> Int64.logand cpu.xlo.(x) 0xFFFFFFFFL
  | Xm m -> Int64.of_int (Mem.read_u32 cpu.mem (resolve cpu m))

let fp_bin op a b =
  match op with
  | FAdd -> a +. b
  | FSub -> a -. b
  | FMul -> a *. b
  | FDiv -> a /. b
  (* x86 min/max semantics: source operand wins on NaN or equality *)
  | FMin -> if a < b then a else b
  | FMax -> if a > b then a else b
  | FSqrt -> sqrt b (* unary: operates on source *)

let lanes32 (lo, hi) = [| trunc W32 lo; Int64.shift_right_logical lo 32;
                          trunc W32 hi; Int64.shift_right_logical hi 32 |]

let pack32 l =
  ( Int64.logor (trunc W32 l.(0)) (Int64.shift_left (trunc W32 l.(1)) 32),
    Int64.logor (trunc W32 l.(2)) (Int64.shift_left (trunc W32 l.(3)) 32) )

let is_16aligned a = a land 15 = 0

(* -------- execution -------- *)

let fetch cpu addr =
  match Hashtbl.find_opt cpu.code addr with
  | Some r -> r
  | None ->
    let r = Decode.decode ~read:(Mem.read_u8 cpu.mem) addr in
    Hashtbl.replace cpu.code addr r;
    r

(* the longest x86-64 instruction: an insn starting up to this many
   bytes before an overwritten range may still cover it *)
let max_insn_len = 15

(** Invalidate the code caches after writing fresh code to memory.
    With [range = (lo, hi)] only decoded instructions and superblocks
    whose bytes overlap [lo, hi) are dropped (plus chain links into
    them, which die with the block's validity bit); without it both
    caches are cleared entirely. *)
let flush_code ?range cpu =
  cpu.sb_flushes <- cpu.sb_flushes + 1;
  Tel.incr_c c_sb_flush;
  if !Tel.enabled then
    Tel.instant "sb.flush"
      ~args:
        (match range with
         | Some (lo, hi) -> Printf.sprintf "0x%x-0x%x" lo hi
         | None -> "all");
  match range with
  | None ->
    Hashtbl.reset cpu.code;
    Hashtbl.iter (fun _ b -> b.sb_valid <- false) cpu.blocks;
    Hashtbl.reset cpu.blocks
  | Some (lo, hi) ->
    let doomed_insns =
      Hashtbl.fold
        (fun a _ acc -> if a > lo - max_insn_len && a < hi then a :: acc else acc)
        cpu.code []
    in
    List.iter (Hashtbl.remove cpu.code) doomed_insns;
    let doomed_blocks =
      Hashtbl.fold
        (fun e b acc -> if b.sb_end > lo && e < hi then (e, b) :: acc else acc)
        cpu.blocks []
    in
    List.iter
      (fun (e, b) ->
        b.sb_valid <- false;
        Hashtbl.remove cpu.blocks e)
      doomed_blocks

type cache_stats = {
  block_hits : int;      (* superblock served from the cache *)
  block_misses : int;    (* superblock built (pre-decoded) *)
  block_flushes : int;   (* flush_code invocations *)
  block_chained : int;   (* transitions resolved by a chain link *)
  blocks_live : int;     (* blocks currently cached *)
}

let cache_stats cpu =
  { block_hits = cpu.sb_hits; block_misses = cpu.sb_misses;
    block_flushes = cpu.sb_flushes; block_chained = cpu.sb_chained;
    blocks_live = Hashtbl.length cpu.blocks }

let reset_cache_stats cpu =
  cpu.sb_hits <- 0; cpu.sb_misses <- 0;
  cpu.sb_flushes <- 0; cpu.sb_chained <- 0

let target_addr = function
  | Abs a -> a
  | Lbl l -> err "cannot execute unresolved label .L%d" l

(* The dynamic penalty (branch direction, vector misalignment) is
   accumulated in [cpu.pen] rather than a local [ref] so that the hot
   loop performs no per-instruction allocation. *)
let exec cpu (i : insn) =
  let c = cpu.cost in
  cpu.pen <- 0;
  let check_align16 m =
    let a = resolve cpu m in
    if not (is_16aligned a) then cpu.pen <- cpu.pen + c.unaligned_vec
  in
  (match i with
   | Mov (w, dst, src) -> write_op cpu w dst (read_op cpu w src)
   | Movabs (r, v) -> set_reg cpu W64 r v
   | Movzx (dw, dst, sw, src) -> set_reg cpu dw dst (read_op cpu sw src)
   | Movsx (dw, dst, sw, src) ->
     set_reg cpu dw dst (trunc dw (sext sw (read_op cpu sw src)))
   | Lea (dst, m) -> set_reg cpu W64 dst (effective cpu { m with seg = None })
   | Alu (op, w, dst, src) ->
     let a = read_op cpu w dst in
     let b = read_op cpu w src in
     (match op with
      | Add ->
        let r = trunc w (Int64.add a b) in
        flags_add cpu w a b r;
        write_op cpu w dst r
      | Adc ->
        let cin = if cpu.cf then 1L else 0L in
        let r = trunc w (Int64.add (Int64.add a b) cin) in
        flags_add ~cin cpu w a b r;
        write_op cpu w dst r
      | Sub ->
        let r = trunc w (Int64.sub a b) in
        flags_sub cpu w a b r;
        write_op cpu w dst r
      | Sbb ->
        let cin = if cpu.cf then 1L else 0L in
        let r = trunc w (Int64.sub (Int64.sub a b) cin) in
        flags_sub ~cin cpu w a b r;
        write_op cpu w dst r
      | Cmp ->
        let r = trunc w (Int64.sub a b) in
        flags_sub cpu w a b r
      | And ->
        let r = Int64.logand a b in
        flags_logic cpu w r;
        write_op cpu w dst r
      | Or ->
        let r = Int64.logor a b in
        flags_logic cpu w r;
        write_op cpu w dst r
      | Xor ->
        let r = Int64.logxor a b in
        flags_logic cpu w r;
        write_op cpu w dst r)
   | Test (w, a, b) ->
     flags_logic cpu w (Int64.logand (read_op cpu w a) (read_op cpu w b))
   | Imul2 (w, dst, src) ->
     let a = sext w (get_reg cpu w dst) in
     let b = sext w (read_op cpu w src) in
     let p = Int64.mul a b in
     let r = trunc w p in
     let ovf = sext w r <> p ||
               (w = W64 && a <> 0L && Int64.div p a <> b) in
     set_szp cpu w r;
     cpu.cf <- ovf; cpu.o_f <- ovf; cpu.af <- false;
     set_reg cpu w dst r
   | Imul3 (w, dst, src, imm) ->
     let a = sext w (read_op cpu w src) in
     let b = sext w (trunc w imm) in
     let p = Int64.mul a b in
     let r = trunc w p in
     let ovf = sext w r <> p ||
               (w = W64 && a <> 0L && Int64.div p a <> b) in
     set_szp cpu w r;
     cpu.cf <- ovf; cpu.o_f <- ovf; cpu.af <- false;
     set_reg cpu w dst r
   | Idiv (w, src) ->
     let d = sext w (read_op cpu w src) in
     if d = 0L then err "division by zero";
     let dividend =
       match w with
       | W64 ->
         let lo = cpu.regs.(0) and hi = cpu.regs.(2) in
         if hi <> Int64.shift_right lo 63 then
           err "128-bit idiv dividend unsupported";
         lo
       | W32 ->
         let lo = trunc W32 cpu.regs.(0) in
         let hi = trunc W32 cpu.regs.(2) in
         sext W64 (Int64.logor lo (Int64.shift_left hi 32))
       | _ -> err "8/16-bit idiv unsupported"
     in
     let q = Int64.div dividend d in
     let r = Int64.rem dividend d in
     if w = W32 && sext W32 (trunc W32 q) <> q then err "idiv overflow";
     set_reg cpu w Reg.RAX q;
     set_reg cpu w Reg.RDX r
   | Cqo ->
     cpu.regs.(2) <- Int64.shift_right cpu.regs.(0) 63
   | Cdq ->
     let v = Int64.shift_right (sext W32 (trunc W32 cpu.regs.(0))) 31 in
     set_reg cpu W32 Reg.RDX v
   | Shift (op, w, dst, cnt) ->
     let bits = width_bits w in
     let n =
       (match cnt with
        | ShImm n -> n
        | ShCl -> Int64.to_int (trunc W8 cpu.regs.(1)))
       land (if w = W64 then 63 else 31)
     in
     (* count 0 leaves flags alone but the destination write still
        happens architecturally: a W32 write zeroes bits 63:32 *)
     if n = 0 then begin
       let a = read_op cpu w dst in
       write_op cpu w dst a
     end
     else begin
       let a = read_op cpu w dst in
       let r =
         match op with
         | Shl -> trunc w (Int64.shift_left a n)
         | Shr -> if n >= bits then 0L else Int64.shift_right_logical a n
         | Sar ->
           let s = sext w a in
           trunc w (Int64.shift_right s (min n 63))
       in
       (match op with
        | Shl ->
          cpu.cf <-
            n <= bits
            && Int64.logand (Int64.shift_right_logical a (bits - n)) 1L = 1L;
          cpu.o_f <- msb w r <> cpu.cf
        | Shr ->
          cpu.cf <- n <= bits && Int64.logand (Int64.shift_right_logical a (n - 1)) 1L = 1L;
          cpu.o_f <- msb w a
        | Sar ->
          cpu.cf <-
            Int64.logand (Int64.shift_right (sext w a) (min (n - 1) 63)) 1L
            = 1L;
          cpu.o_f <- false);
       set_szp cpu w r;
       write_op cpu w dst r
     end
   | Unop (op, w, dst) ->
     let a = read_op cpu w dst in
     (match op with
      | Neg ->
        let r = trunc w (Int64.neg a) in
        set_szp cpu w r;
        cpu.cf <- a <> 0L;
        cpu.o_f <- msb w (Int64.logand a r);
        write_op cpu w dst r
      | Not -> write_op cpu w dst (trunc w (Int64.lognot a))
      | Inc ->
        let r = trunc w (Int64.add a 1L) in
        let cf = cpu.cf in
        flags_add cpu w a 1L r;
        cpu.cf <- cf;
        write_op cpu w dst r
      | Dec ->
        let r = trunc w (Int64.sub a 1L) in
        let cf = cpu.cf in
        flags_sub cpu w a 1L r;
        cpu.cf <- cf;
        write_op cpu w dst r)
   | Push src -> push64 cpu (read_op cpu W64 src)
   | Pop dst -> write_op cpu W64 dst (pop64 cpu)
   | Leave ->
     cpu.regs.(rsp_i) <- cpu.regs.(Reg.index Reg.RBP);
     cpu.regs.(Reg.index Reg.RBP) <- pop64 cpu
   | Call t ->
     push64 cpu (Int64.of_int cpu.rip);
     cpu.rip <- target_addr t
   | CallInd op ->
     let tgt = Int64.to_int (read_op cpu W64 op) land addr_mask in
     push64 cpu (Int64.of_int cpu.rip);
     cpu.rip <- tgt
   | Ret -> cpu.rip <- Int64.to_int (pop64 cpu) land addr_mask
   | Jmp t -> cpu.rip <- target_addr t
   | JmpInd op -> cpu.rip <- Int64.to_int (read_op cpu W64 op) land addr_mask
   | Jcc (cc, t) ->
     if cond cpu cc then begin
       cpu.rip <- target_addr t;
       cpu.pen <- cpu.pen + c.branch_taken
     end
     else cpu.pen <- cpu.pen + c.branch_not_taken
   | Cmov (cc, w, dst, src) ->
     (* the load happens regardless of the condition *)
     let v = read_op cpu w src in
     if cond cpu cc then set_reg cpu w dst v
     else if w = W32 then set_reg cpu w dst (get_reg cpu W32 dst)
   | Setcc (cc, dst) ->
     write_op cpu W8 dst (if cond cpu cc then 1L else 0L)
   | SseMov (k, dst, src) ->
     (match k, dst, src with
      | (Movsd | Movss), Xr d, Xr s ->
        if k = Movsd then cpu.xlo.(d) <- cpu.xlo.(s)
        else
          cpu.xlo.(d) <-
            Int64.logor
              (Int64.logand cpu.xlo.(d) 0xFFFFFFFF00000000L)
              (Int64.logand cpu.xlo.(s) 0xFFFFFFFFL)
      | Movsd, Xr d, (Xm _ as m) ->
        cpu.xlo.(d) <- xop_load64 cpu m;
        cpu.xhi.(d) <- 0L
      | Movss, Xr d, (Xm _ as m) ->
        cpu.xlo.(d) <- xop_load32 cpu m;
        cpu.xhi.(d) <- 0L
      | Movsd, Xm m, Xr s -> Mem.write_u64 cpu.mem (resolve cpu m) cpu.xlo.(s)
      | Movss, Xm m, Xr s ->
        Mem.write_u32 cpu.mem (resolve cpu m)
          (Int64.to_int (Int64.logand cpu.xlo.(s) 0xFFFFFFFFL))
      | Movq, Xr d, s ->
        cpu.xlo.(d) <- xop_load64 cpu s;
        cpu.xhi.(d) <- 0L
      | Movq, Xm m, Xr s -> Mem.write_u64 cpu.mem (resolve cpu m) cpu.xlo.(s)
      | (Movups | Movupd | Movdqu), Xr d, s ->
        (match s with Xm m -> check_align16 m | Xr _ -> ());
        let lo, hi = xop_load128 cpu s in
        cpu.xlo.(d) <- lo;
        cpu.xhi.(d) <- hi
      | (Movaps | Movapd | Movdqa), Xr d, s ->
        (match s with
         | Xm m ->
           if not (is_16aligned (resolve cpu m)) then
             err "misaligned movaps load"
         | Xr _ -> ());
        let lo, hi = xop_load128 cpu s in
        cpu.xlo.(d) <- lo;
        cpu.xhi.(d) <- hi
      | (Movups | Movupd | Movdqu), Xm m, Xr s ->
        check_align16 m;
        let a = resolve cpu m in
        Mem.write_u64 cpu.mem a cpu.xlo.(s);
        Mem.write_u64 cpu.mem (a + 8) cpu.xhi.(s)
      | (Movaps | Movapd | Movdqa), Xm m, Xr s ->
        let a = resolve cpu m in
        if not (is_16aligned a) then err "misaligned movaps store";
        Mem.write_u64 cpu.mem a cpu.xlo.(s);
        Mem.write_u64 cpu.mem (a + 8) cpu.xhi.(s)
      | _, Xm _, Xm _ -> err "SSE mem-to-mem move")
   | MovqXR (x, r) ->
     cpu.xlo.(x) <- get_reg64 cpu r;
     cpu.xhi.(x) <- 0L
   | MovqRX (r, x) -> set_reg cpu W64 r cpu.xlo.(x)
   | SseArith (op, p, dst, src) ->
     (match p with
      | Sd ->
        let a = f64 cpu.xlo.(dst) in
        let b = f64 (xop_load64 cpu src) in
        cpu.xlo.(dst) <- b64 (fp_bin op a b)
      | Ss ->
        let a = f32 cpu.xlo.(dst) in
        let b = f32 (xop_load32 cpu src) in
        cpu.xlo.(dst) <-
          Int64.logor
            (Int64.logand cpu.xlo.(dst) 0xFFFFFFFF00000000L)
            (b32 (fp_bin op a b))
      | Pd ->
        (match src with Xm m -> check_align16 m | Xr _ -> ());
        let slo, shi = xop_load128 cpu src in
        cpu.xlo.(dst) <- b64 (fp_bin op (f64 cpu.xlo.(dst)) (f64 slo));
        cpu.xhi.(dst) <- b64 (fp_bin op (f64 cpu.xhi.(dst)) (f64 shi))
      | Ps ->
        (match src with Xm m -> check_align16 m | Xr _ -> ());
        let s = lanes32 (xop_load128 cpu src) in
        let d = lanes32 (cpu.xlo.(dst), cpu.xhi.(dst)) in
        let r =
          Array.init 4 (fun i -> b32 (fp_bin op (f32 d.(i)) (f32 s.(i))))
        in
        let lo, hi = pack32 r in
        cpu.xlo.(dst) <- lo;
        cpu.xhi.(dst) <- hi)
   | SseLogic (op, dst, src) ->
     let slo, shi = xop_load128 cpu src in
     let f =
       match op with
       | Pxor | Xorps | Xorpd -> Int64.logxor
       | Pand | Andps | Andpd -> Int64.logand
       | Por -> Int64.logor
     in
     cpu.xlo.(dst) <- f cpu.xlo.(dst) slo;
     cpu.xhi.(dst) <- f cpu.xhi.(dst) shi
   | Ucomis (p, dst, src) ->
     let a, b =
       if p = Sd then (f64 cpu.xlo.(dst), f64 (xop_load64 cpu src))
       else (f32 cpu.xlo.(dst), f32 (xop_load32 cpu src))
     in
     if Float.is_nan a || Float.is_nan b then begin
       cpu.zf <- true; cpu.pf <- true; cpu.cf <- true
     end
     else begin
       cpu.zf <- a = b;
       cpu.pf <- false;
       cpu.cf <- a < b
     end;
     cpu.o_f <- false; cpu.sf <- false; cpu.af <- false
   | Cvtsi2sd (x, w, src) ->
     let v = sext w (read_op cpu w src) in
     cpu.xlo.(x) <- b64 (Int64.to_float v)
   | Cvttsd2si (r, w, src) ->
     let f = f64 (xop_load64 cpu src) in
     let v = Int64.of_float f in (* truncates toward zero *)
     set_reg cpu w r (trunc w v)
   | Cvtsd2ss (x, src) ->
     let f = f64 (xop_load64 cpu src) in
     cpu.xlo.(x) <-
       Int64.logor (Int64.logand cpu.xlo.(x) 0xFFFFFFFF00000000L) (b32 f)
   | Cvtss2sd (x, src) ->
     let f = f32 (xop_load32 cpu src) in
     cpu.xlo.(x) <- b64 f
   | Unpcklpd (x, src) ->
     let slo, _ = xop_load128 cpu src in
     cpu.xhi.(x) <- slo
   | Shufpd (x, src, imm) ->
     let slo, shi = xop_load128 cpu src in
     let dlo, dhi = (cpu.xlo.(x), cpu.xhi.(x)) in
     cpu.xlo.(x) <- (if imm land 1 = 0 then dlo else dhi);
     cpu.xhi.(x) <- (if imm land 2 = 0 then slo else shi)
   | Padd (w, x, src) ->
     let slo, shi = xop_load128 cpu src in
     (match w with
      | W64 ->
        cpu.xlo.(x) <- Int64.add cpu.xlo.(x) slo;
        cpu.xhi.(x) <- Int64.add cpu.xhi.(x) shi
      | W32 ->
        let s = lanes32 (slo, shi) in
        let d = lanes32 (cpu.xlo.(x), cpu.xhi.(x)) in
        let r = Array.init 4 (fun i -> trunc W32 (Int64.add d.(i) s.(i))) in
        let lo, hi = pack32 r in
        cpu.xlo.(x) <- lo;
        cpu.xhi.(x) <- hi
      | _ -> err "unsupported padd lane width")
   | Nop _ -> ()
   | Ud2 -> err "ud2 executed"
   | Int3 -> err "int3 executed");
  cpu.pen

let step cpu =
  let a = cpu.rip in
  let i, len = fetch cpu cpu.rip in
  cpu.rip <- cpu.rip + len;
  let penalty = exec cpu i in
  cpu.icount <- cpu.icount + 1;
  let c = Cost.insn_cost cpu.cost i + penalty in
  cpu.cycles <- cpu.cycles + c;
  if !Prov.enabled then Prov.record_insn a c

(* -------- instruction translation -------- *)

(* [translate] pre-compiles one decoded instruction into a closure
   with operand kinds, register indices, widths and immediates
   resolved at translation time, so the block engine's inner loop pays
   neither the outer instruction dispatch nor the per-access operand
   matches.  Every closure returns the dynamic cycle penalty, exactly
   like {!exec}, and semantics are kept identical by reusing the same
   flag/memory helpers; infrequent forms simply fall back to [exec]. *)

let rd_operand w (op : operand) : t -> int64 =
  match op with
  | OReg r ->
    let i = Reg.index r in
    (match w with
     | W64 -> fun cpu -> Array.unsafe_get cpu.regs i
     | _ -> fun cpu -> trunc w cpu.regs.(i))
  | OReg8H r -> fun cpu -> get_reg8h cpu r
  | OImm v -> let v = trunc w v in fun _ -> v
  | OMem m -> fun cpu -> load cpu w (resolve cpu m)

let wr_operand w (op : operand) : t -> int64 -> unit =
  match op with
  | OReg r ->
    let i = Reg.index r in
    (match w with
     | W64 -> fun cpu v -> Array.unsafe_set cpu.regs i v
     | W32 -> fun cpu v -> cpu.regs.(i) <- trunc W32 v
     | _ -> fun cpu v -> set_reg cpu w r v)
  | OReg8H r -> fun cpu v -> set_reg8h cpu r v
  | OMem m -> fun cpu v -> store cpu w (resolve cpu m) v
  | OImm _ -> fun _ _ -> err "cannot write to an immediate"

let fp_fun = function
  | FAdd -> ( +. )
  | FSub -> ( -. )
  | FMul -> ( *. )
  | FDiv -> ( /. )
  | FMin -> fun a b -> if a < b then a else b
  | FMax -> fun a b -> if a > b then a else b
  | FSqrt -> fun _ b -> sqrt b

let translate (c : Cost.t) (i : insn) : t -> int =
  match i with
  | Mov (W64, OReg d, OReg s) ->
    let d = Reg.index d and s = Reg.index s in
    fun cpu -> cpu.regs.(d) <- cpu.regs.(s); 0
  | Mov (w, dst, src) ->
    let rd = rd_operand w src and wr = wr_operand w dst in
    fun cpu -> wr cpu (rd cpu); 0
  | Movabs (r, v) ->
    let d = Reg.index r in
    fun cpu -> cpu.regs.(d) <- v; 0
  | Movzx (dw, dst, sw, src) ->
    let rd = rd_operand sw src in
    fun cpu -> set_reg cpu dw dst (rd cpu); 0
  | Movsx (dw, dst, sw, src) ->
    let rd = rd_operand sw src in
    fun cpu -> set_reg cpu dw dst (trunc dw (sext sw (rd cpu))); 0
  | Lea (dst, m) ->
    let d = Reg.index dst and m = { m with seg = None } in
    fun cpu -> cpu.regs.(d) <- effective cpu m; 0
  | Alu (op, w, dst, src) ->
    let rd_d = rd_operand w dst and rd_s = rd_operand w src in
    let wr_d = wr_operand w dst in
    (match op with
     | Add ->
       fun cpu ->
         let a = rd_d cpu in
         let b = rd_s cpu in
         let r = trunc w (Int64.add a b) in
         flags_add cpu w a b r; wr_d cpu r; 0
     | Sub ->
       fun cpu ->
         let a = rd_d cpu in
         let b = rd_s cpu in
         let r = trunc w (Int64.sub a b) in
         flags_sub cpu w a b r; wr_d cpu r; 0
     | Cmp ->
       fun cpu ->
         let a = rd_d cpu in
         let b = rd_s cpu in
         flags_sub cpu w a b (trunc w (Int64.sub a b)); 0
     | And ->
       fun cpu ->
         let r = Int64.logand (rd_d cpu) (rd_s cpu) in
         flags_logic cpu w r; wr_d cpu r; 0
     | Or ->
       fun cpu ->
         let r = Int64.logor (rd_d cpu) (rd_s cpu) in
         flags_logic cpu w r; wr_d cpu r; 0
     | Xor ->
       fun cpu ->
         let r = Int64.logxor (rd_d cpu) (rd_s cpu) in
         flags_logic cpu w r; wr_d cpu r; 0
     | Adc | Sbb -> (fun cpu -> exec cpu i))
  | Test (w, a, b) ->
    let rd_a = rd_operand w a and rd_b = rd_operand w b in
    fun cpu -> flags_logic cpu w (Int64.logand (rd_a cpu) (rd_b cpu)); 0
  | Unop (op, w, dst) ->
    let rd = rd_operand w dst and wr = wr_operand w dst in
    (match op with
     | Inc ->
       fun cpu ->
         let a = rd cpu in
         let r = trunc w (Int64.add a 1L) in
         let cf = cpu.cf in
         flags_add cpu w a 1L r;
         cpu.cf <- cf; wr cpu r; 0
     | Dec ->
       fun cpu ->
         let a = rd cpu in
         let r = trunc w (Int64.sub a 1L) in
         let cf = cpu.cf in
         flags_sub cpu w a 1L r;
         cpu.cf <- cf; wr cpu r; 0
     | Not -> (fun cpu -> wr cpu (trunc w (Int64.lognot (rd cpu))); 0)
     | Neg -> (fun cpu -> exec cpu i))
  | Push src ->
    let rd = rd_operand W64 src in
    fun cpu -> push64 cpu (rd cpu); 0
  | Pop dst ->
    let wr = wr_operand W64 dst in
    fun cpu -> wr cpu (pop64 cpu); 0
  | Call (Abs a) ->
    fun cpu ->
      push64 cpu (Int64.of_int cpu.rip);
      cpu.rip <- a; 0
  | CallInd op ->
    let rd = rd_operand W64 op in
    fun cpu ->
      let tgt = Int64.to_int (rd cpu) land addr_mask in
      push64 cpu (Int64.of_int cpu.rip);
      cpu.rip <- tgt; 0
  | Ret -> (fun cpu -> cpu.rip <- Int64.to_int (pop64 cpu) land addr_mask; 0)
  | Jmp (Abs a) -> (fun cpu -> cpu.rip <- a; 0)
  | JmpInd op ->
    let rd = rd_operand W64 op in
    fun cpu -> cpu.rip <- Int64.to_int (rd cpu) land addr_mask; 0
  | Jcc (cc, Abs a) ->
    let taken = c.branch_taken and not_taken = c.branch_not_taken in
    fun cpu ->
      if cond cpu cc then begin cpu.rip <- a; taken end
      else not_taken
  | Cmov (cc, w, dst, src) ->
    let rd = rd_operand w src in
    (match w with
     | W32 ->
       fun cpu ->
         let v = rd cpu in
         if cond cpu cc then set_reg cpu W32 dst v
         else set_reg cpu W32 dst (get_reg cpu W32 dst);
         0
     | _ ->
       fun cpu ->
         let v = rd cpu in
         if cond cpu cc then set_reg cpu w dst v;
         0)
  | Setcc (cc, dst) ->
    let wr = wr_operand W8 dst in
    fun cpu -> wr cpu (if cond cpu cc then 1L else 0L); 0
  | Imul2 (w, dst, src) ->
    let rd = rd_operand w src in
    fun cpu ->
      let a = sext w (get_reg cpu w dst) in
      let b = sext w (rd cpu) in
      let p = Int64.mul a b in
      let r = trunc w p in
      let ovf = sext w r <> p || (w = W64 && a <> 0L && Int64.div p a <> b) in
      set_szp cpu w r;
      cpu.cf <- ovf; cpu.o_f <- ovf; cpu.af <- false;
      set_reg cpu w dst r; 0
  | SseMov (Movsd, Xr d, Xr s) ->
    fun cpu -> cpu.xlo.(d) <- cpu.xlo.(s); 0
  | SseMov (Movsd, Xr d, Xm m) ->
    fun cpu ->
      cpu.xlo.(d) <- Mem.read_u64 cpu.mem (resolve cpu m);
      cpu.xhi.(d) <- 0L; 0
  | SseMov (Movsd, Xm m, Xr s) ->
    fun cpu -> Mem.write_u64 cpu.mem (resolve cpu m) cpu.xlo.(s); 0
  | SseMov (Movq, Xr d, Xr s) ->
    fun cpu ->
      cpu.xlo.(d) <- cpu.xlo.(s);
      cpu.xhi.(d) <- 0L; 0
  | SseMov ((Movups | Movupd | Movdqu), Xr d, Xm m) ->
    let up = c.unaligned_vec in
    fun cpu ->
      let a = resolve cpu m in
      cpu.xlo.(d) <- Mem.read_u64 cpu.mem a;
      cpu.xhi.(d) <- Mem.read_u64 cpu.mem (a + 8);
      if is_16aligned a then 0 else up
  | SseMov ((Movups | Movupd | Movdqu), Xm m, Xr s) ->
    let up = c.unaligned_vec in
    fun cpu ->
      let a = resolve cpu m in
      Mem.write_u64 cpu.mem a cpu.xlo.(s);
      Mem.write_u64 cpu.mem (a + 8) cpu.xhi.(s);
      if is_16aligned a then 0 else up
  | MovqXR (x, r) ->
    let r = Reg.index r in
    fun cpu ->
      cpu.xlo.(x) <- cpu.regs.(r);
      cpu.xhi.(x) <- 0L; 0
  | MovqRX (r, x) ->
    let r = Reg.index r in
    fun cpu -> cpu.regs.(r) <- cpu.xlo.(x); 0
  | SseArith (op, Sd, dst, src) ->
    let f = fp_fun op in
    (match src with
     | Xr s ->
       fun cpu ->
         cpu.xlo.(dst) <- b64 (f (f64 cpu.xlo.(dst)) (f64 cpu.xlo.(s))); 0
     | Xm m ->
       fun cpu ->
         let b = f64 (Mem.read_u64 cpu.mem (resolve cpu m)) in
         cpu.xlo.(dst) <- b64 (f (f64 cpu.xlo.(dst)) b); 0)
  | SseArith (op, Pd, dst, (Xr _ as src)) ->
    (* register source: no alignment penalty possible *)
    let f = fp_fun op in
    fun cpu ->
      let slo, shi = xop_load128 cpu src in
      cpu.xlo.(dst) <- b64 (f (f64 cpu.xlo.(dst)) (f64 slo));
      cpu.xhi.(dst) <- b64 (f (f64 cpu.xhi.(dst)) (f64 shi));
      0
  | SseLogic (op, dst, (Xr _ as src)) ->
    let f =
      match op with
      | Pxor | Xorps | Xorpd -> Int64.logxor
      | Pand | Andps | Andpd -> Int64.logand
      | Por -> Int64.logor
    in
    fun cpu ->
      let slo, shi = xop_load128 cpu src in
      cpu.xlo.(dst) <- f cpu.xlo.(dst) slo;
      cpu.xhi.(dst) <- f cpu.xhi.(dst) shi;
      0
  | Nop _ -> (fun _ -> 0)
  | _ -> (fun cpu -> exec cpu i)

(* -------- translation-block engine -------- *)

(* cap on pre-decoded instructions per superblock; straight-line runs
   longer than this are split into consecutive (chained) blocks *)
let max_block_insns = 256

(* Decode the straight-line run at [entry], but survive a decode
   failure in the middle: the decodable prefix still becomes a valid
   block (its last rip is the faulting address, so the next lookup
   re-raises the typed error exactly there — the same behaviour as the
   single-step engine, with nothing bogus left in the block cache).
   Only a failure on the very first instruction propagates. *)
let decode_prefix cpu entry ~max =
  let rec go a n acc =
    match fetch cpu a with
    | exception Err.Error { stage = Err.Decode; _ } when acc <> [] ->
      List.rev acc
    | i, len ->
      let acc = (i, a + len) :: acc in
      if Decode.is_terminator i || n + 1 >= max then List.rev acc
      else go (a + len) (n + 1) acc
  in
  go entry 0 []

let build_block cpu entry : sblock =
  let args = if !Tel.enabled then Printf.sprintf "0x%x" entry else "" in
  Tel.span "sb.translate" ~args (fun () ->
  let run = decode_prefix cpu entry ~max:max_block_insns in
  let n = List.length run in
  Tel.observe h_sb_len n;
  let insns = Array.make n Ret and rips = Array.make n 0 in
  List.iteri
    (fun k (i, next) ->
      insns.(k) <- i;
      rips.(k) <- next)
    run;
  let costs = Cost.insn_costs cpu.cost insns in
  { sb_entry = entry; sb_insns = insns;
    sb_ops = Array.map (translate cpu.cost) insns;
    sb_rips = rips; sb_costs = costs;
    sb_static = Array.fold_left ( + ) 0 costs; sb_end = rips.(n - 1);
    sb_valid = true; sb_link1 = None; sb_link2 = None })

let lookup_block cpu addr : sblock =
  match Hashtbl.find_opt cpu.blocks addr with
  | Some b when b.sb_valid ->
    cpu.sb_hits <- cpu.sb_hits + 1;
    Tel.incr_c c_sb_hit;
    b
  | _ ->
    cpu.sb_misses <- cpu.sb_misses + 1;
    Tel.incr_c c_sb_miss;
    let b = build_block cpu addr in
    Hashtbl.replace cpu.blocks addr b;
    b

(* Execute one superblock.  Observably equivalent to {!step}-ing
   through it — rip is advanced past the instruction before it
   executes (calls push it, non-taken Jcc falls through to it) — but
   fetch, decode and the static cost computation are all hoisted out
   of the loop, and cycles/icount are written back once per block
   (with the executed prefix accounted exactly if an instruction
   faults). *)
let exec_block_fast cpu (b : sblock) =
  Tel.incr_c c_sb_exec;
  let ops = b.sb_ops and rips = b.sb_rips in
  let n = Array.length ops in
  let penalties = ref 0 in
  let k = ref 0 in
  (try
     while !k < n do
       cpu.rip <- Array.unsafe_get rips !k;
       penalties := !penalties + (Array.unsafe_get ops !k) cpu;
       incr k
     done
   with e ->
     (* per-insn accounting for the prefix before the fault, exactly
        as the single-step engine leaves it *)
     let static = ref 0 in
     for j = 0 to !k - 1 do static := !static + b.sb_costs.(j) done;
     cpu.icount <- cpu.icount + !k;
     cpu.cycles <- cpu.cycles + !static + !penalties;
     raise e);
  cpu.icount <- cpu.icount + n;
  cpu.cycles <- cpu.cycles + b.sb_static + !penalties

(* Profiled twin of {!exec_block_fast}: attributes every simulated
   cycle (static cost + dynamic penalty) to the guest address of the
   instruction that spent it, and the block total to the superblock
   entry.  The per-insn sums equal the engine's cycle writeback
   exactly, including the executed prefix of a faulting block.  The
   address of instruction [k] is the block entry for [k = 0] and the
   previous instruction's post-rip otherwise (rip is advanced past an
   instruction before it executes). *)
let exec_block_profiled cpu (b : sblock) =
  Tel.incr_c c_sb_exec;
  let ops = b.sb_ops and rips = b.sb_rips and costs = b.sb_costs in
  let n = Array.length ops in
  let total = ref 0 in
  let k = ref 0 in
  (try
     while !k < n do
       let addr = if !k = 0 then b.sb_entry else rips.(!k - 1) in
       cpu.rip <- Array.unsafe_get rips !k;
       let c = costs.(!k) + (Array.unsafe_get ops !k) cpu in
       Prov.record_insn addr c;
       total := !total + c;
       incr k
     done
   with e ->
     cpu.icount <- cpu.icount + !k;
     cpu.cycles <- cpu.cycles + !total;
     Prov.record_block b.sb_entry ~cycles:!total ~insns:!k;
     raise e);
  cpu.icount <- cpu.icount + n;
  cpu.cycles <- cpu.cycles + !total;
  Prov.record_block b.sb_entry ~cycles:!total ~insns:n

(* the fast path pays exactly one branch when profiling is off *)
let exec_block cpu (b : sblock) =
  if !Prov.enabled then exec_block_profiled cpu b else exec_block_fast cpu b

(* Successor lookup through the block's inline cache: a chain link is
   used only if it is still valid and its entry matches the live rip,
   so links survive neither a flush nor a divergent indirect target. *)
let next_block cpu (prev : sblock) addr : sblock =
  match prev.sb_link1 with
  | Some b when b.sb_entry = addr && b.sb_valid ->
    cpu.sb_chained <- cpu.sb_chained + 1;
    Tel.incr_c c_sb_chain;
    b
  | _ ->
    (match prev.sb_link2 with
     | Some b when b.sb_entry = addr && b.sb_valid ->
       cpu.sb_chained <- cpu.sb_chained + 1;
       Tel.incr_c c_sb_chain;
       b
     | _ ->
       let b = lookup_block cpu addr in
       (* direct branches have at most two successors (taken /
          fall-through), so two slots capture them; indirect
          transitions degrade to a monomorphic inline cache *)
       (match prev.sb_link1 with
        | None -> prev.sb_link1 <- Some b
        | Some l1 when not l1.sb_valid -> prev.sb_link1 <- Some b
        | Some _ -> prev.sb_link2 <- Some b);
       b)

(** Magic return address that stops {!run}. *)
let stop_addr = 0xDEAD0000

(* watchdog: terminate runaway emulation with a typed [Emulate] error
   carrying the rip it was stopped at *)
let budget_exceeded cpu budget =
  Err.fail ~addr:cpu.rip Err.Emulate
    "watchdog: instruction budget of %d exceeded" budget

(** Run until control returns to {!stop_addr}, one superblock at a
    time.  [max_insns] is the watchdog budget on executed instructions
    (the overshoot before the check is at most one block); exceeding
    it raises a typed [Emulate] error instead of hanging on emitted
    infinite loops. *)
let run ?(max_insns = 2_000_000_000) cpu =
  Tel.span "emulate.run" (fun () ->
      let steps = ref 0 in
      if cpu.rip <> stop_addr then begin
        let blk = ref (lookup_block cpu cpu.rip) in
        let continue = ref true in
        while !continue do
          let b = !blk in
          exec_block cpu b;
          steps := !steps + Array.length b.sb_insns;
          if !steps > max_insns then budget_exceeded cpu max_insns;
          if cpu.rip = stop_addr then continue := false
          else blk := next_block cpu b cpu.rip
        done
      end)

(** Run until {!stop_addr} strictly one instruction at a time through
    the decode cache — the reference engine the superblock engine is
    differentially tested against.  Same [max_insns] watchdog as
    {!run}. *)
let run_interp ?(max_insns = 2_000_000_000) cpu =
  Tel.span "emulate.interp" (fun () ->
      let steps = ref 0 in
      while cpu.rip <> stop_addr do
        step cpu;
        incr steps;
        if !steps > max_insns then budget_exceeded cpu max_insns
      done)

(** Execution engine selector for {!call}: the superblock engine is
    the default; [SingleStep] forces the per-instruction interpreter
    (used by the differential tests). *)
type engine = Superblocks | SingleStep

(** Call the function at [fn] following the System V ABI: integer/
    pointer arguments in rdi..., floating point arguments in xmm0...;
    returns (rax, xmm0-as-float). *)
let call ?(engine = Superblocks) ?(args = []) ?(fargs = []) ?max_insns cpu ~fn =
  List.iteri
    (fun i v ->
      match List.nth_opt Reg.arg_regs i with
      | Some r -> set_reg cpu W64 r v
      | None -> err "too many integer arguments")
    args;
  List.iteri
    (fun i v ->
      if i > 7 then err "too many float arguments";
      cpu.xlo.(i) <- Int64.bits_of_float v;
      cpu.xhi.(i) <- 0L)
    fargs;
  (* align stack to 16 then push the stop sentinel: at function entry
     rsp ≡ 8 (mod 16), exactly as after a real call *)
  let sp = Int64.to_int cpu.regs.(rsp_i) land lnot 15 in
  cpu.regs.(rsp_i) <- Int64.of_int sp;
  push64 cpu (Int64.of_int stop_addr);
  cpu.rip <- fn;
  (match engine with
   | Superblocks -> run ?max_insns cpu
   | SingleStep -> run_interp ?max_insns cpu);
  (cpu.regs.(0), Int64.float_of_bits cpu.xlo.(0))
