(** Virtual address-space layout on top of a {!Cpu.t}: a bump
    allocator for code and data regions, a symbol table, and stack
    setup.  Plays the role of the process image / JIT memory manager. *)

type t = {
  uid : int;                       (* unique per image, for memo keys *)
  cpu : Cpu.t;
  mutable next_code : int;
  mutable next_data : int;
  symbols : (string, int) Hashtbl.t;
  mutable stack_top : int;
  code_memo : (string, int) Hashtbl.t; (* item-digest -> installed addr *)
  code_digests : (int, string * int) Hashtbl.t;
  (* addr -> (digest, length) of the installed host bytes *)
  mutable install_hits : int;
  mutable install_misses : int;
  mutable patches : int; (* in-place thunk retargets (patch_thunk) *)
}

let code_base = 0x0040_0000
let data_base = 0x1000_0000
let stack_base = 0x7F00_0000
let stack_size = 0x10_0000 (* 1 MiB *)

let next_uid = ref 0

let create ?cost () =
  let cpu = Cpu.create ?cost () in
  incr next_uid;
  let t =
    { uid = !next_uid; cpu; next_code = code_base; next_data = data_base;
      symbols = Hashtbl.create 32; stack_top = stack_base;
      code_memo = Hashtbl.create 64; code_digests = Hashtbl.create 64;
      install_hits = 0; install_misses = 0; patches = 0 }
  in
  Cpu.set_reg cpu Insn.W64 Reg.RSP (Int64.of_int stack_base);
  t

(** Deep copy of the whole image — CPU state, memory, symbols and
    install caches — for the sentinel's shadow runs.  The fork gets a
    fresh [uid] so memo keys derived from it never collide with the
    original's. *)
let fork (t : t) : t =
  incr next_uid;
  { t with
    uid = !next_uid;
    cpu = Cpu.fork t.cpu;
    symbols = Hashtbl.copy t.symbols;
    code_memo = Hashtbl.copy t.code_memo;
    code_digests = Hashtbl.copy t.code_digests }

let align_up v a = (v + a - 1) land lnot (a - 1)

(** Reserve [size] bytes of zero-initialised data, [align]-aligned. *)
let alloc_data ?(align = 16) t size =
  let a = align_up t.next_data align in
  t.next_data <- a + size;
  a

(** Reset the stack pointer (between independent benchmark runs). *)
let reset_stack t =
  Cpu.set_reg t.cpu Insn.W64 Reg.RSP (Int64.of_int stack_base)

let define t name addr = Hashtbl.replace t.symbols name addr

let lookup t name =
  match Hashtbl.find_opt t.symbols name with
  | Some a -> a
  | None -> invalid_arg ("Image.lookup: undefined symbol " ^ name)

(** Assemble [items] at the next code address, write the bytes into
    emulated memory and return the entry address.  If [name] is given
    the address is also recorded in the symbol table.  Only the caches
    covering the freshly written range are invalidated, so unrelated
    superblocks (and their chain links) survive the install.

    With [dedup] the install is content-addressed: if the exact same
    item sequence was installed before, its address is reused (and
    re-bound to [name]) instead of emitting a duplicate copy.

    Quarantine: the digest of the final host bytes is checked against
    {!Obrew_fault.Quarantine} — blacklisted content is refused with a
    typed [Install] error (both on a fresh install and on a dedup hit
    whose recorded digest was quarantined since), so a deterministic
    recompilation of broken code cannot be served again. *)
let install_code ?name ?(dedup = false) t (items : Insn.item list) =
  Obrew_fault.Fault.point "install.code";
  (* content-addressing is a memo: while fault injection is live it
     must not short-circuit the encoder, or injected encode faults
     would depend on what happened to be installed earlier *)
  let dedup = dedup && not (Obrew_fault.Fault.active ()) in
  let key =
    if dedup then Some (Digest.string (Marshal.to_string items [])) else None
  in
  let quarantined addr =
    match Hashtbl.find_opt t.code_digests addr with
    | Some (d, _) -> Obrew_fault.Quarantine.mem d
    | None -> false
  in
  let served =
    match Option.bind key (Hashtbl.find_opt t.code_memo) with
    | Some addr when quarantined addr ->
      (* drop the entry; re-encoding below re-checks the content *)
      (match key with Some k -> Hashtbl.remove t.code_memo k | None -> ());
      None
    | served -> served
  in
  match served with
  | Some addr ->
    t.install_hits <- t.install_hits + 1;
    (match name with Some n -> define t n addr | None -> ());
    addr
  | None ->
    t.install_misses <- t.install_misses + 1;
    let base = align_up t.next_code 16 in
    let bytes, _, _ = Encode.assemble ~base items in
    let bytes =
      if Obrew_fault.Fault.sabotage "sabotage.install.bytes" then
        match Sabotage.corrupt_bytes bytes with
        | Some bytes' ->
          Obrew_fault.Fault.note_sabotage_landed ();
          bytes'
        | None -> bytes
      else bytes
    in
    let digest = Digest.string bytes in
    if Obrew_fault.Quarantine.mem digest then begin
      Obrew_fault.Quarantine.note_blocked ();
      Obrew_fault.Err.fail Obrew_fault.Err.Install
        "quarantined translation %s refused" (Digest.to_hex digest)
    end;
    Mem.write_bytes t.cpu.Cpu.mem base bytes;
    t.next_code <- base + String.length bytes;
    Cpu.flush_code ~range:(base, t.next_code) t.cpu;
    (match name with Some n -> define t n base | None -> ());
    (match key with Some k -> Hashtbl.replace t.code_memo k base | None -> ());
    Hashtbl.replace t.code_digests base (digest, String.length bytes);
    Obrew_observe.Flight.(
      emit Cache_install ~a:base ~b:(String.length bytes)
        ~subject:(Option.value ~default:"" name));
    base

(** Raw code bytes (e.g. produced by re-encoding a DBrew result, or
    replayed from a sentinel reproducer — hence no quarantine check:
    replay must be able to reinstall blacklisted content on a fork). *)
let install_bytes ?name t (bytes : string) =
  let base = align_up t.next_code 16 in
  Mem.write_bytes t.cpu.Cpu.mem base bytes;
  t.next_code <- base + String.length bytes;
  Cpu.flush_code ~range:(base, t.next_code) t.cpu;
  (match name with Some n -> define t n base | None -> ());
  Hashtbl.replace t.code_digests base (Digest.string bytes, String.length bytes);
  Obrew_observe.Flight.(
    emit Cache_install ~a:base ~b:(String.length bytes)
      ~subject:(Option.value ~default:"" name));
  base

(** Digest of the host bytes installed at [addr], when [addr] is the
    entry of a recorded install. *)
let digest_of_addr t addr =
  Option.map fst (Hashtbl.find_opt t.code_digests addr)

(** The exact host bytes installed at [addr] (read back from emulated
    memory), when [addr] is the entry of a recorded install. *)
let installed_bytes t addr =
  Option.map
    (fun (_, len) -> Mem.read_bytes t.cpu.Cpu.mem addr len)
    (Hashtbl.find_opt t.code_digests addr)

(** Byte range [addr, addr+len) of the install recorded at [addr]. *)
let code_range t addr =
  Option.map
    (fun (_, len) -> (addr, addr + len))
    (Hashtbl.find_opt t.code_digests addr)

(* A call-site thunk is the indirection the tier controller retargets:
   [movabs rax, target; jmp rax].  The 64-bit immediate sits at a fixed
   offset, so a tier-up rewrites 8 bytes in place instead of flushing
   the world.  rax is caller-saved and dead at every kernel entry
   (System V: it carries no argument), so clobbering it is safe. *)
let thunk_imm_off = 2 (* REX.W + B8, then imm64 *)

let thunk_items target =
  [ Insn.I (Insn.Movabs (Reg.RAX, Int64.of_int target));
    Insn.I (Insn.JmpInd (Insn.OReg Reg.RAX)) ]

(** Install a retargetable entry thunk that tail-jumps to [target];
    returns the thunk address.  Never deduplicated: each call site owns
    its thunk, otherwise patching one site would silently retarget the
    others. *)
let install_thunk ?name t ~target =
  let addr = install_code ?name t (thunk_items target) in
  (* the patch protocol depends on the immediate's position; verify the
     encoding actually put it where patch_thunk will write *)
  if Mem.read_u64 t.cpu.Cpu.mem (addr + thunk_imm_off)
     <> Int64.of_int target
  then
    Obrew_fault.Err.fail ~addr Obrew_fault.Err.Install
      "thunk encoding drifted: imm64 not at offset %d" thunk_imm_off;
  addr

(** Retarget the thunk at [addr] to [target]: rewrite the 8 immediate
    bytes in place, refresh the recorded digest and flush only the
    thunk's own byte range — every other superblock (and its chain
    links) survives, which is the point of tiering up without a global
    flush. *)
let patch_thunk t addr ~target =
  let len =
    match Hashtbl.find_opt t.code_digests addr with
    | Some (_, len) -> len
    | None -> invalid_arg "Image.patch_thunk: not an installed thunk"
  in
  Mem.write_u64 t.cpu.Cpu.mem (addr + thunk_imm_off) (Int64.of_int target);
  let bytes = Mem.read_bytes t.cpu.Cpu.mem addr len in
  Hashtbl.replace t.code_digests addr (Digest.string bytes, len);
  t.patches <- t.patches + 1;
  Cpu.flush_code ~range:(addr, addr + len) t.cpu

(** Store a list of doubles into fresh data memory; returns address. *)
let alloc_f64_array ?(align = 16) t (vs : float array) =
  let a = alloc_data ~align t (8 * Array.length vs) in
  Array.iteri (fun i v -> Mem.write_f64 t.cpu.Cpu.mem (a + (8 * i)) v) vs;
  a

(** Store 64-bit integers into fresh data memory; returns address. *)
let alloc_i64_array ?(align = 16) t (vs : int64 array) =
  let a = alloc_data ~align t (8 * Array.length vs) in
  Array.iteri (fun i v -> Mem.write_u64 t.cpu.Cpu.mem (a + (8 * i)) v) vs;
  a

(** Disassemble [n] instructions starting at [addr] (for code dumps). *)
let disassemble t addr n =
  let read = Mem.read_u8 t.cpu.Cpu.mem in
  let rec go a k acc =
    if k = 0 then List.rev acc
    else
      let i, len = Decode.decode ~read a in
      go (a + len) (k - 1) ((a, i) :: acc)
  in
  go addr n []

(** Disassemble from [addr] until (and including) the first [ret]. *)
let disassemble_fn t addr =
  let read = Mem.read_u8 t.cpu.Cpu.mem in
  let rec go a acc =
    let i, len = Decode.decode ~read a in
    let acc = (a, i) :: acc in
    match i with
    | Insn.Ret -> List.rev acc
    | _ -> go (a + len) acc
  in
  go addr []

let call ?engine ?args ?fargs ?max_insns t ~fn =
  Cpu.call ?engine ?args ?fargs ?max_insns t.cpu ~fn

(** Run [f] and report the cycle/instruction counts it consumed. *)
let measure t f =
  let c0 = t.cpu.Cpu.cycles and i0 = t.cpu.Cpu.icount in
  let r = f () in
  (r, t.cpu.Cpu.cycles - c0, t.cpu.Cpu.icount - i0)
