(** Saboteur corruptions: small, deterministic mutations of generated
    code used to drill the runtime sentinel.  Unlike {!Obrew_fault}'s
    regular injection points, nothing is raised — the broken code is
    installed and must be caught by shadow validation downstream.

    The mutations are chosen to be *always observable* under the
    sentinel's nonzero probe state: dropping the last store, inverting
    the last conditional branch, or flipping the last SSE arithmetic
    op each changes the kernel's written output (or traps the probe
    watchdog), never just unobservable scratch state. *)

open Insn

let is_store = function
  | I (Mov (_, OMem _, _)) -> true
  | I (SseMov (_, Xm _, _)) -> true
  | _ -> false

let is_jcc = function I (Jcc _) -> true | _ -> false
let is_flippable_arith = function
  | I (SseArith ((FAdd | FSub | FMul | FDiv | FMin | FMax), _, _, _)) -> true
  | _ -> false

let flip_arith = function
  | FAdd -> FSub | FSub -> FAdd
  | FMul -> FDiv | FDiv -> FMul
  | FMin -> FMax | FMax -> FMin
  | FSqrt -> FSqrt

let last_index p items =
  let r = ref (-1) in
  List.iteri (fun i it -> if p it then r := i) items;
  !r

(** Corrupt [items] by priority: delete the last store, else invert the
    last [Jcc], else flip the last SSE arithmetic op.  [None] when the
    list offers nothing corruptible (the saboteur "missed"). *)
let corrupt_items (items : item list) : item list option =
  let del = last_index is_store items in
  if del >= 0 then
    Some (List.filteri (fun i _ -> i <> del) items)
  else
    let jcc = last_index is_jcc items in
    if jcc >= 0 then
      Some
        (List.mapi
           (fun i it ->
             match it with
             | I (Jcc (c, t)) when i = jcc -> I (Jcc (cc_negate c, t))
             | it -> it)
           items)
    else
      let ar = last_index is_flippable_arith items in
      if ar >= 0 then
        Some
          (List.mapi
             (fun i it ->
               match it with
               | I (SseArith (op, p, d, s)) when i = ar ->
                 I (SseArith (flip_arith op, p, d, s))
               | it -> it)
             items)
      else None

(** Stomp the entry byte to [ret] (0xC3): the kernel becomes a no-op,
    which the probe always catches because correct kernels write.
    [None] when the bytes are empty or already start with [ret]. *)
let corrupt_bytes (bytes : string) : string option =
  if String.length bytes = 0 || bytes.[0] = '\xC3' then None
  else Some ("\xC3" ^ String.sub bytes 1 (String.length bytes - 1))

(** [maybe_corrupt point items]: consult the fault plan's saboteur arm
    for [point]; when it fires and a mutation lands, record it and
    return the corrupted list. *)
let maybe_corrupt point (items : item list) : item list =
  if Obrew_fault.Fault.sabotage point then
    match corrupt_items items with
    | Some items' ->
      Obrew_fault.Fault.note_sabotage_landed ();
      items'
    | None -> items
  else items
