(** Virtual address-space layout on top of a {!Cpu.t}: a bump allocator
    for code and data, a symbol table, stack setup, code installation
    and disassembly.  Plays the role of the process image and JIT
    memory manager. *)

type t = {
  uid : int;  (** unique per image; memo caches key on it *)
  cpu : Cpu.t;
  mutable next_code : int;
  mutable next_data : int;
  symbols : (string, int) Hashtbl.t;
  mutable stack_top : int;
  code_memo : (string, int) Hashtbl.t;
  (** content-addressed install cache: item-list digest -> address *)
  code_digests : (int, string * int) Hashtbl.t;
  (** entry address -> (digest, length) of the installed host bytes *)
  mutable install_hits : int;
  mutable install_misses : int;
  mutable patches : int;
  (** in-place thunk retargets performed by {!patch_thunk} *)
}

val code_base : int
val data_base : int
val stack_base : int
val stack_size : int

(** Fresh image with an empty address space and the stack pointer set. *)
val create : ?cost:Cost.t -> unit -> t

(** Deep copy (CPU, memory, symbols, install caches) with a fresh
    [uid], for the sentinel's shadow runs: either side can run and
    write without the other observing it. *)
val fork : t -> t

(** Reserve [size] zeroed data bytes with the given alignment. *)
val alloc_data : ?align:int -> t -> int -> int

(** Reset the stack pointer (between independent runs). *)
val reset_stack : t -> unit

(** Symbol table. [lookup] raises [Invalid_argument] on misses. *)
val define : t -> string -> int -> unit
val lookup : t -> string -> int

(** Assemble [items] at the next code address, write the machine-code
    bytes into emulated memory, drop the code caches covering the
    written range and return the entry address (recorded under [name]
    if given).  [dedup] makes the install content-addressed: an
    identical item sequence installed earlier is reused instead of
    duplicated.  Content whose byte digest is listed in
    {!Obrew_fault.Quarantine} is refused with a typed [Install] error. *)
val install_code : ?name:string -> ?dedup:bool -> t -> Insn.item list -> int

(** Install raw machine-code bytes (no quarantine check: sentinel
    reproducer replay must be able to reinstall blacklisted content). *)
val install_bytes : ?name:string -> t -> string -> int

(** Digest of the host bytes installed at [addr], when [addr] is the
    entry address of a recorded install. *)
val digest_of_addr : t -> int -> string option

(** The exact host bytes installed at [addr] (read back from emulated
    memory), when [addr] is the entry of a recorded install. *)
val installed_bytes : t -> int -> string option

(** Byte range [addr, addr+len) of the install recorded at [addr] —
    the host-range map the tier controller's hotness scan keys on. *)
val code_range : t -> int -> (int * int) option

(** Install a retargetable entry thunk ([movabs rax, target; jmp rax])
    and return its address.  Each call site owns its thunk (never
    deduplicated): the tier controller hands the thunk address to the
    driver and later retargets it with {!patch_thunk}. *)
val install_thunk : ?name:string -> t -> target:int -> int

(** Retarget an installed thunk in place: rewrite its 8 immediate
    bytes, refresh the recorded digest, and range-flush only the
    thunk's own bytes so unrelated superblocks and chain links
    survive.  Raises [Invalid_argument] if [addr] was not installed. *)
val patch_thunk : t -> int -> target:int -> unit

(** Write float / int64 arrays into fresh data memory. *)
val alloc_f64_array : ?align:int -> t -> float array -> int
val alloc_i64_array : ?align:int -> t -> int64 array -> int

(** Disassemble [n] instructions from [addr]. *)
val disassemble : t -> int -> int -> (int * Insn.insn) list

(** Disassemble from [addr] up to and including the first [ret]. *)
val disassemble_fn : t -> int -> (int * Insn.insn) list

(** Call the function at [fn] per the System V ABI (integer args in
    rdi..., float args in xmm0...); returns (rax, xmm0 as float).
    [engine] selects the superblock engine (default) or the
    single-step interpreter.  [max_insns] is the watchdog budget: when
    exceeded, a typed [Emulate] error terminates the run. *)
val call :
  ?engine:Cpu.engine ->
  ?args:int64 list -> ?fargs:float list -> ?max_insns:int ->
  t -> fn:int -> int64 * float

(** Run [f] and report (result, cycles consumed, instructions executed). *)
val measure : t -> (unit -> 'a) -> 'a * int * int
