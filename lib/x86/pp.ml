(** Intel-syntax pretty printing of decoded instructions, used by the
    Fig. 8 code dumps and all debugging output. *)

open Insn

let gpr_name w r =
  match w with
  | W8 -> Reg.name8 r
  | W16 -> Reg.name16 r
  | W32 -> Reg.name32 r
  | W64 -> Reg.name64 r

let ptr_prefix = function
  | W8 -> "byte ptr " | W16 -> "word ptr " | W32 -> "dword ptr "
  | W64 -> "qword ptr "

let mem_addr (m : mem_addr) =
  let buf = Buffer.create 16 in
  (match m.seg with
   | Some FS -> Buffer.add_string buf "fs:"
   | Some GS -> Buffer.add_string buf "gs:"
   | None -> ());
  Buffer.add_char buf '[';
  let first = ref true in
  let plus () = if !first then first := false else Buffer.add_string buf " + " in
  if m.rip then begin plus (); Buffer.add_string buf "rip" end;
  (match m.base with
   | Some b -> plus (); Buffer.add_string buf (Reg.name64 b)
   | None -> ());
  (match m.index with
   | Some (i, s) ->
     plus ();
     if s = S1 then Buffer.add_string buf (Reg.name64 i)
     else
       Buffer.add_string buf
         (Printf.sprintf "%d * %s" (scale_factor s) (Reg.name64 i))
   | None -> ());
  if m.disp <> 0 || !first then begin
    if !first then Buffer.add_string buf (Printf.sprintf "0x%x" m.disp)
    else if m.disp < 0 then
      Buffer.add_string buf (Printf.sprintf " - 0x%x" (-m.disp))
    else Buffer.add_string buf (Printf.sprintf " + 0x%x" m.disp)
  end;
  Buffer.add_char buf ']';
  Buffer.contents buf

let operand ?(ptr = true) w = function
  | OReg r -> gpr_name w r
  | OReg8H r -> Reg.name8h r
  | OMem m -> (if ptr then ptr_prefix w else "") ^ mem_addr m
  | OImm i ->
    if Int64.compare i 0L >= 0 && Int64.compare i 10L < 0 then
      Int64.to_string i
    else Printf.sprintf "0x%Lx" i

let xop = function Xr x -> Reg.xmm_name x | Xm m -> mem_addr m

let target = function
  | Abs a -> Printf.sprintf "0x%x" a
  | Lbl l -> Printf.sprintf ".L%d" l

let two a b = a ^ ", " ^ b

let insn (i : insn) =
  match i with
  | Mov (w, d, s) -> "mov " ^ two (operand w d) (operand w s)
  | Movabs (r, v) -> Printf.sprintf "movabs %s, 0x%Lx" (Reg.name64 r) v
  | Movzx (dw, d, sw, s) ->
    "movzx " ^ two (gpr_name dw d) (operand sw s)
  | Movsx (dw, d, sw, s) ->
    (if sw = W32 then "movsxd " else "movsx ")
    ^ two (gpr_name dw d) (operand sw s)
  | Lea (r, m) -> "lea " ^ two (Reg.name64 r) (mem_addr m)
  | Alu (op, w, d, s) -> alu_name op ^ " " ^ two (operand w d) (operand w s)
  | Test (w, d, s) -> "test " ^ two (operand w d) (operand w s)
  | Imul2 (w, d, s) -> "imul " ^ two (gpr_name w d) (operand w s)
  | Imul3 (w, d, s, im) ->
    Printf.sprintf "imul %s, %s, %Ld" (gpr_name w d) (operand w s) im
  | Idiv (w, s) -> "idiv " ^ operand w s
  | Cqo -> "cqo"
  | Cdq -> "cdq"
  | Shift (op, w, d, c) ->
    let cs = match c with ShImm n -> string_of_int n | ShCl -> "cl" in
    shift_name op ^ " " ^ two (operand w d) cs
  | Unop (op, w, d) -> unop_name op ^ " " ^ operand w d
  | Push o -> "push " ^ operand W64 o
  | Pop o -> "pop " ^ operand W64 o
  | Leave -> "leave"
  | Call t -> "call " ^ target t
  | CallInd o -> "call *" ^ operand W64 o
  | Ret -> "ret"
  | Jmp t -> "jmp " ^ target t
  | JmpInd o -> "jmp *" ^ operand W64 o
  | Jcc (c, t) -> "j" ^ cc_name c ^ " " ^ target t
  | Cmov (c, w, d, s) ->
    "cmov" ^ cc_name c ^ " " ^ two (gpr_name w d) (operand w s)
  | Setcc (c, d) -> "set" ^ cc_name c ^ " " ^ operand W8 d
  | SseMov (k, d, s) -> sse_mov_name k ^ " " ^ two (xop d) (xop s)
  | MovqXR (x, r) -> "movq " ^ two (Reg.xmm_name x) (Reg.name64 r)
  | MovqRX (r, x) -> "movq " ^ two (Reg.name64 r) (Reg.xmm_name x)
  | SseArith (op, p, d, s) ->
    fp_arith_name op ^ prec_name p ^ " " ^ two (Reg.xmm_name d) (xop s)
  | SseLogic (op, d, s) ->
    sse_logic_name op ^ " " ^ two (Reg.xmm_name d) (xop s)
  | Ucomis (p, d, s) ->
    "ucomis" ^ prec_name p ^ " " ^ two (Reg.xmm_name d) (xop s)
  | Cvtsi2sd (x, w, s) ->
    "cvtsi2sd " ^ two (Reg.xmm_name x) (operand w s)
  | Cvttsd2si (r, w, s) -> "cvttsd2si " ^ two (gpr_name w r) (xop s)
  | Cvtsd2ss (x, s) -> "cvtsd2ss " ^ two (Reg.xmm_name x) (xop s)
  | Cvtss2sd (x, s) -> "cvtss2sd " ^ two (Reg.xmm_name x) (xop s)
  | Unpcklpd (x, s) -> "unpcklpd " ^ two (Reg.xmm_name x) (xop s)
  | Shufpd (x, s, im) ->
    Printf.sprintf "shufpd %s, %s, %d" (Reg.xmm_name x) (xop s) im
  | Padd (w, x, s) ->
    (match w with W32 -> "paddd " | _ -> "paddq ")
    ^ two (Reg.xmm_name x) (xop s)
  | Nop _ -> "nop"
  | Ud2 -> "ud2"
  | Int3 -> "int3"

let item = function
  | L l -> Printf.sprintf ".L%d:" l
  | I i -> "  " ^ insn i
  | Q t -> "  .quad " ^ target t
  | MovLbl (r, l) -> Printf.sprintf "  movabs %s, .L%d" (Reg.name64 r) l

let items is = String.concat "\n" (List.map item is)

let listing ?(addrs = true) (l : (int * insn) list) =
  String.concat "\n"
    (List.map
       (fun (a, i) ->
         if addrs then Printf.sprintf "%8x:  %s" a (insn i)
         else "  " ^ insn i)
       l)
