(** Instruction selection and code emission: optimized IR to x86-64
    {!Obrew_x86.Insn.item}s, completing the JIT path of Fig. 1.

    Conventions:
    - integer values of width < 64 are kept zero-extended in registers;
    - GEPs feeding loads/stores are folded into x86 addressing modes;
    - r10/r11 and xmm14/xmm15 are reserved as selector scratch;
    - rax/rcx/rdx are kept out of the allocator's pools and used for
      returns, shifts and division. *)

open Obrew_x86
open Obrew_ir
open Ins
open Regalloc

(* instruction-selection failures are typed [Err.Isel] errors *)
let err fmt = Obrew_fault.Err.fail Obrew_fault.Err.Isel fmt

(* ------------------------------------------------------------------ *)
(* Critical edge splitting (pre-pass, mutates the IR function)         *)
(* ------------------------------------------------------------------ *)

let split_critical_edges (f : func) =
  let preds = Cfg.predecessors f in
  let multi_pred b =
    List.length (Option.value ~default:[] (Hashtbl.find_opt preds b)) > 1
  in
  List.iter
    (fun (blk : block) ->
      match blk.term with
      | CondBr (c, t, e) when t <> e ->
        let fix target =
          if multi_pred target then begin
            (* new forwarding block *)
            let nb =
              1 + List.fold_left (fun m (b : block) -> max m b.bid) 0 f.blocks
            in
            f.blocks <-
              f.blocks @ [ { bid = nb; instrs = []; term = Br target } ];
            (* retarget the phi inputs in [target] *)
            let tb = find_block f target in
            tb.instrs <-
              List.map
                (fun i ->
                  match i.op with
                  | Phi (ty, ins) ->
                    { i with
                      op =
                        Phi
                          ( ty,
                            List.map
                              (fun (p, v) ->
                                ((if p = blk.bid then nb else p), v))
                              ins ) }
                  | _ -> i)
              tb.instrs;
            nb
          end
          else target
        in
        let t' = fix t in
        let e' = fix e in
        if t' <> t || e' <> e then blk.term <- CondBr (c, t', e')
      | _ -> ())
    (List.filter (fun (b : block) -> match b.term with CondBr _ -> true
                                                     | _ -> false)
       f.blocks)

(* ------------------------------------------------------------------ *)
(* Emission context                                                    *)
(* ------------------------------------------------------------------ *)

type ctx = {
  f : func;
  al : alloc;
  tenv : (int, ty) Hashtbl.t;
  defs : (int, instr) Hashtbl.t;
  global_addr : string -> int;
  func_addr : string -> int;
  mutable out : Insn.item list; (* reversed *)
  mutable provs : int list; (* reversed, parallel to [out]: provenance of
                               the IR instruction each item was emitted
                               for (0 for labels, moves, pro/epilogue) *)
  mutable cur_prov : int;
  mutable next_label : int;
  alloca_off : (int, int) Hashtbl.t; (* alloca value id -> frame offset *)
  alloca_size : int;
  frame_total : int; (* spill + alloca area *)
  use_counts : (int, int) Hashtbl.t;
  addr_only : (int, unit) Hashtbl.t; (* geps folded away entirely *)
}

let emit ctx i =
  ctx.out <- Insn.I i :: ctx.out;
  ctx.provs <- ctx.cur_prov :: ctx.provs

let label ctx l =
  ctx.out <- Insn.L l :: ctx.out;
  ctx.provs <- 0 :: ctx.provs

let fresh_label ctx =
  let l = ctx.next_label in
  ctx.next_label <- l + 1;
  l

let loc_of ctx id =
  match Hashtbl.find_opt ctx.al.locs id with
  | Some l -> l
  | None -> err "value %%%d has no location" id

let ty_of ctx (v : value) = Verify.type_of_value ctx.tenv v

let slot_mem off = Insn.mem_base ~disp:off Reg.RSP

(* ---------------- GPR value access ---------------- *)

(* place [v] (class G) in a register; [into] is the scratch to use if a
   load or materialization is needed *)
(* narrow values live zero-extended in 64-bit registers; constants must be
   materialized in that canonical form too, or a sign-extended immediate
   (e.g. xor with i8 -1 at W64 width) corrupts bits above the type width *)
let canon_cint (t : ty) (x : int64) =
  match t with
  | I1 -> Int64.logand x 1L
  | I8 -> Int64.logand x 0xFFL
  | I16 -> Int64.logand x 0xFFFFL
  | _ -> x

let rec gval ctx ~into (v : value) : Reg.gpr =
  match v with
  | V id -> (
    match loc_of ctx id with
    | LReg r -> r
    | LSlot off ->
      emit ctx (Insn.Mov (Insn.W64, Insn.OReg into, Insn.OMem (slot_mem off)));
      into
    | LXmm _ -> err "integer value in xmm register")
  | CInt (t, x) ->
    let x = canon_cint t x in
    if Encode.fits_int32 x && Int64.compare x 0L >= 0 then
      emit ctx (Insn.Mov (Insn.W64, Insn.OReg into, Insn.OImm x))
    else if Encode.fits_int32 x then
      (* sign-extended imm32 into 64-bit: C7 sign-extends *)
      emit ctx (Insn.Mov (Insn.W64, Insn.OReg into, Insn.OImm x))
    else emit ctx (Insn.Movabs (into, x));
    into
  | CPtr a ->
    emit ctx (Insn.Mov (Insn.W64, Insn.OReg into, Insn.OImm (Int64.of_int a)));
    into
  | Global g ->
    let a = ctx.global_addr g in
    emit ctx (Insn.Mov (Insn.W64, Insn.OReg into, Insn.OImm (Int64.of_int a)));
    into
  | Undef _ ->
    emit ctx (Insn.Mov (Insn.W64, Insn.OReg into, Insn.OImm 0L));
    into
  | CF64 _ | CF32 _ | CVec _ -> err "float constant in integer context"

(* a GPR operand usable directly in ALU source position *)
and gsrc ctx ~into (v : value) : Insn.operand =
  match v with
  | V id -> (
    match loc_of ctx id with
    | LReg r -> Insn.OReg r
    | LSlot off -> Insn.OMem (slot_mem off)
    | LXmm _ -> err "integer value in xmm register")
  | CInt (t, x) when Encode.fits_int32 (canon_cint t x) ->
    Insn.OImm (canon_cint t x)
  | CInt _ | CPtr _ | Global _ | Undef _ -> Insn.OReg (gval ctx ~into v)
  | CF64 _ | CF32 _ | CVec _ -> err "float constant in integer context"

(* ---------------- XMM value access ---------------- *)

let xmm_load_kind t =
  if ty_bytes t > 8 then `V128 else if t = F32 then `F32 else `F64

let emit_xload ctx kind dst (mem : Insn.mem_addr) =
  match kind with
  | `V128 -> emit ctx (Insn.SseMov (Insn.Movupd, Insn.Xr dst, Insn.Xm mem))
  | `F64 -> emit ctx (Insn.SseMov (Insn.Movsd, Insn.Xr dst, Insn.Xm mem))
  | `F32 -> emit ctx (Insn.SseMov (Insn.Movss, Insn.Xr dst, Insn.Xm mem))

let emit_xstore ctx kind (mem : Insn.mem_addr) src =
  match kind with
  | `V128 -> emit ctx (Insn.SseMov (Insn.Movupd, Insn.Xm mem, Insn.Xr src))
  | `F64 -> emit ctx (Insn.SseMov (Insn.Movsd, Insn.Xm mem, Insn.Xr src))
  | `F32 -> emit ctx (Insn.SseMov (Insn.Movss, Insn.Xm mem, Insn.Xr src))

let materialize_f64 ctx ~into (f : float) =
  emit ctx (Insn.Movabs (scratch_gpr1, Int64.bits_of_float f));
  emit ctx (Insn.MovqXR (into, scratch_gpr1))

let xval ctx ~into (v : value) : Reg.xmm =
  match v with
  | V id -> (
    match loc_of ctx id with
    | LXmm x -> x
    | LSlot off ->
      let t = ty_of ctx v in
      emit_xload ctx (xmm_load_kind t) into (slot_mem off);
      into
    | LReg _ -> err "float value in integer register")
  | CF64 f -> materialize_f64 ctx ~into f; into
  | CF32 f ->
    emit ctx
      (Insn.Movabs
         ( scratch_gpr1,
           Int64.logand
             (Int64.of_int32 (Int32.bits_of_float f))
             0xFFFFFFFFL ));
    emit ctx (Insn.MovqXR (into, scratch_gpr1));
    into
  | CVec (Vec (2, F64), [ a; b ]) ->
    let ca = match a with CF64 x -> x | Undef _ -> 0.0
                        | _ -> err "vector constant lane" in
    let cb = match b with CF64 x -> x | Undef _ -> 0.0
                        | _ -> err "vector constant lane" in
    if ca = 0.0 && cb = 0.0 && 1. /. ca = infinity && 1. /. cb = infinity
    then emit ctx (Insn.SseLogic (Insn.Pxor, into, Insn.Xr into))
    else begin
      materialize_f64 ctx ~into ca;
      let other = if into = scratch_xmm0 then scratch_xmm1 else scratch_xmm0 in
      materialize_f64 ctx ~into:other cb;
      emit ctx (Insn.Unpcklpd (into, Insn.Xr other))
    end;
    into
  | CVec (Vec (2, I64), [ a; b ]) ->
    let ca = match a with CInt (_, x) -> x | Undef _ -> 0L
                        | _ -> err "vector constant lane" in
    let cb = match b with CInt (_, x) -> x | Undef _ -> 0L
                        | _ -> err "vector constant lane" in
    if ca = 0L && cb = 0L then
      emit ctx (Insn.SseLogic (Insn.Pxor, into, Insn.Xr into))
    else begin
      emit ctx (Insn.Movabs (scratch_gpr1, ca));
      emit ctx (Insn.MovqXR (into, scratch_gpr1));
      let other = if into = scratch_xmm0 then scratch_xmm1 else scratch_xmm0 in
      emit ctx (Insn.Movabs (scratch_gpr1, cb));
      emit ctx (Insn.MovqXR (other, scratch_gpr1));
      emit ctx (Insn.Unpcklpd (into, Insn.Xr other))
    end;
    into
  | CInt (I128, x) ->
    emit ctx (Insn.Movabs (scratch_gpr1, x));
    emit ctx (Insn.MovqXR (into, scratch_gpr1));
    into
  | Undef _ ->
    emit ctx (Insn.SseLogic (Insn.Pxor, into, Insn.Xr into));
    into
  | CVec _ -> err "unsupported vector constant"
  | CInt _ | CPtr _ | Global _ -> err "integer constant in float context"

(* SSE source operand *)
let xsrc ctx ~into (v : value) : Insn.xop =
  match v with
  | V id -> (
    match loc_of ctx id with
    | LXmm x -> Insn.Xr x
    | LSlot off ->
      let t = ty_of ctx v in
      if ty_bytes t > 8 then Insn.Xm (slot_mem off)
      else Insn.Xm (slot_mem off)
    | LReg _ -> err "float value in integer register")
  | v -> Insn.Xr (xval ctx ~into v)

(* ---------------- definitions ---------------- *)

(* destination register for a G-class value, or scratch + writeback *)
let gdef ctx id (body : Reg.gpr -> unit) =
  match loc_of ctx id with
  | LReg r -> body r
  | LSlot off ->
    body scratch_gpr0;
    emit ctx
      (Insn.Mov (Insn.W64, Insn.OMem (slot_mem off), Insn.OReg scratch_gpr0))
  | LXmm _ -> err "G-class value allocated to xmm"

let xdef ctx id (body : Reg.xmm -> unit) =
  match loc_of ctx id with
  | LXmm x -> body x
  | LSlot off ->
    body scratch_xmm0;
    let t =
      Option.value ~default:F64 (Hashtbl.find_opt ctx.tenv id)
    in
    emit_xstore ctx (xmm_load_kind t) (slot_mem off) scratch_xmm0
  | LReg _ -> err "X-class value allocated to gpr"

(* zero-extension normalization after a W64 op producing a narrow type *)
let normalize ctx t r =
  match t with
  | I8 -> emit ctx (Insn.Movzx (Insn.W64, r, Insn.W8, Insn.OReg r))
  | I16 -> emit ctx (Insn.Movzx (Insn.W64, r, Insn.W16, Insn.OReg r))
  | I1 -> emit ctx (Insn.Alu (Insn.And, Insn.W64, Insn.OReg r, Insn.OImm 1L))
  | _ -> ()

(* ---------------- addressing-mode folding ---------------- *)

(* can this gep be expressed as one x86 memory operand? *)
let rec fold_gep ctx (base : value) (elts : gep_elt list) :
    Insn.mem_addr option =
  (* resolve base *)
  let base_reg, disp0 =
    match base with
    | CPtr a -> (`None, a)
    | Global g -> (`None, ctx.global_addr g)
    | V id -> (
      match Hashtbl.find_opt ctx.defs id with
      | Some { op = Gep (b2, e2); _ } -> (
        (* flatten one level *)
        match fold_gep ctx b2 e2 with
        | Some m when m.Insn.index = None && m.Insn.seg = None -> (
          match m.Insn.base with
          | Some r -> (`Reg r, m.Insn.disp)
          | None -> (`None, m.Insn.disp))
        | _ -> (`Vbase id, 0))
      | Some { op = Alloca _; _ } -> (
        match Hashtbl.find_opt ctx.alloca_off id with
        | Some off -> (`Reg Reg.RSP, off + ctx.al.frame_size)
        | None -> (`Vbase id, 0))
      | _ -> (`Vbase id, 0))
    | _ -> (`Bad, 0)
  in
  (* a value base must currently sit in a register *)
  let base_reg =
    match base_reg with
    | `Vbase id -> (
      match Hashtbl.find_opt ctx.al.locs id with
      | Some (LReg r) -> `Reg r
      | _ -> `Bad)
    | (`None | `Reg _ | `Bad) as b -> b
  in
  match base_reg with
  | `Bad -> None
  | (`None | `Reg _) as base_reg -> (
    let consts, scaled =
      List.partition_map
        (function
          | GConst c -> Left c
          | GScaled (v, s) -> Right (v, s))
        elts
    in
    let disp = disp0 + List.fold_left ( + ) 0 consts in
    let ok_scale s = s = 1 || s = 2 || s = 4 || s = 8 in
    let index_reg v =
      match v with
      | V iid -> (
        match Hashtbl.find_opt ctx.al.locs iid with
        | Some (LReg ir) when not (Reg.equal ir Reg.RSP) -> Some ir
        | _ -> None)
      | _ -> None
    in
    match base_reg, scaled with
    | `None, [] -> Some (Insn.mem_abs disp)
    | `None, [ (v, s) ] when ok_scale s -> (
      match index_reg v with
      | Some ir -> Some (Insn.mk_mem ~index:(ir, Insn.scale_of_int s) ~disp ())
      | None -> None)
    | `Reg r, [] -> Some (Insn.mem_base ~disp r)
    | `Reg r, [ (v, s) ] when ok_scale s -> (
      match index_reg v with
      | Some ir -> Some (Insn.mem_bi ~disp r ir (Insn.scale_of_int s))
      | None -> None)
    | _ -> None)

(* compute a pointer value into a register (used when folding fails or
   the gep result is needed as a value) *)
let rec pval ctx ~into (v : value) : Reg.gpr =
  match v with
  | V id -> (
    match Hashtbl.find_opt ctx.defs id with
    | Some { op = Gep (base, elts); _ }
      when Hashtbl.mem ctx.addr_only id ->
      materialize_gep ctx ~into base elts
    | Some { op = Alloca _; _ } -> (
      match Hashtbl.find_opt ctx.alloca_off id with
      | Some off ->
        emit ctx
          (Insn.Lea (into, slot_mem (off + ctx.al.frame_size)));
        into
      | None -> gval ctx ~into v)
    | _ -> gval ctx ~into v)
  | v -> gval ctx ~into v

and materialize_gep ctx ~into base elts : Reg.gpr =
  match fold_gep ctx base elts with
  | Some m ->
    emit ctx (Insn.Lea (into, m));
    into
  | None ->
    (* general case: accumulate *)
    let r = pval ctx ~into base in
    if not (Reg.equal r into) then
      emit ctx (Insn.Mov (Insn.W64, Insn.OReg into, Insn.OReg r));
    List.iter
      (fun e ->
        match e with
        | GConst c ->
          emit ctx
            (Insn.Alu (Insn.Add, Insn.W64, Insn.OReg into,
                       Insn.OImm (Int64.of_int c)))
        | GScaled (v, s) ->
          let iv = gval ctx ~into:scratch_gpr1 v in
          if s = 1 || s = 2 || s = 4 || s = 8 then
            emit ctx
              (Insn.Lea (into, Insn.mk_mem ~base:into
                           ~index:(iv, Insn.scale_of_int s) ()))
          else begin
            emit ctx
              (Insn.Imul3 (Insn.W64, scratch_gpr1, Insn.OReg iv,
                           Int64.of_int s));
            emit ctx
              (Insn.Alu (Insn.Add, Insn.W64, Insn.OReg into,
                         Insn.OReg scratch_gpr1))
          end)
      elts;
    into

(* memory operand for a pointer value *)
let addr_of ctx ~into (p : value) : Insn.mem_addr =
  match p with
  | CPtr a -> Insn.mem_abs a
  | Global g -> Insn.mem_abs (ctx.global_addr g)
  | V id -> (
    match Hashtbl.find_opt ctx.defs id with
    | Some { op = Gep (base, elts); _ } -> (
      match fold_gep ctx base elts with
      | Some m -> m
      | None -> Insn.mem_base (pval ctx ~into p))
    | Some { op = Alloca _; _ } -> (
      match Hashtbl.find_opt ctx.alloca_off id with
      | Some off -> slot_mem (off + ctx.al.frame_size)
      | None -> Insn.mem_base (gval ctx ~into p))
    | _ -> Insn.mem_base (gval ctx ~into p))
  | _ -> Insn.mem_base (gval ctx ~into p)

(* ------------------------------------------------------------------ *)
(* Parallel moves                                                      *)
(* ------------------------------------------------------------------ *)

type pmove = { src : [ `Loc of loc | `Const of value ]; dst : loc; mty : ty }

(* emit one loc-to-loc transfer; may use scratch_gpr1/scratch_xmm1 *)
let emit_transfer ctx (mty : ty) (src : loc) (dst : loc) =
  if loc_equal src dst then ()
  else
    match class_of_ty mty, src, dst with
    | G, LReg s, LReg d ->
      emit ctx (Insn.Mov (Insn.W64, Insn.OReg d, Insn.OReg s))
    | G, LReg s, LSlot d ->
      emit ctx (Insn.Mov (Insn.W64, Insn.OMem (slot_mem d), Insn.OReg s))
    | G, LSlot s, LReg d ->
      emit ctx (Insn.Mov (Insn.W64, Insn.OReg d, Insn.OMem (slot_mem s)))
    | G, LSlot s, LSlot d ->
      emit ctx
        (Insn.Mov (Insn.W64, Insn.OReg scratch_gpr1, Insn.OMem (slot_mem s)));
      emit ctx
        (Insn.Mov (Insn.W64, Insn.OMem (slot_mem d), Insn.OReg scratch_gpr1))
    | X, LXmm s, LXmm d ->
      emit ctx (Insn.SseMov (Insn.Movaps, Insn.Xr d, Insn.Xr s))
    | X, LXmm s, LSlot d -> emit_xstore ctx (xmm_load_kind mty) (slot_mem d) s
    | X, LSlot s, LXmm d -> emit_xload ctx (xmm_load_kind mty) d (slot_mem s)
    | X, LSlot s, LSlot d ->
      emit_xload ctx (xmm_load_kind mty) scratch_xmm1 (slot_mem s);
      emit_xstore ctx (xmm_load_kind mty) (slot_mem d) scratch_xmm1
    | _ -> err "transfer between incompatible locations"

let emit_const_into ctx (mty : ty) (v : value) (dst : loc) =
  match class_of_ty mty, dst with
  | G, LReg d -> ignore (gval ctx ~into:d v)
  | G, LSlot off ->
    let r = gval ctx ~into:scratch_gpr1 v in
    emit ctx (Insn.Mov (Insn.W64, Insn.OMem (slot_mem off), Insn.OReg r))
  | X, LXmm d -> ignore (xval ctx ~into:d v)
  | X, LSlot off ->
    let x = xval ctx ~into:scratch_xmm1 v in
    emit_xstore ctx (xmm_load_kind mty) (slot_mem off) x
  | _ -> err "constant into incompatible location"

(* resolve a set of parallel moves, breaking cycles through scratch *)
let parallel_moves ctx (moves : pmove list) =
  (* constants last: they have no source dependency *)
  let consts, xfers =
    List.partition (fun m -> match m.src with `Const _ -> true | _ -> false)
      moves
  in
  let pending = ref (List.filter
                       (fun m -> match m.src with
                          | `Loc s -> not (loc_equal s m.dst)
                          | _ -> true)
                       xfers) in
  let blocked_by dst =
    List.exists
      (fun m -> match m.src with `Loc s -> loc_equal s dst | _ -> false)
      !pending
  in
  let progress = ref true in
  while !pending <> [] && !progress do
    progress := false;
    let ready, rest =
      List.partition (fun m -> not (blocked_by m.dst)) !pending
    in
    if ready <> [] then begin
      progress := true;
      List.iter
        (fun m ->
          match m.src with
          | `Loc s -> emit_transfer ctx m.mty s m.dst
          | `Const _ -> err "parallel move: constant in the ready set")
        ready;
      pending := rest
    end
    else begin
      (* cycle: rotate through scratch *)
      match !pending with
      | [] -> ()
      | m :: _ ->
        let scratch =
          match class_of_ty m.mty with
          | G -> LReg scratch_gpr0
          | X -> LXmm scratch_xmm0
        in
        (match m.src with
         | `Loc s ->
           emit_transfer ctx m.mty s scratch;
           pending :=
             List.map
               (fun m2 ->
                 match m2.src with
                 | `Loc s2 when loc_equal s2 s -> { m2 with src = `Loc scratch }
                 | _ -> m2)
               !pending;
           progress := true
         | `Const _ -> err "parallel move: constant in a transfer cycle")
    end
  done;
  if !pending <> [] then err "parallel move did not converge";
  List.iter (fun m -> emit_const_into ctx m.mty (match m.src with
      | `Const v -> v
      | `Loc _ -> err "parallel move: location in the constant set") m.dst)
    consts

(* ------------------------------------------------------------------ *)
(* Comparison helpers                                                  *)
(* ------------------------------------------------------------------ *)

(* emit a cmp for an integer comparison, return the x86 cc *)
let emit_icmp_flags ctx (p : icmp_pred) (t : ty) a b : Insn.cc =
  let signed = match p with Slt | Sle | Sgt | Sge -> true | _ -> false in
  let width =
    match t with
    | I64 | Ptr _ -> Insn.W64
    | I32 -> Insn.W32
    | _ -> if signed then Insn.W32 else Insn.W32
  in
  (* narrow signed operands must be sign-extended first *)
  let prep v scratch =
    match t with
    | (I8 | I16 | I1) when signed ->
      let r = gval ctx ~into:scratch v in
      let sw = if t = I16 then Insn.W16 else Insn.W8 in
      emit ctx (Insn.Movsx (Insn.W32, scratch, sw, Insn.OReg r));
      Insn.OReg scratch
    | _ -> gsrc ctx ~into:scratch v
  in
  let oa = prep a scratch_gpr0 in
  let ob = prep b scratch_gpr1 in
  (* cmp cannot take two memory operands *)
  let oa =
    match oa, ob with
    | Insn.OMem _, Insn.OMem _ ->
      emit ctx (Insn.Mov (Insn.W64, Insn.OReg scratch_gpr0, oa));
      Insn.OReg scratch_gpr0
    | Insn.OImm _, _ ->
      emit ctx (Insn.Mov (Insn.W64, Insn.OReg scratch_gpr0, oa));
      Insn.OReg scratch_gpr0
    | _ -> oa
  in
  emit ctx (Insn.Alu (Insn.Cmp, width, oa, ob));
  match p with
  | Eq -> Insn.E | Ne -> Insn.NE
  | Slt -> Insn.L | Sle -> Insn.LE | Sgt -> Insn.G | Sge -> Insn.GE
  | Ult -> Insn.B | Ule -> Insn.BE | Ugt -> Insn.A | Uge -> Insn.AE

(* fcmp: returns (cc, needs_parity_and, needs_parity_or) with operands
   possibly swapped; see the ucomisd flag mapping *)
let emit_fcmp_flags ctx (p : fcmp_pred) (t : ty) a b :
    Insn.cc * [ `None | `AndNP | `OrP ] =
  let prec = if t = F32 then Insn.Ss else Insn.Sd in
  let xv v s = xval ctx ~into:s v in
  let cmp x y =
    let xa = xv x scratch_xmm0 in
    let yb =
      match y with
      | V id -> (
        match loc_of ctx id with
        | LXmm r -> Insn.Xr r
        | LSlot off -> Insn.Xm (slot_mem off)
        | LReg _ -> err "float in gpr")
      | _ -> Insn.Xr (xv y scratch_xmm1)
    in
    emit ctx (Insn.Ucomis (prec, xa, yb))
  in
  match p with
  | Ogt -> cmp a b; (Insn.A, `None)
  | Oge -> cmp a b; (Insn.AE, `None)
  | Olt -> cmp b a; (Insn.A, `None)
  | Ole -> cmp b a; (Insn.AE, `None)
  | One -> cmp a b; (Insn.NE, `None)
  | Ueq -> cmp a b; (Insn.E, `None)
  | Ult -> cmp a b; (Insn.B, `None)
  | Ule -> cmp a b; (Insn.BE, `None)
  | Uno -> cmp a b; (Insn.P, `None)
  | Ord -> cmp a b; (Insn.NP, `None)
  | Oeq -> cmp a b; (Insn.E, `AndNP)
  | Une -> cmp a b; (Insn.NE, `OrP)

(* materialize a cc (+parity fixup) as a 0/1 value in [dst] *)
let setcc_value ctx (cc : Insn.cc) fix (dst : Reg.gpr) =
  emit ctx (Insn.Setcc (cc, Insn.OReg dst));
  (match fix with
   | `None -> ()
   | `AndNP ->
     emit ctx (Insn.Setcc (Insn.NP, Insn.OReg scratch_gpr1));
     emit ctx (Insn.Alu (Insn.And, Insn.W8, Insn.OReg dst,
                         Insn.OReg scratch_gpr1))
   | `OrP ->
     emit ctx (Insn.Setcc (Insn.P, Insn.OReg scratch_gpr1));
     emit ctx (Insn.Alu (Insn.Or, Insn.W8, Insn.OReg dst,
                         Insn.OReg scratch_gpr1)));
  emit ctx (Insn.Movzx (Insn.W64, dst, Insn.W8, Insn.OReg dst))

(* ------------------------------------------------------------------ *)
(* Instruction emission                                                *)
(* ------------------------------------------------------------------ *)

let width_of_ty = function
  | I64 | Ptr _ -> Insn.W64
  | I32 -> Insn.W32
  | I16 -> Insn.W16
  | I8 | I1 -> Insn.W8
  | t -> err "no integer width for %s" (ty_name t)

(* move value [v] into the specific xmm register [dst] *)
let xmov ctx dst (v : value) =
  match v with
  | V id -> (
    match loc_of ctx id with
    | LXmm x ->
      if x <> dst then emit ctx (Insn.SseMov (Insn.Movaps, Insn.Xr dst, Insn.Xr x))
    | LSlot off ->
      emit_xload ctx (xmm_load_kind (ty_of ctx v)) dst (slot_mem off)
    | LReg _ -> err "float in gpr")
  | v -> ignore (xval ctx ~into:dst v)

(* two-address integer binop *)
let emit_gbin ctx id (t : ty) a b ~commutative
    (op : Insn.width -> Insn.operand -> Insn.operand -> Insn.insn)
    ~(needs_normalize : bool) =
  let w = match t with I32 -> Insn.W32 | _ -> Insn.W64 in
  gdef ctx id (fun dst ->
      let b_op = gsrc ctx ~into:scratch_gpr1 b in
      (match b_op with
       | Insn.OReg r when Reg.equal r dst ->
         if commutative then begin
           let a_op = gsrc ctx ~into:scratch_gpr0 a in
           emit ctx (op w (Insn.OReg dst) a_op)
         end
         else begin
           let a_op = gsrc ctx ~into:scratch_gpr0 a in
           (match a_op with
            | Insn.OReg r0 when Reg.equal r0 scratch_gpr0 -> ()
            | _ ->
              emit ctx (Insn.Mov (Insn.W64, Insn.OReg scratch_gpr0, a_op)));
           emit ctx (op w (Insn.OReg scratch_gpr0) (Insn.OReg dst));
           emit ctx (Insn.Mov (Insn.W64, Insn.OReg dst, Insn.OReg scratch_gpr0))
         end
       | _ ->
         let a_op = gsrc ctx ~into:scratch_gpr0 a in
         (match a_op with
          | Insn.OReg r when Reg.equal r dst -> ()
          | _ -> emit ctx (Insn.Mov (Insn.W64, Insn.OReg dst, a_op)));
         emit ctx (op w (Insn.OReg dst) b_op));
      if needs_normalize then normalize ctx t dst)

(* two-address SSE binop *)
let emit_xbin ctx id (t : ty) a b (fop : Insn.fp_arith) =
  let prec =
    match t with
    | F64 -> Insn.Sd
    | F32 -> Insn.Ss
    | Vec (2, F64) -> Insn.Pd
    | Vec (4, F32) -> Insn.Ps
    | t -> err "no SSE precision for %s" (ty_name t)
  in
  let commutative = fop = Insn.FAdd || fop = Insn.FMul in
  xdef ctx id (fun dst ->
      let b_op = xsrc ctx ~into:scratch_xmm1 b in
      match b_op with
      | Insn.Xr x when x = dst ->
        if commutative then begin
          let a_op = xsrc ctx ~into:scratch_xmm0 a in
          emit ctx (Insn.SseArith (fop, prec, dst, a_op))
        end
        else begin
          xmov ctx scratch_xmm0 a;
          emit ctx (Insn.SseArith (fop, prec, scratch_xmm0, Insn.Xr dst));
          emit ctx (Insn.SseMov (Insn.Movaps, Insn.Xr dst, Insn.Xr scratch_xmm0))
        end
      | _ ->
        xmov ctx dst a;
        emit ctx (Insn.SseArith (fop, prec, dst, b_op)))

let emit_vec_logic ctx id op a b =
  xdef ctx id (fun dst ->
      let b_op = xsrc ctx ~into:scratch_xmm1 b in
      match b_op with
      | Insn.Xr x when x = dst ->
        (* and/or/xor are commutative *)
        let a_op = xsrc ctx ~into:scratch_xmm0 a in
        emit ctx (Insn.SseLogic (op, dst, a_op))
      | _ ->
        xmov ctx dst a;
        emit ctx (Insn.SseLogic (op, dst, b_op)))

let emit_shift ctx id t a b (sop : Insn.shift) =
  gdef ctx id (fun dst ->
      (* signed narrow right shifts need a sign-extended input *)
      let prep_ashr () =
        match t with
        | I8 | I16 ->
          let r = gval ctx ~into:scratch_gpr0 a in
          emit ctx
            (Insn.Movsx (Insn.W64, scratch_gpr0,
                         (if t = I8 then Insn.W8 else Insn.W16), Insn.OReg r));
          Insn.OReg scratch_gpr0
        | _ -> gsrc ctx ~into:scratch_gpr0 a
      in
      let a_op = if sop = Insn.Sar then prep_ashr ()
        else gsrc ctx ~into:scratch_gpr0 a in
      let w = match t with I32 -> Insn.W32 | _ -> Insn.W64 in
      (match b with
       | CInt (_, n) ->
         (match a_op with
          | Insn.OReg r when Reg.equal r dst -> ()
          | _ -> emit ctx (Insn.Mov (Insn.W64, Insn.OReg dst, a_op)));
         emit ctx (Insn.Shift (sop, w, Insn.OReg dst, Insn.ShImm (Int64.to_int n)))
       | _ ->
         let c_op = gsrc ctx ~into:scratch_gpr1 b in
         emit ctx (Insn.Mov (Insn.W64, Insn.OReg Reg.RCX, c_op));
         (match a_op with
          | Insn.OReg r when Reg.equal r dst -> ()
          | _ -> emit ctx (Insn.Mov (Insn.W64, Insn.OReg dst, a_op)));
         emit ctx (Insn.Shift (sop, w, Insn.OReg dst, Insn.ShCl)));
      match t, sop with
      | (I8 | I16 | I1), (Insn.Shl | Insn.Sar) -> normalize ctx t dst
      | I1, Insn.Shr -> normalize ctx t dst
      | _ -> ())

let emit_divrem ctx id t a b ~want_rem =
  let w = match t with I64 | Ptr _ -> Insn.W64 | _ -> Insn.W32 in
  gdef ctx id (fun dst ->
      (* dividend in rax, sign-extended *)
      (match t with
       | I8 | I16 ->
         let r = gval ctx ~into:scratch_gpr0 a in
         emit ctx
           (Insn.Movsx (Insn.W32, Reg.RAX,
                        (if t = I8 then Insn.W8 else Insn.W16), Insn.OReg r))
       | _ ->
         let a_op = gsrc ctx ~into:scratch_gpr0 a in
         emit ctx (Insn.Mov (w, Insn.OReg Reg.RAX, a_op)));
      emit ctx (if w = Insn.W64 then Insn.Cqo else Insn.Cdq);
      (* divisor must be r/m and sign-extended for narrow types *)
      (match t with
       | I8 | I16 ->
         let r = gval ctx ~into:scratch_gpr1 b in
         emit ctx
           (Insn.Movsx (Insn.W32, scratch_gpr1,
                        (if t = I8 then Insn.W8 else Insn.W16), Insn.OReg r));
         emit ctx (Insn.Idiv (Insn.W32, Insn.OReg scratch_gpr1))
       | _ -> (
         match gsrc ctx ~into:scratch_gpr1 b with
         | Insn.OImm _ ->
           let r = gval ctx ~into:scratch_gpr1 b in
           emit ctx (Insn.Idiv (w, Insn.OReg r))
         | o -> emit ctx (Insn.Idiv (w, o))));
      let res = if want_rem then Reg.RDX else Reg.RAX in
      emit ctx (Insn.Mov (Insn.W64, Insn.OReg dst, Insn.OReg res));
      normalize ctx t dst;
      if t = I32 then
        emit ctx (Insn.Mov (Insn.W32, Insn.OReg dst, Insn.OReg dst)))

(* SWAR popcount of the low byte, for llvm.ctpop.i8 (parity flag) *)
let emit_ctpop8 ctx id a =
  gdef ctx id (fun dst ->
      let r = gval ctx ~into:scratch_gpr0 a in
      if not (Reg.equal r dst) then
        emit ctx (Insn.Mov (Insn.W64, Insn.OReg dst, Insn.OReg r));
      emit ctx (Insn.Alu (Insn.And, Insn.W64, Insn.OReg dst, Insn.OImm 0xFFL));
      (* v = v - ((v >> 1) & 0x55) *)
      emit ctx (Insn.Mov (Insn.W64, Insn.OReg scratch_gpr1, Insn.OReg dst));
      emit ctx (Insn.Shift (Insn.Shr, Insn.W64, Insn.OReg scratch_gpr1, Insn.ShImm 1));
      emit ctx (Insn.Alu (Insn.And, Insn.W64, Insn.OReg scratch_gpr1, Insn.OImm 0x55L));
      emit ctx (Insn.Alu (Insn.Sub, Insn.W64, Insn.OReg dst, Insn.OReg scratch_gpr1));
      (* v = (v & 0x33) + ((v >> 2) & 0x33) *)
      emit ctx (Insn.Mov (Insn.W64, Insn.OReg scratch_gpr1, Insn.OReg dst));
      emit ctx (Insn.Shift (Insn.Shr, Insn.W64, Insn.OReg scratch_gpr1, Insn.ShImm 2));
      emit ctx (Insn.Alu (Insn.And, Insn.W64, Insn.OReg scratch_gpr1, Insn.OImm 0x33L));
      emit ctx (Insn.Alu (Insn.And, Insn.W64, Insn.OReg dst, Insn.OImm 0x33L));
      emit ctx (Insn.Alu (Insn.Add, Insn.W64, Insn.OReg dst, Insn.OReg scratch_gpr1));
      (* v = (v + (v >> 4)) & 0x0f *)
      emit ctx (Insn.Mov (Insn.W64, Insn.OReg scratch_gpr1, Insn.OReg dst));
      emit ctx (Insn.Shift (Insn.Shr, Insn.W64, Insn.OReg scratch_gpr1, Insn.ShImm 4));
      emit ctx (Insn.Alu (Insn.Add, Insn.W64, Insn.OReg dst, Insn.OReg scratch_gpr1));
      emit ctx (Insn.Alu (Insn.And, Insn.W64, Insn.OReg dst, Insn.OImm 0x0FL)))

let arg_locations (sg : signature) : loc list =
  let iregs = [ Reg.RDI; Reg.RSI; Reg.RDX; Reg.RCX; Reg.R8; Reg.R9 ] in
  let ii = ref 0 and fi = ref 0 in
  List.map
    (fun t ->
      match class_of_ty t with
      | X ->
        let l = LXmm !fi in
        incr fi;
        l
      | G ->
        let l = LReg (List.nth iregs !ii) in
        incr ii;
        l)
    sg.args

let emit_call ctx id rty (callee : [ `Addr of int | `Val of value ]) sg args =
  (* load a dynamic callee into rax before the argument shuffle *)
  (match callee with
   | `Val v ->
     let o = gsrc ctx ~into:scratch_gpr0 v in
     emit ctx (Insn.Mov (Insn.W64, Insn.OReg Reg.RAX, o))
   | `Addr _ -> ());
  let dsts = arg_locations sg in
  let moves =
    List.map2
      (fun t (v, dst) ->
        match v with
        | V vid -> { src = `Loc (loc_of ctx vid); dst; mty = t }
        | c -> { src = `Const c; dst; mty = t })
      sg.args
      (List.combine args dsts)
  in
  parallel_moves ctx moves;
  (match callee with
   | `Addr a -> emit ctx (Insn.Call (Insn.Abs a))
   | `Val _ -> emit ctx (Insn.CallInd (Insn.OReg Reg.RAX)));
  match rty with
  | None -> ()
  | Some t -> (
    match class_of_ty t with
    | G ->
      gdef ctx id (fun dst ->
          if not (Reg.equal dst Reg.RAX) then
            emit ctx (Insn.Mov (Insn.W64, Insn.OReg dst, Insn.OReg Reg.RAX)))
    | X ->
      xdef ctx id (fun dst ->
          if dst <> 0 then
            emit ctx (Insn.SseMov (Insn.Movaps, Insn.Xr dst, Insn.Xr 0))))

let emit_instr ctx (i : instr) =
  match i.op with
  | Phi _ -> ()
  | Alloca _ -> (
    match Hashtbl.find_opt ctx.alloca_off i.id with
    | Some off ->
      gdef ctx i.id (fun dst ->
          emit ctx (Insn.Lea (dst, slot_mem (off + ctx.al.frame_size))))
    | None -> err "alloca without a frame offset")
  | Gep (base, elts) ->
    if Hashtbl.mem ctx.addr_only i.id then ()
    else
      gdef ctx i.id (fun dst ->
          ignore (materialize_gep ctx ~into:dst base elts))
  | Bin (op, t, a, b) -> (
    match t, op with
    | (I128 | Vec _), (And | Or | Xor) ->
      let lop = match op with And -> Insn.Pand | Or -> Insn.Por
                            | _ -> Insn.Pxor in
      emit_vec_logic ctx i.id lop a b
    | Vec (2, I64), Add ->
      xdef ctx i.id (fun dst ->
          let b_op = xsrc ctx ~into:scratch_xmm1 b in
          match b_op with
          | Insn.Xr x when x = dst ->
            let a_op = xsrc ctx ~into:scratch_xmm0 a in
            emit ctx (Insn.Padd (Insn.W64, dst, a_op))
          | _ ->
            xmov ctx dst a;
            emit ctx (Insn.Padd (Insn.W64, dst, b_op)))
    | Vec (4, I32), Add ->
      xdef ctx i.id (fun dst ->
          let b_op = xsrc ctx ~into:scratch_xmm1 b in
          match b_op with
          | Insn.Xr x when x = dst ->
            let a_op = xsrc ctx ~into:scratch_xmm0 a in
            emit ctx (Insn.Padd (Insn.W32, dst, a_op))
          | _ ->
            xmov ctx dst a;
            emit ctx (Insn.Padd (Insn.W32, dst, b_op)))
    | (I128 | Vec _), _ -> err "unsupported wide integer op"
    | _, Add ->
      emit_gbin ctx i.id t a b ~commutative:true
        (fun w d s -> Insn.Alu (Insn.Add, w, d, s))
        ~needs_normalize:(t = I8 || t = I16 || t = I1)
    | _, Sub ->
      emit_gbin ctx i.id t a b ~commutative:false
        (fun w d s -> Insn.Alu (Insn.Sub, w, d, s))
        ~needs_normalize:(t = I8 || t = I16 || t = I1)
    | _, Mul -> (
      match b with
      | CInt (_, imm) when Encode.fits_int32 imm ->
        (* three-operand form: dst = a * imm *)
        let w = match t with I32 -> Insn.W32 | _ -> Insn.W64 in
        gdef ctx i.id (fun dst ->
            let a_op =
              match gsrc ctx ~into:scratch_gpr0 a with
              | Insn.OImm _ -> Insn.OReg (gval ctx ~into:scratch_gpr0 a)
              | o -> o
            in
            emit ctx (Insn.Imul3 (w, dst, a_op, imm));
            if t = I8 || t = I16 || t = I1 then normalize ctx t dst)
      | _ ->
        emit_gbin ctx i.id t a b ~commutative:true
          (fun w d s ->
            let s =
              match s with
              | Insn.OImm _ ->
                emit ctx (Insn.Mov (Insn.W64, Insn.OReg scratch_gpr1, s));
                Insn.OReg scratch_gpr1
              | s -> s
            in
            match d with
            | Insn.OReg dr -> Insn.Imul2 (w, dr, s)
            | _ -> err "imul destination must be a register")
          ~needs_normalize:(t = I8 || t = I16 || t = I1))
    | _, And ->
      emit_gbin ctx i.id t a b ~commutative:true
        (fun w d s -> Insn.Alu (Insn.And, w, d, s)) ~needs_normalize:false
    | _, Or ->
      emit_gbin ctx i.id t a b ~commutative:true
        (fun w d s -> Insn.Alu (Insn.Or, w, d, s)) ~needs_normalize:false
    | _, Xor ->
      emit_gbin ctx i.id t a b ~commutative:true
        (fun w d s -> Insn.Alu (Insn.Xor, w, d, s)) ~needs_normalize:false
    | _, Shl -> emit_shift ctx i.id t a b Insn.Shl
    | _, LShr -> emit_shift ctx i.id t a b Insn.Shr
    | _, AShr -> emit_shift ctx i.id t a b Insn.Sar
    | _, SDiv -> emit_divrem ctx i.id t a b ~want_rem:false
    | _, SRem -> emit_divrem ctx i.id t a b ~want_rem:true
    | _, (UDiv | URem) -> err "unsigned division not selected")
  | FBin (op, t, a, b) ->
    let fop = match op with FAdd -> Insn.FAdd | FSub -> Insn.FSub
                          | FMul -> Insn.FMul | FDiv -> Insn.FDiv in
    emit_xbin ctx i.id t a b fop
  | Icmp (p, t, a, b) ->
    let cc = emit_icmp_flags ctx p t a b in
    gdef ctx i.id (fun dst -> setcc_value ctx cc `None dst)
  | Fcmp (p, t, a, b) ->
    let cc, fix = emit_fcmp_flags ctx p t a b in
    gdef ctx i.id (fun dst -> setcc_value ctx cc fix dst)
  | Select (t, c, a, b) -> (
    match class_of_ty t with
    | G ->
      gdef ctx i.id (fun dst ->
          let cr = gval ctx ~into:scratch_gpr0 c in
          emit ctx (Insn.Test (Insn.W64, Insn.OReg cr, Insn.OReg cr));
          (* dst <- b, then overwrite with a when the condition holds *)
          let b_op = gsrc ctx ~into:scratch_gpr0 b in
          emit ctx (Insn.Mov (Insn.W64, Insn.OReg dst, b_op));
          let a_r = gval ctx ~into:scratch_gpr1 a in
          emit ctx (Insn.Cmov (Insn.NE, Insn.W64, dst, Insn.OReg a_r)))
    | X ->
      xdef ctx i.id (fun dst ->
          let cr = gval ctx ~into:scratch_gpr0 c in
          emit ctx (Insn.Test (Insn.W64, Insn.OReg cr, Insn.OReg cr));
          let l_else = fresh_label ctx in
          let l_done = fresh_label ctx in
          emit ctx (Insn.Jcc (Insn.E, Insn.Lbl l_else));
          xmov ctx dst a;
          emit ctx (Insn.Jmp (Insn.Lbl l_done));
          label ctx l_else;
          xmov ctx dst b;
          label ctx l_done))
  | Cast (k, st, v, dt) -> (
    match k with
    | Zext | IntToPtr | PtrToInt -> (
      match class_of_ty st, class_of_ty dt with
      | G, G ->
        gdef ctx i.id (fun dst ->
            let o = gsrc ctx ~into:scratch_gpr0 v in
            match o with
            | Insn.OReg r when Reg.equal r dst -> ()
            | _ -> emit ctx (Insn.Mov (Insn.W64, Insn.OReg dst, o)))
      | G, X ->
        (* zext i64 -> i128 *)
        xdef ctx i.id (fun dst ->
            let r = gval ctx ~into:scratch_gpr0 v in
            emit ctx (Insn.MovqXR (dst, r)))
      | _ -> err "unsupported zext shape")
    | Trunc -> (
      match class_of_ty st, class_of_ty dt with
      | G, G ->
        gdef ctx i.id (fun dst ->
            let o = gsrc ctx ~into:scratch_gpr0 v in
            (match dt with
             | I32 -> (
               match o with
               | Insn.OReg r -> emit ctx (Insn.Mov (Insn.W32, Insn.OReg dst, Insn.OReg r))
               | _ -> emit ctx (Insn.Mov (Insn.W32, Insn.OReg dst, o)))
             | I16 -> emit ctx (Insn.Movzx (Insn.W64, dst, Insn.W16,
                                            (match o with
                                             | Insn.OImm _ ->
                                               emit ctx (Insn.Mov (Insn.W64, Insn.OReg scratch_gpr0, o));
                                               Insn.OReg scratch_gpr0
                                             | o -> o)))
             | I8 -> emit ctx (Insn.Movzx (Insn.W64, dst, Insn.W8,
                                           (match o with
                                            | Insn.OImm _ ->
                                              emit ctx (Insn.Mov (Insn.W64, Insn.OReg scratch_gpr0, o));
                                              Insn.OReg scratch_gpr0
                                            | o -> o)))
             | I1 ->
               (match o with
                | Insn.OReg r when Reg.equal r dst -> ()
                | _ -> emit ctx (Insn.Mov (Insn.W64, Insn.OReg dst, o)));
               normalize ctx I1 dst
             | _ -> err "bad trunc"))
      | X, G ->
        (* i128 -> small *)
        gdef ctx i.id (fun dst ->
            let x = xval ctx ~into:scratch_xmm0 v in
            emit ctx (Insn.MovqRX (dst, x));
            match dt with
            | I64 -> ()
            | I32 -> emit ctx (Insn.Mov (Insn.W32, Insn.OReg dst, Insn.OReg dst))
            | I16 | I8 | I1 -> normalize ctx dt dst
            | _ -> err "bad trunc")
      | _ -> err "unsupported trunc shape")
    | Sext ->
      gdef ctx i.id (fun dst ->
          let r = gval ctx ~into:scratch_gpr0 v in
          let sw = width_of_ty st in
          let dw = if dt = I64 || is_ptr dt then Insn.W64 else Insn.W32 in
          if st = I32 && dt = I64 then
            emit ctx (Insn.Movsx (Insn.W64, dst, Insn.W32, Insn.OReg r))
          else begin
            emit ctx (Insn.Movsx (dw, dst, sw, Insn.OReg r));
            if dt = I32 then () (* auto zext *)
            else if dt = I16 || dt = I8 then normalize ctx dt dst
          end)
    | Bitcast -> (
      match class_of_ty st, class_of_ty dt with
      | G, G ->
        gdef ctx i.id (fun dst ->
            let o = gsrc ctx ~into:scratch_gpr0 v in
            match o with
            | Insn.OReg r when Reg.equal r dst -> ()
            | _ -> emit ctx (Insn.Mov (Insn.W64, Insn.OReg dst, o)))
      | X, X -> xdef ctx i.id (fun dst -> xmov ctx dst v)
      | G, X ->
        if ty_bits st <> 64 then err "unsupported bitcast width";
        xdef ctx i.id (fun dst ->
            let r = gval ctx ~into:scratch_gpr0 v in
            emit ctx (Insn.MovqXR (dst, r)))
      | X, G ->
        if ty_bits dt <> 64 then err "unsupported bitcast width";
        gdef ctx i.id (fun dst ->
            let x = xval ctx ~into:scratch_xmm0 v in
            emit ctx (Insn.MovqRX (dst, x)))
      )
    | FpToSi ->
      gdef ctx i.id (fun dst ->
          let x = xsrc ctx ~into:scratch_xmm0 v in
          let w = if dt = I64 then Insn.W64 else Insn.W32 in
          let x = (match st with
              | F32 ->
                let xr = xval ctx ~into:scratch_xmm0 v in
                emit ctx (Insn.Cvtss2sd (scratch_xmm1, Insn.Xr xr));
                Insn.Xr scratch_xmm1
              | _ -> x) in
          emit ctx (Insn.Cvttsd2si (dst, w, x));
          match dt with
          | I8 | I16 | I1 -> normalize ctx dt dst
          | _ -> ())
    | SiToFp ->
      xdef ctx i.id (fun dst ->
          let r =
            match st with
            | I8 | I16 | I1 ->
              let r = gval ctx ~into:scratch_gpr0 v in
              emit ctx
                (Insn.Movsx (Insn.W32, scratch_gpr0,
                             (if st = I16 then Insn.W16 else Insn.W8),
                             Insn.OReg r));
              scratch_gpr0
            | _ -> gval ctx ~into:scratch_gpr0 v
          in
          let w = if st = I64 then Insn.W64 else Insn.W32 in
          if dt = F64 then emit ctx (Insn.Cvtsi2sd (dst, w, Insn.OReg r))
          else begin
            emit ctx (Insn.Cvtsi2sd (scratch_xmm1, w, Insn.OReg r));
            emit ctx (Insn.Cvtsd2ss (dst, Insn.Xr scratch_xmm1))
          end)
    | FpExt ->
      xdef ctx i.id (fun dst ->
          let x = xsrc ctx ~into:scratch_xmm0 v in
          emit ctx (Insn.Cvtss2sd (dst, x)))
    | FpTrunc ->
      xdef ctx i.id (fun dst ->
          let x = xsrc ctx ~into:scratch_xmm0 v in
          emit ctx (Insn.Cvtsd2ss (dst, x))))
  | Load (t, p, align) -> (
    let mem = addr_of ctx ~into:scratch_gpr0 p in
    match class_of_ty t with
    | G ->
      gdef ctx i.id (fun dst ->
          match t with
          | I64 | Ptr _ -> emit ctx (Insn.Mov (Insn.W64, Insn.OReg dst, Insn.OMem mem))
          | I32 -> emit ctx (Insn.Mov (Insn.W32, Insn.OReg dst, Insn.OMem mem))
          | I16 -> emit ctx (Insn.Movzx (Insn.W64, dst, Insn.W16, Insn.OMem mem))
          | I8 | I1 -> emit ctx (Insn.Movzx (Insn.W64, dst, Insn.W8, Insn.OMem mem))
          | _ -> err "bad integer load")
    | X ->
      xdef ctx i.id (fun dst ->
          if ty_bytes t > 8 then
            (if align >= 16 then
               emit ctx (Insn.SseMov (Insn.Movapd, Insn.Xr dst, Insn.Xm mem))
             else
               emit ctx (Insn.SseMov (Insn.Movupd, Insn.Xr dst, Insn.Xm mem)))
          else if t = F32 then
            emit ctx (Insn.SseMov (Insn.Movss, Insn.Xr dst, Insn.Xm mem))
          else emit ctx (Insn.SseMov (Insn.Movsd, Insn.Xr dst, Insn.Xm mem))))
  | Store (t, v, p, align) -> (
    let mem = addr_of ctx ~into:scratch_gpr0 p in
    match class_of_ty t with
    | G -> (
      let w = match t with
        | I64 | Ptr _ -> Insn.W64 | I32 -> Insn.W32 | I16 -> Insn.W16
        | _ -> Insn.W8
      in
      match v with
      | CInt (_, x) when Encode.fits_int32 x ->
        emit ctx (Insn.Mov (w, Insn.OMem mem, Insn.OImm x))
      | _ ->
        let r = gval ctx ~into:scratch_gpr1 v in
        emit ctx (Insn.Mov (w, Insn.OMem mem, Insn.OReg r)))
    | X ->
      let x = xval ctx ~into:scratch_xmm1 v in
      if ty_bytes t > 8 then
        (if align >= 16 then
           emit ctx (Insn.SseMov (Insn.Movapd, Insn.Xm mem, Insn.Xr x))
         else emit ctx (Insn.SseMov (Insn.Movupd, Insn.Xm mem, Insn.Xr x)))
      else if t = F32 then
        emit ctx (Insn.SseMov (Insn.Movss, Insn.Xm mem, Insn.Xr x))
      else emit ctx (Insn.SseMov (Insn.Movsd, Insn.Xm mem, Insn.Xr x)))
  | CallDirect (n, sg, args) ->
    emit_call ctx i.id i.ty (`Addr (ctx.func_addr n)) sg args
  | CallPtr (CPtr a, sg, args) -> emit_call ctx i.id i.ty (`Addr a) sg args
  | CallPtr (c, sg, args) -> emit_call ctx i.id i.ty (`Val c) sg args
  | ExtractElt (vt, v, lane) -> (
    match vt with
    | Vec (2, (F64 | I64)) -> (
      let scalar_is_int = vt = Vec (2, I64) in
      let get dst =
        if lane = 0 then xmov ctx dst v
        else begin
          xmov ctx dst v;
          emit ctx (Insn.Shufpd (dst, Insn.Xr dst, 1))
        end
      in
      if scalar_is_int then
        gdef ctx i.id (fun dst ->
            get scratch_xmm0;
            emit ctx (Insn.MovqRX (dst, scratch_xmm0)))
      else xdef ctx i.id (fun dst -> get dst))
    | Vec (4, F32) when lane = 0 -> xdef ctx i.id (fun dst -> xmov ctx dst v)
    | _ -> err "unsupported extractelement shape")
  | InsertElt (vt, v, s, lane) -> (
    match vt with
    | Vec (2, F64) ->
      xdef ctx i.id (fun dst ->
          (* place scalar in a scratch xmm *)
          let sx = xval ctx ~into:scratch_xmm1 s in
          xmov ctx dst v;
          if lane = 0 then
            emit ctx (Insn.SseMov (Insn.Movsd, Insn.Xr dst, Insn.Xr sx))
          else emit ctx (Insn.Unpcklpd (dst, Insn.Xr sx)))
    | Vec (2, I64) ->
      xdef ctx i.id (fun dst ->
          let sr = gval ctx ~into:scratch_gpr0 s in
          emit ctx (Insn.MovqXR (scratch_xmm1, sr));
          xmov ctx dst v;
          if lane = 0 then
            emit ctx (Insn.SseMov (Insn.Movsd, Insn.Xr dst, Insn.Xr scratch_xmm1))
          else emit ctx (Insn.Unpcklpd (dst, Insn.Xr scratch_xmm1)))
    | Vec (4, F32) when lane = 0 ->
      xdef ctx i.id (fun dst ->
          let sx = xval ctx ~into:scratch_xmm1 s in
          xmov ctx dst v;
          emit ctx (Insn.SseMov (Insn.Movss, Insn.Xr dst, Insn.Xr sx)))
    | _ -> err "unsupported insertelement shape")
  | Shuffle (rt, a, b, mask) -> (
    match rt, Array.to_list mask with
    | Vec (2, (F64 | I64)), [ m0; m1 ] ->
      let m0 = if m0 < 0 then 0 else m0 in
      let m1 = if m1 < 0 then 0 else m1 in
      xdef ctx i.id (fun dst ->
          let pick_src n = if n < 2 then a else b in
          let lane n = n land 1 in
          let s0 = pick_src m0 and s1 = pick_src m1 in
          (* dst <- s0; shufpd dst, s1, lane(m0) | lane(m1)<<1 *)
          let s1x = xval ctx ~into:scratch_xmm1 s1 in
          xmov ctx dst s0;
          emit ctx (Insn.Shufpd (dst, Insn.Xr s1x, lane m0 lor (lane m1 lsl 1))))
    | _ -> err "unsupported shufflevector shape")
  | Intr (intr, args) -> (
    match intr, args with
    | Ctpop I8, [ a ] -> emit_ctpop8 ctx i.id a
    | Sqrt _, [ a ] ->
      xdef ctx i.id (fun dst ->
          let x = xsrc ctx ~into:scratch_xmm0 a in
          emit ctx (Insn.SseArith (Insn.FSqrt, Insn.Sd, dst, x)))
    | Fabs _, [ a ] ->
      xdef ctx i.id (fun dst ->
          emit ctx (Insn.Movabs (scratch_gpr1, 0x7FFFFFFFFFFFFFFFL));
          emit ctx (Insn.MovqXR (scratch_xmm1, scratch_gpr1));
          xmov ctx dst a;
          emit ctx (Insn.SseLogic (Insn.Andpd, dst, Insn.Xr scratch_xmm1)))
    | MinNum _, [ a; b ] ->
      xdef ctx i.id (fun dst ->
          let bx = xsrc ctx ~into:scratch_xmm1 b in
          xmov ctx dst a;
          emit ctx (Insn.SseArith (Insn.FMin, Insn.Sd, dst, bx)))
    | MaxNum _, [ a; b ] ->
      xdef ctx i.id (fun dst ->
          let bx = xsrc ctx ~into:scratch_xmm1 b in
          xmov ctx dst a;
          emit ctx (Insn.SseArith (Insn.FMax, Insn.Sd, dst, bx)))
    | _ -> err "unsupported intrinsic")

(* ------------------------------------------------------------------ *)
(* Function driver                                                     *)
(* ------------------------------------------------------------------ *)

(* collect phi edge moves, keyed by placement *)
let edge_moves ctx :
    (int, pmove list) Hashtbl.t * (int, pmove list) Hashtbl.t =
  let tail : (int, pmove list) Hashtbl.t = Hashtbl.create 8 in
  let head : (int, pmove list) Hashtbl.t = Hashtbl.create 8 in
  let add tbl k m =
    Hashtbl.replace tbl k (Option.value ~default:[] (Hashtbl.find_opt tbl k) @ [ m ])
  in
  let succ_count : (int, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (b : block) ->
      Hashtbl.replace succ_count b.bid (List.length (successors b.term)))
    ctx.f.blocks;
  List.iter
    (fun (b : block) ->
      List.iter
        (fun i ->
          match i.op with
          | Phi (t, ins) ->
            List.iter
              (fun (p, v) ->
                let m =
                  match v with
                  | V vid ->
                    { src = `Loc (loc_of ctx vid); dst = loc_of ctx i.id;
                      mty = t }
                  | c -> { src = `Const c; dst = loc_of ctx i.id; mty = t }
                in
                (* self-moves are dropped early *)
                let trivial =
                  match m.src with
                  | `Loc s -> loc_equal s m.dst
                  | `Const _ -> false
                in
                if not trivial then begin
                  if Option.value ~default:1 (Hashtbl.find_opt succ_count p) <= 1
                  then add tail p m
                  else add head b.bid m
                end)
              ins
          | _ -> ())
        b.instrs)
    ctx.f.blocks;
  (tail, head)

(* can the icmp/fcmp defining [c] be fused into the final branch? *)
let fusable_cond ctx (blk : block) (c : value) : instr option =
  match c with
  | V id -> (
    match List.rev blk.instrs with
    | last :: _
      when last.id = id
           && Option.value ~default:0 (Hashtbl.find_opt ctx.use_counts id) = 1
      -> (
      match last.op with
      | Icmp _ | Fcmp _ -> Some last
      | _ -> None)
    | _ -> None)
  | _ -> None

let collect_addr_only (f : func) : (int, unit) Hashtbl.t =
  let geps = Hashtbl.create 16 in
  List.iter
    (fun (b : block) ->
      List.iter
        (fun i -> match i.op with Gep _ -> Hashtbl.replace geps i.id (ref 0, ref 0)
                                | _ -> ())
        b.instrs)
    f.blocks;
  let rec count_value addr v =
    match v with
    | V id -> (
      match Hashtbl.find_opt geps id with
      | Some (total, addrc) ->
        incr total;
        if addr then incr addrc
      | None -> ())
    | CVec (_, vs) -> List.iter (count_value false) vs
    | _ -> ()
  in
  List.iter
    (fun (b : block) ->
      List.iter
        (fun i ->
          match i.op with
          | Load (_, p, _) -> count_value true p
          | Store (_, v, p, _) ->
            count_value false v;
            count_value true p
          | op -> List.iter (count_value false) (operands op))
        b.instrs;
      List.iter (count_value false) (term_operands b.term))
    f.blocks;
  let out = Hashtbl.create 16 in
  Hashtbl.iter
    (fun id (total, addrc) ->
      if !total > 0 && !total = !addrc then Hashtbl.replace out id ())
    geps;
  out

(** Emit a complete function as assembly items (labels use block ids;
    extra labels start above them). *)
let emit_func_impl ?(global_addr = fun g -> err "unresolved global @%s" g)
    ?(func_addr = fun n -> err "unresolved function @%s" n) (f : func) :
    Insn.item list * int array =
  Obrew_fault.Fault.point "backend.isel";
  split_critical_edges f;
  Cfg.prune_unreachable f;
  let al = allocate f in
  (* alloca frame offsets *)
  let alloca_off = Hashtbl.create 4 in
  let asize = ref 0 in
  List.iter
    (fun (b : block) ->
      List.iter
        (fun i ->
          match i.op with
          | Alloca (size, align) ->
            let off = (!asize + align - 1) land lnot (align - 1) in
            Hashtbl.replace alloca_off i.id off;
            asize := off + size
          | _ -> ())
        b.instrs)
    f.blocks;
  let alloca_size = (!asize + 15) land lnot 15 in
  let pushes = List.length al.used_callee_saved in
  (* after pushes rsp % 16 = (8 + 8p) % 16; frame must restore 16-alignment *)
  let base_total = al.frame_size + alloca_size in
  let misalign = (8 + (8 * pushes) + base_total) mod 16 in
  let frame_total = base_total + (if misalign = 0 then 0 else 16 - misalign) in
  let max_bid = List.fold_left (fun m (b : block) -> max m b.bid) 0 f.blocks in
  let ctx =
    { f; al; tenv = Obrew_opt.Util.type_env f; defs = Obrew_opt.Util.def_table f;
      global_addr; func_addr; out = []; provs = []; cur_prov = 0;
      next_label = max_bid + 2;
      alloca_off; alloca_size; frame_total;
      use_counts = Obrew_opt.Util.use_counts f;
      addr_only = collect_addr_only f }
  in
  let epilogue_label = max_bid + 1 in
  ctx.next_label <- max_bid + 2;
  (* prologue *)
  List.iter (fun r -> emit ctx (Insn.Push (Insn.OReg r)))
    al.used_callee_saved;
  if frame_total > 0 then
    emit ctx
      (Insn.Alu (Insn.Sub, Insn.W64, Insn.OReg Reg.RSP,
                 Insn.OImm (Int64.of_int frame_total)));
  (* parameters: parallel move from the ABI argument registers *)
  let param_moves =
    List.map2
      (fun t pid ->
        { src = `Loc (LReg Reg.RAX) (* placeholder, fixed below *);
          dst = loc_of ctx pid; mty = t })
      f.sg.args f.params
  in
  let arg_locs = arg_locations f.sg in
  let param_moves =
    List.map2 (fun m src -> { m with src = `Loc src }) param_moves arg_locs
  in
  parallel_moves ctx
    (List.filter
       (fun m -> match m.src with
          | `Loc s -> not (loc_equal s m.dst)
          | _ -> true)
       param_moves);
  (* body *)
  let tail_moves, head_moves = edge_moves ctx in
  let order = al.order in
  let arr = Array.of_list order in
  Array.iteri
    (fun idx bid ->
      let next = if idx + 1 < Array.length arr then Some arr.(idx + 1) else None in
      let blk = find_block f bid in
      label ctx bid;
      (match Hashtbl.find_opt head_moves bid with
       | Some ms -> parallel_moves ctx ms
       | None -> ());
      (* body instructions, fusing a trailing compare into the branch *)
      let fused =
        match blk.term with
        | CondBr (c, _, _) -> fusable_cond ctx blk c
        | _ -> None
      in
      List.iter
        (fun i ->
          match fused with
          | Some fi when fi.id = i.id -> ()
          | _ ->
            ctx.cur_prov <- i.prov;
            emit_instr ctx i)
        blk.instrs;
      ctx.cur_prov <- 0;
      (match Hashtbl.find_opt tail_moves bid with
       | Some ms -> parallel_moves ctx ms
       | None -> ());
      (* a fused compare's host bytes are part of the branch sequence:
         attribute them to the compare's guest instruction *)
      ctx.cur_prov <- (match fused with Some fi -> fi.prov | None -> 0);
      (match blk.term with
       | Br t -> if next <> Some t then emit ctx (Insn.Jmp (Insn.Lbl t))
       | CondBr (c, t, e) ->
         let cc, fix =
           match fused with
           | Some { op = Icmp (p, ty, a, b); _ } ->
             (emit_icmp_flags ctx p ty a b, `None)
           | Some { op = Fcmp (p, ty, a, b); _ } -> emit_fcmp_flags ctx p ty a b
           | _ ->
             let cr = gval ctx ~into:scratch_gpr0 c in
             emit ctx (Insn.Test (Insn.W64, Insn.OReg cr, Insn.OReg cr));
             (Insn.NE, `None)
         in
         (match fix with
          | `None -> emit ctx (Insn.Jcc (cc, Insn.Lbl t))
          | `AndNP ->
            (* both conditions must hold: branch to else on parity *)
            emit ctx (Insn.Jcc (Insn.P, Insn.Lbl e));
            emit ctx (Insn.Jcc (cc, Insn.Lbl t))
          | `OrP ->
            emit ctx (Insn.Jcc (Insn.P, Insn.Lbl t));
            emit ctx (Insn.Jcc (cc, Insn.Lbl t)));
         if next <> Some e then emit ctx (Insn.Jmp (Insn.Lbl e));
         ctx.cur_prov <- 0
       | Ret v ->
         ctx.cur_prov <- 0;
         (match v, f.sg.ret with
          | Some v, Some t -> (
            match class_of_ty t with
            | G -> (
              let o = gsrc ctx ~into:scratch_gpr0 v in
              match o with
              | Insn.OReg r when Reg.equal r Reg.RAX -> ()
              | _ -> emit ctx (Insn.Mov (Insn.W64, Insn.OReg Reg.RAX, o)))
            | X -> xmov ctx 0 v)
          | _ -> ());
         emit ctx (Insn.Jmp (Insn.Lbl epilogue_label))
       | Unreachable -> emit ctx Insn.Ud2))
    arr;
  (* epilogue *)
  label ctx epilogue_label;
  if frame_total > 0 then
    emit ctx
      (Insn.Alu (Insn.Add, Insn.W64, Insn.OReg Reg.RSP,
                 Insn.OImm (Int64.of_int frame_total)));
  List.iter (fun r -> emit ctx (Insn.Pop (Insn.OReg r)))
    (List.rev al.used_callee_saved);
  emit ctx Insn.Ret;
  (List.rev ctx.out, Array.of_list (List.rev ctx.provs))

(** Emit a complete function together with the per-item provenance ids
    (parallel arrays; labels and synthetic moves map to prov 0), as a
    [backend.isel] telemetry span. *)
let emit_func_with_prov ?global_addr ?func_addr (f : func) :
    Insn.item list * int array =
  Obrew_telemetry.Telemetry.span "backend.isel" ~args:f.fname (fun () ->
      emit_func_impl ?global_addr ?func_addr f)

(** Emit a complete function, as a [backend.isel] telemetry span. *)
let emit_func ?global_addr ?func_addr (f : func) : Insn.item list =
  fst (emit_func_with_prov ?global_addr ?func_addr f)
