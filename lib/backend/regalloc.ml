(** Liveness analysis and linear-scan register allocation over IR
    values (the JIT code generator's allocator, standing in for LLVM's
    MCJIT backend). *)

open Obrew_x86
open Obrew_ir
open Ins

type rclass = G | X

let class_of_ty = function
  | I1 | I8 | I16 | I32 | I64 | Ptr _ -> G
  | F32 | F64 | I128 | Vec _ -> X

(** Allocation result for one value. *)
type loc =
  | LReg of Reg.gpr
  | LXmm of int
  | LSlot of int (* byte offset into the spill area *)

let loc_equal a b = a = b

type alloc = {
  locs : (int, loc) Hashtbl.t;       (* value id -> location *)
  frame_size : int;                  (* spill area size, 16-aligned *)
  used_callee_saved : Reg.gpr list;  (* callee-saved GPRs we must save *)
  order : int list;                  (* linearized block order *)
}

(* registers reserved as scratch for the instruction selector *)
let scratch_gpr0 = Reg.R10
let scratch_gpr1 = Reg.R11
let scratch_xmm0 = 14
let scratch_xmm1 = 15

(* allocatable pools; rax/rcx/rdx excluded (isel uses them for
   idiv/shifts and as call/return plumbing), rsp excluded *)
let callee_saved_pool = [ Reg.RBX; Reg.R12; Reg.R13; Reg.R14; Reg.R15; Reg.RBP ]
let caller_saved_pool = [ Reg.RSI; Reg.RDI; Reg.R8; Reg.R9 ]
let xmm_pool = [ 4; 5; 6; 7; 8; 9; 10; 11; 12; 13 ]
(* xmm0-3 reserved for argument/return plumbing *)

type interval = {
  vid : int;
  cls : rclass;
  vty : ty;
  mutable istart : int;
  mutable iend : int;
  mutable crosses_call : bool;
}

(** Compute live intervals over the linearized block order.  Phi
    inputs are treated as uses at the end of the predecessor; phi
    defs start at their block's head. *)
let intervals (f : func) : interval list * int list * (int, int) Hashtbl.t =
  let order = Cfg.rpo f in
  let tenv = Obrew_opt.Util.type_env f in
  (* number instructions *)
  let pos : (int, int) Hashtbl.t = Hashtbl.create 64 in (* value id -> def position *)
  let block_range : (int, int * int) Hashtbl.t = Hashtbl.create 16 in
  let n = ref 0 in
  List.iter
    (fun bid ->
      let blk = find_block f bid in
      let start = !n in
      List.iter
        (fun i ->
          Hashtbl.replace pos i.id !n;
          incr n)
        blk.instrs;
      incr n; (* terminator slot *)
      Hashtbl.replace block_range bid (start, !n - 1))
    order;
  (* liveness: backward iteration *)
  let live_in : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun bid -> Hashtbl.replace live_in bid (Hashtbl.create 16)) order;
  let preds = Cfg.predecessors f in
  ignore preds;
  let ivs : (int, interval) Hashtbl.t = Hashtbl.create 64 in
  let touch vid p =
    match Hashtbl.find_opt ivs vid with
    | Some iv ->
      if p < iv.istart then iv.istart <- p;
      if p > iv.iend then iv.iend <- p
    | None ->
      let vty = Option.value ~default:I64 (Hashtbl.find_opt tenv vid) in
      Hashtbl.replace ivs vid
        { vid; cls = class_of_ty vty; vty; istart = p; iend = p;
          crosses_call = false }
  in
  (* params defined at position -1 *)
  List.iter (fun pid -> touch pid (-1)) f.params;
  let rec uses_of_value acc = function
    | V id -> id :: acc
    | CVec (_, vs) -> List.fold_left uses_of_value acc vs
    | _ -> acc
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun bid ->
        let blk = find_block f bid in
        let li = Hashtbl.find live_in bid in
        (* live-out = union of successors' live-in minus their phi defs,
           plus our phi contributions to successors *)
        let live : (int, unit) Hashtbl.t = Hashtbl.create 16 in
        List.iter
          (fun s ->
            let sblk = find_block f s in
            let sli = Hashtbl.find live_in s in
            Hashtbl.iter (fun v () -> Hashtbl.replace live v ()) sli;
            List.iter
              (fun i ->
                match i.op with
                | Phi (_, ins) ->
                  Hashtbl.remove live i.id;
                  (match List.assoc_opt bid ins with
                   | Some v ->
                     List.iter
                       (fun u -> Hashtbl.replace live u ())
                       (uses_of_value [] v)
                   | None -> ())
                | _ -> ())
              sblk.instrs)
          (successors blk.term);
        let _, bend = Hashtbl.find block_range bid in
        Hashtbl.iter (fun v () -> touch v bend) live;
        (* walk instructions backward *)
        List.iter
          (fun u -> Hashtbl.replace live u ())
          (List.concat_map (uses_of_value []) (term_operands blk.term));
        List.iter
          (fun u -> touch u bend)
          (List.concat_map (uses_of_value []) (term_operands blk.term));
        List.iter
          (fun i ->
            let p = Hashtbl.find pos i.id in
            (* def *)
            touch i.id p;
            Hashtbl.remove live i.id;
            match i.op with
            | Phi _ -> () (* inputs handled at preds *)
            | op ->
              List.iter
                (fun u ->
                  Hashtbl.replace live u ();
                  touch u p)
                (List.concat_map (uses_of_value []) (operands op)))
          (List.rev blk.instrs);
        (* new live-in *)
        let bstart, _ = Hashtbl.find block_range bid in
        Hashtbl.iter (fun v () -> touch v bstart) live;
        Hashtbl.iter
          (fun v () ->
            if not (Hashtbl.mem li v) then begin
              Hashtbl.replace li v ();
              changed := true
            end)
          live)
      (List.rev order)
  done;
  (* extend intervals of values live-in at loop headers across the
     whole loop: approximate by extending any value live-in of block B
     to the end of every predecessor of B that appears later *)
  List.iter
    (fun bid ->
      let li = Hashtbl.find live_in bid in
      let ps = Option.value ~default:[] (Hashtbl.find_opt preds bid) in
      List.iter
        (fun p ->
          match Hashtbl.find_opt block_range p with
          | Some (_, pend) -> Hashtbl.iter (fun v () -> touch v pend) li
          | None -> ())
        ps)
    order;
  (* the selector folds GEPs into addressing modes, re-evaluating them
     at each use: keep their operands alive for the gep's lifetime *)
  List.iter
    (fun bid ->
      let blk = find_block f bid in
      List.iter
        (fun i ->
          match i.op with
          | Gep _ -> (
            match Hashtbl.find_opt ivs i.id with
            | Some giv ->
              List.iter
                (fun u ->
                  match Hashtbl.find_opt ivs u with
                  | Some oiv -> if giv.iend > oiv.iend then oiv.iend <- giv.iend
                  | None -> ())
                (List.concat_map (uses_of_value []) (operands i.op))
            | None -> ())
          | _ -> ())
        blk.instrs)
    order;
  (* mark call crossings *)
  let call_positions = ref [] in
  List.iter
    (fun bid ->
      let blk = find_block f bid in
      List.iter
        (fun i ->
          match i.op with
          | CallDirect _ | CallPtr _ ->
            call_positions := Hashtbl.find pos i.id :: !call_positions
          | _ -> ())
        blk.instrs)
    order;
  Hashtbl.iter
    (fun _ iv ->
      if
        List.exists
          (fun cp -> iv.istart < cp && cp < iv.iend)
          !call_positions
      then iv.crosses_call <- true)
    ivs;
  let lst = Hashtbl.fold (fun _ iv acc -> iv :: acc) ivs [] in
  (List.sort (fun a b -> compare a.istart b.istart) lst, order, pos)

(** Linear scan. *)
let allocate_impl (f : func) : alloc =
  let ivs, order, _pos = intervals f in
  let locs : (int, loc) Hashtbl.t = Hashtbl.create 64 in
  let active : (interval * loc) list ref = ref [] in
  let free_callee = ref callee_saved_pool in
  let free_caller = ref caller_saved_pool in
  let free_xmm = ref xmm_pool in
  let used_callee = ref [] in
  let next_slot = ref 0 in
  let alloc_slot ivty =
    let size = if ty_bytes ivty > 8 then 16 else 8 in
    let off = (!next_slot + size - 1) land lnot (size - 1) in
    next_slot := off + size;
    LSlot off
  in
  let release = function
    | LReg r ->
      if List.mem r callee_saved_pool then free_callee := r :: !free_callee
      else free_caller := r :: !free_caller
    | LXmm x -> free_xmm := x :: !free_xmm
    | LSlot _ -> ()
  in
  List.iter
    (fun iv ->
      (* expire old intervals *)
      let expired, still =
        List.partition (fun (i, _) -> i.iend < iv.istart) !active
      in
      List.iter (fun (_, l) -> release l) expired;
      active := still;
      let l =
        match iv.cls with
        | G -> (
          (* prefer callee-saved when crossing calls; otherwise either *)
          let take_callee () =
            match !free_callee with
            | r :: tl ->
              free_callee := tl;
              if not (List.mem r !used_callee) then
                used_callee := r :: !used_callee;
              Some (LReg r)
            | [] -> None
          in
          let take_caller () =
            match !free_caller with
            | r :: tl ->
              free_caller := tl;
              Some (LReg r)
            | [] -> None
          in
          let choice =
            if iv.crosses_call then take_callee ()
            else
              match take_caller () with
              | Some l -> Some l
              | None -> take_callee ()
          in
          match choice with
          | Some l -> l
          | None -> alloc_slot iv.vty)
        | X -> (
          if iv.crosses_call then alloc_slot iv.vty
          else
            match !free_xmm with
            | x :: tl ->
              free_xmm := tl;
              LXmm x
            | [] -> alloc_slot iv.vty)
      in
      Hashtbl.replace locs iv.vid l;
      (match l with LSlot _ -> () | _ -> active := (iv, l) :: !active))
    ivs;
  let frame = (!next_slot + 15) land lnot 15 in
  { locs; frame_size = frame; used_callee_saved = !used_callee; order }

(** Linear scan, as a [backend.regalloc] telemetry span. *)
let allocate (f : func) : alloc =
  Obrew_telemetry.Telemetry.span "backend.regalloc" ~args:f.fname (fun () ->
      allocate_impl f)
