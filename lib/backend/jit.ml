(** JIT installation: place a module's globals and compiled functions
    into the emulated image, resolving symbols (the LLVM-JIT role in
    Fig. 1). *)

open Obrew_x86
open Obrew_ir
open Ins

(** Copy a global's initial bytes into fresh data memory. *)
let install_global (img : Image.t) (g : global) : int =
  let a = Image.alloc_data ~align:g.galign img (max 1 (String.length g.bytes)) in
  Mem.write_bytes img.Image.cpu.Cpu.mem a g.bytes;
  Image.define img g.gname a;
  a

(** Compile and install one function; returns its entry address.
    Callees and globals must already be present in the symbol table.
    Installation is content-addressed: emitting a function whose
    item-for-item code was installed before (e.g. a re-run of the same
    specialization pipeline) reuses the existing copy instead of
    growing the code region and invalidating caches. *)
let install_func (img : Image.t) (f : func) : int =
  Obrew_telemetry.Telemetry.span "jit.emit" ~args:f.fname (fun () ->
      let items =
        Isel.emit_func ~global_addr:(Image.lookup img)
          ~func_addr:(Image.lookup img) f
      in
      Image.install_code ~name:f.fname ~dedup:true img items)

(** Install all globals, then all functions in order (callees must
    precede callers in [m.funcs]). *)
let install_module (img : Image.t) (m : modul) : (string * int) list =
  let gaddrs = List.map (fun g -> (g.gname, install_global img g)) m.globals in
  let faddrs = List.map (fun f -> (f.fname, install_func img f)) m.funcs in
  gaddrs @ faddrs
