(** JIT installation: place a module's globals and compiled functions
    into the emulated image, resolving symbols (the LLVM-JIT role in
    Fig. 1). *)

open Obrew_x86
open Obrew_ir
open Ins

(** Copy a global's initial bytes into fresh data memory. *)
let install_global (img : Image.t) (g : global) : int =
  let a = Image.alloc_data ~align:g.galign img (max 1 (String.length g.bytes)) in
  Mem.write_bytes img.Image.cpu.Cpu.mem a g.bytes;
  Image.define img g.gname a;
  a

(** Compile and install one function; returns its entry address.
    Callees and globals must already be present in the symbol table.
    Installation is content-addressed: emitting a function whose
    item-for-item code was installed before (e.g. a re-run of the same
    specialization pipeline) reuses the existing copy instead of
    growing the code region and invalidating caches. *)
let install_func (img : Image.t) (f : func) : int =
  Obrew_telemetry.Telemetry.span "jit.emit" ~args:f.fname (fun () ->
      let items, provs =
        Isel.emit_func_with_prov ~global_addr:(Image.lookup img)
          ~func_addr:(Image.lookup img) f
      in
      let items = Sabotage.maybe_corrupt "sabotage.isel.item" items in
      let addr = Image.install_code ~name:f.fname ~dedup:true img items in
      let module Prov = Obrew_provenance.Provenance in
      if !Prov.enabled && not (Obrew_fault.Fault.active ()) then begin
        (* re-assemble at the final address to learn each item's host
           byte range; assembly is deterministic so a dedup hit maps to
           the same bytes *)
        let bytes, listing, _ = Encode.assemble ~base:addr items in
        let code_end = addr + String.length bytes in
        (* [listing] covers [I] items only, in order; walk [items] and
           [provs] in lockstep to pair each listed insn with its prov *)
        let ranges = ref [] in
        let rest = ref listing in
        Array.iteri
          (fun k item ->
            match (item : Insn.item) with
            | Insn.L _ | Insn.Q _ -> ()
            | Insn.I _ | Insn.MovLbl _ -> (
              match !rest with
              | (a, _) :: tl ->
                let len =
                  (match tl with (a', _) :: _ -> a' | [] -> code_end) - a
                in
                ranges := (a, len, provs.(k)) :: !ranges;
                rest := tl
              | [] -> ()))
          (Array.of_list items);
        Prov.set_host_map ~fn:f.fname (List.rev !ranges)
      end;
      addr)

(** Install all globals, then all functions in order (callees must
    precede callers in [m.funcs]). *)
let install_module (img : Image.t) (m : modul) : (string * int) list =
  let gaddrs = List.map (fun g -> (g.gname, install_global img g)) m.globals in
  let faddrs = List.map (fun f -> (f.fname, install_func img f)) m.funcs in
  gaddrs @ faddrs
