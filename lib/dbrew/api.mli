(** The DBrew user API, mirroring Fig. 2/3 of the paper.

    Typical use:
    {[
      let r = Api.dbrew_new img func in
      Api.dbrew_set_par r 1 42L;          (* parameter 1 is always 42 *)
      Api.dbrew_set_mem r lo hi;          (* [lo,hi) holds fixed data *)
      let newfunc = Api.dbrew_rewrite r in
      (* call newfunc instead of func: same signature, specialized *)
    ]}

    Rewriting may fail on constructs the rewriter does not cover
    (indirect jumps, unsupported instructions, variant explosion); the
    failure is recorded as a typed {!Obrew_fault.Err.t} and the default
    error handler returns the original function so the program stays
    correct (Sec. II). *)

open Obrew_x86

type t = {
  img : Image.t;
  entry : int;
  cfg : Rewriter.config;
  mutable error_handler : (Obrew_fault.Err.t -> int) option;
  mutable last_error : Obrew_fault.Err.t option;
  mutable emitted_items : Insn.item list;
}

(** [dbrew_new img entry] creates a rewriter for the function at
    address [entry] in [img]. *)
val dbrew_new : Image.t -> int -> t

(** [dbrew_set_par r i v] fixes the [i]-th (0-based, System V integer
    order) parameter to [v] — Fig. 3's [dbrew_setpar]. *)
val dbrew_set_par : t -> int -> int64 -> unit

(** [dbrew_set_mem r lo hi] declares the address range [lo, hi) as
    fixed: values loaded from it are assumed constant and folded into
    the generated code — Fig. 3's [dbrew_setmem]. *)
val dbrew_set_mem : t -> int -> int -> unit

(** Maximum call-inlining depth (default 4; 0 keeps calls). *)
val dbrew_set_inline_depth : t -> int -> unit

(** Install a custom error handler: it receives the typed failure and
    returns the function address to use instead. *)
val dbrew_set_error_handler : t -> (Obrew_fault.Err.t -> int) -> unit

(** Rewrite and install; returns the new function's address (a drop-in
    replacement with the same signature).  On failure the error handler
    decides; the default returns the original entry.

    Successful rewrites are memoized per (image, entry, configuration,
    original-code digest, fixed-memory contents): a repeated request
    returns the already-installed code without re-running the
    rewriter.  [memo:false] forces a fresh rewrite (e.g. to measure
    transformation time).  The memo is bypassed entirely (neither read
    nor written) while a fault-injection plan is installed, so injected
    failures are always exercised and degraded results are never
    cached. *)
val dbrew_rewrite : ?memo:bool -> t -> int

(** (hits, misses) of the specialization memo cache. *)
val memo_stats : unit -> int * int

(** Drop all memoized rewrites and zero the counters. *)
val memo_reset : unit -> unit

(** Assembly items of the last successful rewrite (for Fig. 8-style
    dumps). *)
val dbrew_last_code : t -> Insn.item list
