(** The DBrew user API, mirroring Fig. 2/3 of the paper:

    {[
      let r = Api.dbrew_new img func in
      Api.dbrew_set_par r 1 42L;
      Api.dbrew_set_mem r start stop;
      let newfunc = Api.dbrew_rewrite r in
      (* call newfunc instead of func *)
    ]}

    Rewriting may fail on unsupported constructs; the default error
    handler simply returns the original function, ensuring correctness
    (Sec. II).  A custom handler can be installed instead. *)

open Obrew_x86
open Obrew_fault

type t = {
  img : Image.t;
  entry : int;
  cfg : Rewriter.config;
  mutable error_handler : (Err.t -> int) option;
  mutable last_error : Err.t option;
  mutable emitted_items : Insn.item list; (* for inspection/dumps *)
}

(** Create a rewriter for the function at [entry]. *)
let dbrew_new (img : Image.t) (entry : int) : t =
  { img; entry; cfg = Rewriter.default_config (); error_handler = None;
    last_error = None; emitted_items = [] }

(** Fix parameter [i] (0-based) to [v] — Fig. 3 [dbrew_setpar]. *)
let dbrew_set_par r i v =
  r.cfg.Rewriter.params <- (i, v) :: List.remove_assoc i r.cfg.Rewriter.params

(** Declare [lo, hi) as fixed memory — Fig. 3 [dbrew_setmem]: values
    read from this range are assumed constant and folded. *)
let dbrew_set_mem r lo hi =
  r.cfg.Rewriter.mem_ranges <- (lo, hi) :: r.cfg.Rewriter.mem_ranges

(** Bound for call inlining depth. *)
let dbrew_set_inline_depth r d = r.cfg.Rewriter.inline_depth <- d

(** Custom error handler: receives the typed failure, returns the
    function address to use instead. *)
let dbrew_set_error_handler r h = r.error_handler <- Some h

(* ------------------------------------------------------------------ *)
(* Specialization memo cache                                           *)
(* ------------------------------------------------------------------ *)

(* In the serving scenario the same specialization request arrives over
   and over (same function, same fixed parameters, same fixed-memory
   contents); re-running the rewriter each time is pure waste.  The
   memo cache keys on everything the rewrite depends on — the image,
   the entry, the rewriter configuration, the bytes of the original
   function and the bytes of every fixed memory range — and returns the
   previously installed code.  Because the key includes content
   digests, installing fresh code over the original entry or mutating a
   fixed range changes the key and naturally misses. *)

let memo_tbl : (string, int * Insn.item list) Hashtbl.t = Hashtbl.create 64

let memo_hits = ref 0
let memo_misses = ref 0

(** (hits, misses) of the rewrite memo cache since start/reset. *)
let memo_stats () = (!memo_hits, !memo_misses)

let memo_reset () =
  Hashtbl.reset memo_tbl;
  memo_hits := 0;
  memo_misses := 0

(* digest of the original function's code: decode until the first ret
   (bounded), then hash the raw bytes of that extent *)
let code_digest mem entry =
  let read = Mem.read_u8 mem in
  let rec extent a n =
    if n >= 4096 then a - entry
    else
      match Decode.decode ~read a with
      | Insn.Ret, len -> a + len - entry
      | _, len -> extent (a + len) (n + 1)
      | exception _ -> a - entry
  in
  Digest.string (Mem.read_bytes mem entry (max (extent entry 0) 1))

let memo_key (r : t) =
  let mem = r.img.Image.cpu.Cpu.mem in
  let ranges = List.sort compare r.cfg.Rewriter.mem_ranges in
  let range_bytes =
    List.map (fun (lo, hi) -> Mem.read_bytes mem lo (max (hi - lo) 0)) ranges
  in
  Digest.string
    (Marshal.to_string
       ( r.img.Image.uid, r.entry,
         List.sort compare r.cfg.Rewriter.params,
         ranges, range_bytes,
         r.cfg.Rewriter.inline_depth, r.cfg.Rewriter.max_emit,
         r.cfg.Rewriter.max_variants, r.cfg.Rewriter.max_seconds,
         code_digest mem r.entry )
       [])

(** Rewrite; returns the new function's address (a drop-in replacement
    with the same signature).  On failure the error handler decides;
    the default returns the original function.  Successful rewrites are
    memoized: a repeated request with the same entry, configuration and
    fixed-parameter/memory contents returns the already-installed code
    without re-running the rewriter ([memo:false] forces a fresh
    rewrite, e.g. to measure compile time). *)
let dbrew_rewrite ?(memo = true) (r : t) : int =
  (* While fault injection is live the memo must stay out of the way:
     a hit would bypass the injection points, and a result produced
     under injection must never be remembered as a success. *)
  let memo = memo && not (Fault.active ()) in
  let key = if memo then Some (memo_key r) else None in
  (* a memoized address whose installed content was quarantined since
     must not be served again; drop it and rewrite from scratch (the
     install path re-checks the content against the blacklist) *)
  let served =
    match Option.bind key (Hashtbl.find_opt memo_tbl) with
    | Some (addr, _) as served -> (
      match Image.digest_of_addr r.img addr with
      | Some d when Obrew_fault.Quarantine.mem d ->
        (match key with Some k -> Hashtbl.remove memo_tbl k | None -> ());
        None
      | _ -> served)
    | None -> None
  in
  match served with
  | Some (addr, items) ->
    incr memo_hits;
    r.last_error <- None;
    r.emitted_items <- items;
    addr
  | None -> (
    if memo then incr memo_misses;
    match
      let items =
        Rewriter.rewrite ~cfg:r.cfg ~mem:r.img.Image.cpu.Cpu.mem
          ~entry:r.entry
      in
      let items = Sabotage.maybe_corrupt "sabotage.rewrite.item" items in
      (items, Image.install_code ~dedup:true r.img items)
    with
    | items, addr ->
      r.last_error <- None;
      r.emitted_items <- items;
      (match key with
       | Some k -> Hashtbl.replace memo_tbl k (addr, items)
       | None -> ());
      Obrew_observe.Flight.(
        emit Dbrew_rewrite ~a:r.entry ~b:addr
          ~detail:(Printf.sprintf "%d items" (List.length items)));
      addr
    | exception Err.Error e -> (
      r.last_error <- Some e;
      match r.error_handler with
      | Some h -> h e
      | None -> r.entry (* default: fall back to the original *)))

(** The rewritten code of the last successful {!dbrew_rewrite}, for
    dumps (Fig. 8). *)
let dbrew_last_code r = r.emitted_items
