(** DBrew: dynamic binary rewriting with specialization, as described
    in Sec. II of the paper (and in the predecessor paper [7]).

    The rewriter decodes the original function, meta-emulates it with a
    mix of known and unknown values, and emits new binary code:
    instructions whose inputs are all known disappear (their results
    are propagated), partially-known instructions are copied with
    operands replaced by immediates or folded addresses, and branches
    with known conditions are followed directly — unrolling loops and
    inlining calls. *)

open Obrew_x86
open Obrew_fault
open Insn
open Meta
module Prov = Obrew_provenance.Provenance

(* Rewriter failures are typed errors.  The generic rewriting
   machinery (trace management, emission budgets, unsupported
   constructs) reports stage [Encode] — it fails while producing new
   binary code; decode and meta-emulation failures keep their own
   stages ([Decode]/[Emulate]) with the faulting address attached. *)
let fail fmt = Err.fail Err.Encode fmt

type config = {
  mutable params : (int * int64) list;    (* fixed parameter values *)
  mutable mem_ranges : (int * int) list;  (* [lo, hi) of fixed memory *)
  mutable inline_depth : int;
  mutable max_emit : int;                 (* emitted instruction budget *)
  mutable max_variants : int;
  mutable max_seconds : float;            (* wall-clock rewrite deadline *)
}

let default_config () =
  { params = []; mem_ranges = []; inline_depth = 4; max_emit = 20000;
    max_variants = 256; max_seconds = 10.0 }

type rw = {
  cfg : config;
  mem : Mem.t;                             (* the image's memory *)
  scratch : Cpu.t;                         (* for exact emulation *)
  deadline : float;                        (* absolute Telemetry.Clock bound *)
  mutable out : item list;                 (* reversed *)
  mutable emitted : int;
  mutable next_label : int;
  labels : (int, (int * Meta.t * int) list) Hashtbl.t;
  (* pc -> variants: (label, state at trace point, stack drift) *)
  work : work_item Queue.t;
}
and work_item = {
  w_pc : int;
  w_st : Meta.t;
  w_label : int;
  w_orig_c : int;
  w_emit_c : int;
  w_inline : int;
}

let emit rw i =
  Fault.point "rewrite.emit";
  rw.emitted <- rw.emitted + 1;
  if rw.emitted > rw.cfg.max_emit then
    fail "emission budget of %d instructions exceeded" rw.cfg.max_emit;
  (* wall-clock deadline, checked coarsely to keep emission cheap *)
  if rw.emitted land 255 = 0
     && Obrew_telemetry.Telemetry.Clock.now () > rw.deadline
  then
    fail "rewrite deadline of %.1fs exceeded" rw.cfg.max_seconds;
  rw.out <- I i :: rw.out

let emit_label rw l = rw.out <- L l :: rw.out

let in_fixed rw a =
  List.exists (fun (lo, hi) -> a >= lo && a < hi) rw.cfg.mem_ranges

(* ------------------------------------------------------------------ *)
(* Instruction classification                                          *)
(* ------------------------------------------------------------------ *)

let mem_of_operand = function OMem m -> Some m | _ -> None

let gpr_of_operand = function
  | OReg r -> [ r ]
  | OReg8H r -> [ r ]
  | OMem _ | OImm _ -> []

let xop_mem = function Xm m -> Some m | Xr _ -> None

(* (gpr reads, mem read, mem write, involves xmm, reads adc-style
   carry, writes a gpr list, writes flags) for "simple" instructions *)
type io = {
  rr : Reg.gpr list;
  wr : Reg.gpr list;
  mem_r : mem_addr option;
  mem_w : mem_addr option;
  xmm : bool;
  needs_cf : bool;
  wf : bool;
}

let simple_io (i : insn) : io option =
  let none =
    { rr = []; wr = []; mem_r = None; mem_w = None; xmm = false;
      needs_cf = false; wf = false }
  in
  match i with
  | Nop _ -> Some none
  | Mov (_, dst, src) ->
    Some
      { none with
        rr = gpr_of_operand src
             @ (match dst with OMem _ -> gpr_of_operand dst | _ -> []);
        wr = (match dst with OReg r | OReg8H r -> [ r ] | _ -> []);
        mem_r = mem_of_operand src;
        mem_w = mem_of_operand dst }
  | Movabs (r, _) -> Some { none with wr = [ r ] }
  | Movzx (_, d, _, src) | Movsx (_, d, _, src) ->
    Some
      { none with rr = gpr_of_operand src; wr = [ d ];
        mem_r = mem_of_operand src }
  | Lea (d, m) ->
    ignore m;
    Some { none with wr = [ d ] } (* driver resolves the address *)
  | Alu (op, _, dst, src) ->
    Some
      { none with
        rr = gpr_of_operand dst @ gpr_of_operand src;
        wr = (if op = Cmp then []
              else match dst with OReg r | OReg8H r -> [ r ] | _ -> []);
        mem_r =
          (match mem_of_operand src, mem_of_operand dst with
           | Some m, _ -> Some m
           | None, Some m -> Some m (* rmw reads too *)
           | _ -> None);
        mem_w = (if op = Cmp then None else mem_of_operand dst);
        needs_cf = (op = Adc || op = Sbb);
        wf = true }
  | Test (_, a, b) ->
    Some
      { none with rr = gpr_of_operand a @ gpr_of_operand b;
        mem_r =
          (match mem_of_operand a with Some m -> Some m
                                     | None -> mem_of_operand b);
        wf = true }
  | Imul2 (_, d, src) ->
    Some
      { none with rr = (d :: gpr_of_operand src); wr = [ d ];
        mem_r = mem_of_operand src; wf = true }
  | Imul3 (_, d, src, _) ->
    Some
      { none with rr = gpr_of_operand src; wr = [ d ];
        mem_r = mem_of_operand src; wf = true }
  | Idiv (_, src) ->
    Some
      { none with rr = Reg.RAX :: Reg.RDX :: gpr_of_operand src;
        wr = [ Reg.RAX; Reg.RDX ]; mem_r = mem_of_operand src; wf = true }
  | Cqo | Cdq -> Some { none with rr = [ Reg.RAX ]; wr = [ Reg.RDX ] }
  | Shift (_, _, dst, cnt) ->
    Some
      { none with
        rr = gpr_of_operand dst @ (match cnt with ShCl -> [ Reg.RCX ]
                                                | ShImm _ -> []);
        wr = (match dst with OReg r | OReg8H r -> [ r ] | _ -> []);
        mem_r = mem_of_operand dst; mem_w = mem_of_operand dst; wf = true }
  | Unop (_, _, dst) ->
    Some
      { none with rr = gpr_of_operand dst;
        wr = (match dst with OReg r | OReg8H r -> [ r ] | _ -> []);
        mem_r = mem_of_operand dst; mem_w = mem_of_operand dst; wf = true }
  | SseMov (_, d, s) ->
    Some { none with xmm = true; mem_r = xop_mem s; mem_w = xop_mem d }
  | MovqXR (_, r) -> Some { none with rr = [ r ]; xmm = true }
  | MovqRX (r, _) -> Some { none with wr = [ r ]; xmm = true }
  | SseArith (_, _, _, s) | SseLogic (_, _, s) | Cvtsd2ss (_, s)
  | Cvtss2sd (_, s) | Unpcklpd (_, s) | Shufpd (_, s, _) | Padd (_, _, s) ->
    Some { none with xmm = true; mem_r = xop_mem s }
  | Ucomis (_, _, s) ->
    Some { none with xmm = true; mem_r = xop_mem s; wf = true }
  | Cvtsi2sd (_, _, src) ->
    Some
      { none with rr = gpr_of_operand src; xmm = true;
        mem_r = mem_of_operand src }
  | Cvttsd2si (r, _, s) ->
    Some { none with wr = [ r ]; xmm = true; mem_r = xop_mem s }
  | Cmov _ | Setcc _ -> None (* handled separately *)
  | Push _ | Pop _ | Leave | Call _ | CallInd _ | Ret | Jmp _ | JmpInd _
  | Jcc _ | Ud2 | Int3 -> None

(* ------------------------------------------------------------------ *)
(* Address resolution under the meta-state                             *)
(* ------------------------------------------------------------------ *)

type maddr =
  | AbsKnown of int            (* absolute, fully known *)
  | StackOff of int            (* original-frame-relative *)
  | AUnknown

let resolve_addr st (m : mem_addr) : maddr =
  (* rip mems are absolutized at fetch; treat a stray one as unknown
     rather than misreading its raw displacement as an absolute *)
  if m.seg <> None || m.rip then AUnknown
  else
    let base =
      match m.base with
      | None -> Known 0L
      | Some r -> get st r
    in
    let index =
      match m.index with
      | None -> Some 0
      | Some (r, sc) -> (
        match get st r with
        | Known v -> Some (Int64.to_int v * scale_factor sc)
        | _ -> None)
    in
    match base, index with
    | Known b, Some i -> AbsKnown (Int64.to_int b + i + m.disp)
    | RspOff c, Some i -> StackOff (c + i + m.disp)
    | _ -> AUnknown

(* ------------------------------------------------------------------ *)
(* The rewriting engine                                                *)
(* ------------------------------------------------------------------ *)

type tstate = {
  st : Meta.t;
  mutable orig_c : int;    (* rsp offset in the original's frame *)
  mutable emit_c : int;    (* rsp offset in the emitted code's frame *)
  mutable inline_depth : int;
}

(* original-frame offset -> displacement from the emitted rsp *)
let emitted_disp ts off = off - ts.emit_c

(* per-address variant budget before widening kicks in *)
let addr_budget = 4

(* [`Existing (l, mats)]: jump to label [l] after materializing [mats];
   [`Fresh (l, st)]: emit a new variant under state [st] (possibly a
   widened join); [`Widen (l, st)]: like fresh, but the caller must
   queue the widened variant and jump to it. *)
let get_label rw pc ~drift (st : Meta.t) :
    [ `Existing of int * Reg.gpr list
    | `Fresh of int
    | `Widen of int * Meta.t * Reg.gpr list ] =
  let variants = Option.value ~default:[] (Hashtbl.find_opt rw.labels pc) in
  let compatible_variant =
    List.find_map
      (fun (l, st0, drift0) ->
        if drift0 <> drift then None
        else
          match Meta.compatible ~target:st0 st with
          | Some mats -> Some (l, mats)
          | None -> None)
      variants
  in
  match compatible_variant with
  | Some (l, mats) -> `Existing (l, mats)
  | None ->
    if Hashtbl.length rw.labels > rw.cfg.max_variants then
      fail "too many code variants";
    let l = rw.next_label in
    rw.next_label <- l + 1;
    let same_drift =
      List.filter (fun (_, _, d0) -> d0 = drift) variants
    in
    if List.length same_drift < addr_budget then begin
      Hashtbl.replace rw.labels pc
        ((l, Meta.copy st, drift) :: variants);
      `Fresh l
    end
    else begin
      (* widen against the most recent same-drift variant *)
      let _, recent, _ = List.hd same_drift in
      let merged = Meta.join recent st in
      let mats =
        match Meta.compatible ~target:merged st with
        | Some m -> m
        | None -> fail "widening produced an incompatible state"
      in
      Hashtbl.replace rw.labels pc ((l, Meta.copy merged, drift) :: variants);
      `Widen (l, merged, mats)
    end

(* materialize a known register value into the emitted code *)
let materialize rw ts r =
  let i = Reg.index r in
  if not ts.st.mat.(i) then begin
    (match ts.st.regs.(i) with
     | Known v ->
       if Encode.fits_int32 v then
         emit rw (Mov (W64, OReg r, OImm v))
       else emit rw (Movabs (r, v))
     | RspOff c ->
       emit rw (Lea (r, mem_base ~disp:(emitted_disp ts c) Reg.RSP))
     | Unknown -> ());
    set_materialized ts.st r
  end

(* fold known registers inside a memory operand; may materialize *)
let fold_mem rw ts (m : mem_addr) : mem_addr =
  if m.rip then m (* absolutized at fetch; never fold a stray one *)
  else
  let base_known, bdisp, bkeep =
    match m.base with
    | None -> (true, 0, None)
    | Some r -> (
      match get ts.st r with
      | Known v when Encode.fits_int32 v -> (true, Int64.to_int v, None)
      | RspOff c ->
        (* rewrite relative to the emitted rsp *)
        (true, emitted_disp ts c, Some Reg.RSP)
      | _ -> (false, 0, Some r))
  in
  ignore base_known;
  let idx_disp, ikeep =
    match m.index with
    | None -> (0, None)
    | Some (r, sc) -> (
      match get ts.st r with
      | Known v -> (Int64.to_int v * scale_factor sc, None)
      | RspOff _ ->
        materialize rw ts r;
        (0, Some (r, sc))
      | Unknown -> (0, Some (r, sc)))
  in
  { m with base = bkeep; index = ikeep; disp = m.disp + bdisp + idx_disp }

(* substitute a known register source operand by an immediate where the
   instruction supports it; otherwise materialize *)
let subst_src rw ts ~(imm_ok : bool) (op : operand) : operand =
  match op with
  | OReg r -> (
    match get ts.st r with
    | Known v when imm_ok && Encode.fits_int32 v -> OImm v
    | Known _ | RspOff _ ->
      materialize rw ts r;
      op
    | Unknown -> op)
  | OReg8H r -> (
    match get ts.st r with
    | Known _ | RspOff _ -> materialize rw ts r; op
    | Unknown -> op)
  | OMem m -> OMem (fold_mem rw ts m)
  | OImm _ -> op

(* a destination (or read-modify-write) register must hold its real
   value in the emitted code *)
let force_reg rw ts (op : operand) : operand =
  match op with
  | OReg r | OReg8H r -> (
    match get ts.st r with
    | Known _ | RspOff _ -> materialize rw ts r; op
    | Unknown -> op)
  | OMem m -> OMem (fold_mem rw ts m)
  | OImm _ -> op

let xop_subst rw ts = function
  | Xm m -> Xm (fold_mem rw ts m)
  | x -> x

(* run one instruction on the scratch CPU with all inputs known *)
let emulate rw ts (i : insn) (io : io) ~(mem_imm : int64 option) : unit =
  let cpu = rw.scratch in
  (* bind inputs *)
  List.iter
    (fun r ->
      match get ts.st r with
      | Known v -> Cpu.set_reg cpu W64 r v
      | _ -> fail "emulate: unknown input")
    io.rr;
  (match ts.st.flags.(Meta.cf) with
   | FK b -> cpu.Cpu.cf <- b
   | FU -> if io.needs_cf then fail "emulate: unknown carry");
  (* substitute the known memory operand by an immediate *)
  let subst_mem op =
    match op, mem_imm with
    | OMem _, Some v -> OImm v
    | op, _ -> op
  in
  let i' =
    match i with
    | Mov (w, d, s) -> Mov (w, d, subst_mem s)
    | Movzx (dw, d, sw, s) -> Movzx (dw, d, sw, subst_mem s)
    | Movsx (dw, d, sw, s) -> Movsx (dw, d, sw, subst_mem s)
    (* cmp/test read both operands; either may be the memory one *)
    | Alu (Cmp, w, d, s) -> Alu (Cmp, w, subst_mem d, subst_mem s)
    | Alu (op, w, d, s) -> Alu (op, w, d, subst_mem s)
    | Test (w, a, b) -> Test (w, subst_mem a, subst_mem b)
    | Imul2 (w, d, s) -> Imul2 (w, d, subst_mem s)
    | Imul3 (w, d, s, im) -> Imul3 (w, d, subst_mem s, im)
    | Idiv (w, s) -> Idiv (w, subst_mem s)
    | i -> i
  in
  (match i' with
   | Movzx (_, _, _, OImm _) | Movsx (_, _, _, OImm _) -> (
     (* the CPU cannot execute these with immediates; compute here *)
     match i' with
     | Movzx (dw, d, sw, OImm v) ->
       let masked =
         Int64.logand v
           (Int64.sub (Int64.shift_left 1L (width_bits sw)) 1L)
       in
       Cpu.set_reg cpu dw d masked
     | Movsx (dw, d, sw, OImm v) ->
       let sh = 64 - width_bits sw in
       let s = Int64.shift_right (Int64.shift_left v sh) sh in
       Cpu.set_reg cpu dw d s
     | _ -> fail "emulate: impossible extension shape")
   | _ ->
     (* emulator failures propagate as typed [Emulate] errors *)
     Fault.point "emulate.scratch";
     ignore (Cpu.exec cpu i'));
  (* read back *)
  List.iter (fun r -> set ts.st r (Known (Cpu.get_reg64 cpu r))) io.wr;
  if io.wf then begin
    ts.st.flags.(Meta.zf) <- FK cpu.Cpu.zf;
    ts.st.flags.(Meta.sf) <- FK cpu.Cpu.sf;
    ts.st.flags.(Meta.cf) <- FK cpu.Cpu.cf;
    ts.st.flags.(Meta.of_) <- FK cpu.Cpu.o_f;
    ts.st.flags.(Meta.pf) <- FK cpu.Cpu.pf;
    ts.st.flags.(Meta.af) <- FK cpu.Cpu.af
  end

(* value of an operand if known *)
let operand_value rw ts w (op : operand) : int64 option =
  match op with
  | OImm v -> Some v
  | OReg r -> (
    match get ts.st r with
    | Known v -> Some (Cpu.trunc w v)
    | _ -> None)
  | OReg8H r -> (
    match get ts.st r with
    | Known v ->
      Some (Int64.logand (Int64.shift_right_logical v 8) 0xFFL)
    | _ -> None)
  | OMem m -> (
    match resolve_addr ts.st m with
    | AbsKnown a when in_fixed rw a ->
      Some
        (match w with
         | W8 -> Int64.of_int (Mem.read_u8 rw.mem a)
         | W16 -> Int64.of_int (Mem.read_u16 rw.mem a)
         | W32 -> Int64.of_int (Mem.read_u32 rw.mem a)
         | W64 -> Mem.read_u64 rw.mem a)
    | StackOff o -> (
      match slot_get ts.st o with Known v -> Some (Cpu.trunc w v)
                                | _ -> None)
    | _ -> None)

let width_of_insn = function
  | Mov (w, _, _) | Alu (_, w, _, _) | Test (w, _, _) | Imul2 (w, _, _)
  | Imul3 (w, _, _, _) | Idiv (w, _) | Shift (_, w, _, _) | Unop (_, w, _) ->
    w
  | Movzx (_, _, sw, _) | Movsx (_, _, sw, _) -> sw
  | _ -> W64

(* try to fully emulate [i]; true on success *)
let try_emulate rw ts (i : insn) (io : io) : bool =
  if io.xmm || io.mem_w <> None then false
  else begin
    let regs_known =
      List.for_all
        (fun r -> match get ts.st r with
           | Known _ -> true
           | RspOff _ | Unknown -> false)
        io.rr
    in
    let cf_ok =
      (not io.needs_cf) || (match ts.st.flags.(Meta.cf) with FK _ -> true
                                                           | FU -> false)
    in
    if not (regs_known && cf_ok) then false
    else
      match io.mem_r with
      | None ->
        emulate rw ts i io ~mem_imm:None;
        true
      | Some m -> (
        let w = width_of_insn i in
        match operand_value rw ts w (OMem m) with
        | Some v ->
          emulate rw ts i io ~mem_imm:(Some v);
          true
        | None -> false)
  end

(* after emitting an instruction, update the meta-state *)
let post_emit ts (io : io) (i : insn) =
  List.iter (fun r -> set ts.st r Unknown) io.wr;
  if io.wf then forget_flags ts.st;
  (* stores to tracked stack slots *)
  match io.mem_w, i with
  | Some m, Mov (w, OMem _, src) -> (
    match resolve_addr ts.st m with
    | StackOff o ->
      if w = W64 then
        slot_set ts.st o
          (match src with
           | OImm v -> Known v
           | OReg r -> get ts.st r
           | _ -> Unknown)
      else slot_set ts.st o Unknown
    | AbsKnown _ | AUnknown ->
      (* a store through an unknown pointer is assumed not to alias the
         frame (compiler-generated code does not do that) *)
      ())
  | Some m, _ -> (
    match resolve_addr ts.st m with
    | StackOff o -> slot_set ts.st o Unknown
    | _ -> ())
  | None, _ -> ()

(* emit [i] with operand substitution/folding, then update the state *)
let emit_subst rw ts (i : insn) (io : io) =
  let i' =
    match i with
    | Mov (w, dst, src) ->
      let src = subst_src rw ts ~imm_ok:(w <> W64 || true) src in
      (* mov r64, imm32 sign-extends; restrict to values that survive *)
      let src =
        match src, w with
        | OImm v, W64 when not (Encode.fits_int32 v) ->
          (match dst with
           | OReg _ -> src (* handled below as movabs *)
           | _ -> force_reg rw ts (match i with Mov (_, _, s) -> s
                                              | _ ->
                                                fail "emit_subst: mov \
                                                      lost its source"))
        | _ -> src
      in
      (match dst, src with
       | OReg d, OImm v when not (Encode.fits_int32 v) -> Movabs (d, v)
       | _ -> Mov (w, force_reg rw ts dst, src))
    | Movabs _ -> i
    | Movzx (dw, d, sw, src) -> Movzx (dw, d, sw, force_reg rw ts src)
    | Movsx (dw, d, sw, src) -> Movsx (dw, d, sw, force_reg rw ts src)
    | Lea (d, m) -> Lea (d, fold_mem rw ts m)
    | Alu (op, w, dst, src) ->
      Alu (op, w, force_reg rw ts dst, subst_src rw ts ~imm_ok:true src)
    | Test (w, a, b) ->
      Test (w, force_reg rw ts a, subst_src rw ts ~imm_ok:true b)
    | Imul2 (w, d, src) -> (
      match subst_src rw ts ~imm_ok:true src with
      | OImm v ->
        materialize rw ts d;
        Imul3 (w, d, OReg d, v)
      | src' ->
        materialize rw ts d;
        Imul2 (w, d, src'))
    | Imul3 (w, d, src, imm) -> Imul3 (w, d, force_reg rw ts src, imm)
    | Idiv (w, src) ->
      materialize rw ts Reg.RAX;
      materialize rw ts Reg.RDX;
      Idiv (w, force_reg rw ts src)
    | Cqo | Cdq ->
      materialize rw ts Reg.RAX;
      i
    | Shift (op, w, dst, ShCl) -> (
      match get ts.st Reg.RCX with
      | Known v ->
        Shift (op, w, force_reg rw ts dst,
               ShImm (Int64.to_int v land (if w = W64 then 63 else 31)))
      | _ -> Shift (op, w, force_reg rw ts dst, ShCl))
    | Shift (op, w, dst, cnt) -> Shift (op, w, force_reg rw ts dst, cnt)
    | Unop (op, w, dst) -> Unop (op, w, force_reg rw ts dst)
    | SseMov (k, d, s) -> SseMov (k, xop_subst rw ts d, xop_subst rw ts s)
    | MovqXR (x, r) -> materialize rw ts r; MovqXR (x, r)
    | MovqRX _ -> i
    | SseArith (op, p, d, s) -> SseArith (op, p, d, xop_subst rw ts s)
    | SseLogic (op, d, s) -> SseLogic (op, d, xop_subst rw ts s)
    | Ucomis (p, d, s) -> Ucomis (p, d, xop_subst rw ts s)
    | Cvtsi2sd (x, w, src) -> Cvtsi2sd (x, w, force_reg rw ts src)
    | Cvttsd2si (r, w, s) -> Cvttsd2si (r, w, xop_subst rw ts s)
    | Cvtsd2ss (x, s) -> Cvtsd2ss (x, xop_subst rw ts s)
    | Cvtss2sd (x, s) -> Cvtss2sd (x, xop_subst rw ts s)
    | Unpcklpd (x, s) -> Unpcklpd (x, xop_subst rw ts s)
    | Shufpd (x, s, imm) -> Shufpd (x, xop_subst rw ts s, imm)
    | Padd (w, x, s) -> Padd (w, x, xop_subst rw ts s)
    | Nop _ -> i
    | _ -> fail "emit_subst on a control instruction"
  in
  (* the state update must see the ORIGINAL operands for slot tracking *)
  emit rw i';
  post_emit ts io i

(* decode helper; failures propagate as typed [Decode] errors with the
   faulting address.  RIP-relative operands are absolutized here: the
   raw disp32 is relative to the end of the *original* instruction, so
   re-emitting it verbatim at a different address would silently
   retarget the access — as an absolute operand it stays correct
   wherever the specialized copy lands (and resolve_addr/fold_mem see
   an ordinary known-base address). *)
let fetch rw pc =
  let i, len = Decode.decode ~read:(Mem.read_u8 rw.mem) pc in
  let i =
    Insn.map_mem
      (fun (m : mem_addr) ->
        if m.rip then { m with rip = false; disp = m.disp + pc + len }
        else m)
      i
  in
  (i, len)

exception Trace_done

(* continue processing at [pc]: trace-point bookkeeping *)
let rec goto rw ts pc =
  match get_label rw pc ~drift:(ts.orig_c - ts.emit_c) ts.st with
  | `Existing (l, mats) ->
    List.iter (materialize rw ts) mats;
    emit rw (Jmp (Lbl l));
    raise Trace_done
  | `Fresh l ->
    emit_label rw l;
    run_trace rw ts pc
  | `Widen (l, merged, mats) ->
    List.iter (materialize rw ts) mats;
    emit rw (Jmp (Lbl l));
    Queue.add
      { w_pc = pc; w_st = merged; w_label = l; w_orig_c = ts.orig_c;
        w_emit_c = ts.emit_c; w_inline = ts.inline_depth }
      rw.work;
    raise Trace_done

and start_work rw =
  while not (Queue.is_empty rw.work) do
    let w = Queue.pop rw.work in
    emit_label rw w.w_label;
    let ts =
      { st = w.w_st; orig_c = w.w_orig_c; emit_c = w.w_emit_c;
        inline_depth = w.w_inline }
    in
    (try run_trace rw ts w.w_pc with Trace_done -> ())
  done

and run_trace rw ts pc : unit =
  let i, len = fetch rw pc in
  let next = pc + len in
  match i with
  | Alu ((Xor | Sub), w, OReg a, OReg b)
    when Reg.equal a b && (w = W32 || w = W64) ->
    (* idiomatic zeroing: result known even when the input is not *)
    set ts.st a (Known 0L);
    ts.st.flags.(Meta.zf) <- FK true;
    ts.st.flags.(Meta.sf) <- FK false;
    ts.st.flags.(Meta.cf) <- FK false;
    ts.st.flags.(Meta.of_) <- FK false;
    ts.st.flags.(Meta.pf) <- FK true;
    ts.st.flags.(Meta.af) <- FK false;
    run_trace rw ts next
  | Ret -> (
    match slot_get ts.st ts.orig_c with
    | Known ra when ts.inline_depth > 0 ->
      (* return from an inlined call *)
      ts.st.slots <- List.remove_assoc ts.orig_c ts.st.slots;
      ts.orig_c <- ts.orig_c + 8;
      set ts.st Reg.RSP (RspOff ts.orig_c);
      ts.inline_depth <- ts.inline_depth - 1;
      run_trace rw ts (Int64.to_int ra)
    | _ ->
      (* the ABI's return registers must hold their real values *)
      materialize rw ts Reg.RAX;
      materialize rw ts Reg.RDX;
      emit rw Ret;
      raise Trace_done)
  | Jmp (Abs t) -> goto rw ts t
  | Jmp (Lbl _) | Jcc (_, Lbl _) | Call (Lbl _) -> fail "label in input"
  | JmpInd op -> (
    (* devirtualize: when the meta-state pins the operand — a register
       holding a known value, or a jump-table load at a known address
       inside the declared fixed memory — the indirect jump continues
       the trace directly at that target, exactly like [Jmp (Abs t)].
       The emitted code contains no indirect branch at all. *)
    match operand_value rw ts W64 op with
    | Some t ->
      Prov.record ~pass:"dbrew" ~action:Prov.Specialized
        ~prov:(Prov.make ~addr:pc ~ord:0)
        ~detail:(Printf.sprintf "indirect jump devirtualized to %#Lx" t);
      goto rw ts (Int64.to_int t)
    | None ->
      Err.fail ~addr:pc Err.Encode
        "indirect jump: target not a specialization-time constant")
  | CallInd op -> (
    (* same devirtualization; a pinned target then takes the ordinary
       direct-call path (inlined under the budget, else emitted as a
       direct call) *)
    match operand_value rw ts W64 op with
    | Some t ->
      let t = Int64.to_int t in
      Prov.record ~pass:"dbrew" ~action:Prov.Specialized
        ~prov:(Prov.make ~addr:pc ~ord:0)
        ~detail:(Printf.sprintf "indirect call devirtualized to %#x" t);
      if ts.inline_depth < rw.cfg.inline_depth then begin
        ts.orig_c <- ts.orig_c - 8;
        set ts.st Reg.RSP (RspOff ts.orig_c);
        slot_set ts.st ts.orig_c (Known (Int64.of_int next));
        ts.inline_depth <- ts.inline_depth + 1;
        run_trace rw ts t
      end
      else begin
        emit rw (Call (Abs t));
        List.iter (fun r -> set ts.st r Unknown) Reg.caller_saved;
        forget_flags ts.st;
        run_trace rw ts next
      end
    | None ->
      Err.fail ~addr:pc Err.Encode
        "indirect call: target not a specialization-time constant")
  | Jcc (c, Abs t) -> (
    match Meta.cond ts.st c with
    | Some true -> goto rw ts t
    | Some false -> run_trace rw ts next
    | None ->
      (* both sides survive: queue the taken side, continue inline *)
      (match get_label rw t ~drift:(ts.orig_c - ts.emit_c) ts.st with
       | `Existing (lbl, []) -> emit rw (Jcc (c, Lbl lbl))
       | `Existing (lbl, mats) ->
         (* the target needs materialized registers this path does not
            have: route the taken edge through a stub *)
         let stub = rw.next_label in
         rw.next_label <- stub + 1;
         emit rw (Jcc (c, Lbl stub));
         let after = rw.next_label in
         rw.next_label <- after + 1;
         emit rw (Jmp (Lbl after));
         emit_label rw stub;
         let ts' =
           { ts with st = Meta.copy ts.st }
         in
         List.iter (materialize rw ts') mats;
         emit rw (Jmp (Lbl lbl));
         emit_label rw after
       | `Fresh lbl ->
         Queue.add
           { w_pc = t; w_st = Meta.copy ts.st; w_label = lbl;
             w_orig_c = ts.orig_c; w_emit_c = ts.emit_c;
             w_inline = ts.inline_depth }
           rw.work;
         emit rw (Jcc (c, Lbl lbl))
       | `Widen (lbl, merged, mats) ->
         let stub = rw.next_label in
         rw.next_label <- stub + 1;
         emit rw (Jcc (c, Lbl stub));
         let after = rw.next_label in
         rw.next_label <- after + 1;
         emit rw (Jmp (Lbl after));
         emit_label rw stub;
         let ts' = { ts with st = Meta.copy ts.st } in
         List.iter (materialize rw ts') mats;
         emit rw (Jmp (Lbl lbl));
         emit_label rw after;
         Queue.add
           { w_pc = t; w_st = merged; w_label = lbl; w_orig_c = ts.orig_c;
             w_emit_c = ts.emit_c; w_inline = ts.inline_depth }
           rw.work);
      run_trace rw ts next)
  | Call (Abs t) ->
    if ts.inline_depth < rw.cfg.inline_depth then begin
      (* inline: track the virtual return address; nothing is emitted *)
      ts.orig_c <- ts.orig_c - 8;
      set ts.st Reg.RSP (RspOff ts.orig_c);
      slot_set ts.st ts.orig_c (Known (Int64.of_int next));
      ts.inline_depth <- ts.inline_depth + 1;
      run_trace rw ts t
    end
    else begin
      emit rw (Call (Abs t));
      (* the ABI clobbers caller-saved state *)
      List.iter (fun r -> set ts.st r Unknown) Reg.caller_saved;
      forget_flags ts.st;
      run_trace rw ts next
    end
  | Push src ->
    let v =
      match src with
      | OImm x -> Known x
      | OReg r -> get ts.st r
      | _ -> Unknown
    in
    (* pushes are always emitted: the real stack must contain the value
       for the matching pop *)
    let src' = subst_src rw ts ~imm_ok:true src in
    let src' =
      match src' with
      | OImm x when not (Encode.fits_int32 x) ->
        force_reg rw ts src
      | s -> s
    in
    emit rw (Push src');
    ts.orig_c <- ts.orig_c - 8;
    ts.emit_c <- ts.emit_c - 8;
    set ts.st Reg.RSP (RspOff ts.orig_c);
    slot_set ts.st ts.orig_c v;
    run_trace rw ts next
  | Pop dst ->
    let v = slot_get ts.st ts.orig_c in
    emit rw (Pop dst);
    ts.orig_c <- ts.orig_c + 8;
    ts.emit_c <- ts.emit_c + 8;
    set ts.st Reg.RSP (RspOff ts.orig_c);
    (match dst with
     | OReg r ->
       set ts.st r v;
       set_materialized ts.st r (* the real pop wrote the register *)
     | _ -> ());
    run_trace rw ts next
  | Leave ->
    (* mov rsp, rbp; pop rbp *)
    (match get ts.st Reg.RBP with
     | RspOff c ->
       materialize rw ts Reg.RBP;
       emit rw Leave;
       ts.emit_c <- ts.emit_c + (c - ts.orig_c) + 8;
       ts.orig_c <- c + 8;
       set ts.st Reg.RSP (RspOff ts.orig_c);
       set ts.st Reg.RBP (slot_get ts.st c);
       set_materialized ts.st Reg.RBP
     | _ -> fail "leave with unknown frame pointer");
    run_trace rw ts next
  | Alu (op, W64, OReg r, OImm n)
    when Reg.equal r Reg.RSP && (op = Add || op = Sub) ->
    (* frame adjustment *)
    emit rw i;
    let d = if op = Add then Int64.to_int n else - (Int64.to_int n) in
    ts.orig_c <- ts.orig_c + d;
    ts.emit_c <- ts.emit_c + d;
    set ts.st Reg.RSP (RspOff ts.orig_c);
    run_trace rw ts next
  | Lea (d, m) -> (
    match resolve_addr ts.st m with
    | AbsKnown _ ->
      (* lea is plain arithmetic, not a memory access: recompute in
         full 64-bit space (AbsKnown's int is 63-bit and wraps wrong
         when a known operand has the top bits set) *)
      let known r =
        match get ts.st r with
        | Known v -> v
        | _ -> fail "lea: AbsKnown with unknown register"
      in
      let b = match m.base with None -> 0L | Some r -> known r in
      let i =
        match m.index with
        | None -> 0L
        | Some (r, sc) ->
          Int64.mul (known r) (Int64.of_int (scale_factor sc))
      in
      set ts.st d (Known Int64.(add (add b i) (of_int m.disp)));
      run_trace rw ts next
    | StackOff o ->
      emit rw (Lea (d, fold_mem rw ts m));
      set ts.st d (RspOff o);
      set_materialized ts.st d;
      run_trace rw ts next
    | AUnknown ->
      emit rw (Lea (d, fold_mem rw ts m));
      set ts.st d Unknown;
      run_trace rw ts next)
  | Cmov (c, w, d, src) -> (
    match Meta.cond ts.st c with
    | Some true ->
      (* becomes a plain move *)
      run_trace_with rw ts (Mov (w, OReg d, src)) next
    | Some false -> run_trace rw ts next
    | None ->
      materialize rw ts d;
      let src' = force_reg rw ts src in
      emit rw (Cmov (c, w, d, src'));
      set ts.st d Unknown;
      run_trace rw ts next)
  | Setcc (c, dst) -> (
    match Meta.cond ts.st c, dst with
    | Some b, (OReg _ | OReg8H _) ->
      run_trace_with rw ts
        (Mov (W8, dst, OImm (if b then 1L else 0L)))
        next
    | _ ->
      let dst' = force_reg rw ts dst in
      emit rw (Setcc (c, dst'));
      (match dst with
       | OReg r -> set ts.st r Unknown
       | _ -> ());
      run_trace rw ts next)
  | Ud2 | Int3 -> fail "trap instruction at 0x%x" pc
  | i -> run_trace_with rw ts i next

(* handle a "simple" instruction, then continue *)
and run_trace_with rw ts (i : insn) next =
  (match simple_io i with
   | Some io ->
     if not (try_emulate rw ts i io) then emit_subst rw ts i io
   | None -> fail "unclassified instruction %s" (Pp.insn i));
  run_trace rw ts next

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

(** Rewrite the function at [entry].  Returns the new code as assembly
    items (to be installed with {!Obrew_x86.Image.install_code}).
    Raises a typed {!Obrew_fault.Err.Error} when an unsupported
    construct is hit or a resource guard trips. *)
let rewrite ~(cfg : config) ~(mem : Mem.t) ~entry : item list =
  Fault.point ~addr:entry "rewrite.trace";
  let rw =
    { cfg; mem; scratch = Cpu.create ();
      deadline = Obrew_telemetry.Telemetry.Clock.now () +. cfg.max_seconds;
      out = []; emitted = 0;
      next_label = 0;
      labels = Hashtbl.create 32; work = Queue.create () }
  in
  let st = Meta.create () in
  (* fixed parameters, Fig. 3 *)
  let arg_regs = [| Reg.RDI; Reg.RSI; Reg.RDX; Reg.RCX; Reg.R8; Reg.R9 |] in
  List.iter
    (fun (i, v) ->
      if i < 0 || i > 5 then fail "parameter index out of range";
      (* NOT materialized: the rewritten function is a drop-in
         replacement and its callers pass arbitrary values in the
         fixed slots (Fig. 3: "uses 42 instead") *)
      set st arg_regs.(i) (Known v))
    cfg.params;
  let ts = { st; orig_c = 0; emit_c = 0; inline_depth = 0 } in
  (try goto rw ts entry with Trace_done -> ());
  start_work rw;
  List.rev rw.out
