(** x86-64 → IR lifting (Sec. III of the paper).

    [lift] translates the binary function at [entry] into an SSA IR
    function, using:
    - basic-block discovery with block splitting (III-B);
    - registers as SSA values with {e facets} and a facet cache; GPRs
      additionally carry a pointer facet so memory operands become
      [getelementptr] (III-C, III-E);
    - the six status flags as individual [i1] values plus the
      {e flag cache} reconstructing comparison predicates (III-D);
    - a virtual stack allocated with [alloca] (III-F);
    - [call]/[ret] mapped to IR calls/returns, leaving inlining
      decisions to the optimizer.

    The result is deliberately naive — heavy with per-block φ-nodes and
    flag algebra — exactly as the paper describes; the optimizer is
    responsible for cleaning it up. *)

type config = {
  flag_cache : bool;   (** Sec. III-D; off = the Fig. 6b failure mode *)
  facet_cache : bool;  (** Sec. III-C facet value caching *)
  use_gep : bool;      (** GEP addressing; off = raw inttoptr (ablation) *)
  stack_size : int;    (** virtual stack bytes (Sec. III-F) *)
  max_insns : int;     (** discovery instruction budget (resource guard) *)
  max_blocks : int;    (** discovery basic-block budget (resource guard) *)
  callee_sigs : (int * Obrew_ir.Ins.signature) list;
  (** signatures of direct call targets, keyed by address: "the called
      function [must] be at least declared with an appropriate
      signature" (Sec. III-B) *)
}

val default_config : config

(** [lift ~config ~read ~entry ~name sg] lifts the function at virtual
    address [entry], reading code bytes through [read], assuming the
    System V signature [sg] (up to six integer/pointer and eight
    [F64] parameters).

    @raise Obrew_fault.Err.Error with stage [Lift] on indirect jumps,
    unknown call targets, unsupported instructions or exceeded budgets,
    and with stage [Decode] (and the faulting address) on undecodable
    bytes. *)
val lift :
  ?config:config ->
  read:(int -> int) ->
  entry:int ->
  name:string ->
  Obrew_ir.Ins.signature ->
  Obrew_ir.Ins.func
