(** x86-64 → IR lifting, Sec. III of the paper.

    Function-level translation with:
    - basic-block discovery with block splitting (Sec. III-B);
    - registers as SSA values accessed through *facets* with a facet
      cache; general purpose registers additionally carry a pointer
      facet so memory operands become [getelementptr] (Sec. III-C/E);
    - the six status flags as individual [i1] values, plus the *flag
      cache* that reconstructs comparison predicates (Sec. III-D);
    - a virtual stack allocated with [alloca] (Sec. III-F);
    - [call]/[ret] mapped to IR calls and returns, leaving inlining
      decisions to the optimizer (Sec. III-B). *)

open Obrew_x86
open Obrew_ir
open Obrew_fault
open Ins

(* lifter failures are typed [Err.Lift] errors *)
let err fmt = Err.fail Err.Lift fmt

type config = {
  flag_cache : bool;   (* Sec. III-D *)
  facet_cache : bool;  (* Sec. III-C: cache non-primary facets *)
  use_gep : bool;      (* GEP-based addressing vs raw inttoptr (ablation) *)
  stack_size : int;    (* virtual stack bytes *)
  max_insns : int;     (* discovery instruction budget (resource guard) *)
  max_blocks : int;    (* discovery basic-block budget (resource guard) *)
  (* signatures of call targets, keyed by address *)
  callee_sigs : (int * signature) list;
}

let default_config =
  { flag_cache = true; facet_cache = true; use_gep = true;
    stack_size = 1024; max_insns = 20000; max_blocks = 2000;
    callee_sigs = [] }

(* ------------------------------------------------------------------ *)
(* Block discovery                                                     *)
(* ------------------------------------------------------------------ *)

type raw_block = {
  start : int;
  insns : (int * Insn.insn) list; (* without the terminator *)
  term : [ `Jmp of int
         | `Jcc of Insn.cc * int * int (* cc, target, fallthrough *)
         | `Ret
         | `Fall of int
         | `CallDir of int * int (* in-region call: target, return addr *)
         | `Switch of Insn.operand * int list
           (* indirect jump through [operand]: enumerated candidate
              targets, guarded at runtime on the loaded value *)
         | `CallSwitch of Insn.operand * int list * int
           (* indirect call: operand, candidates, return addr *)
         | `IndExit
           (* indirect branch with no derivable target set: the block
              side-exits (IR [Unreachable]) instead of mistranslating *) ];
}

module Tel = Obrew_telemetry.Telemetry
module Prov = Obrew_provenance.Provenance

(* Resolve a RIP-relative memory operand to the absolute address it
   names: the decoder keeps the raw disp32 (relative to the end of the
   instruction), and here — right after decoding, where the
   instruction extent is known — it becomes an ordinary absolute
   operand, which {!lift_addr} lowers through the pointer facet like
   any other constant address. *)
let resolve_rip a len i =
  Insn.map_mem
    (fun (m : Insn.mem_addr) ->
      if m.Insn.rip then
        { m with Insn.rip = false; disp = m.Insn.disp + a + len }
      else m)
    i

(* Cap on jump-table enumeration, and the plausibility window around
   the function entry within which an 8-byte table entry is accepted
   as a code address.  Enumeration quality is a coverage knob only:
   the lowering guards each candidate against the value actually
   loaded at runtime, so an under- or over-approximated table can
   cost a side-exit but never a mistranslation. *)
let max_table_entries = 64
let target_window = 0x100000

let discover ~read ~entry ~max_insns ~max_blocks ~callee_sigs :
    raw_block list =
  Fault.point ~addr:entry "lift.discover";
  (* pass 1: decode reachable instructions, collect leaders *)
  let insns : (int, Insn.insn * int) Hashtbl.t = Hashtbl.create 64 in
  let leaders : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.replace leaders entry ();
  let work = Queue.create () in
  Queue.add entry work;
  let count = ref 0 in
  (* registers holding a known [movabs] constant on the current linear
     decode run; cleared by any other instruction (conservative: no
     modeling of partial writes) and at every run boundary.  Used only
     to resolve the *operand base* of an indirect branch — the runtime
     guard re-checks the dispatched value, so stale or missing entries
     degrade coverage, not soundness. *)
  let consts : (int, int64) Hashtbl.t = Hashtbl.create 4 in
  (* enumerated candidate targets of resolved indirect branches,
     keyed by the branch instruction's address (consumed by pass 2) *)
  let ind_targets : (int, int list) Hashtbl.t = Hashtbl.create 4 in
  let read_u64 a =
    let v = ref 0L in
    for k = 7 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8)
             (Int64.of_int (read (a + k) land 0xff))
    done;
    !v
  in
  let plausible t =
    t > 0 && t > entry - target_window && t < entry + target_window
  in
  (* walk an 8-byte-entry table at [base] until the first implausible
     entry (or the cap) *)
  let enumerate_table base =
    let rec go k acc =
      if k >= max_table_entries then List.rev acc
      else
        let t = Int64.to_int (read_u64 (base + (8 * k))) in
        if plausible t then go (k + 1) (t :: acc) else List.rev acc
    in
    go 0 []
  in
  (* candidate target set of an indirect branch operand, from the
     constants live on this decode run *)
  let resolve_ind (op : Insn.operand) : int list =
    match op with
    | Insn.OReg r -> (
      match Hashtbl.find_opt consts (Reg.index r) with
      | Some v ->
        let t = Int64.to_int v in
        if plausible t then [ t ] else []
      | None -> [])
    | Insn.OMem m when not m.Insn.rip -> (
      match (m.Insn.base, m.Insn.index) with
      | Some b, (None | Some (_, Insn.S8)) -> (
        (* [jmp qword [b + i*8 + disp]]: a jump table at b+disp *)
        match Hashtbl.find_opt consts (Reg.index b) with
        | Some bv ->
          let base = Int64.to_int bv + m.Insn.disp in
          if m.Insn.index = None then
            let t = Int64.to_int (read_u64 base) in
            if plausible t then [ t ] else []
          else enumerate_table base
        | None -> [])
      | _ -> [])
    | _ -> []
  in
  let add_target t =
    Hashtbl.replace leaders t ();
    Queue.add t work
  in
  let dargs = if !Tel.enabled then Printf.sprintf "0x%x" entry else "" in
  Tel.span "decode.discover" ~args:dargs (fun () ->
  while not (Queue.is_empty work) do
    let a = ref (Queue.pop work) in
    Hashtbl.reset consts;
    let continue_ = ref (not (Hashtbl.mem insns !a)) in
    while !continue_ do
      incr count;
      if !count > max_insns then
        err "function too large to lift (budget: %d instructions)" max_insns;
      if Hashtbl.length leaders > max_blocks then
        err "function has too many basic blocks (budget: %d)" max_blocks;
      (* decode failures propagate as typed [Decode] errors carrying
         the faulting address *)
      let i, len = Decode.decode ~read !a in
      let i = resolve_rip !a len i in
      Hashtbl.replace insns !a (i, len);
      let next = !a + len in
      (match i with
       | Insn.Jmp (Insn.Abs t) ->
         add_target t;
         continue_ := false
       | Insn.Jcc (_, Insn.Abs t) ->
         add_target t;
         add_target next;
         continue_ := false
       | Insn.Ret -> continue_ := false
       | Insn.Call (Insn.Abs t) when not (List.mem_assoc t callee_sigs) ->
         (* no declared signature: an in-region call, lifted as
            push-return-address + branch and paired with [Ret] via the
            return-address guard chain; callee and continuation both
            become leaders *)
         add_target t;
         add_target next;
         continue_ := false
       | Insn.JmpInd op ->
         (match List.sort_uniq compare (resolve_ind op) with
          | [] -> ()
          | ts ->
            Hashtbl.replace ind_targets !a ts;
            List.iter add_target ts);
         continue_ := false
       | Insn.CallInd op ->
         (match List.sort_uniq compare (resolve_ind op) with
          | [] -> ()
          | ts ->
            Hashtbl.replace ind_targets !a ts;
            List.iter add_target ts;
            add_target next);
         continue_ := false
       | Insn.Jmp (Insn.Lbl _) | Insn.Jcc (_, Insn.Lbl _) ->
         Err.fail ~addr:!a Err.Lift "unresolved label in decoded stream"
       | Insn.Ud2 | Insn.Int3 ->
         Err.fail ~addr:!a Err.Lift "trap instruction at 0x%x" !a
       | _ ->
         (match i with
          | Insn.Movabs (r, v) -> Hashtbl.replace consts (Reg.index r) v
          | _ -> Hashtbl.reset consts);
         a := next;
         if Hashtbl.mem insns next then continue_ := false
         else if Hashtbl.mem leaders next then continue_ := false)
    done
  done);
  (* pass 2: form blocks; a block also ends right before another leader
     (block splitting, Sec. III-B) *)
  let starts =
    Hashtbl.fold (fun a () acc -> a :: acc) leaders []
    |> List.filter (Hashtbl.mem insns)
    |> List.sort compare
  in
  List.map
    (fun start ->
      let rec go a acc =
        match Hashtbl.find_opt insns a with
        | None -> Err.fail ~addr:a Err.Lift "fell off decoded code at 0x%x" a
        | Some (i, len) -> (
          let next = a + len in
          match i with
          | Insn.Jmp (Insn.Abs t) ->
            { start; insns = List.rev acc; term = `Jmp t }
          | Insn.Jcc (c, Insn.Abs t) ->
            { start; insns = List.rev acc; term = `Jcc (c, t, next) }
          | Insn.Ret -> { start; insns = List.rev acc; term = `Ret }
          | Insn.Call (Insn.Abs t) when not (List.mem_assoc t callee_sigs) ->
            { start; insns = List.rev acc; term = `CallDir (t, next) }
          | Insn.JmpInd op -> (
            match Hashtbl.find_opt ind_targets a with
            | Some ts -> { start; insns = List.rev acc; term = `Switch (op, ts) }
            | None -> { start; insns = List.rev acc; term = `IndExit })
          | Insn.CallInd op -> (
            match Hashtbl.find_opt ind_targets a with
            | Some ts ->
              { start; insns = List.rev acc; term = `CallSwitch (op, ts, next) }
            | None -> { start; insns = List.rev acc; term = `IndExit })
          | _ ->
            if Hashtbl.mem leaders next then
              { start; insns = List.rev ((a, i) :: acc); term = `Fall next }
            else go next ((a, i) :: acc))
      in
      go start [])
    starts

(* ------------------------------------------------------------------ *)
(* Lifting state                                                       *)
(* ------------------------------------------------------------------ *)

type facet =
  | F_i32 | F_i16 | F_i8 | F_i8h       (* GPR narrow facets *)
  | X_f64 | X_f32 | X_v2f64 | X_v4f32 | X_v2i64 | X_v4i32

let v2f64 = Vec (2, F64)
let v4f32 = Vec (4, F32)
let v2i64 = Vec (2, I64)
let v4i32 = Vec (4, I32)

type rstate = {
  gpr : value array;                  (* i64 facet (primary) *)
  gpr_ptr : value option array;       (* pointer facet *)
  xmm : value array;                  (* i128 facet (primary) *)
  mutable flags : value array;        (* zf sf cf of pf af *)
  gpr_facets : (int * facet, value) Hashtbl.t;
  xmm_facets : (int * facet, value) Hashtbl.t;
  (* flag cache: width type + cmp operands (Sec. III-D) *)
  mutable cmp_cache : (ty * value * value) option;
}

let zf_i = 0
let sf_i = 1
let cf_i = 2
let of_i = 3
let pf_i = 4
let af_i = 5

let snapshot (s : rstate) =
  { gpr = Array.copy s.gpr; gpr_ptr = Array.copy s.gpr_ptr;
    xmm = Array.copy s.xmm; flags = Array.copy s.flags;
    gpr_facets = Hashtbl.copy s.gpr_facets;
    xmm_facets = Hashtbl.copy s.xmm_facets; cmp_cache = s.cmp_cache }

type lstate = {
  cfg : config;
  b : Builder.t;
  mutable cur : rstate;
  (* per raw-block results *)
  block_of_addr : (int, int) Hashtbl.t;  (* x86 addr -> IR block id *)
  final_states : (int, rstate) Hashtbl.t; (* IR block id -> exit state *)
  entry_phis : (int, (int * ty) array) Hashtbl.t;
  (* IR bid -> phi ids for [16 gpr i64; 16 gpr ptr; 16 xmm i128; 6 flags] *)
}

let ty_of_width = function
  | Insn.W8 -> I8 | Insn.W16 -> I16 | Insn.W32 -> I32 | Insn.W64 -> I64

(* ---------------- register access ---------------- *)

let facet_of_width = function
  | Insn.W8 -> F_i8 | Insn.W16 -> F_i16 | Insn.W32 -> F_i32
  | Insn.W64 -> err "facet_of_width: W64 has no sub-register facet"

let get_gpr64 st r = st.cur.gpr.(Reg.index r)

let get_gpr st w r : value =
  let i = Reg.index r in
  if w = Insn.W64 then st.cur.gpr.(i)
  else begin
    let fk = facet_of_width w in
    let cached =
      if st.cfg.facet_cache then Hashtbl.find_opt st.cur.gpr_facets (i, fk)
      else None
    in
    match cached with
    | Some v -> v
    | None ->
      let t = ty_of_width w in
      let v =
        Builder.cast st.b Trunc ~src_ty:I64 st.cur.gpr.(i) ~dst_ty:t
      in
      if st.cfg.facet_cache then Hashtbl.replace st.cur.gpr_facets (i, fk) v;
      v
  end

let get_gpr8h st r : value =
  let i = Reg.index r in
  let cached =
    if st.cfg.facet_cache then Hashtbl.find_opt st.cur.gpr_facets (i, F_i8h)
    else None
  in
  match cached with
  | Some v -> v
  | None ->
    let sh =
      Builder.bin st.b LShr I64 st.cur.gpr.(i) (CInt (I64, 8L))
    in
    let v = Builder.cast st.b Trunc ~src_ty:I64 sh ~dst_ty:I8 in
    if st.cfg.facet_cache then Hashtbl.replace st.cur.gpr_facets (i, F_i8h) v;
    v

(* pointer facet, materializing inttoptr when absent *)
let get_gpr_ptr st r : value =
  let i = Reg.index r in
  match st.cur.gpr_ptr.(i) with
  | Some p -> p
  | None ->
    let p =
      Builder.cast st.b IntToPtr ~src_ty:I64 st.cur.gpr.(i) ~dst_ty:(Ptr 0)
    in
    st.cur.gpr_ptr.(i) <- Some p;
    p

let clear_gpr_facets st i =
  Hashtbl.iter
    (fun (j, fk) _ -> if j = i then Hashtbl.remove st.cur.gpr_facets (j, fk))
    (Hashtbl.copy st.cur.gpr_facets)

let set_gpr64 ?ptr st r v =
  let i = Reg.index r in
  st.cur.gpr.(i) <- v;
  st.cur.gpr_ptr.(i) <- ptr;
  clear_gpr_facets st i

let set_gpr st w r (v : value) =
  let i = Reg.index r in
  match w with
  | Insn.W64 -> set_gpr64 st r v
  | Insn.W32 ->
    (* 32-bit writes zero the upper half (Fig. 4a) *)
    let z = Builder.cast st.b Zext ~src_ty:I32 v ~dst_ty:I64 in
    set_gpr64 st r z;
    if st.cfg.facet_cache then
      Hashtbl.replace st.cur.gpr_facets (i, F_i32) v
  | Insn.W16 | Insn.W8 ->
    (* narrow writes preserve the untouched bits via masking (Fig. 4a) *)
    let t = ty_of_width w in
    let mask = if w = Insn.W16 then 0xFFFFL else 0xFFL in
    let old = st.cur.gpr.(i) in
    let kept =
      Builder.bin st.b And I64 old (CInt (I64, Int64.lognot mask))
    in
    let z = Builder.cast st.b Zext ~src_ty:t v ~dst_ty:I64 in
    let merged = Builder.bin st.b Or I64 kept z in
    set_gpr64 st r merged;
    if st.cfg.facet_cache then
      Hashtbl.replace st.cur.gpr_facets
        (i, (if w = Insn.W16 then F_i16 else F_i8))
        v

let set_gpr8h st r (v : value) =
  let i = Reg.index r in
  let old = st.cur.gpr.(i) in
  let kept = Builder.bin st.b And I64 old (CInt (I64, 0xFFFFFFFFFFFF00FFL)) in
  let z = Builder.cast st.b Zext ~src_ty:I8 v ~dst_ty:I64 in
  let sh = Builder.bin st.b Shl I64 z (CInt (I64, 8L)) in
  let merged = Builder.bin st.b Or I64 kept sh in
  set_gpr64 st r merged;
  if st.cfg.facet_cache then Hashtbl.replace st.cur.gpr_facets (i, F_i8h) v

(* ---------------- xmm facets ---------------- *)

let facet_ty = function
  | X_f64 -> F64 | X_f32 -> F32 | X_v2f64 -> v2f64 | X_v4f32 -> v4f32
  | X_v2i64 -> v2i64 | X_v4i32 -> v4i32
  | F_i32 -> I32 | F_i16 -> I16 | F_i8 | F_i8h -> I8

let get_xmm_vec st x (fk : facet) : value =
  let cached =
    if st.cfg.facet_cache then Hashtbl.find_opt st.cur.xmm_facets (x, fk)
    else None
  in
  match cached with
  | Some v -> v
  | None ->
    let t = facet_ty fk in
    let v = Builder.cast st.b Bitcast ~src_ty:I128 st.cur.xmm.(x) ~dst_ty:t in
    if st.cfg.facet_cache then Hashtbl.replace st.cur.xmm_facets (x, fk) v;
    v

(* scalar lane-0 facets use extractelement on the vector facet so the
   optimizer can track the value's origin (Sec. III-C1) *)
let get_xmm_f64 st x : value =
  let cached =
    if st.cfg.facet_cache then Hashtbl.find_opt st.cur.xmm_facets (x, X_f64)
    else None
  in
  match cached with
  | Some v -> v
  | None ->
    let vec = get_xmm_vec st x X_v2f64 in
    let v = Builder.extractelt st.b v2f64 vec 0 in
    if st.cfg.facet_cache then Hashtbl.replace st.cur.xmm_facets (x, X_f64) v;
    v

let get_xmm_f32 st x : value =
  let cached =
    if st.cfg.facet_cache then Hashtbl.find_opt st.cur.xmm_facets (x, X_f32)
    else None
  in
  match cached with
  | Some v -> v
  | None ->
    let vec = get_xmm_vec st x X_v4f32 in
    let v = Builder.extractelt st.b v4f32 vec 0 in
    if st.cfg.facet_cache then Hashtbl.replace st.cur.xmm_facets (x, X_f32) v;
    v

let clear_xmm_facets st x =
  Hashtbl.iter
    (fun (j, fk) _ -> if j = x then Hashtbl.remove st.cur.xmm_facets (j, fk))
    (Hashtbl.copy st.cur.xmm_facets)

let set_xmm128 st x v =
  st.cur.xmm.(x) <- v;
  clear_xmm_facets st x

let set_xmm_vec st x fk (v : value) =
  let t = facet_ty fk in
  let i = Builder.cast st.b Bitcast ~src_ty:t v ~dst_ty:I128 in
  set_xmm128 st x i;
  if st.cfg.facet_cache then Hashtbl.replace st.cur.xmm_facets (x, fk) v

(* write scalar f64 lane 0; [zero_upper] per instruction semantics *)
let set_xmm_f64 st x ~zero_upper (v : value) =
  let vec =
    if zero_upper then
      Builder.insertelt st.b v2f64 (CVec (v2f64, [ CF64 0.0; CF64 0.0 ])) v 0
    else
      let old = get_xmm_vec st x X_v2f64 in
      Builder.insertelt st.b v2f64 old v 0
  in
  set_xmm_vec st x X_v2f64 vec;
  if st.cfg.facet_cache then Hashtbl.replace st.cur.xmm_facets (x, X_f64) v

let set_xmm_f32 st x ~zero_upper (v : value) =
  let vec =
    if zero_upper then
      Builder.insertelt st.b v4f32
        (CVec (v4f32, [ CF32 0.0; CF32 0.0; CF32 0.0; CF32 0.0 ]))
        v 0
    else
      let old = get_xmm_vec st x X_v4f32 in
      Builder.insertelt st.b v4f32 old v 0
  in
  set_xmm_vec st x X_v4f32 vec;
  if st.cfg.facet_cache then Hashtbl.replace st.cur.xmm_facets (x, X_f32) v

(* ---------------- memory operands ---------------- *)

let lift_addr st (m : Insn.mem_addr) : value =
  (match m.seg with
   | Some _ -> err "segment overrides are not exercised by this port"
   | None -> ());
  if st.cfg.use_gep then begin
    let base =
      match m.base with
      | Some r -> get_gpr_ptr st r
      | None -> CPtr 0
    in
    let elts =
      (match m.index with
       | Some (r, sc) ->
         [ GScaled (get_gpr64 st r, Insn.scale_factor sc) ]
       | None -> [])
      @ (if m.disp <> 0 || (m.base = None && m.index = None) then
           [ GConst m.disp ]
         else [])
    in
    if elts = [] then base else Builder.gep st.b base elts
  end
  else begin
    (* ablation: raw integer arithmetic + inttoptr *)
    let base =
      match m.base with
      | Some r -> get_gpr64 st r
      | None -> CInt (I64, 0L)
    in
    let with_index =
      match m.index with
      | Some (r, sc) ->
        let idx = get_gpr64 st r in
        let scaled =
          Builder.bin st.b Mul I64 idx
            (CInt (I64, Int64.of_int (Insn.scale_factor sc)))
        in
        Builder.bin st.b Add I64 base scaled
      | None -> base
    in
    let full =
      if m.disp <> 0 then
        Builder.bin st.b Add I64 with_index
          (CInt (I64, Int64.of_int m.disp))
      else with_index
    in
    Builder.cast st.b IntToPtr ~src_ty:I64 full ~dst_ty:(Ptr 0)
  end

let load_w st w (m : Insn.mem_addr) : value =
  let p = lift_addr st m in
  Builder.load st.b (ty_of_width w) ~align:1 p

let store_w st w (m : Insn.mem_addr) v =
  let p = lift_addr st m in
  Builder.store st.b (ty_of_width w) ~align:1 v p

(* operand read in the instruction's width type *)
let read_operand st w = function
  | Insn.OReg r -> get_gpr st w r
  | Insn.OReg8H r -> get_gpr8h st r
  | Insn.OMem m -> load_w st w m
  | Insn.OImm v -> CInt (ty_of_width w, v)

let write_operand st w op v =
  match op with
  | Insn.OReg r -> set_gpr st w r v
  | Insn.OReg8H r -> set_gpr8h st r v
  | Insn.OMem m -> store_w st w m v
  | Insn.OImm _ -> err "write to immediate"

let xop_f64 st = function
  | Insn.Xr x -> get_xmm_f64 st x
  | Insn.Xm m ->
    let p = lift_addr st m in
    Builder.load st.b F64 ~align:1 p

let xop_f32 st = function
  | Insn.Xr x -> get_xmm_f32 st x
  | Insn.Xm m ->
    let p = lift_addr st m in
    Builder.load st.b F32 ~align:1 p

let xop_vec st fk = function
  | Insn.Xr x -> get_xmm_vec st x fk
  | Insn.Xm m ->
    let p = lift_addr st m in
    Builder.load st.b (facet_ty fk) ~align:1 p

(* ---------------- flags ---------------- *)

let set_flag st i v = st.cur.flags.(i) <- v
let get_flag st i = st.cur.flags.(i)

let bool_not st v = Builder.bin st.b Xor I1 v (CInt (I1, 1L))

(* szp flags from a result value of type [t] *)
let set_szp st t r =
  set_flag st zf_i (Builder.icmp st.b Eq t r (CInt (t, 0L)));
  set_flag st sf_i (Builder.icmp st.b Slt t r (CInt (t, 0L)));
  (* parity via ctpop over the low byte (Sec. III-D) *)
  let low =
    if t = I8 then r else Builder.cast st.b Trunc ~src_ty:t r ~dst_ty:I8
  in
  let pc = Builder.intr st.b (Ctpop I8) ~ty:I8 [ low ] in
  let band = Builder.bin st.b And I8 pc (CInt (I8, 1L)) in
  set_flag st pf_i
    (Builder.icmp st.b Eq I8 band (CInt (I8, 0L)))

let set_af st t a bv r =
  let x1 = Builder.bin st.b Xor t a bv in
  let x2 = Builder.bin st.b Xor t x1 r in
  let bit = Builder.bin st.b And t x2 (CInt (t, 0x10L)) in
  set_flag st af_i (Builder.icmp st.b Ne t bit (CInt (t, 0L)))

(* overflow via bitwise operations (Sec. III-D discourages the
   intrinsics) *)
let set_of_add st t a bv r =
  let x1 = Builder.bin st.b Xor t a r in
  let x2 = Builder.bin st.b Xor t bv r in
  let m = Builder.bin st.b And t x1 x2 in
  set_flag st of_i (Builder.icmp st.b Slt t m (CInt (t, 0L)))

let set_of_sub st t a bv r =
  let x1 = Builder.bin st.b Xor t a bv in
  let x2 = Builder.bin st.b Xor t a r in
  let m = Builder.bin st.b And t x1 x2 in
  set_flag st of_i (Builder.icmp st.b Slt t m (CInt (t, 0L)))

let flags_add st t a bv r =
  set_szp st t r;
  set_flag st cf_i (Builder.icmp st.b Ult t r a);
  set_of_add st t a bv r;
  set_af st t a bv r;
  st.cur.cmp_cache <- None

let flags_sub ?(is_cmp = false) st t a bv r =
  set_szp st t r;
  (* basic integer comparisons for cf (and zf above) *)
  set_flag st cf_i (Builder.icmp st.b Ult t a bv);
  if is_cmp then
    (* zf of a compare is exactly equality of the operands *)
    set_flag st zf_i (Builder.icmp st.b Eq t a bv);
  set_of_sub st t a bv r;
  set_af st t a bv r;
  st.cur.cmp_cache <- (if is_cmp then Some (t, a, bv) else None)

let flags_logic st t r =
  set_szp st t r;
  set_flag st cf_i (CInt (I1, 0L));
  set_flag st of_i (CInt (I1, 0L));
  set_flag st af_i (CInt (I1, 0L));
  st.cur.cmp_cache <- None

(* condition value for a cc, honoring the flag cache (Fig. 6) *)
let cond_value st (c : Insn.cc) : value =
  let cached p =
    match st.cur.cmp_cache with
    | Some (t, a, b) when st.cfg.flag_cache ->
      if !Prov.enabled then
        Prov.record ~pass:"lift" ~action:Prov.Specialized
          ~prov:(Builder.cur_prov st.b)
          ~detail:
            "flag cache: condition reconstructed as icmp on the cached \
             cmp operands";
      Some (Builder.icmp st.b p t a b)
    | _ -> None
  in
  let flag i = get_flag st i in
  let orv a b = Builder.bin st.b Or I1 a b in
  let andv a b = Builder.bin st.b And I1 a b in
  let xorv a b = Builder.bin st.b Xor I1 a b in
  match c with
  | Insn.E -> (match cached Eq with Some v -> v | None -> flag zf_i)
  | Insn.NE -> (
    match cached Ne with Some v -> v | None -> bool_not st (flag zf_i))
  | Insn.B -> (match cached Ult with Some v -> v | None -> flag cf_i)
  | Insn.AE -> (
    match cached Uge with Some v -> v | None -> bool_not st (flag cf_i))
  | Insn.BE -> (
    match cached Ule with
    | Some v -> v
    | None -> orv (flag cf_i) (flag zf_i))
  | Insn.A -> (
    match cached Ugt with
    | Some v -> v
    | None -> bool_not st (orv (flag cf_i) (flag zf_i)))
  | Insn.L -> (
    match cached Slt with
    | Some v -> v
    | None -> xorv (flag sf_i) (flag of_i))
  | Insn.GE -> (
    match cached Sge with
    | Some v -> v
    | None -> bool_not st (xorv (flag sf_i) (flag of_i)))
  | Insn.LE -> (
    match cached Sle with
    | Some v -> v
    | None -> orv (flag zf_i) (xorv (flag sf_i) (flag of_i)))
  | Insn.G -> (
    match cached Sgt with
    | Some v -> v
    | None ->
      andv (bool_not st (flag zf_i))
        (bool_not st (xorv (flag sf_i) (flag of_i))))
  | Insn.S -> flag sf_i
  | Insn.NS -> bool_not st (flag sf_i)
  | Insn.P -> flag pf_i
  | Insn.NP -> bool_not st (flag pf_i)
  | Insn.O -> flag of_i
  | Insn.NO -> bool_not st (flag of_i)

(* ---------------- per-instruction lifting ---------------- *)

(* update both integer and pointer facets for pointer-friendly
   arithmetic (Sec. III-C: "instructions which can be used for pointer
   and integer arithmetic ... can set both facets") *)
let set_gpr64_add st dst ~iv ~base_reg ~elts =
  let ptr =
    match st.cur.gpr_ptr.(Reg.index base_reg) with
    | Some p -> Some (Builder.gep st.b p elts)
    | None -> None
  in
  set_gpr64 ?ptr st dst iv

let lift_insn st (i : Insn.insn) : unit =
  match i with
  | Insn.Nop _ -> ()
  | Insn.Mov (w, dst, src) ->
    let v = read_operand st w src in
    (* a 64-bit register move transfers the pointer facet too *)
    (match w, dst, src with
     | Insn.W64, Insn.OReg d, Insn.OReg s ->
       set_gpr64 ?ptr:st.cur.gpr_ptr.(Reg.index s) st d v
     | _ -> write_operand st w dst v)
  | Insn.Movabs (r, imm) -> set_gpr64 st r (CInt (I64, imm))
  | Insn.Movzx (dw, dst, sw, src) ->
    let v = read_operand st sw src in
    let z =
      Builder.cast st.b Zext ~src_ty:(ty_of_width sw) v
        ~dst_ty:(ty_of_width dw)
    in
    set_gpr st dw dst z
  | Insn.Movsx (dw, dst, sw, src) ->
    let v = read_operand st sw src in
    let z =
      Builder.cast st.b Sext ~src_ty:(ty_of_width sw) v
        ~dst_ty:(ty_of_width dw)
    in
    set_gpr st dw dst z
  | Insn.Lea (dst, m) ->
    if m.Insn.seg <> None then err "lea with segment";
    (* integer facet *)
    let base_i =
      match m.Insn.base with
      | Some r -> get_gpr64 st r
      | None -> CInt (I64, 0L)
    in
    let with_idx =
      match m.Insn.index with
      | Some (r, sc) ->
        let idx = get_gpr64 st r in
        let scaled =
          if Insn.scale_factor sc = 1 then idx
          else
            Builder.bin st.b Mul I64 idx
              (CInt (I64, Int64.of_int (Insn.scale_factor sc)))
        in
        Builder.bin st.b Add I64 base_i scaled
      | None -> base_i
    in
    let iv =
      if m.Insn.disp <> 0 then
        Builder.bin st.b Add I64 with_idx (CInt (I64, Int64.of_int m.Insn.disp))
      else with_idx
    in
    (* pointer facet when the base carries one *)
    (match m.Insn.base with
     | Some br when st.cfg.use_gep && st.cur.gpr_ptr.(Reg.index br) <> None ->
       let elts =
         (match m.Insn.index with
          | Some (r, sc) ->
            [ GScaled (get_gpr64 st r, Insn.scale_factor sc) ]
          | None -> [])
         @ if m.Insn.disp <> 0 then [ GConst m.Insn.disp ] else []
       in
       set_gpr64_add st dst ~iv ~base_reg:br ~elts
     | _ -> set_gpr64 st dst iv)
  | Insn.Alu (op, w, dst, src) -> (
    let t = ty_of_width w in
    match op with
    | Insn.Cmp ->
      let a = read_operand st w dst in
      let bv = read_operand st w src in
      let r = Builder.bin st.b Sub t a bv in
      flags_sub ~is_cmp:true st t a bv r
    | Insn.Add | Insn.Sub -> (
      let a = read_operand st w dst in
      let bv = read_operand st w src in
      let r =
        Builder.bin st.b (if op = Insn.Add then Add else Sub) t a bv
      in
      if op = Insn.Add then flags_add st t a bv r
      else flags_sub st t a bv r;
      (* preserve pointer facets for 64-bit reg +/- constant or reg *)
      match w, dst, src with
      | Insn.W64, Insn.OReg d, Insn.OImm c
        when st.cfg.use_gep && st.cur.gpr_ptr.(Reg.index d) <> None ->
        let c = if op = Insn.Add then c else Int64.neg c in
        set_gpr64_add st d ~iv:r ~base_reg:d
          ~elts:[ GConst (Int64.to_int c) ]
      | Insn.W64, Insn.OReg d, Insn.OReg s
        when op = Insn.Add && st.cfg.use_gep
             && st.cur.gpr_ptr.(Reg.index d) <> None ->
        set_gpr64_add st d ~iv:r ~base_reg:d
          ~elts:[ GScaled (get_gpr64 st s, 1) ]
      | _ -> write_operand st w dst r)
    | Insn.And | Insn.Or | Insn.Xor ->
      (* xor r, r is the idiomatic zeroing *)
      let is_zeroing =
        op = Insn.Xor
        && (match dst, src with
            | Insn.OReg a, Insn.OReg b -> Reg.equal a b
            | _ -> false)
      in
      if is_zeroing then begin
        let z = CInt (t, 0L) in
        flags_logic st t z;
        write_operand st w dst z
      end
      else begin
        let a = read_operand st w dst in
        let bv = read_operand st w src in
        let o =
          match op with
          | Insn.And -> And
          | Insn.Or -> Or
          | _ -> Xor
        in
        let r = Builder.bin st.b o t a bv in
        flags_logic st t r;
        write_operand st w dst r
      end
    | Insn.Adc | Insn.Sbb ->
      let a = read_operand st w dst in
      let bv = read_operand st w src in
      let cin = Builder.cast st.b Zext ~src_ty:I1 (get_flag st cf_i) ~dst_ty:t in
      let r0 =
        Builder.bin st.b (if op = Insn.Adc then Add else Sub) t a bv
      in
      let r =
        Builder.bin st.b (if op = Insn.Adc then Add else Sub) t r0 cin
      in
      (* flags approximated through the same formulas as the emulator *)
      if op = Insn.Adc then flags_add st t a bv r
      else flags_sub st t a bv r;
      (* carry: exact treatment requires the carry-in; model it *)
      (if op = Insn.Adc then begin
         let c1 = Builder.icmp st.b Ult t r0 a in
         let c2 = Builder.icmp st.b Ult t r r0 in
         set_flag st cf_i (Builder.bin st.b Or I1 c1 c2)
       end
       else begin
         let c1 = Builder.icmp st.b Ult t a bv in
         let c2 = Builder.icmp st.b Ult t r0 cin in
         set_flag st cf_i (Builder.bin st.b Or I1 c1 c2)
       end);
      write_operand st w dst r)
  | Insn.Test (w, a, b) ->
    let t = ty_of_width w in
    let av = read_operand st w a in
    let bv = read_operand st w b in
    let r = Builder.bin st.b And t av bv in
    flags_logic st t r
  | Insn.Imul2 (w, dst, src) | Insn.Imul3 (w, dst, src, _) -> (
    let t = ty_of_width w in
    let a =
      match i with
      | Insn.Imul2 _ -> get_gpr st w dst
      | _ -> read_operand st w src
    in
    let bv =
      match i with
      | Insn.Imul2 _ -> read_operand st w src
      | Insn.Imul3 (_, _, _, imm) -> CInt (t, imm)
      | _ -> err "imul: impossible instruction shape"
    in
    let r = Builder.bin st.b Mul t a bv in
    (* overflow flags: match the emulator's formulas *)
    (match w with
     | Insn.W64 ->
       let nz = Builder.icmp st.b Ne t a (CInt (t, 0L)) in
       let q = Builder.select st.b t nz a (CInt (t, 1L)) in
       let dv = Builder.bin st.b SDiv t r q in
       let neq = Builder.icmp st.b Ne t dv bv in
       let ovf = Builder.bin st.b And I1 nz neq in
       set_flag st cf_i ovf;
       set_flag st of_i ovf
     | _ ->
       let a64 = Builder.cast st.b Sext ~src_ty:t a ~dst_ty:I64 in
       let b64 = Builder.cast st.b Sext ~src_ty:t bv ~dst_ty:I64 in
       let p = Builder.bin st.b Mul I64 a64 b64 in
       let r64 = Builder.cast st.b Sext ~src_ty:t r ~dst_ty:I64 in
       let ovf = Builder.icmp st.b Ne I64 r64 p in
       set_flag st cf_i ovf;
       set_flag st of_i ovf);
    (* zf/sf/pf from the result exactly as the emulator's set_szp *)
    set_szp st t r;
    set_flag st af_i (CInt (I1, 0L));
    st.cur.cmp_cache <- None;
    set_gpr st w dst r)
  | Insn.Idiv (w, src) ->
    (* we lift the common compiler idiom cqo/cdq + idiv: the dividend
       is the sign extension of rax/eax *)
    let t = ty_of_width w in
    if w <> Insn.W64 && w <> Insn.W32 then err "8/16-bit idiv unsupported";
    let a = get_gpr st w Reg.RAX in
    let d = read_operand st w src in
    let q = Builder.bin st.b SDiv t a d in
    let r = Builder.bin st.b SRem t a d in
    set_gpr st w Reg.RAX q;
    set_gpr st w Reg.RDX r;
    st.cur.cmp_cache <- None
  | Insn.Cqo ->
    let v = Builder.bin st.b AShr I64 (get_gpr64 st Reg.RAX) (CInt (I64, 63L)) in
    set_gpr64 st Reg.RDX v
  | Insn.Cdq ->
    let eax = get_gpr st Insn.W32 Reg.RAX in
    let v = Builder.bin st.b AShr I32 eax (CInt (I32, 31L)) in
    set_gpr st Insn.W32 Reg.RDX v
  | Insn.Shift (op, w, dst, cnt) ->
    let t = ty_of_width w in
    let a = read_operand st w dst in
    let bits = Insn.width_bits w in
    (* hardware masks the count by 63 (64-bit operand) or 31 (8/16/32),
       NOT by the operand width: [shl al, 12] shifts by 12 and yields 0 *)
    let cmask = if w = Insn.W64 then 63 else 31 in
    let n =
      match cnt with
      | Insn.ShImm n -> CInt (t, Int64.of_int (n land cmask))
      | Insn.ShCl ->
        let cl = get_gpr st Insn.W8 Reg.RCX in
        let cl' =
          if t = I8 then cl
          else Builder.cast st.b Zext ~src_ty:I8 cl ~dst_ty:t
        in
        Builder.bin st.b And t cl' (CInt (t, Int64.of_int cmask))
    in
    let o = match op with Insn.Shl -> Shl | Insn.Shr -> LShr | Insn.Sar -> AShr in
    let r = Builder.bin st.b o t a n in
    (* a shift whose masked count is 0 leaves every flag unchanged:
       immediate counts are decided here, a CL count needs a runtime
       select (Cpu.exec guards the whole flag update with [n <> 0]) *)
    let masked_imm =
      match cnt with Insn.ShImm n -> Some (n land cmask) | Insn.ShCl -> None
    in
    (match masked_imm with
     | Some 0 -> ()
     | _ ->
       let keep =
         match cnt with
         | Insn.ShCl -> Some (Builder.icmp st.b Eq t n (CInt (t, 0L)))
         | Insn.ShImm _ -> None
       in
       let setf i v =
         match keep with
         | Some k ->
           set_flag st i (Builder.select st.b I1 k (get_flag st i) v)
         | None -> set_flag st i v
       in
       let zf = Builder.icmp st.b Eq t r (CInt (t, 0L)) in
       let sf = Builder.icmp st.b Slt t r (CInt (t, 0L)) in
       let low =
         if t = I8 then r else Builder.cast st.b Trunc ~src_ty:t r ~dst_ty:I8
       in
       let pc = Builder.intr st.b (Ctpop I8) ~ty:I8 [ low ] in
       let pband = Builder.bin st.b And I8 pc (CInt (I8, 1L)) in
       let pf = Builder.icmp st.b Eq I8 pband (CInt (I8, 0L)) in
       (* cf/of: the [bits - n] / [n - 1] shift amounts wrap in type [t]
          when the count exceeds the operand width; an IR shift by >=
          bits yields 0 (sign-fill for AShr), which matches the
          emulator's [n <= bits] guards bit for bit *)
       let cf =
         match op with
         | Insn.Shl ->
           let sh = Builder.bin st.b Sub t (CInt (t, Int64.of_int bits)) n in
           let bit = Builder.bin st.b LShr t a sh in
           let band = Builder.bin st.b And t bit (CInt (t, 1L)) in
           Builder.icmp st.b Ne t band (CInt (t, 0L))
         | Insn.Shr ->
           let n1 = Builder.bin st.b Sub t n (CInt (t, 1L)) in
           let bit = Builder.bin st.b LShr t a n1 in
           let band = Builder.bin st.b And t bit (CInt (t, 1L)) in
           Builder.icmp st.b Ne t band (CInt (t, 0L))
         | Insn.Sar ->
           let n1 = Builder.bin st.b Sub t n (CInt (t, 1L)) in
           let bit = Builder.bin st.b AShr t a n1 in
           let band = Builder.bin st.b And t bit (CInt (t, 1L)) in
           Builder.icmp st.b Ne t band (CInt (t, 0L))
       in
       let ov =
         match op with
         | Insn.Shl ->
           let msbr = Builder.icmp st.b Slt t r (CInt (t, 0L)) in
           Builder.bin st.b Xor I1 msbr cf
         | Insn.Shr -> Builder.icmp st.b Slt t a (CInt (t, 0L))
         | Insn.Sar -> CInt (I1, 0L)
       in
       setf zf_i zf;
       setf sf_i sf;
       setf pf_i pf;
       setf cf_i cf;
       setf of_i ov;
       st.cur.cmp_cache <- None);
    write_operand st w dst r
  | Insn.Unop (op, w, dst) -> (
    let t = ty_of_width w in
    let a = read_operand st w dst in
    match op with
    | Insn.Neg ->
      let r = Builder.bin st.b Sub t (CInt (t, 0L)) a in
      set_szp st t r;
      set_flag st cf_i (Builder.icmp st.b Ne t a (CInt (t, 0L)));
      let m = Builder.bin st.b And t a r in
      set_flag st of_i (Builder.icmp st.b Slt t m (CInt (t, 0L)));
      st.cur.cmp_cache <- None;
      write_operand st w dst r
    | Insn.Not ->
      let r = Builder.bin st.b Xor t a (CInt (t, -1L)) in
      write_operand st w dst r
    | Insn.Inc | Insn.Dec ->
      let one = CInt (t, 1L) in
      let r =
        Builder.bin st.b (if op = Insn.Inc then Add else Sub) t a one
      in
      (* inc/dec preserve cf *)
      let cf = get_flag st cf_i in
      set_szp st t r;
      if op = Insn.Inc then set_of_add st t a one r
      else set_of_sub st t a one r;
      set_af st t a one r;
      set_flag st cf_i cf;
      st.cur.cmp_cache <- None;
      write_operand st w dst r)
  | Insn.Push src ->
    let v = read_operand st Insn.W64 src in
    let sp = get_gpr_ptr st Reg.RSP in
    let sp' = Builder.gep st.b sp [ GConst (-8) ] in
    let spi =
      Builder.bin st.b Add I64 (get_gpr64 st Reg.RSP) (CInt (I64, -8L))
    in
    set_gpr64 ~ptr:sp' st Reg.RSP spi;
    Builder.store st.b I64 ~align:8 v sp'
  | Insn.Pop dst ->
    let sp = get_gpr_ptr st Reg.RSP in
    let v = Builder.load st.b I64 ~align:8 sp in
    let sp' = Builder.gep st.b sp [ GConst 8 ] in
    let spi =
      Builder.bin st.b Add I64 (get_gpr64 st Reg.RSP) (CInt (I64, 8L))
    in
    set_gpr64 ~ptr:sp' st Reg.RSP spi;
    write_operand st Insn.W64 dst v
  | Insn.Leave ->
    (* mov rsp, rbp; pop rbp *)
    let rbp_i = get_gpr64 st Reg.RBP in
    let rbp_p = st.cur.gpr_ptr.(Reg.index Reg.RBP) in
    set_gpr64 ?ptr:rbp_p st Reg.RSP rbp_i;
    let sp = get_gpr_ptr st Reg.RSP in
    let v = Builder.load st.b I64 ~align:8 sp in
    let sp' = Builder.gep st.b sp [ GConst 8 ] in
    let spi =
      Builder.bin st.b Add I64 (get_gpr64 st Reg.RSP) (CInt (I64, 8L))
    in
    set_gpr64 ~ptr:sp' st Reg.RSP spi;
    set_gpr64 st Reg.RBP v
  | Insn.Call (Insn.Abs target) ->
    let sg =
      match List.assoc_opt target st.cfg.callee_sigs with
      | Some sg -> sg
      | None -> err "call to 0x%x: no signature declared (Sec. III-A)" target
    in
    let int_args, _ =
      List.fold_left
        (fun (acc, idx) t ->
          match t with
          | F64 -> (acc, idx)
          | _ -> (acc @ [ (t, idx) ], idx + 1))
        ([], 0) sg.args
    in
    ignore int_args;
    (* gather arguments per the ABI *)
    let iregs = [| Reg.RDI; Reg.RSI; Reg.RDX; Reg.RCX; Reg.R8; Reg.R9 |] in
    let ii = ref 0 and fi = ref 0 in
    let args =
      List.map
        (fun t ->
          match t with
          | F64 ->
            let v = get_xmm_f64 st !fi in
            incr fi;
            v
          | Ptr _ ->
            let v = get_gpr_ptr st iregs.(!ii) in
            incr ii;
            v
          | _ ->
            let v = get_gpr64 st iregs.(!ii) in
            incr ii;
            v)
        sg.args
    in
    let res = Builder.call_ptr st.b (CPtr target) sg args in
    (* caller-saved registers are dead after the call (ABI) *)
    List.iter
      (fun r ->
        if not (Reg.equal r Reg.RSP) then
          set_gpr64 st r (Undef I64))
      Reg.caller_saved;
    for x = 0 to 15 do set_xmm128 st x (Undef I128) done;
    st.cur.flags <- Array.map (fun _ -> Undef I1) st.cur.flags;
    st.cur.cmp_cache <- None;
    (match sg.ret with
     | Some F64 -> set_xmm_f64 st 0 ~zero_upper:true res
     | Some (Ptr _) ->
       let iv = Builder.cast st.b PtrToInt ~src_ty:(Ptr 0) res ~dst_ty:I64 in
       set_gpr64 ~ptr:res st Reg.RAX iv
     | Some _ -> set_gpr64 st Reg.RAX res
     | None -> ())
  | Insn.Call (Insn.Lbl _) -> err "call to unresolved label"
  | Insn.CallInd _ -> err "indirect call unsupported"
  | Insn.Cmov (c, w, dst, src) ->
    let t = ty_of_width w in
    let cond = cond_value st c in
    let v = read_operand st w src in
    let old = get_gpr st w dst in
    let r = Builder.select st.b t cond v old in
    set_gpr st w dst r
  | Insn.Setcc (c, dst) ->
    let cond = cond_value st c in
    let v = Builder.cast st.b Zext ~src_ty:I1 cond ~dst_ty:I8 in
    write_operand st Insn.W8 dst v
  | Insn.SseMov (k, dst, src) -> (
    match k, dst, src with
    | Insn.Movsd, Insn.Xr d, Insn.Xr s ->
      set_xmm_f64 st d ~zero_upper:false (get_xmm_f64 st s)
    | Insn.Movsd, Insn.Xr d, (Insn.Xm _ as m) ->
      set_xmm_f64 st d ~zero_upper:true (xop_f64 st m)
    | Insn.Movsd, Insn.Xm m, Insn.Xr s ->
      let p = lift_addr st m in
      Builder.store st.b F64 ~align:1 (get_xmm_f64 st s) p
    | Insn.Movss, Insn.Xr d, Insn.Xr s ->
      set_xmm_f32 st d ~zero_upper:false (get_xmm_f32 st s)
    | Insn.Movss, Insn.Xr d, (Insn.Xm _ as m) ->
      set_xmm_f32 st d ~zero_upper:true (xop_f32 st m)
    | Insn.Movss, Insn.Xm m, Insn.Xr s ->
      let p = lift_addr st m in
      Builder.store st.b F32 ~align:1 (get_xmm_f32 st s) p
    | Insn.Movq, Insn.Xr d, Insn.Xr s ->
      (* 64-bit move zeroing the upper part: insertelement with a
         zeroinitializer (Sec. III-C2) *)
      let slo = Builder.extractelt st.b v2i64 (get_xmm_vec st s X_v2i64) 0 in
      let vec =
        Builder.insertelt st.b v2i64
          (CVec (v2i64, [ CInt (I64, 0L); CInt (I64, 0L) ]))
          slo 0
      in
      set_xmm_vec st d X_v2i64 vec
    | Insn.Movq, Insn.Xr d, Insn.Xm m ->
      let p = lift_addr st m in
      let v = Builder.load st.b I64 ~align:1 p in
      let vec =
        Builder.insertelt st.b v2i64
          (CVec (v2i64, [ CInt (I64, 0L); CInt (I64, 0L) ]))
          v 0
      in
      set_xmm_vec st d X_v2i64 vec
    | Insn.Movq, Insn.Xm m, Insn.Xr s ->
      let p = lift_addr st m in
      let slo = Builder.extractelt st.b v2i64 (get_xmm_vec st s X_v2i64) 0 in
      Builder.store st.b I64 ~align:1 slo p
    | (Insn.Movups | Insn.Movupd | Insn.Movaps | Insn.Movapd
      | Insn.Movdqa | Insn.Movdqu), Insn.Xr d, Insn.Xr s ->
      set_xmm128 st d st.cur.xmm.(s)
    | (Insn.Movups | Insn.Movupd | Insn.Movaps | Insn.Movapd
      | Insn.Movdqa | Insn.Movdqu), Insn.Xr d, Insn.Xm m ->
      let align =
        match k with
        | Insn.Movaps | Insn.Movapd | Insn.Movdqa -> 16
        | _ -> 1
      in
      let p = lift_addr st m in
      let v = Builder.load st.b v2f64 ~align p in
      set_xmm_vec st d X_v2f64 v
    | (Insn.Movups | Insn.Movupd | Insn.Movaps | Insn.Movapd
      | Insn.Movdqa | Insn.Movdqu), Insn.Xm m, Insn.Xr s ->
      let align =
        match k with
        | Insn.Movaps | Insn.Movapd | Insn.Movdqa -> 16
        | _ -> 1
      in
      let p = lift_addr st m in
      Builder.store st.b v2f64 ~align (get_xmm_vec st s X_v2f64) p
    | _, Insn.Xm _, Insn.Xm _ -> err "SSE mem-to-mem move")
  | Insn.MovqXR (x, r) ->
    let v = get_gpr64 st r in
    let vec =
      Builder.insertelt st.b v2i64
        (CVec (v2i64, [ CInt (I64, 0L); CInt (I64, 0L) ]))
        v 0
    in
    set_xmm_vec st x X_v2i64 vec
  | Insn.MovqRX (r, x) ->
    let v = Builder.extractelt st.b v2i64 (get_xmm_vec st x X_v2i64) 0 in
    set_gpr64 st r v
  | Insn.SseArith (op, p, dst, src) -> (
    let fb = function
      | Insn.FAdd -> FAdd | Insn.FSub -> FSub | Insn.FMul -> FMul
      | Insn.FDiv -> FDiv
      | Insn.FMin | Insn.FMax | Insn.FSqrt -> FAdd (* handled below *)
    in
    match p, op with
    | Insn.Sd, (Insn.FAdd | Insn.FSub | Insn.FMul | Insn.FDiv) ->
      let a = get_xmm_f64 st dst in
      let bv = xop_f64 st src in
      let r = Builder.fbin st.b (fb op) F64 a bv in
      set_xmm_f64 st dst ~zero_upper:false r
    | Insn.Ss, (Insn.FAdd | Insn.FSub | Insn.FMul | Insn.FDiv) ->
      let a = get_xmm_f32 st dst in
      let bv = xop_f32 st src in
      let r = Builder.fbin st.b (fb op) F32 a bv in
      set_xmm_f32 st dst ~zero_upper:false r
    | Insn.Pd, (Insn.FAdd | Insn.FSub | Insn.FMul | Insn.FDiv) ->
      let a = get_xmm_vec st dst X_v2f64 in
      let bv = xop_vec st X_v2f64 src in
      let r = Builder.fbin st.b (fb op) v2f64 a bv in
      set_xmm_vec st dst X_v2f64 r
    | Insn.Ps, (Insn.FAdd | Insn.FSub | Insn.FMul | Insn.FDiv) ->
      let a = get_xmm_vec st dst X_v4f32 in
      let bv = xop_vec st X_v4f32 src in
      let r = Builder.fbin st.b (fb op) v4f32 a bv in
      set_xmm_vec st dst X_v4f32 r
    | Insn.Sd, Insn.FSqrt ->
      let bv = xop_f64 st src in
      let r = Builder.intr st.b (Sqrt F64) ~ty:F64 [ bv ] in
      set_xmm_f64 st dst ~zero_upper:false r
    | Insn.Sd, Insn.FMin ->
      let a = get_xmm_f64 st dst in
      let bv = xop_f64 st src in
      (* x86 minsd: if a < b then a else b (b on NaN) *)
      let c = Builder.fcmp st.b Olt F64 a bv in
      let r = Builder.select st.b F64 c a bv in
      set_xmm_f64 st dst ~zero_upper:false r
    | Insn.Sd, Insn.FMax ->
      let a = get_xmm_f64 st dst in
      let bv = xop_f64 st src in
      let c = Builder.fcmp st.b Ogt F64 a bv in
      let r = Builder.select st.b F64 c a bv in
      set_xmm_f64 st dst ~zero_upper:false r
    | _, (Insn.FMin | Insn.FMax | Insn.FSqrt) ->
      err "min/max/sqrt lifting limited to scalar double")
  | Insn.SseLogic (op, dst, src) -> (
    (* bitwise on <2 x i64> lanes to avoid mixed int/vector issues *)
    let a = get_xmm_vec st dst X_v2i64 in
    let bv = xop_vec st X_v2i64 src in
    let is_self_xor =
      (match op with Insn.Pxor | Insn.Xorps | Insn.Xorpd -> true | _ -> false)
      && (match src with Insn.Xr s -> s = dst | _ -> false)
    in
    if is_self_xor then
      (* idiomatic zeroing *)
      set_xmm_vec st dst X_v2i64
        (CVec (v2i64, [ CInt (I64, 0L); CInt (I64, 0L) ]))
    else
      let o =
        match op with
        | Insn.Pxor | Insn.Xorps | Insn.Xorpd -> Xor
        | Insn.Pand | Insn.Andps | Insn.Andpd -> And
        | Insn.Por -> Or
      in
      let r = Builder.bin st.b o v2i64 a bv in
      set_xmm_vec st dst X_v2i64 r)
  | Insn.Ucomis (p, dst, src) ->
    let a, bv =
      if p = Insn.Sd then (get_xmm_f64 st dst, xop_f64 st src)
      else (get_xmm_f32 st dst, xop_f32 st src)
    in
    let t = if p = Insn.Sd then F64 else F32 in
    set_flag st zf_i (Builder.fcmp st.b Ueq t a bv);
    set_flag st cf_i (Builder.fcmp st.b Ult t a bv);
    set_flag st pf_i (Builder.fcmp st.b Uno t a bv);
    set_flag st of_i (CInt (I1, 0L));
    set_flag st sf_i (CInt (I1, 0L));
    set_flag st af_i (CInt (I1, 0L));
    st.cur.cmp_cache <- None
  | Insn.Cvtsi2sd (x, w, src) ->
    let v = read_operand st w src in
    let r = Builder.cast st.b SiToFp ~src_ty:(ty_of_width w) v ~dst_ty:F64 in
    set_xmm_f64 st x ~zero_upper:false r
  | Insn.Cvttsd2si (r, w, src) ->
    let v = xop_f64 st src in
    let iv = Builder.cast st.b FpToSi ~src_ty:F64 v ~dst_ty:(ty_of_width w) in
    set_gpr st w r iv
  | Insn.Cvtsd2ss (x, src) ->
    let v = xop_f64 st src in
    let r = Builder.cast st.b FpTrunc ~src_ty:F64 v ~dst_ty:F32 in
    set_xmm_f32 st x ~zero_upper:false r
  | Insn.Cvtss2sd (x, src) ->
    let v = xop_f32 st src in
    let r = Builder.cast st.b FpExt ~src_ty:F32 v ~dst_ty:F64 in
    set_xmm_f64 st x ~zero_upper:false r
  | Insn.Unpcklpd (x, src) ->
    let a = get_xmm_vec st x X_v2f64 in
    let bv = xop_vec st X_v2f64 src in
    let r = Builder.shuffle st.b v2f64 a bv [| 0; 2 |] in
    set_xmm_vec st x X_v2f64 r
  | Insn.Shufpd (x, src, imm) ->
    let a = get_xmm_vec st x X_v2f64 in
    let bv = xop_vec st X_v2f64 src in
    let m0 = imm land 1 in
    let m1 = 2 + ((imm lsr 1) land 1) in
    let r = Builder.shuffle st.b v2f64 a bv [| m0; m1 |] in
    set_xmm_vec st x X_v2f64 r
  | Insn.Padd (w, x, src) ->
    let fk = if w = Insn.W64 then X_v2i64 else X_v4i32 in
    let vt = if w = Insn.W64 then v2i64 else v4i32 in
    let a = get_xmm_vec st x fk in
    let bv = xop_vec st fk src in
    let r = Builder.bin st.b Add vt a bv in
    set_xmm_vec st x fk r
  | Insn.Jmp _ | Insn.JmpInd _ | Insn.Jcc _ | Insn.Ret ->
    err "terminator reached in straight-line lifting"
  | Insn.Ud2 | Insn.Int3 -> err "trap instruction"

(* ------------------------------------------------------------------ *)
(* Function-level driver                                               *)
(* ------------------------------------------------------------------ *)

(* Sentinel return address stored at the initial top-of-stack when the
   region contains in-region calls.  A [Ret] that pops it is the
   function's own return; one popping a call-site continuation address
   branches there; anything else side-exits.  The value ("obrewret")
   is no plausible code address, so a collision with real guest data
   would require the guest to forge it deliberately. *)
let ret_magic = 0x6F62726577726574L

(** Lift the function at [entry] with the given System V [sg]. *)
let lift_impl ?(config = default_config) ~read ~entry ~name (sg : signature) :
    func =
  if List.length (List.filter (fun t -> t <> F64) sg.args) > 6 then
    err "more than six integer arguments unsupported";
  if List.length (List.filter (fun t -> t = F64) sg.args) > 8 then
    err "more than eight float arguments unsupported";
  let raw =
    discover ~read ~entry ~max_insns:config.max_insns
      ~max_blocks:config.max_blocks ~callee_sigs:config.callee_sigs
  in
  (* in-region call/ret pairing: every call-continuation address, for
     the return-address guard chain each [Ret] dispatches through *)
  let call_ras =
    List.filter_map
      (fun rb ->
        match rb.term with
        | `CallDir (_, ra) | `CallSwitch (_, _, ra) -> Some ra
        | _ -> None)
      raw
    |> List.sort_uniq compare
  in
  let has_calls = call_ras <> [] in
  let b = Builder.create ~name ~sg in
  let st =
    { cfg = config; b;
      cur =
        { gpr = Array.make 16 (Undef I64);
          gpr_ptr = Array.make 16 None;
          xmm = Array.make 16 (Undef I128);
          flags = Array.make 6 (Undef I1);
          gpr_facets = Hashtbl.create 16;
          xmm_facets = Hashtbl.create 16;
          cmp_cache = None };
      block_of_addr = Hashtbl.create 16;
      final_states = Hashtbl.create 16;
      entry_phis = Hashtbl.create 16 }
  in
  (* entry block: virtual stack + parameter binding (Sec. III-A/F) *)
  let stack = Builder.alloca b config.stack_size 16 in
  let sp0_off = config.stack_size - 64 in
  let sp0 = Builder.gep b stack [ GConst sp0_off ] in
  let sp0i = Builder.cast b PtrToInt ~src_ty:(Ptr 0) sp0 ~dst_ty:I64 in
  st.cur.gpr.(Reg.index Reg.RSP) <- sp0i;
  st.cur.gpr_ptr.(Reg.index Reg.RSP) <- Some sp0;
  (* seed the return-address guard chain; emitted only for regions
     with in-region calls so call-free functions lift bit-identically *)
  if has_calls then
    Builder.store b I64 ~align:8 (CInt (I64, ret_magic)) sp0;
  let iregs = [| Reg.RDI; Reg.RSI; Reg.RDX; Reg.RCX; Reg.R8; Reg.R9 |] in
  let ii = ref 0 and fi = ref 0 in
  List.iteri
    (fun pi t ->
      let pv = V (List.nth (Builder.func b).params pi) in
      match t with
      | F64 ->
        let vec =
          Builder.insertelt b v2f64 (Undef v2f64) pv 0
        in
        let i128 = Builder.cast b Bitcast ~src_ty:v2f64 vec ~dst_ty:I128 in
        st.cur.xmm.(!fi) <- i128;
        Hashtbl.replace st.cur.xmm_facets (!fi, X_f64) pv;
        Hashtbl.replace st.cur.xmm_facets (!fi, X_v2f64) vec;
        incr fi
      | Ptr _ ->
        let iv = Builder.cast b PtrToInt ~src_ty:(Ptr 0) pv ~dst_ty:I64 in
        st.cur.gpr.(Reg.index iregs.(!ii)) <- iv;
        st.cur.gpr_ptr.(Reg.index iregs.(!ii)) <- Some pv;
        incr ii
      | _ ->
        st.cur.gpr.(Reg.index iregs.(!ii)) <- pv;
        st.cur.gpr_ptr.(Reg.index iregs.(!ii)) <- None;
        incr ii)
    sg.args;
  (* provenance: running guest-instruction ordinal at each raw block's
     start, in lift order, so every IR instruction can be stamped with
     a compact (guest addr, ordinal) id *)
  let ord_base : (int, int) Hashtbl.t = Hashtbl.create 16 in
  ignore
    (List.fold_left
       (fun n rb ->
         Hashtbl.replace ord_base rb.start n;
         n + List.length rb.insns + 1 (* + terminator *))
       0 raw);
  let prov_of_bid : (int, int) Hashtbl.t = Hashtbl.create 16 in
  (* allocate an IR block per raw block (entry raw block gets its own,
     jumped to from the IR entry) *)
  List.iter
    (fun rb ->
      let bid = Builder.new_block b in
      Hashtbl.replace st.block_of_addr rb.start bid;
      Hashtbl.replace prov_of_bid bid
        (Prov.make ~addr:rb.start ~ord:(Hashtbl.find ord_base rb.start)))
    raw;
  let bid_of a =
    match Hashtbl.find_opt st.block_of_addr a with
    | Some x -> x
    | None -> err "jump into unlifted code at 0x%x" a
  in
  let entry_state = snapshot st.cur in
  Builder.br b (bid_of entry);
  (* pre-create phis for every primary facet in every raw block except
     that the entry raw block also needs them if it has multiple preds
     (a loop back to the function start) — so create phis everywhere and
     let the entry state flow in via a pseudo-pred (the IR entry). *)
  let preds : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  let add_pred target from =
    let cur = Option.value ~default:[] (Hashtbl.find_opt preds target) in
    Hashtbl.replace preds target (cur @ [ from ])
  in
  List.iter
    (fun rb ->
      let from = bid_of rb.start in
      match rb.term with
      | `Jmp t -> add_pred (bid_of t) from
      | `Jcc (_, t, f) -> add_pred (bid_of t) from; add_pred (bid_of f) from
      | `Fall t -> add_pred (bid_of t) from
      | `CallDir (t, _) -> add_pred (bid_of t) from
      (* [`Switch]/[`CallSwitch] targets and [`Ret] continuations are
         reached through synthetic guard blocks created during
         lowering, which register their own pred edges then *)
      | `Switch _ | `CallSwitch _ | `IndExit | `Ret -> ())
    raw;
  add_pred (bid_of entry) 0 (* the IR entry block *)
  |> ignore;
  (* create phis *)
  List.iter
    (fun rb ->
      let bid = bid_of rb.start in
      Builder.set_prov b (Hashtbl.find prov_of_bid bid);
      let phis = ref [] in
      let mk ty =
        match Builder.insert_phi b bid ~ty [] with
        | V id ->
          phis := (id, ty) :: !phis;
          V id
        | _ -> err "insert_phi returned a non-SSA value"
      in
      (* order: flags (6), xmm (16), gpr ptr (16), gpr i64 (16) — we
         insert at the front so build in reverse *)
      let st' =
        { gpr = Array.make 16 (Undef I64);
          gpr_ptr = Array.make 16 None;
          xmm = Array.make 16 (Undef I128);
          flags = Array.make 6 (Undef I1);
          gpr_facets = Hashtbl.create 16;
          xmm_facets = Hashtbl.create 16;
          cmp_cache = None }
      in
      for fi = 5 downto 0 do
        st'.flags.(fi) <- mk I1
      done;
      for x = 15 downto 0 do
        st'.xmm.(x) <- mk I128
      done;
      for r = 15 downto 0 do
        st'.gpr_ptr.(r) <- Some (mk (Ptr 0))
      done;
      for r = 15 downto 0 do
        st'.gpr.(r) <- mk I64
      done;
      Hashtbl.replace st.entry_phis bid (Array.of_list !phis);
      (* stash the entry state for this block *)
      Hashtbl.replace st.final_states (-bid - 1000) st'
      (* entry states keyed negatively; final states keyed by bid *))
    raw;
  (* push a constant return address onto the virtual stack (the store
     half of in-region call/ret pairing) *)
  let push_ra ra =
    let sp = get_gpr_ptr st Reg.RSP in
    let sp' = Builder.gep b sp [ GConst (-8) ] in
    let spi =
      Builder.bin b Add I64 (get_gpr64 st Reg.RSP) (CInt (I64, -8L))
    in
    set_gpr64 ~ptr:sp' st Reg.RSP spi;
    Builder.store b I64 ~align:8 (CInt (I64, Int64.of_int ra)) sp'
  in
  (* runtime guard chain: compare the dispatched value [v] against each
     [(key, dest)] candidate, branching to [dest] on a match; the final
     else block keeps its fresh-block [Unreachable] terminator — the
     sound side-exit for a value outside the enumerated set.  Guard
     blocks register their own pred edges and exit states here, which
     is safe because phi filling only runs after the whole lift loop. *)
  let guard_chain from0 v (cases : (int64 * int) list) =
    let exit_st = snapshot st.cur in
    let from = ref from0 in
    List.iter
      (fun (key, dest) ->
        let c = Builder.icmp b Eq I64 v (CInt (I64, key)) in
        let g = Builder.new_block b in
        Builder.condbr b c dest g;
        add_pred dest !from;
        Hashtbl.replace st.final_states !from exit_st;
        Builder.position b g;
        from := g)
      cases
  in
  let emit_ret () =
    match sg.ret with
    | None -> Builder.ret b None
    | Some F64 -> Builder.ret b (Some (get_xmm_f64 st 0))
    | Some (Ptr _) -> Builder.ret b (Some (get_gpr_ptr st Reg.RAX))
    | Some t ->
      let v = get_gpr64 st Reg.RAX in
      let v =
        if t = I64 then v
        else Builder.cast st.b Trunc ~src_ty:I64 v ~dst_ty:t
      in
      Builder.ret b (Some v)
  in
  (* lift each raw block *)
  List.iter
    (fun rb ->
      Fault.point ~addr:rb.start "lift.block";
      let bid = bid_of rb.start in
      Builder.position b bid;
      (* block-start prov covers empty blocks' terminator lowering;
         after the loop cur_prov is the last insn's, which is what the
         [`Jcc] condition reconstruction should be attributed to (the
         cmp/test normally ends the block) *)
      Builder.set_prov b (Hashtbl.find prov_of_bid bid);
      let entry_st = Hashtbl.find st.final_states (-bid - 1000) in
      st.cur <- snapshot entry_st;
      let ord = ref (Hashtbl.find ord_base rb.start) in
      List.iter
        (fun (a, i) ->
          Builder.set_prov b (Prov.make ~addr:a ~ord:!ord);
          incr ord;
          lift_insn st i)
        rb.insns;
      (match rb.term with
       | `Jmp t -> Builder.br b (bid_of t)
       | `Fall t -> Builder.br b (bid_of t)
       | `Jcc (c, t, f) ->
         let cond = cond_value st c in
         Builder.condbr b cond (bid_of t) (bid_of f)
       | `CallDir (t, ra) ->
         push_ra ra;
         Builder.br b (bid_of t)
       | `Switch (op, ts) ->
         (* guard on the value actually dispatched at runtime, not on
            the discovery-time enumeration *)
         let v = read_operand st Insn.W64 op in
         guard_chain bid v
           (List.map (fun t -> (Int64.of_int t, bid_of t)) ts)
       | `CallSwitch (op, ts, ra) ->
         let v = read_operand st Insn.W64 op in
         push_ra ra;
         guard_chain bid v
           (List.map (fun t -> (Int64.of_int t, bid_of t)) ts)
       | `IndExit ->
         (* unknown indirect target set: the fresh block's default
            [Unreachable] terminator is the side-exit *)
         ()
       | `Ret when has_calls ->
         (* pop the return address and dispatch on it: the sentinel
            means the function's own return, a call continuation
            branches there, anything else side-exits *)
         let sp = get_gpr_ptr st Reg.RSP in
         let rav = Builder.load b I64 ~align:8 sp in
         let sp' = Builder.gep b sp [ GConst 8 ] in
         let spi =
           Builder.bin b Add I64 (get_gpr64 st Reg.RSP) (CInt (I64, 8L))
         in
         set_gpr64 ~ptr:sp' st Reg.RSP spi;
         let ret_blk = Builder.new_block b in
         guard_chain bid rav
           ((ret_magic, ret_blk)
           :: List.map (fun ra -> (Int64.of_int ra, bid_of ra)) call_ras);
         Builder.position b ret_blk;
         emit_ret ()
       | `Ret -> emit_ret ());
      Hashtbl.replace st.final_states bid (snapshot st.cur))
    raw;
  (* fill in phi incomings from predecessor final states *)
  Hashtbl.replace st.final_states 0 entry_state;
  let f = Builder.func b in
  (* inttoptr casts materialized at the end of predecessor blocks are
     buffered and appended only after all phi-filling is done — a block
     that is its own predecessor would otherwise lose them when its
     instruction list is rewritten *)
  let pending : (int * instr) list ref = ref [] in
  List.iter
    (fun rb ->
      let bid = bid_of rb.start in
      let bp = Option.value ~default:[] (Hashtbl.find_opt preds bid) in
      let blk = find_block f bid in
      let phis = Hashtbl.find st.entry_phis bid in
      (* phis array order corresponds to: gpr i64 (0..15), gpr ptr
         (16..31), xmm (32..47), flags (48..53) *)
      let value_for (k : int) (ps : rstate) (pbid : int) : value =
        if k < 16 then ps.gpr.(k)
        else if k < 32 then begin
          let r = k - 16 in
          match ps.gpr_ptr.(r) with
          | Some p -> p
          | None ->
            (* materialize inttoptr at the end of the predecessor *)
            let id = f.next_id in
            f.next_id <- id + 1;
            pending :=
              (pbid,
               { id; ty = Some (Ptr 0);
                 op = Cast (IntToPtr, I64, ps.gpr.(r), Ptr 0);
                 prov =
                   Option.value ~default:Prov.none
                     (Hashtbl.find_opt prov_of_bid pbid) })
              :: !pending;
            V id
        end
        else if k < 48 then ps.xmm.(k - 32)
        else ps.flags.(k - 48)
      in
      blk.instrs <-
        List.map
          (fun ins ->
            match ins.op with
            | Phi (t, []) -> (
              (* which facet slot is this? *)
              let k =
                let rec find i =
                  if i >= Array.length phis then -1
                  else if fst phis.(i) = ins.id then i
                  else find (i + 1)
                in
                find 0
              in
              if k < 0 then ins
              else
                let incoming =
                  List.map
                    (fun p ->
                      let ps = Hashtbl.find st.final_states p in
                      (p, value_for k ps p))
                    bp
                in
                { ins with op = Phi (t, incoming) })
            | _ -> ins)
          blk.instrs)
    raw;
  List.iter
    (fun (pbid, ins) ->
      let pblk = find_block f pbid in
      pblk.instrs <- pblk.instrs @ [ ins ])
    (List.rev !pending);
  f

let lift ?config ~read ~entry ~name (sg : signature) : func =
  Tel.span "lift" ~args:name (fun () ->
      lift_impl ?config ~read ~entry ~name sg)
