(** Flight recorder: an always-on, bounded, preallocated ring journal
    of structured pipeline events.

    The telemetry sink (PR 3) is an opt-in profiling tool: off by
    default, wall-clock stamped, tuned for chrome://tracing.  The
    flight recorder is the opposite trade: *on* by default, tiny,
    wall-clock free, and aimed at forensics — when a kernel is
    quarantined in production the last few hundred structured events
    reconstruct the causal run-up (fault injected -> sentinel
    divergence -> quarantine -> tier demotion) without any
    instrumentation having been requested in advance.

    Design rules, mirroring the telemetry sink:
    - struct-of-arrays ring, preallocated at module init; recording is
      a handful of array stores, no allocation (subject/detail strings
      are shared, not copied);
    - one load-and-branch on [enabled] when disabled, nothing else;
    - timestamps are a *logical* clock: the global sequence number of
      the event.  Recorder output is therefore machine-invariant and
      byte-stable under a fixed workload, which is what lets the
      black-box golden test and the CI causal-chain gate assert exact
      event order.

    Producers only record on transform-time paths (tier decisions,
    sentinel verdicts, fallback transitions, cache maintenance, fault
    firings) — never per guest instruction — so the recorder being on
    does not perturb simulated cycles and costs well under the bench
    wall-clock tolerance. *)

(* ------------------------------------------------------------------ *)
(* Event taxonomy                                                      *)
(* ------------------------------------------------------------------ *)

type kind =
  | Fault_injected     (* a typed fault point fired *)
  | Fault_sabotaged    (* a saboteur arm corrupted output *)
  | Sentinel_probe     (* shadow validation executed *)
  | Sentinel_divergence
  | Sentinel_quarantine
  | Sentinel_demote
  | Sentinel_heal
  | Fallback_attempt
  | Fallback_failure
  | Fallback_landed
  | Cache_flush        (* superblock cache invalidation *)
  | Cache_install      (* code bytes installed into a guest image *)
  | Dbrew_rewrite      (* a fresh (non-memoized) DBrew rewrite *)
  | Tier_enqueue       (* site queued for background compile *)
  | Tier_compile       (* compile drained from the queue *)
  | Tier_up
  | Tier_demote
  | Tier_patch         (* entry thunk retargeted *)
  | Tier_pin           (* site pinned after repeated failures *)
  | Error              (* typed Err surfaced to a boundary *)

let kind_name = function
  | Fault_injected -> "fault.injected"
  | Fault_sabotaged -> "fault.sabotaged"
  | Sentinel_probe -> "sentinel.probe"
  | Sentinel_divergence -> "sentinel.divergence"
  | Sentinel_quarantine -> "sentinel.quarantine"
  | Sentinel_demote -> "sentinel.demote"
  | Sentinel_heal -> "sentinel.heal"
  | Fallback_attempt -> "fallback.attempt"
  | Fallback_failure -> "fallback.failure"
  | Fallback_landed -> "fallback.landed"
  | Cache_flush -> "cache.flush"
  | Cache_install -> "cache.install"
  | Dbrew_rewrite -> "dbrew.rewrite"
  | Tier_enqueue -> "tier.enqueue"
  | Tier_compile -> "tier.compile"
  | Tier_up -> "tier.up"
  | Tier_demote -> "tier.demote"
  | Tier_patch -> "tier.patch"
  | Tier_pin -> "tier.pin"
  | Error -> "error"

(* Dense int codes for the SoA ring; keep in sync with [kind]. *)
let kind_code = function
  | Fault_injected -> 0
  | Fault_sabotaged -> 1
  | Sentinel_probe -> 2
  | Sentinel_divergence -> 3
  | Sentinel_quarantine -> 4
  | Sentinel_demote -> 5
  | Sentinel_heal -> 6
  | Fallback_attempt -> 7
  | Fallback_failure -> 8
  | Fallback_landed -> 9
  | Cache_flush -> 10
  | Cache_install -> 11
  | Dbrew_rewrite -> 12
  | Tier_enqueue -> 13
  | Tier_compile -> 14
  | Tier_up -> 15
  | Tier_demote -> 16
  | Tier_patch -> 17
  | Tier_pin -> 18
  | Error -> 19

let kind_of_code = [|
  Fault_injected; Fault_sabotaged; Sentinel_probe; Sentinel_divergence;
  Sentinel_quarantine; Sentinel_demote; Sentinel_heal; Fallback_attempt;
  Fallback_failure; Fallback_landed; Cache_flush; Cache_install;
  Dbrew_rewrite; Tier_enqueue; Tier_compile; Tier_up; Tier_demote;
  Tier_patch; Tier_pin; Error;
|]

(* ------------------------------------------------------------------ *)
(* Ring                                                                *)
(* ------------------------------------------------------------------ *)

(* Always-on by default: the recorder is the black box, and a black
   box that has to be switched on before the crash is not one.  The
   default capacity is small — forensics wants the last few hundred
   decisions, not a profile. *)

let enabled = ref true

let default_capacity = 4096

type ring = {
  mutable cap : int;
  mutable r_kind : int array;
  mutable r_a : int array;       (* primary integer payload (addr, tick…) *)
  mutable r_b : int array;       (* secondary integer payload *)
  mutable r_subject : string array; (* what the event is about (site, digest…) *)
  mutable r_detail : string array;  (* free-form context, "" = none *)
  mutable next : int;            (* logical clock: events ever recorded *)
}

let mk_ring cap = {
  cap;
  r_kind = Array.make cap 0;
  r_a = Array.make cap 0;
  r_b = Array.make cap 0;
  r_subject = Array.make cap "";
  r_detail = Array.make cap "";
  next = 0;
}

let ring = mk_ring default_capacity

(** [emit kind ~a ~b ~subject ~detail ()] records one event.  The
    event's logical timestamp is its global sequence number. *)
let emit ?(a = 0) ?(b = 0) ?(subject = "") ?(detail = "") kind =
  if !enabled then begin
    let r = ring in
    let i = r.next mod r.cap in
    r.r_kind.(i) <- kind_code kind;
    r.r_a.(i) <- a;
    r.r_b.(i) <- b;
    r.r_subject.(i) <- subject;
    r.r_detail.(i) <- detail;
    r.next <- r.next + 1
  end

let recorded () = ring.next
let dropped () = max 0 (ring.next - ring.cap)
let retained () = min ring.next ring.cap

let clear () = ring.next <- 0

(** Reallocate the ring to [cap] slots and clear it. *)
let resize cap =
  let cap = max 1 cap in
  let f = mk_ring cap in
  ring.cap <- f.cap;
  ring.r_kind <- f.r_kind;
  ring.r_a <- f.r_a;
  ring.r_b <- f.r_b;
  ring.r_subject <- f.r_subject;
  ring.r_detail <- f.r_detail;
  ring.next <- 0

(* ------------------------------------------------------------------ *)
(* Readout                                                             *)
(* ------------------------------------------------------------------ *)

type event = {
  seq : int;          (* logical timestamp *)
  ekind : kind;
  a : int;
  b : int;
  subject : string;
  detail : string;
}

(** Iterate the retained events oldest-first. *)
let iter f =
  let r = ring in
  let n = retained () in
  for k = r.next - n to r.next - 1 do
    let i = k mod r.cap in
    f {
      seq = k;
      ekind = kind_of_code.(r.r_kind.(i));
      a = r.r_a.(i);
      b = r.r_b.(i);
      subject = r.r_subject.(i);
      detail = r.r_detail.(i);
    }
  done

(** The last [n] events, oldest-first (fewer if the ring holds fewer). *)
let last n =
  let acc = ref [] and have = ref 0 in
  iter (fun e -> acc := e :: !acc; incr have);
  let rec drop k l = if k <= 0 then l else
      match l with [] -> [] | _ :: tl -> drop (k - 1) tl
  in
  drop (max 0 (!have - n)) (List.rev !acc)

let event_json e =
  Printf.sprintf
    "{\"seq\": %d, \"kind\": \"%s\", \"a\": %d, \"b\": %d, \
     \"subject\": \"%s\", \"detail\": \"%s\"}"
    e.seq (kind_name e.ekind) e.a e.b
    (Obrew_telemetry.Telemetry.json_escape e.subject)
    (Obrew_telemetry.Telemetry.json_escape e.detail)

(** JSON array of the last [n] retained events, oldest-first. *)
let to_json ?(n = max_int) () =
  "[" ^ String.concat ", " (List.map event_json (last n)) ^ "]"

let event_to_string e =
  let payload =
    (if e.a <> 0 || e.b <> 0 then Printf.sprintf " a=%d b=%d" e.a e.b else "")
    ^ (if e.subject <> "" then " " ^ e.subject else "")
    ^ (if e.detail <> "" then " — " ^ e.detail else "")
  in
  Printf.sprintf "[%6d] %-20s%s" e.seq (kind_name e.ekind) payload
