(** Crash forensics: schema-versioned black-box reports.

    A report is one JSON document answering "what was the system doing
    when it went wrong": the reason (typed error / sentinel divergence
    / uncaught exception / manual snapshot), the faulting stage and
    guest address when there is one, the flight-recorder tail, the
    currently-open telemetry spans, and a set of named *sections*
    contributed by whoever owns interesting global state.

    Layering: this module sits just above telemetry, below every
    producer, so it cannot reach into sentinel/tier/quarantine state
    itself.  Instead producers (or the CLI, which links everything)
    register section providers — a name plus a thunk returning a JSON
    value — and the report snapshots every registered section at build
    time.  A provider that raises contributes an error string rather
    than killing the report: forensics code must never turn one crash
    into two. *)

module Tel = Obrew_telemetry.Telemetry

let schema_version = 1

type reason =
  | Typed_error
  | Sentinel_divergence
  | Uncaught_exception
  | Manual

let reason_name = function
  | Typed_error -> "typed-error"
  | Sentinel_divergence -> "sentinel-divergence"
  | Uncaught_exception -> "uncaught-exception"
  | Manual -> "manual"

(* ------------------------------------------------------------------ *)
(* Section registry                                                    *)
(* ------------------------------------------------------------------ *)

(* Ordered association list; re-registering a name replaces the
   provider in place so repeated CLI invocations stay idempotent. *)
let sections : (string * (unit -> string)) list ref = ref []

(** [register_section name f] makes [f ()] — which must return a
    valid JSON *value* (object, array, string…) — part of every
    subsequent report under key [name]. *)
let register_section name f =
  if List.mem_assoc name !sections then
    sections :=
      List.map (fun (n, g) -> if n = name then (n, f) else (n, g)) !sections
  else sections := !sections @ [ (name, f) ]

let unregister_section name =
  sections := List.filter (fun (n, _) -> n <> name) !sections

let section_names () = List.map fst !sections

(* ------------------------------------------------------------------ *)
(* Report assembly                                                     *)
(* ------------------------------------------------------------------ *)

(** Guest-address attribution hook: the CLI points this at
    [Provenance.guest_of_host]-style lookup so a faulting address can
    be mapped back to the pre-rewrite guest instruction that produced
    the code.  Returns a JSON object string, or None. *)
let attribution : (int -> string option) ref = ref (fun _ -> None)

let default_tail = 64

(** Build a report.  [last] bounds the flight-event tail; [stage],
    [addr] and [detail] describe the fault when there is one. *)
let report ?(last = default_tail) ?stage ?addr ~reason ~detail () =
  let buf = Buffer.create 4096 in
  let add = Buffer.add_string buf in
  add "{\n";
  add (Printf.sprintf "  \"schema_version\": %d,\n" schema_version);
  add (Printf.sprintf "  \"reason\": \"%s\",\n" (reason_name reason));
  add (Printf.sprintf "  \"detail\": \"%s\",\n" (Tel.json_escape detail));
  (match stage with
   | Some s -> add (Printf.sprintf "  \"stage\": \"%s\",\n" (Tel.json_escape s))
   | None -> ());
  (match addr with
   | Some a ->
     add (Printf.sprintf "  \"fault_addr\": %d,\n" a);
     (match (try !attribution a with _ -> None) with
      | Some j -> add (Printf.sprintf "  \"fault_origin\": %s,\n" j)
      | None -> ())
   | None -> ());
  (* currently-open telemetry spans, innermost first *)
  add "  \"active_spans\": [";
  add
    (String.concat ", "
       (List.map
          (fun s -> Printf.sprintf "\"%s\"" (Tel.json_escape s))
          (Tel.active_spans ())));
  add "],\n";
  (* flight-recorder tail *)
  add "  \"flight\": {\n";
  add (Printf.sprintf "    \"recorded\": %d,\n" (Flight.recorded ()));
  add (Printf.sprintf "    \"dropped\": %d,\n" (Flight.dropped ()));
  add (Printf.sprintf "    \"events\": %s\n" (Flight.to_json ~n:last ()));
  add "  },\n";
  (* registered sections *)
  add "  \"sections\": {\n";
  let rendered =
    List.map
      (fun (name, f) ->
        let v =
          try f ()
          with e ->
            Printf.sprintf "{\"error\": \"%s\"}"
              (Tel.json_escape (Printexc.to_string e))
        in
        Printf.sprintf "    \"%s\": %s" (Tel.json_escape name) v)
      !sections
  in
  add (String.concat ",\n" rendered);
  add "\n  }\n}\n";
  Buffer.contents buf

let write ?(last = default_tail) ?stage ?addr ~reason ~detail path =
  let oc = open_out path in
  output_string oc (report ~last ?stage ?addr ~reason ~detail ());
  close_out oc
