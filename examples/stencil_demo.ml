(* The paper's case study end to end: specialize the generic 2-d
   stencil (Fig. 7) with all five modes and compare simulated run
   times and correctness.

     dune exec examples/stencil_demo.exe -- [sz] [iters]
*)

open Obrew_core

let () =
  let sz = try int_of_string Sys.argv.(1) with _ -> 33 in
  let iters = try int_of_string Sys.argv.(2) with _ -> 4 in
  Printf.printf "Jacobi %dx%d, %d iterations — generic flat stencil\n\n"
    sz sz iters;
  let env = Modes.build ~sz () in

  (* reference result, computed in OCaml *)
  Modes.reset env;
  let m1 = Obrew_stencil.Stencil.read_matrix env.Modes.w env.Modes.w.m1 in
  let m2 = Obrew_stencil.Stencil.read_matrix env.Modes.w env.Modes.w.m2 in
  let expect, _ = Obrew_stencil.Stencil.reference ~sz ~iters m1 m2 in

  Printf.printf "%-12s %14s %14s %10s %9s\n" "mode" "cycles" "instructions"
    "compile" "correct";
  List.iter
    (fun tr ->
      try
        let kernel, dt = Modes.transform env Modes.Flat Modes.Element tr in
        let cycles, insns =
          Modes.run env Modes.Flat Modes.Element ~kernel ~iters
        in
        let got = Modes.result_matrix env ~iters in
        let ok =
          Array.for_all2
            (fun a b -> Float.abs (a -. b) < 1e-9)
            expect got
        in
        Printf.printf "%-12s %14d %14d %8.2fms %9s\n"
          (Modes.transform_name tr) cycles insns (dt *. 1e3)
          (if ok then "yes" else "NO!")
      with Obrew_fault.Err.Error e ->
        Printf.printf "%-12s failed: %s\n" (Modes.transform_name tr)
          (Obrew_fault.Err.to_string e))
    [ Modes.Native; Modes.Llvm; Modes.LlvmFix; Modes.DBrew; Modes.DBrewLlvm ];

  (* show what specialization did to the code *)
  print_newline ();
  let kernel, _ = Modes.transform env Modes.Flat Modes.Element Modes.DBrewLlvm in
  Printf.printf "DBrew+LLVM specialized element kernel:\n%s\n"
    (Obrew_x86.Pp.listing ~addrs:false
       (Obrew_x86.Image.disassemble_fn env.Modes.img kernel))
