(* Cross-cutting integration tests:
   - lifter configuration ablations remain semantics-preserving
   - DBrew state widening converges on value-dependent loops
   - IR-level fixation folds flat structures but not nested pointers
   - backend coverage for less common operations *)

open Obrew_x86
open Obrew_ir
open Obrew_opt
open Obrew_lifter
open Obrew_backend
open Obrew_dbrew
open Insn

let check = Alcotest.check
let ci64 = Alcotest.int64
let cint = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Lifter ablations: every config must stay correct                    *)
(* ------------------------------------------------------------------ *)

let sum_loop_code =
  [ I (Alu (Xor, W32, OReg Reg.RAX, OReg Reg.RAX));
    L 0;
    I (Alu (Add, W64, OReg Reg.RAX, OMem (mem_bi Reg.RDI Reg.RSI S8)));
    I (Unop (Dec, W64, OReg Reg.RSI));
    I (Jcc (NS, Lbl 0));
    I Ret ]

let ablation_correct (cfg : Lift.config) name () =
  let img = Image.create () in
  let arr = Image.alloc_i64_array img [| 3L; 1L; 4L; 1L; 5L |] in
  let fn = Image.install_code img sum_loop_code in
  let f =
    Lift.lift ~config:cfg ~read:(Mem.read_u8 img.Image.cpu.Cpu.mem)
      ~entry:fn ~name:"lifted"
      { Ins.args = [ Ptr 0; I64 ]; ret = Some I64 }
  in
  Verify.assert_ok ~ctx:name f;
  Pipeline.run { Ins.funcs = [ f ]; globals = [] };
  Verify.assert_ok ~ctx:(name ^ " post-O3") f;
  let jit = Jit.install_func img f in
  let args = [ Int64.of_int arr; 4L ] in
  let native, _ = Image.call img ~fn ~args in
  let jitted, _ = Image.call img ~fn:jit ~args in
  check ci64 name native jitted;
  check ci64 (name ^ " value") 14L jitted

let d = Lift.default_config

(* ------------------------------------------------------------------ *)
(* Lifter error behaviour                                              *)
(* ------------------------------------------------------------------ *)

let expect_lift_error items sg msg_part () =
  let img = Image.create () in
  let fn = Image.install_code img items in
  match
    Lift.lift ~read:(Mem.read_u8 img.Image.cpu.Cpu.mem) ~entry:fn
      ~name:"f" sg
  with
  | exception Obrew_fault.Err.Error e ->
    let m = Obrew_fault.Err.to_string e in
    Alcotest.(check bool)
      (Printf.sprintf "error mentions %S (got %S)" msg_part m)
      true
      (let rec has i =
         i + String.length msg_part <= String.length m
         && (String.sub m i (String.length msg_part) = msg_part || has (i + 1))
       in
       has 0)
  | _ -> Alcotest.fail "expected a lift error"

(* an indirect jump with no derivable target set no longer rejects the
   whole region at lift time: the branch lowers to a guarded side-exit
   that raises a typed error only if actually reached at runtime *)
let test_lift_side_exits_indirect_jump () =
  let img = Image.create () in
  let fn = Image.install_code img [ I (JmpInd (OReg Reg.RAX)); I Ret ] in
  let f =
    Lift.lift ~read:(Mem.read_u8 img.Image.cpu.Cpu.mem) ~entry:fn ~name:"f"
      { Ins.args = [ I64 ]; ret = Some I64 }
  in
  let m = { Ins.funcs = [ f ]; globals = [] } in
  let ctx = Interp.create ~mem:img.Image.cpu.Cpu.mem m in
  match Interp.run ctx "f" [ Interp.I 1L ] with
  | _ -> Alcotest.fail "unknown-target indirect jump executed?"
  | exception Interp.Interp_error _ -> ()

(* a call without a declared signature is now treated as in-region
   control flow; aimed at unmapped memory the "callee" is a run of
   zero bytes that blows the discovery budget — a typed lift error,
   not executed garbage *)
let test_lift_rejects_unknown_callee =
  expect_lift_error
    [ I (Call (Abs 0x500000)); I Ret ]
    { Ins.args = [ I64 ]; ret = Some I64 }
    "budget"

let test_lift_rejects_many_args () =
  let img = Image.create () in
  let fn = Image.install_code img [ I Ret ] in
  match
    Lift.lift ~read:(Mem.read_u8 img.Image.cpu.Cpu.mem) ~entry:fn ~name:"f"
      { Ins.args = [ I64; I64; I64; I64; I64; I64; I64 ]; ret = None }
  with
  | exception Obrew_fault.Err.Error _ -> ()
  | _ -> Alcotest.fail "expected rejection of 7 integer args"

(* ------------------------------------------------------------------ *)
(* DBrew widening on value-dependent loops                             *)
(* ------------------------------------------------------------------ *)

let test_widening_converges () =
  (* a loop whose induction variable starts KNOWN but whose bound is
     unknown: naive per-value specialization would explode; widening
     must emit a finite peeled prefix plus a general loop *)
  let img = Image.create () in
  let fn =
    Image.install_code img
      [ I (Alu (Xor, W32, OReg Reg.RAX, OReg Reg.RAX));
        I (Mov (W64, OReg Reg.RCX, OImm 0L));
        L 0;
        I (Alu (Add, W64, OReg Reg.RAX, OReg Reg.RCX));
        I (Unop (Inc, W64, OReg Reg.RCX));
        I (Alu (Cmp, W64, OReg Reg.RCX, OReg Reg.RDI));
        I (Jcc (NE, Lbl 0));
        I Ret ]
  in
  let r = Api.dbrew_new img fn in
  let fn' = Api.dbrew_rewrite r in
  Alcotest.(check bool) "rewrite succeeded"
    true (r.Api.last_error = None);
  List.iter
    (fun n ->
      let o, _ = Image.call img ~fn ~args:[ n ] in
      let n', _ = Image.call img ~fn:fn' ~args:[ n ] in
      check ci64 (Printf.sprintf "sum 0..%Ld" n) o n')
    [ 1L; 2L; 5L; 30L; 100L ];
  (* the emitted code must be a loop, not 100 unrolled copies *)
  let code = Image.disassemble_fn img fn' in
  Alcotest.(check bool)
    (Printf.sprintf "bounded size (%d insns)" (List.length code))
    true
    (List.length code < 60)

let test_variant_budget_respected () =
  (* nested value-dependent loops still converge *)
  let img = Image.create () in
  let fn =
    Image.install_code img
      [ I (Alu (Xor, W32, OReg Reg.RAX, OReg Reg.RAX));
        I (Mov (W64, OReg Reg.RCX, OImm 0L));
        L 0;
        I (Mov (W64, OReg Reg.RDX, OImm 0L));
        L 1;
        I (Alu (Add, W64, OReg Reg.RAX, OImm 1L));
        I (Unop (Inc, W64, OReg Reg.RDX));
        I (Alu (Cmp, W64, OReg Reg.RDX, OReg Reg.RSI));
        I (Jcc (NE, Lbl 1));
        I (Unop (Inc, W64, OReg Reg.RCX));
        I (Alu (Cmp, W64, OReg Reg.RCX, OReg Reg.RDI));
        I (Jcc (NE, Lbl 0));
        I Ret ]
  in
  let r = Api.dbrew_new img fn in
  let fn' = Api.dbrew_rewrite r in
  let o, _ = Image.call img ~fn ~args:[ 7L; 9L ] in
  let n, _ = Image.call img ~fn:fn' ~args:[ 7L; 9L ] in
  check ci64 "7*9" 63L o;
  check ci64 "rewritten" o n

(* ------------------------------------------------------------------ *)
(* IR-level fixation: flat folds, nested pointers do not (Sec. IV)     *)
(* ------------------------------------------------------------------ *)

let count_ops pred (f : Ins.func) =
  List.fold_left
    (fun acc (b : Ins.block) ->
      acc + List.length (List.filter (fun i -> pred i.Ins.op) b.Ins.instrs))
    0 f.Ins.blocks

let test_fixation_folds_flat () =
  (* load a constant table entry through a fixed pointer: after
     fixation + O3 no load remains *)
  let img = Image.create () in
  let tbl = Image.alloc_i64_array img [| 11L; 22L; 33L |] in
  let fn =
    Image.install_code img
      [ I (Mov (W64, OReg Reg.RAX, OMem (mem_base ~disp:8 Reg.RDI)));
        I (Alu (Add, W64, OReg Reg.RAX, OReg Reg.RSI));
        I Ret ]
  in
  let sg = { Ins.args = [ Ptr 0; I64 ]; ret = Some I64 } in
  let f =
    Lift.lift ~read:(Mem.read_u8 img.Image.cpu.Cpu.mem) ~entry:fn
      ~name:"lifted" sg
  in
  f.Ins.always_inline <- true;
  let bytes = Mem.read_bytes img.Image.cpu.Cpu.mem tbl 24 in
  let g = { Ins.gname = "t"; bytes; galign = 8; constant = true } in
  let b = Builder.create ~name:"wrap" ~sg in
  ignore
    (Builder.call b "lifted" sg
       [ Ins.Global "t"; Ins.V (List.nth (Builder.func b).Ins.params 1) ]);
  (match (Builder.func b).Ins.sg.ret with
   | Some _ ->
     (* wrapper forwards the call result *)
     ()
   | None -> ());
  let wrap = Builder.func b in
  (* fix: the call result must be returned *)
  (match wrap.Ins.blocks with
   | [ blk ] -> (
     match List.rev blk.Ins.instrs with
     | last :: _ -> blk.Ins.term <- Ins.Ret (Some (Ins.V last.Ins.id))
     | [] -> ())
   | _ -> ());
  let m = { Ins.funcs = [ f; wrap ]; globals = [ g ] } in
  Pipeline.run m;
  Verify.assert_ok wrap;
  check cint "no loads remain" 0
    (count_ops (function Ins.Load _ -> true | _ -> false) wrap);
  (* and the behaviour matches: wrap(x) = 22 + x *)
  let ctx = Interp.create ~mem:img.Image.cpu.Cpu.mem m in
  Interp.bind_global ctx "t" tbl;
  (match Interp.run ctx "wrap" [ Interp.P 0; Interp.I 5L ] with
   | Some (Interp.I v) -> check ci64 "22+5" 27L v
   | _ -> Alcotest.fail "expected int")

let test_fixation_stops_at_nested_pointer () =
  (* table[1] holds a POINTER; the pointed-to value must NOT fold
     (Sec. IV: "nested pointers will not be marked as constant") *)
  let img = Image.create () in
  let inner = Image.alloc_i64_array img [| 777L |] in
  let tbl = Image.alloc_i64_array img [| 0L; Int64.of_int inner |] in
  let fn =
    Image.install_code img
      [ I (Mov (W64, OReg Reg.RAX, OMem (mem_base ~disp:8 Reg.RDI)));
        I (Mov (W64, OReg Reg.RAX, OMem (mem_base Reg.RAX)));
        I Ret ]
  in
  let sg = { Ins.args = [ Ptr 0 ]; ret = Some I64 } in
  let f =
    Lift.lift ~read:(Mem.read_u8 img.Image.cpu.Cpu.mem) ~entry:fn
      ~name:"lifted" sg
  in
  f.Ins.always_inline <- true;
  let bytes = Mem.read_bytes img.Image.cpu.Cpu.mem tbl 16 in
  let g = { Ins.gname = "t"; bytes; galign = 8; constant = true } in
  let b = Builder.create ~name:"wrap" ~sg in
  let r = Builder.call b "lifted" sg [ Ins.Global "t" ] in
  Builder.ret b (Some r);
  let wrap = Builder.func b in
  let m = { Ins.funcs = [ f; wrap ]; globals = [ g ] } in
  Pipeline.run m;
  (* exactly one load survives: the dereference of the nested pointer *)
  check cint "one load remains" 1
    (count_ops (function Ins.Load _ -> true | _ -> false) wrap);
  let ctx = Interp.create ~mem:img.Image.cpu.Cpu.mem m in
  Interp.bind_global ctx "t" tbl;
  (match Interp.run ctx "wrap" [ Interp.P 0 ] with
   | Some (Interp.I v) -> check ci64 "deref" 777L v
   | _ -> Alcotest.fail "expected int")

(* ------------------------------------------------------------------ *)
(* Backend operation coverage                                          *)
(* ------------------------------------------------------------------ *)

let jit_i64 f args =
  let m = { Ins.funcs = [ f ]; globals = [] } in
  let img = Image.create () in
  ignore (Jit.install_module img m);
  fst (Image.call img ~fn:(Image.lookup img f.Ins.fname) ~args)

let test_backend_sdiv_srem () =
  let b = Builder.create ~name:"f" ~sg:{ args = [ I64; I64 ]; ret = Some I64 } in
  let q = Builder.bin b SDiv I64 (V 0) (V 1) in
  let r = Builder.bin b SRem I64 (V 0) (V 1) in
  let s = Builder.bin b Mul I64 q (CInt (I64, 1000L)) in
  let o = Builder.bin b Add I64 s r in
  Builder.ret b (Some o);
  let f = Builder.func b in
  check ci64 "100/7" 14002L (jit_i64 f [ 100L; 7L ]);
  check ci64 "-100/7" (-14002L) (jit_i64 f [ -100L; 7L ])

let test_backend_variable_shifts () =
  let b = Builder.create ~name:"f" ~sg:{ args = [ I64; I64 ]; ret = Some I64 } in
  let l = Builder.bin b Shl I64 (V 0) (V 1) in
  let r = Builder.bin b AShr I64 l (V 1) in
  Builder.ret b (Some r);
  let f = Builder.func b in
  check ci64 "shl/sar" 5L (jit_i64 f [ 5L; 13L ]);
  check ci64 "negative" (-5L) (jit_i64 f [ -5L; 3L ])

let test_backend_fcmp_predicates () =
  List.iter
    (fun (p, a, b_, want) ->
      let b = Builder.create ~name:"f" ~sg:{ args = [ F64; F64 ]; ret = Some I64 } in
      let c = Builder.fcmp b p F64 (V 0) (V 1) in
      let z = Builder.cast b Zext ~src_ty:I1 c ~dst_ty:I64 in
      Builder.ret b (Some z);
      let f = Builder.func b in
      let m = { Ins.funcs = [ f ]; globals = [] } in
      let img = Image.create () in
      ignore (Jit.install_module img m);
      let r, _ = Image.call img ~fn:(Image.lookup img "f") ~fargs:[ a; b_ ] in
      check ci64
        (Printf.sprintf "%s %f %f" (Pp_ir.fcmp_name p) a b_)
        want r)
    [ (Oeq, 1.0, 1.0, 1L); (Oeq, 1.0, 2.0, 0L); (Oeq, Float.nan, 1.0, 0L);
      (One, 1.0, 2.0, 1L); (One, Float.nan, 1.0, 0L);
      (Olt, 1.0, 2.0, 1L); (Olt, 2.0, 1.0, 0L); (Olt, Float.nan, 1.0, 0L);
      (Ole, 2.0, 2.0, 1L); (Ogt, 3.0, 2.0, 1L); (Oge, 2.0, 2.0, 1L);
      (Uno, Float.nan, 1.0, 1L); (Uno, 1.0, 2.0, 0L);
      (Ord, 1.0, 2.0, 1L); (Ord, Float.nan, 2.0, 0L);
      (Ueq, Float.nan, 1.0, 1L); (Une, Float.nan, 1.0, 1L);
      (Ult, Float.nan, 1.0, 1L); (Ule, 3.0, 2.0, 0L) ]

let test_backend_select_f64 () =
  let b =
    Builder.create ~name:"f" ~sg:{ args = [ I64; F64; F64 ]; ret = Some F64 }
  in
  let c = Builder.icmp b Ne I64 (V 0) (CInt (I64, 0L)) in
  let s = Builder.select b F64 c (V 1) (V 2) in
  Builder.ret b (Some s);
  let f = Builder.func b in
  let m = { Ins.funcs = [ f ]; globals = [] } in
  let img = Image.create () in
  ignore (Jit.install_module img m);
  let go c =
    snd (Image.call img ~fn:(Image.lookup img "f") ~args:[ c ]
           ~fargs:[ 1.5; 2.5 ])
  in
  Alcotest.(check (float 0.0)) "true arm" 1.5 (go 1L);
  Alcotest.(check (float 0.0)) "false arm" 2.5 (go 0L)

let test_backend_intrinsics () =
  let b = Builder.create ~name:"f" ~sg:{ args = [ F64 ]; ret = Some F64 } in
  let s = Builder.intr b (Sqrt F64) ~ty:F64 [ V 0 ] in
  let a = Builder.intr b (Fabs F64) ~ty:F64 [ CF64 (-3.0) ] in
  let r = Builder.fbin b FMul F64 s a in
  Builder.ret b (Some r);
  let f = Builder.func b in
  let m = { Ins.funcs = [ f ]; globals = [] } in
  let img = Image.create () in
  ignore (Jit.install_module img m);
  let _, r = Image.call img ~fn:(Image.lookup img "f") ~fargs:[ 16.0 ] in
  Alcotest.(check (float 1e-12)) "sqrt(16)*|-3|" 12.0 r

let test_backend_many_live_values () =
  (* more live values than registers: forces spilling *)
  let b = Builder.create ~name:"f" ~sg:{ args = [ I64 ]; ret = Some I64 } in
  let vs =
    List.init 24 (fun k ->
        Builder.bin b Mul I64 (V 0) (CInt (I64, Int64.of_int (k + 1))))
  in
  let total =
    List.fold_left (fun acc v -> Builder.bin b Add I64 acc v)
      (CInt (I64, 0L)) vs
  in
  Builder.ret b (Some total);
  let f = Builder.func b in
  (* expected: x * (1+2+...+24) = 300 x *)
  check ci64 "spill-heavy" 3000L (jit_i64 f [ 10L ])

(* ------------------------------------------------------------------ *)
(* Multi-group stencil: exercises the sorted kernel's outer loop       *)
(* ------------------------------------------------------------------ *)

let test_eight_point_stencil () =
  let open Obrew_core in
  let sz = 15 and iters = 2 in
  let groups = Obrew_stencil.Stencil.groups8 in
  let env = Modes.build ~sz ~groups () in
  Modes.reset env;
  let m1 = Obrew_stencil.Stencil.read_matrix env.Modes.w env.Modes.w.m1 in
  let m2 = Obrew_stencil.Stencil.read_matrix env.Modes.w env.Modes.w.m2 in
  let expect, _ =
    Obrew_stencil.Stencil.reference_groups ~groups ~sz ~iters m1 m2
  in
  List.iter
    (fun (kind, tr) ->
      let kernel, _ = Modes.transform env kind Modes.Element tr in
      let _ = Modes.run env kind Modes.Element ~kernel ~iters in
      let got = Modes.result_matrix env ~iters in
      Array.iteri
        (fun i e ->
          if Float.abs (e -. got.(i)) > 1e-9 then
            Alcotest.failf "8-point %s %s: cell %d: ref %g got %g"
              (Modes.kind_name kind) (Modes.transform_name tr) i e got.(i))
        expect)
    [ (Modes.Flat, Modes.Native); (Modes.Flat, Modes.DBrew);
      (Modes.Flat, Modes.DBrewLlvm); (Modes.Flat, Modes.LlvmFix);
      (Modes.Sorted, Modes.Native); (Modes.Sorted, Modes.DBrew);
      (Modes.Sorted, Modes.DBrewLlvm); (Modes.Sorted, Modes.LlvmFix) ]

let test_eight_point_specialization_wins () =
  (* specialization must still pay off with two coefficient groups *)
  let open Obrew_core in
  let groups = Obrew_stencil.Stencil.groups8 in
  let env = Modes.build ~sz:15 ~groups () in
  let nat = Modes.native_addr env Modes.Sorted Modes.Element in
  let c0, _ = Modes.run env Modes.Sorted Modes.Element ~kernel:nat ~iters:2 in
  let k, _ = Modes.transform env Modes.Sorted Modes.Element Modes.DBrewLlvm in
  let c1, _ = Modes.run env Modes.Sorted Modes.Element ~kernel:k ~iters:2 in
  Alcotest.(check bool)
    (Printf.sprintf "DBrew+LLVM (%d) beats native (%d)" c1 c0)
    true
    (c1 * 2 < c0 * 2 && c1 < c0)

(* ------------------------------------------------------------------ *)
(* Fail-safe pipeline: fault matrix, watchdog, cache hygiene           *)
(* ------------------------------------------------------------------ *)

open Obrew_fault

(* Injecting one fault forever at each pipeline stage and requesting
   the most sophisticated mode must land exactly where the degradation
   chain predicts — and the degraded kernel must still compute the
   native result. *)
let test_fault_matrix () =
  let open Obrew_core in
  let sz = 9 and iters = 2 in
  let env = Modes.build ~sz () in
  let kernel = Modes.native_addr env Modes.Flat Modes.Element in
  ignore (Modes.run env Modes.Flat Modes.Element ~kernel ~iters);
  let want = Modes.result_matrix env ~iters in
  List.iter
    (fun (point, expect) ->
      Fault.install [ Fault.arm point ];
      let r =
        try Modes.transform_safe env Modes.Flat Modes.Element Modes.DBrewLlvm
        with exn ->
          Fault.clear ();
          Alcotest.failf "%s: transform_safe raised %s" point
            (Printexc.to_string exn)
      in
      Fault.clear ();
      Alcotest.(check string)
        (Printf.sprintf "%s lands on" point)
        (Modes.transform_name expect)
        (Modes.transform_name r.Modes.used);
      (* every failed attempt along the way is typed and injected *)
      List.iter
        (fun (_, e) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s failure is tagged injected" point)
            true (Err.injected e))
        r.Modes.failures;
      ignore
        (Modes.run env Modes.Flat Modes.Element ~kernel:r.Modes.kernel
           ~iters);
      let got = Modes.result_matrix env ~iters in
      Array.iteri
        (fun i e ->
          if Int64.bits_of_float e <> Int64.bits_of_float got.(i) then
            Alcotest.failf "%s via %s: cell %d differs" point
              (Modes.transform_name r.Modes.used) i)
        want)
    [ (* rewriter entry fails -> both DBrew modes die -> Llvm *)
      ("rewrite.trace", Modes.Llvm);
      ("rewrite.emit", Modes.Llvm);
      ("emulate.scratch", Modes.Llvm);
      (* decoder fails everywhere (rewriter fetch and lifter) -> Native *)
      ("decode.truncated", Modes.Native);
      (* encoder fails for DBrew emission and the JIT backend -> Native *)
      ("encode.assemble", Modes.Native);
      ("install.code", Modes.Native);
      (* lifter/optimizer/backend/verifier fail -> plain DBrew still ok *)
      ("lift.discover", Modes.DBrew);
      ("lift.block", Modes.DBrew);
      ("opt.gvn", Modes.DBrew);
      ("backend.isel", Modes.DBrew);
      ("verify.func", Modes.DBrew) ]

(* checked mode: an injected optimizer-pass failure is dropped and the
   transform still lands on the requested mode *)
let test_checked_drops_pass () =
  let open Obrew_core in
  let env = Modes.build ~sz:9 () in
  Fault.install [ Fault.arm "opt.gvn" ];
  let r =
    Modes.transform_safe ~checked:true env Modes.Flat Modes.Element
      Modes.DBrewLlvm
  in
  Fault.clear ();
  Alcotest.(check string) "still DBrew+LLVM"
    (Modes.transform_name Modes.DBrewLlvm)
    (Modes.transform_name r.Modes.used);
  Alcotest.(check bool) "gvn dropped" true
    (List.exists (fun (p, _) -> p = "gvn") r.Modes.dropped)

(* transient fault + retry: the fallback result must not be memoized as
   a success; the retry must deliver the real specialized kernel *)
let test_transient_fault_not_cached () =
  let open Obrew_core in
  let env = Modes.build ~sz:9 () in
  Api.memo_reset ();
  Fault.install [ Fault.arm ~fires:1 "rewrite.trace" ];
  let r1 = Modes.transform_safe env Modes.Flat Modes.Element Modes.DBrew in
  Fault.clear ();
  Alcotest.(check string) "degraded to Llvm"
    (Modes.transform_name Modes.Llvm)
    (Modes.transform_name r1.Modes.used);
  (* nothing may have been cached while the plan was installed *)
  Alcotest.(check (pair int int)) "dbrew memo untouched" (0, 0)
    (Api.memo_stats ());
  Alcotest.(check (pair int int)) "transform memo untouched" (0, 0)
    (Modes.memo_stats env);
  let r2 = Modes.transform_safe env Modes.Flat Modes.Element Modes.DBrew in
  Alcotest.(check string) "retry specializes"
    (Modes.transform_name Modes.DBrew)
    (Modes.transform_name r2.Modes.used);
  Alcotest.(check int) "retry is clean" 0 (List.length r2.Modes.failures)

(* the watchdog turns an emulated infinite loop into a typed error on
   both execution engines *)
let test_watchdog () =
  let img = Image.create () in
  let fn = Image.install_code img [ L 0; I (Jmp (Lbl 0)) ] in
  List.iter
    (fun engine ->
      match Image.call img ~engine ~fn ~max_insns:10_000 with
      | _ -> Alcotest.fail "infinite loop terminated?"
      | exception Err.Error e ->
        Alcotest.(check string) "stage" "emulate" (Err.stage_name e.Err.stage);
        Alcotest.(check bool) "carries the looping address" true
          (e.Err.addr <> None);
        let mentions s sub =
          let n = String.length sub in
          let rec go i =
            i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
          in
          go 0
        in
        Alcotest.(check bool) "names the budget" true
          (mentions e.Err.detail "budget"))
    [ Cpu.Superblocks; Cpu.SingleStep ]

(* a decode failure mid-block must behave identically on both engines
   (typed error, same faulting address) and must not poison the block
   cache *)
let test_superblock_decode_failure () =
  let run_once engine =
    let img = Image.create () in
    let fn =
      Image.install_code img
        [ I (Mov (W64, OReg Reg.RAX, OImm 7L)); I Ret ]
    in
    (* clobber the ret with an undecodable byte *)
    let ret_addr = fn + 7 in
    Mem.write_u8 img.Image.cpu.Cpu.mem ret_addr 0x06;
    match Image.call img ~engine ~fn with
    | _ -> Alcotest.fail "garbage executed"
    | exception Err.Error e ->
      (e.Err.stage, Option.map (fun a -> a - fn) e.Err.addr, ret_addr - fn)
  in
  let s1, o1, garbage1 = run_once Cpu.Superblocks in
  let s2, o2, garbage2 = run_once Cpu.SingleStep in
  Alcotest.(check string) "stage agrees" (Err.stage_name s2)
    (Err.stage_name s1);
  Alcotest.(check string) "stage is decode" "decode" (Err.stage_name s1);
  Alcotest.(check (option int)) "faulting offset agrees" o2 o1;
  Alcotest.(check (option int)) "address points at the garbage byte"
    (Some garbage1) o1;
  Alcotest.(check int) "same layout" garbage1 garbage2;
  (* the cached prefix must still replay to the same typed error *)
  let img = Image.create () in
  let fn =
    Image.install_code img [ I (Mov (W64, OReg Reg.RAX, OImm 7L)); I Ret ]
  in
  Mem.write_u8 img.Image.cpu.Cpu.mem (fn + 7) 0x06;
  let fail_addr engine =
    match Image.call img ~engine ~fn with
    | _ -> None
    | exception Err.Error e -> e.Err.addr
  in
  let first = fail_addr Cpu.Superblocks in
  let second = fail_addr Cpu.Superblocks in
  Alcotest.(check bool) "replay from cache raises identically" true
    (first = second && first <> None)

let () =
  Alcotest.run "integration"
    [ ("lifter ablations",
       [ Alcotest.test_case "default" `Quick
           (ablation_correct d "default");
         Alcotest.test_case "no flag cache" `Quick
           (ablation_correct { d with flag_cache = false } "noflag");
         Alcotest.test_case "no facet cache" `Quick
           (ablation_correct { d with facet_cache = false } "nofacet");
         Alcotest.test_case "inttoptr addressing" `Quick
           (ablation_correct { d with use_gep = false } "nogep");
         Alcotest.test_case "all off" `Quick
           (ablation_correct
              { d with flag_cache = false; facet_cache = false;
                       use_gep = false }
              "none") ]);
      ("lifter errors",
       [ Alcotest.test_case "indirect jump side-exit" `Quick
           test_lift_side_exits_indirect_jump;
         Alcotest.test_case "unknown callee" `Quick
           test_lift_rejects_unknown_callee;
         Alcotest.test_case "too many args" `Quick
           test_lift_rejects_many_args ]);
      ("dbrew widening",
       [ Alcotest.test_case "converges" `Quick test_widening_converges;
         Alcotest.test_case "nested loops" `Quick
           test_variant_budget_respected ]);
      ("fixation",
       [ Alcotest.test_case "flat folds fully" `Quick test_fixation_folds_flat;
         Alcotest.test_case "nested pointer stops" `Quick
           test_fixation_stops_at_nested_pointer ]);
      ("multi-group stencil",
       [ Alcotest.test_case "8-point correctness" `Quick
           test_eight_point_stencil;
         Alcotest.test_case "8-point speedup" `Quick
           test_eight_point_specialization_wins ]);
      ("fail-safe pipeline",
       [ Alcotest.test_case "fault matrix" `Quick test_fault_matrix;
         Alcotest.test_case "checked drops broken pass" `Quick
           test_checked_drops_pass;
         Alcotest.test_case "transient fault not cached" `Quick
           test_transient_fault_not_cached;
         Alcotest.test_case "watchdog" `Quick test_watchdog;
         Alcotest.test_case "superblock decode failure" `Quick
           test_superblock_decode_failure ]);
      ("backend ops",
       [ Alcotest.test_case "sdiv/srem" `Quick test_backend_sdiv_srem;
         Alcotest.test_case "variable shifts" `Quick
           test_backend_variable_shifts;
         Alcotest.test_case "fcmp predicates" `Quick
           test_backend_fcmp_predicates;
         Alcotest.test_case "select f64" `Quick test_backend_select_f64;
         Alcotest.test_case "intrinsics" `Quick test_backend_intrinsics;
         Alcotest.test_case "spilling" `Quick test_backend_many_live_values ])
    ]
