(* DBrew tests: specialization must preserve behaviour (differential
   against the original binary) and actually specialize (smaller or
   constant-folded code, unrolled loops, inlined calls). *)

open Obrew_x86
open Obrew_dbrew
open Insn

let check = Alcotest.check
let ci64 = Alcotest.int64
let cint = Alcotest.int

let insn_count img fn =
  List.length (Image.disassemble_fn img fn)

(* f(a, b) = a + 2*b *)
let linear_code =
  [ I (Lea (Reg.RAX, mem_bi Reg.RDI Reg.RSI S2)); I Ret ]

let test_passthrough () =
  (* no specialization configured: rewritten code must behave the same *)
  let img = Image.create () in
  let fn = Image.install_code img linear_code in
  let r = Api.dbrew_new img fn in
  let fn' = Api.dbrew_rewrite r in
  List.iter
    (fun (a, b) ->
      let o, _ = Image.call img ~fn ~args:[ a; b ] in
      let n, _ = Image.call img ~fn:fn' ~args:[ a; b ] in
      check ci64 (Printf.sprintf "f(%Ld,%Ld)" a b) o n)
    [ (1L, 2L); (-5L, 7L); (0L, 0L) ]

let test_par_fixation () =
  (* fix b = 21: f(a) = a + 42; the lea must fold the known index *)
  let img = Image.create () in
  let fn = Image.install_code img linear_code in
  let r = Api.dbrew_new img fn in
  Api.dbrew_set_par r 1 21L;
  let fn' = Api.dbrew_rewrite r in
  Alcotest.(check bool) "rewrote" true (fn' <> fn);
  let n, _ = Image.call img ~fn:fn' ~args:[ 100L; 999L (* ignored *) ] in
  check ci64 "specialized" 142L n

let test_lea_wraps_64bit () =
  (* a known lea must wrap mod 2^64, not in the 63-bit address space:
     with rsi fixed to -1, shr gives 2^63-1 and 3*(2^63-1) = 2^63-3 *)
  let img = Image.create () in
  let fn =
    Image.install_code img
      [ I (Shift (Shr, W64, OReg Reg.RSI, ShImm 1));
        I (Lea (Reg.RAX, mem_bi Reg.RSI Reg.RSI S2));
        I Ret ]
  in
  let r = Api.dbrew_new img fn in
  Api.dbrew_set_par r 1 (-1L);
  let fn' = Api.dbrew_rewrite r in
  let n, _ = Image.call img ~fn:fn' ~args:[ 0L; 999L (* ignored *) ] in
  check ci64 "3 * (-1 lsr 1)" 0x7FFFFFFFFFFFFFFDL n

let test_mem_fixation () =
  (* f(p, x) = [p] * x with [p] fixed to 7 *)
  let img = Image.create () in
  let data = Image.alloc_i64_array img [| 7L |] in
  let fn =
    Image.install_code img
      [ I (Mov (W64, OReg Reg.RAX, OMem (mem_base Reg.RDI)));
        I (Imul2 (W64, Reg.RAX, OReg Reg.RSI));
        I Ret ]
  in
  let r = Api.dbrew_new img fn in
  Api.dbrew_set_par r 0 (Int64.of_int data);
  Api.dbrew_set_mem r data (data + 8);
  let fn' = Api.dbrew_rewrite r in
  let n, _ = Image.call img ~fn:fn' ~args:[ 0L (* ignored *); 6L ] in
  check ci64 "7*6" 42L n;
  (* the load must be gone: the rewritten code references no memory *)
  let code = Image.disassemble_fn img fn' in
  let has_load =
    List.exists
      (fun (_, i) ->
        match i with Mov (_, OReg _, OMem _) -> true | _ -> false)
      code
  in
  Alcotest.(check bool) "load folded away" false has_load

let test_loop_unrolling () =
  (* sum 1..n with n fixed: the loop disappears into straight-line
     code (full unrolling by known-branch following) *)
  let img = Image.create () in
  let fn =
    Image.install_code img
      [ I (Alu (Xor, W32, OReg Reg.RAX, OReg Reg.RAX));
        L 0;
        I (Alu (Add, W64, OReg Reg.RAX, OReg Reg.RDI));
        I (Unop (Dec, W64, OReg Reg.RDI));
        I (Jcc (NE, Lbl 0));
        I Ret ]
  in
  let r = Api.dbrew_new img fn in
  Api.dbrew_set_par r 0 5L;
  let fn' = Api.dbrew_rewrite r in
  let n, _ = Image.call img ~fn:fn' ~args:[ 0L ] in
  check ci64 "sum 1..5" 15L n;
  (* everything was known: the result is materialized directly *)
  let code = Image.disassemble_fn img fn' in
  let has_jcc =
    List.exists (fun (_, i) -> match i with Jcc _ -> true | _ -> false) code
  in
  Alcotest.(check bool) "loop fully unrolled" false has_jcc;
  Alcotest.(check bool) "tiny result" true (List.length code <= 3)

let test_loop_with_unknown_body () =
  (* for i in 0..3: acc += a[i]; data unknown but trip count fixed *)
  let img = Image.create () in
  let arr = Image.alloc_i64_array img [| 10L; 20L; 30L; 40L |] in
  let fn =
    Image.install_code img
      [ I (Alu (Xor, W32, OReg Reg.RAX, OReg Reg.RAX));
        I (Alu (Xor, W32, OReg Reg.RCX, OReg Reg.RCX));
        L 0;
        I (Alu (Add, W64, OReg Reg.RAX, OMem (mem_bi Reg.RDI Reg.RCX S8)));
        I (Unop (Inc, W64, OReg Reg.RCX));
        I (Alu (Cmp, W64, OReg Reg.RCX, OReg Reg.RSI));
        I (Jcc (NE, Lbl 0));
        I Ret ]
  in
  let r = Api.dbrew_new img fn in
  Api.dbrew_set_par r 1 4L; (* fix the trip count only *)
  let fn' = Api.dbrew_rewrite r in
  let n, _ = Image.call img ~fn:fn' ~args:[ Int64.of_int arr; 0L ] in
  check ci64 "sum" 100L n;
  let code = Image.disassemble_fn img fn' in
  let jccs =
    List.length
      (List.filter (fun (_, i) -> match i with Jcc _ -> true | _ -> false)
         code)
  in
  check cint "unrolled: no branches left" 0 jccs;
  (* four loads with folded constant indices *)
  let adds =
    List.length
      (List.filter
         (fun (_, i) ->
           match i with Alu (Add, _, _, OMem _) -> true | _ -> false)
         code)
  in
  check cint "four memory adds" 4 adds

let test_inlining () =
  let img = Image.create () in
  let callee =
    Image.install_code img
      [ I (Lea (Reg.RAX, mem_bi Reg.RDI Reg.RDI S1)); I Ret ]
  in
  let caller =
    Image.install_code img
      [ I (Call (Abs callee));
        I (Alu (Add, W64, OReg Reg.RAX, OImm 1L));
        I Ret ]
  in
  let r = Api.dbrew_new img caller in
  let fn' = Api.dbrew_rewrite r in
  let n, _ = Image.call img ~fn:fn' ~args:[ 21L ] in
  check ci64 "2*21+1" 43L n;
  let code = Image.disassemble_fn img fn' in
  let has_call =
    List.exists (fun (_, i) -> match i with Call _ -> true | _ -> false) code
  in
  Alcotest.(check bool) "call inlined" false has_call

let test_no_inlining_at_depth0 () =
  let img = Image.create () in
  let callee =
    Image.install_code img
      [ I (Lea (Reg.RAX, mem_bi Reg.RDI Reg.RDI S1)); I Ret ]
  in
  let caller =
    Image.install_code img
      [ I (Call (Abs callee));
        I (Alu (Add, W64, OReg Reg.RAX, OImm 1L));
        I Ret ]
  in
  let r = Api.dbrew_new img caller in
  Api.dbrew_set_inline_depth r 0;
  let fn' = Api.dbrew_rewrite r in
  let n, _ = Image.call img ~fn:fn' ~args:[ 21L ] in
  check ci64 "still correct" 43L n;
  let code = Image.disassemble_fn img fn' in
  let has_call =
    List.exists (fun (_, i) -> match i with Call _ -> true | _ -> false) code
  in
  Alcotest.(check bool) "call kept" true has_call

let test_stack_frames () =
  (* push/pop of callee-saved registers around a computation *)
  let img = Image.create () in
  let fn =
    Image.install_code img
      [ I (Push (OReg Reg.RBX));
        I (Mov (W64, OReg Reg.RBX, OReg Reg.RDI));
        I (Shift (Shl, W64, OReg Reg.RBX, ShImm 2));
        I (Mov (W64, OReg Reg.RAX, OReg Reg.RBX));
        I (Pop (OReg Reg.RBX));
        I Ret ]
  in
  let r = Api.dbrew_new img fn in
  let fn' = Api.dbrew_rewrite r in
  List.iter
    (fun a ->
      let o, _ = Image.call img ~fn ~args:[ a ] in
      let n, _ = Image.call img ~fn:fn' ~args:[ a ] in
      check ci64 (Printf.sprintf "f(%Ld)" a) o n)
    [ 3L; -3L; 1000L ]

let test_unknown_branch_both_sides () =
  (* abs(): the condition depends on the unknown argument *)
  let img = Image.create () in
  let fn =
    Image.install_code img
      [ I (Mov (W64, OReg Reg.RAX, OReg Reg.RDI));
        I (Test (W64, OReg Reg.RAX, OReg Reg.RAX));
        I (Jcc (NS, Lbl 0));
        I (Unop (Neg, W64, OReg Reg.RAX));
        L 0;
        I Ret ]
  in
  let r = Api.dbrew_new img fn in
  let fn' = Api.dbrew_rewrite r in
  List.iter
    (fun a ->
      let o, _ = Image.call img ~fn ~args:[ a ] in
      let n, _ = Image.call img ~fn:fn' ~args:[ a ] in
      check ci64 (Printf.sprintf "abs(%Ld)" a) o n)
    [ 5L; -5L; 0L; Int64.min_int ]

let test_sse_passthrough_with_folding () =
  (* float code: addresses with known bases fold to absolute *)
  let img = Image.create () in
  let arr = Image.alloc_f64_array img [| 1.5; 2.25 |] in
  let fn =
    Image.install_code img
      [ I (SseMov (Movsd, Xr 0, Xm (mem_base Reg.RDI)));
        I (SseArith (FAdd, Sd, 0, Xm (mem_base ~disp:8 Reg.RDI)));
        I Ret ]
  in
  let r = Api.dbrew_new img fn in
  Api.dbrew_set_par r 0 (Int64.of_int arr);
  let fn' = Api.dbrew_rewrite r in
  let _, x = Image.call img ~fn:fn' ~args:[ 0L ] in
  check (Alcotest.float 1e-12) "sum" 3.75 x;
  (* the memory operands must be absolute now *)
  let code = Image.disassemble_fn img fn' in
  let uses_rdi =
    List.exists
      (fun (_, i) ->
        match i with
        | SseMov (_, _, Xm { base = Some Reg.RDI; _ })
        | SseArith (_, _, _, Xm { base = Some Reg.RDI; _ }) -> true
        | _ -> false)
      code
  in
  Alcotest.(check bool) "addresses folded to absolute" false uses_rdi

let test_error_fallback () =
  (* an indirect jump cannot be rewritten: default handler returns the
     original function *)
  let img = Image.create () in
  let fn =
    Image.install_code img
      [ I (Mov (W64, OReg Reg.RAX, OReg Reg.RDI));
        I (JmpInd (OReg Reg.RSI));
        I Ret ]
  in
  let r = Api.dbrew_new img fn in
  let fn' = Api.dbrew_rewrite r in
  check cint "fallback to original" fn fn';
  Alcotest.(check bool) "error recorded" true (r.Api.last_error <> None)

let test_cmov_specialization () =
  (* max(a, b) with b fixed: the flag-known path folds the cmov *)
  let img = Image.create () in
  let fn =
    Image.install_code img
      [ I (Mov (W64, OReg Reg.RAX, OReg Reg.RDI));
        I (Alu (Cmp, W64, OReg Reg.RDI, OReg Reg.RSI));
        I (Cmov (L, W64, Reg.RAX, OReg Reg.RSI));
        I Ret ]
  in
  (* both fixed: result is a constant *)
  let r = Api.dbrew_new img fn in
  Api.dbrew_set_par r 0 3L;
  Api.dbrew_set_par r 1 5L;
  let fn' = Api.dbrew_rewrite r in
  let n, _ = Image.call img ~fn:fn' ~args:[ 0L; 0L ] in
  check ci64 "max(3,5)" 5L n;
  check cint "constant function" 2 (insn_count img fn')

(* ---------- indirect control flow devirtualization ---------- *)

module Prov = Obrew_provenance.Provenance

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* jump-table dispatch with the index fixed and the table declared
   fixed memory: the known-value lattice carries through the masked
   index and the table load, so the indirect jump rewrites into the
   selected arm directly — no indirect branch survives, and the
   devirtualization leaves a provenance remark.  The rewritten kernel
   is then pushed through the full lift+O3+JIT chain and must stay
   bit-identical to the original under the emulator. *)
let test_jump_table_devirtualized () =
  let img = Image.create () in
  let arm v = Image.install_code img [ I (Movabs (Reg.RAX, v)); I Ret ] in
  let arms = [| arm 111L; arm 222L; arm 333L; arm 444L |] in
  let tbl = Image.alloc_i64_array img (Array.map Int64.of_int arms) in
  let fn =
    Image.install_code img
      [ I (Alu (And, W64, OReg Reg.RDI, OImm 3L));
        I (Movabs (Reg.RAX, Int64.of_int tbl));
        I (JmpInd (OMem (mk_mem ~base:Reg.RAX ~index:(Reg.RDI, S8) ()))) ]
  in
  Prov.reset ();
  Prov.enable ();
  Fun.protect ~finally:(fun () -> Prov.disable (); Prov.reset ())
  @@ fun () ->
  let r = Api.dbrew_new img fn in
  Api.dbrew_set_par r 0 2L;
  Api.dbrew_set_mem r tbl (tbl + (8 * Array.length arms));
  let fn' = Api.dbrew_rewrite r in
  (match r.Api.last_error with
   | Some e ->
     Alcotest.failf "rewrite failed: %s" (Obrew_fault.Err.to_string e)
   | None -> ());
  let o, _ = Image.call img ~fn ~args:[ 2L ] in
  let n, _ = Image.call img ~fn:fn' ~args:[ 999L (* ignored *) ] in
  check ci64 "dispatches like the original" o n;
  check ci64 "arm 2 selected" 333L n;
  List.iter
    (fun (_, i) ->
      match i with
      | JmpInd _ | CallInd _ ->
        Alcotest.failf "indirect branch survived: %s" (Pp.insn i)
      | _ -> ())
    (Image.disassemble_fn img fn');
  let seen = ref false in
  Prov.iter_remarks (fun rk ->
      if
        rk.Prov.pass = "dbrew"
        && rk.Prov.action = Prov.Specialized
        && contains rk.Prov.detail "devirtualized"
      then seen := true);
  Alcotest.(check bool) "devirtualization remark recorded" true !seen;
  (* full chain: lift the devirtualized code, optimize, JIT, compare *)
  let sg = { Obrew_ir.Ins.args = [ Obrew_ir.Ins.I64 ]; ret = Some Obrew_ir.Ins.I64 } in
  let f =
    Obrew_lifter.Lift.lift
      ~read:(Mem.read_u8 img.Image.cpu.Cpu.mem)
      ~entry:fn' ~name:"jt" sg
  in
  Obrew_opt.Pipeline.run { Obrew_ir.Ins.funcs = [ f ]; globals = [] };
  Obrew_ir.Verify.assert_ok f;
  let jit = Obrew_backend.Jit.install_func img f in
  let j, _ = Image.call img ~fn:jit ~args:[ 0L ] in
  check ci64 "jitted chain bit-identical" o j

(* an indirect call through a register the lattice pins behaves like
   the direct call it names: inlined under the budget, leaving no call
   of any kind in the emitted code *)
let test_indirect_call_devirtualized () =
  let img = Image.create () in
  let callee = Image.install_code img linear_code in
  let fn =
    Image.install_code img
      [ I (Movabs (Reg.RCX, Int64.of_int callee));
        I (CallInd (OReg Reg.RCX));
        I (Alu (Add, W64, OReg Reg.RAX, OImm 1L));
        I Ret ]
  in
  let r = Api.dbrew_new img fn in
  let fn' = Api.dbrew_rewrite r in
  (match r.Api.last_error with
   | Some e ->
     Alcotest.failf "rewrite failed: %s" (Obrew_fault.Err.to_string e)
   | None -> ());
  List.iter
    (fun (a, b) ->
      let o, _ = Image.call img ~fn ~args:[ a; b ] in
      let n, _ = Image.call img ~fn:fn' ~args:[ a; b ] in
      check ci64 (Printf.sprintf "g(%Ld,%Ld)" a b) o n)
    [ (1L, 2L); (-5L, 7L); (0L, 0L) ];
  List.iter
    (fun (_, i) ->
      match i with
      | Call _ | CallInd _ | JmpInd _ ->
        Alcotest.failf "call survived devirtualization: %s" (Pp.insn i)
      | _ -> ())
    (Image.disassemble_fn img fn')

(* ---------- specialization memo cache ---------- *)

let test_rewrite_memo () =
  Api.memo_reset ();
  let img = Image.create () in
  let fn = Image.install_code img linear_code in
  let specialize v =
    let r = Api.dbrew_new img fn in
    Api.dbrew_set_par r 1 v;
    Api.dbrew_rewrite r
  in
  let a1 = specialize 21L in
  check cint "first request misses" 0 (fst (Api.memo_stats ()));
  let a2 = specialize 21L in
  check cint "repeat hits the memo" 1 (fst (Api.memo_stats ()));
  check cint "same installed code" a1 a2;
  let n, _ = Image.call img ~fn:a2 ~args:[ 100L; 999L ] in
  check ci64 "memoized result correct" 142L n;
  (* a different fixed value is a different key *)
  let a3 = specialize 30L in
  check cint "changed param misses" 2 (snd (Api.memo_stats ()));
  let n3, _ = Image.call img ~fn:a3 ~args:[ 100L; 999L ] in
  check ci64 "new specialization correct" 160L n3;
  (* memo:false bypasses the cache entirely *)
  let r = Api.dbrew_new img fn in
  Api.dbrew_set_par r 1 21L;
  ignore (Api.dbrew_rewrite ~memo:false r);
  check cint "bypass does not hit" 1 (fst (Api.memo_stats ()));
  (* overwriting the original code changes its digest: no stale hit *)
  let bytes, _, _ =
    Encode.assemble ~base:fn
      [ I (Lea (Reg.RAX, mem_bi Reg.RDI Reg.RSI S4)); I Ret ]
  in
  Mem.write_bytes img.Image.cpu.Cpu.mem fn bytes;
  Cpu.flush_code ~range:(fn, fn + String.length bytes) img.Image.cpu;
  let a4 = specialize 21L in
  check cint "patched code misses" 3 (snd (Api.memo_stats ()));
  let n4, _ = Image.call img ~fn:a4 ~args:[ 100L; 999L ] in
  check ci64 "respecialized against new code" 184L n4

let test_transform_memo () =
  let open Obrew_core in
  let env = Modes.build ~sz:17 () in
  let a1, _ = Modes.transform env Modes.Flat Modes.Element Modes.DBrewLlvm in
  check cint "first request misses" 0 (fst (Modes.memo_stats env));
  let a2, _ = Modes.transform env Modes.Flat Modes.Element Modes.DBrewLlvm in
  check cint "repeat hits the memo" 1 (fst (Modes.memo_stats env));
  check cint "same kernel address" a1 a2;
  let c1, _ = Modes.run env Modes.Flat Modes.Element ~kernel:a1 ~iters:2 in
  let c2, _ = Modes.run env Modes.Flat Modes.Element ~kernel:a2 ~iters:2 in
  check cint "memoized kernel runs identically" c1 c2;
  (* use_memo:false forces the full pipeline and does not count a hit *)
  ignore (Modes.transform ~use_memo:false env Modes.Flat Modes.Element
            Modes.DBrewLlvm);
  check cint "bypass does not hit" 1 (fst (Modes.memo_stats env))

(* ---------- property-based differential testing ---------- *)

(* random straight-line programs over rax/rcx/rdx/rsi/rdi with a random
   subset of parameters fixed: the rewritten function called with
   garbage in the fixed argument slots must behave like the original
   called with the fixed values *)
let gen_case =
  let open QCheck2.Gen in
  let reg = oneofl [ Reg.RAX; Reg.RCX; Reg.RDX; Reg.RSI; Reg.RDI ] in
  let chunk =
    oneof
      [ (let* w = oneofl [ W32; W64 ] in
         let* d = reg in
         let* s = reg in
         let* op = oneofl [ Add; Sub; And; Or; Xor ] in
         return [ Alu (op, w, OReg d, OReg s) ]);
        (let* d = reg in
         let* imm = int_range (-500) 500 in
         return [ Alu (Add, W64, OReg d, OImm (Int64.of_int imm)) ]);
        (let* d = reg in
         let* s = reg in
         let* sc = oneofl [ S1; S2; S4; S8 ] in
         let* disp = int_range (-32) 32 in
         return [ Lea (d, mem_bi ~disp s s sc) ]);
        (let* d = reg in
         let* s = reg in
         return [ Imul2 (W64, d, OReg s) ]);
        (let* d = reg in
         let* n = int_range 1 13 in
         let* op = oneofl [ Shl; Shr; Sar ] in
         return [ Shift (op, W64, OReg d, ShImm n) ]);
        (let* d = reg in
         let* s = reg in
         let* c = oneofl [ E; NE; L; GE; LE; G; B; A ] in
         return [ Alu (Cmp, W64, OReg d, OReg s); Cmov (c, W64, d, OReg s) ]);
        (let* d = reg in
         let* c = oneofl [ E; NE; L; GE ] in
         return
           [ Test (W64, OReg d, OReg d); Setcc (c, OReg Reg.RAX);
             Movzx (W64, Reg.RAX, W8, OReg Reg.RAX) ]) ]
  in
  let prelude =
    [ Mov (W64, OReg Reg.RAX, OReg Reg.RDI);
      Mov (W64, OReg Reg.RCX, OReg Reg.RSI);
      Lea (Reg.RDX, mem_bi ~disp:5 Reg.RDI Reg.RSI S4) ]
  in
  let* body = list_size (int_range 1 10) chunk in
  let* fix0 = opt (int_range (-100) 100) in
  let* fix1 = opt (int_range (-100) 100) in
  return (prelude @ List.concat body, fix0, fix1)

let prop_specialization_differential =
  QCheck2.Test.make ~name:"specialized = original with fixed args"
    ~count:300 gen_case
    (fun (prog, fix0, fix1) ->
      let img = Image.create () in
      let fn = Image.install_code img (List.map (fun i -> I i) prog @ [ I Ret ]) in
      let r = Api.dbrew_new img fn in
      (match fix0 with
       | Some v -> Api.dbrew_set_par r 0 (Int64.of_int v)
       | None -> ());
      (match fix1 with
       | Some v -> Api.dbrew_set_par r 1 (Int64.of_int v)
       | None -> ());
      let fn' = Api.dbrew_rewrite r in
      (match r.Api.last_error with
       | Some e ->
         QCheck2.Test.fail_reportf "rewrite failed: %s"
           (Obrew_fault.Err.to_string e)
       | None -> ());
      List.for_all
        (fun (a, b) ->
          let eff0 = match fix0 with Some v -> Int64.of_int v | None -> a in
          let eff1 = match fix1 with Some v -> Int64.of_int v | None -> b in
          let o, _ = Image.call img ~fn ~args:[ eff0; eff1 ] in
          let n, _ = Image.call img ~fn:fn' ~args:[ a; b ] in
          o = n
          || QCheck2.Test.fail_reportf
               "mismatch: orig(%Ld,%Ld)=%Ld vs spec(%Ld,%Ld)=%Ld\n%s" eff0
               eff1 o a b n
               (String.concat "\n" (List.map Pp.insn prog)))
        [ (3L, 5L); (-7L, 11L); (0L, 0L); (1234L, -4321L) ])

let prop_rewritten_lifts_cleanly =
  (* DBrew output must itself be liftable and optimizable: the
     DBrew+LLVM chain on random specialized programs *)
  QCheck2.Test.make ~name:"dbrew output survives lift+O3" ~count:100 gen_case
    (fun (prog, fix0, _) ->
      let img = Image.create () in
      let fn = Image.install_code img (List.map (fun i -> I i) prog @ [ I Ret ]) in
      let r = Api.dbrew_new img fn in
      (match fix0 with
       | Some v -> Api.dbrew_set_par r 0 (Int64.of_int v)
       | None -> ());
      let fn' = Api.dbrew_rewrite r in
      let sg =
        { Obrew_ir.Ins.args = [ Obrew_ir.Ins.I64; Obrew_ir.Ins.I64 ];
          ret = Some Obrew_ir.Ins.I64 }
      in
      let f =
        Obrew_lifter.Lift.lift
          ~read:(Mem.read_u8 img.Image.cpu.Cpu.mem)
          ~entry:fn' ~name:"jit" sg
      in
      Obrew_opt.Pipeline.run { Obrew_ir.Ins.funcs = [ f ]; globals = [] };
      Obrew_ir.Verify.assert_ok f;
      let jit = Obrew_backend.Jit.install_func img f in
      List.for_all
        (fun (a, b) ->
          let o, _ = Image.call img ~fn:fn' ~args:[ a; b ] in
          let n, _ = Image.call img ~fn:jit ~args:[ a; b ] in
          o = n
          || QCheck2.Test.fail_reportf "dbrew+llvm mismatch on %s"
               (String.concat "; " (List.map Pp.insn prog)))
        [ (3L, 5L); (-1L, 1L); (0L, 0L) ])

let run_suites () =
  Alcotest.run "dbrew"
    [ ("property",
       [ QCheck_alcotest.to_alcotest prop_specialization_differential;
         QCheck_alcotest.to_alcotest prop_rewritten_lifts_cleanly ]);
      ("rewrite",
       [ Alcotest.test_case "passthrough" `Quick test_passthrough;
         Alcotest.test_case "parameter fixation" `Quick test_par_fixation;
         Alcotest.test_case "known lea wraps mod 2^64" `Quick
           test_lea_wraps_64bit;
         Alcotest.test_case "memory fixation" `Quick test_mem_fixation;
         Alcotest.test_case "loop unrolling" `Quick test_loop_unrolling;
         Alcotest.test_case "unroll w/ unknown data" `Quick
           test_loop_with_unknown_body;
         Alcotest.test_case "call inlining" `Quick test_inlining;
         Alcotest.test_case "depth 0 keeps call" `Quick
           test_no_inlining_at_depth0;
         Alcotest.test_case "stack frames" `Quick test_stack_frames;
         Alcotest.test_case "unknown branch" `Quick
           test_unknown_branch_both_sides;
         Alcotest.test_case "sse + addr folding" `Quick
           test_sse_passthrough_with_folding;
         Alcotest.test_case "error fallback" `Quick test_error_fallback;
         Alcotest.test_case "cmov" `Quick test_cmov_specialization;
         Alcotest.test_case "jump table devirtualized" `Quick
           test_jump_table_devirtualized;
         Alcotest.test_case "indirect call devirtualized" `Quick
           test_indirect_call_devirtualized ]);
      ("memo",
       [ Alcotest.test_case "rewrite memo cache" `Quick test_rewrite_memo;
         Alcotest.test_case "transform memo cache" `Quick
           test_transform_memo ]) ]


let () = run_suites ()
