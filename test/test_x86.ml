(* Tests for the x86 substrate: encoder/decoder round-trips, known
   byte patterns, and emulator semantics on small assembled programs. *)

open Obrew_x86
open Insn

let check = Alcotest.check
let cstr = Alcotest.string
let cbool = Alcotest.bool
let ci64 = Alcotest.int64
let cint = Alcotest.int

let hex s =
  String.concat " "
    (List.map (fun c -> Printf.sprintf "%02x" (Char.code c))
       (List.init (String.length s) (String.get s)))

let enc ?(addr = 0x400000) i = Encode.encode_at ~addr i

(* ---------- known encodings ---------- *)

let test_known_bytes () =
  let cases =
    [ (Ret, "c3");
      (Push (OReg Reg.RAX), "50");
      (Push (OReg Reg.R12), "41 54");
      (Pop (OReg Reg.RBP), "5d");
      (Nop 1, "90");
      (Int3, "cc");
      (Ud2, "0f 0b");
      (Leave, "c9");
      (Cqo, "48 99");
      (Alu (Add, W64, OReg Reg.RAX, OImm 1L), "48 83 c0 01");
      (Alu (Sub, W64, OReg Reg.RAX, OImm 1L), "48 83 e8 01");
      (Mov (W64, OReg Reg.RAX, OReg Reg.RBX), "48 8b c3");
      (Movabs (Reg.RAX, 0x1122334455667788L),
       "48 b8 88 77 66 55 44 33 22 11");
      (Lea (Reg.RAX, mem_bi Reg.RSI Reg.RCX S8), "48 8d 04 ce");
      (SseArith (FAdd, Sd, 0, Xr 1), "f2 0f 58 c1");
      (SseLogic (Pxor, 1, Xr 1), "66 0f ef c9");
      (Setcc (E, OReg Reg.RAX), "0f 94 c0");
      (JmpInd (OReg Reg.RAX), "ff e0");
      (CallInd (OReg Reg.RAX), "ff d0");
      (JmpInd (OMem (mem_base Reg.RAX)), "ff 20") ]
  in
  List.iter
    (fun (i, expect) ->
      check cstr (Pp.insn i) expect (hex (enc i)))
    cases

(* indirect branches print in the AT&T star convention, the one thing
   the otherwise Intel-syntax printer borrows (Intel's "jmp rax" is
   too easy to misread as a typo'd direct jump); table entries and
   label-materializing movabs print as the directives they assemble
   to *)
let test_pp_indirect () =
  check cstr "jmp reg" "jmp *rax" (Pp.insn (JmpInd (OReg Reg.RAX)));
  check cstr "call reg" "call *r11" (Pp.insn (CallInd (OReg Reg.R11)));
  check cstr "jmp mem" "jmp *qword ptr [rax + 8 * rdi]"
    (Pp.insn (JmpInd (OMem (mk_mem ~base:Reg.RAX
                              ~index:(Reg.RDI, S8) ()))));
  check cstr "call mem" "call *qword ptr [rcx]"
    (Pp.insn (CallInd (OMem (mem_base Reg.RCX))));
  check cstr "table entry" "  .quad .L3" (Pp.item (Q (Lbl 3)));
  check cstr "label movabs" "  movabs rcx, .L7"
    (Pp.item (MovLbl (Reg.RCX, 7)))

let test_rel32_encoding () =
  (* jmp to self = e9 fb ff ff ff *)
  check cstr "jmp self" "e9 fb ff ff ff"
    (hex (enc ~addr:0x400000 (Jmp (Abs 0x400000))));
  (* call forward by 0x10 from 0x400000: target 0x400010, rel = 0xb *)
  check cstr "call fwd" "e8 0b 00 00 00"
    (hex (enc ~addr:0x400000 (Call (Abs 0x400010))))

(* ---------- decoder on encoder output ---------- *)

let roundtrip i =
  let addr = 0x400000 in
  let bytes = enc ~addr i in
  let read p =
    let off = p - addr in
    if off < 0 || off >= String.length bytes then 0x90
    else Char.code bytes.[off]
  in
  let j, len = Decode.decode ~read addr in
  Alcotest.(check int) ("len of " ^ Pp.insn i) (String.length bytes) len;
  check cstr ("roundtrip " ^ hex bytes) (Pp.insn i) (Pp.insn j);
  if i <> j then
    Alcotest.failf "structural mismatch: %s vs %s" (Pp.insn i) (Pp.insn j)

let sample_insns =
  let open Reg in
  [ Mov (W64, OReg RAX, OReg RDI);
    Mov (W32, OReg R9, OMem (mem_base ~disp:(-12) RBP));
    Mov (W8, OMem (mem_base RSI), OReg RCX);
    Mov (W64, OMem (mem_bi ~disp:8 RDX RCX S8), OReg RAX);
    Mov (W32, OReg RAX, OImm 42L);
    Mov (W64, OReg R13, OImm (-1L));
    Mov (W16, OMem (mem_abs 0x1234), OImm 7L);
    Movabs (R11, 0x123456789abcdef0L);
    Movzx (W64, RAX, W8, OReg RCX);
    Movzx (W32, RDX, W16, OMem (mem_base RSP));
    Movsx (W64, RAX, W32, OReg RDI);
    Movsx (W64, R8, W8, OMem (mem_base ~disp:3 R12));
    Lea (RAX, mem_bi ~disp:(-8) RSI RCX S4);
    Lea (R15, mem_abs 0x401000);
    Alu (Add, W64, OReg RAX, OReg RBX);
    Alu (Sub, W32, OReg RCX, OMem (mem_base RDI));
    Alu (And, W64, OMem (mem_base ~disp:16 RSP), OReg RDX);
    Alu (Xor, W64, OReg R10, OImm 255L);
    Alu (Cmp, W64, OReg RDI, OReg RSI);
    Alu (Cmp, W32, OReg RAX, OImm 1000000L);
    Test (W64, OReg RAX, OReg RAX);
    Test (W32, OReg RCX, OImm 8L);
    Imul2 (W64, RAX, OReg RCX);
    Imul3 (W64, RDX, OReg RDX, 649L);
    Imul3 (W32, RCX, OMem (mem_base RSI), (-7L));
    Idiv (W64, OReg RCX);
    Shift (Shl, W64, OReg RAX, ShImm 3);
    Shift (Sar, W32, OReg RDX, ShCl);
    Shift (Shr, W64, OMem (mem_base RBP), ShImm 1);
    Unop (Neg, W64, OReg RAX);
    Unop (Not, W32, OReg R9);
    Unop (Inc, W64, OReg RCX);
    Unop (Dec, W64, OMem (mem_base RDI));
    Push (OReg RBX);
    Push (OImm 100L);
    Pop (OReg R14);
    Call (Abs 0x400020);
    CallInd (OReg RAX);
    CallInd (OMem (mem_base ~disp:8 RDI));
    Jmp (Abs 0x3fffe0);
    JmpInd (OReg RCX);
    Jcc (NE, Abs 0x400100);
    Jcc (LE, Abs 0x400000);
    Cmov (L, W64, RAX, OReg RSI);
    Cmov (GE, W32, R8, OMem (mem_base RDX));
    Setcc (G, OReg RDX);
    SseMov (Movsd, Xr 0, Xm (mem_bi RSI RCX S8));
    SseMov (Movsd, Xm (mem_base ~disp:8 RDX), Xr 1);
    SseMov (Movsd, Xr 2, Xr 3);
    SseMov (Movss, Xr 4, Xm (mem_base RAX));
    SseMov (Movaps, Xr 0, Xr 1);
    SseMov (Movups, Xr 5, Xm (mem_base RSI));
    SseMov (Movupd, Xm (mem_base RDI), Xr 6);
    SseMov (Movapd, Xr 7, Xm (mem_base RSP));
    SseMov (Movdqa, Xr 8, Xm (mem_base RBX));
    SseMov (Movdqu, Xm (mem_base R9), Xr 10);
    SseMov (Movq, Xr 0, Xr 1);
    SseMov (Movq, Xr 0, Xm (mem_base RSI));
    SseMov (Movq, Xm (mem_base RDI), Xr 2);
    MovqXR (3, RAX);
    MovqRX (RCX, 4);
    SseArith (FAdd, Sd, 0, Xm (mem_bi ~disp:8 RSI RCX S8));
    SseArith (FMul, Sd, 1, Xr 2);
    SseArith (FSub, Pd, 3, Xr 4);
    SseArith (FDiv, Ss, 5, Xm (mem_base RAX));
    SseArith (FAdd, Ps, 6, Xr 7);
    SseArith (FSqrt, Sd, 8, Xr 8);
    SseLogic (Pxor, 0, Xr 0);
    SseLogic (Xorps, 1, Xr 2);
    SseLogic (Andpd, 3, Xm (mem_base RSI));
    Ucomis (Sd, 0, Xr 1);
    Ucomis (Ss, 2, Xm (mem_base RDI));
    Cvtsi2sd (0, W64, OReg RAX);
    Cvtsi2sd (1, W32, OMem (mem_base RSI));
    Cvttsd2si (RAX, W64, Xr 0);
    Cvtsd2ss (0, Xr 1);
    Cvtss2sd (2, Xm (mem_base RDX));
    Unpcklpd (0, Xr 1);
    Shufpd (2, Xr 3, 1);
    Padd (W64, 4, Xr 5);
    Padd (W32, 6, Xm (mem_base RCX));
    Mov (W8, OReg8H RAX, OImm 5L);
    Mov (W8, OReg RAX, OReg8H RBX);
    Cdq ]

let test_roundtrip_samples () = List.iter roundtrip sample_insns

(* ---------- decoder rejections ---------- *)

(* encodable-but-unsupported forms must fail with a typed [Decode]
   error naming the form and carrying the faulting address — never a
   silent misdecode into a neighbouring instruction *)
let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let decode_rejects bytes (marker : string) =
  let base = 0x400000 in
  let read p =
    let off = p - base in
    if off < 0 || off >= String.length bytes then 0x90
    else Char.code bytes.[off]
  in
  match Decode.decode ~read base with
  | i, _ ->
    Alcotest.failf "%s decoded as %s instead of failing" (hex bytes)
      (Pp.insn i)
  | exception Obrew_fault.Err.Error e ->
    check cstr (hex bytes ^ " stage") "decode"
      (Obrew_fault.Err.stage_name e.Obrew_fault.Err.stage);
    (match e.Obrew_fault.Err.addr with
     | Some a -> check cint (hex bytes ^ " address") base a
     | None -> Alcotest.failf "%s: decode error lost its address" (hex bytes));
    if not (contains e.Obrew_fault.Err.detail marker) then
      Alcotest.failf "%s: detail %S does not name the form (%S)" (hex bytes)
        e.Obrew_fault.Err.detail marker

let test_decode_typed_errors () =
  decode_rejects "\xc2\x10\x00" "ret imm16";        (* ret 0x10 *)
  decode_rejects "\xca\x10\x00" "far return";       (* retf 0x10 *)
  decode_rejects "\xcb" "far return";               (* retf *)
  decode_rejects "\xff\x1a" "far call";             (* FF /3 *)
  decode_rejects "\xff\x2a" "far jmp";              (* FF /5 *)
  decode_rejects "\xff\x3a" "FF group digit 7"      (* FF /7 *)

(* property-based roundtrip over random instruction mixes *)
let gen_gpr = QCheck2.Gen.(map Reg.of_index (int_range 0 15))
let gen_gpr_noidx =
  QCheck2.Gen.(map Reg.of_index (oneofl [0;1;2;3;5;6;7;8;9;10;11;12;13;14;15]))

let gen_mem =
  let open QCheck2.Gen in
  let* base = opt gen_gpr in
  let* index = opt (pair gen_gpr_noidx (oneofl [ S1; S2; S4; S8 ])) in
  let* disp = oneof [ return 0; int_range (-128) 127;
                      int_range (-100000) 100000 ] in
  let* seg = opt (oneofl [ FS; GS ]) in
  let* rip = frequency [ (9, return false); (1, return true) ] in
  (* index must not be rsp; absolute addressing ignores seg here;
     rip-relative operands carry neither base, index nor segment *)
  if rip then return (mem_rip disp)
  else
    return { base; index; disp;
             seg = (if base = None && index = None then None else seg);
             rip = false }

let gen_width = QCheck2.Gen.oneofl [ W8; W16; W32; W64 ]
let gen_widthi = QCheck2.Gen.oneofl [ W16; W32; W64 ]

let gen_operand w =
  let open QCheck2.Gen in
  oneof
    [ map (fun r -> OReg r) gen_gpr;
      map (fun m -> OMem m) gen_mem;
      (if w = W64 then map (fun i -> OImm (Int64.of_int i)) (int_range (-10000) 10000)
       else map (fun i -> OImm (Int64.of_int i)) (int_range (-100) 100)) ]

let gen_reg_operand =
  QCheck2.Gen.(oneof [ map (fun r -> OReg r) gen_gpr;
                       map (fun m -> OMem m) gen_mem ])

let gen_insn =
  let open QCheck2.Gen in
  let alu = oneofl [ Add; Sub; And; Or; Xor; Cmp; Adc; Sbb ] in
  oneof
    [ (let* w = gen_width in
       let* d = gen_reg_operand in
       let* s = gen_operand w in
       match d, s with
       | OMem _, OMem _ -> return (Mov (w, d, OReg Reg.RAX))
       | _ -> return (Mov (w, d, s)));
      (let* op = alu in
       let* w = gen_width in
       let* d = map (fun r -> OReg r) gen_gpr in
       let* s = gen_operand w in
       return (Alu (op, w, d, s)));
      (let* op = alu in
       let* w = gen_width in
       let* d = map (fun m -> OMem m) gen_mem in
       let* s = map (fun r -> OReg r) gen_gpr in
       return (Alu (op, w, d, s)));
      (let* w = gen_widthi in
       let* d = gen_gpr in
       let* s = gen_reg_operand in
       return (Imul2 (w, d, s)));
      (let* c = oneofl [ O; NO; B; AE; E; NE; BE; A; S; NS; P; NP; L; GE; LE; G ] in
       let* w = gen_widthi in
       let* d = gen_gpr in
       let* s = gen_reg_operand in
       return (Cmov (c, w, d, s)));
      (let* x = int_range 0 15 in
       let* m = gen_mem in
       let* p = oneofl [ Sd; Ss; Pd; Ps ] in
       let* a = oneofl [ FAdd; FSub; FMul; FDiv; FMin; FMax ] in
       let* src = oneof [ map (fun y -> Xr y) (int_range 0 15); return (Xm m) ] in
       return (SseArith (a, p, x, src)));
      (let* w = gen_width in
       let* sh = oneofl [ Shl; Shr; Sar ] in
       let* d = gen_reg_operand in
       let* n = int_range 1 (if w = W64 then 63 else 31) in
       return (Shift (sh, w, d, ShImm n)));
      (let* t = int_range 0x300000 0x500000 in
       let* c = oneofl [ E; NE; L; GE; LE; G; B; A ] in
       oneofl [ Jmp (Abs t); Call (Abs t); Jcc (c, Abs t) ]) ]

let prop_roundtrip =
  QCheck2.Test.make ~name:"encode/decode roundtrip" ~count:2000 gen_insn
    (fun i ->
      (try roundtrip i; true
       with Obrew_fault.Err.Error e ->
         if e.Obrew_fault.Err.stage = Obrew_fault.Err.Encode then
           QCheck2.assume_fail ()
         else
           QCheck2.Test.fail_reportf "decode failed on %s: %s" (Pp.insn i)
             (Obrew_fault.Err.to_string e)))

(* ---------- assembler ---------- *)

let test_assemble_labels () =
  let items =
    [ I (Mov (W64, OReg Reg.RAX, OImm 0L));
      L 0;
      I (Alu (Add, W64, OReg Reg.RAX, OReg Reg.RDI));
      I (Unop (Dec, W64, OReg Reg.RDI));
      I (Jcc (NE, Lbl 0));
      I Ret ]
  in
  let bytes, listing, labels = Encode.assemble ~base:0x400000 items in
  check cint "label count" 1 (Hashtbl.length labels);
  check cint "listing count" 5 (List.length listing);
  (* decode back and compare mnemonics *)
  let dec = Decode.decode_all ~base:0x400000 bytes in
  check cint "decoded count" 5 (List.length dec);
  let js =
    List.filter_map
      (function _, Jcc (c, Abs t) -> Some (c, t) | _ -> None)
      dec
  in
  (match js with
   | [ (NE, t) ] -> check cint "jcc target" (Hashtbl.find labels 0) t
   | _ -> Alcotest.fail "expected one jcc")

(* ---------- emulator ---------- *)

let fresh () = Image.create ()

let test_emu_sum_loop () =
  (* sum 1..n: rdi = n *)
  let img = fresh () in
  let fn =
    Image.install_code img
      [ I (Alu (Xor, W32, OReg Reg.RAX, OReg Reg.RAX));
        L 0;
        I (Alu (Add, W64, OReg Reg.RAX, OReg Reg.RDI));
        I (Unop (Dec, W64, OReg Reg.RDI));
        I (Jcc (NE, Lbl 0));
        I Ret ]
  in
  let r, _ = Image.call img ~fn ~args:[ 100L ] in
  check ci64 "sum 1..100" 5050L r

let test_emu_max_cmov () =
  (* Fig. 6 code: max of two arguments via cmp + cmov *)
  let img = fresh () in
  let fn =
    Image.install_code img
      [ I (Mov (W64, OReg Reg.RAX, OReg Reg.RDI));
        I (Alu (Cmp, W64, OReg Reg.RDI, OReg Reg.RSI));
        I (Cmov (L, W64, Reg.RAX, OReg Reg.RSI));
        I Ret ]
  in
  let m a b = fst (Image.call img ~fn ~args:[ a; b ]) in
  check ci64 "max(3,5)" 5L (m 3L 5L);
  check ci64 "max(5,3)" 5L (m 5L 3L);
  check ci64 "max(-1,1)" 1L (m (-1L) 1L);
  check ci64 "max(-5,-9)" (-5L) (m (-5L) (-9L))

let test_emu_memory () =
  let img = fresh () in
  let arr = Image.alloc_f64_array img [| 1.5; 2.5; 3.0 |] in
  (* sum of 3 doubles at rdi *)
  let fn =
    Image.install_code img
      [ I (SseMov (Movsd, Xr 0, Xm (mem_base Reg.RDI)));
        I (SseArith (FAdd, Sd, 0, Xm (mem_base ~disp:8 Reg.RDI)));
        I (SseArith (FAdd, Sd, 0, Xm (mem_base ~disp:16 Reg.RDI)));
        I Ret ]
  in
  let _, f = Image.call img ~fn ~args:[ Int64.of_int arr ] in
  check (Alcotest.float 1e-9) "sum" 7.0 f

let test_emu_call_stack () =
  let img = fresh () in
  (* callee: rax = rdi * 2 *)
  let callee =
    Image.install_code img
      [ I (Lea (Reg.RAX, mem_bi Reg.RDI Reg.RDI S1)); I Ret ]
  in
  (* caller: call callee twice, add results *)
  let caller =
    Image.install_code img
      [ I (Push (OReg Reg.RBX));
        I (Mov (W64, OReg Reg.RBX, OReg Reg.RDI));
        I (Call (Abs callee));
        I (Mov (W64, OReg Reg.RDI, OReg Reg.RBX));
        I (Push (OReg Reg.RAX));
        I (Call (Abs callee));
        I (Pop (OReg Reg.RCX));
        I (Alu (Add, W64, OReg Reg.RAX, OReg Reg.RCX));
        I (Pop (OReg Reg.RBX));
        I Ret ]
  in
  let r, _ = Image.call img ~fn:caller ~args:[ 21L ] in
  check ci64 "2*21 + 2*21" 84L r

let test_emu_flags_semantics () =
  let img = fresh () in
  (* isneg: returns 1 if rdi < 0 (setl after cmp 0) *)
  let fn =
    Image.install_code img
      [ I (Alu (Cmp, W64, OReg Reg.RDI, OImm 0L));
        I (Setcc (L, OReg Reg.RAX));
        I (Movzx (W64, Reg.RAX, W8, OReg Reg.RAX));
        I Ret ]
  in
  let f v = fst (Image.call img ~fn ~args:[ v ]) in
  check ci64 "neg" 1L (f (-3L));
  check ci64 "pos" 0L (f 3L);
  check ci64 "zero" 0L (f 0L)

let test_emu_widths () =
  let img = fresh () in
  (* 32-bit add zero-extends into 64-bit register *)
  let fn =
    Image.install_code img
      [ I (Movabs (Reg.RAX, 0xFFFFFFFFFFFFFFFFL));
        I (Alu (Add, W32, OReg Reg.RAX, OImm 1L));
        I Ret ]
  in
  let r, _ = Image.call img ~fn in
  check ci64 "32-bit wraps and zero-extends" 0L r;
  (* 16-bit write preserves upper bits *)
  let fn2 =
    Image.install_code img
      [ I (Movabs (Reg.RAX, 0x1111111111111111L));
        I (Mov (W16, OReg Reg.RAX, OImm 0x2222L));
        I Ret ]
  in
  let r2, _ = Image.call img ~fn:fn2 in
  check ci64 "16-bit preserves upper" 0x1111111111112222L r2

let test_emu_high_byte () =
  let img = fresh () in
  let fn =
    Image.install_code img
      [ I (Mov (W32, OReg Reg.RAX, OImm 0L));
        I (Mov (W8, OReg8H Reg.RAX, OImm 0x7fL));
        I Ret ]
  in
  let r, _ = Image.call img ~fn in
  check ci64 "ah write" 0x7f00L r

let test_emu_signed_div () =
  let img = fresh () in
  let fn =
    Image.install_code img
      [ I (Mov (W64, OReg Reg.RAX, OReg Reg.RDI));
        I Cqo;
        I (Idiv (W64, OReg Reg.RSI));
        I Ret ]
  in
  let d a b = fst (Image.call img ~fn ~args:[ a; b ]) in
  check ci64 "100/7" 14L (d 100L 7L);
  check ci64 "-100/7" (-14L) (d (-100L) 7L)

let test_emu_sse_upper_semantics () =
  let img = fresh () in
  let arr = Image.alloc_f64_array img [| 2.0; 4.0 |] in
  (* load [2;4] packed, movsd from mem into xmm (zeroes upper), then
     unpack: result lane1 must be 0 *)
  let fn =
    Image.install_code img
      [ I (SseMov (Movupd, Xr 0, Xm (mem_base Reg.RDI)));
        I (SseMov (Movsd, Xr 0, Xm (mem_base ~disp:8 Reg.RDI)));
        I (Shufpd (0, Xr 0, 1));
        (* lane0 <- old lane1, which movsd-from-memory must have zeroed *)
        I (SseArith (FAdd, Pd, 0, Xr 0));
        I Ret ]
  in
  let _, f = Image.call img ~fn ~args:[ Int64.of_int arr ] in
  check (Alcotest.float 1e-9) "movsd load zeroes upper lane" 0.0 f

let test_cycle_accounting () =
  let img = fresh () in
  let fn =
    Image.install_code img
      [ I (Mov (W64, OReg Reg.RAX, OImm 7L)); I Ret ]
  in
  let (_, cycles, icount) =
    Image.measure img (fun () -> Image.call img ~fn)
  in
  check cbool "counts instructions" true (icount = 2);
  check cbool "cycles positive" true (cycles > 0)

let test_stack_alignment () =
  let img = fresh () in
  (* At entry rsp mod 16 must be 8 (ABI: aligned before call) *)
  let fn =
    Image.install_code img
      [ I (Mov (W64, OReg Reg.RAX, OReg Reg.RSP));
        I (Alu (And, W64, OReg Reg.RAX, OImm 15L));
        I Ret ]
  in
  let r, _ = Image.call img ~fn in
  check ci64 "rsp % 16 == 8 at entry" 8L r

(* ---------- code-cache invalidation ---------- *)

let test_code_cache_invalidation () =
  let img = fresh () in
  let cpu = img.Image.cpu in
  let fn =
    Image.install_code img [ I (Mov (W64, OReg Reg.RAX, OImm 1L)); I Ret ]
  in
  let r, _ = Image.call img ~fn in
  check ci64 "original code" 1L r;
  (* overwrite the installed bytes in place, behind install_code's
     back; the stale superblock keeps executing the old code *)
  let patch v =
    let bytes, _, _ =
      Encode.assemble ~base:fn [ I (Mov (W64, OReg Reg.RAX, OImm v)); I Ret ]
    in
    Mem.write_bytes cpu.Cpu.mem fn bytes;
    String.length bytes
  in
  let len = patch 2L in
  let r_stale, _ = Image.call img ~fn in
  check ci64 "stale block still cached" 1L r_stale;
  (* a range flush covering the overwrite drops the block *)
  Cpu.flush_code ~range:(fn, fn + len) cpu;
  let r2, _ = Image.call img ~fn in
  check ci64 "range flush picks up new code" 2L r2;
  (* an unrelated range must NOT drop it: stale again after re-patch *)
  ignore (patch 3L);
  Cpu.flush_code ~range:(fn + 4096, fn + 8192) cpu;
  let r_stale2, _ = Image.call img ~fn in
  check ci64 "unrelated range keeps block" 2L r_stale2;
  (* a full flush always works *)
  Cpu.flush_code cpu;
  let r3, _ = Image.call img ~fn in
  check ci64 "full flush picks up new code" 3L r3;
  check cbool "flushes counted" true
    ((Cpu.cache_stats cpu).Cpu.block_flushes >= 3)

(* A block that follows an unconditional jump covers two disjoint byte
   ranges; a range flush touching only the second range must still drop
   it.  Regression test: the flush used to consider only the range
   around the block entry, so patching the far side of the jump kept
   executing stale code. *)
let test_cross_range_invalidation () =
  let img = fresh () in
  let cpu = img.Image.cpu in
  let items =
    [ I (Jmp (Lbl 0)) ]
    @ List.init 16 (fun _ -> I (Nop 1))
    @ [ L 0; I (Mov (W64, OReg Reg.RAX, OImm 1L)); I Ret ]
  in
  let fn = Image.install_code img items in
  let r, _ = Image.call img ~fn in
  check ci64 "original code" 1L r;
  (* address of the far side of the jump *)
  let _, _, labels = Encode.assemble ~base:fn items in
  let tail = Hashtbl.find labels 0 in
  check cbool "jump leaves a gap" true (tail > fn + 16);
  let patch_bytes, _, _ =
    Encode.assemble ~base:tail
      [ I (Mov (W64, OReg Reg.RAX, OImm 2L)); I Ret ]
  in
  Mem.write_bytes cpu.Cpu.mem tail patch_bytes;
  let r_stale, _ = Image.call img ~fn in
  check ci64 "stale block still cached" 1L r_stale;
  (* flush only the far range — disjoint from the block's entry range *)
  Cpu.flush_code ~range:(tail, tail + String.length patch_bytes) cpu;
  let r2, _ = Image.call img ~fn in
  check ci64 "cross-range flush drops the block" 2L r2

(* ---------- indirect-branch inline caches ---------- *)

(* Indirect terminators dispatch through a per-block two-way inline
   cache instead of the direct chain links.  The cache must return
   exactly the blocks the slow lookup would — so results never change,
   only the hit/miss counters move — and a range flush covering a
   predicted target must defeat the prediction via revalidation, even
   when the flushed range is disjoint from the dispatching block. *)
let test_indirect_inline_cache () =
  let img = fresh () in
  let cpu = img.Image.cpu in
  let items =
    [ I (Alu (And, W64, OReg Reg.RDI, OImm 1L));
      MovLbl (Reg.RAX, 2);
      I (JmpInd (OMem (mk_mem ~base:Reg.RAX ~index:(Reg.RDI, S8) ())));
      L 0; I (Movabs (Reg.RAX, 111L)); I Ret;
      L 1; I (Movabs (Reg.RAX, 222L)); I Ret;
      L 2; Q (Lbl 0); Q (Lbl 1) ]
  in
  let fn = Image.install_code img items in
  let call i =
    fst (Image.call ~engine:Cpu.Superblocks img ~fn
           ~args:[ Int64.of_int i ])
  in
  check ci64 "arm 0" 111L (call 0);
  let s0 = Cpu.cache_stats cpu in
  check cbool "first dispatch misses" true (s0.Cpu.ic_misses >= 1);
  check ci64 "arm 0 again" 111L (call 0);
  let s1 = Cpu.cache_stats cpu in
  check cbool "repeat dispatch hits" true (s1.Cpu.ic_hits > s0.Cpu.ic_hits);
  check ci64 "arm 1" 222L (call 1);
  check ci64 "arm 1 again" 222L (call 1);
  check ci64 "arm 0 still cached" 111L (call 0);
  let s2 = Cpu.cache_stats cpu in
  check cbool "two-way cache holds both arms" true
    (s2.Cpu.ic_hits >= s1.Cpu.ic_hits + 2);
  (* patch arm 1 and flush only its range: the stale prediction must
     not survive revalidation, and the other slot must be untouched *)
  let _, _, labels = Encode.assemble ~base:fn items in
  let arm1 = Hashtbl.find labels 1 in
  let patch, _, _ =
    Encode.assemble ~base:arm1 [ I (Movabs (Reg.RAX, 333L)); I Ret ]
  in
  Mem.write_bytes cpu.Cpu.mem arm1 patch;
  Cpu.flush_code ~range:(arm1, arm1 + String.length patch) cpu;
  check ci64 "flush defeats the prediction" 333L (call 1);
  check ci64 "other prediction unaffected" 111L (call 0)

(* A loop whose body dispatches through a jump table every iteration:
   the two engines must agree on everything including the cycle
   accounting (the inline cache is a host-side shortcut, never a
   semantic change), the cache must serve nearly every dispatch, and
   the indirect-terminated block must never be fused away or promoted
   into a trace (it has no static successor to extend into). *)
let indirect_loop_items =
  [ I (Mov (W64, OReg Reg.RCX, OImm 64L));
    I (Mov (W64, OReg Reg.RSI, OImm 0L));
    L 0;
    I (Mov (W64, OReg Reg.RDX, OReg Reg.RCX));
    I (Alu (And, W64, OReg Reg.RDX, OImm 1L));
    MovLbl (Reg.RAX, 4);
    I (JmpInd (OMem (mk_mem ~base:Reg.RAX ~index:(Reg.RDX, S8) ())));
    L 1; I (Alu (Add, W64, OReg Reg.RSI, OImm 1L)); I (Jmp (Lbl 3));
    L 2; I (Alu (Add, W64, OReg Reg.RSI, OImm 2L)); I (Jmp (Lbl 3));
    L 3;
    I (Unop (Dec, W64, OReg Reg.RCX));
    I (Jcc (NE, Lbl 0));
    I (Mov (W64, OReg Reg.RAX, OReg Reg.RSI));
    I Ret;
    L 4; Q (Lbl 1); Q (Lbl 2) ]

let test_indirect_loop_differential () =
  let run engine =
    let img = fresh () in
    let cpu = img.Image.cpu in
    let fn = Image.install_code img indirect_loop_items in
    let r, _ = Image.call ~engine img ~fn in
    (r, cpu.Cpu.cycles, cpu.Cpu.icount, Cpu.cache_stats cpu)
  in
  let r_sb, cy_sb, ic_sb, stats = run Cpu.Superblocks in
  let r_ss, cy_ss, ic_ss, _ = run Cpu.SingleStep in
  check ci64 "alternating arms sum" 96L r_sb;
  check ci64 "engines agree" r_ss r_sb;
  check cint "cycles identical" cy_ss cy_sb;
  check cint "icount identical" ic_ss ic_sb;
  check cbool "inline cache served the dispatches" true
    (stats.Cpu.ic_hits >= 50);
  check cint "indirect block never promoted to a trace" 0
    stats.Cpu.traces_built

(* ---------- trace promotion ---------- *)

(* A tight self-loop executed past the promotion threshold must be
   extended into an unrolled trace, and leaving the loop must take a
   side exit; both are observable in the cache stats, and the result
   must be unaffected. *)
let test_trace_promotion () =
  let img = fresh () in
  let cpu = img.Image.cpu in
  let fn =
    Image.install_code img
      [ I (Mov (W64, OReg Reg.RAX, OImm 0L));
        I (Mov (W64, OReg Reg.RCX, OImm 100L));
        L 0;
        I (Alu (Add, W64, OReg Reg.RAX, OReg Reg.RCX));
        I (Alu (Sub, W64, OReg Reg.RCX, OImm 1L));
        I (Jcc (NE, Lbl 0));
        I Ret ]
  in
  let r, _ = Image.call ~engine:Cpu.Superblocks img ~fn in
  check ci64 "sum 100..1" 5050L r;
  let s = Cpu.cache_stats cpu in
  check cbool "loop promoted to a trace" true (s.Cpu.traces_built >= 1);
  check cbool "loop exit took a side exit" true (s.Cpu.trace_side_exits >= 1)

(* ---------- differential: superblock engine vs single-step ---------- *)

(* Everything observable about a finished run: registers, flags, SSE
   state, the data array, and the cycle/instruction accounting (the
   cost model is part of the semantics). *)
type observation = {
  o_regs : int64 array;
  o_xlo : int64 array;
  o_xhi : int64 array;
  o_flags : bool * bool * bool * bool * bool * bool;
  o_cycles : int;
  o_icount : int;
  o_mem : string;
}

let observe ?(iters = 3L) engine (body : item list) : observation =
  let img = fresh () in
  let cpu = img.Image.cpu in
  let arr =
    Image.alloc_f64_array img (Array.init 8 (fun i -> float_of_int i +. 0.5))
  in
  (* loop skeleton: rdi counts down, rsi pins the data array; the body
     must not touch either register *)
  let items =
    (L 0 :: body)
    @ [ I (Alu (Sub, W64, OReg Reg.RDI, OImm 1L));
        I (Jcc (NE, Lbl 0));
        I Ret ]
  in
  let fn = Image.install_code img items in
  ignore (Image.call ~engine img ~fn ~args:[ iters; Int64.of_int arr ]);
  { o_regs = Array.init 16 (fun i -> cpu.Cpu.regs.{i});
    o_xlo = Array.init 16 (fun i -> cpu.Cpu.xlo.{i});
    o_xhi = Array.init 16 (fun i -> cpu.Cpu.xhi.{i});
    o_flags =
      (cpu.Cpu.zf, cpu.Cpu.sf, cpu.Cpu.cf, cpu.Cpu.o_f, cpu.Cpu.pf,
       cpu.Cpu.af);
    o_cycles = cpu.Cpu.cycles;
    o_icount = cpu.Cpu.icount;
    o_mem = Mem.read_bytes cpu.Cpu.mem arr 64 }

(* straight-line body instructions that are safe inside the skeleton:
   no traps, no control flow, rdi/rsi/rsp/rbp untouched *)
let gen_body_insn : insn QCheck.Gen.t =
  let open QCheck.Gen in
  let open Reg in
  let gpr = oneofl [ RAX; RCX; RDX; R8; R9; R10; R11 ] in
  let w = oneofl [ W64; W32 ] in
  let alu = oneofl [ Add; Sub; And; Or; Xor; Cmp ] in
  let disp = map (fun k -> 8 * k) (int_bound 7) in
  let xr = int_bound 3 in
  let cc = oneofl [ E; NE; B; AE; L; GE; LE; G; S; NS ] in
  frequency
    [ (4, map3 (fun o w' (a, b) -> Alu (o, w', OReg a, OReg b))
         alu w (pair gpr gpr));
      (2, map3 (fun o r i -> Alu (o, W64, OReg r, OImm (Int64.of_int i)))
         alu gpr (int_bound 1000));
      (2, map2 (fun w' (a, b) -> Mov (w', OReg a, OReg b)) w (pair gpr gpr));
      (2, map2 (fun r i -> Mov (W64, OReg r, OImm (Int64.of_int i)))
         gpr (int_bound 10000));
      (2, map2 (fun r d -> Mov (W64, OReg r, OMem (mem_base ~disp:d RSI)))
         gpr disp);
      (2, map2 (fun r d -> Mov (W64, OMem (mem_base ~disp:d RSI), OReg r))
         gpr disp);
      (1, map2 (fun r d -> Lea (r, mem_base ~disp:d RSI)) gpr disp);
      (1, map3 (fun u w' r -> Unop (u, w', OReg r))
         (oneofl [ Neg; Not; Inc; Dec ]) w gpr);
      (1, map2 (fun w' (a, b) -> Test (w', OReg a, OReg b)) w (pair gpr gpr));
      (1, map2 (fun a b -> Imul2 (W64, a, OReg b)) gpr gpr);
      (1, map3 (fun s r k -> Shift (s, W64, OReg r, ShImm k))
         (oneofl [ Shl; Shr; Sar ]) gpr (int_range 0 31));
      (1, map2 (fun c r -> Setcc (c, OReg r)) cc gpr);
      (1, map3 (fun c a b -> Cmov (c, W64, a, OReg b)) cc gpr gpr);
      (1, map3 (fun o a b -> SseArith (o, Sd, a, Xr b))
         (oneofl [ FAdd; FSub; FMul ]) xr xr);
      (1, map2 (fun a d -> SseArith (FAdd, Sd, a, Xm (mem_base ~disp:d RSI)))
         xr disp);
      (1, map2 (fun a d -> SseMov (Movsd, Xr a, Xm (mem_base ~disp:d RSI)))
         xr disp);
      (1, map2 (fun a d -> SseMov (Movsd, Xm (mem_base ~disp:d RSI), Xr a))
         xr disp);
      (1, map2 (fun a b -> SseLogic (Pxor, a, Xr b)) xr xr) ]

let prop_engine_differential =
  QCheck.Test.make ~count:200 ~name:"superblock engine == single-step"
    (QCheck.make
       ~print:(fun body ->
         String.concat "; "
           (List.map
              (function I i -> Pp.insn i | it -> Pp.item it)
              body))
       QCheck.Gen.(
         map
           (fun l -> List.map (fun i -> I i) l)
           (list_size (int_bound 20) gen_body_insn)))
    (fun body ->
      let a = observe Cpu.Superblocks body in
      let b = observe Cpu.SingleStep body in
      if a <> b then
        QCheck.Test.fail_reportf
          "engines diverge: cycles %d vs %d, icount %d vs %d, regs %s"
          a.o_cycles b.o_cycles a.o_icount b.o_icount
          (if a.o_regs = b.o_regs then "equal" else "DIFFER")
      else true)

(* Same differential, but with the skeleton loop iterated past the
   trace-promotion threshold: the superblock tier promotes the loop to
   an unrolled trace mid-run, fuses body runs and defers flags, yet
   every observable — including the simulated cycle and instruction
   counts, which are part of the semantics — must stay bit-identical
   to single-stepping. *)
let prop_engine_differential_traced =
  QCheck.Test.make ~count:100
    ~name:"traced superblocks == single-step (cycles exact)"
    (QCheck.make
       ~print:(fun body ->
         String.concat "; "
           (List.map
              (function I i -> Pp.insn i | it -> Pp.item it)
              body))
       QCheck.Gen.(
         map
           (fun l -> List.map (fun i -> I i) l)
           (list_size (int_bound 12) gen_body_insn)))
    (fun body ->
      let a = observe ~iters:12L Cpu.Superblocks body in
      let b = observe ~iters:12L Cpu.SingleStep body in
      if a.o_cycles <> b.o_cycles || a.o_icount <> b.o_icount then
        QCheck.Test.fail_reportf
          "cost accounting diverges under traces: cycles %d vs %d, \
           icount %d vs %d"
          a.o_cycles b.o_cycles a.o_icount b.o_icount
      else if a <> b then
        QCheck.Test.fail_reportf "architectural state diverges under traces"
      else true)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "x86"
    [ ("encode",
       [ Alcotest.test_case "known bytes" `Quick test_known_bytes;
         Alcotest.test_case "indirect printing" `Quick test_pp_indirect;
         Alcotest.test_case "rel32" `Quick test_rel32_encoding;
         Alcotest.test_case "assemble+labels" `Quick test_assemble_labels ]);
      ("roundtrip",
       [ Alcotest.test_case "samples" `Quick test_roundtrip_samples;
         Alcotest.test_case "typed rejections" `Quick
           test_decode_typed_errors;
         qt prop_roundtrip ]);
      ("emulator",
       [ Alcotest.test_case "sum loop" `Quick test_emu_sum_loop;
         Alcotest.test_case "max cmov" `Quick test_emu_max_cmov;
         Alcotest.test_case "memory f64" `Quick test_emu_memory;
         Alcotest.test_case "call/stack" `Quick test_emu_call_stack;
         Alcotest.test_case "flags" `Quick test_emu_flags_semantics;
         Alcotest.test_case "widths" `Quick test_emu_widths;
         Alcotest.test_case "high byte" `Quick test_emu_high_byte;
         Alcotest.test_case "signed div" `Quick test_emu_signed_div;
         Alcotest.test_case "sse upper" `Quick test_emu_sse_upper_semantics;
         Alcotest.test_case "cycles" `Quick test_cycle_accounting;
         Alcotest.test_case "stack alignment" `Quick test_stack_alignment ]);
      ("engine",
       [ Alcotest.test_case "cache invalidation" `Quick
           test_code_cache_invalidation;
         Alcotest.test_case "cross-range invalidation" `Quick
           test_cross_range_invalidation;
         Alcotest.test_case "indirect inline cache" `Quick
           test_indirect_inline_cache;
         Alcotest.test_case "indirect loop differential" `Quick
           test_indirect_loop_differential;
         Alcotest.test_case "trace promotion" `Quick test_trace_promotion;
         qt prop_engine_differential;
         qt prop_engine_differential_traced ])
    ]
