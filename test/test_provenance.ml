(* Provenance layer tests: guest-address stamping at lift time,
   preservation through the optimizer, remark recording, cycle
   attribution in both execution engines, and the annotated
   disassembly. *)

open Obrew_x86
open Obrew_ir
open Obrew_opt
open Ins
module Prov = Obrew_provenance.Provenance

let check = Alcotest.check
let cint = Alcotest.int

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* run [f] with provenance enabled and a clean slate, restoring the
   disabled default afterwards *)
let with_prov f =
  Prov.reset ();
  Prov.enable ();
  Fun.protect ~finally:(fun () -> Prov.disable (); Prov.reset ()) f

let max_code =
  let open Insn in
  [ I (Mov (W64, OReg Reg.RAX, OReg Reg.RDI));
    I (Alu (Cmp, W64, OReg Reg.RDI, OReg Reg.RSI));
    I (Cmov (L, W64, Reg.RAX, OReg Reg.RSI));
    I Ret ]

let lift_max ?(flag_cache = true) img =
  let fn = Image.install_code img max_code in
  ( fn,
    Obrew_lifter.Lift.lift
      ~config:{ Obrew_lifter.Lift.default_config with flag_cache }
      ~read:(Mem.read_u8 img.Image.cpu.Cpu.mem)
      ~entry:fn ~name:"max"
      { args = [ I64; I64 ]; ret = Some I64 } )

(* --- stamping and preservation --- *)

(* Every instruction lifted from guest code carries a valid guest
   address (the entry block holds only synthetic scaffolding). *)
let test_lift_stamps () =
  let img = Image.create () in
  let fn, f = lift_max img in
  let entry_bid = (entry_block f).bid in
  let checked = ref 0 in
  List.iter
    (fun (b : block) ->
      if b.bid <> entry_bid then
        List.iter
          (fun i ->
            incr checked;
            if not (Prov.is_some i.prov) then
              Alcotest.failf "instr %%%d in bb%d has no provenance" i.id
                b.bid;
            let a = Prov.addr i.prov in
            if a < fn || a >= fn + 16 then
              Alcotest.failf "instr %%%d: guest addr 0x%x outside kernel"
                i.id a)
          b.instrs)
    f.blocks;
  check Alcotest.bool "checked some instrs" true (!checked > 0)

(* The full -O3 pipeline may merge and delete, but every surviving
   instruction outside the entry block still maps into the kernel. *)
let test_opt_preserves () =
  let img = Image.create () in
  let fn, f = lift_max img in
  Pipeline.run { funcs = [ f ]; globals = [] };
  Verify.assert_ok f;
  let entry_bid = (entry_block f).bid in
  List.iter
    (fun (b : block) ->
      if b.bid <> entry_bid then
        List.iter
          (fun i ->
            if not (Prov.is_some i.prov) then
              Alcotest.failf "optimized instr %%%d lost provenance" i.id;
            let a = Prov.addr i.prov in
            if a < fn || a >= fn + 16 then
              Alcotest.failf "optimized instr %%%d: addr 0x%x escaped" i.id a)
          b.instrs)
    f.blocks

(* --- remarks --- *)

(* DCE records exactly one Deleted remark per removed instruction,
   carrying that instruction's provenance. *)
let test_dce_remarks () =
  with_prov (fun () ->
      let b =
        Builder.create ~name:"f" ~sg:{ args = [ I64 ]; ret = Some I64 }
      in
      Builder.set_prov b (Prov.make ~addr:0x400010 ~ord:1);
      let d1 = Builder.bin b Add I64 (V 0) (CInt (I64, 1L)) in
      Builder.set_prov b (Prov.make ~addr:0x400013 ~ord:2);
      let _d2 = Builder.bin b Mul I64 d1 (CInt (I64, 3L)) in
      Builder.set_prov b (Prov.make ~addr:0x400016 ~ord:3);
      let live = Builder.bin b Sub I64 (V 0) (CInt (I64, 2L)) in
      Builder.ret b (Some live);
      let f = Builder.func b in
      ignore (Dce.run f);
      check cint "one instruction survives" 1
        (List.length (entry_block f).instrs);
      let deleted = ref [] in
      Prov.iter_remarks (fun r ->
          if r.Prov.pass = "dce" && r.Prov.action = Prov.Deleted then
            deleted := Prov.addr r.Prov.prov :: !deleted);
      check
        Alcotest.(list int)
        "one Deleted remark per dead instr, with its provenance"
        [ 0x400010; 0x400013 ]
        (List.sort compare !deleted))

(* The lifter's flag cache leaves a remark attributed to the flag
   consumer (the reconstruction happens where the condition is read). *)
let test_flag_cache_remark () =
  with_prov (fun () ->
      let img = Image.create () in
      let fn, _ = lift_max ~flag_cache:true img in
      let cmov_addr = fn + 6 (* mov and cmp are 3 bytes each *) in
      let found = ref false in
      Prov.iter_remarks (fun r ->
          if
            r.Prov.pass = "lift"
            && r.Prov.action = Prov.Specialized
            && Prov.addr r.Prov.prov = cmov_addr
          then found := true);
      check Alcotest.bool "flag-cache remark on the consumer" true !found)

(* A pass rolled back by the verifier gate takes its remarks with it:
   an injected fault in dce must leave no dce remarks behind. *)
let test_rollback_drops_remarks () =
  with_prov (fun () ->
      let img = Image.create () in
      let _, f = lift_max img in
      (match Obrew_fault.Fault.parse "opt.dce:0:100" with
       | Ok plan -> Obrew_fault.Fault.install plan
       | Error m -> Alcotest.fail m);
      Fun.protect ~finally:Obrew_fault.Fault.clear (fun () ->
          let dropped =
            Pipeline.run_checked { funcs = [ f ]; globals = [] }
          in
          check Alcotest.bool "dce was dropped" true
            (List.exists (fun (n, _) -> n = "dce") dropped);
          Prov.iter_remarks (fun r ->
              if r.Prov.pass = "dce" then
                Alcotest.fail "rolled-back dce left a remark")))

(* --- profiler --- *)

(* Per-address cycle totals sum exactly to the engine's cycle counter,
   under both the single-step and the superblock engine. *)
let profiled_run engine =
  with_prov (fun () ->
      let img = Image.create () in
      let fn, _ = lift_max img in
      let c0 = img.Image.cpu.Cpu.cycles in
      ignore (Image.call ~engine img ~fn ~args:[ 7L; 9L ]);
      ignore (Image.call ~engine img ~fn ~args:[ 9L; 7L ]);
      let engine_cycles = img.Image.cpu.Cpu.cycles - c0 in
      let prof_cycles, prof_execs = Prov.profile_totals () in
      check cint "profiler sums to the engine total" engine_cycles
        prof_cycles;
      check Alcotest.bool "execs recorded" true (prof_execs > 0);
      (* and every profiled address is inside the installed kernel *)
      Prov.iter_insn_profile (fun ~addr ~cycles:_ ~execs:_ ->
          if addr < fn || addr >= fn + 16 then
            Alcotest.failf "profiled addr 0x%x outside kernel" addr))

let test_profile_superblocks () = profiled_run Cpu.Superblocks
let test_profile_single_step () = profiled_run Cpu.SingleStep

(* Profiling off must leave the counters untouched. *)
let test_disabled_records_nothing () =
  Prov.reset ();
  Prov.disable ();
  let img = Image.create () in
  let fn, _ = lift_max img in
  ignore (Image.call img ~fn ~args:[ 1L; 2L ]);
  let cy, ex = Prov.profile_totals () in
  check cint "no cycles recorded" 0 cy;
  check cint "no execs recorded" 0 ex;
  check cint "no remarks recorded" 0 (Prov.remarks_recorded ())

(* --- annotated disassembly (Fig. 6 golden) --- *)

let test_annotate_fig6 () =
  with_prov (fun () ->
      let img = Image.create () in
      let _, f = lift_max ~flag_cache:true img in
      let m = { funcs = [ f ]; globals = [] } in
      Pipeline.run m;
      ignore (Obrew_backend.Jit.install_func img f);
      let out = Obrew_core.Annotate.annotate ~img ~modul:m ~fn:"max" () in
      (* the lifted compare appears with its guest bytes *)
      check Alcotest.bool "guest cmp shown" true
        (contains out "cmp rdi, rsi");
      (* the flag-cache reconstruction remark is attributed to it *)
      check Alcotest.bool "flag-cache remark shown" true
        (contains out "flag cache: condition reconstructed");
      (* the surviving IR (icmp + select) is interleaved *)
      check Alcotest.bool "surviving icmp shown" true
        (contains out "icmp slt i64");
      (* and the final host bytes are listed *)
      check Alcotest.bool "host bytes shown" true (contains out "  host | "))

let () =
  Alcotest.run "provenance"
    [ ( "stamping",
        [ Alcotest.test_case "lift stamps every instr" `Quick
            test_lift_stamps;
          Alcotest.test_case "o3 preserves provenance" `Quick
            test_opt_preserves ] );
      ( "remarks",
        [ Alcotest.test_case "dce: one Deleted per dead instr" `Quick
            test_dce_remarks;
          Alcotest.test_case "flag-cache remark" `Quick
            test_flag_cache_remark;
          Alcotest.test_case "rollback drops remarks" `Quick
            test_rollback_drops_remarks ] );
      ( "profiler",
        [ Alcotest.test_case "superblocks: cycles sum exactly" `Quick
            test_profile_superblocks;
          Alcotest.test_case "single-step: cycles sum exactly" `Quick
            test_profile_single_step;
          Alcotest.test_case "disabled records nothing" `Quick
            test_disabled_records_nothing ] );
      ( "annotate",
        [ Alcotest.test_case "fig6 golden" `Quick test_annotate_fig6 ] ) ]
