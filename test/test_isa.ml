(* Additional x86 substrate tests: the cost model, paged memory edge
   cases, decoder robustness, condition-code algebra and disassembly
   helpers. *)

open Obrew_x86
open Insn

let check = Alcotest.check
let cint = Alcotest.int
let ci64 = Alcotest.int64

(* ---------- condition codes ---------- *)

let test_cc_negate_involution () =
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (cc_name c ^ " double negation")
        true
        (cc_negate (cc_negate c) = c))
    [ O; NO; B; AE; E; NE; BE; A; S; NS; P; NP; L; GE; LE; G ]

let test_cc_negate_semantics () =
  (* negated cc must evaluate to the opposite on the emulator *)
  let img = Image.create () in
  List.iter
    (fun c ->
      let mk cc =
        Image.install_code img
          [ I (Alu (Cmp, W64, OReg Reg.RDI, OReg Reg.RSI));
            I (Setcc (cc, OReg Reg.RAX));
            I (Movzx (W64, Reg.RAX, W8, OReg Reg.RAX));
            I Ret ]
      in
      let f1 = mk c and f2 = mk (cc_negate c) in
      List.iter
        (fun (a, b) ->
          let r1, _ = Image.call img ~fn:f1 ~args:[ a; b ] in
          let r2, _ = Image.call img ~fn:f2 ~args:[ a; b ] in
          check ci64
            (Printf.sprintf "%s(%Ld,%Ld) = !%s" (cc_name c) a b
               (cc_name (cc_negate c)))
            1L (Int64.add r1 r2))
        [ (1L, 2L); (2L, 1L); (5L, 5L); (-3L, 3L); (3L, -3L) ])
    [ B; AE; E; NE; BE; A; S; NS; L; GE; LE; G ]

(* ---------- memory ---------- *)

let test_mem_page_crossing () =
  let m = Mem.create () in
  (* a u64 write straddling a 4 KiB page boundary *)
  let a = 4096 - 3 in
  Mem.write_u64 m a 0x1122334455667788L;
  check ci64 "page-crossing u64" 0x1122334455667788L (Mem.read_u64 m a);
  check cint "byte before boundary" 0x66 (Mem.read_u8 m 4095);
  check cint "byte after boundary" 0x55 (Mem.read_u8 m 4096);
  (* u32 crossing *)
  let b = 8192 - 2 in
  Mem.write_u32 m b 0xAABBCCDD;
  check cint "page-crossing u32" 0xAABBCCDD (Mem.read_u32 m b)

let test_mem_f64_roundtrip () =
  let m = Mem.create () in
  List.iter
    (fun v ->
      Mem.write_f64 m 0x100 v;
      let r = Mem.read_f64 m 0x100 in
      Alcotest.(check bool) (string_of_float v) true
        (Int64.bits_of_float v = Int64.bits_of_float r))
    [ 0.0; -0.0; 1.5; -3.25; infinity; neg_infinity; Float.nan; 1e-300 ]

let test_mem_bytes_roundtrip () =
  let m = Mem.create () in
  let s = String.init 100 (fun i -> Char.chr (i * 7 mod 256)) in
  Mem.write_bytes m 5000 s;
  check Alcotest.string "blob" s (Mem.read_bytes m 5000 100)

(* ---------- cost model ---------- *)

let test_cost_ordering () =
  let c = Cost.default in
  let cost i = Cost.insn_cost c i in
  (* sanity orderings the benchmarks depend on *)
  Alcotest.(check bool) "mul > add" true
    (cost (Imul2 (W64, Reg.RAX, OReg Reg.RCX))
     > cost (Alu (Add, W64, OReg Reg.RAX, OReg Reg.RCX)));
  Alcotest.(check bool) "div most expensive" true
    (cost (Idiv (W64, OReg Reg.RCX)) > cost (Imul2 (W64, Reg.RAX, OReg Reg.RCX)));
  Alcotest.(check bool) "memory op > register op" true
    (cost (Mov (W64, OReg Reg.RAX, OMem (mem_base Reg.RSI)))
     > cost (Mov (W64, OReg Reg.RAX, OReg Reg.RSI)));
  Alcotest.(check bool) "fp mul > fp add" true
    (cost (SseArith (FMul, Sd, 0, Xr 1)) > cost (SseArith (FAdd, Sd, 0, Xr 1)));
  Alcotest.(check bool) "rmw = load + store + op" true
    (cost (Alu (Add, W64, OMem (mem_base Reg.RSI), OReg Reg.RAX))
     >= cost (Alu (Add, W64, OReg Reg.RAX, OMem (mem_base Reg.RSI))))

let test_unaligned_penalty () =
  (* the same packed loop on aligned vs misaligned data costs more
     cycles when misaligned — the basis of the Sec. VI-B experiment *)
  let img = Image.create () in
  let a = Image.alloc_f64_array ~align:16 img (Array.make 64 1.0) in
  let fn =
    Image.install_code img
      [ I (Alu (Xor, W32, OReg Reg.RAX, OReg Reg.RAX));
        L 0;
        I (SseMov (Movupd, Xr 0, Xm (mem_bi Reg.RDI Reg.RAX S8)));
        I (SseArith (FAdd, Pd, 1, Xr 0));
        I (Alu (Add, W64, OReg Reg.RAX, OImm 2L));
        I (Alu (Cmp, W64, OReg Reg.RAX, OImm 32L));
        I (Jcc (NE, Lbl 0));
        I Ret ]
  in
  let run base =
    Image.reset_stack img;
    let _, cycles, _ =
      Image.measure img (fun () ->
          Image.call img ~fn ~args:[ Int64.of_int base ])
    in
    cycles
  in
  let aligned = run a in
  let misaligned = run (a + 8) in
  Alcotest.(check bool)
    (Printf.sprintf "misaligned (%d) > aligned (%d)" misaligned aligned)
    true (misaligned > aligned)

let test_branch_cost_direction () =
  (* taken branches cost more than fall-through *)
  let img = Image.create () in
  let taken =
    Image.install_code img
      [ I (Test (W64, OReg Reg.RDI, OReg Reg.RDI));
        I (Jcc (E, Lbl 0)); (* rdi = 0: taken *)
        I (Nop 1);
        L 0;
        I Ret ]
  in
  let count arg =
    Image.reset_stack img;
    let _, cycles, _ =
      Image.measure img (fun () -> Image.call img ~fn:taken ~args:[ arg ])
    in
    cycles
  in
  Alcotest.(check bool) "taken >= not taken" true (count 0L >= count 1L - 1)

(* ---------- decoder robustness ---------- *)

let test_decode_rejects_garbage () =
  let cases = [ [ 0x06 ]; [ 0x0f; 0x05 ]; [ 0xd7 ] ] in
  List.iter
    (fun bytes ->
      let read i = try List.nth bytes i with _ -> 0x90 in
      match Decode.decode ~read 0 with
      | exception Obrew_fault.Err.Error { Obrew_fault.Err.stage = Decode; _ }
        -> ()
      | i, _ ->
        Alcotest.failf "garbage decoded as %s" (Pp.insn i))
    cases

let test_decode_rel8_forms () =
  (* short jumps (not produced by our encoder) still decode *)
  let prog = [ 0xeb; 0x05 ] in (* jmp +5 *)
  let read base i = try List.nth prog (i - base) with _ -> 0x90 in
  (match Decode.decode ~read:(read 0x100) 0x100 with
   | Jmp (Abs t), 2 -> check cint "jmp rel8 target" 0x107 t
   | i, _ -> Alcotest.failf "unexpected %s" (Pp.insn i));
  let prog2 = [ 0x74; 0xfe ] in (* je -2 = self *)
  let read2 i = try List.nth prog2 (i - 0x200) with _ -> 0x90 in
  (match Decode.decode ~read:read2 0x200 with
   | Jcc (E, Abs t), 2 -> check cint "jcc rel8 target" 0x200 t
   | i, _ -> Alcotest.failf "unexpected %s" (Pp.insn i))

let test_decode_b8_mov () =
  (* b8+r mov r32, imm32 (GCC-style) *)
  let prog = [ 0xb8; 0x2a; 0x00; 0x00; 0x00 ] in
  let read i = try List.nth prog i with _ -> 0x90 in
  match Decode.decode ~read 0 with
  | Mov (W32, OReg Reg.RAX, OImm 42L), 5 -> ()
  | i, _ -> Alcotest.failf "unexpected %s" (Pp.insn i)

(* ---------- image helpers ---------- *)

let test_image_symbols () =
  let img = Image.create () in
  let a = Image.install_code ~name:"f" img [ I Ret ] in
  check cint "lookup" a (Image.lookup img "f");
  (match Image.lookup img "missing" with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "expected lookup failure")

let test_image_alignment () =
  let img = Image.create () in
  let a = Image.alloc_data ~align:64 img 10 in
  check cint "aligned" 0 (a land 63);
  let b = Image.alloc_data ~align:16 img 1 in
  check cint "aligned 16" 0 (b land 15);
  Alcotest.(check bool) "no overlap" true (b >= a + 10)

let test_disassemble_fn_stops_at_ret () =
  let img = Image.create () in
  let fn =
    Image.install_code img
      [ I (Nop 1); I Ret; I Ud2 (* must not be listed *) ]
  in
  let l = Image.disassemble_fn img fn in
  check cint "two instructions" 2 (List.length l)

(* ---------- encoder edge cases ---------- *)

let test_encode_disp_sizes () =
  (* disp8 vs disp32 encodings round-trip at the boundary *)
  List.iter
    (fun disp ->
      let i = Mov (W64, OReg Reg.RAX, OMem (mem_base ~disp Reg.RSI)) in
      let bytes = Encode.encode_at ~addr:0 i in
      let read p = if p < String.length bytes then Char.code bytes.[p] else 0x90 in
      let j, len = Decode.decode ~read 0 in
      check cint "length" (String.length bytes) len;
      check Alcotest.string "roundtrip" (Pp.insn i) (Pp.insn j))
    [ -129; -128; -1; 0; 1; 127; 128; 100000; -100000 ]

let test_encode_rbp_r13_base () =
  (* rbp/r13 as base require an explicit displacement byte *)
  List.iter
    (fun base ->
      let i = Mov (W64, OReg Reg.RAX, OMem (mem_base base)) in
      let bytes = Encode.encode_at ~addr:0 i in
      let read p = if p < String.length bytes then Char.code bytes.[p] else 0x90 in
      let j, _ = Decode.decode ~read 0 in
      check Alcotest.string "roundtrip" (Pp.insn i) (Pp.insn j))
    [ Reg.RBP; Reg.R13; Reg.RSP; Reg.R12 ]

(* ---------- RIP-relative addressing ---------- *)

(* 48 8b 05 d4 00 00 00 = mov rax, [rip + 0xd4]; the disp32 is
   relative to the end of the instruction *)
let rip_fixture = [ 0x48; 0x8b; 0x05; 0xd4; 0x00; 0x00; 0x00 ]

let test_decode_rip_relative () =
  let read i = try List.nth rip_fixture i with _ -> 0x90 in
  match Decode.decode ~read 0 with
  | Mov (W64, OReg Reg.RAX, OMem m), 7 ->
    Alcotest.(check bool) "rip flag" true m.rip;
    check cint "raw disp" 0xd4 m.disp;
    Alcotest.(check bool) "no base/index/seg" true
      (m.base = None && m.index = None && m.seg = None)
  | i, _ -> Alcotest.failf "unexpected %s" (Pp.insn i)

let test_encode_rip_byte_identity () =
  (* encode → decode → encode is byte-identical for rip operands of
     every disp32 shape (the raw-disp representation guarantees it) *)
  List.iter
    (fun disp ->
      let i = Mov (W64, OReg Reg.RAX, OMem (mem_rip disp)) in
      let bytes = Encode.encode_at ~addr:0x1000 i in
      let read p =
        let q = p - 0x1000 in
        if q >= 0 && q < String.length bytes then Char.code bytes.[q]
        else 0x90
      in
      let j, len = Decode.decode ~read 0x1000 in
      check cint "length" (String.length bytes) len;
      check Alcotest.string "print" (Pp.insn i) (Pp.insn j);
      check Alcotest.string "bytes" bytes (Encode.encode_at ~addr:0x1000 j))
    [ 0; 1; -1; 127; 128; -129; 100000; -100000 ]

(* a one-insn rip-relative loader of the data cell at [data]: probe a
   scratch image for the deterministic first-install address, then
   point the 7-byte mov's operand at the (separate) data region *)
let install_rip_loader img data =
  let probe = Image.install_code (Image.create ()) [ I Ret ] in
  let fn =
    Image.install_code img
      [ I (Mov (W64, OReg Reg.RAX, OMem (mem_rip (data - (probe + 7)))));
        I Ret ]
  in
  check cint "deterministic code base" probe fn;
  fn

let test_rip_exec_both_engines () =
  (* a rip-relative load must read the same cell on the single-step
     interpreter and the superblock engine *)
  List.iter
    (fun engine ->
      let img = Image.create () in
      let data = Image.alloc_data ~align:8 img 8 in
      Mem.write_u64 img.Image.cpu.Cpu.mem data 0x1122334455667788L;
      let fn = install_rip_loader img data in
      let r, _ = Image.call ~engine img ~fn in
      check ci64 "rip load" 0x1122334455667788L r)
    [ Cpu.Superblocks; Cpu.SingleStep ]

let test_rip_lift () =
  (* lifting absolutizes the operand against the decode address, so the
     recompiled function reads the same cell even though it is
     installed at a different address *)
  let img = Image.create () in
  let data = Image.alloc_data ~align:8 img 8 in
  Mem.write_u64 img.Image.cpu.Cpu.mem data 0xCAFEBABEL;
  let fn = install_rip_loader img data in
  let f =
    Obrew_lifter.Lift.lift
      ~read:(Mem.read_u8 img.Image.cpu.Cpu.mem)
      ~entry:fn ~name:"ripload"
      { Obrew_ir.Ins.args = []; ret = Some Obrew_ir.Ins.I64 }
  in
  Obrew_opt.Pipeline.run { Obrew_ir.Ins.funcs = [ f ]; globals = [] };
  let fn2 = Obrew_backend.Jit.install_func img f in
  Alcotest.(check bool) "relocated" true (fn2 <> fn);
  let r, _ = Image.call img ~fn:fn2 in
  check ci64 "lifted rip load" 0xCAFEBABEL r

(* ---------- SIB index decoding (REX.X) ---------- *)

let test_decode_sib_r12_index () =
  (* 4a 8b 04 e0 = mov rax, [rax + r12*8]: index 4 plus REX.X is R12,
     a real index — only index 4 without REX.X means "no index" *)
  let prog = [ 0x4a; 0x8b; 0x04; 0xe0 ] in
  let read i = try List.nth prog i with _ -> 0x90 in
  (match Decode.decode ~read 0 with
   | (Mov (W64, OReg Reg.RAX,
           OMem { base = Some Reg.RAX; index = Some (Reg.R12, S8);
                  disp = 0; _ }) as i), 4 ->
     (* and the encoder reproduces the same bytes *)
     let bytes = Encode.encode_at ~addr:0 i in
     check Alcotest.string "re-encode"
       "\x4a\x8b\x04\xe0" bytes
   | i, _ -> Alcotest.failf "unexpected %s" (Pp.insn i))

let test_decode_sib_rsp_means_no_index () =
  (* 48 8b 04 20 = mov rax, [rax]: SIB index 4 without REX.X encodes
     the absence of an index, never RSP-as-index *)
  let prog = [ 0x48; 0x8b; 0x04; 0x20 ] in
  let read i = try List.nth prog i with _ -> 0x90 in
  match Decode.decode ~read 0 with
  | Mov (W64, OReg Reg.RAX, OMem { base = Some Reg.RAX; index = None;
                                   disp = 0; _ }), 4 -> ()
  | i, _ -> Alcotest.failf "unexpected %s" (Pp.insn i)

(* ---------- QCheck: byte identity and engine equivalence ---------- *)

let gen_gpr = QCheck2.Gen.(map Reg.of_index (int_range 0 15))

let gen_gpr_noidx =
  QCheck2.Gen.(
    map Reg.of_index (oneofl [ 0; 1; 2; 3; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15 ]))

let gen_mem =
  let open QCheck2.Gen in
  let* base = opt gen_gpr in
  let* index = opt (pair gen_gpr_noidx (oneofl [ S1; S2; S4; S8 ])) in
  let* disp =
    oneof [ return 0; int_range (-128) 127; int_range (-100000) 100000 ]
  in
  let* rip = frequency [ (4, return false); (1, return true) ] in
  if rip then return (mem_rip disp)
  else return { base; index; disp; seg = None; rip = false }

let gen_encodable_insn =
  let open QCheck2.Gen in
  let alu = oneofl [ Add; Sub; And; Or; Xor; Cmp; Adc; Sbb ] in
  let width = oneofl [ W8; W16; W32; W64 ] in
  oneof
    [ (let* w = width in
       let* d = oneof [ map (fun r -> OReg r) gen_gpr;
                        map (fun m -> OMem m) gen_mem ] in
       let* s = map (fun r -> OReg r) gen_gpr in
       return (Mov (w, d, s)));
      (let* w = width in
       let* d = gen_gpr in
       let* m = gen_mem in
       return (Mov (w, OReg d, OMem m)));
      (let* op = alu in
       let* w = width in
       let* d = gen_gpr in
       let* m = gen_mem in
       return (Alu (op, w, OReg d, OMem m)));
      (let* op = alu in
       let* w = width in
       let* m = gen_mem in
       let* s = gen_gpr in
       return (Alu (op, w, OMem m, OReg s)));
      (let* m = gen_mem in
       let* d = gen_gpr in
       return (Lea (d, m)));
      (let* x = int_range 0 15 in
       let* m = gen_mem in
       let* p = oneofl [ Sd; Ss; Pd; Ps ] in
       let* a = oneofl [ FAdd; FSub; FMul; FDiv ] in
       let* src = oneof [ map (fun y -> Xr y) (int_range 0 15);
                          return (Xm m) ] in
       return (SseArith (a, p, x, src))) ]

let prop_byte_identity =
  QCheck2.Test.make ~name:"encode (decode bytes) is byte-identical"
    ~count:2000 gen_encodable_insn (fun i ->
      try
        let bytes = Encode.encode_at ~addr:0x1000 i in
        let read p =
          let q = p - 0x1000 in
          if q >= 0 && q < String.length bytes then Char.code bytes.[q]
          else 0x90
        in
        let j, len = Decode.decode ~read 0x1000 in
        if len <> String.length bytes then
          QCheck2.Test.fail_reportf "length %d <> %d for %s" len
            (String.length bytes) (Pp.insn i);
        let bytes' = Encode.encode_at ~addr:0x1000 j in
        if bytes <> bytes' then
          QCheck2.Test.fail_reportf "bytes differ: %s vs %s" (Pp.insn i)
            (Pp.insn j);
        true
      with Obrew_fault.Err.Error e ->
        if e.Obrew_fault.Err.stage = Obrew_fault.Err.Encode then
          QCheck2.assume_fail ()
        else
          QCheck2.Test.fail_reportf "decode failed on %s: %s" (Pp.insn i)
            (Obrew_fault.Err.to_string e))

(* random straight-line sequences must leave both engines in the same
   architectural state: registers, xmm state and flags *)
let gen_diff_insn =
  let open QCheck2.Gen in
  (* no rsp destinations (the sequence must return cleanly) and no rdi
     destinations: rdi is the scratch-buffer base every memory operand
     goes through, and repointing it would let a random store smash the
     stack sentinel — sending the emulator on a multi-minute walk
     through zero pages until the 2e9-insn watchdog fires *)
  let dreg =
    map Reg.of_index (oneofl [ 0; 1; 2; 3; 5; 6; 8; 9; 10; 11; 12; 13; 14; 15 ])
  in
  let width = oneofl [ W32; W64 ] in
  let alu = oneofl [ Add; Sub; And; Or; Xor; Cmp; Adc; Sbb ] in
  let ccs = oneofl [ O; NO; B; AE; E; NE; BE; A; S; NS; P; NP; L; GE; LE; G ] in
  (* memory operands stay near the scratch buffer rdi points at *)
  let smem =
    let* disp = int_range 0 56 in
    return (mem_base ~disp Reg.RDI)
  in
  oneof
    [ (let* w = width in
       let* d = dreg in
       let* s = dreg in
       return (Mov (w, OReg d, OReg s)));
      (let* w = width in
       let* d = dreg in
       let* i = int_range (-10000) 10000 in
       return (Mov (w, OReg d, OImm (Int64.of_int i))));
      (let* op = alu in
       let* w = width in
       let* d = dreg in
       let* s = dreg in
       return (Alu (op, w, OReg d, OReg s)));
      (let* op = alu in
       let* w = width in
       let* d = dreg in
       let* m = smem in
       return (Alu (op, w, OReg d, OMem m)));
      (let* op = alu in
       let* w = width in
       let* m = smem in
       let* s = dreg in
       return (Alu (op, w, OMem m, OReg s)));
      (let* w = width in
       let* d = dreg in
       let* s = dreg in
       return (Imul2 (w, d, OReg s)));
      (let* w = width in
       let* sh = oneofl [ Shl; Shr; Sar ] in
       let* d = dreg in
       let* n = int_range 1 31 in
       return (Shift (sh, w, OReg d, ShImm n)));
      (let* c = ccs in
       let* w = width in
       let* d = dreg in
       let* s = dreg in
       return (Cmov (c, w, d, OReg s)));
      (let* c = ccs in
       let* d = dreg in
       return (Setcc (c, OReg d)));
      (let* x = int_range 0 7 in
       let* a = oneofl [ FAdd; FSub; FMul ] in
       let* src = oneof [ map (fun y -> Xr y) (int_range 0 7);
                          map (fun m -> Xm m) smem ] in
       return (SseArith (a, Sd, x, src))) ]

let run_seq engine (insns : insn list) =
  let img = Image.create () in
  let buf = Image.alloc_data ~align:16 img 64 in
  for k = 0 to 7 do
    Mem.write_u64 img.Image.cpu.Cpu.mem
      (buf + (8 * k))
      (Int64.of_int (0x0101010101 * (k + 1)))
  done;
  let fn =
    Image.install_code img (List.map (fun i -> I i) insns @ [ I Ret ])
  in
  ignore
    (Image.call ~engine ~max_insns:100_000 img ~fn
       ~args:[ Int64.of_int buf; 7L; -3L; 1234567L; 2L; 3L ]);
  img.Image.cpu

let prop_engines_agree =
  QCheck2.Test.make
    ~name:"superblock and single-step engines leave identical state"
    ~count:200
    QCheck2.Gen.(list_size (int_range 1 20) gen_diff_insn)
    (fun insns ->
      try
        let a = run_seq Cpu.SingleStep insns in
        let b = run_seq Cpu.Superblocks insns in
        let flags c =
          (c.Cpu.zf, c.Cpu.sf, c.Cpu.cf, c.Cpu.o_f, c.Cpu.pf, c.Cpu.af)
        in
        if a.Cpu.regs <> b.Cpu.regs then
          QCheck2.Test.fail_reportf "registers diverge on:\n%s"
            (String.concat "\n" (List.map Pp.insn insns));
        if a.Cpu.xlo <> b.Cpu.xlo || a.Cpu.xhi <> b.Cpu.xhi then
          QCheck2.Test.fail_reportf "xmm state diverges on:\n%s"
            (String.concat "\n" (List.map Pp.insn insns));
        if flags a <> flags b then
          QCheck2.Test.fail_reportf "flags diverge on:\n%s"
            (String.concat "\n" (List.map Pp.insn insns));
        true
      with Obrew_fault.Err.Error e ->
        if e.Obrew_fault.Err.stage = Obrew_fault.Err.Encode then
          QCheck2.assume_fail ()
        else
          QCheck2.Test.fail_reportf "sequence failed: %s"
            (Obrew_fault.Err.to_string e))

let () =
  Alcotest.run "isa"
    [ ("cc",
       [ Alcotest.test_case "negate involution" `Quick test_cc_negate_involution;
         Alcotest.test_case "negate semantics" `Quick test_cc_negate_semantics ]);
      ("memory",
       [ Alcotest.test_case "page crossing" `Quick test_mem_page_crossing;
         Alcotest.test_case "f64 roundtrip" `Quick test_mem_f64_roundtrip;
         Alcotest.test_case "byte blobs" `Quick test_mem_bytes_roundtrip ]);
      ("cost",
       [ Alcotest.test_case "orderings" `Quick test_cost_ordering;
         Alcotest.test_case "unaligned penalty" `Quick test_unaligned_penalty;
         Alcotest.test_case "branch direction" `Quick test_branch_cost_direction ]);
      ("decode",
       [ Alcotest.test_case "rejects garbage" `Quick test_decode_rejects_garbage;
         Alcotest.test_case "rel8 forms" `Quick test_decode_rel8_forms;
         Alcotest.test_case "b8 mov" `Quick test_decode_b8_mov ]);
      ("image",
       [ Alcotest.test_case "symbols" `Quick test_image_symbols;
         Alcotest.test_case "alignment" `Quick test_image_alignment;
         Alcotest.test_case "disassemble_fn" `Quick
           test_disassemble_fn_stops_at_ret ]);
      ("encode",
       [ Alcotest.test_case "disp sizes" `Quick test_encode_disp_sizes;
         Alcotest.test_case "rbp/r13 bases" `Quick test_encode_rbp_r13_base ]);
      ("rip",
       [ Alcotest.test_case "decode fixture" `Quick test_decode_rip_relative;
         Alcotest.test_case "byte identity" `Quick
           test_encode_rip_byte_identity;
         Alcotest.test_case "both engines" `Quick test_rip_exec_both_engines;
         Alcotest.test_case "lift absolutizes" `Quick test_rip_lift ]);
      ("sib",
       [ Alcotest.test_case "r12 index via REX.X" `Quick
           test_decode_sib_r12_index;
         Alcotest.test_case "rsp means no index" `Quick
           test_decode_sib_rsp_means_no_index ]);
      ("property",
       [ QCheck_alcotest.to_alcotest prop_byte_identity;
         QCheck_alcotest.to_alcotest prop_engines_agree ])
    ]
