(* Additional x86 substrate tests: the cost model, paged memory edge
   cases, decoder robustness, condition-code algebra and disassembly
   helpers. *)

open Obrew_x86
open Insn

let check = Alcotest.check
let cint = Alcotest.int
let ci64 = Alcotest.int64

(* ---------- condition codes ---------- *)

let test_cc_negate_involution () =
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (cc_name c ^ " double negation")
        true
        (cc_negate (cc_negate c) = c))
    [ O; NO; B; AE; E; NE; BE; A; S; NS; P; NP; L; GE; LE; G ]

let test_cc_negate_semantics () =
  (* negated cc must evaluate to the opposite on the emulator *)
  let img = Image.create () in
  List.iter
    (fun c ->
      let mk cc =
        Image.install_code img
          [ I (Alu (Cmp, W64, OReg Reg.RDI, OReg Reg.RSI));
            I (Setcc (cc, OReg Reg.RAX));
            I (Movzx (W64, Reg.RAX, W8, OReg Reg.RAX));
            I Ret ]
      in
      let f1 = mk c and f2 = mk (cc_negate c) in
      List.iter
        (fun (a, b) ->
          let r1, _ = Image.call img ~fn:f1 ~args:[ a; b ] in
          let r2, _ = Image.call img ~fn:f2 ~args:[ a; b ] in
          check ci64
            (Printf.sprintf "%s(%Ld,%Ld) = !%s" (cc_name c) a b
               (cc_name (cc_negate c)))
            1L (Int64.add r1 r2))
        [ (1L, 2L); (2L, 1L); (5L, 5L); (-3L, 3L); (3L, -3L) ])
    [ B; AE; E; NE; BE; A; S; NS; L; GE; LE; G ]

(* ---------- memory ---------- *)

let test_mem_page_crossing () =
  let m = Mem.create () in
  (* a u64 write straddling a 4 KiB page boundary *)
  let a = 4096 - 3 in
  Mem.write_u64 m a 0x1122334455667788L;
  check ci64 "page-crossing u64" 0x1122334455667788L (Mem.read_u64 m a);
  check cint "byte before boundary" 0x66 (Mem.read_u8 m 4095);
  check cint "byte after boundary" 0x55 (Mem.read_u8 m 4096);
  (* u32 crossing *)
  let b = 8192 - 2 in
  Mem.write_u32 m b 0xAABBCCDD;
  check cint "page-crossing u32" 0xAABBCCDD (Mem.read_u32 m b)

let test_mem_f64_roundtrip () =
  let m = Mem.create () in
  List.iter
    (fun v ->
      Mem.write_f64 m 0x100 v;
      let r = Mem.read_f64 m 0x100 in
      Alcotest.(check bool) (string_of_float v) true
        (Int64.bits_of_float v = Int64.bits_of_float r))
    [ 0.0; -0.0; 1.5; -3.25; infinity; neg_infinity; Float.nan; 1e-300 ]

let test_mem_bytes_roundtrip () =
  let m = Mem.create () in
  let s = String.init 100 (fun i -> Char.chr (i * 7 mod 256)) in
  Mem.write_bytes m 5000 s;
  check Alcotest.string "blob" s (Mem.read_bytes m 5000 100)

(* ---------- cost model ---------- *)

let test_cost_ordering () =
  let c = Cost.default in
  let cost i = Cost.insn_cost c i in
  (* sanity orderings the benchmarks depend on *)
  Alcotest.(check bool) "mul > add" true
    (cost (Imul2 (W64, Reg.RAX, OReg Reg.RCX))
     > cost (Alu (Add, W64, OReg Reg.RAX, OReg Reg.RCX)));
  Alcotest.(check bool) "div most expensive" true
    (cost (Idiv (W64, OReg Reg.RCX)) > cost (Imul2 (W64, Reg.RAX, OReg Reg.RCX)));
  Alcotest.(check bool) "memory op > register op" true
    (cost (Mov (W64, OReg Reg.RAX, OMem (mem_base Reg.RSI)))
     > cost (Mov (W64, OReg Reg.RAX, OReg Reg.RSI)));
  Alcotest.(check bool) "fp mul > fp add" true
    (cost (SseArith (FMul, Sd, 0, Xr 1)) > cost (SseArith (FAdd, Sd, 0, Xr 1)));
  Alcotest.(check bool) "rmw = load + store + op" true
    (cost (Alu (Add, W64, OMem (mem_base Reg.RSI), OReg Reg.RAX))
     >= cost (Alu (Add, W64, OReg Reg.RAX, OMem (mem_base Reg.RSI))))

let test_unaligned_penalty () =
  (* the same packed loop on aligned vs misaligned data costs more
     cycles when misaligned — the basis of the Sec. VI-B experiment *)
  let img = Image.create () in
  let a = Image.alloc_f64_array ~align:16 img (Array.make 64 1.0) in
  let fn =
    Image.install_code img
      [ I (Alu (Xor, W32, OReg Reg.RAX, OReg Reg.RAX));
        L 0;
        I (SseMov (Movupd, Xr 0, Xm (mem_bi Reg.RDI Reg.RAX S8)));
        I (SseArith (FAdd, Pd, 1, Xr 0));
        I (Alu (Add, W64, OReg Reg.RAX, OImm 2L));
        I (Alu (Cmp, W64, OReg Reg.RAX, OImm 32L));
        I (Jcc (NE, Lbl 0));
        I Ret ]
  in
  let run base =
    Image.reset_stack img;
    let _, cycles, _ =
      Image.measure img (fun () ->
          Image.call img ~fn ~args:[ Int64.of_int base ])
    in
    cycles
  in
  let aligned = run a in
  let misaligned = run (a + 8) in
  Alcotest.(check bool)
    (Printf.sprintf "misaligned (%d) > aligned (%d)" misaligned aligned)
    true (misaligned > aligned)

let test_branch_cost_direction () =
  (* taken branches cost more than fall-through *)
  let img = Image.create () in
  let taken =
    Image.install_code img
      [ I (Test (W64, OReg Reg.RDI, OReg Reg.RDI));
        I (Jcc (E, Lbl 0)); (* rdi = 0: taken *)
        I (Nop 1);
        L 0;
        I Ret ]
  in
  let count arg =
    Image.reset_stack img;
    let _, cycles, _ =
      Image.measure img (fun () -> Image.call img ~fn:taken ~args:[ arg ])
    in
    cycles
  in
  Alcotest.(check bool) "taken >= not taken" true (count 0L >= count 1L - 1)

(* ---------- decoder robustness ---------- *)

let test_decode_rejects_garbage () =
  let cases = [ [ 0x06 ]; [ 0x0f; 0x05 ]; [ 0xd7 ] ] in
  List.iter
    (fun bytes ->
      let read i = try List.nth bytes i with _ -> 0x90 in
      match Decode.decode ~read 0 with
      | exception Obrew_fault.Err.Error { Obrew_fault.Err.stage = Decode; _ }
        -> ()
      | i, _ ->
        Alcotest.failf "garbage decoded as %s" (Pp.insn i))
    cases

let test_decode_rel8_forms () =
  (* short jumps (not produced by our encoder) still decode *)
  let prog = [ 0xeb; 0x05 ] in (* jmp +5 *)
  let read base i = try List.nth prog (i - base) with _ -> 0x90 in
  (match Decode.decode ~read:(read 0x100) 0x100 with
   | Jmp (Abs t), 2 -> check cint "jmp rel8 target" 0x107 t
   | i, _ -> Alcotest.failf "unexpected %s" (Pp.insn i));
  let prog2 = [ 0x74; 0xfe ] in (* je -2 = self *)
  let read2 i = try List.nth prog2 (i - 0x200) with _ -> 0x90 in
  (match Decode.decode ~read:read2 0x200 with
   | Jcc (E, Abs t), 2 -> check cint "jcc rel8 target" 0x200 t
   | i, _ -> Alcotest.failf "unexpected %s" (Pp.insn i))

let test_decode_b8_mov () =
  (* b8+r mov r32, imm32 (GCC-style) *)
  let prog = [ 0xb8; 0x2a; 0x00; 0x00; 0x00 ] in
  let read i = try List.nth prog i with _ -> 0x90 in
  match Decode.decode ~read 0 with
  | Mov (W32, OReg Reg.RAX, OImm 42L), 5 -> ()
  | i, _ -> Alcotest.failf "unexpected %s" (Pp.insn i)

(* ---------- image helpers ---------- *)

let test_image_symbols () =
  let img = Image.create () in
  let a = Image.install_code ~name:"f" img [ I Ret ] in
  check cint "lookup" a (Image.lookup img "f");
  (match Image.lookup img "missing" with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "expected lookup failure")

let test_image_alignment () =
  let img = Image.create () in
  let a = Image.alloc_data ~align:64 img 10 in
  check cint "aligned" 0 (a land 63);
  let b = Image.alloc_data ~align:16 img 1 in
  check cint "aligned 16" 0 (b land 15);
  Alcotest.(check bool) "no overlap" true (b >= a + 10)

let test_disassemble_fn_stops_at_ret () =
  let img = Image.create () in
  let fn =
    Image.install_code img
      [ I (Nop 1); I Ret; I Ud2 (* must not be listed *) ]
  in
  let l = Image.disassemble_fn img fn in
  check cint "two instructions" 2 (List.length l)

(* ---------- encoder edge cases ---------- *)

let test_encode_disp_sizes () =
  (* disp8 vs disp32 encodings round-trip at the boundary *)
  List.iter
    (fun disp ->
      let i = Mov (W64, OReg Reg.RAX, OMem (mem_base ~disp Reg.RSI)) in
      let bytes = Encode.encode_at ~addr:0 i in
      let read p = if p < String.length bytes then Char.code bytes.[p] else 0x90 in
      let j, len = Decode.decode ~read 0 in
      check cint "length" (String.length bytes) len;
      check Alcotest.string "roundtrip" (Pp.insn i) (Pp.insn j))
    [ -129; -128; -1; 0; 1; 127; 128; 100000; -100000 ]

let test_encode_rbp_r13_base () =
  (* rbp/r13 as base require an explicit displacement byte *)
  List.iter
    (fun base ->
      let i = Mov (W64, OReg Reg.RAX, OMem (mem_base base)) in
      let bytes = Encode.encode_at ~addr:0 i in
      let read p = if p < String.length bytes then Char.code bytes.[p] else 0x90 in
      let j, _ = Decode.decode ~read 0 in
      check Alcotest.string "roundtrip" (Pp.insn i) (Pp.insn j))
    [ Reg.RBP; Reg.R13; Reg.RSP; Reg.R12 ]

let () =
  Alcotest.run "isa"
    [ ("cc",
       [ Alcotest.test_case "negate involution" `Quick test_cc_negate_involution;
         Alcotest.test_case "negate semantics" `Quick test_cc_negate_semantics ]);
      ("memory",
       [ Alcotest.test_case "page crossing" `Quick test_mem_page_crossing;
         Alcotest.test_case "f64 roundtrip" `Quick test_mem_f64_roundtrip;
         Alcotest.test_case "byte blobs" `Quick test_mem_bytes_roundtrip ]);
      ("cost",
       [ Alcotest.test_case "orderings" `Quick test_cost_ordering;
         Alcotest.test_case "unaligned penalty" `Quick test_unaligned_penalty;
         Alcotest.test_case "branch direction" `Quick test_branch_cost_direction ]);
      ("decode",
       [ Alcotest.test_case "rejects garbage" `Quick test_decode_rejects_garbage;
         Alcotest.test_case "rel8 forms" `Quick test_decode_rel8_forms;
         Alcotest.test_case "b8 mov" `Quick test_decode_b8_mov ]);
      ("image",
       [ Alcotest.test_case "symbols" `Quick test_image_symbols;
         Alcotest.test_case "alignment" `Quick test_image_alignment;
         Alcotest.test_case "disassemble_fn" `Quick
           test_disassemble_fn_stops_at_ret ]);
      ("encode",
       [ Alcotest.test_case "disp sizes" `Quick test_encode_disp_sizes;
         Alcotest.test_case "rbp/r13 bases" `Quick test_encode_rbp_r13_base ])
    ]
