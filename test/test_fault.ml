(* Deterministic fault-injection harness (the robustness tentpole).

   Random injection plans are thrown at the fail-safe pipeline; the
   properties are the contract of [Modes.transform_safe]:
   - it never raises, whatever fails inside the pipeline;
   - the kernel it returns is runnable once the plan is cleared;
   - the Jacobi result computed with that kernel is bit-identical to
     the natively compiled kernel's result.

   The suite is seed-deterministic: run with QCHECK_SEED=N for a
   reproducible sequence (the CI smoke job pins the seed). *)

open Obrew_core
open Obrew_fault
module Sen = Obrew_sentinel.Sentinel
module H = Obrew_sentinel.Health

let sz = 9
let iters = 2

(* one shared workload: building an env compiles the whole benchmark
   program, far too slow to repeat 500 times *)
let shared = lazy (Modes.build ~sz ())

let kinds = [ Modes.Direct; Modes.Flat; Modes.Sorted ]
let styles = [ Modes.Element; Modes.Line ]

let transforms =
  [ Modes.Native; Modes.Llvm; Modes.LlvmFix; Modes.DBrew; Modes.DBrewLlvm ]

(* native reference result bits per (kind, style), computed without any
   plan installed *)
let native_ref : (Modes.kind * Modes.style, int64 array) Hashtbl.t =
  Hashtbl.create 8

let reference kind style =
  match Hashtbl.find_opt native_ref (kind, style) with
  | Some r -> r
  | None ->
    let env = Lazy.force shared in
    let kernel = Modes.native_addr env kind style in
    ignore (Modes.run env kind style ~kernel ~iters);
    let r =
      Array.map Int64.bits_of_float (Modes.result_matrix env ~iters)
    in
    Hashtbl.replace native_ref (kind, style) r;
    r

(* ------------------------------------------------------------------ *)
(* Plan primitives                                                     *)
(* ------------------------------------------------------------------ *)

let test_parse () =
  (match Fault.parse "opt.gvn:1:2,decode.truncated" with
   | Ok [ a; b ] ->
     Alcotest.(check string) "point 1" "opt.gvn" a.Fault.a_point;
     Alcotest.(check int) "skip 1" 1 a.Fault.a_skip;
     Alcotest.(check int) "fires 1" 2 a.Fault.a_fires;
     Alcotest.(check string) "point 2" "decode.truncated" b.Fault.a_point;
     Alcotest.(check int) "skip 2" 0 b.Fault.a_skip
   | Ok _ -> Alcotest.fail "expected two arms"
   | Error m -> Alcotest.failf "parse failed: %s" m);
  (match Fault.parse "no.such.point" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unknown point accepted");
  match Fault.parse "opt.gvn:x" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed skip accepted"

let test_arm_semantics () =
  (* skip 1, fire once: 2nd hit raises, 1st and 3rd pass through *)
  Fault.install [ Fault.arm ~skip:1 ~fires:1 "opt.gvn" ];
  Fault.point "opt.gvn";
  (match Fault.point "opt.gvn" with
   | () -> Alcotest.fail "second hit should raise"
   | exception Err.Error e ->
     Alcotest.(check bool) "tagged as injected" true (Err.injected e);
     Alcotest.(check string) "stage" "opt" (Err.stage_name e.Err.stage));
  Fault.point "opt.gvn";
  Alcotest.(check int) "fired once" 1 (Fault.fired ());
  Fault.clear ();
  Fault.point "opt.gvn";
  Alcotest.(check int) "inert after clear" 0 (Fault.fired ())

let test_stage_mapping () =
  List.iter
    (fun (p, st) ->
      Alcotest.(check string)
        (Printf.sprintf "stage of %s" p)
        (Err.stage_name st)
        (Err.stage_name (Fault.stage_of_point p)))
    Fault.all_points

(* ------------------------------------------------------------------ *)
(* Fallback chain and stage attribution (the PR 8 bugfixes)            *)
(* ------------------------------------------------------------------ *)

(* the requested mode must head its own chain — the old suffix walk
   returned [Native] for any mode absent from [fallback_chain],
   silently skipping the requested transform *)
let test_chain_from () =
  List.iter
    (fun t ->
      match Modes.chain_from t with
      | head :: _ when head = t -> ()
      | chain ->
        Alcotest.failf "chain_from %s starts with %s, not the request"
          (Modes.transform_name t)
          (match chain with
           | [] -> "<empty>"
           | h :: _ -> Modes.transform_name h))
    transforms;
  let names l = List.map Modes.transform_name l in
  Alcotest.(check (list string)) "DBrewLlvm chain"
    (names Modes.fallback_chain)
    (names (Modes.chain_from Modes.DBrewLlvm));
  Alcotest.(check (list string)) "LlvmFix degrades via Llvm"
    (names [ Modes.LlvmFix; Modes.Llvm; Modes.Native ])
    (names (Modes.chain_from Modes.LlvmFix));
  Alcotest.(check (list string)) "Native chain is the floor alone"
    (names [ Modes.Native ])
    (names (Modes.chain_from Modes.Native))

(* regression: transform_safe on a healthy pipeline must actually run
   the requested LlvmFix transform, not fall through to Native *)
let test_llvmfix_attempted () =
  let env = Lazy.force shared in
  Fault.clear ();
  let r =
    Modes.transform_safe ~use_memo:false env Modes.Flat Modes.Element
      Modes.LlvmFix
  in
  Alcotest.(check string) "LlvmFix itself served the request"
    (Modes.transform_name Modes.LlvmFix)
    (Modes.transform_name r.Modes.used);
  Alcotest.(check int) "no failures along the way" 0
    (List.length r.Modes.failures);
  ignore (Modes.run env Modes.Flat Modes.Element ~kernel:r.Modes.kernel ~iters);
  let got = Modes.result_matrix env ~iters in
  let want = reference Modes.Flat Modes.Element in
  Array.iteri
    (fun i b ->
      if Int64.bits_of_float got.(i) <> b then
        Alcotest.failf "LlvmFix kernel: cell %d differs from native" i)
    want

(* regression: an untyped exception escaping a pipeline stage must be
   attributed to that stage, not blanket-blamed on Encode *)
let test_untyped_attribution () =
  let env = Lazy.force shared in
  List.iter
    (fun (point, stage) ->
      Fault.install [ Fault.arm point ];
      let r =
        Modes.transform_safe ~use_memo:false env Modes.Flat Modes.Element
          Modes.Llvm
      in
      Fault.clear ();
      (match r.Modes.failures with
       | [ (Modes.Llvm, e) ] ->
         Alcotest.(check string)
           (Printf.sprintf "%s attributed stage" point)
           (Err.stage_name stage)
           (Err.stage_name e.Err.stage);
         (* the wrapped detail must carry the original Failure text
            (of_exn prefixes "unexpected exception: ") *)
         let marker = "injected: untyped fault" in
         let contains hay needle =
           let nh = String.length hay and nn = String.length needle in
           let rec go i =
             i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
           in
           go 0
         in
         if not (contains e.Err.detail marker) then
           Alcotest.failf "%s: detail lost the injected marker: %s" point
             e.Err.detail
       | fs ->
         Alcotest.failf "%s: expected exactly the Llvm failure, got %d" point
           (List.length fs));
      Alcotest.(check string)
        (Printf.sprintf "%s fell back to native" point)
        (Modes.transform_name Modes.Native)
        (Modes.transform_name r.Modes.used))
    Fault.untyped_points

(* ------------------------------------------------------------------ *)
(* Campaign coverage                                                   *)
(* ------------------------------------------------------------------ *)

(* union of every injection point reached while a plan was live, across
   the whole campaign (QCheck property + deterministic sweep); the
   final test asserts nothing registered went unexercised *)
let covered : (string, unit) Hashtbl.t = Hashtbl.create 32

let note_coverage () =
  List.iter (fun (p, _) -> Hashtbl.replace covered p ()) (Fault.hits ())

(* dense sentinel policy: every serve validates, heal retries almost
   immediately — keeps the campaign deterministic and fast *)
let sentinel_policy =
  { H.first_k = 4; sample_n = 2; suspect_n = 2; decay_streak = 2;
    heal_max = 3; heal_base = 1; heal_cap = 2 }

(* ------------------------------------------------------------------ *)
(* The property: transform_safe is total and correct under injection   *)
(* ------------------------------------------------------------------ *)

(* points safe to arm against the shared environment: engine saboteurs
   corrupt the dispatch machinery itself, so a corrupted kernel can
   validate clean (the reference probes run through the same poisoned
   engine) and then wreck shared guest state — they get a dedicated
   fresh-image drill instead *)
let shared_env_points =
  List.filter
    (fun (p, _) -> not (List.mem_assoc p Fault.engine_saboteur_points))
    Fault.all_points

let gen_case =
  QCheck2.Gen.(
    let gen_arm =
      let* p = oneofl (List.map fst shared_env_points) in
      let* skip = int_bound 2 in
      let* fires = oneofl [ -1; 1; 2 ] in
      return (p, skip, fires)
    in
    quad
      (list_size (int_bound 3) gen_arm)
      (oneofl kinds) (oneofl styles) (oneofl transforms))

(* Serve through the sentinel while the plan is live, then clear the
   plan and keep serving: any corrupted kernel that slipped into
   service while the probes themselves were being injected is caught
   by the now-clean shadow checks, demoted and healed.  The final
   served kernel must always compute the native result bit-for-bit. *)
let prop_safe =
  QCheck2.Test.make ~name:"sentinel serve total and correct under injection"
    ~count:500 gen_case (fun (arms, kind, style, tr) ->
      let env = Lazy.force shared in
      let want = reference kind style in
      Sen.reset ();
      Quarantine.clear ();
      Fault.install
        (List.map (fun (p, skip, fires) -> Fault.arm ~skip ~fires p) arms);
      let serve () = Sen.serve ~policy:sentinel_policy env kind style tr in
      let r =
        match
          for _ = 1 to 6 do
            ignore (serve ())
          done
        with
        | () -> Ok ()
        | exception exn -> Error exn
      in
      note_coverage ();
      Fault.clear ();
      match r with
      | Error exn ->
        QCheck2.Test.fail_reportf "serve raised under injection: %s"
          (Printexc.to_string exn)
      | Ok () ->
        (* fault source gone: the sentinel must converge on a clean
           kernel within a few serves (detect + backoff + heal) *)
        let last = ref (serve ()) in
        for _ = 1 to 9 do
          last := serve ()
        done;
        let sv = !last in
        (match
           Modes.run ~max_insns:50_000_000 env kind style
             ~kernel:sv.Sen.sv_kernel ~iters
         with
         | _ -> ()
         | exception exn ->
           QCheck2.Test.fail_reportf "kernel from %s not runnable: %s"
             (Modes.transform_name sv.Sen.sv_mode) (Printexc.to_string exn));
        let got = Modes.result_matrix env ~iters in
        Array.iteri
          (fun i b ->
            if Int64.bits_of_float got.(i) <> b then
              QCheck2.Test.fail_reportf
                "%s %s via %s: cell %d differs from native (%h vs %h)"
                (Modes.kind_name kind) (Modes.style_name style)
                (Modes.transform_name sv.Sen.sv_mode) i got.(i)
                (Int64.float_of_bits b))
          want;
        true)

(* every shared-env point — typed and artifact-saboteur — injected
   forever, must still end in a correct serve, and the arm must
   actually land (engine saboteurs are drilled separately, on a
   throwaway image) *)
let test_every_point_lands () =
  let env = Lazy.force shared in
  List.iter
    (fun (p, _) ->
      Sen.reset ();
      Quarantine.clear ();
      Fault.install [ Fault.arm p ];
      (try
         for _ = 1 to 6 do
           ignore
             (Sen.serve ~policy:sentinel_policy env Modes.Flat Modes.Element
                Modes.DBrewLlvm)
         done
       with exn ->
         Fault.clear ();
         Alcotest.failf "point %s: raised %s" p (Printexc.to_string exn));
      note_coverage ();
      if Fault.fired () = 0 then begin
        if List.mem_assoc p (Fault.hits ()) then
          Alcotest.failf "point %s: reached while armed but never fired" p;
        (* a pass the JIT pipeline never schedules (opt.vectorize is
           build-time only: [o3_opts] forces no vectorization, Sec. VI)
           is exercised by recompiling the whole program under the arm *)
        (match Modes.build ~sz () with
         | _ ->
           Alcotest.failf
             "point %s: not reached by serves and a full build never fired it"
             p
         | exception Err.Error e when Err.injected e -> ());
        note_coverage ();
        if Fault.fired () = 0 then
          Alcotest.failf "point %s: armed forever but never fired" p
      end;
      Fault.clear ();
      let last = ref None in
      for _ = 1 to 10 do
        last :=
          Some
            (Sen.serve ~policy:sentinel_policy env Modes.Flat Modes.Element
               Modes.DBrewLlvm)
      done;
      let sv = Option.get !last in
      ignore
        (Modes.run ~max_insns:50_000_000 env Modes.Flat Modes.Element
           ~kernel:sv.Sen.sv_kernel ~iters);
      let got = Modes.result_matrix env ~iters in
      let want = reference Modes.Flat Modes.Element in
      Array.iteri
        (fun i b ->
          if Int64.bits_of_float got.(i) <> b then
            Alcotest.failf "point %s via %s: cell %d differs" p
              (Modes.transform_name sv.Sen.sv_mode) i)
        want)
    shared_env_points

(* [sabotage.isel.indirect] corrupts the execution engine itself — a
   stale inline-cache prediction trusted without revalidation on an
   indirect branch — rather than one translated artifact.  Armed
   against the shared environment it would poison the very reference
   engine the other checks trust, so it is drilled here on a throwaway
   image: warm the IC on one jump-table arm, dispatch to another arm
   under the plan, and prove (a) the flip lands and executes the wrong
   arm, (b) the single-step reference engine is immune, (c) clearing
   the plan heals the IC by plain revalidation, no flush needed. *)
let test_engine_saboteur_drill () =
  let open Obrew_x86 in
  let prog =
    Insn.
      [ I (Alu (And, W64, OReg Reg.RDI, OImm 3L));
        MovLbl (Reg.RAX, 9);
        I (JmpInd (OMem (mk_mem ~base:Reg.RAX ~index:(Reg.RDI, S8) ())));
        L 0; I (Movabs (Reg.RAX, 111L)); I Ret;
        L 1; I (Movabs (Reg.RAX, 222L)); I Ret;
        L 2; I (Movabs (Reg.RAX, 333L)); I Ret;
        L 3; I (Movabs (Reg.RAX, 444L)); I Ret;
        L 9; Q (Lbl 0); Q (Lbl 1); Q (Lbl 2); Q (Lbl 3) ]
  in
  let img = Image.create () in
  let fn = Image.install_code img prog in
  let dispatch ?engine idx =
    fst (Image.call ?engine ~args:[ Int64.of_int idx ] img ~fn)
  in
  (* sanity, and warms the dispatcher's inline cache on arm 0 *)
  Alcotest.(check int64) "warm arm 0" 111L (dispatch 0);
  Fault.install [ Fault.arm "sabotage.isel.indirect" ];
  let corrupt = dispatch 1 in
  let landed = Fault.sabotage_landed () in
  note_coverage ();
  (* the reference engine has no inline caches: immune even armed *)
  let ref_r = dispatch ~engine:Cpu.SingleStep 1 in
  Fault.clear ();
  if landed = 0 then
    Alcotest.fail "sabotage.isel.indirect armed but the flip never landed";
  Alcotest.(check int64) "stale prediction executed arm 0" 111L corrupt;
  Alcotest.(check int64) "single-step reference immune under arm" 222L ref_r;
  Alcotest.(check int64) "revalidation heals after clear" 222L (dispatch 1)

(* runs after the campaign: every registered injection point —
   including the saboteur points — must have been exercised *)
let test_campaign_coverage () =
  List.iter
    (fun p ->
      if not (Hashtbl.mem covered p) then
        Alcotest.failf "injection point %s never exercised by the campaign" p)
    Fault.all_point_names

let () =
  Alcotest.run "fault"
    [ ( "plan",
        [ Alcotest.test_case "parse" `Quick test_parse;
          Alcotest.test_case "arm semantics" `Quick test_arm_semantics;
          Alcotest.test_case "stage mapping" `Quick test_stage_mapping ] );
      ( "chain",
        [ Alcotest.test_case "requested mode heads its chain" `Quick
            test_chain_from;
          Alcotest.test_case "LlvmFix is actually attempted" `Quick
            test_llvmfix_attempted;
          Alcotest.test_case "untyped exceptions keep their stage" `Quick
            test_untyped_attribution ] );
      ( "harness",
        [ Alcotest.test_case "every point lands" `Quick
            test_every_point_lands;
          Alcotest.test_case "engine saboteur drill" `Quick
            test_engine_saboteur_drill;
          QCheck_alcotest.to_alcotest prop_safe;
          Alcotest.test_case "campaign exercises every point" `Quick
            test_campaign_coverage ] ) ]
