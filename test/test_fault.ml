(* Deterministic fault-injection harness (the robustness tentpole).

   Random injection plans are thrown at the fail-safe pipeline; the
   properties are the contract of [Modes.transform_safe]:
   - it never raises, whatever fails inside the pipeline;
   - the kernel it returns is runnable once the plan is cleared;
   - the Jacobi result computed with that kernel is bit-identical to
     the natively compiled kernel's result.

   The suite is seed-deterministic: run with QCHECK_SEED=N for a
   reproducible sequence (the CI smoke job pins the seed). *)

open Obrew_core
open Obrew_fault

let sz = 9
let iters = 2

(* one shared workload: building an env compiles the whole benchmark
   program, far too slow to repeat 500 times *)
let shared = lazy (Modes.build ~sz ())

let kinds = [ Modes.Direct; Modes.Flat; Modes.Sorted ]
let styles = [ Modes.Element; Modes.Line ]

let transforms =
  [ Modes.Native; Modes.Llvm; Modes.LlvmFix; Modes.DBrew; Modes.DBrewLlvm ]

(* native reference result bits per (kind, style), computed without any
   plan installed *)
let native_ref : (Modes.kind * Modes.style, int64 array) Hashtbl.t =
  Hashtbl.create 8

let reference kind style =
  match Hashtbl.find_opt native_ref (kind, style) with
  | Some r -> r
  | None ->
    let env = Lazy.force shared in
    let kernel = Modes.native_addr env kind style in
    ignore (Modes.run env kind style ~kernel ~iters);
    let r =
      Array.map Int64.bits_of_float (Modes.result_matrix env ~iters)
    in
    Hashtbl.replace native_ref (kind, style) r;
    r

(* ------------------------------------------------------------------ *)
(* Plan primitives                                                     *)
(* ------------------------------------------------------------------ *)

let test_parse () =
  (match Fault.parse "opt.gvn:1:2,decode.truncated" with
   | Ok [ a; b ] ->
     Alcotest.(check string) "point 1" "opt.gvn" a.Fault.a_point;
     Alcotest.(check int) "skip 1" 1 a.Fault.a_skip;
     Alcotest.(check int) "fires 1" 2 a.Fault.a_fires;
     Alcotest.(check string) "point 2" "decode.truncated" b.Fault.a_point;
     Alcotest.(check int) "skip 2" 0 b.Fault.a_skip
   | Ok _ -> Alcotest.fail "expected two arms"
   | Error m -> Alcotest.failf "parse failed: %s" m);
  (match Fault.parse "no.such.point" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unknown point accepted");
  match Fault.parse "opt.gvn:x" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed skip accepted"

let test_arm_semantics () =
  (* skip 1, fire once: 2nd hit raises, 1st and 3rd pass through *)
  Fault.install [ Fault.arm ~skip:1 ~fires:1 "opt.gvn" ];
  Fault.point "opt.gvn";
  (match Fault.point "opt.gvn" with
   | () -> Alcotest.fail "second hit should raise"
   | exception Err.Error e ->
     Alcotest.(check bool) "tagged as injected" true (Err.injected e);
     Alcotest.(check string) "stage" "opt" (Err.stage_name e.Err.stage));
  Fault.point "opt.gvn";
  Alcotest.(check int) "fired once" 1 (Fault.fired ());
  Fault.clear ();
  Fault.point "opt.gvn";
  Alcotest.(check int) "inert after clear" 0 (Fault.fired ())

let test_stage_mapping () =
  List.iter
    (fun (p, st) ->
      Alcotest.(check string)
        (Printf.sprintf "stage of %s" p)
        (Err.stage_name st)
        (Err.stage_name (Fault.stage_of_point p)))
    Fault.known_points

(* ------------------------------------------------------------------ *)
(* The property: transform_safe is total and correct under injection   *)
(* ------------------------------------------------------------------ *)

let gen_case =
  QCheck2.Gen.(
    let gen_arm =
      let* p = oneofl (List.map fst Fault.known_points) in
      let* skip = int_bound 2 in
      let* fires = oneofl [ -1; 1; 2 ] in
      return (p, skip, fires)
    in
    quad
      (list_size (int_bound 3) gen_arm)
      (oneofl kinds) (oneofl styles) (oneofl transforms))

let prop_safe =
  QCheck2.Test.make ~name:"transform_safe total under injection"
    ~count:500 gen_case (fun (arms, kind, style, tr) ->
      let env = Lazy.force shared in
      let want = reference kind style in
      Fault.install
        (List.map (fun (p, skip, fires) -> Fault.arm ~skip ~fires p) arms);
      let r =
        match Modes.transform_safe env kind style tr with
        | r -> Ok r
        | exception exn -> Error exn
      in
      Fault.clear ();
      match r with
      | Error exn ->
        QCheck2.Test.fail_reportf "transform_safe raised %s"
          (Printexc.to_string exn)
      | Ok r ->
        (match
           Modes.run ~max_insns:50_000_000 env kind style
             ~kernel:r.Modes.kernel ~iters
         with
         | _ -> ()
         | exception exn ->
           QCheck2.Test.fail_reportf "kernel from %s not runnable: %s"
             (Modes.transform_name r.Modes.used) (Printexc.to_string exn));
        let got = Modes.result_matrix env ~iters in
        Array.iteri
          (fun i b ->
            if Int64.bits_of_float got.(i) <> b then
              QCheck2.Test.fail_reportf
                "%s %s via %s: cell %d differs from native (%h vs %h)"
                (Modes.kind_name kind) (Modes.style_name style)
                (Modes.transform_name r.Modes.used) i got.(i)
                (Int64.float_of_bits b))
          want;
        true)

(* every single point, injected forever, must still degrade cleanly *)
let test_every_point_lands () =
  let env = Lazy.force shared in
  List.iter
    (fun (p, _) ->
      Fault.install [ Fault.arm p ];
      let r =
        try Modes.transform_safe env Modes.Flat Modes.Element Modes.DBrewLlvm
        with exn ->
          Fault.clear ();
          Alcotest.failf "point %s: raised %s" p (Printexc.to_string exn)
      in
      Fault.clear ();
      ignore
        (Modes.run ~max_insns:50_000_000 env Modes.Flat Modes.Element
           ~kernel:r.Modes.kernel ~iters);
      let got = Modes.result_matrix env ~iters in
      let want = reference Modes.Flat Modes.Element in
      Array.iteri
        (fun i b ->
          if Int64.bits_of_float got.(i) <> b then
            Alcotest.failf "point %s via %s: cell %d differs" p
              (Modes.transform_name r.Modes.used) i)
        want)
    Fault.known_points

let () =
  Alcotest.run "fault"
    [ ( "plan",
        [ Alcotest.test_case "parse" `Quick test_parse;
          Alcotest.test_case "arm semantics" `Quick test_arm_semantics;
          Alcotest.test_case "stage mapping" `Quick test_stage_mapping ] );
      ( "harness",
        [ Alcotest.test_case "every point lands" `Quick
            test_every_point_lands;
          QCheck_alcotest.to_alcotest prop_safe ] ) ]
