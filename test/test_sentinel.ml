(* The runtime translation sentinel.

   Three layers of coverage:
   - the pure health state machine (QCheck against a reference model:
     transition legality, streak/decay bookkeeping, deterministic
     monotone-bounded backoff);
   - the srepro reproducer format (round-trip);
   - the full detect -> quarantine -> demote -> heal loop, driven by
     saboteur fault injection (corrupted codegen output must be caught
     by shadow validation, never served), plus a clean campaign that
     must produce zero false positives. *)

open Obrew_core
open Obrew_fault
module Sen = Obrew_sentinel.Sentinel
module H = Obrew_sentinel.Health
module Srepro = Obrew_sentinel.Srepro

let sz = 9
let iters = 2
let shared = lazy (Modes.build ~sz ())

(* dense deterministic policy: every serve validates, heal retries are
   nearly immediate, suspect entries decay fast *)
let test_policy =
  { H.first_k = 4; sample_n = 2; suspect_n = 2; decay_streak = 2;
    heal_max = 3; heal_base = 1; heal_cap = 2 }

let fresh_case () =
  Fault.clear ();
  Sen.reset ();
  Quarantine.clear ();
  (* sentinel stats surface Robust's global counters; isolate per test *)
  Robust.reset ()

let native_bits env kind style =
  let kernel = Modes.native_addr env kind style in
  ignore (Modes.run env kind style ~kernel ~iters);
  Array.map Int64.bits_of_float (Modes.result_matrix env ~iters)

let check_matches_native env kind style ~kernel ~ctx =
  let want = native_bits env kind style in
  ignore (Modes.run ~max_insns:50_000_000 env kind style ~kernel ~iters);
  let got = Modes.result_matrix env ~iters in
  Array.iteri
    (fun i b ->
      if Int64.bits_of_float got.(i) <> b then
        Alcotest.failf "%s: cell %d differs from native (%h vs %h)" ctx i
          got.(i) (Int64.float_of_bits b))
    want

(* ------------------------------------------------------------------ *)
(* Health: state machine vs a reference model                          *)
(* ------------------------------------------------------------------ *)

type ev = Ck_clean | Ck_fault | Ck_div

(* the specification, restated independently of the implementation *)
let model_step p (st, streak) = function
  | Ck_clean ->
    let streak = streak + 1 in
    let st =
      if st = H.Suspect && streak >= p.H.decay_streak then H.Healthy else st
    in
    (st, streak)
  | Ck_fault ->
    let st =
      match st with
      | H.Healthy -> H.Suspect
      | H.Suspect -> H.Quarantined
      | H.Quarantined -> H.Quarantined
    in
    (st, 0)
  | Ck_div -> (H.Quarantined, 0)

let apply_ev p e = function
  | Ck_clean -> H.record_clean p e
  | Ck_fault -> H.record_fault e
  | Ck_div -> H.record_divergence e

let gen_policy =
  QCheck2.Gen.(
    let* first_k = int_bound 5 in
    let* sample_n = int_bound 8 in
    let* suspect_n = int_bound 4 in
    let* decay_streak = int_range 1 5 in
    let* heal_max = int_bound 4 in
    let* heal_base = int_bound 16 in
    let* heal_cap = int_bound 64 in
    return
      { H.first_k; sample_n; suspect_n; decay_streak; heal_max; heal_base;
        heal_cap })

let gen_events =
  QCheck2.Gen.(
    list_size (int_bound 40)
      (frequency
         [ (6, return Ck_clean); (2, return Ck_fault); (1, return Ck_div) ]))

let prop_health_model =
  QCheck2.Test.make ~name:"health entry follows the reference model"
    ~count:500
    QCheck2.Gen.(pair gen_policy gen_events)
    (fun (p, evs) ->
      let e = H.entry ~digest:"d" ~mode:"DBrew" in
      let model = ref (H.Healthy, 0) in
      List.iteri
        (fun i ev ->
          apply_ev p e ev;
          model := model_step p !model ev;
          let mst, mstreak = !model in
          if e.H.e_state <> mst then
            QCheck2.Test.fail_reportf "step %d: state %s, model %s" i
              (H.state_name e.H.e_state) (H.state_name mst);
          if e.H.e_streak <> mstreak then
            QCheck2.Test.fail_reportf "step %d: streak %d, model %d" i
              e.H.e_streak mstreak;
          (* Quarantined is absorbing and never due for sampling *)
          if mst = H.Quarantined then begin
            H.record_invocation e;
            if H.due p e then
              QCheck2.Test.fail_reportf "step %d: quarantined entry due" i
          end)
        evs;
      (* check counters add up *)
      let cleans =
        List.length (List.filter (fun v -> v = Ck_clean) evs)
      in
      e.H.e_checks = List.length evs
      && e.H.e_divergences + e.H.e_faults = List.length evs - cleans)

let prop_due_first_k =
  QCheck2.Test.make ~name:"first K invocations always validate" ~count:200
    gen_policy (fun p ->
      let e = H.entry ~digest:"d" ~mode:"LLVM" in
      let ok = ref true in
      for _ = 1 to p.H.first_k do
        H.record_invocation e;
        if not (H.due p e) then ok := false
      done;
      !ok)

let prop_backoff =
  QCheck2.Test.make ~name:"backoff monotone, capped, deterministic"
    ~count:500
    QCheck2.Gen.(pair gen_policy (pair (int_bound 12) string))
    (fun (p, (attempt, digest)) ->
      let base = max 1 p.H.heal_base in
      let cap = max base p.H.heal_cap in
      let d0 = H.backoff_base_delay p ~attempt in
      let d1 = H.backoff_base_delay p ~attempt:(attempt + 1) in
      let j = H.jitter p ~digest ~attempt in
      let full = H.backoff_delay p ~digest ~attempt in
      d0 <= d1 (* monotone *)
      && d0 >= base && d0 <= cap (* bounded *)
      && j >= 0 && j < max 1 base (* jitter bounded *)
      && full = d0 + j
      && full = H.backoff_delay p ~digest ~attempt (* deterministic *))

(* ------------------------------------------------------------------ *)
(* Srepro round-trip                                                   *)
(* ------------------------------------------------------------------ *)

let gen_srepro =
  QCheck2.Gen.(
    let atom =
      let* n = int_range 1 12 in
      string_size ~gen:(char_range 'a' 'z') (return n)
    in
    let* name = atom in
    let* mode = oneofl [ "Native"; "LLVM"; "LLVM-fix"; "DBrew"; "DBrew+LLVM" ] in
    let* kind = oneofl [ "direct"; "flat"; "sorted" ] in
    let* style = oneofl [ "element"; "line" ] in
    let* sz = int_range 2 64 in
    let* seed = string in
    let* code = string_size ~gen:char (int_range 1 64) in
    let* note = string_size ~gen:printable (int_bound 40) in
    return
      { Srepro.s_name = name; s_mode = mode; s_kind = kind; s_style = style;
        s_sz = sz; s_digest = Digest.string seed; s_code = code;
        s_note = note })

let prop_srepro_roundtrip =
  QCheck2.Test.make ~name:"srepro round-trips" ~count:300 gen_srepro
    (fun r ->
      let r' = Srepro.of_string (Srepro.to_string r) in
      r' = r)

let test_srepro_sniff () =
  Alcotest.(check bool) "srepro" true
    (Srepro.looks_like_srepro "  \n(srepro (name x))");
  Alcotest.(check bool) "repro" false
    (Srepro.looks_like_srepro "(repro (name x))");
  Alcotest.(check bool) "empty" false (Srepro.looks_like_srepro "")

(* ------------------------------------------------------------------ *)
(* Quarantine registry                                                 *)
(* ------------------------------------------------------------------ *)

let test_quarantine_registry () =
  Quarantine.clear ();
  let d1 = Digest.string "one" and d2 = Digest.string "two" in
  Quarantine.add ~digest:d1 ~mode:"DBrew" ~detail:"first" ~tick:3;
  Quarantine.add ~digest:d1 ~mode:"LLVM" ~detail:"dup ignored" ~tick:9;
  Quarantine.add ~digest:d2 ~mode:"DBrew+LLVM" ~detail:"second" ~tick:1;
  Alcotest.(check int) "count" 2 (Quarantine.count ());
  Alcotest.(check bool) "mem" true (Quarantine.mem d1);
  (match Quarantine.find d1 with
   | Some e ->
     Alcotest.(check string) "first entry wins" "first" e.Quarantine.q_detail
   | None -> Alcotest.fail "d1 not found");
  (match Quarantine.entries () with
   | [ a; b ] ->
     Alcotest.(check int) "sorted by tick" 1 a.Quarantine.q_tick;
     Alcotest.(check int) "then later" 3 b.Quarantine.q_tick
   | l -> Alcotest.failf "expected 2 entries, got %d" (List.length l));
  Quarantine.clear ();
  Alcotest.(check int) "cleared" 0 (Quarantine.count ())

(* ------------------------------------------------------------------ *)
(* Saboteur end-to-end: detect -> quarantine -> demote -> heal         *)
(* ------------------------------------------------------------------ *)

let test_saboteur_end_to_end () =
  let env = Lazy.force shared in
  fresh_case ();
  let out_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "obrew-sentinel-%d" (Unix.getpid ()))
  in
  Fault.install
    [ Fault.arm ~fires:1 "sabotage.rewrite.item";
      Fault.arm ~fires:1 "sabotage.isel.item" ];
  let last = ref None in
  for _ = 1 to 24 do
    last :=
      Some
        (Sen.serve ~policy:test_policy ~out_dir env Modes.Flat Modes.Element
           Modes.DBrewLlvm)
  done;
  (* capture before [clear]: installing a plan resets the counters *)
  let landed = Fault.sabotage_landed () in
  Fault.clear ();
  Alcotest.(check bool) "sabotage landed" true (landed >= 1);
  let s = Sen.stats () in
  Alcotest.(check bool) "divergence caught" true (s.Sen.st_divergences >= 1);
  Alcotest.(check bool) "quarantined" true (s.Sen.st_quarantined >= 1);
  Alcotest.(check bool) "demoted" true (s.Sen.st_demotions >= 1);
  Alcotest.(check bool) "healed" true (s.Sen.st_healed >= 1);
  let sv = Option.get !last in
  Alcotest.(check string) "back at requested tier" "DBrew+LLVM"
    (Modes.transform_name sv.Sen.sv_mode);
  Alcotest.(check bool) "not demoted at end" false sv.Sen.sv_demoted;
  check_matches_native env Modes.Flat Modes.Element ~kernel:sv.Sen.sv_kernel
    ~ctx:"healed kernel";
  (* the quarantine capture must exist and still reproduce on replay *)
  let repros = Sys.readdir out_dir in
  Alcotest.(check bool) "reproducer saved" true (Array.length repros >= 1);
  Array.iter
    (fun f ->
      match Sen.replay ~env (Filename.concat out_dir f) with
      | Error e -> Alcotest.failf "replay %s: %s" f (Err.to_string e)
      | Ok r ->
        Alcotest.(check bool)
          (Printf.sprintf "%s still reproduces" f)
          true r.Sen.rr_diverged)
    repros;
  Array.iter (fun f -> Sys.remove (Filename.concat out_dir f)) repros;
  Unix.rmdir out_dir

(* a quarantined digest blocks deterministic recompilation of the same
   bytes through install_code's content check *)
let test_quarantine_blocks_reinstall () =
  let env = Lazy.force shared in
  fresh_case ();
  Fault.install [ Fault.arm ~fires:1 "sabotage.install.bytes" ];
  ignore
    (Sen.serve ~policy:test_policy env Modes.Flat Modes.Element Modes.DBrew);
  Fault.clear ();
  let s = Sen.stats () in
  Alcotest.(check bool) "quarantined" true (s.Sen.st_quarantined >= 1)

(* clean serves across every kind/style/transform: no false positives *)
let test_clean_campaign () =
  let env = Lazy.force shared in
  fresh_case ();
  List.iter
    (fun kind ->
      List.iter
        (fun style ->
          List.iter
            (fun tr ->
              let last = ref None in
              for _ = 1 to 8 do
                last := Some (Sen.serve ~policy:test_policy env kind style tr)
              done;
              let sv = Option.get !last in
              Alcotest.(check string)
                (Printf.sprintf "%s/%s %s served at tier"
                   (Modes.kind_name kind) (Modes.style_name style)
                   (Modes.transform_name tr))
                (Modes.transform_name tr)
                (Modes.transform_name sv.Sen.sv_mode))
            [ Modes.Llvm; Modes.LlvmFix; Modes.DBrew; Modes.DBrewLlvm ])
        [ Modes.Element; Modes.Line ])
    [ Modes.Direct; Modes.Flat; Modes.Sorted ];
  let s = Sen.stats () in
  Alcotest.(check bool) "many checks ran" true (s.Sen.st_checks >= 24);
  Alcotest.(check int) "zero false positives" 0 s.Sen.st_divergences;
  Alcotest.(check int) "nothing quarantined" 0 s.Sen.st_quarantined

let () =
  Alcotest.run "sentinel"
    [ ( "health",
        [ QCheck_alcotest.to_alcotest prop_health_model;
          QCheck_alcotest.to_alcotest prop_due_first_k;
          QCheck_alcotest.to_alcotest prop_backoff ] );
      ( "srepro",
        [ QCheck_alcotest.to_alcotest prop_srepro_roundtrip;
          Alcotest.test_case "format sniff" `Quick test_srepro_sniff ] );
      ( "quarantine",
        [ Alcotest.test_case "registry" `Quick test_quarantine_registry;
          Alcotest.test_case "blocks reinstall" `Quick
            test_quarantine_blocks_reinstall ] );
      ( "e2e",
        [ Alcotest.test_case "saboteur detect/quarantine/demote/heal" `Quick
            test_saboteur_end_to_end;
          Alcotest.test_case "clean campaign: no false positives" `Quick
            test_clean_campaign ] ) ]
