(* Differential translation-validation oracle: corpus replay,
   deterministic shift-semantics regressions, typed-error skip
   behaviour, shrinker, repro round-trip and a bounded fuzz smoke. *)

open Obrew_x86
open Insn
module O = Obrew_oracle.Oracle
module Gen = Obrew_oracle.Gen
module Shrink = Obrew_oracle.Shrink
module Repro = Obrew_oracle.Repro
module Driver = Obrew_oracle.Driver

let check = Alcotest.check

(* a case with a fixed body and all-zero initial state *)
let mk_case ?(args = (0L, 0L)) body =
  { O.body; args; fargs = (0.0, 0.0); mem = String.make O.data_size '\000' }

let assert_agree ?tiers name c =
  match (O.run ?tiers c).O.v_div with
  | None -> ()
  | Some d ->
    Alcotest.failf "%s: unexpected divergence\n%s\nbody:\n%s" name
      (O.divergence_to_string d) (O.body_listing c)

(* little-endian u64 at [off] in a tier's observation bytes *)
let u64_at (bytes : string) (off : int) : int64 =
  let v = ref 0L in
  for k = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8)
           (Int64.of_int (Char.code bytes.[off + k]))
  done;
  !v

let cpu_gpr (c : O.case) (r : Reg.gpr) : int64 =
  let cc = O.compile c in
  let o = O.run_tier O.CpuStep cc in
  let idx =
    match Array.find_index (Reg.equal r) O.gpr_pool with
    | Some i -> i
    | None -> Alcotest.failf "%s is not an observed register" (Reg.name64 r)
  in
  u64_at o.O.o_bytes (O.gpr_off + (8 * idx))

(* ---------- corpus replay ---------- *)

(* every committed reproducer once exposed a real divergence; with the
   fixes in place all tiers must now agree on the recorded bytes *)
let test_corpus_replay () =
  (* runtest executes next to the copied corpus/; dune exec does not *)
  let dir =
    if Sys.file_exists "corpus" then "corpus"
    else Filename.concat (Filename.dirname Sys.executable_name) "corpus"
  in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".repro")
    |> List.sort compare
  in
  check Alcotest.bool "corpus is non-empty" true (files <> []);
  List.iter
    (fun f ->
      let r = Repro.load (Filename.concat dir f) in
      match (Repro.replay r).O.v_div with
      | None -> ()
      | Some d ->
        Alcotest.failf "%s: still diverges\n%s" f (O.divergence_to_string d))
    files

(* ---------- shift-count masking (the lifter bug) ---------- *)

(* the hardware mask is 63/31, not [bits - 1]: [shl al, 12] really
   shifts by 12 and leaves al = 0 *)
let test_shl_al_12 () =
  let c =
    mk_case
      [ I (Movabs (Reg.RAX, 0xDEADBEEF12345633L));
        I (Shift (Shl, W8, OReg Reg.RAX, ShImm 12)) ]
  in
  check Alcotest.int64 "al zeroed, rest of rax preserved"
    0xDEADBEEF12345600L (cpu_gpr c Reg.RAX);
  assert_agree "shl al, 12" c

(* w32 shift with masked count 0 still writes its destination, which
   zeroes bits 63:32 (the emulator used to skip the write entirely) *)
let test_shr32_count0_writes () =
  let c =
    mk_case
      [ I (Movabs (Reg.R11, 0x40690BC5571CDA00L));
        I (Shift (Shr, W32, OReg Reg.R11, ShImm 0)) ]
  in
  check Alcotest.int64 "upper 32 bits zeroed" 0x571CDA00L (cpu_gpr c Reg.R11);
  assert_agree "shr r11d, 0" c

(* ---------- shift flag semantics, table-driven ---------- *)

(* narrow shifts with counts beyond the operand width exercise the
   cf/of wrap-around formulas; the single-step emulator is ground
   truth and every other tier must match it bit for bit *)
let test_shift_flags_table () =
  let ops = [ Shl; Shr; Sar ] in
  let widths = [ W8; W16 ] in
  let counts = [ 0; 1; 4; 7; 8; 9; 15; 16; 17; 31 ] in
  let values = [ 0x81L; 0x7FL; 0x8001L; 0xFF80L; 0xDEAD5A5AL ] in
  List.iter
    (fun op ->
      List.iter
        (fun w ->
          List.iter
            (fun n ->
              List.iter
                (fun v ->
                  let c =
                    mk_case
                      [ I (Movabs (Reg.RAX, v));
                        I (Shift (op, w, OReg Reg.RAX, ShImm n)) ]
                  in
                  assert_agree
                    (Printf.sprintf "%s w%d count %d val 0x%Lx"
                       (shift_name op) (width_bits w) n v)
                    c)
                values)
            counts)
        widths)
    ops

(* cl-count shifts: the zero-count flag preservation needs a runtime
   select in the lifter; cl = 32 masks to 0 for 8/16-bit operands *)
let test_shift_flags_cl () =
  let ops = [ Shl; Shr; Sar ] in
  let widths = [ W8; W16 ] in
  let cls = [ 0; 1; 7; 8; 16; 31; 32; 64; 255 ] in
  List.iter
    (fun op ->
      List.iter
        (fun w ->
          List.iter
            (fun cl ->
              let c =
                mk_case
                  [ I (Movabs (Reg.RCX, Int64.of_int cl));
                    I (Movabs (Reg.RAX, 0x8001L));
                    I (Shift (op, w, OReg Reg.RAX, ShCl)) ]
              in
              assert_agree
                (Printf.sprintf "%s w%d cl=%d" (shift_name op)
                   (width_bits w) cl)
                c)
            cls)
        widths)
    ops

(* ---------- narrow-constant normalization (the isel bug) ---------- *)

let test_i8_not_normalized () =
  let c =
    mk_case
      [ I (Movabs (Reg.RDX, 0x11L)); I (Unop (Not, W8, OReg Reg.RDX)) ]
  in
  check Alcotest.int64 "only the low byte flips" 0xEEL (cpu_gpr c Reg.RDX);
  assert_agree "not dl" c

let test_high_byte_xor () =
  let c =
    mk_case
      [ I (Movabs (Reg.RAX, 0x1234L));
        I (Alu (Xor, W8, OReg8H Reg.RAX, OImm 0xFDL)) ]
  in
  check Alcotest.int64 "xor ah only touches bits 15:8" 0xEF34L
    (cpu_gpr c Reg.RAX);
  assert_agree "xor ah, 0xfd" c

(* ---------- typed errors are skips, never divergences ---------- *)

let test_ud2_skips () =
  let v = O.run (mk_case [ I Ud2 ]) in
  check Alcotest.bool "no divergence" true (v.O.v_div = None);
  check Alcotest.bool "at least one tier skipped" true (v.O.v_skips <> [])

(* ---------- shrinker ---------- *)

let has_shift (c : O.case) =
  List.exists
    (function I (Shift _) -> true | _ -> false)
    c.O.body

let fat_case () =
  mk_case ~args:(0x1234L, 0x99L)
    [ I (Movabs (Reg.R8, 0x1111L));
      I (Mov (W64, OReg Reg.R9, OReg Reg.RSI));
      I (Alu (Add, W64, OReg Reg.R8, OImm 7L));
      I (Movabs (Reg.RAX, 0x8001L));
      I (Shift (Shl, W16, OReg Reg.RAX, ShImm 9));
      I (Lea (Reg.R10, mem_base ~disp:4 Reg.R8));
      I (Alu (Xor, W64, OReg Reg.R9, OReg Reg.R10));
      I (Test (W64, OReg Reg.R9, OReg Reg.R9)) ]

let test_shrinker_minimizes () =
  let c0 = fat_case () in
  let c, _checks = Shrink.minimize ~check:has_shift c0 in
  check Alcotest.bool "still satisfies the predicate" true (has_shift c);
  check Alcotest.bool
    (Printf.sprintf "shrunk to <= 2 insns (got %d)" (List.length c.O.body))
    true
    (List.length c.O.body <= 2)

let test_shrinker_deterministic () =
  let m1, k1 = Shrink.minimize ~check:has_shift (fat_case ()) in
  let m2, k2 = Shrink.minimize ~check:has_shift (fat_case ()) in
  check Alcotest.bool "same minimized body" true (m1.O.body = m2.O.body);
  check Alcotest.int "same number of checks" k1 k2

(* ---------- generator determinism ---------- *)

let test_gen_deterministic () =
  let a = Gen.case_of_seed ~seed:7 ~max_len:16 3 in
  let b = Gen.case_of_seed ~seed:7 ~max_len:16 3 in
  check Alcotest.bool "same body" true (a.O.body = b.O.body);
  check Alcotest.bool "same state" true
    (a.O.args = b.O.args && a.O.mem = b.O.mem);
  let c = Gen.case_of_seed ~seed:8 ~max_len:16 3 in
  check Alcotest.bool "different seed, different case" true
    (a.O.body <> c.O.body || a.O.args <> c.O.args)

(* ---------- repro round-trip ---------- *)

let test_repro_roundtrip () =
  let c = fat_case () in
  let r = Repro.of_case ~name:"round-trip" ~note:"free \"text\"\nlines" c in
  let r' = Repro.of_string (Repro.to_string r) in
  check Alcotest.string "name" r.Repro.r_name r'.Repro.r_name;
  check Alcotest.bool "args" true (r.Repro.r_args = r'.Repro.r_args);
  check Alcotest.bool "fargs bits" true
    (Int64.bits_of_float (fst r.Repro.r_fargs)
       = Int64.bits_of_float (fst r'.Repro.r_fargs)
    && Int64.bits_of_float (snd r.Repro.r_fargs)
         = Int64.bits_of_float (snd r'.Repro.r_fargs));
  check Alcotest.string "mem" r.Repro.r_mem r'.Repro.r_mem;
  check Alcotest.string "code" r.Repro.r_code r'.Repro.r_code

(* ---------- bounded fuzz smoke ---------- *)

let test_fuzz_smoke () =
  let cfg = { Driver.default_config with seeds = 40; seed = 1 } in
  let s = Driver.run_campaign cfg in
  check Alcotest.int "all cases accounted for" 40 s.Driver.s_total;
  (match s.Driver.s_failures with
   | [] -> ()
   | f :: _ ->
     Alcotest.failf "fuzz smoke found a divergence\n%s\nbody:\n%s"
       (O.divergence_to_string f.Driver.f_div)
       (O.body_listing f.Driver.f_case));
  check Alcotest.bool "most cases ran" true
    (s.Driver.s_agreed > s.Driver.s_total / 2)

(* same smoke, but weighted toward fusible adjacent pairs and tight
   backedge loops, restricted to the two emulator tiers: the loops
   cross the trace-promotion threshold, so this exercises mega-op
   fusion, unrolled traces with side exits and lazy-flag deferral
   against the single-step ground truth *)
let test_fuzz_smoke_fusion () =
  let cfg =
    { Driver.default_config with
      seeds = 60; seed = 2; profile = Gen.Fusion;
      tiers = [ O.CpuStep; O.CpuSB ] }
  in
  let s = Driver.run_campaign cfg in
  check Alcotest.int "all cases accounted for" 60 s.Driver.s_total;
  (match s.Driver.s_failures with
   | [] -> ()
   | f :: _ ->
     Alcotest.failf "fusion fuzz smoke found a divergence\n%s\nbody:\n%s"
       (O.divergence_to_string f.Driver.f_div)
       (O.body_listing f.Driver.f_case));
  check Alcotest.int "every case ran on both tiers" 60 s.Driver.s_agreed

(* indirect-weighted smoke across all five tiers: jump tables, computed
   gotos and in-region call/ret chains must agree everywhere — the
   lifter enumerates bounded target sets and guards each one, so no
   tier is allowed to diverge (a form a tier cannot express skips with
   a typed error and does not count as agreement) *)
let test_fuzz_smoke_indirect () =
  let cfg =
    { Driver.default_config with
      seeds = 60; seed = 3; profile = Gen.Indirect }
  in
  let s = Driver.run_campaign cfg in
  check Alcotest.int "all cases accounted for" 60 s.Driver.s_total;
  (match s.Driver.s_failures with
   | [] -> ()
   | f :: _ ->
     Alcotest.failf "indirect fuzz smoke found a divergence\n%s\nbody:\n%s"
       (O.divergence_to_string f.Driver.f_div)
       (O.body_listing f.Driver.f_case));
  check Alcotest.bool "most cases ran on all tiers" true
    (s.Driver.s_agreed > s.Driver.s_total / 2)

let () =
  Alcotest.run "oracle"
    [ ("corpus", [ Alcotest.test_case "replay" `Quick test_corpus_replay ]);
      ( "shift-semantics",
        [ Alcotest.test_case "shl al, 12 masks by 31" `Quick test_shl_al_12;
          Alcotest.test_case "shr r32, 0 still writes" `Quick
            test_shr32_count0_writes;
          Alcotest.test_case "flag table, immediate counts" `Slow
            test_shift_flags_table;
          Alcotest.test_case "flag table, cl counts" `Slow
            test_shift_flags_cl ] );
      ( "narrow-constants",
        [ Alcotest.test_case "not dl" `Quick test_i8_not_normalized;
          Alcotest.test_case "xor ah, imm" `Quick test_high_byte_xor ] );
      ( "skips",
        [ Alcotest.test_case "ud2 skips, no divergence" `Quick
            test_ud2_skips ] );
      ( "shrinker",
        [ Alcotest.test_case "minimizes" `Quick test_shrinker_minimizes;
          Alcotest.test_case "deterministic" `Quick
            test_shrinker_deterministic ] );
      ( "generator",
        [ Alcotest.test_case "deterministic" `Quick test_gen_deterministic ]
      );
      ( "repro",
        [ Alcotest.test_case "round-trip" `Quick test_repro_roundtrip ] );
      ( "fuzz",
        [ Alcotest.test_case "smoke" `Slow test_fuzz_smoke;
          Alcotest.test_case "fusion-weighted smoke" `Slow
            test_fuzz_smoke_fusion;
          Alcotest.test_case "indirect-weighted smoke" `Slow
            test_fuzz_smoke_indirect ] ) ]
