(* Telemetry layer: sink behaviour, the enabled gate, counters,
   histograms and the two exporters. *)

module Tel = Obrew_telemetry.Telemetry

let check = Alcotest.check
let cint = Alcotest.int

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* each test starts from a clean, enabled sink *)
let with_tel ?capacity f =
  Tel.reset ();
  Tel.enable ?capacity ();
  Fun.protect ~finally:Tel.disable f

let test_disabled_records_nothing () =
  Tel.reset ();
  Tel.disable ();
  Tel.span "s" (fun () -> ()) |> ignore;
  Tel.instant "i";
  check cint "no events" 0 (Tel.events_recorded ())

let test_span_records () =
  with_tel (fun () ->
      let r = Tel.span "work" ~args:"x" (fun () -> 41 + 1) in
      check cint "return value" 42 r;
      check cint "one event" 1 (Tel.events_recorded ()))

let test_span_reraises () =
  with_tel (fun () ->
      (match Tel.span "boom" (fun () -> failwith "no") with
       | exception Failure _ -> ()
       | _ -> Alcotest.fail "expected the exception to propagate");
      check cint "event still recorded" 1 (Tel.events_recorded ()))

let test_ring_wraps () =
  with_tel ~capacity:8 (fun () ->
      for _ = 1 to 20 do Tel.instant "tick" done;
      check cint "recorded" 20 (Tel.events_recorded ());
      check cint "dropped" 12 (Tel.dropped ());
      (* oldest-first iteration sees only the retained tail *)
      let n = ref 0 in
      Tel.iter_events (fun ~name:_ ~kind:_ ~ts:_ ~dur:_ ~args:_ -> incr n);
      check cint "retained" 8 !n)

let test_counters () =
  with_tel (fun () ->
      let c = Tel.counter "test.c" in
      Tel.incr_c c;
      Tel.add_c c 4;
      (* registration is find-or-create: same name, same cell *)
      let c' = Tel.counter "test.c" in
      Tel.incr_c c';
      Alcotest.(check bool) "same cell" true (c == c');
      check cint "count" 6 c.Tel.n)

let test_histogram_buckets () =
  with_tel (fun () ->
      let h = Tel.histogram "test.h" in
      List.iter (Tel.observe h) [ 0; 1; 2; 3; 4; 1000 ];
      check cint "count" 6 h.Tel.hcount;
      check cint "sum" 1010 h.Tel.hsum)

let test_exports_parse () =
  with_tel (fun () ->
      ignore (Tel.span "a" ~args:"with \"quotes\" and \\slash" (fun () -> ()));
      Tel.instant "b";
      Tel.incr_c (Tel.counter "c");
      Tel.observe (Tel.histogram "h") 7;
      (* both exporters must emit well-formed output even with args
         that need escaping *)
      let trace = Tel.export_chrome_trace () in
      let metrics = Tel.export_metrics () in
      Alcotest.(check bool) "trace mentions span" true
        (contains trace "\"ph\":\"X\"");
      Alcotest.(check bool) "trace escapes args" true
        (contains trace "\\\"quotes\\\"");
      Alcotest.(check bool) "metrics schema" true
        (contains metrics "\"schema_version\"");
      Alcotest.(check bool) "metrics histogram" true
        (contains metrics "\"h\""))

let () =
  Alcotest.run "telemetry"
    [ ("sink",
       [ Alcotest.test_case "disabled is silent" `Quick
           test_disabled_records_nothing;
         Alcotest.test_case "span records" `Quick test_span_records;
         Alcotest.test_case "span re-raises" `Quick test_span_reraises;
         Alcotest.test_case "ring wraps" `Quick test_ring_wraps ]);
      ("metrics",
       [ Alcotest.test_case "counters" `Quick test_counters;
         Alcotest.test_case "histograms" `Quick test_histogram_buckets;
         Alcotest.test_case "exports parse" `Quick test_exports_parse ])
    ]
