(* The observability layer.

   Three layers of coverage:
   - the flight recorder's ring (QCheck: any N events pushed through a
     capacity-K ring are readable back as exactly the last min(N,K)
     events, in order, with exact logical timestamps);
   - black-box crash forensics, golden-tested under a deterministic
     saboteur fault plan: the report must be produced, carry the
     schema, and its event tail must contain the causal chain
     inject -> divergence -> quarantine -> demote in order;
   - the HDR histogram's exact-rank percentiles (QCheck against a
     naive sorted reference: estimate within the documented +6.25%
     band, exact below 16). *)

open Obrew_core
open Obrew_fault
module Tel = Obrew_telemetry.Telemetry
module Flight = Obrew_observe.Flight
module Blackbox = Obrew_observe.Blackbox
module Sen = Obrew_sentinel.Sentinel
module H = Obrew_sentinel.Health

let check = Alcotest.check
let cint = Alcotest.int

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Flight recorder: ring exactness                                     *)
(* ------------------------------------------------------------------ *)

(* a small rotation of kinds so wraparound is visible in more than the
   subject payload *)
let kind_of_i i =
  match i mod 4 with
  | 0 -> Flight.Tier_up
  | 1 -> Flight.Sentinel_probe
  | 2 -> Flight.Cache_flush
  | _ -> Flight.Dbrew_rewrite

let test_ring_wraparound_qcheck =
  QCheck.Test.make ~count:200 ~name:"ring keeps the last K in order"
    QCheck.(pair (int_range 1 64) (int_range 0 300))
    (fun (cap, n) ->
      Flight.resize cap;
      Flight.enabled := true;
      for i = 0 to n - 1 do
        Flight.emit ~a:i ~b:(i * 2) ~subject:(string_of_int i) (kind_of_i i)
      done;
      let want = min n cap in
      let got = Flight.last max_int in
      let ok_meta =
        Flight.recorded () = n
        && Flight.dropped () = max 0 (n - cap)
        && Flight.retained () = want
        && List.length got = want
      in
      let ok_events =
        List.for_all2
          (fun e i ->
            e.Flight.seq = i && e.Flight.a = i && e.Flight.b = i * 2
            && e.Flight.subject = string_of_int i
            && e.Flight.ekind = kind_of_i i)
          got
          (List.init want (fun k -> n - want + k))
      in
      Flight.resize Flight.default_capacity;
      ok_meta && ok_events)

let test_ring_disabled () =
  Flight.clear ();
  Flight.enabled := false;
  Fun.protect ~finally:(fun () -> Flight.enabled := true) (fun () ->
      Flight.emit ~subject:"x" Flight.Tier_up;
      check cint "nothing recorded" 0 (Flight.recorded ()))

let test_ring_json_escapes () =
  Flight.clear ();
  Flight.emit ~subject:"with \"quotes\"" ~detail:"and \\slash"
    Flight.Error;
  let j = Flight.to_json () in
  Alcotest.(check bool) "escaped quote" true (contains j "\\\"quotes\\\"");
  Alcotest.(check bool) "escaped slash" true (contains j "\\\\slash")

(* ------------------------------------------------------------------ *)
(* Black box: golden report under a deterministic saboteur             *)
(* ------------------------------------------------------------------ *)

let sz = 9
let shared = lazy (Modes.build ~sz ())

let test_policy =
  { H.first_k = 4; sample_n = 2; suspect_n = 2; decay_streak = 2;
    heal_max = 3; heal_base = 1; heal_cap = 2 }

let fresh_case () =
  Fault.clear ();
  Sen.reset ();
  Quarantine.clear ();
  Robust.reset ();
  Flight.clear ()

(* the ordered-subsequence check CI's validator applies to the tail *)
let chain_holds chain kinds =
  let rec sub need have =
    match (need, have) with
    | [], _ -> true
    | _, [] -> false
    | n :: ns, h :: hs -> if n = h then sub ns hs else sub need hs
  in
  sub chain kinds

let test_blackbox_causal_chain () =
  fresh_case ();
  let env = Lazy.force shared in
  Fault.install [ Fault.arm ~fires:1 "sabotage.rewrite.item" ];
  (* first serve is sabotaged and must be caught; the retry after
     quarantine lands on the demoted tier *)
  for _ = 1 to 3 do
    ignore (Sen.serve ~policy:test_policy env Modes.Flat Modes.Element
              Modes.DBrewLlvm)
  done;
  let kinds = ref [] in
  Flight.iter (fun e -> kinds := Flight.kind_name e.Flight.ekind :: !kinds);
  let kinds = List.rev !kinds in
  Alcotest.(check bool) "causal chain in order" true
    (chain_holds
       [ "fault.sabotaged"; "sentinel.divergence"; "sentinel.quarantine";
         "sentinel.demote" ]
       kinds);
  (* the report renders the same tail plus every registered section *)
  Blackbox.register_section "quarantine" (fun () -> Quarantine.to_json ());
  Blackbox.register_section "health" (fun () -> Sen.health_json ());
  let r =
    Blackbox.report ~reason:Blackbox.Sentinel_divergence
      ~detail:"test divergence" ()
  in
  Blackbox.unregister_section "quarantine";
  Blackbox.unregister_section "health";
  List.iter
    (fun sub ->
      Alcotest.(check bool) (Printf.sprintf "report has %s" sub) true
        (contains r sub))
    [ "\"schema_version\": 1"; "\"reason\": \"sentinel-divergence\"";
      "\"flight\""; "\"sections\""; "fault.sabotaged";
      "sentinel.quarantine"; "\"quarantine\""; "\"health\"" ]

let test_blackbox_section_failure_contained () =
  Flight.clear ();
  Blackbox.register_section "bad" (fun () -> failwith "provider died");
  let r =
    Blackbox.report ~reason:Blackbox.Manual ~detail:"section crash" ()
  in
  Blackbox.unregister_section "bad";
  Alcotest.(check bool) "report still renders" true
    (contains r "\"schema_version\": 1");
  Alcotest.(check bool) "provider error is contained" true
    (contains r "provider died")

let test_blackbox_attribution () =
  Flight.clear ();
  let prev = !Blackbox.attribution in
  Blackbox.attribution :=
    (fun a -> if a = 4096 then Some "{\"guest_addr\": 77}" else None);
  Fun.protect ~finally:(fun () -> Blackbox.attribution := prev) (fun () ->
      let r =
        Blackbox.report ~addr:4096 ~reason:Blackbox.Typed_error
          ~detail:"attributed" ()
      in
      Alcotest.(check bool) "fault_addr present" true
        (contains r "\"fault_addr\": 4096");
      Alcotest.(check bool) "origin attributed" true
        (contains r "\"guest_addr\": 77"))

(* ------------------------------------------------------------------ *)
(* Percentiles: exact-rank vs a naive sorted reference                 *)
(* ------------------------------------------------------------------ *)

let naive_pct sorted p =
  let n = Array.length sorted in
  sorted.(max 0
            (min (n - 1)
               (int_of_float (ceil (p /. 100. *. float_of_int n)) - 1)))

let test_percentile_qcheck =
  QCheck.Test.make ~count:300
    ~name:"histogram percentile within +6.25% of exact rank"
    QCheck.(list_of_size Gen.(int_range 1 400) (int_range 0 3_000_000))
    (fun vs ->
      Tel.reset ();
      let h = Tel.histogram "q.pct" in
      List.iter (Tel.observe h) vs;
      let sorted = Array.of_list vs in
      Array.sort compare sorted;
      List.for_all
        (fun p ->
          let v = naive_pct sorted p in
          let est = Tel.percentile h p in
          if v < 16 then est = v
          else v <= est && est <= v + (v / 16))
        [ 50.0; 90.0; 99.0; 99.9 ])

let test_bucket_relative_error =
  QCheck.Test.make ~count:500 ~name:"bucket relative error <= 6.25%"
    QCheck.(int_range 0 max_int)
    (fun v ->
      let idx = Tel.bucket_of v in
      let lo = Tel.bucket_low idx and w = Tel.bucket_width idx in
      (* v - lo, not lo + w: for the topmost sub-bucket lo + w is 2^62,
         which overflows the OCaml int *)
      lo <= v && v - lo < w && (v < 16 || w <= v / 16))

let test_histogram_export_v2 () =
  Tel.reset ();
  Tel.enable ();
  Fun.protect ~finally:Tel.disable (fun () ->
      let h = Tel.histogram "h.v2" in
      List.iter (Tel.observe h) [ 5; 100; 1000 ];
      let m = Tel.export_metrics () in
      List.iter
        (fun sub ->
          Alcotest.(check bool) (Printf.sprintf "metrics has %s" sub) true
            (contains m sub))
        [ "\"schema_version\": 2"; "\"p50\""; "\"p99\""; "\"p999\"";
          "\"buckets\"" ])

(* ------------------------------------------------------------------ *)
(* Clock injection                                                     *)
(* ------------------------------------------------------------------ *)

let test_clock_injection () =
  Tel.Clock.with_fixed ~step:0.5 100.0 (fun () ->
      let a = Tel.Clock.now () and b = Tel.Clock.now () in
      Alcotest.(check (float 1e-9)) "first tick" 100.0 a;
      Alcotest.(check (float 1e-9)) "stepped tick" 100.5 b);
  (* restored: consecutive wall readings are monotone non-decreasing *)
  let a = Tel.Clock.now () in
  let b = Tel.Clock.now () in
  Alcotest.(check bool) "wall clock restored" true (b >= a && a > 1e9)

let () =
  Alcotest.run "observe"
    [ ("flight",
       [ QCheck_alcotest.to_alcotest test_ring_wraparound_qcheck;
         Alcotest.test_case "disabled is silent" `Quick test_ring_disabled;
         Alcotest.test_case "json escapes" `Quick test_ring_json_escapes ]);
      ("blackbox",
       [ Alcotest.test_case "causal chain under saboteur" `Quick
           test_blackbox_causal_chain;
         Alcotest.test_case "section failure contained" `Quick
           test_blackbox_section_failure_contained;
         Alcotest.test_case "fault attribution" `Quick
           test_blackbox_attribution ]);
      ("percentiles",
       [ QCheck_alcotest.to_alcotest test_percentile_qcheck;
         QCheck_alcotest.to_alcotest test_bucket_relative_error;
         Alcotest.test_case "metrics export v2" `Quick
           test_histogram_export_v2 ]);
      ("clock",
       [ Alcotest.test_case "injectable clock" `Quick test_clock_injection ])
    ]
