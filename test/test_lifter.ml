(* Lifter tests: differential execution (x86 emulator vs interpreted
   lifted IR against the same memory image), plus the paper's Fig. 5/6
   shape checks (flag cache, facets). *)

open Obrew_x86
open Obrew_ir
open Obrew_opt
open Obrew_lifter
open Insn

let check = Alcotest.check
let ci64 = Alcotest.int64

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* Install [items] into a fresh image, lift the code, and return
   (image, fn address, lifted func, module). *)
let setup ?config ~sg items =
  let img = Image.create () in
  let fn = Image.install_code img items in
  let read = Mem.read_u8 img.Image.cpu.Cpu.mem in
  let f = Lift.lift ?config ~read ~entry:fn ~name:"lifted" sg in
  Verify.assert_ok ~ctx:"lift" f;
  (img, fn, f, { Ins.funcs = [ f ]; globals = [] })

(* run both sides; integer result *)
let both_i64 (img, fn, _f, m) args =
  let native, _ = Image.call img ~fn ~args in
  let ctx = Interp.create ~mem:img.Image.cpu.Cpu.mem m in
  let lifted =
    match Interp.run ctx "lifted" (List.map (fun v -> Interp.I v) args) with
    | Some (Interp.I v) -> v
    | Some (Interp.P p) -> Int64.of_int p
    | _ -> Alcotest.fail "expected int from lifted code"
  in
  (native, lifted)

let both_f64 (img, fn, _f, m) ~args ~fargs =
  let _, native = Image.call img ~fn ~args ~fargs in
  let ctx = Interp.create ~mem:img.Image.cpu.Cpu.mem m in
  let ir_args =
    List.map (fun v -> Interp.I v) args
    @ List.map (fun v -> Interp.F v) fargs
  in
  let lifted =
    match Interp.run ctx "lifted" ir_args with
    | Some (Interp.F v) -> v
    | _ -> Alcotest.fail "expected float from lifted code"
  in
  (native, lifted)

let i64_sig n = { Ins.args = List.init n (fun _ -> Ins.I64); ret = Some Ins.I64 }

let diff_check name setup_v cases =
  List.iter
    (fun args ->
      let native, lifted = both_i64 setup_v args in
      check ci64
        (Printf.sprintf "%s(%s)" name
           (String.concat "," (List.map Int64.to_string args)))
        native lifted)
    cases

(* ---- Fig. 6: max via cmp + cmov ---- *)

let max_code =
  [ I (Mov (W64, OReg Reg.RAX, OReg Reg.RDI));
    I (Alu (Cmp, W64, OReg Reg.RDI, OReg Reg.RSI));
    I (Cmov (L, W64, Reg.RAX, OReg Reg.RSI));
    I Ret ]

let test_max_differential () =
  let s = setup ~sg:(i64_sig 2) max_code in
  diff_check "max" s
    [ [ 1L; 2L ]; [ 2L; 1L ]; [ -5L; 3L ]; [ 3L; -5L ]; [ 0L; 0L ];
      [ Int64.min_int; Int64.max_int ]; [ Int64.max_int; Int64.min_int ] ]

let test_flag_cache_shape () =
  (* with the flag cache, -O3 output contains a single icmp slt and a
     select (Fig. 6c) *)
  let _, _, f, m = setup ~sg:(i64_sig 2) max_code in
  Pipeline.run m;
  Verify.assert_ok f;
  let printed = Pp_ir.func f in
  check Alcotest.bool "icmp slt present" true (contains printed "icmp slt");
  check Alcotest.bool "select present" true (contains printed "select");
  Alcotest.(check int) "tiny body (Fig. 6c)" 2 (Pp_ir.size f - 1)

let test_no_flag_cache_shape () =
  (* without the flag cache the xor-of-flags pattern survives -O3
     (Fig. 6b): the body is bigger *)
  let cfg = { Lift.default_config with flag_cache = false } in
  let _, _, f, m = setup ~config:cfg ~sg:(i64_sig 2) max_code in
  Pipeline.run m;
  Verify.assert_ok f;
  let printed = Pp_ir.func f in
  check Alcotest.bool "xor of sign/overflow remains" true
    (contains printed "xor");
  Alcotest.(check bool) "bigger than flag-cache variant" true
    (Pp_ir.size f - 1 > 2);
  (* and still correct *)
  let img = Image.create () in
  let fn = Image.install_code img max_code in
  let _ = fn in
  let ctx = Interp.create ~mem:img.Image.cpu.Cpu.mem m in
  (match Interp.run ctx "lifted" [ Interp.I (-3L); Interp.I 7L ] with
   | Some (Interp.I 7L) -> ()
   | _ -> Alcotest.fail "wrong result without flag cache")

(* ---- loops, memory, narrow widths ---- *)

let test_sum_loop () =
  let s =
    setup ~sg:(i64_sig 1)
      [ I (Alu (Xor, W32, OReg Reg.RAX, OReg Reg.RAX));
        L 0;
        I (Alu (Add, W64, OReg Reg.RAX, OReg Reg.RDI));
        I (Unop (Dec, W64, OReg Reg.RDI));
        I (Jcc (NE, Lbl 0));
        I Ret ]
  in
  diff_check "sumloop" s [ [ 1L ]; [ 2L ]; [ 17L ]; [ 100L ] ]

let test_narrow_widths () =
  (* 16-bit add preserving upper bits, 8-bit ops, movzx/movsx *)
  let s =
    setup ~sg:(i64_sig 2)
      [ I (Mov (W64, OReg Reg.RAX, OReg Reg.RDI));
        I (Alu (Add, W16, OReg Reg.RAX, OReg Reg.RSI));
        I (Alu (Add, W8, OReg Reg.RAX, OImm 1L));
        I (Movsx (W64, Reg.RCX, W8, OReg Reg.RAX));
        I (Alu (Add, W64, OReg Reg.RAX, OReg Reg.RCX));
        I Ret ]
  in
  diff_check "narrow" s
    [ [ 0x1111222233334444L; 5L ]; [ -1L; -1L ]; [ 0xFFL; 0x7F00L ];
      [ 0x123456789ABCDEFFL; 0x8000L ] ]

let test_high_byte () =
  let s =
    setup ~sg:(i64_sig 1)
      [ I (Mov (W64, OReg Reg.RAX, OReg Reg.RDI));
        I (Mov (W8, OReg8H Reg.RAX, OImm 0x5AL));
        I (Mov (W8, OReg Reg.RCX, OReg8H Reg.RAX));
        I (Alu (Add, W64, OReg Reg.RAX, OReg Reg.RCX));
        I Ret ]
  in
  diff_check "high byte" s [ [ 0L ]; [ 0x1234L ]; [ -1L ] ]

let test_memory_and_stack () =
  (* spill to the stack, reload, read an array element *)
  let s =
    setup
      ~sg:{ Ins.args = [ Ins.Ptr 0; Ins.I64 ]; ret = Some Ins.I64 }
      [ I (Push (OReg Reg.RBX));
        I (Mov (W64, OReg Reg.RBX, OReg Reg.RSI));
        I (Mov (W64, OReg Reg.RAX, OMem (mem_bi Reg.RDI Reg.RSI S8)));
        I (Alu (Add, W64, OReg Reg.RAX, OReg Reg.RBX));
        I (Pop (OReg Reg.RBX));
        I Ret ]
  in
  let img, _, _, _ = s in
  let arr = Image.alloc_i64_array img [| 10L; 20L; 30L; 40L |] in
  diff_check "mem+stack" s
    [ [ Int64.of_int arr; 0L ]; [ Int64.of_int arr; 2L ];
      [ Int64.of_int arr; 3L ] ]

let test_float_kernel () =
  (* xmm0 = (a0 + a1) * arg0 using movsd/addsd/mulsd *)
  let img = Image.create () in
  let arr = Image.alloc_f64_array img [| 1.25; 2.5 |] in
  let items =
    [ I (SseMov (Movsd, Xr 1, Xm (mem_base Reg.RDI)));
      I (SseArith (FAdd, Sd, 1, Xm (mem_base ~disp:8 Reg.RDI)));
      I (SseArith (FMul, Sd, 1, Xr 0));
      I (SseMov (Movsd, Xr 0, Xr 1));
      I Ret ]
  in
  let fn = Image.install_code img items in
  let read = Mem.read_u8 img.Image.cpu.Cpu.mem in
  let sg = { Ins.args = [ Ins.Ptr 0; Ins.F64 ]; ret = Some Ins.F64 } in
  let f = Lift.lift ~read ~entry:fn ~name:"lifted" sg in
  Verify.assert_ok ~ctx:"lift fp" f;
  let m = { Ins.funcs = [ f ]; globals = [] } in
  let native, lifted =
    both_f64 (img, fn, f, m) ~args:[ Int64.of_int arr ] ~fargs:[ 3.0 ]
  in
  check (Alcotest.float 1e-12) "fp kernel" native lifted;
  check (Alcotest.float 1e-12) "value" 11.25 native;
  (* optimized version still correct *)
  Pipeline.run m;
  Verify.assert_ok ~ctx:"opt" f;
  let _, lifted2 =
    both_f64 (img, fn, f, m) ~args:[ Int64.of_int arr ] ~fargs:[ 3.0 ]
  in
  check (Alcotest.float 1e-12) "after O3" 11.25 lifted2

let test_branchy_code () =
  (* if (a < 0) a = -a; if (a > b) swap-ish; returns a*2+b *)
  let s =
    setup ~sg:(i64_sig 2)
      [ I (Mov (W64, OReg Reg.RAX, OReg Reg.RDI));
        I (Test (W64, OReg Reg.RAX, OReg Reg.RAX));
        I (Jcc (NS, Lbl 0));
        I (Unop (Neg, W64, OReg Reg.RAX));
        L 0;
        I (Alu (Cmp, W64, OReg Reg.RAX, OReg Reg.RSI));
        I (Jcc (LE, Lbl 1));
        I (Alu (Add, W64, OReg Reg.RAX, OReg Reg.RAX));
        L 1;
        I (Alu (Add, W64, OReg Reg.RAX, OReg Reg.RSI));
        I Ret ]
  in
  diff_check "branchy" s
    [ [ 5L; 10L ]; [ -5L; 10L ]; [ 20L; 10L ]; [ -20L; 10L ]; [ 0L; 0L ] ]

let test_shifts_and_setcc () =
  let s =
    setup ~sg:(i64_sig 2)
      [ I (Mov (W64, OReg Reg.RAX, OReg Reg.RDI));
        I (Shift (Shl, W64, OReg Reg.RAX, ShImm 3));
        I (Shift (Sar, W64, OReg Reg.RAX, ShImm 1));
        I (Alu (Cmp, W64, OReg Reg.RAX, OReg Reg.RSI));
        I (Setcc (G, OReg Reg.RCX));
        I (Movzx (W64, Reg.RCX, W8, OReg Reg.RCX));
        I (Alu (Add, W64, OReg Reg.RAX, OReg Reg.RCX));
        I Ret ]
  in
  diff_check "shift+setcc" s
    [ [ 1L; 0L ]; [ -1L; 0L ]; [ 100L; 1000L ]; [ 0L; -1L ] ]

let test_imul_lea () =
  let s =
    setup ~sg:(i64_sig 2)
      [ I (Lea (Reg.RAX, mem_bi ~disp:5 Reg.RDI Reg.RSI S4));
        I (Imul2 (W64, Reg.RAX, OReg Reg.RDI));
        I (Imul3 (W64, Reg.RCX, OReg Reg.RSI, 649L));
        I (Alu (Add, W64, OReg Reg.RAX, OReg Reg.RCX));
        I Ret ]
  in
  diff_check "imul+lea" s
    [ [ 2L; 3L ]; [ -7L; 11L ]; [ 0L; 0L ]; [ 123L; -456L ] ]

let test_div () =
  let s =
    setup ~sg:(i64_sig 2)
      [ I (Mov (W64, OReg Reg.RAX, OReg Reg.RDI));
        I Cqo;
        I (Idiv (W64, OReg Reg.RSI));
        I (Alu (Add, W64, OReg Reg.RAX, OReg Reg.RDX));
        I Ret ]
  in
  diff_check "div" s
    [ [ 100L; 7L ]; [ -100L; 7L ]; [ 100L; -7L ]; [ 0L; 3L ] ]

let test_calls () =
  (* caller invokes a callee at a known address; lifted as CallPtr *)
  let img = Image.create () in
  let callee =
    Image.install_code img
      [ I (Lea (Reg.RAX, mem_bi Reg.RDI Reg.RDI S1)); I Ret ]
  in
  let caller =
    Image.install_code img
      [ I (Call (Abs callee));
        I (Alu (Add, W64, OReg Reg.RAX, OImm 1L));
        I Ret ]
  in
  let read = Mem.read_u8 img.Image.cpu.Cpu.mem in
  let sg = i64_sig 1 in
  let cfg = { Lift.default_config with callee_sigs = [ (callee, sg) ] } in
  let fcallee = Lift.lift ~read ~entry:callee ~name:"callee" sg in
  let fcaller = Lift.lift ~config:cfg ~read ~entry:caller ~name:"lifted" sg in
  Verify.assert_ok fcallee;
  Verify.assert_ok fcaller;
  let m = { Ins.funcs = [ fcallee; fcaller ]; globals = [] } in
  let native, _ = Image.call img ~fn:caller ~args:[ 21L ] in
  let ctx =
    Interp.create ~mem:img.Image.cpu.Cpu.mem
      ~resolve_addr:(fun a -> if a = callee then Some fcallee else None)
      m
  in
  let lifted =
    match Interp.run ctx "lifted" [ Interp.I 21L ] with
    | Some (Interp.I v) -> v
    | _ -> Alcotest.fail "expected int"
  in
  check ci64 "call" native lifted;
  check ci64 "value" 43L lifted

(* ---- indirect control flow: bounded target-set lifting ---- *)

(* A masked jump-table dispatch: the lifter must enumerate the table,
   lift every arm, and guard the loaded target against each entry. *)
let jump_table_code =
  [ I (Alu (And, W64, OReg Reg.RDI, OImm 3L));
    MovLbl (Reg.RAX, 9);
    I (JmpInd (OMem (mk_mem ~base:Reg.RAX ~index:(Reg.RDI, S8) ())));
    L 0; I (Movabs (Reg.RAX, 111L)); I Ret;
    L 1; I (Movabs (Reg.RAX, 222L)); I Ret;
    L 2; I (Movabs (Reg.RAX, 333L)); I Ret;
    L 3; I (Movabs (Reg.RAX, 444L)); I Ret;
    L 9; Q (Lbl 0); Q (Lbl 1); Q (Lbl 2); Q (Lbl 3) ]

let test_jump_table_differential () =
  let s = setup ~sg:(i64_sig 1) jump_table_code in
  diff_check "jtab" s
    [ [ 0L ]; [ 1L ]; [ 2L ]; [ 3L ]; [ 4L ]; [ 7L ]; [ -1L ] ]

(* A computed goto through a register constant: the Movabs feeding the
   JmpInd pins the target set to a single entry; the bytes between the
   jump and its landing pad are dead and must not confuse the lift. *)
let computed_goto_code =
  [ MovLbl (Reg.RAX, 1);
    I (JmpInd (OReg Reg.RAX));
    I (Movabs (Reg.RAX, 0xBADL)); I Ret; (* dead *)
    L 1;
    I (Lea (Reg.RAX, mem_bi ~disp:5 Reg.RDI Reg.RDI S2));
    I Ret ]

let test_computed_goto_differential () =
  let s = setup ~sg:(i64_sig 1) computed_goto_code in
  diff_check "goto" s [ [ 0L ]; [ 1L ]; [ 10L ]; [ -3L ] ]

(* A two-level in-region chain where the outer call is indirect: the
   CallInd lifts through the same target enumeration as JmpInd, and
   each Ret dispatches through the return-address guard chain. *)
let indirect_call_chain_code =
  [ MovLbl (Reg.RCX, 1);
    I (CallInd (OReg Reg.RCX));
    I (Alu (Add, W64, OReg Reg.RAX, OImm 1L));
    I Ret;
    L 1;
    I (Call (Lbl 2));
    I (Alu (Add, W64, OReg Reg.RAX, OImm 100L));
    I Ret;
    L 2;
    I (Mov (W64, OReg Reg.RAX, OReg Reg.RDI));
    I (Alu (Add, W64, OReg Reg.RAX, OReg Reg.RDI));
    I Ret ]

let test_indirect_call_chain_differential () =
  let s = setup ~sg:(i64_sig 1) indirect_call_chain_code in
  diff_check "chain" s [ [ 0L ]; [ 21L ]; [ -50L ]; [ 1000L ] ]

(* ---- property-based differential testing ---- *)

let gen_prog =
  let open QCheck2.Gen in
  (* straight-line integer programs over rax/rcx/rdx/rsi/rdi;
     generated in small chunks so cmp+cmov pairs stay adjacent *)
  let reg = oneofl [ Reg.RAX; Reg.RCX; Reg.RDX; Reg.RSI; Reg.RDI ] in
  let width = oneofl [ W8; W16; W32; W64 ] in
  let alu = oneofl [ Add; Sub; And; Or; Xor; Cmp ] in
  let chunk =
    oneof
      [ (let* w = width in
         let* d = reg in
         let* s = reg in
         let* op = alu in
         return [ Alu (op, w, OReg d, OReg s) ]);
        (let* w = width in
         let* d = reg in
         let* imm = int_range (-1000) 1000 in
         let* op = alu in
         return [ Alu (op, w, OReg d, OImm (Int64.of_int imm)) ]);
        (let* d = reg in
         let* s = reg in
         return [ Mov (W64, OReg d, OReg s) ]);
        (let* d = reg in
         let* s = reg in
         let* sc = oneofl [ S1; S2; S4; S8 ] in
         let* disp = int_range (-64) 64 in
         return [ Lea (d, mem_bi ~disp s s sc) ]);
        (let* w = oneofl [ W32; W64 ] in
         let* d = reg in
         let* s = reg in
         return [ Imul2 (w, d, OReg s) ]);
        (let* d = reg in
         let* n = int_range 1 31 in
         let* op = oneofl [ Shl; Shr; Sar ] in
         return [ Shift (op, W64, OReg d, ShImm n) ]);
        (let* d = reg in
         return [ Unop (Neg, W64, OReg d) ]);
        (let* w = oneofl [ W32; W64 ] in
         let* d = reg in
         let* s = reg in
         let* c = oneofl [ E; NE; L; GE; LE; G; B; A; S; NS ] in
         return [ Alu (Cmp, w, OReg d, OReg s); Cmov (c, W64, d, OReg s) ]);
        (let* w = oneofl [ W32; W64 ] in
         let* d = reg in
         let* s = reg in
         let* c = oneofl [ E; NE; L; GE; LE; G ] in
         return
           [ Alu (Cmp, w, OReg d, OReg s); Setcc (c, OReg Reg.RAX);
             Movzx (W64, Reg.RAX, W8, OReg Reg.RAX) ]) ]
  in
  let prelude =
    (* every scratch register starts well-defined in terms of the
       arguments, otherwise comparing an undefined rax is meaningless *)
    [ Mov (W64, OReg Reg.RAX, OReg Reg.RDI);
      Mov (W64, OReg Reg.RCX, OReg Reg.RSI);
      Lea (Reg.RDX, mem_bi ~disp:7 Reg.RDI Reg.RSI S2) ]
  in
  list_size (int_range 1 8) chunk >|= fun chunks -> prelude @ List.concat chunks

let prop_differential =
  QCheck2.Test.make ~name:"lifted straight-line = native" ~count:300 gen_prog
    (fun prog ->
      let items = List.map (fun i -> I i) prog @ [ I Ret ] in
      try
        let s = setup ~sg:(i64_sig 2) items in
        List.for_all
          (fun args ->
            let native, lifted = both_i64 s args in
            if native <> lifted then
              QCheck2.Test.fail_reportf
                "mismatch on %s: native=%Ld lifted=%Ld\n%s"
                (String.concat "; " (List.map Pp.insn prog))
                native lifted
                (Pp_ir.func
                   (let _, _, f, _ = s in
                    f))
            else true)
          [ [ 3L; 5L ]; [ -3L; 5L ]; [ 0L; 0L ]; [ 123456789L; -987654321L ] ]
      with Obrew_fault.Err.Error _ -> QCheck2.assume_fail ())

let prop_differential_optimized =
  QCheck2.Test.make ~name:"optimized lifted = native" ~count:200 gen_prog
    (fun prog ->
      let items = List.map (fun i -> I i) prog @ [ I Ret ] in
      try
        let (img, fn, f, m) = setup ~sg:(i64_sig 2) items in
        Pipeline.run m;
        Verify.assert_ok ~ctx:"O3 on random lift" f;
        List.for_all
          (fun args ->
            let native, lifted = both_i64 (img, fn, f, m) args in
            native = lifted
            || QCheck2.Test.fail_reportf "optimized mismatch on %s"
                 (String.concat "; " (List.map Pp.insn prog)))
          [ [ 3L; 5L ]; [ -3L; 5L ]; [ 0L; 0L ]; [ 1L; Int64.max_int ] ]
      with Obrew_fault.Err.Error _ -> QCheck2.assume_fail ())

(* ---- Fig. 5 shapes ---- *)

let test_fig5_addsd_shape () =
  (* addsd xmm0, xmm1 lifts through bitcast/extractelement/fadd/
     insertelement, Fig. 5 *)
  let img = Image.create () in
  let fn =
    Image.install_code img [ I (SseArith (FAdd, Sd, 0, Xr 1)); I Ret ]
  in
  let read = Mem.read_u8 img.Image.cpu.Cpu.mem in
  let f =
    Lift.lift ~read ~entry:fn ~name:"lifted"
      { Ins.args = [ Ins.F64; Ins.F64 ]; ret = Some Ins.F64 }
  in
  let printed = Pp_ir.func f in
  List.iter
    (fun frag ->
      check Alcotest.bool (frag ^ " present") true (contains printed frag))
    [ "bitcast"; "extractelement"; "fadd"; "insertelement" ]

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "lifter"
    [ ("fig6",
       [ Alcotest.test_case "max differential" `Quick test_max_differential;
         Alcotest.test_case "flag cache shape" `Quick test_flag_cache_shape;
         Alcotest.test_case "no flag cache shape" `Quick
           test_no_flag_cache_shape ]);
      ("differential",
       [ Alcotest.test_case "sum loop" `Quick test_sum_loop;
         Alcotest.test_case "narrow widths" `Quick test_narrow_widths;
         Alcotest.test_case "high byte" `Quick test_high_byte;
         Alcotest.test_case "memory+stack" `Quick test_memory_and_stack;
         Alcotest.test_case "float kernel" `Quick test_float_kernel;
         Alcotest.test_case "branchy" `Quick test_branchy_code;
         Alcotest.test_case "shifts+setcc" `Quick test_shifts_and_setcc;
         Alcotest.test_case "imul+lea" `Quick test_imul_lea;
         Alcotest.test_case "division" `Quick test_div;
         Alcotest.test_case "calls" `Quick test_calls ]);
      ("indirect",
       [ Alcotest.test_case "jump table" `Quick test_jump_table_differential;
         Alcotest.test_case "computed goto" `Quick
           test_computed_goto_differential;
         Alcotest.test_case "indirect call chain" `Quick
           test_indirect_call_chain_differential ]);
      ("property",
       [ qt prop_differential; qt prop_differential_optimized ]);
      ("fig5", [ Alcotest.test_case "addsd shape" `Quick test_fig5_addsd_shape ])
    ]
