(* Tiered adaptive compilation (lib/tier): exactness and robustness.

   The contract under test:
   - tier transitions never change results: a tiered run computes
     bit-identical matrices to a never-tiering superblock-only run,
     whatever the hot threshold (the PR 6 exactness discipline applied
     to tier-up patching);
   - with tiering off the harness is cycle-transparent: simulated
     cycles are bit-identical to the never-tier control;
   - the sliced harness itself is exact: its result equals the
     monolithic Jacobi driver run;
   - a hot workload actually tiers up, patches call sites without a
     global flush, and spends fewer simulated cycles than never-tier;
   - a quarantined tier-up target demotes and backs off instead of
     recompiling in a loop (compile counts stay bounded, the site ends
     pinned, results stay correct). *)

open Obrew_core
open Obrew_fault
module Tier = Obrew_tier.Tier
module Sen = Obrew_sentinel.Sentinel
module H = Obrew_sentinel.Health
module Stencil = Obrew_stencil.Stencil

let sz = 9
let slices = 24

(* every serve validates immediately, heal retries almost at once:
   deterministic and fast *)
let fast_policy =
  { H.first_k = 2; sample_n = 4; suspect_n = 2; decay_streak = 2;
    heal_max = 2; heal_base = 1; heal_cap = 4 }

let hot = (Modes.Flat, Modes.Element)

let cold =
  [ (Modes.Direct, Modes.Element); (Modes.Sorted, Modes.Element) ]

let schedule = Tier.partially_hot ~slices ~hot ~cold

(* one shared env: building one compiles the whole benchmark program.
   Reuse across runs is safe for the properties below — simulated
   cycles are state-independent (the cost model never consults cache
   warmth), each Tier.run registers fresh thunks and resets the
   matrices, and hotness baselines absorb leftover counters. *)
let shared = lazy (Modes.build ~sz ())

let cfg threshold =
  { Tier.default_config with
    Tier.hot_threshold = threshold; policy = fast_policy }

let run_strategy ?(threshold = 500) strategy =
  let env = Lazy.force shared in
  Sen.reset ();
  Quarantine.clear ();
  Tier.run ~cfg:(cfg threshold) env ~schedule ~strategy

let matrices env =
  ( Array.map Int64.bits_of_float (Stencil.read_matrix env.Modes.w env.Modes.w.Stencil.m1),
    Array.map Int64.bits_of_float (Stencil.read_matrix env.Modes.w env.Modes.w.Stencil.m2) )

let check_bits what (a : int64 array) (b : int64 array) =
  Alcotest.(check int) (what ^ " length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i v ->
      if v <> b.(i) then
        Alcotest.failf "%s: cell %d differs (%Lx vs %Lx)" what i v b.(i))
    a

(* ------------------------------------------------------------------ *)
(* Exactness                                                           *)
(* ------------------------------------------------------------------ *)

(* the sliced thunk harness computes exactly what the monolithic
   driver computes: same kernel calls, same buffer swaps *)
let test_sliced_equals_monolithic () =
  let r = run_strategy Tier.NeverTier in
  let env = Lazy.force shared in
  let hk, hs = hot in
  let kernel = Modes.native_addr env hk hs in
  ignore (Modes.run env hk hs ~kernel ~iters:slices);
  let want =
    Array.map Int64.bits_of_float (Modes.result_matrix env ~iters:slices)
  in
  check_bits "sliced vs monolithic" want r.Tier.r_result

(* tier-off runs are cycle-transparent: a Tiered run whose threshold
   never fires is bit-identical to the NeverTier control, cycles
   included *)
let test_tier_off_bit_identical () =
  let never = run_strategy Tier.NeverTier in
  let off = run_strategy ~threshold:max_int Tier.Tiered in
  Alcotest.(check int) "cycles" never.Tier.r_total_cycles
    off.Tier.r_total_cycles;
  Alcotest.(check int) "insns" never.Tier.r_total_insns
    off.Tier.r_total_insns;
  Alcotest.(check int) "patches" 0 off.Tier.r_patches;
  check_bits "tier-off result" never.Tier.r_result off.Tier.r_result

(* the QCheck differential: across randomized hot thresholds (and
   promote factors), a tiered run's results and final memory are
   bit-identical to the never-tier control *)
let prop_differential =
  QCheck2.Test.make ~name:"tiered results bit-identical across thresholds"
    ~count:8
    QCheck2.Gen.(
      pair (int_range 1 100_000) (int_range 2 6))
    (fun (threshold, mult) ->
      let never = run_strategy Tier.NeverTier in
      let m1n, m2n = matrices (Lazy.force shared) in
      let env = Lazy.force shared in
      Sen.reset ();
      Quarantine.clear ();
      let cfg = { (cfg threshold) with Tier.promote_mult = mult } in
      let tiered = Tier.run ~cfg env ~schedule ~strategy:Tier.Tiered in
      let m1t, m2t = matrices env in
      if tiered.Tier.r_result <> never.Tier.r_result then
        QCheck2.Test.fail_reportf
          "threshold %d: tiered result differs from never-tier" threshold;
      if m1t <> m1n || m2t <> m2n then
        QCheck2.Test.fail_reportf
          "threshold %d: final matrix memory differs from never-tier"
          threshold;
      true)

(* ------------------------------------------------------------------ *)
(* Tier-up actually happens, and pays off                              *)
(* ------------------------------------------------------------------ *)

let test_hot_workload_tiers_up () =
  let never = run_strategy Tier.NeverTier in
  let tiered = run_strategy ~threshold:500 Tier.Tiered in
  Alcotest.(check bool) "tiered up at least once" true
    (tiered.Tier.r_tierups >= 1);
  Alcotest.(check bool) "patched at least one call site" true
    (tiered.Tier.r_patches >= 1);
  Alcotest.(check bool) "dominant site reached the Hot tier" true
    tiered.Tier.r_reached_peak;
  Alcotest.(check bool)
    (Printf.sprintf "tiered cycles %d < never-tier cycles %d"
       tiered.Tier.r_total_cycles never.Tier.r_total_cycles)
    true
    (tiered.Tier.r_total_cycles < never.Tier.r_total_cycles);
  Alcotest.(check bool) "peak slice cheaper than never-tier's" true
    (tiered.Tier.r_peak_slice_cycles < never.Tier.r_peak_slice_cycles);
  check_bits "hot workload result" never.Tier.r_result tiered.Tier.r_result;
  (* the dominant site specifically is the one that must end Hot — the
     rarely-run sites may or may not cross the threshold late in the
     run, but the hot kernel has to *)
  match
    List.find_opt
      (fun s -> (s.Tier.s_kind, s.Tier.s_style) = hot)
      tiered.Tier.r_sites
  with
  | None -> Alcotest.fail "dominant site missing from r_sites"
  | Some s ->
    Alcotest.(check string) "dominant site ends at the Hot tier" "hot"
      (Tier.level_name s.Tier.s_level);
    Alcotest.(check bool) "dominant site was patched" true
      (s.Tier.s_patches >= 1)

(* ------------------------------------------------------------------ *)
(* Quarantine: demote + back off, never hot-loop                       *)
(* ------------------------------------------------------------------ *)

let test_quarantined_tier_up_backs_off () =
  let never = run_strategy Tier.NeverTier in
  let env = Lazy.force shared in
  Sen.reset ();
  Quarantine.clear ();
  (* every DBrew rewrite silently corrupted, forever: each tier-up
     attempt is caught by shadow validation, quarantined and demoted *)
  Fault.install [ Fault.arm "sabotage.rewrite.item" ];
  let tiered =
    try Tier.run ~cfg:(cfg 500) env ~schedule ~strategy:Tier.Tiered
    with exn ->
      Fault.clear ();
      Alcotest.failf "tiered run raised under sabotage: %s"
        (Printexc.to_string exn)
  in
  Fault.clear ();
  Alcotest.(check bool) "at least one demotion recorded" true
    (tiered.Tier.r_demotions >= 1);
  Alcotest.(check int) "no successful tier-up" 0 tiered.Tier.r_tierups;
  Alcotest.(check int) "no call site patched" 0 tiered.Tier.r_patches;
  (* bounded recompilation: each site issues at most heal_max + 1
     serves before it is pinned — no hot loop *)
  List.iter
    (fun s ->
      if s.Tier.s_compiles > fast_policy.H.heal_max + 1 then
        Alcotest.failf "%s recompiled %d times (> heal_max + 1 = %d)"
          (Tier.site_key s) s.Tier.s_compiles
          (fast_policy.H.heal_max + 1);
      if s.Tier.s_compiles > fast_policy.H.heal_max then
        Alcotest.(check bool) (Tier.site_key s ^ " pinned") true
          s.Tier.s_pinned)
    tiered.Tier.r_sites;
  check_bits "sabotaged tiered result" never.Tier.r_result
    tiered.Tier.r_result

let () =
  Alcotest.run "tier"
    [ ( "exactness",
        [ Alcotest.test_case "sliced harness equals monolithic driver"
            `Quick test_sliced_equals_monolithic;
          Alcotest.test_case "tier-off bit-identical cycles" `Quick
            test_tier_off_bit_identical;
          QCheck_alcotest.to_alcotest prop_differential ] );
      ( "adaptivity",
        [ Alcotest.test_case "hot workload tiers up and wins" `Quick
            test_hot_workload_tiers_up;
          Alcotest.test_case "quarantined tier-up demotes and backs off"
            `Quick test_quarantined_tier_up_backs_off ] ) ]
