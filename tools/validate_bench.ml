(* Schema validator for the machine-readable benchmark exports.

     validate_bench BENCH_fig9a.json [BENCH_fig9b.json ...]
     validate_bench --trace trace.json
     validate_bench --remarks remarks.json --profile profile.json
     validate_bench compare BASELINE.json CURRENT.json [--tol PCT]

   Checks BENCH_*.json files (written by `bench --json`),
   chrome://tracing files (written by `--trace`), optimizer-remark
   dumps (`--remarks`) and cycle profiles (`--profile`) against the
   shapes CI depends on, so a schema drift fails the pipeline instead
   of silently producing unreadable artifacts.  The `compare`
   subcommand diffs two BENCH files row by row and exits nonzero when
   any row's wall time regressed by more than the tolerance (default
   10%) — the first consumer of the cross-PR bench trajectory.  It also
   prints the aggregate emulated-MIPS delta, and `--tol-mips PCT` makes
   a throughput drop beyond PCT a hard failure.  Uses a small
   recursive-descent JSON parser to stay dependency-free. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail "expected %c at offset %d, found %c" c !pos c'
    | None -> fail "expected %c at offset %d, found end of input" c !pos
  in
  let parse_lit lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail "bad literal at offset %d" !pos
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string at offset %d" !pos
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        (match peek () with
         | Some '"' -> Buffer.add_char b '"'
         | Some '\\' -> Buffer.add_char b '\\'
         | Some '/' -> Buffer.add_char b '/'
         | Some 'b' -> Buffer.add_char b '\b'
         | Some 'f' -> Buffer.add_char b '\012'
         | Some 'n' -> Buffer.add_char b '\n'
         | Some 'r' -> Buffer.add_char b '\r'
         | Some 't' -> Buffer.add_char b '\t'
         | Some 'u' ->
           (* validation never inspects non-ASCII content; a
              placeholder keeps the parser total *)
           if !pos + 4 >= n then fail "truncated \\u escape";
           pos := !pos + 4;
           Buffer.add_char b '?'
         | _ -> fail "bad escape at offset %d" !pos);
        advance ();
        go ())
      | Some c -> Buffer.add_char b c; advance (); go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    let slice = String.sub s start (!pos - start) in
    match float_of_string_opt slice with
    | Some f -> Num f
    | None -> fail "bad number %S at offset %d" slice start
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ((k, v) :: acc)
          | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected , or } at offset %d" !pos
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); Arr [] end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elems (v :: acc)
          | Some ']' -> advance (); Arr (List.rev (v :: acc))
          | _ -> fail "expected , or ] at offset %d" !pos
        in
        elems []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> parse_lit "true" (Bool true)
    | Some 'f' -> parse_lit "false" (Bool false)
    | Some 'n' -> parse_lit "null" Null
    | Some _ -> parse_number ()
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage at offset %d" !pos;
  v

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let field ctx o k =
  match o with
  | Obj kvs -> (
    match List.assoc_opt k kvs with
    | Some v -> v
    | None -> fail "%s: missing field %S" ctx k)
  | _ -> fail "%s: expected an object" ctx

let as_num ctx = function
  | Num f -> f
  | _ -> fail "%s: expected a number" ctx

let as_int ctx v =
  let f = as_num ctx v in
  if Float.is_integer f then int_of_float f
  else fail "%s: expected an integer, got %g" ctx f

let as_str ctx = function
  | Str s -> s
  | _ -> fail "%s: expected a string" ctx

let as_obj ctx = function
  | Obj kvs -> kvs
  | _ -> fail "%s: expected an object" ctx

let as_arr ctx = function
  | Arr l -> l
  | _ -> fail "%s: expected an array" ctx

(* ------------------------------------------------------------------ *)
(* Schemas                                                             *)
(* ------------------------------------------------------------------ *)

(* Counter objects may nest one level (e.g. superblocks.fused_pairs is a
   per-pattern breakdown); every leaf must be a non-negative integer. *)
let rec check_counts ctx v =
  List.iter
    (fun (k, n) ->
      let kctx = ctx ^ "." ^ k in
      match n with
      | Obj _ -> check_counts kctx n
      | _ -> if as_int kctx n < 0 then fail "%s: negative" kctx)
    (as_obj ctx v)

(* BENCH files: v1 lacked the tail-latency objects, v2 added
   serve_latency/stage_latency to the fig9 sections; both shapes remain
   readable so old baselines stay comparable. *)
let check_bench path (j : json) =
  let ctx = Filename.basename path in
  let sv = as_int (ctx ^ ".schema_version") (field ctx j "schema_version") in
  if sv <> 1 && sv <> 2 then
    fail "%s: unsupported schema_version %d" ctx sv;
  let section = as_str (ctx ^ ".section") (field ctx j "section") in
  if not (String.length section > 3 && String.sub section 0 3 = "fig") then
    fail "%s: bad section %S" ctx section;
  if as_int (ctx ^ ".sz") (field ctx j "sz") < 3 then fail "%s: sz < 3" ctx;
  if as_int (ctx ^ ".iters") (field ctx j "iters") < 1 then
    fail "%s: iters < 1" ctx;
  let rows = as_obj (ctx ^ ".rows") (field ctx j "rows") in
  if rows = [] then fail "%s: rows is empty" ctx;
  List.iter
    (fun (name, row) ->
      let rctx = Printf.sprintf "%s.rows[%s]" ctx name in
      ignore (as_str (rctx ^ ".kind") (field rctx row "kind"));
      ignore (as_str (rctx ^ ".mode") (field rctx row "mode"));
      if as_int (rctx ^ ".cycles") (field rctx row "cycles") <= 0 then
        fail "%s: cycles <= 0" rctx;
      if as_int (rctx ^ ".insns") (field rctx row "insns") <= 0 then
        fail "%s: insns <= 0" rctx;
      if as_int (rctx ^ ".wall_ns") (field rctx row "wall_ns") < 0 then
        fail "%s: wall_ns < 0" rctx;
      ignore (as_num (rctx ^ ".wall_s") (field rctx row "wall_s")))
    rows;
  if as_num (ctx ^ ".emulated_mips") (field ctx j "emulated_mips") < 0.0 then
    fail "%s: emulated_mips < 0" ctx;
  let hr =
    as_num (ctx ^ ".superblock_hit_rate") (field ctx j "superblock_hit_rate")
  in
  if hr < 0.0 || hr > 1.0 then
    fail "%s: superblock_hit_rate %g out of [0,1]" ctx hr;
  check_counts (ctx ^ ".superblocks") (field ctx j "superblocks");
  (* the indirect-branch inline-cache counters travel as a pair: a file
     reporting hits without misses (or vice versa) is malformed.  Both
     absent is fine — baselines predating the counters stay readable. *)
  let sb = as_obj (ctx ^ ".superblocks") (field ctx j "superblocks") in
  (match (List.mem_assoc "ic_hits" sb, List.mem_assoc "ic_misses" sb) with
   | true, false | false, true ->
     fail "%s: superblocks needs ic_hits and ic_misses together" ctx
   | _ -> ());
  check_counts (ctx ^ ".transform_memo") (field ctx j "transform_memo");
  check_counts (ctx ^ ".dbrew_memo") (field ctx j "dbrew_memo");
  if sv >= 2 then begin
    let sl = field ctx j "serve_latency" in
    let sctx = ctx ^ ".serve_latency" in
    let g k = as_int (sctx ^ "." ^ k) (field sctx sl k) in
    if g "serves" < 1 then fail "%s: serves < 1" sctx;
    let p50 = g "p50_us" and p90 = g "p90_us" in
    let p99 = g "p99_us" and p999 = g "p999_us" in
    if p50 < 0 then fail "%s: negative p50_us" sctx;
    if not (p50 <= p90 && p90 <= p99 && p99 <= p999) then
      fail "%s: percentiles not monotone (%d/%d/%d/%d)" sctx p50 p90 p99
        p999;
    if as_num (sctx ^ ".throughput_rps") (field sctx sl "throughput_rps")
       <= 0.0
    then fail "%s: throughput_rps <= 0" sctx;
    let stages = as_obj (ctx ^ ".stage_latency") (field ctx j "stage_latency") in
    if stages = [] then fail "%s: stage_latency is empty" ctx;
    List.iter
      (fun (name, row) ->
        let rctx = Printf.sprintf "%s.stage_latency[%s]" ctx name in
        if as_int (rctx ^ ".spans") (field rctx row "spans") < 1 then
          fail "%s: spans < 1" rctx;
        let q50 = as_int (rctx ^ ".p50_ns") (field rctx row "p50_ns") in
        let q90 = as_int (rctx ^ ".p90_ns") (field rctx row "p90_ns") in
        let q99 = as_int (rctx ^ ".p99_ns") (field rctx row "p99_ns") in
        if q50 < 0 then fail "%s: negative p50_ns" rctx;
        if not (q50 <= q90 && q90 <= q99) then
          fail "%s: percentiles not monotone (%d/%d/%d)" rctx q50 q90 q99)
      stages
  end;
  Printf.printf "%s: OK (schema v%d, %d rows)\n" ctx sv (List.length rows)

let remark_actions =
  [ "deleted"; "merged"; "hoisted"; "unrolled"; "specialized" ]

let check_remarks path (j : json) =
  let ctx = Filename.basename path in
  let sv = as_int (ctx ^ ".schema_version") (field ctx j "schema_version") in
  if sv <> 1 then fail "%s: unsupported schema_version %d" ctx sv;
  let rs = as_arr (ctx ^ ".remarks") (field ctx j "remarks") in
  List.iteri
    (fun i r ->
      let rctx = Printf.sprintf "%s.remarks[%d]" ctx i in
      if as_str (rctx ^ ".pass") (field rctx r "pass") = "" then
        fail "%s: empty pass" rctx;
      let action = as_str (rctx ^ ".action") (field rctx r "action") in
      if not (List.mem action remark_actions) then
        fail "%s: unknown action %S" rctx action;
      if as_int (rctx ^ ".guest_addr") (field rctx r "guest_addr") < 0 then
        fail "%s: negative guest_addr" rctx;
      if as_int (rctx ^ ".ord") (field rctx r "ord") < 0 then
        fail "%s: negative ord" rctx;
      ignore (as_str (rctx ^ ".detail") (field rctx r "detail")))
    rs;
  Printf.printf "%s: OK (%d remarks)\n" ctx (List.length rs)

let check_profile path (j : json) =
  let ctx = Filename.basename path in
  let sv = as_int (ctx ^ ".schema_version") (field ctx j "schema_version") in
  if sv <> 1 then fail "%s: unsupported schema_version %d" ctx sv;
  let total = as_int (ctx ^ ".total_cycles") (field ctx j "total_cycles") in
  if total < 0 then fail "%s: negative total_cycles" ctx;
  if as_int (ctx ^ ".total_execs") (field ctx j "total_execs") < 0 then
    fail "%s: negative total_execs" ctx;
  let rows = as_arr (ctx ^ ".rows") (field ctx j "rows") in
  List.iteri
    (fun i r ->
      let rctx = Printf.sprintf "%s.rows[%d]" ctx i in
      if as_int (rctx ^ ".addr") (field rctx r "addr") < 0 then
        fail "%s: negative addr" rctx;
      let cy = as_int (rctx ^ ".cycles") (field rctx r "cycles") in
      if cy < 0 then fail "%s: negative cycles" rctx;
      if cy > total then fail "%s: cycles exceed total_cycles" rctx;
      if as_int (rctx ^ ".execs") (field rctx r "execs") <= 0 then
        fail "%s: execs <= 0" rctx;
      let share = as_num (rctx ^ ".share") (field rctx r "share") in
      if share < 0.0 || share > 1.0 then
        fail "%s: share %g out of [0,1]" rctx share)
    rows;
  let blocks = as_arr (ctx ^ ".blocks") (field ctx j "blocks") in
  List.iteri
    (fun i b ->
      let bctx = Printf.sprintf "%s.blocks[%d]" ctx i in
      if as_int (bctx ^ ".entry") (field bctx b "entry") < 0 then
        fail "%s: negative entry" bctx;
      if as_int (bctx ^ ".cycles") (field bctx b "cycles") < 0 then
        fail "%s: negative cycles" bctx;
      if as_int (bctx ^ ".execs") (field bctx b "execs") <= 0 then
        fail "%s: execs <= 0" bctx)
    blocks;
  Printf.printf "%s: OK (%d rows, %d blocks, %d cycles)\n" ctx
    (List.length rows) (List.length blocks) total

(* Sentinel runtime-validation stats (written by `stencil
   --sentinel-json`).  The counter inequalities are structural: every
   quarantine entry was produced by a divergence, and every demotion
   implies at least one check ran. *)
let sentinel_counters =
  [ "checks"; "divergences"; "quarantined"; "demotions"; "healed";
    "heal_retries"; "blocked_serves" ]

let check_sentinel ~min_divergences ~min_demotions path (j : json) =
  let ctx = Filename.basename path in
  let sv = as_int (ctx ^ ".schema_version") (field ctx j "schema_version") in
  if sv <> 1 then fail "%s: unsupported schema_version %d" ctx sv;
  let get k = as_int (ctx ^ "." ^ k) (field ctx j k) in
  List.iter
    (fun k -> if get k < 0 then fail "%s: negative %s" ctx k)
    sentinel_counters;
  if get "quarantined" > get "divergences" then
    fail "%s: quarantined (%d) exceeds divergences (%d)" ctx
      (get "quarantined") (get "divergences");
  if get "demotions" > 0 && get "checks" = 0 then
    fail "%s: demotions without any checks" ctx;
  if get "divergences" < min_divergences then
    fail "%s: divergences %d below required minimum %d" ctx
      (get "divergences") min_divergences;
  if get "demotions" < min_demotions then
    fail "%s: demotions %d below required minimum %d" ctx (get "demotions")
      min_demotions;
  Printf.printf
    "%s: OK (checks %d, divergences %d, quarantined %d, demotions %d, \
     healed %d)\n"
    ctx (get "checks") (get "divergences") (get "quarantined")
    (get "demotions") (get "healed")

(* Tiered-compilation figure (written by `bench --only tier --json`):
   per-strategy totals plus per-site tier rows.  Beyond shape, the
   structural invariants of the controller are re-checked here: the
   never-tier control must not have tiered or patched anything, every
   strategy must agree on slice count, and the figure's headline claim
   — the tiered run spends fewer simulated cycles than the never-tier
   control — must hold in the file CI archives. *)
let tier_strategies = [ "tiered"; "always"; "never" ]
let tier_levels = [ "cold"; "warm"; "hot" ]

let check_tier path (j : json) =
  let ctx = Filename.basename path in
  let sv = as_int (ctx ^ ".schema_version") (field ctx j "schema_version") in
  if sv <> 1 && sv <> 2 then
    fail "%s: unsupported schema_version %d" ctx sv;
  let section = as_str (ctx ^ ".section") (field ctx j "section") in
  if section <> "tier" then fail "%s: bad section %S" ctx section;
  if as_int (ctx ^ ".sz") (field ctx j "sz") < 3 then fail "%s: sz < 3" ctx;
  let slices = as_int (ctx ^ ".slices") (field ctx j "slices") in
  if slices < 1 then fail "%s: slices < 1" ctx;
  if as_int (ctx ^ ".hot_threshold") (field ctx j "hot_threshold") < 1 then
    fail "%s: hot_threshold < 1" ctx;
  let strategies = field ctx j "strategies" in
  let strat name =
    field (ctx ^ ".strategies") strategies name
  in
  let get s k = as_int (Printf.sprintf "%s.%s.%s" ctx s k) (field s (strat s) k) in
  let getf s k = as_num (Printf.sprintf "%s.%s.%s" ctx s k) (field s (strat s) k) in
  List.iter
    (fun s ->
      List.iter
        (fun k -> if get s k < 0 then fail "%s.%s: negative %s" ctx s k)
        [ "total_cycles"; "total_insns"; "cycles_to_peak"; "slices_to_peak";
          "reached_peak"; "hot_sites"; "patches"; "tierups"; "demotions";
          "compiles" ];
      List.iter
        (fun k -> if getf s k < 0.0 then fail "%s.%s: negative %s" ctx s k)
        [ "compile_s"; "wall_s"; "time_to_peak_s" ];
      if get s "total_cycles" = 0 then fail "%s.%s: total_cycles = 0" ctx s;
      if get s "tierups" > get s "compiles" then
        fail "%s.%s: tierups exceed compiles" ctx s;
      if get s "demotions" > get s "compiles" then
        fail "%s.%s: demotions exceed compiles" ctx s;
      let sites =
        as_obj (Printf.sprintf "%s.%s.sites" ctx s) (field s (strat s) "sites")
      in
      if sites = [] then fail "%s.%s: no sites" ctx s;
      let total_slices = ref 0 in
      List.iter
        (fun (name, row) ->
          let rctx = Printf.sprintf "%s.%s.sites[%s]" ctx s name in
          let lvl = as_str (rctx ^ ".level") (field rctx row "level") in
          if not (List.mem lvl tier_levels) then
            fail "%s: unknown level %S" rctx lvl;
          total_slices :=
            !total_slices + as_int (rctx ^ ".slices") (field rctx row "slices");
          if as_int (rctx ^ ".compiles") (field rctx row "compiles") < 0 then
            fail "%s: negative compiles" rctx;
          if as_int (rctx ^ ".patches") (field rctx row "patches") < 0 then
            fail "%s: negative patches" rctx)
        sites;
      if !total_slices <> slices then
        fail "%s.%s: site slices sum to %d, expected %d" ctx s !total_slices
          slices)
    tier_strategies;
  if get "never" "tierups" <> 0 || get "never" "patches" <> 0 then
    fail "%s: never-tier control tiered up or patched" ctx;
  if get "tiered" "total_cycles" >= get "never" "total_cycles" then
    fail "%s: tiered total_cycles (%d) not below never-tier (%d)" ctx
      (get "tiered" "total_cycles")
      (get "never" "total_cycles");
  if get "tiered" "reached_peak" <> 1 then
    fail "%s: tiered run did not reach the top tier" ctx;
  Printf.printf
    "%s: OK (tiered %d cycles vs never %d, peak after %d of %d slices)\n" ctx
    (get "tiered" "total_cycles")
    (get "never" "total_cycles")
    (get "tiered" "slices_to_peak")
    slices

(* Black-box crash report (written by `stencil --blackbox` / `obrew
   report --json`): reason must be one of the typed triggers, the
   flight-recorder tail must carry strictly-increasing logical
   sequence numbers, and the section registry must have produced at
   least one section.  --blackbox-require-chain additionally asserts
   that a given causal chain of event kinds appears in the tail as an
   ordered subsequence (e.g. inject -> divergence -> quarantine ->
   demote). *)
let blackbox_reasons =
  [ "typed-error"; "sentinel-divergence"; "uncaught-exception"; "manual" ]

let check_blackbox ~require_chain path (j : json) =
  let ctx = Filename.basename path in
  let sv = as_int (ctx ^ ".schema_version") (field ctx j "schema_version") in
  if sv <> 1 then fail "%s: unsupported schema_version %d" ctx sv;
  let reason = as_str (ctx ^ ".reason") (field ctx j "reason") in
  if not (List.mem reason blackbox_reasons) then
    fail "%s: unknown reason %S" ctx reason;
  ignore (as_str (ctx ^ ".detail") (field ctx j "detail"));
  List.iteri
    (fun i s -> ignore (as_str (Printf.sprintf "%s.active_spans[%d]" ctx i) s))
    (as_arr (ctx ^ ".active_spans") (field ctx j "active_spans"));
  let fl = field ctx j "flight" in
  let fctx = ctx ^ ".flight" in
  if as_int (fctx ^ ".recorded") (field fctx fl "recorded") < 0 then
    fail "%s: negative recorded" fctx;
  if as_int (fctx ^ ".dropped") (field fctx fl "dropped") < 0 then
    fail "%s: negative dropped" fctx;
  let evs = as_arr (fctx ^ ".events") (field fctx fl "events") in
  let last_seq = ref (-1) in
  let kinds =
    List.mapi
      (fun i e ->
        let ectx = Printf.sprintf "%s.events[%d]" fctx i in
        let seq = as_int (ectx ^ ".seq") (field ectx e "seq") in
        if seq <= !last_seq then
          fail "%s: seq %d not strictly increasing (prev %d)" ectx seq
            !last_seq;
        last_seq := seq;
        let kind = as_str (ectx ^ ".kind") (field ectx e "kind") in
        if kind = "" then fail "%s: empty kind" ectx;
        kind)
      evs
  in
  let sections = as_obj (ctx ^ ".sections") (field ctx j "sections") in
  if sections = [] then fail "%s: sections is empty" ctx;
  (match require_chain with
   | [] -> ()
   | chain ->
     let rec sub need have =
       match (need, have) with
       | [], _ -> true
       | _, [] -> false
       | n :: ns, h :: hs -> if n = h then sub ns hs else sub need hs
     in
     if not (sub chain kinds) then
       fail "%s: event tail lacks the ordered chain %s" ctx
         (String.concat " -> " chain));
  Printf.printf "%s: OK (reason %s, %d event(s), %d section(s)%s)\n" ctx
    reason (List.length evs) (List.length sections)
    (if require_chain = [] then ""
     else ", causal chain " ^ String.concat " -> " require_chain)

let check_trace path (j : json) =
  let ctx = Filename.basename path in
  let evs = as_arr (ctx ^ ".traceEvents") (field ctx j "traceEvents") in
  if evs = [] then fail "%s: traceEvents is empty" ctx;
  List.iteri
    (fun i e ->
      let ectx = Printf.sprintf "%s.traceEvents[%d]" ctx i in
      let name = as_str (ectx ^ ".name") (field ectx e "name") in
      if name = "" then fail "%s: empty name" ectx;
      let ph = as_str (ectx ^ ".ph") (field ectx e "ph") in
      (match ph with
       | "X" ->
         if as_num (ectx ^ ".dur") (field ectx e "dur") < 0.0 then
           fail "%s: negative dur" ectx
       | "i" -> ()
       | _ -> fail "%s: unexpected phase %S" ectx ph);
      if as_num (ectx ^ ".ts") (field ectx e "ts") < 0.0 then
        fail "%s: negative ts" ectx)
    evs;
  let dropped =
    as_int (ctx ^ ".otherData.dropped_events")
      (field ctx (field ctx j "otherData") "dropped_events")
  in
  Printf.printf "%s: OK (%d events, %d dropped)\n" ctx (List.length evs)
    dropped

(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* ------------------------------------------------------------------ *)
(* compare: wall-time regression gate over two BENCH files             *)
(* ------------------------------------------------------------------ *)

(* Index a BENCH file's rows by their "Kind/Mode" name. *)
let bench_rows ctx (j : json) : (string * (int * int)) list =
  List.map
    (fun (name, row) ->
      let rctx = Printf.sprintf "%s.rows[%s]" ctx name in
      ( name,
        ( as_int (rctx ^ ".wall_ns") (field rctx row "wall_ns"),
          as_int (rctx ^ ".cycles") (field rctx row "cycles") ) ))
    (as_obj (ctx ^ ".rows") (field ctx j "rows"))

(* serve-latency tail: only present in schema-v2 files, so the gate is
   conditional — a v1 baseline compares cleanly against a v2 current *)
let serve_p99 ctx (j : json) =
  match j with
  | Obj kvs -> (
    match List.assoc_opt "serve_latency" kvs with
    | Some sl ->
      Some (as_int (ctx ^ ".serve_latency.p99_us") (field ctx sl "p99_us"))
    | None -> None)
  | _ -> None

let compare_bench ~tol ~tol_mips ~tol_p99 base_path cur_path =
  let load p = parse (read_file p) in
  let base = load base_path and cur = load cur_path in
  let bctx = Filename.basename base_path in
  let cctx = Filename.basename cur_path in
  let bsec = as_str (bctx ^ ".section") (field bctx base "section") in
  let csec = as_str (cctx ^ ".section") (field cctx cur "section") in
  if bsec <> csec then
    fail "compare: section mismatch (%s vs %s)" bsec csec;
  let brows = bench_rows bctx base in
  let crows = bench_rows cctx cur in
  let regressions = ref [] in
  List.iter
    (fun (name, (bw, bc)) ->
      match List.assoc_opt name crows with
      | None -> Printf.printf "  %-28s dropped from current\n" name
      | Some (cw, cc) ->
        let dw =
          if bw = 0 then 0.0
          else 100.0 *. (float_of_int cw /. float_of_int bw -. 1.0)
        in
        let dc =
          if bc = 0 then 0.0
          else 100.0 *. (float_of_int cc /. float_of_int bc -. 1.0)
        in
        Printf.printf "  %-28s wall %+7.1f%%  cycles %+7.1f%%\n" name dw dc;
        if dw > tol then regressions := (name, dw) :: !regressions)
    brows;
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name brows) then
        Printf.printf "  %-28s new in current\n" name)
    crows;
  (* Throughput gate: the aggregate emulated-MIPS figure is the PR
     trajectory's headline metric, so compare always prints the delta and
     --tol-mips turns a drop beyond the given percentage into a failure.
     MIPS regressions are drops (current below baseline), unlike wall
     time where regressions are increases. *)
  let bmips = as_num (bctx ^ ".emulated_mips") (field bctx base "emulated_mips") in
  let cmips = as_num (cctx ^ ".emulated_mips") (field cctx cur "emulated_mips") in
  let dmips =
    if bmips = 0.0 then 0.0 else 100.0 *. (cmips /. bmips -. 1.0)
  in
  Printf.printf "  %-28s %8.2f -> %8.2f  (%+.1f%%)\n" "emulated_mips" bmips
    cmips dmips;
  let mips_failed =
    match tol_mips with
    | Some t when -.dmips > t ->
      Printf.eprintf
        "FAIL %s: emulated_mips dropped %.1f%% (%.2f -> %.2f, tolerance \
         %.0f%%)\n"
        bsec (-.dmips) bmips cmips t;
      true
    | _ -> false
  in
  (* Tail-latency gate: serve p99 is a wall-clock figure, so regressions
     are increases; --tol-p99 turns a rise beyond the band into a hard
     failure.  Skipped when either file predates the latency schema. *)
  let p99_failed =
    match (serve_p99 bctx base, serve_p99 cctx cur) with
    | Some bp, Some cp ->
      let d =
        if bp = 0 then 0.0
        else 100.0 *. (float_of_int cp /. float_of_int bp -. 1.0)
      in
      Printf.printf "  %-28s %8d -> %8d us (%+.1f%%)\n" "serve_p99_us" bp cp
        d;
      (match tol_p99 with
       | Some t when d > t ->
         Printf.eprintf
           "FAIL %s: serve p99 regressed %.1f%% (%d -> %d us, tolerance \
            %.0f%%)\n"
           bsec d bp cp t;
         true
       | _ -> false)
    | _ ->
      if tol_p99 <> None then
        Printf.printf "  %-28s (not present in both files, gate skipped)\n"
          "serve_p99_us";
      false
  in
  match !regressions with
  | [] ->
    if mips_failed || p99_failed then exit 1;
    Printf.printf "compare %s: OK (%d rows, tolerance %.0f%%)\n" bsec
      (List.length brows) tol
  | rs ->
    List.iter
      (fun (name, dw) ->
        Printf.eprintf "FAIL %s: wall time of %s regressed %.1f%% (> %.0f%%)\n"
          bsec name dw tol)
      (List.rev rs);
    exit 1

(* ------------------------------------------------------------------ *)
(* compare-tier: per-strategy cycle gate over two tier figures         *)
(* ------------------------------------------------------------------ *)

(* The tier workload is fixed and its simulated cycles deterministic,
   so the default tolerance is 0%: any drift in a strategy's
   total_cycles fails the gate.  Wall-clock fields (compile_s,
   time_to_peak_s) are printed for the record, never gated. *)
let compare_tier ~tol base_path cur_path =
  let load p = parse (read_file p) in
  let base = load base_path and cur = load cur_path in
  let bctx = Filename.basename base_path in
  let cctx = Filename.basename cur_path in
  let section ctx j = as_str (ctx ^ ".section") (field ctx j "section") in
  if section bctx base <> "tier" || section cctx cur <> "tier" then
    fail "compare-tier: both files must have section \"tier\"";
  let strat ctx j name =
    field (ctx ^ ".strategies") (field ctx j "strategies") name
  in
  let regressions = ref [] in
  List.iter
    (fun name ->
      let b = strat bctx base name and c = strat cctx cur name in
      let bcy = as_int (name ^ ".total_cycles") (field name b "total_cycles") in
      let ccy = as_int (name ^ ".total_cycles") (field name c "total_cycles") in
      let d =
        if bcy = 0 then 0.0
        else 100.0 *. (float_of_int ccy /. float_of_int bcy -. 1.0)
      in
      let bt = as_num (name ^ ".time_to_peak_s") (field name b "time_to_peak_s") in
      let ct = as_num (name ^ ".time_to_peak_s") (field name c "time_to_peak_s") in
      Printf.printf
        "  %-8s cycles %9d -> %9d (%+.2f%%)  time-to-peak %.3f -> %.3f ms\n"
        name bcy ccy d (bt *. 1e3) (ct *. 1e3);
      if d > tol then regressions := (name, d) :: !regressions)
    tier_strategies;
  match !regressions with
  | [] ->
    Printf.printf "compare-tier: OK (%d strategies, tolerance %.1f%%)\n"
      (List.length tier_strategies) tol
  | rs ->
    List.iter
      (fun (name, d) ->
        Printf.eprintf
          "FAIL tier: total_cycles of %s regressed %.2f%% (> %.1f%%)\n" name d
          tol)
      (List.rev rs);
    exit 1

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if args = [] then begin
    prerr_endline
      "usage: validate_bench [--trace FILE | --remarks FILE | --profile \
       FILE | --sentinel FILE | --tier FILE | --blackbox FILE | \
       BENCH_*.json] ...\n\
      \       [--sentinel-min-divergences N] [--sentinel-min-demotions N]\n\
      \       [--blackbox-require-chain k1,k2,...]\n\
      \       validate_bench compare BASELINE.json CURRENT.json [--tol PCT] \
       [--tol-mips PCT] [--tol-p99 PCT]\n\
      \       validate_bench compare-tier BASELINE.json CURRENT.json \
       [--tol PCT]";
    exit 2
  end;
  let failed = ref false in
  let checked kind f check =
    try check f (parse (read_file f)) with
    | Bad m -> Printf.eprintf "FAIL %s\n" m; failed := true
    | Sys_error m -> Printf.eprintf "FAIL %s\n" m; failed := true
    | exception_ ->
      Printf.eprintf "FAIL %s %s: %s\n" kind f
        (Printexc.to_string exception_);
      failed := true
  in
  (match args with
   | "compare" :: rest ->
     let tol = ref 10.0 in
     let tol_mips = ref None in
     let tol_p99 = ref None in
     let files = ref [] in
     let rec go = function
       | "--tol" :: t :: tl -> tol := float_of_string t; go tl
       | "--tol-mips" :: t :: tl ->
         tol_mips := Some (float_of_string t);
         go tl
       | "--tol-p99" :: t :: tl ->
         tol_p99 := Some (float_of_string t);
         go tl
       | ("--tol" | "--tol-mips" | "--tol-p99") :: [] ->
         prerr_endline "--tol/--tol-mips/--tol-p99 need a percentage argument";
         exit 2
       | f :: tl -> files := f :: !files; go tl
       | [] -> ()
     in
     go rest;
     (match List.rev !files with
      | [ base; cur ] -> (
        try
          compare_bench ~tol:!tol ~tol_mips:!tol_mips ~tol_p99:!tol_p99 base
            cur
        with
        | Bad m -> Printf.eprintf "FAIL %s\n" m; exit 1
        | Sys_error m -> Printf.eprintf "FAIL %s\n" m; exit 1)
      | _ ->
        prerr_endline
          "usage: validate_bench compare BASELINE.json CURRENT.json \
           [--tol PCT] [--tol-mips PCT] [--tol-p99 PCT]";
        exit 2)
   | "compare-tier" :: rest ->
     let tol = ref 0.0 in
     let files = ref [] in
     let rec go = function
       | "--tol" :: t :: tl -> tol := float_of_string t; go tl
       | "--tol" :: [] ->
         prerr_endline "--tol needs a percentage argument";
         exit 2
       | f :: tl -> files := f :: !files; go tl
       | [] -> ()
     in
     go rest;
     (match List.rev !files with
      | [ base; cur ] -> (
        try compare_tier ~tol:!tol base cur with
        | Bad m -> Printf.eprintf "FAIL %s\n" m; exit 1
        | Sys_error m -> Printf.eprintf "FAIL %s\n" m; exit 1)
      | _ ->
        prerr_endline
          "usage: validate_bench compare-tier BASELINE.json CURRENT.json \
           [--tol PCT]";
        exit 2)
   | _ ->
     (* thresholds apply to every --sentinel file, wherever they appear
        on the command line, so hoist them before the file sweep *)
     let min_div = ref 0 in
     let min_dem = ref 0 in
     let chain = ref [] in
     let rec hoist = function
       | "--sentinel-min-divergences" :: n :: tl ->
         min_div := int_of_string n;
         hoist tl
       | "--sentinel-min-demotions" :: n :: tl ->
         min_dem := int_of_string n;
         hoist tl
       | "--blackbox-require-chain" :: ks :: tl ->
         chain :=
           List.filter (fun k -> k <> "")
             (List.map String.trim (String.split_on_char ',' ks));
         hoist tl
       | ("--sentinel-min-divergences" | "--sentinel-min-demotions") :: [] ->
         prerr_endline "--sentinel-min-* need an integer argument";
         exit 2
       | [ "--blackbox-require-chain" ] ->
         prerr_endline
           "--blackbox-require-chain needs a comma-separated kind list";
         exit 2
       | a :: tl -> a :: hoist tl
       | [] -> []
     in
     let args = hoist args in
     let rec go = function
       | [] -> ()
       | "--trace" :: f :: tl -> checked "trace" f check_trace; go tl
       | "--remarks" :: f :: tl -> checked "remarks" f check_remarks; go tl
       | "--profile" :: f :: tl -> checked "profile" f check_profile; go tl
       | "--sentinel" :: f :: tl ->
         checked "sentinel" f
           (check_sentinel ~min_divergences:!min_div ~min_demotions:!min_dem);
         go tl
       | "--tier" :: f :: tl -> checked "tier" f check_tier; go tl
       | "--blackbox" :: f :: tl ->
         checked "blackbox" f (check_blackbox ~require_chain:!chain);
         go tl
       | ("--trace" | "--remarks" | "--profile" | "--sentinel" | "--tier"
         | "--blackbox")
         :: [] ->
         prerr_endline "flag needs a file argument";
         exit 2
       | f :: tl -> checked "bench" f check_bench; go tl
     in
     go args);
  if !failed then exit 1
