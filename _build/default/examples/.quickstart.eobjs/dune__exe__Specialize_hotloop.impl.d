examples/specialize_hotloop.ml: Array Cpu Float Image Int64 Mem Modes Obrew_backend Obrew_core Obrew_dbrew Obrew_ir Obrew_lifter Obrew_minic Obrew_opt Obrew_x86 Pp Printf
