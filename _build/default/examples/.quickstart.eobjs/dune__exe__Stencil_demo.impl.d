examples/stencil_demo.ml: Array Float List Modes Obrew_core Obrew_stencil Obrew_x86 Printf Sys
