examples/lifter_explorer.ml: Cpu Dce Image Ins Insn Int64 Jit Lift List Mem Obrew_backend Obrew_ir Obrew_lifter Obrew_opt Obrew_x86 Pipeline Pp Pp_ir Printf Reg String
