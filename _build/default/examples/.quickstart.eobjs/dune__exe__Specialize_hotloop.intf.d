examples/specialize_hotloop.mli:
