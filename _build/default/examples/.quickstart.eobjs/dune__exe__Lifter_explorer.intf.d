examples/lifter_explorer.mli:
