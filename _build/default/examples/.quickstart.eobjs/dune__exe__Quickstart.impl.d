examples/quickstart.ml: Api Image Insn Obrew_dbrew Obrew_x86 Pp Printf Reg
