examples/quickstart.mli:
