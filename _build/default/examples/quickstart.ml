(* Quickstart: the basic DBrew usage of Fig. 2/3.

   We install a tiny compiled function into the emulated image, then
   rewrite it with a fixed parameter and call the drop-in replacement.

     dune exec examples/quickstart.exe
*)

open Obrew_x86
open Obrew_dbrew
open Insn

let () =
  let img = Image.create () in

  (* int func(int a, int b) { return a + 2*b; } — as binary code *)
  let func =
    Image.install_code ~name:"func" img
      [ I (Lea (Reg.RAX, mem_bi Reg.RDI Reg.RSI S2)); I Ret ]
  in
  Printf.printf "original code at 0x%x:\n%s\n\n" func
    (Pp.listing (Image.disassemble_fn img func));

  (* call the original *)
  let x, _ = Image.call img ~fn:func ~args:[ 1L; 2L ] in
  Printf.printf "func(1, 2) = %Ld\n\n" x;

  (* new rewriter config for func: parameter 1 fixed to 42 (Fig. 3) *)
  let r = Api.dbrew_new img func in
  Api.dbrew_set_par r 1 42L;
  let newfunc = Api.dbrew_rewrite r in
  Printf.printf "rewritten code at 0x%x:\n%s\n\n" newfunc
    (Pp.listing (Image.disassemble_fn img newfunc));

  (* call the rewritten version: parameter 1 now always 42 *)
  let x2, _ = Image.call img ~fn:newfunc ~args:[ 1L; 999L ] in
  Printf.printf "newfunc(1, <ignored>) = %Ld   (uses 42 instead)\n" x2;
  assert (x2 = 85L)
