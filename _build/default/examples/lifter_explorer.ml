(* Explore the x86-64 -> IR transformation (Sec. III): lift a binary
   function, show the raw translation, the -O3 result, and the
   re-emitted machine code — the full round trip of Fig. 1.

     dune exec examples/lifter_explorer.exe
*)

open Obrew_x86
open Obrew_ir
open Obrew_opt
open Obrew_lifter
open Obrew_backend
open Insn

let stage title body =
  Printf.printf "\n--- %s " title;
  print_endline (String.make (max 0 (60 - String.length title)) '-');
  body ()

let () =
  let img = Image.create () in
  (* int clamp_sum(long *a, long n, long lo, long hi):
     sums a[0..n-1], clamping each element into [lo, hi] via cmov *)
  let fn =
    Image.install_code img
      [ I (Alu (Xor, W32, OReg Reg.RAX, OReg Reg.RAX));
        I (Test (W64, OReg Reg.RSI, OReg Reg.RSI));
        I (Jcc (E, Lbl 9));
        I (Alu (Xor, W32, OReg Reg.R9, OReg Reg.R9));
        L 0;
        I (Mov (W64, OReg Reg.R8, OMem (mem_bi Reg.RDI Reg.R9 S8)));
        I (Alu (Cmp, W64, OReg Reg.R8, OReg Reg.RDX));
        I (Cmov (L, W64, Reg.R8, OReg Reg.RDX));
        I (Alu (Cmp, W64, OReg Reg.R8, OReg Reg.RCX));
        I (Cmov (G, W64, Reg.R8, OReg Reg.RCX));
        I (Alu (Add, W64, OReg Reg.RAX, OReg Reg.R8));
        I (Unop (Inc, W64, OReg Reg.R9));
        I (Alu (Cmp, W64, OReg Reg.R9, OReg Reg.RSI));
        I (Jcc (NE, Lbl 0));
        L 9;
        I Ret ]
  in
  let arr = Image.alloc_i64_array img [| 5L; -100L; 42L; 9000L; 7L |] in

  stage "original x86-64" (fun () ->
      print_endline (Pp.listing (Image.disassemble_fn img fn)));

  let sg = { Ins.args = [ Ptr 0; I64; I64; I64 ]; ret = Some I64 } in
  let f =
    Lift.lift ~read:(Mem.read_u8 img.Image.cpu.Cpu.mem) ~entry:fn
      ~name:"clamp_sum" sg
  in
  stage
    (Printf.sprintf "raw lifted IR (%d instructions; excerpt)"
       (Pp_ir.size f))
    (fun () ->
      (* the full dump is dominated by per-block phi nodes (Sec. III-C);
         show the loop body after a DCE sweep *)
      let f' =
        Lift.lift ~read:(Mem.read_u8 img.Image.cpu.Cpu.mem) ~entry:fn
          ~name:"clamp_sum" sg
      in
      ignore (Dce.run f');
      print_string (Pp_ir.func f'));

  stage "after -O3" (fun () ->
      Pipeline.run { Ins.funcs = [ f ]; globals = [] };
      Printf.printf "%d instructions:\n" (Pp_ir.size f);
      print_string (Pp_ir.func f));

  stage "re-emitted x86-64 (the JIT back-end)" (fun () ->
      let fn2 = Jit.install_func img f in
      print_endline (Pp.listing ~addrs:false (Image.disassemble_fn img fn2));
      (* both versions must agree *)
      let args = [ Int64.of_int arr; 5L; 0L; 100L ] in
      let native, _ = Image.call img ~fn ~args in
      let jitted, _ = Image.call img ~fn:fn2 ~args in
      Printf.printf "\noriginal: %Ld   jitted: %Ld   %s\n" native jitted
        (if native = jitted then "(equal)" else "(MISMATCH)"));

  stage "flag cache ablation (Fig. 6)" (fun () ->
      List.iter
        (fun flag_cache ->
          let f =
            Lift.lift
              ~config:{ Lift.default_config with flag_cache }
              ~read:(Mem.read_u8 img.Image.cpu.Cpu.mem) ~entry:fn
              ~name:"clamp_sum" sg
          in
          Pipeline.run { Ins.funcs = [ f ]; globals = [] };
          Printf.printf "flag cache %-5b -> %d IR instructions after -O3\n"
            flag_cache (Pp_ir.size f))
        [ true; false ])
