(* Runtime specialization of a generic routine, beyond the stencil:
   a generic "apply weights" kernel (dot product against a runtime-
   chosen weight table) specialized for a concrete table.

   This is the library-abstraction scenario of the paper's
   introduction: a generic library function made as fast as
   hand-written code once its configuration is known at runtime.

     dune exec examples/specialize_hotloop.exe
*)

open Obrew_x86
open Obrew_minic.Ast
open Obrew_core

let () =
  let img = Image.create () in

  (* double weighted(double *x, long n, double *w, long stride):
       s = 0; for i < n: s += w[i] * x[i*stride]; return s
     compiled from mini-C, like a library routine *)
  let fn_src =
    { name = "weighted"; params = [ TPtr; TInt; TPtr; TInt ];
      ret = Some TDouble;
      body =
        [ Decl ("s", Flt 0.0);
          For
            ( "i", i 0, v "i" <! Param 1, v "i" +! i 1,
              [ Assign
                  ( "s",
                    v "s"
                    +. (LoadF64 (PtrAdd (Param 2, v "i", 8))
                        *. LoadF64
                             (PtrAdd (Param 0, v "i" *! Param 3, 8))) ) ] );
          Return (Some (v "s")) ] }
  in
  let m = Obrew_minic.Lower.lower [ fn_src ] in
  Obrew_opt.Pipeline.run m;
  ignore (Obrew_backend.Jit.install_module img m);
  let weighted = Image.lookup img "weighted" in

  (* runtime data: a 5-tap filter and a signal *)
  let weights = Image.alloc_f64_array img [| 0.1; 0.2; 0.4; 0.2; 0.1 |] in
  let signal =
    Image.alloc_f64_array img (Array.init 64 (fun i -> float_of_int i))
  in

  let call fn =
    Image.reset_stack img;
    let (_, x), cycles, _ =
      Image.measure img (fun () ->
          Image.call img ~fn
            ~args:[ Int64.of_int signal; 5L; Int64.of_int weights; 2L ])
    in
    (x, cycles)
  in

  let generic, c0 = call weighted in
  Printf.printf "generic weighted(...)      = %.3f   (%d cycles)\n" generic c0;

  (* specialize: n=5, the weight table and the stride are fixed *)
  let r = Obrew_dbrew.Api.dbrew_new img weighted in
  Obrew_dbrew.Api.dbrew_set_par r 1 5L;              (* n = 5 *)
  Obrew_dbrew.Api.dbrew_set_par r 2 (Int64.of_int weights);
  Obrew_dbrew.Api.dbrew_set_par r 3 2L;              (* stride = 2 *)
  Obrew_dbrew.Api.dbrew_set_mem r weights (weights + 40);
  let special = Obrew_dbrew.Api.dbrew_rewrite r in
  let s1, c1 = call special in
  Printf.printf "DBrew specialized          = %.3f   (%d cycles)\n" s1 c1;

  (* post-process with the LLVM-style pipeline: Fig. 1's full path *)
  let sg = { Obrew_ir.Ins.args = [ Ptr 0; I64; Ptr 0; I64 ]; ret = Some F64 } in
  let f =
    Obrew_lifter.Lift.lift ~read:(Mem.read_u8 img.Image.cpu.Cpu.mem)
      ~entry:special ~name:"special_opt" sg
  in
  Obrew_opt.Pipeline.run { Obrew_ir.Ins.funcs = [ f ]; globals = [] } ;
  let optimized = Obrew_backend.Jit.install_func img f in
  let s2, c2 = call optimized in
  Printf.printf "DBrew + LLVM post-process  = %.3f   (%d cycles)\n" s2 c2;

  Printf.printf "\nspeedup: %.2fx (DBrew), %.2fx (DBrew+LLVM)\n"
    (float_of_int c0 /. float_of_int c1)
    (float_of_int c0 /. float_of_int c2);
  assert (Float.abs (generic -. s1) < 1e-9);
  assert (Float.abs (generic -. s2) < 1e-9);

  Printf.printf "\nspecialized code (DBrew+LLVM):\n%s\n"
    (Pp.listing ~addrs:false (Image.disassemble_fn img optimized));
  ignore (Modes.transform_name Modes.Native)
